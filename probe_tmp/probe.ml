open Stm_core

(* Minimal dependent-steps scenario: order of the two writes decides the
   outcome.  The protection element is allocated in procs(), i.e. outside
   the simulation, like tvars in the real scenarios. *)
let () =
  let r = ref 0 in
  let outcomes = ref [] in
  let pes = ref [] in
  let scen =
    { Schedsim.Explore.procs =
        (fun () ->
          let pe = Runtime.fresh_tvar_id () in
          pes := pe :: !pes;
          r := 0;
          [ (fun () -> Runtime.schedule_point_on (Runtime.Write pe); r := !r + 1);
            (fun () -> Runtime.schedule_point_on (Runtime.Write pe); r := (!r * 2) + 10) ]);
      check =
        (fun _ ->
          outcomes := !r :: !outcomes;
          !r <> 11 (* violation iff proc1 ran first *) ) }
  in
  let show name res =
    Format.printf "%s: %a; outcomes seen = [%s]; pes = [%s]@." name
      Schedsim.Explore.pp_result res
      (String.concat ";" (List.map string_of_int (List.sort_uniq compare !outcomes)))
      (String.concat ";" (List.rev_map string_of_int !pes))
  in
  outcomes := []; pes := [];
  show "naive" (Schedsim.Explore.explore ~mode:`Naive scen);
  outcomes := []; pes := [];
  show "dpor " (Schedsim.Explore.explore ~mode:`Dpor scen)
