(* Figure 1, live: why composing elastic transactions needs outheritance.

   Two processes run mutually-guarded insertIfAbsent operations over a
   shared linked-list set with the invariant "3 and 7 never both present".
   The deterministic scheduler explores every interleaving:

   - with elastic children whose conflict information is dropped at child
     commit (E-STM-style composition), some interleaving inserts both -
     the atomicity violation of Fig. 1;
   - with OE-STM (outheritance), no interleaving can.

   The violating schedule is then replayed under event recording and the
   resulting history fed to the theory checkers: it violates outheritance
   (Definition 4.1), matching Theorem 4.3.

   Run with:  dune exec examples/insert_if_absent_race.exe *)

open Stm_core

let scenario (module S : Stm_intf.S) () =
  let module Set = Eec.Linked_list_set.Make (S) (Eec.Set_intf.Int_key) in
  let s = Set.create () in
  (Set.unsafe_preload s [ 1; 5; 9 ]
   [@txlint.allow "stm-escape"
       "quiescent preload before the racing domains start"]);
  let procs =
    [ (fun () -> ignore (Set.insert_if_absent s ~ins:3 ~guard:7));
      (fun () -> ignore (Set.insert_if_absent s ~ins:7 ~guard:3)) ]
  in
  let violated () = Set.contains s 3 && Set.contains s 7 in
  (procs, violated)

let explore name (module S : Stm_intf.S) =
  let violated = ref (fun () -> false) in
  let result =
    Schedsim.Explore.explore ~max_runs:20_000
      { Schedsim.Explore.procs =
          (fun () ->
            let procs, v = scenario (module S) () in
            violated := v;
            procs);
        check = (fun _ -> not (!violated ())) }
  in
  Format.printf "%-12s %a@." name Schedsim.Explore.pp_result result;
  result

let () =
  print_endline
    "Exploring all interleavings of insertIfAbsent(3,7) || insertIfAbsent(7,3)";
  print_endline "invariant: 3 and 7 never both in the set\n";
  (match explore "OE-STM" (module Oestm.Oe) with
  | Schedsim.Explore.Violation _ -> assert false
  | _ -> ());
  (match explore "TL2" (module Classic_stm.Tl2) with
  | Schedsim.Explore.Violation _ -> assert false
  | _ -> ());
  match explore "E-STM(drop)" (module Oestm.E_broken) with
  | Schedsim.Explore.All_ok _ | Schedsim.Explore.Out_of_budget _ ->
    print_endline "unexpected: no violation found";
    exit 1
  | Schedsim.Explore.Violation { schedule; _ } ->
    print_endline "\nReplaying the violating schedule under event recording...";
    let events, violated =
      Recorder.record (fun () ->
          let procs, v = scenario (module Oestm.E_broken) () in
          let _ = Schedsim.Sched.run_schedule ~schedule procs in
          v ())
    in
    Printf.printf "both 3 and 7 inserted: %b\n" violated;
    let h = Histories.Convert.to_history events in
    (* The committed transactions of each process: children first, then the
       root of the composed insertIfAbsent. *)
    List.iter
      (fun p ->
        let committed = Histories.History.committed h in
        let of_p =
          List.filter (fun t -> Histories.History.proc_of_tx h t = p) committed
        in
        match List.rev of_p with
        | _root :: (_ :: _ as rev_children) ->
          let children = List.rev rev_children in
          let c = Histories.Composition.make_exn h children in
          Printf.printf
            "process %d: composition of %d children, outheritance: %b\n" p
            (List.length children)
            (Histories.Outheritance.satisfies h c);
          List.iter
            (fun v ->
              Format.printf "  %a@." Histories.Outheritance.pp_violation v)
            (Histories.Outheritance.violations h c)
        | _ -> ())
      (Histories.History.procs h);
    print_endline "\nConclusion: dropping the children's protected sets breaks";
    print_endline "outheritance, and with it the atomicity of the composition -";
    print_endline "exactly the failure mode of the paper's Figure 1."
