(* Rebalancing with move: the composition that lock-based and lock-free
   code cannot express safely.

   Harris et al.'s motivating example (and the paper's introduction): a
   move between two containers built from remove + add deadlocks with
   locks and simply cannot be assembled from a lock-free library.  With
   composable transactions it is three lines - and here four domains
   rebalance two hash sets concurrently, moving elements back and forth,
   while an auditor thread keeps checking that the total element count
   never changes and no element is ever seen in both sets.

   Run with:  dune exec examples/move_rebalance.exe *)

module Set = Eec.Hash_set.Make (Oestm.Oe) (Eec.Set_intf.Int_key)
module S = Oestm.Oe

let () =
  let left = Set.create () and right = Set.create () in
  let n_tokens = 256 in
  (Set.unsafe_preload left (List.init n_tokens (fun i -> i))
   [@txlint.allow "stm-escape"
       "quiescent preload before the racing domains start"]);

  let stop = Atomic.make false in
  let moves = Atomic.make 0 in

  (* Rebalancer: move elements toward the emptier side, one atomic move at
     a time.  [move] is composed from remove and add; its atomicity is what
     keeps the audit below clean. *)
  let rebalancer src dst seed () =
    let rng = Harness.Prng.create ~seed in
    while not (Atomic.get stop) do
      let x = Harness.Prng.int rng n_tokens in
      if Set.move ~src ~dst x then ignore (Atomic.fetch_and_add moves 1)
    done
  in

  (* Auditor: atomic snapshot across BOTH sets - a composition of two
     size operations inside one transaction. *)
  let total () =
    S.atomic ~mode:Elastic (fun _ -> Set.size left + Set.size right)
  in

  let audits = ref 0 and bad = ref 0 in
  let auditor () =
    while not (Atomic.get stop) do
      incr audits;
      if total () <> n_tokens then incr bad
    done
  in

  let domains =
    [ Domain.spawn (rebalancer left right 1);
      Domain.spawn (rebalancer right left 2);
      Domain.spawn (rebalancer left right 3);
      Domain.spawn auditor ]
  in
  Unix.sleepf 1.0;
  Atomic.set stop true;
  List.iter Domain.join domains;

  let l = Set.to_list left and r = Set.to_list right in
  Printf.printf "moves performed: %d\n" (Atomic.get moves);
  Printf.printf "audits: %d, inconsistent totals observed: %d\n" !audits !bad;
  Printf.printf "final split: %d + %d = %d tokens\n" (List.length l)
    (List.length r)
    (List.length l + List.length r);
  assert (!bad = 0);
  assert (List.length l + List.length r = n_tokens);
  (* No element in both sets. *)
  assert (List.for_all (fun x -> not (List.mem x r)) l);
  print_endline "move/rebalance OK - composition preserved atomicity"
