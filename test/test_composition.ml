[@@@txlint.allow "stm-escape"
    "tests drive the escape hatches directly: preloads and post-run \
     state checks are quiescent"]

(* The heart of the reproduction: composing elastic transactions.

   Scenario (the paper's Fig. 1, made observable): two flags x and y with
   the invariant "never both set".  Each process runs
   insertIfAbsent(mine, other) — a composition of an elastic contains
   (child transaction 1) and an elastic insert (child transaction 2).

   - Under OE-STM (outheritance) NO interleaving can set both flags.
   - Under E-STM(drop) (elastic children whose conflict information is
     discarded at child commit) SOME interleaving sets both — the explorer
     finds it, and the recorded history of that schedule violates
     outheritance and weak composability, connecting the implementation to
     Theorems 4.3/4.4.
   - The classic STMs (flat nesting) also pass every interleaving. *)

open Stm_core
open Schedsim

(* One scenario instance: fresh flags + the two composed operations. *)
let make_scenario (module S : Stm_intf.S) =
  let x = S.tvar false and y = S.tvar false in
  let contains tv = S.atomic ~mode:Elastic (fun ctx -> S.read ctx tv) in
  let insert tv = S.atomic ~mode:Elastic (fun ctx -> S.write ctx tv true) in
  let insert_if_absent ~target ~guard =
    S.atomic ~mode:Elastic (fun _ ->
        if not (contains guard) then insert target)
  in
  let procs =
    [ (fun () -> insert_if_absent ~target:x ~guard:y);
      (fun () -> insert_if_absent ~target:y ~guard:x) ]
  in
  let invariant_holds () = not (S.peek x && S.peek y) in
  (procs, invariant_holds)

let explore_scenario (module S : Stm_intf.S) ~max_runs =
  let holds = ref (fun () -> true) in
  Explore.explore ~max_runs
    { Explore.procs =
        (fun () ->
          let procs, invariant = make_scenario (module S) in
          holds := invariant;
          procs);
      check = (fun _outcome -> !holds ()) }

let test_safe (module S : Stm_intf.S) () =
  match explore_scenario (module S) ~max_runs:4_000 with
  | Explore.Violation { schedule; explored; _ } ->
    Alcotest.failf "%s: both flags set after %d runs, schedule [%s]" S.name
      explored
      (String.concat ";" (List.map string_of_int schedule))
  | Explore.All_ok { explored; pruned } ->
    (* Under DPOR most of the 252 naive schedules collapse into a few
       Mazurkiewicz representatives; coverage = runs + pruned branches. *)
    Alcotest.(check bool)
      (S.name ^ ": explored a meaningful number of interleavings")
      true
      (explored > 0 && explored + pruned > 10)
  | Explore.Out_of_budget _ -> ()

let test_broken_composition_found () =
  match explore_scenario (module Oestm.E_broken) ~max_runs:4_000 with
  | Explore.Violation _ -> ()
  | Explore.All_ok { explored; _ } | Explore.Out_of_budget { explored; _ } ->
    Alcotest.failf
      "expected an atomicity violation from drop-composition; %d runs found \
       none"
      explored

(* ------------------------------------------------------------------ *)
(* Recorded histories: implementation meets theory                     *)

(* Run [insertIfAbsent] to completion on process 0 alone (a serial
   schedule), record the trace, and inspect the composition formed by its
   two children. *)
let record_serial_composition (module S : Stm_intf.S) =
  let events, _ =
    Recorder.record (fun () ->
        let procs, _ = make_scenario (module S) in
        Sched.run [ List.nth procs 0 ])
  in
  Histories.Convert.to_history events

let children_of_proc h p =
  (* Committed transactions of process p in commit order; the root is the
     last one to commit, the children precede it. *)
  let committed = Histories.History.committed h in
  let of_p = List.filter (fun t -> Histories.History.proc_of_tx h t = p) committed in
  match List.rev of_p with
  | _root :: rest -> List.rev rest
  | [] -> []

let test_recorded_outheritance_oe () =
  let h = record_serial_composition (module Oestm.Oe) in
  Alcotest.(check bool) "history well-formed" true
    (Result.is_ok (Histories.History.well_formed h));
  let children = children_of_proc h 0 in
  Alcotest.(check int) "two children (contains, insert)" 2
    (List.length children);
  let c = Histories.Composition.make_exn h children in
  Alcotest.(check bool) "OE-STM recorded run satisfies outheritance" true
    (Histories.Outheritance.satisfies h c)

let test_recorded_outheritance_broken () =
  let h = record_serial_composition (module Oestm.E_broken) in
  let children = children_of_proc h 0 in
  let c = Histories.Composition.make_exn h children in
  Alcotest.(check bool) "drop-composition violates outheritance" false
    (Histories.Outheritance.satisfies h c)

(* Replay the violating schedule found by the explorer under recording and
   check the history: outheritance is violated there too. *)
let test_violating_schedule_history () =
  match explore_scenario (module Oestm.E_broken) ~max_runs:4_000 with
  | Explore.All_ok _ | Explore.Out_of_budget _ ->
    Alcotest.fail "expected to find a violating schedule"
  | Explore.Violation { schedule; _ } ->
    let events, invariant_held =
      Recorder.record (fun () ->
          let procs, invariant = make_scenario (module Oestm.E_broken) in
          let _outcome = Sched.run_schedule ~schedule procs in
          invariant ())
    in
    Alcotest.(check bool) "replay reproduces the violation" false
      invariant_held;
    let h = Histories.Convert.to_history events in
    Alcotest.(check bool) "replayed history is well-formed" true
      (Result.is_ok (Histories.History.well_formed h));
    (* Process 0's children form a composition; under the violating
       schedule the protection of the contains child was dropped early. *)
    let children = children_of_proc h 0 in
    if List.length children = 2 then begin
      let c = Histories.Composition.make_exn h children in
      Alcotest.(check bool) "violating run breaks outheritance" false
        (Histories.Outheritance.satisfies h c)
    end

(* ------------------------------------------------------------------ *)
(* Joint weak composition-consistency                                   *)

let register_env =
  Histories.Spec.all_registers ~init:(fun _ -> Recorder.repr_of_value false)

let compositions_of h =
  List.filter_map
    (fun p ->
      match children_of_proc h p with
      | _ :: _ :: _ as children -> (
        match Histories.Composition.make h children with
        | Ok c -> Some c
        | Error _ -> None)
      | _ -> None)
    (Histories.History.procs h)

(* The violating drop-composition run admits a witness for each composition
   alone, but no single serialisation satisfies both - joint weak
   consistency is what detects the mutual insertIfAbsent violation. *)
let test_joint_weak_consistency_broken () =
  match explore_scenario (module Oestm.E_broken) ~max_runs:4_000 with
  | Explore.All_ok _ | Explore.Out_of_budget _ ->
    Alcotest.fail "expected to find a violating schedule"
  | Explore.Violation { schedule; _ } ->
    let events, _ =
      Recorder.record (fun () ->
          let procs, _ = make_scenario (module Oestm.E_broken) in
          Sched.run_schedule ~schedule procs)
    in
    let h = Histories.Convert.to_history events in
    let cs = compositions_of h in
    Alcotest.(check int) "both processes composed" 2 (List.length cs);
    Alcotest.(check bool) "not jointly weakly consistent" true
      (Histories.Composition.weakly_consistent ~env:register_env h cs
      = Histories.Search.No_witness)

let test_joint_weak_consistency_oe () =
  (* OE-STM under a genuinely interleaved schedule: the recorded history
     must stay jointly weakly consistent. *)
  let events, _ =
    Recorder.record (fun () ->
        let procs, _ = make_scenario (module Oestm.Oe) in
        Sched.run procs)
  in
  let h = Histories.Convert.to_history events in
  let cs = compositions_of h in
  Alcotest.(check bool) "at least one composition" true (cs <> []);
  Alcotest.(check bool) "jointly weakly consistent" true
    (Histories.Composition.weakly_consistent ~env:register_env h cs
    = Histories.Search.Witness_found)

let suite =
  [ Alcotest.test_case "OE-STM: no interleaving breaks the invariant" `Slow
      (test_safe (module Oestm.Oe));
    Alcotest.test_case "TL2: no interleaving breaks the invariant" `Slow
      (test_safe (module Classic_stm.Tl2));
    Alcotest.test_case "LSA: no interleaving breaks the invariant" `Slow
      (test_safe (module Classic_stm.Lsa));
    Alcotest.test_case "SwissTM: no interleaving breaks the invariant" `Slow
      (test_safe (module Classic_stm.Swisstm));
    Alcotest.test_case "drop-composition violation exists (Fig. 1)" `Slow
      test_broken_composition_found;
    Alcotest.test_case "recorded OE-STM run satisfies outheritance" `Quick
      test_recorded_outheritance_oe;
    Alcotest.test_case "recorded drop run violates outheritance" `Quick
      test_recorded_outheritance_broken;
    Alcotest.test_case "violating schedule's history breaks outheritance"
      `Slow test_violating_schedule_history;
    Alcotest.test_case "joint weak consistency rejects the violation" `Slow
      test_joint_weak_consistency_broken;
    Alcotest.test_case "OE-STM runs are jointly weakly consistent" `Quick
      test_joint_weak_consistency_oe ]
