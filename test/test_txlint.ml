(* The static STM-discipline lint (lib/txlint), v2: per-site checks,
   the interprocedural pass (index / call graph / effect summaries),
   attribute suppression, SARIF output and baselines.

   In-memory fixtures go through [Lint.lint_string] (single-unit, the
   v1 analysis mode) or [Lint.analyze] with a trivial [wrapper_of];
   the committed fixture pair under test/fixtures/txlint is read from
   the source tree and proves the v2 pass strictly stronger than v1. *)

let findings = Alcotest.testable Lint.pp_finding ( = )
let no_wrap = fun _ -> None

let lint ?(filename = "lib/somewhere/code.ml") src =
  match Lint.lint_string ~filename src with
  | Ok fs -> fs
  | Error e -> Alcotest.failf "fixture did not parse: %s" e

let analyze sources = fst (Lint.analyze ~wrapper_of:no_wrap sources)
let has kind fs = List.exists (fun f -> f.Lint.kind = kind) fs
let count kind fs = List.length (List.filter (fun f -> f.Lint.kind = kind) fs)

(* --- per-site checks (v1 heritage) ----------------------------------- *)

let test_catch_all_flagged () =
  match lint "let f x = try x () with _ -> ()" with
  | [ f ] ->
    Alcotest.(check bool) "kind" true (f.Lint.kind = Lint.Catch_all);
    Alcotest.(check int) "line" 1 f.Lint.line;
    Alcotest.(check string) "stable kind name" "catch-all"
      (Lint.kind_name f.Lint.kind)
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

let test_catch_all_variants () =
  let flagged src = has Lint.Catch_all (lint src) in
  Alcotest.(check bool) "with e -> log" true
    (flagged "let f x = try x () with e -> ignore e");
  Alcotest.(check bool) "match exception _ ->" true
    (flagged "let f x = match x () with v -> v | exception _ -> 0");
  Alcotest.(check bool) "or-pattern hiding a catch-all" true
    (flagged "let f x = try x () with Not_found | _ -> 0");
  Alcotest.(check bool) "specific exception ok" false
    (flagged "let f x = try x () with Not_found -> 0");
  Alcotest.(check bool) "re-raise ok" false
    (flagged "let f x = try x () with e -> cleanup (); raise e");
  Alcotest.(check bool) "qualified abort_tx ok" false
    (flagged "let f x = try x () with _ -> Control.abort_tx Explicit");
  Alcotest.(check bool) "failwith ok" false
    (flagged "let f x = try x () with e -> failwith (Printexc.to_string e)");
  Alcotest.(check bool) "guarded handler ok" false
    (flagged "let f x = try x () with e when e = Not_found -> 0")

(* The re-raiser allowlist is *named*: lookalike [fail]/[failf] from
   arbitrary modules and bare [exit] no longer count as re-raising. *)
let test_reraise_allowlist_tightened () =
  let flagged src = has Lint.Catch_all (lint src) in
  Alcotest.(check bool) "Log.fail is not a raiser" true
    (flagged "let f x = try x () with _ -> Log.fail \"boom\"");
  Alcotest.(check bool) "My.failf is not a raiser" true
    (flagged "let f x = try x () with _ -> My.failf \"%d\" 3");
  Alcotest.(check bool) "Lwt.fail is not a raiser" true
    (flagged "let f x = try x () with _ -> Lwt.fail Not_found");
  Alcotest.(check bool) "exit is not a raiser" true
    (flagged "let f x = try x () with _ -> exit 1");
  Alcotest.(check bool) "Alcotest.fail accepted" false
    (flagged "let f x = try x () with _ -> Alcotest.fail \"boom\"");
  Alcotest.(check bool) "Alcotest.failf accepted" false
    (flagged "let f x = try x () with _ -> Alcotest.failf \"%d\" 3");
  Alcotest.(check bool) "Stdlib.raise accepted" false
    (flagged "let f x = try x () with e -> Stdlib.raise e");
  Alcotest.(check bool) "invalid_arg accepted" false
    (flagged "let f x = try x () with _ -> invalid_arg \"f\"");
  Alcotest.(check bool) "assert accepted" false
    (flagged "let f x = try x () with _ -> assert false")

let test_obj_magic () =
  Alcotest.(check bool) "flagged" true
    (has Lint.Obj_magic (lint "let f (x : int) : string = Obj.magic x"));
  Alcotest.(check (list findings)) "annotated site clean" []
    (lint
       "let f (x : int) : string = (Obj.magic x [@txlint.allow \
        \"obj-magic\" \"test fixture\"])")

let test_stm_escape () =
  let src = "let f tv = Stm_core.Tvar.unsafe_write tv 1" in
  Alcotest.(check bool) "unsafe_write flagged" true
    (has Lint.Stm_escape (lint src));
  Alcotest.(check bool) "peek flagged" true
    (has Lint.Stm_escape (lint "let f tv = S.peek tv"));
  Alcotest.(check bool) "peek_opt not an escape name" false
    (has Lint.Stm_escape (lint "let f tv = S.peek_opt tv"))

let test_crash_swallowed () =
  let flagged src = has Lint.Crash_swallowed (lint src) in
  Alcotest.(check bool) "Control.Crashed swallowed" true
    (flagged "let f x = try x () with Control.Crashed -> ()");
  Alcotest.(check bool) "Faults.Injected_failure swallowed" true
    (flagged "let f x = try x () with Faults.Injected_failure -> 0");
  Alcotest.(check bool) "match-exception form" true
    (flagged
       "let f x = match x () with v -> v | exception Control.Crashed -> 0");
  Alcotest.(check bool) "hidden in an or-pattern" true
    (flagged "let f x = try x () with Not_found | Control.Crashed -> 0");
  Alcotest.(check bool) "unqualified constructor still caught" true
    (flagged "let f x = try x () with Crashed -> ()");
  Alcotest.(check bool) "cleanup-then-reraise ok" false
    (flagged
       "let f x = try x () with Control.Crashed as e -> cleanup (); raise e");
  Alcotest.(check bool) "guarded handler ok" false
    (flagged "let f x = try x () with Control.Crashed when debug -> 0");
  Alcotest.(check bool) "unrelated exception ok" false
    (flagged "let f x = try x () with Not_found -> 0")

let test_parse_error_reported () =
  match Lint.lint_string ~filename:"broken.ml" "let = (" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error msg ->
    Alcotest.(check bool) "names the file" true
      (String.length msg >= 6 && String.sub msg 0 6 = "broken")

(* --- suppression annotations ----------------------------------------- *)

let test_allow_placements () =
  Alcotest.(check (list findings)) "expression annotation" []
    (lint
       "let f tv = (S.peek tv [@txlint.allow \"stm-escape\" \"test\"])");
  Alcotest.(check (list findings)) "binding annotation" []
    (lint "let f tv = S.peek tv [@@txlint.allow \"stm-escape\" \"test\"]");
  Alcotest.(check (list findings)) "floating file-level annotation" []
    (lint
       "[@@@txlint.allow \"stm-escape\" \"test\"]\nlet f tv = S.peek tv");
  (* A floating annotation only covers what follows it. *)
  Alcotest.(check bool) "floating does not reach backwards" true
    (has Lint.Stm_escape
       (lint
          "let f tv = S.peek tv\n\
           [@@@txlint.allow \"stm-escape\" \"test\"]\n\
           let g tv = S.peek tv"))

let test_allow_is_kind_specific () =
  let fs =
    lint "let f tv = (S.peek tv [@txlint.allow \"obj-magic\" \"wrong\"])"
  in
  Alcotest.(check bool) "wrong kind does not suppress" true
    (has Lint.Stm_escape fs)

let test_bad_allow () =
  let fs = lint "let f tv = (S.peek tv [@txlint.allow \"stm-escape\"])" in
  Alcotest.(check bool) "missing reason reported" true
    (has Lint.Bad_allow fs);
  Alcotest.(check bool) "invalid allow does not suppress" true
    (has Lint.Stm_escape fs);
  Alcotest.(check bool) "unknown kind reported" true
    (has Lint.Bad_allow
       (lint "let f x = (g x [@txlint.allow \"bogus\" \"reason\"])"));
  Alcotest.(check bool) "empty reason reported" true
    (has Lint.Bad_allow
       (lint "let f tv = (S.peek tv [@txlint.allow \"stm-escape\" \"\"])"))

(* The v1 path-suffix whitelists are fully retired: a formerly
   whitelisted path gets no special treatment — only a site annotation
   suppresses. *)
let test_whitelists_retired () =
  let src = "let f tv = S.peek tv" in
  (match Lint.lint_string ~filename:"lib/harness/target.ml" src with
  | Ok fs ->
    Alcotest.(check bool) "formerly whitelisted path is flagged" true
      (has Lint.Stm_escape fs)
  | Error e -> Alcotest.failf "parse: %s" e);
  match
    Lint.lint_string ~filename:"lib/harness/target.ml"
      "let f tv = (S.peek tv [@txlint.allow \"stm-escape\" \"test\"])"
  with
  | Ok fs ->
    Alcotest.(check bool) "annotation still suppresses there" false
      (has Lint.Stm_escape fs)
  | Error e -> Alcotest.failf "parse: %s" e

(* --- interprocedural pass -------------------------------------------- *)

let test_tx_escape_direct () =
  let fs = lint "let f stm tv = atomic (fun _ctx -> S.peek tv)" in
  Alcotest.(check bool) "direct escape inside atomic" true
    (has Lint.Tx_escape fs)

let test_tx_swallow_via_helper () =
  let fs =
    analyze
      [ ( "lib/x/mem_swallow.ml",
          "let quiet f = try f () with _ -> 0\n\
           let go tv = atomic (fun ctx -> quiet (fun () -> read ctx tv))" )
      ]
  in
  Alcotest.(check bool) "helper's catch-all flagged per-site" true
    (has Lint.Catch_all fs);
  Alcotest.(check bool) "reachability flagged in the tx body" true
    (has Lint.Tx_swallow fs);
  (* The witness chain names the helper. *)
  Alcotest.(check bool) "chain names the helper" true
    (List.exists
       (fun f ->
         f.Lint.kind = Lint.Tx_swallow
         &&
         let msg = f.Lint.msg in
         let has_sub s =
           let ls = String.length s and lm = String.length msg in
           let rec at i = i + ls <= lm && (String.sub msg i ls = s || at (i + 1)) in
           at 0
         in
         has_sub "quiet")
       fs)

(* Calling [atomic] (or a function that runs its own transaction) from
   inside a transaction body is composition, not an escape: the engine's
   commit machinery behind the entry point must not leak into caller
   summaries. *)
let test_entry_points_are_barriers () =
  let fs =
    analyze
      [ ( "lib/x/mem_barrier.ml",
          "let op tv = atomic (fun _ -> write tv 1)\n\
           let compose tv = atomic (fun _ -> op tv)" ) ]
  in
  Alcotest.(check (list findings)) "composition is clean" [] fs

let test_lock_release_pair_in_memory () =
  let fs =
    analyze
      [ ( "lib/x/mem_locks.ml",
          "let leaky l ~owner = if Vlock.try_lock l ~owner then f l\n\
           let guarded l ~owner =\n\
          \  if Vlock.try_lock l ~owner then\n\
          \    Fun.protect ~finally:(fun () -> Vlock.unlock l) (fun () -> f l)\n\
           let handled l ~owner =\n\
          \  if Vlock.try_lock l ~owner then\n\
          \    try f l with e -> Vlock.unlock l; raise e\n\
           else ()" ) ]
  in
  Alcotest.(check int) "exactly the leaky acquire flagged" 1
    (count Lint.Lock_release fs);
  match List.filter (fun f -> f.Lint.kind = Lint.Lock_release) fs with
  | [ f ] -> Alcotest.(check int) "on the leaky line" 1 f.Lint.line
  | _ -> Alcotest.fail "expected one lock-release finding"

(* --- the committed fixture pair: v2 strictly stronger than v1 -------- *)

let find_root () =
  let rec go dir =
    if
      Sys.file_exists (Filename.concat dir "dune-project")
      && Sys.file_exists (Filename.concat dir "lib")
    then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else go parent
  in
  go (Sys.getcwd ())

let fixture_files root =
  let dir = List.fold_left Filename.concat root [ "test"; "fixtures"; "txlint" ] in
  List.map (Filename.concat dir)
    [ "fixture_helpers.ml"; "fixture_use.ml"; "fixture_locks.ml" ]

let v1_kinds =
  [ Lint.Catch_all; Lint.Obj_magic; Lint.Stm_escape; Lint.Crash_swallowed ]

let test_fixture_pair_v1_clean_v2_flagged () =
  match find_root () with
  | None -> Alcotest.fail "could not locate the source tree"
  | Some root ->
    let files = fixture_files root in
    List.iter
      (fun f ->
        Alcotest.(check bool) (f ^ " exists") true (Sys.file_exists f))
      files;
    (* v1 mode: each file alone, v1 kinds only — provably clean. *)
    List.iter
      (fun file ->
        match Lint.lint_file file with
        | Error e -> Alcotest.failf "fixture parse: %s" e
        | Ok fs ->
          let v1 = List.filter (fun f -> List.mem f.Lint.kind v1_kinds) fs in
          Alcotest.(check (list findings))
            (Filename.basename file ^ " is v1-clean") [] v1)
      files;
    (* v2: the pair analyzed together. *)
    let fs, errors = Lint.lint_files files in
    Alcotest.(check (list Alcotest.string)) "no parse errors" [] errors;
    let in_file name k =
      List.filter
        (fun f -> f.Lint.kind = k && Filename.basename f.Lint.file = name)
        fs
    in
    (* direct_wrap, two_deep (helper two calls deep) and the
       mutually-recursive pair: three flagged tx bodies. *)
    Alcotest.(check int) "three tx-escapes in fixture_use" 3
      (List.length (in_file "fixture_use.ml" Lint.Tx_escape));
    Alcotest.(check int) "annotated helpers stay clean" 0
      (List.length (in_file "fixture_helpers.ml" Lint.Tx_escape));
    Alcotest.(check int) "leaky acquire flagged" 1
      (List.length (in_file "fixture_locks.ml" Lint.Lock_release));
    (* The two-deep chain names both hops. *)
    let two_deep =
      List.exists
        (fun f ->
          f.Lint.kind = Lint.Tx_escape
          &&
          let msg = f.Lint.msg in
          let has_sub s =
            let ls = String.length s and lm = String.length msg in
            let rec at i =
              i + ls <= lm && (String.sub msg i ls = s || at (i + 1))
            in
            at 0
          in
          has_sub "snapshot" && has_sub "read_raw")
        fs
    in
    Alcotest.(check bool) "witness chain shows both hops" true two_deep

(* --- SARIF ------------------------------------------------------------ *)

let test_sarif_minimum_schema () =
  let fs =
    analyze [ ("lib/x/mem_sarif.ml", "let f tv = S.peek tv") ]
  in
  Alcotest.(check int) "one finding to serialize" 1 (List.length fs);
  let module R = Harness.Report in
  match R.of_string (Sarif.to_string fs) with
  | Error e -> Alcotest.failf "SARIF output is not valid JSON: %s" e
  | Ok json ->
    let str_member k j =
      match R.member k j with Some (R.Str s) -> s | _ -> ""
    in
    Alcotest.(check string) "version" "2.1.0" (str_member "version" json);
    Alcotest.(check bool) "$schema points at SARIF 2.1.0" true
      (str_member "$schema" json
       = "https://json.schemastore.org/sarif-2.1.0.json");
    let run =
      match R.member "runs" json with
      | Some (R.List [ r ]) -> r
      | _ -> Alcotest.fail "expected exactly one run"
    in
    let driver =
      match R.member "tool" run with
      | Some t -> (
        match R.member "driver" t with
        | Some d -> d
        | None -> Alcotest.fail "missing tool.driver")
      | None -> Alcotest.fail "missing tool"
    in
    Alcotest.(check string) "driver name" "txlint"
      (str_member "name" driver);
    (match R.member "rules" driver with
    | Some (R.List rules) ->
      Alcotest.(check int) "one rule per kind"
        (List.length Lint.all_kinds) (List.length rules)
    | _ -> Alcotest.fail "missing driver.rules");
    (* Run-level artifact index: one entry per distinct file, resolvable
       to an absolute path through originalUriBaseIds. *)
    (match R.member "originalUriBaseIds" run with
    | Some bases -> (
      match R.member "SRCROOT" bases with
      | Some b ->
        let uri = str_member "uri" b in
        Alcotest.(check bool) "SRCROOT is a file uri" true
          (String.length uri > 8 && String.sub uri 0 7 = "file://");
        Alcotest.(check bool) "SRCROOT ends with a slash" true
          (uri.[String.length uri - 1] = '/')
      | None -> Alcotest.fail "missing originalUriBaseIds.SRCROOT")
    | None -> Alcotest.fail "missing originalUriBaseIds");
    (match R.member "artifacts" run with
    | Some (R.List [ a ]) ->
      (match R.member "location" a with
      | Some l ->
        Alcotest.(check string) "artifact location uri" "lib/x/mem_sarif.ml"
          (str_member "uri" l);
        Alcotest.(check string) "artifact uriBaseId" "SRCROOT"
          (str_member "uriBaseId" l)
      | None -> Alcotest.fail "missing artifact.location")
    | _ -> Alcotest.fail "expected exactly one artifact");
    (match R.member "results" run with
    | Some (R.List [ result ]) -> (
      Alcotest.(check string) "ruleId" "stm-escape"
        (str_member "ruleId" result);
      Alcotest.(check bool) "message text present" true
        (match R.member "message" result with
        | Some m -> str_member "text" m <> ""
        | None -> false);
      match R.member "locations" result with
      | Some (R.List [ loc ]) -> (
        match R.member "physicalLocation" loc with
        | Some pl ->
          (match R.member "artifactLocation" pl with
          | Some a ->
            let int_member k j =
              match R.member k j with Some (R.Int i) -> i | _ -> -1
            in
            Alcotest.(check string) "artifact uri" "lib/x/mem_sarif.ml"
              (str_member "uri" a);
            Alcotest.(check string) "result uriBaseId" "SRCROOT"
              (str_member "uriBaseId" a);
            Alcotest.(check int) "index into run.artifacts" 0
              (int_member "index" a)
          | None -> Alcotest.fail "missing artifactLocation");
          (match R.member "region" pl with
          | Some rg ->
            let int_member k j =
              match R.member k j with Some (R.Int i) -> i | _ -> -1
            in
            Alcotest.(check int) "startLine 1-based" 1
              (int_member "startLine" rg);
            Alcotest.(check bool) "startColumn 1-based" true
              (int_member "startColumn" rg >= 1)
          | None -> Alcotest.fail "missing region")
        | None -> Alcotest.fail "missing physicalLocation")
      | _ -> Alcotest.fail "expected one location")
    | _ -> Alcotest.fail "expected exactly one result")

(* --- baselines -------------------------------------------------------- *)

let test_baseline_roundtrip () =
  let fs =
    analyze
      [ ( "lib/x/mem_base.ml",
          "let f tv = S.peek tv\nlet g tv = S.unsafe_write tv 1" ) ]
  in
  Alcotest.(check int) "two findings" 2 (List.length fs);
  let baseline_text =
    "# comment\n\n"
    ^ String.concat "\n" (List.map Lint.finding_key fs)
    ^ "\n"
  in
  let baseline = Lint.parse_baseline baseline_text in
  Alcotest.(check int) "comments and blanks skipped" 2
    (List.length baseline);
  Alcotest.(check (list findings)) "full baseline suppresses all" []
    (Lint.subtract_baseline ~baseline fs);
  (* A partial baseline keeps the novel finding. *)
  let partial = [ Lint.finding_key (List.hd fs) ] in
  Alcotest.(check int) "partial baseline keeps the rest" 1
    (List.length (Lint.subtract_baseline ~baseline:partial fs));
  (* Keys are line-independent: shifting the finding does not unbaseline
     it. *)
  let shifted = { (List.hd fs) with Lint.line = 99 } in
  Alcotest.(check (list findings)) "baseline survives a line shift" []
    (Lint.subtract_baseline ~baseline:partial [ shifted ])

(* --- the repo itself -------------------------------------------------- *)

let test_fixture_dirs_skipped () =
  match find_root () with
  | None -> Alcotest.fail "could not locate the source tree"
  | Some root ->
    let files = Lint.ml_files_under [ Filename.concat root "test" ] in
    Alcotest.(check bool) "fixtures are not walked" false
      (List.exists
         (fun f ->
           List.mem "fixtures" (String.split_on_char '/' f))
         files)

(* The whole repository — lib, bin, examples and test — must lint clean
   under every v2 check, with annotations (each carrying a reason) at
   the sanctioned sites. *)
let test_repo_is_clean () =
  match find_root () with
  | None -> Alcotest.fail "could not locate the source tree"
  | Some root ->
    let roots =
      List.filter Sys.file_exists
        (List.map (Filename.concat root) [ "lib"; "bin"; "examples"; "test" ])
    in
    let files = Lint.ml_files_under roots in
    Alcotest.(check bool) "found the repo sources" true
      (List.length files > 40);
    let fs, errors = Lint.lint_files files in
    Alcotest.(check (list findings)) "no findings on the repo" [] fs;
    Alcotest.(check (list Alcotest.string)) "no parse errors" [] errors

let suite =
  [ Alcotest.test_case "catch-all flagged" `Quick test_catch_all_flagged;
    Alcotest.test_case "catch-all variants" `Quick test_catch_all_variants;
    Alcotest.test_case "re-raiser allowlist tightened" `Quick
      test_reraise_allowlist_tightened;
    Alcotest.test_case "Obj.magic outside annotation" `Quick test_obj_magic;
    Alcotest.test_case "escape hatches flagged" `Quick test_stm_escape;
    Alcotest.test_case "crash-fault swallowing flagged" `Quick
      test_crash_swallowed;
    Alcotest.test_case "parse errors reported" `Quick
      test_parse_error_reported;
    Alcotest.test_case "allow placements" `Quick test_allow_placements;
    Alcotest.test_case "allow is kind-specific" `Quick
      test_allow_is_kind_specific;
    Alcotest.test_case "malformed allows reported" `Quick test_bad_allow;
    Alcotest.test_case "path whitelists retired" `Quick
      test_whitelists_retired;
    Alcotest.test_case "tx-escape direct" `Quick test_tx_escape_direct;
    Alcotest.test_case "tx-swallow via helper" `Quick
      test_tx_swallow_via_helper;
    Alcotest.test_case "entry points are barriers" `Quick
      test_entry_points_are_barriers;
    Alcotest.test_case "lock-release pair" `Quick
      test_lock_release_pair_in_memory;
    Alcotest.test_case "fixture pair: v1 clean, v2 flagged" `Quick
      test_fixture_pair_v1_clean_v2_flagged;
    Alcotest.test_case "SARIF minimum schema" `Quick
      test_sarif_minimum_schema;
    Alcotest.test_case "baseline roundtrip" `Quick test_baseline_roundtrip;
    Alcotest.test_case "fixture dirs skipped" `Quick
      test_fixture_dirs_skipped;
    Alcotest.test_case "repo lints clean" `Quick test_repo_is_clean ]
