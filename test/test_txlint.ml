(* The static STM-discipline lint (lib/txlint/lint.ml).

   Fixture sources are linted in-memory with [Lint.lint_string]; the
   executable wrapper (bin/txlint.ml) only adds the file walk and exit
   codes around it. *)

let findings = Alcotest.testable Lint.pp_finding ( = )

let lint ?(filename = "lib/somewhere/code.ml") src =
  match Lint.lint_string ~filename src with
  | Ok fs -> fs
  | Error e -> Alcotest.failf "fixture did not parse: %s" e

let test_catch_all_flagged () =
  match lint "let f x = try x () with _ -> ()" with
  | [ f ] ->
    Alcotest.(check bool) "kind" true (f.Lint.kind = Lint.Catch_all);
    Alcotest.(check int) "line" 1 f.Lint.line;
    Alcotest.(check string) "stable kind name" "catch-all"
      (Lint.kind_name f.Lint.kind)
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

let test_catch_all_variants () =
  let flagged src =
    List.exists (fun f -> f.Lint.kind = Lint.Catch_all) (lint src)
  in
  Alcotest.(check bool) "with e -> log" true
    (flagged "let f x = try x () with e -> ignore e");
  Alcotest.(check bool) "match exception _ ->" true
    (flagged "let f x = match x () with v -> v | exception _ -> 0");
  Alcotest.(check bool) "or-pattern hiding a catch-all" true
    (flagged "let f x = try x () with Not_found | _ -> 0");
  Alcotest.(check bool) "specific exception ok" false
    (flagged "let f x = try x () with Not_found -> 0");
  Alcotest.(check bool) "re-raise ok" false
    (flagged "let f x = try x () with e -> cleanup (); raise e");
  Alcotest.(check bool) "qualified abort_tx ok" false
    (flagged "let f x = try x () with _ -> Control.abort_tx Explicit");
  Alcotest.(check bool) "failwith ok" false
    (flagged "let f x = try x () with e -> failwith (Printexc.to_string e)");
  Alcotest.(check bool) "guarded handler ok" false
    (flagged "let f x = try x () with e when e = Not_found -> 0")

let test_obj_magic () =
  let fs = lint "let f (x : int) : string = Obj.magic x" in
  Alcotest.(check bool) "flagged" true
    (List.exists (fun f -> f.Lint.kind = Lint.Obj_magic) fs);
  (* The one sanctioned site. *)
  let fs =
    lint ~filename:"/root/repo/lib/stm_core/rwsets.ml"
      "let f (x : int) : string = Obj.magic x"
  in
  Alcotest.(check (list findings)) "whitelisted" [] fs

let test_stm_escape () =
  let src = "let f tv = Stm_core.Tvar.unsafe_write tv 1" in
  let fs = lint src in
  Alcotest.(check bool) "unsafe_write flagged" true
    (List.exists (fun f -> f.Lint.kind = Lint.Stm_escape) fs);
  Alcotest.(check bool) "peek flagged" true
    (List.exists
       (fun f -> f.Lint.kind = Lint.Stm_escape)
       (lint "let f tv = S.peek tv"));
  (* Whitelisted modules may use them (suffix match, absolute path). *)
  Alcotest.(check (list findings)) "whitelisted harness site" []
    (lint ~filename:"/root/repo/lib/harness/target.ml" src);
  (* ...but the suffix must align to a path component. *)
  Alcotest.(check bool) "suffix cannot match mid-name" true
    (lint ~filename:"lib/harness/not_target.ml" src <> [])

(* The crash-swallowed check: handlers that absorb the raise-at-point
   fault exceptions defeat the crash simulation, so every fixture the
   fault layer can produce must be detected. *)
let test_crash_swallowed () =
  let flagged src =
    List.exists (fun f -> f.Lint.kind = Lint.Crash_swallowed) (lint src)
  in
  Alcotest.(check bool) "Control.Crashed swallowed" true
    (flagged "let f x = try x () with Control.Crashed -> ()");
  Alcotest.(check bool) "Faults.Injected_failure swallowed" true
    (flagged "let f x = try x () with Faults.Injected_failure -> 0");
  Alcotest.(check bool) "match-exception form" true
    (flagged "let f x = match x () with v -> v | exception Control.Crashed -> 0");
  Alcotest.(check bool) "hidden in an or-pattern" true
    (flagged "let f x = try x () with Not_found | Control.Crashed -> 0");
  Alcotest.(check bool) "unqualified constructor still caught" true
    (flagged "let f x = try x () with Crashed -> ()");
  (* The sanctioned patterns. *)
  Alcotest.(check bool) "cleanup-then-reraise ok" false
    (flagged "let f x = try x () with Control.Crashed as e -> cleanup (); raise e");
  Alcotest.(check bool) "guarded handler ok" false
    (flagged "let f x = try x () with Control.Crashed when debug -> 0");
  Alcotest.(check bool) "unrelated exception ok" false
    (flagged "let f x = try x () with Not_found -> 0");
  (* The chaos harness orchestrates the crashes and may absorb them. *)
  Alcotest.(check (list findings)) "chaos harness whitelisted" []
    (lint ~filename:"/root/repo/lib/harness/chaos.ml"
       "let f x = try x () with Control.Crashed -> ()");
  (* Stable machine name for CI greps. *)
  (match lint "let f x = try x () with Control.Crashed -> ()" with
  | [ f ] ->
    Alcotest.(check string) "stable kind name" "crash-swallowed"
      (Lint.kind_name f.Lint.kind)
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs))

let test_parse_error_reported () =
  match Lint.lint_string ~filename:"broken.ml" "let = (" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error msg ->
    Alcotest.(check bool) "names the file" true
      (String.length msg >= 6 && String.sub msg 0 6 = "broken")

(* The whole repository must lint clean — the committed whitelist is the
   policy.  Tests run from _build/default/test, so walk up to the nearest
   directory that has the source tree (dune copies it into the build
   context). *)
let test_repo_is_clean () =
  let rec find_root dir =
    if Sys.file_exists (Filename.concat dir "dune-project")
       && Sys.file_exists (Filename.concat dir "lib")
    then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else find_root parent
  in
  match find_root (Sys.getcwd ()) with
  | None -> Alcotest.fail "could not locate the source tree"
  | Some root ->
    let roots =
      List.filter Sys.file_exists
        (List.map (Filename.concat root) [ "lib"; "bin"; "examples" ])
    in
    let files = Lint.ml_files_under roots in
    Alcotest.(check bool) "found the repo sources" true
      (List.length files > 30);
    let fs, errors = Lint.lint_files files in
    Alcotest.(check (list findings)) "no findings on the repo" [] fs;
    Alcotest.(check (list Alcotest.string)) "no parse errors" [] errors

let suite =
  [ Alcotest.test_case "catch-all flagged" `Quick test_catch_all_flagged;
    Alcotest.test_case "catch-all variants" `Quick test_catch_all_variants;
    Alcotest.test_case "Obj.magic outside whitelist" `Quick test_obj_magic;
    Alcotest.test_case "escape hatches outside whitelist" `Quick
      test_stm_escape;
    Alcotest.test_case "crash-fault swallowing flagged" `Quick
      test_crash_swallowed;
    Alcotest.test_case "parse errors reported" `Quick
      test_parse_error_reported;
    Alcotest.test_case "repo lints clean" `Quick test_repo_is_clean ]
