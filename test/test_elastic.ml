[@@@txlint.allow "stm-escape"
    "tests drive the escape hatches directly: preloads and post-run \
     state checks are quiescent"]

(* The elastic relaxation itself (Sections II.A and V):

   - an update transaction whose read-only *prefix* is invalidated by a
     concurrent commit still commits under elastic mode (the win of
     Fig. 6), while regular mode and the classic STMs abort and retry;
   - a conflict *inside the window* (the immediate past reads) aborts the
     elastic transaction too — elasticity is not a license to miss real
     conflicts;
   - the minimal protected set recorded for elastic transactions matches
     Section V: the sliding window for a read-only transaction, and
     window-at-first-write plus everything after for an updater.  (Our
     window spans the last two reads — the width chain updates need — so
     Pmin of a read-only traversal is its last two reads rather than just
     {r_n}.) *)

open Stm_core

(* Helpers: each scenario resets the STM's stats, runs one victim
   transaction, and fires an independent interfering transaction from
   another domain at a marked point of the victim's first attempt. *)

let once fired f () =
  if not !fired then begin
    fired := true;
    Domain.join (Domain.spawn f)
  end

let prefix_scenario (module S : Stm_intf.S) ~mode =
  let a = S.tvar 0 and b = S.tvar 0 and c = S.tvar 0 and d = S.tvar 0 in
  Stats.reset S.stats;
  let fired = ref false in
  let mark = once fired (fun () -> S.atomic (fun ctx -> S.write ctx a 9)) in
  S.atomic ~mode (fun ctx ->
      ignore (S.read ctx a);
      ignore (S.read ctx b);
      ignore (S.read ctx c);
      (* a has left the two-read window {b, c}; a concurrent commit to it
         is a prefix conflict. *)
      mark ();
      S.write ctx d 1);
  ((Stats.snapshot S.stats).Stats.aborts, S.peek a, S.peek d)

let test_elastic_ignores_prefix_conflict () =
  let aborts, a, d = prefix_scenario (module Oestm.Oe) ~mode:Stm_intf.Elastic in
  Alcotest.(check int) "no abort under elastic mode" 0 aborts;
  Alcotest.(check (pair int int)) "both commits applied" (9, 1) (a, d)

let test_regular_aborts_on_prefix_conflict () =
  let aborts, a, d = prefix_scenario (module Oestm.Oe) ~mode:Stm_intf.Regular in
  Alcotest.(check bool) "regular mode aborts at least once" true (aborts >= 1);
  Alcotest.(check (pair int int)) "retry converges" (9, 1) (a, d)

let test_classic_aborts_on_prefix_conflict () =
  List.iter
    (fun (module S : Stm_intf.S) ->
      let aborts, a, d = prefix_scenario (module S) ~mode:Stm_intf.Elastic in
      Alcotest.(check bool)
        (S.name ^ " treats elastic as regular and aborts")
        true (aborts >= 1);
      Alcotest.(check (pair int int)) (S.name ^ " retry converges") (9, 1) (a, d))
    [ (module Classic_stm.Tl2); (module Classic_stm.Lsa);
      (module Classic_stm.Swisstm) ]

let test_elastic_aborts_on_window_conflict () =
  (* The interference hits c, which is still inside the window when the
     write happens: the elastic transaction must notice. *)
  let module S = Oestm.Oe in
  let a = S.tvar 0 and b = S.tvar 0 and c = S.tvar 0 and d = S.tvar 0 in
  Stats.reset S.stats;
  let fired = ref false in
  let mark = once fired (fun () -> S.atomic (fun ctx -> S.write ctx c 9)) in
  S.atomic ~mode:Stm_intf.Elastic (fun ctx ->
      ignore (S.read ctx a);
      ignore (S.read ctx b);
      ignore (S.read ctx c);
      mark ();
      S.write ctx d (S.read ctx d + 1));
  let aborts = (Stats.snapshot S.stats).Stats.aborts in
  Alcotest.(check bool) "window conflict aborts" true (aborts >= 1);
  Alcotest.(check int) "d committed exactly once" 1 (S.peek d)

let test_elastic_write_conflict_detected () =
  (* Read-modify-write races on a single tvar must serialise under elastic
     mode too (this is how the counter tests pass; checked explicitly). *)
  let module S = Oestm.Oe in
  let x = S.tvar 0 in
  Stats.reset S.stats;
  let fired = ref false in
  let mark =
    once fired (fun () ->
        S.atomic (fun ctx -> S.write ctx x (S.read ctx x + 10)))
  in
  S.atomic ~mode:Stm_intf.Elastic (fun ctx ->
      let v = S.read ctx x in
      mark ();
      S.write ctx x (v + 1));
  let aborts = (Stats.snapshot S.stats).Stats.aborts in
  Alcotest.(check bool) "lost update prevented" true (aborts >= 1);
  Alcotest.(check int) "both increments applied" 11 (S.peek x)

(* ------------------------------------------------------------------ *)
(* Recorded minimal protected sets (Section V)                         *)

let pmin_of_recorded (module S : Stm_intf.S) ~body =
  let events, ids =
    Recorder.record (fun () ->
        let out = ref [] in
        let outcome, _ =
          Schedsim.Sched.run
            [ (fun () -> out := body ()) ]
        in
        assert (Schedsim.Sched.completed outcome);
        !out)
  in
  let h = Histories.Convert.to_history events in
  let tx =
    match Histories.History.committed h with
    | [ t ] -> t
    | l -> Alcotest.failf "expected 1 committed tx, got %d" (List.length l)
  in
  (List.sort compare (Histories.History.pmin h tx), ids)

let test_pmin_read_only_elastic () =
  let module S = Oestm.Oe in
  let a = S.tvar 0 and b = S.tvar 0 and c = S.tvar 0 in
  let pmin, ids =
    pmin_of_recorded (module S) ~body:(fun () ->
        S.atomic ~mode:Stm_intf.Elastic (fun ctx ->
            ignore (S.read ctx a);
            ignore (S.read ctx b);
            ignore (S.read ctx c));
        [ S.tvar_id a; S.tvar_id b; S.tvar_id c ])
  in
  let expected =
    match ids with [ _; ib; ic ] -> List.sort compare [ ib; ic ] | _ -> []
  in
  (* Pmin of a read-only elastic traversal is its sliding window — the last
     two reads — not the whole read set. *)
  Alcotest.(check (list int)) "Pmin = window = last two reads" expected pmin

let test_pmin_update_elastic () =
  let module S = Oestm.Oe in
  let a = S.tvar 0 and b = S.tvar 0 and c = S.tvar 0 and d = S.tvar 0 in
  let pmin, ids =
    pmin_of_recorded (module S) ~body:(fun () ->
        S.atomic ~mode:Stm_intf.Elastic (fun ctx ->
            ignore (S.read ctx a);
            ignore (S.read ctx b);
            ignore (S.read ctx c);
            S.write ctx d 1);
        [ S.tvar_id a; S.tvar_id b; S.tvar_id c; S.tvar_id d ])
  in
  let expected =
    match ids with
    | [ _; ib; ic; id ] -> List.sort compare [ ib; ic; id ]
    | _ -> []
  in
  (* Section V: Pmin = {r_k, ..., r_n} — the window at the first write (b
     and c) plus every access from the write on (d); a is relaxed away. *)
  Alcotest.(check (list int)) "Pmin = {b, c, d}" expected pmin

let test_pmin_classic_covers_everything () =
  let module S = Classic_stm.Tl2 in
  let a = S.tvar 0 and b = S.tvar 0 and c = S.tvar 0 in
  let pmin, ids =
    pmin_of_recorded (module S) ~body:(fun () ->
        S.atomic (fun ctx ->
            ignore (S.read ctx a);
            ignore (S.read ctx b);
            S.write ctx c 1);
        [ S.tvar_id a; S.tvar_id b; S.tvar_id c ])
  in
  Alcotest.(check (list int)) "classic Pmin = all accessed locations"
    (List.sort compare ids) pmin

(* ------------------------------------------------------------------ *)
(* DSTM-style early release (Section II.A)                             *)

let test_early_release_avoids_conflict () =
  (* A regular-mode transaction reads a and b, releases a, and is then
     interfered with on a: without the release it must abort (previous
     tests); with it, it commits untouched. *)
  let module S = Oestm.Oe in
  let a = S.tvar 0 and b = S.tvar 0 and d = S.tvar 0 in
  Stats.reset S.stats;
  let fired = ref false in
  let mark = once fired (fun () -> S.atomic (fun ctx -> S.write ctx a 9)) in
  S.atomic ~mode:Stm_intf.Regular (fun ctx ->
      ignore (S.read ctx a);
      ignore (S.read ctx b);
      S.release ctx a;
      mark ();
      S.write ctx d 1);
  Alcotest.(check int) "no abort after early release" 0
    (Stats.snapshot S.stats).Stats.aborts;
  Alcotest.(check (pair int int)) "both committed" (9, 1) (S.peek a, S.peek d)

let test_early_release_keeps_other_reads () =
  (* Releasing a must not blunt conflict detection on b. *)
  let module S = Oestm.Oe in
  let a = S.tvar 0 and b = S.tvar 0 and d = S.tvar 0 in
  Stats.reset S.stats;
  let fired = ref false in
  let mark = once fired (fun () -> S.atomic (fun ctx -> S.write ctx b 9)) in
  S.atomic ~mode:Stm_intf.Regular (fun ctx ->
      ignore (S.read ctx a);
      ignore (S.read ctx b);
      S.release ctx a;
      mark ();
      S.write ctx d (S.read ctx d + 1));
  Alcotest.(check bool) "conflict on b still detected" true
    ((Stats.snapshot S.stats).Stats.aborts >= 1);
  Alcotest.(check int) "d committed once" 1 (S.peek d)

let test_early_release_recorded_pmin () =
  let module S = Oestm.Oe in
  let a = S.tvar 0 and b = S.tvar 0 in
  let pmin, ids =
    pmin_of_recorded (module S) ~body:(fun () ->
        S.atomic ~mode:Stm_intf.Regular (fun ctx ->
            ignore (S.read ctx a);
            ignore (S.read ctx b);
            S.release ctx a);
        [ S.tvar_id a; S.tvar_id b ])
  in
  match ids with
  | [ ia; ib ] ->
    Alcotest.(check bool) "released location left Pmin" false
      (List.mem ia pmin);
    Alcotest.(check bool) "other location still protected" true
      (List.mem ib pmin)
  | _ -> Alcotest.fail "unexpected ids"

let suite =
  [ Alcotest.test_case "elastic ignores prefix conflicts" `Quick
      test_elastic_ignores_prefix_conflict;
    Alcotest.test_case "regular aborts on prefix conflicts" `Quick
      test_regular_aborts_on_prefix_conflict;
    Alcotest.test_case "classics abort on prefix conflicts" `Quick
      test_classic_aborts_on_prefix_conflict;
    Alcotest.test_case "elastic aborts on window conflicts" `Quick
      test_elastic_aborts_on_window_conflict;
    Alcotest.test_case "elastic write conflicts detected" `Quick
      test_elastic_write_conflict_detected;
    Alcotest.test_case "Pmin: read-only elastic = window" `Quick
      test_pmin_read_only_elastic;
    Alcotest.test_case "Pmin: update elastic = {r_k..r_n}" `Quick
      test_pmin_update_elastic;
    Alcotest.test_case "Pmin: classic = everything" `Quick
      test_pmin_classic_covers_everything;
    Alcotest.test_case "early release avoids conflict" `Quick
      test_early_release_avoids_conflict;
    Alcotest.test_case "early release keeps other reads" `Quick
      test_early_release_keeps_other_reads;
    Alcotest.test_case "early release leaves Pmin" `Quick
      test_early_release_recorded_pmin ]
