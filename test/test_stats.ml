open Stm_core

let test_counting () =
  let s = Stats.create () in
  Stats.record_commit s;
  Stats.record_commit s;
  Stats.record_abort s Control.Validation_failed;
  Stats.record_abort s Control.Lock_contention;
  Stats.record_abort s Control.Validation_failed;
  let snap = Stats.snapshot s in
  Alcotest.(check int) "commits" 2 snap.Stats.commits;
  Alcotest.(check int) "aborts" 3 snap.Stats.aborts;
  Alcotest.(check int) "validation aborts" 2
    (List.assoc Control.Validation_failed snap.Stats.by_reason);
  Alcotest.(check (float 1e-9)) "abort rate" 0.6 (Stats.abort_rate snap);
  Stats.reset s;
  let snap = Stats.snapshot s in
  Alcotest.(check int) "commits after reset" 0 snap.Stats.commits;
  Alcotest.(check (float 1e-9)) "rate on empty" 0.0 (Stats.abort_rate snap)

let test_reason_index_bijective () =
  let indices = List.map Control.reason_index Control.all_reasons in
  Alcotest.(check int) "count" Control.reason_count (List.length indices);
  Alcotest.(check (list int)) "indices are 0..n-1"
    (List.init Control.reason_count Fun.id)
    (List.sort compare indices)

let test_parallel_counting () =
  let s = Stats.create () in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 1000 do
              Stats.record_commit s;
              Stats.record_abort s Control.Read_locked
            done))
  in
  List.iter Domain.join domains;
  let snap = Stats.snapshot s in
  Alcotest.(check int) "parallel commits" 4000 snap.Stats.commits;
  Alcotest.(check int) "parallel aborts" 4000 snap.Stats.aborts

(* Striped recording: each domain lands in its own shard (modulo mask
   collisions); the merged snapshot must equal the per-domain ground
   truth, and histogram bucket totals must be preserved by the merge. *)
let test_striped_ground_truth () =
  let s = Stats.create () in
  let counts = [| 500; 700; 900; 1100 |] in
  let domains =
    List.init 4 (fun k ->
        Domain.spawn (fun () ->
            for i = 1 to counts.(k) do
              Stats.record_commit s;
              if i mod 2 = 0 then Stats.record_abort s Control.Read_locked;
              Stats.record_commit_latency s i
            done))
  in
  List.iter Domain.join domains;
  let total = Array.fold_left ( + ) 0 counts in
  let snap = Stats.snapshot s in
  Alcotest.(check int) "merged commits" total snap.Stats.commits;
  Alcotest.(check int) "merged aborts"
    (Array.fold_left (fun acc n -> acc + (n / 2)) 0 counts)
    snap.Stats.aborts;
  Alcotest.(check int) "merged by_reason" snap.Stats.aborts
    (List.assoc Control.Read_locked snap.Stats.by_reason);
  (* Per-bucket ground truth, replayed sequentially. *)
  let expected = Array.make Stats.Hist.buckets 0 in
  Array.iter
    (fun n ->
      for i = 1 to n do
        let b = Stats.Hist.bucket_of i in
        expected.(b) <- expected.(b) + 1
      done)
    counts;
  Alcotest.(check (array int)) "merged hist buckets" expected
    snap.Stats.commit_latency_ns;
  Alcotest.(check int) "merged hist count" total
    (Stats.Hist.count snap.Stats.commit_latency_ns)

let record_one s n =
  let n = abs n in
  match n mod 8 with
  | 0 -> Stats.record_commit s
  | 1 ->
    Stats.record_abort s
      (List.nth Control.all_reasons (n mod Control.reason_count))
  | 2 -> Stats.record_commit_latency s (n * 17)
  | 3 -> Stats.record_abort_latency s (n * 13)
  | 4 -> Stats.record_rwset_sizes s ~reads:(n mod 100) ~writes:(n mod 50)
  | 5 -> Stats.record_retry_depth s (n mod 20)
  | 6 ->
    (* n mod 8 = 6 forces n even, so branch on a higher bit. *)
    if (n lsr 3) land 1 = 0 then Stats.record_read_ws_hit s
    else Stats.record_read_ws_miss s
  | _ -> Stats.record_validation_len s (n mod 200)

(* The striped implementation is observationally equivalent to a
   monolithic counter set: the same ops recorded from one domain (one
   shard) and spread over four domains (several shards) snapshot
   identically. *)
let prop_striped_equals_monolithic =
  QCheck.Test.make
    ~name:"striped recording merges to the monolithic snapshot" ~count:25
    QCheck.(list small_int)
    (fun ops ->
      let mono =
        let t = Stats.create () in
        List.iter (record_one t) ops;
        Stats.snapshot t
      in
      let s = Stats.create () in
      let arr = Array.of_list ops in
      let domains =
        List.init 4 (fun k ->
            Domain.spawn (fun () ->
                Array.iteri (fun i n -> if i mod 4 = k then record_one s n) arr))
      in
      List.iter Domain.join domains;
      Stats.snapshot s = mono)

(* ------------------------------------------------------------------ *)
(* Log-bucketed histograms                                             *)

let test_hist_buckets () =
  let module H = Stats.Hist in
  (* Bucket 0 holds the value 0; bucket i >= 1 holds [2^(i-1), 2^i). *)
  Alcotest.(check int) "bucket of 0" 0 (H.bucket_of 0);
  Alcotest.(check int) "bucket of negatives clamps to 0" 0 (H.bucket_of (-5));
  Alcotest.(check int) "bucket of 1" 1 (H.bucket_of 1);
  Alcotest.(check int) "bucket of 2" 2 (H.bucket_of 2);
  Alcotest.(check int) "bucket of 3" 2 (H.bucket_of 3);
  Alcotest.(check int) "bucket of 4" 3 (H.bucket_of 4);
  Alcotest.(check int) "bucket of 1000" 10 (H.bucket_of 1000);
  Alcotest.(check int) "bucket of max_int" (H.buckets - 1)
    (H.bucket_of max_int);
  Alcotest.(check int) "upper bound of 0" 0 (H.upper_bound 0);
  Alcotest.(check int) "upper bound of 2" 3 (H.upper_bound 2);
  Alcotest.(check int) "upper bound of 10" 1023 (H.upper_bound 10);
  let h = H.create () in
  List.iter (H.record h) [ 0; 1; 2; 3; 4; 1000 ];
  let s = H.snapshot h in
  Alcotest.(check int) "count" 6 (H.count s);
  Alcotest.(check int) "bucket 0 holds the zero" 1 s.(0);
  Alcotest.(check int) "bucket 1 holds the one" 1 s.(1);
  Alcotest.(check int) "bucket 2 holds 2 and 3" 2 s.(2);
  Alcotest.(check int) "bucket 3 holds the four" 1 s.(3);
  Alcotest.(check int) "bucket 10 holds the thousand" 1 s.(10);
  Alcotest.(check int) "max_value" 1023 (H.max_value s);
  H.reset h;
  Alcotest.(check int) "count after reset" 0 (H.count (H.snapshot h));
  Alcotest.(check int) "max_value on empty" 0 (H.max_value (H.snapshot h))

let test_hist_percentiles () =
  let module H = Stats.Hist in
  let h = H.create () in
  for _ = 1 to 90 do H.record h 1 done;
  for _ = 1 to 10 do H.record h 1000 done;
  let s = H.snapshot h in
  Alcotest.(check int) "p50 in the low bucket" 1 (H.percentile s 50.0);
  Alcotest.(check int) "p90 still in the low bucket" 1 (H.percentile s 90.0);
  Alcotest.(check int) "p99 in the high bucket" 1023 (H.percentile s 99.0);
  Alcotest.(check int) "p100 = max" 1023 (H.percentile s 100.0);
  Alcotest.(check int) "max_value" 1023 (H.max_value s);
  Alcotest.(check int) "percentile of empty is 0"
    0 (H.percentile (H.empty ()) 99.0)

(* ------------------------------------------------------------------ *)
(* Stats.add is a commutative monoid on snapshots                      *)

(* Interpret an arbitrary int list as a recording program, giving qcheck a
   cheap generator of arbitrary snapshots. *)
let snap_of_ops ops =
  let s = Stats.create () in
  List.iter (record_one s) ops;
  Stats.snapshot s

let prop_add_identity =
  QCheck.Test.make ~name:"Stats.add: empty_snapshot is the identity"
    ~count:100
    QCheck.(list small_int)
    (fun ops ->
      let s = snap_of_ops ops in
      Stats.add (Stats.empty_snapshot ()) s = s
      && Stats.add s (Stats.empty_snapshot ()) = s)

let prop_add_commutative =
  QCheck.Test.make ~name:"Stats.add commutes" ~count:100
    QCheck.(pair (list small_int) (list small_int))
    (fun (a, b) ->
      let sa = snap_of_ops a and sb = snap_of_ops b in
      Stats.add sa sb = Stats.add sb sa)

let prop_add_associative =
  QCheck.Test.make ~name:"Stats.add associates" ~count:50
    QCheck.(triple (list small_int) (list small_int) (list small_int))
    (fun (a, b, c) ->
      let sa = snap_of_ops a and sb = snap_of_ops b and sc = snap_of_ops c in
      Stats.add sa (Stats.add sb sc) = Stats.add (Stats.add sa sb) sc)

let prop_add_totals =
  QCheck.Test.make ~name:"Stats.add sums every counter" ~count:100
    QCheck.(pair (list small_int) (list small_int))
    (fun (a, b) ->
      let sa = snap_of_ops a and sb = snap_of_ops b in
      let s = Stats.add sa sb in
      s.Stats.commits = sa.Stats.commits + sb.Stats.commits
      && s.Stats.aborts = sa.Stats.aborts + sb.Stats.aborts
      && List.fold_left (fun acc (_, n) -> acc + n) 0 s.Stats.by_reason
         = s.Stats.aborts
      && Stats.Hist.count s.Stats.commit_latency_ns
         = Stats.Hist.count sa.Stats.commit_latency_ns
           + Stats.Hist.count sb.Stats.commit_latency_ns
      && Stats.Hist.count s.Stats.retry_depth
         = Stats.Hist.count sa.Stats.retry_depth
           + Stats.Hist.count sb.Stats.retry_depth)

let test_detailed_flag_plumbing () =
  let was = Stats.detailed_enabled () in
  Stats.set_detailed true;
  Alcotest.(check bool) "on" true (Stats.detailed_enabled ());
  Stats.set_detailed false;
  Alcotest.(check bool) "off" false (Stats.detailed_enabled ());
  Stats.set_detailed was

(* ------------------------------------------------------------------ *)
(* JSON report: golden shape test                                      *)

(* A deterministic figure_result with hand-computable histogram contents;
   the expected string below pins the report schema.  If you change the
   schema intentionally, bump Report.schema_version and update the golden
   (the failure output prints the actual). *)
let golden_result () =
  let s = Stats.create () in
  Stats.record_commit s;
  Stats.record_commit s;
  Stats.record_abort s Control.Validation_failed;
  Stats.record_commit_latency s 100;
  Stats.record_commit_latency s 200;
  Stats.record_abort_latency s 50;
  Stats.record_rwset_sizes s ~reads:3 ~writes:1;
  Stats.record_rwset_sizes s ~reads:4 ~writes:2;
  Stats.record_retry_depth s 0;
  Stats.record_retry_depth s 1;
  Stats.record_read_ws_hit s;
  Stats.record_read_ws_hit s;
  Stats.record_read_ws_miss s;
  Stats.record_validation_len s 3;
  Stats.record_validation_len s 5;
  let snap = Stats.snapshot s in
  let p =
    { Harness.Sweep.threads = 2; ops_per_ms = 1234.5; abort_rate = 0.25;
      total_ops = 10; total_commits = 2; total_aborts = 1;
      elapsed_ms = 100.5; runs = 1; stats = snap }
  in
  { Harness.Figures.figure = Harness.Figures.F6a;
    cfg = Harness.Workload.paper ~size_exp:4 ~bulk_ratio:0.05 ();
    threads = [ 2 ]; seed = 7; duration = 0.1; runs = 1;
    series =
      [ { Harness.Figures.series_name = "OE-STM"; points = [ p ] } ] }

let golden_json =
  {|{
  "schema_version": 2,
  "config": {
    "cm": "backoff",
    "clock": "gv1",
    "retry_cap": 64,
    "starvation_mode": "fallback",
    "tx_timeout_ns": null,
    "backoff_init": 16,
    "backoff_max": 16384,
    "faults": null
  },
  "sanitizer": null,
  "recovery": null,
  "durability": null,
  "figures": [
    {
      "figure": "6a",
      "title": "Figure 6(a): LinkedListSet, 5% addAll/removeAll",
      "workload": {
        "size_exp": 4,
        "update_ratio": 0.2,
        "bulk_ratio": 0.05
      },
      "seed": 7,
      "runs": 1,
      "duration_s": 0.1,
      "threads": [
        2
      ],
      "series": [
        {
          "name": "OE-STM",
          "points": [
            {
              "threads": 2,
              "ops_per_ms": 1234.5,
              "abort_rate": 0.25,
              "total_ops": 10,
              "elapsed_ms": 100.5,
              "runs": 1,
              "commits": 2,
              "aborts": 1,
              "starvations": 0,
              "fallbacks": 0,
              "timeouts": 0,
              "read_ws_hits": 2,
              "read_ws_misses": 1,
              "aborts_by_reason": {
                "validation-failed": 1
              },
              "commit_latency_ns": {
                "count": 2,
                "p50": 127,
                "p90": 255,
                "p99": 255,
                "max": 255
              },
              "abort_latency_ns": {
                "count": 1,
                "p50": 63,
                "p90": 63,
                "p99": 63,
                "max": 63
              },
              "retry_depth": {
                "count": 2,
                "p50": 0,
                "p90": 1,
                "p99": 1,
                "max": 1
              },
              "read_set_size": {
                "count": 2,
                "p50": 3,
                "p90": 7,
                "p99": 7,
                "max": 7
              },
              "write_set_size": {
                "count": 2,
                "p50": 1,
                "p90": 3,
                "p99": 3,
                "max": 3
              },
              "validation_len": {
                "count": 2,
                "p50": 3,
                "p90": 7,
                "p99": 7,
                "max": 7
              }
            }
          ]
        }
      ]
    }
  ]
}
|}

let test_json_golden () =
  (* The "config" object reflects process-wide runtime state; pin it to
     the shipped defaults for the duration of the check so the golden is
     independent of which suites ran first. *)
  let saved_policy = Cm.current_policy () in
  let saved_clock = Clock.current_policy () in
  let saved_cap = !Runtime.retry_cap in
  let saved_mode = !Runtime.starvation_mode in
  let saved_timeout = !Runtime.tx_timeout_ns in
  let saved_init, saved_max = Backoff.defaults () in
  let saved_faults = Faults.current () in
  let saved_san = Sanitizer.enabled () in
  Cm.set_policy Cm.Backoff;
  Clock.set_policy Runtime.GV1;
  Runtime.retry_cap := 64;
  Runtime.starvation_mode := `Fallback;
  Runtime.tx_timeout_ns := None;
  Backoff.set_defaults ~init:16 ~max_window:16384 ();
  Faults.disable ();
  Sanitizer.disable ();
  let restore () =
    Cm.set_policy saved_policy;
    Clock.set_policy saved_clock;
    Runtime.retry_cap := saved_cap;
    Runtime.starvation_mode := saved_mode;
    Runtime.tx_timeout_ns := saved_timeout;
    Backoff.set_defaults ~init:saved_init ~max_window:saved_max ();
    if saved_san then Sanitizer.enable ();
    match saved_faults with None -> () | Some c -> Faults.enable c
  in
  let actual =
    Fun.protect ~finally:restore (fun () ->
        Harness.Report.to_string (Harness.Report.report [ golden_result () ]))
  in
  Alcotest.(check string) "report JSON shape" golden_json actual;
  (* And the emitted report must parse back as JSON. *)
  match Harness.Report.of_string actual with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "golden report does not parse: %s" e

let test_json_escaping_and_parsing () =
  let module R = Harness.Report in
  Alcotest.(check string) "string escaping" "\"a\\\"b\\\\c\\nd\\u0001\""
    (R.to_string ~indent:0 (R.Str "a\"b\\c\nd\001"));
  (match R.of_string "\"a\\\"b\\\\c\\nd\\u0001\"" with
  | Ok (R.Str s) -> Alcotest.(check string) "roundtrip" "a\"b\\c\nd\001" s
  | _ -> Alcotest.fail "string did not roundtrip");
  (match R.of_string "[1, 2.5, true, null, {\"k\": []}]" with
  | Ok (R.List [ R.Int 1; R.Float 2.5; R.Bool true; R.Null; R.Obj [ ("k", R.List []) ] ]) -> ()
  | Ok _ -> Alcotest.fail "parsed wrong structure"
  | Error e -> Alcotest.failf "parse error: %s" e);
  (match R.of_string "{broken" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted malformed JSON");
  (* Non-finite floats must not produce invalid JSON. *)
  Alcotest.(check string) "nan is null" "null"
    (R.to_string ~indent:0 (R.Float Float.nan))

let suite =
  [ Alcotest.test_case "counting and rate" `Quick test_counting;
    Alcotest.test_case "reason indexing" `Quick test_reason_index_bijective;
    Alcotest.test_case "parallel counting" `Slow test_parallel_counting;
    Alcotest.test_case "striped ground truth (4 domains)" `Slow
      test_striped_ground_truth;
    QCheck_alcotest.to_alcotest prop_striped_equals_monolithic;
    Alcotest.test_case "histogram buckets" `Quick test_hist_buckets;
    Alcotest.test_case "histogram percentiles" `Quick test_hist_percentiles;
    QCheck_alcotest.to_alcotest prop_add_identity;
    QCheck_alcotest.to_alcotest prop_add_commutative;
    QCheck_alcotest.to_alcotest prop_add_associative;
    QCheck_alcotest.to_alcotest prop_add_totals;
    Alcotest.test_case "detailed flag plumbing" `Quick
      test_detailed_flag_plumbing;
    Alcotest.test_case "JSON report golden shape" `Quick test_json_golden;
    Alcotest.test_case "JSON escaping and parsing" `Quick
      test_json_escaping_and_parsing ]
