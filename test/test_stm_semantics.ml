[@@@txlint.allow "stm-escape"
    "tests drive the escape hatches directly: preloads and post-run \
     state checks are quiescent"]

(* Semantics battery run against every STM implementation: TL2, LSA,
   SwissTM, OE-STM and the deliberately broken E-STM(drop).  These tests
   exercise properties that every (even relaxed) STM must provide for
   single transactions; composition-specific behaviour is tested
   separately. *)

open Stm_core

module Battery (S : Stm_intf.S) = struct
  let test_read_write_commit () =
    let tv = S.tvar 1 in
    let result = S.atomic (fun ctx -> S.read ctx tv) in
    Alcotest.(check int) "initial read" 1 result;
    S.atomic (fun ctx -> S.write ctx tv 2);
    Alcotest.(check int) "committed write" 2 (S.peek tv)

  let test_read_your_own_writes () =
    let tv = S.tvar 10 in
    let seen =
      S.atomic (fun ctx ->
          S.write ctx tv 20;
          let a = S.read ctx tv in
          S.write ctx tv 30;
          let b = S.read ctx tv in
          (a, b))
    in
    Alcotest.(check (pair int int)) "own writes visible" (20, 30) seen;
    Alcotest.(check int) "last write committed" 30 (S.peek tv)

  let test_multi_location () =
    let a = S.tvar 0 and b = S.tvar 0 and c = S.tvar 0 in
    S.atomic (fun ctx ->
        S.write ctx a 1;
        S.write ctx b 2;
        S.write ctx c (S.read ctx a + S.read ctx b));
    Alcotest.(check (list int)) "all-or-nothing commit" [ 1; 2; 3 ]
      [ S.peek a; S.peek b; S.peek c ]

  let test_user_exception_aborts () =
    let tv = S.tvar 5 in
    (try
       S.atomic (fun ctx ->
           S.write ctx tv 99;
           failwith "boom")
     with Failure _ -> ());
    Alcotest.(check int) "write rolled back" 5 (S.peek tv);
    Alcotest.(check bool) "no transaction left open" false (S.in_transaction ())

  let test_in_transaction () =
    Alcotest.(check bool) "outside" false (S.in_transaction ());
    let inside = S.atomic (fun _ -> S.in_transaction ()) in
    Alcotest.(check bool) "inside" true inside

  let test_nested_visibility () =
    let tv = S.tvar 0 in
    let observed =
      S.atomic (fun ctx ->
          S.write ctx tv 7;
          (* Child must see the parent's pending write. *)
          let from_child = S.atomic (fun ctx' -> S.read ctx' tv) in
          (* Child write must be visible to the parent afterwards. *)
          ignore (S.atomic (fun ctx' -> S.write ctx' tv 8));
          (from_child, S.read ctx tv))
    in
    Alcotest.(check (pair int int)) "nested visibility" (7, 8) observed;
    Alcotest.(check int) "nested commit value" 8 (S.peek tv)

  let test_nested_abort_rolls_back_all () =
    let tv = S.tvar 1 in
    (try
       S.atomic (fun ctx ->
           S.write ctx tv 2;
           ignore
             (S.atomic (fun ctx' ->
                  S.write ctx' tv 3;
                  failwith "inner"));
           ())
     with Failure _ -> ());
    Alcotest.(check int) "flat nesting: everything rolled back" 1 (S.peek tv)

  let test_elastic_mode_basics () =
    let tv = S.tvar 100 in
    let v =
      S.atomic ~mode:Stm_intf.Elastic (fun ctx ->
          let v = S.read ctx tv in
          S.write ctx tv (v + 1);
          S.read ctx tv)
    in
    Alcotest.(check int) "elastic read-after-write" 101 v;
    Alcotest.(check int) "elastic commit" 101 (S.peek tv)

  (* The paper's future-work direction — composing different relaxation
     types inside one TM — is already exercised by mode mixing: elastic
     and regular children must nest under either kind of parent. *)
  let test_mixed_mode_nesting () =
    let a = S.tvar 0 and b = S.tvar 0 in
    let result =
      S.atomic ~mode:Stm_intf.Elastic (fun ctx ->
          S.write ctx a 1;
          let from_regular_child =
            S.atomic ~mode:Stm_intf.Regular (fun ctx' ->
                S.write ctx' b (S.read ctx' a + 1);
                S.read ctx' b)
          in
          let from_elastic_child =
            S.atomic ~mode:Stm_intf.Elastic (fun ctx' -> S.read ctx' b + 10)
          in
          (from_regular_child, from_elastic_child))
    in
    Alcotest.(check (pair int int)) "children of both modes compose" (2, 12)
      result;
    Alcotest.(check (pair int int)) "committed once at the top" (1, 2)
      (S.peek a, S.peek b);
    let under_regular =
      S.atomic ~mode:Stm_intf.Regular (fun _ ->
          S.atomic ~mode:Stm_intf.Elastic (fun ctx' ->
              S.write ctx' a 5;
              S.read ctx' a))
    in
    Alcotest.(check int) "elastic child under regular parent" 5 under_regular;
    Alcotest.(check int) "committed" 5 (S.peek a)

  let test_deep_nesting () =
    let tv = S.tvar 0 in
    let depth = 6 in
    let rec go ctx n =
      if n = 0 then S.read ctx tv
      else
        S.atomic ~mode:(if n mod 2 = 0 then Stm_intf.Elastic else Stm_intf.Regular)
          (fun ctx' ->
            S.write ctx' tv (S.read ctx' tv + 1);
            go ctx' (n - 1))
    in
    let seen = S.atomic (fun ctx -> go ctx depth) in
    Alcotest.(check int) "all levels saw their increments" depth seen;
    Alcotest.(check int) "single atomic commit" depth (S.peek tv)

  let test_concurrent_counter () =
    let c = S.tvar 0 in
    let per_domain = 300 and n_domains = 4 in
    let work () =
      for _ = 1 to per_domain do
        S.atomic (fun ctx -> S.write ctx c (S.read ctx c + 1))
      done
    in
    let domains = List.init n_domains (fun _ -> Domain.spawn work) in
    List.iter Domain.join domains;
    Alcotest.(check int) "no lost increments" (n_domains * per_domain)
      (S.peek c)

  let test_concurrent_transfers_preserve_total () =
    (* Classic bank example: concurrent transfers between 8 accounts must
       preserve the sum. *)
    let accounts = Array.init 8 (fun _ -> S.tvar 100) in
    let transfer src dst amount =
      S.atomic (fun ctx ->
          let s = S.read ctx accounts.(src) in
          if s >= amount then begin
            S.write ctx accounts.(src) (s - amount);
            S.write ctx accounts.(dst) (S.read ctx accounts.(dst) + amount)
          end)
    in
    let work seed () =
      let st = ref (seed + 1) in
      let next bound =
        st := (!st * 25214903917 + 11) land max_int;
        !st mod bound
      in
      for _ = 1 to 200 do
        transfer (next 8) (next 8) (next 30)
      done
    in
    let domains = List.init 4 (fun i -> Domain.spawn (work i)) in
    List.iter Domain.join domains;
    let total = Array.fold_left (fun acc a -> acc + S.peek a) 0 accounts in
    Alcotest.(check int) "total preserved" 800 total

  let test_snapshot_consistency () =
    (* A transaction reading two locations updated together must never see
       them out of sync. *)
    let a = S.tvar 0 and b = S.tvar 0 in
    let violations = Atomic.make 0 in
    let writer =
      Domain.spawn (fun () ->
          for i = 1 to 500 do
            S.atomic (fun ctx ->
                S.write ctx a i;
                S.write ctx b i)
          done)
    in
    let reader =
      (* Fixed iteration count, not a stop flag: identical coverage on any
         machine speed; a torn snapshot is a violation whether or not the
         read overlaps the writer. *)
      Domain.spawn (fun () ->
          for _ = 1 to 600 do
            let x, y = S.atomic (fun ctx -> (S.read ctx a, S.read ctx b)) in
            if x <> y then ignore (Atomic.fetch_and_add violations 1)
          done)
    in
    Domain.join writer;
    Domain.join reader;
    Alcotest.(check int) "no torn snapshots" 0 (Atomic.get violations)

  let test_stats_move () =
    Stats.reset S.stats;
    let tv = S.tvar 0 in
    S.atomic (fun ctx -> S.write ctx tv 1);
    let snap = Stats.snapshot S.stats in
    Alcotest.(check bool) "at least one commit recorded" true
      (snap.Stats.commits >= 1)

  let suite =
    [ Alcotest.test_case "read/write/commit" `Quick test_read_write_commit;
      Alcotest.test_case "read-your-own-writes" `Quick
        test_read_your_own_writes;
      Alcotest.test_case "multi-location atomicity" `Quick test_multi_location;
      Alcotest.test_case "user exception aborts" `Quick
        test_user_exception_aborts;
      Alcotest.test_case "in_transaction" `Quick test_in_transaction;
      Alcotest.test_case "nested visibility" `Quick test_nested_visibility;
      Alcotest.test_case "nested abort rolls back" `Quick
        test_nested_abort_rolls_back_all;
      Alcotest.test_case "elastic mode basics" `Quick test_elastic_mode_basics;
      Alcotest.test_case "mixed-mode nesting" `Quick test_mixed_mode_nesting;
      Alcotest.test_case "deep nesting" `Quick test_deep_nesting;
      Alcotest.test_case "stats record commits" `Quick test_stats_move;
      Alcotest.test_case "concurrent counter" `Slow test_concurrent_counter;
      Alcotest.test_case "concurrent transfers" `Slow
        test_concurrent_transfers_preserve_total;
      Alcotest.test_case "snapshot consistency" `Slow test_snapshot_consistency
    ]
end

module Tl2_battery = Battery (Classic_stm.Tl2)
module Lsa_battery = Battery (Classic_stm.Lsa)
module Swiss_battery = Battery (Classic_stm.Swisstm)
module Oe_battery = Battery (Oestm.Oe)
module Ebroken_battery = Battery (Oestm.E_broken)

let suites =
  [ ("stm:TL2", Tl2_battery.suite);
    ("stm:LSA", Lsa_battery.suite);
    ("stm:SwissTM", Swiss_battery.suite);
    ("stm:OE-STM", Oe_battery.suite);
    ("stm:E-STM(drop)", Ebroken_battery.suite) ]
