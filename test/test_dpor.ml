[@@@txlint.allow "stm-escape"
    "tests drive the escape hatches directly: preloads and post-run \
     state checks are quiescent"]

(* The DPOR explorer's contract: identical verdicts to the naive
   enumerator on every scenario, at a fraction of the runs.

   Three layers of evidence:
   - unit tests for the [Dep] commutativity relation;
   - a differential sweep: every Fig. 1-style scenario runs under both
     modes and must produce the same verdict, with DPOR never exploring
     more runs than naive and pruning at least one branch on the safe
     Fig. 1 instances;
   - outcome-set equivalence: on a scenario with several legal final
     states, the set of distinct outcomes DPOR witnesses must equal the
     naive one — pruning may drop redundant schedules, never behaviours;
   - the scaling payoff: 3-process compositions that naive leaves
     [Out_of_budget] at 20_000 runs get a definite verdict from DPOR. *)

open Stm_core
open Schedsim

(* ------------------------------------------------------------------ *)
(* Dep unit tests                                                      *)

let test_dep_access () =
  let open Runtime in
  let dep = Dep.dependent_access in
  Alcotest.(check bool) "pure/pure" false (dep Pure Pure);
  Alcotest.(check bool) "pure/write" false (dep Pure (Write 1));
  Alcotest.(check bool) "read/read same loc" false (dep (Read 1) (Read 1));
  Alcotest.(check bool) "read/write same loc" true (dep (Read 1) (Write 1));
  Alcotest.(check bool) "write/read same loc" true (dep (Write 1) (Read 1));
  Alcotest.(check bool) "write/write same loc" true (dep (Write 1) (Write 1));
  Alcotest.(check bool) "lock/read same loc" true (dep (Lock 1) (Read 1));
  Alcotest.(check bool) "write/write diff loc" false (dep (Write 1) (Write 2));
  Alcotest.(check bool) "lock/lock diff loc" false (dep (Lock 1) (Lock 2))

let test_dep_footprints () =
  let open Runtime in
  let fp = Dep.of_accesses in
  Alcotest.(check bool) "pure-only footprint is empty" true
    (Dep.is_empty (fp [ Pure; Pure ]));
  Alcotest.(check bool) "read sets vs read sets commute" false
    (Dep.dependent (fp [ Read 1; Read 2 ]) (fp [ Read 2; Read 3 ]));
  Alcotest.(check bool) "store on the shared loc conflicts" true
    (Dep.dependent (fp [ Read 1; Write 2 ]) (fp [ Read 2; Read 3 ]));
  Alcotest.(check bool) "disjoint store sets commute" false
    (Dep.dependent (fp [ Write 1; Lock 4 ]) (fp [ Write 2; Read 3 ]));
  Alcotest.(check bool) "duplicate accesses collapse" true
    (Dep.dependent
       (fp [ Read 5; Read 5; Lock 5 ])
       (fp [ Read 5 ]));
  Alcotest.(check bool) "clock is an ordinary location" true
    (Dep.dependent (fp [ Write clock_pe ]) (fp [ Read clock_pe ]))

(* ------------------------------------------------------------------ *)
(* Scenario builders                                                   *)

(* The paper's Fig. 1: two flags, insertIfAbsent(mine, other) on each
   process, invariant "never both set". *)
let fig1 (module S : Stm_intf.S) =
  let holds = ref (fun () -> true) in
  { Explore.procs =
      (fun () ->
        let x = S.tvar false and y = S.tvar false in
        let contains tv = S.atomic ~mode:Elastic (fun ctx -> S.read ctx tv) in
        let insert tv =
          S.atomic ~mode:Elastic (fun ctx -> S.write ctx tv true)
        in
        let insert_if_absent ~target ~guard =
          S.atomic ~mode:Elastic (fun _ ->
              if not (contains guard) then ignore (insert target))
        in
        holds := (fun () -> not (S.peek x && S.peek y));
        [ (fun () -> insert_if_absent ~target:x ~guard:y);
          (fun () -> insert_if_absent ~target:y ~guard:x) ]);
    check = (fun _ -> !holds ()) }

(* 3-process generalisation: a cycle x<-y, y<-z, z<-x.  Any serializable
   execution leaves at least one guard observed unset before its target is
   written, so all three flags can never be set. *)
let fig1_cycle3 (module S : Stm_intf.S) =
  let holds = ref (fun () -> true) in
  { Explore.procs =
      (fun () ->
        let x = S.tvar false and y = S.tvar false and z = S.tvar false in
        let contains tv = S.atomic ~mode:Elastic (fun ctx -> S.read ctx tv) in
        let insert tv =
          S.atomic ~mode:Elastic (fun ctx -> S.write ctx tv true)
        in
        let insert_if_absent ~target ~guard =
          S.atomic ~mode:Elastic (fun _ ->
              if not (contains guard) then ignore (insert target))
        in
        holds := (fun () -> not (S.peek x && S.peek y && S.peek z));
        [ (fun () -> insert_if_absent ~target:x ~guard:y);
          (fun () -> insert_if_absent ~target:y ~guard:z);
          (fun () -> insert_if_absent ~target:z ~guard:x) ]);
    check = (fun _ -> !holds ()) }

(* Two increments per process on one counter; a lost update breaks it. *)
let counter (module S : Stm_intf.S) =
  let value = ref (fun () -> 0) in
  { Explore.procs =
      (fun () ->
        let c = S.tvar 0 in
        let incr () = S.atomic (fun ctx -> S.write ctx c (S.read ctx c + 1)) in
        value := (fun () -> S.peek c);
        let proc () =
          incr ();
          incr ()
        in
        [ proc; proc ]);
    check =
      (fun outcome -> (not (Sched.completed outcome)) || !value () = 4) }

let verdict_name = function
  | Explore.All_ok _ -> "All_ok"
  | Explore.Violation _ -> "Violation"
  | Explore.Out_of_budget _ -> "Out_of_budget"

let explored_of = function
  | Explore.All_ok { explored; _ }
  | Explore.Violation { explored; _ }
  | Explore.Out_of_budget { explored; _ } ->
    explored

(* ------------------------------------------------------------------ *)
(* Differential sweep                                                  *)

let differential ~name ?(max_runs = 20_000) scenario () =
  let naive = Explore.explore ~mode:`Naive ~max_runs scenario in
  let dpor = Explore.explore ~mode:`Dpor ~max_runs scenario in
  (* A definite naive verdict must be reproduced exactly.  When naive runs
     out of budget it decides nothing, and DPOR is allowed to (indeed,
     exists to) reach a definite verdict within the same budget. *)
  (match naive with
  | Explore.Out_of_budget _ -> ()
  | _ ->
    Alcotest.(check string)
      (name ^ ": same verdict")
      (verdict_name naive) (verdict_name dpor));
  Alcotest.(check bool)
    (name ^ ": DPOR explores no more runs than naive")
    true
    (explored_of dpor <= explored_of naive)

(* The eager-locking engines burn real time in contention spin loops, so
   their naive sweeps get a smaller budget (they exceed either one). *)
let diff_cases =
  [ ("fig1/OE-STM", 20_000, fig1 (module Oestm.Oe));
    ("fig1/E-STM(drop)", 20_000, fig1 (module Oestm.E_broken));
    ("fig1/TL2", 20_000, fig1 (module Classic_stm.Tl2));
    ("fig1/LSA", 2_000, fig1 (module Classic_stm.Lsa));
    ("fig1/SwissTM", 2_000, fig1 (module Classic_stm.Swisstm));
    ("counter/OE-STM", 20_000, counter (module Oestm.Oe));
    ("counter/TL2", 20_000, counter (module Classic_stm.Tl2)) ]

(* On the safe Fig. 1 instances DPOR must be a strict improvement:
   strictly fewer runs, with the difference reported as pruned. *)
let test_fig1_strictly_pruned () =
  List.iter
    (fun (name, (module S : Stm_intf.S)) ->
      let naive = Explore.explore ~mode:`Naive (fig1 (module S)) in
      match Explore.explore ~mode:`Dpor (fig1 (module S)) with
      | Explore.All_ok { explored; pruned } ->
        Alcotest.(check bool) (name ^ ": pruned > 0") true (pruned > 0);
        Alcotest.(check bool)
          (name ^ ": strictly fewer runs")
          true
          (explored < explored_of naive)
      | r -> Alcotest.failf "%s: expected All_ok, got %s" name (verdict_name r))
    [ ("OE-STM", (module Oestm.Oe : Stm_intf.S));
      ("TL2", (module Classic_stm.Tl2 : Stm_intf.S)) ]

(* ------------------------------------------------------------------ *)
(* Outcome-set equivalence                                             *)

(* Last-writer-wins race plus an independent flag: four legal outcomes.
   Every mode must witness exactly the same set of final states. *)
let witnessed_outcomes mode =
  let seen = Hashtbl.create 16 in
  let state = ref (fun () -> (0, false)) in
  let scenario =
    { Explore.procs =
        (fun () ->
          let module S = Oestm.Oe in
          let winner = S.tvar 0 and flag = S.tvar false in
          state := (fun () -> (S.peek winner, S.peek flag));
          [ (fun () -> S.atomic (fun ctx -> S.write ctx winner 1));
            (fun () -> S.atomic (fun ctx -> S.write ctx winner 2));
            (fun () -> S.atomic (fun ctx -> S.write ctx flag true)) ]);
      check =
        (fun outcome ->
          if Sched.completed outcome then
            Hashtbl.replace seen (!state ()) ();
          true) }
  in
  (* The naive tree for this scenario has 34_650 schedules; give both
     modes room to exhaust it so the witnessed sets are complete. *)
  (match Explore.explore ~mode ~max_runs:50_000 scenario with
  | Explore.All_ok _ -> ()
  | r ->
    Alcotest.failf "outcome collection should exhaust the tree, got %s"
      (verdict_name r));
  Hashtbl.fold (fun k () acc -> k :: acc) seen [] |> List.sort compare

let test_outcome_sets_equal () =
  let naive = witnessed_outcomes `Naive in
  let dpor = witnessed_outcomes `Dpor in
  Alcotest.(check (list (pair int bool)))
    "DPOR witnesses the same final states as naive" naive dpor;
  Alcotest.(check bool)
    "the race is actually visible (both writers can win)"
    true
    (List.mem (1, true) dpor && List.mem (2, true) dpor)

(* ------------------------------------------------------------------ *)
(* Scaling: 3-process scenarios                                        *)

let test_three_proc_oe_definite () =
  (* Naive drowns: 20_000 runs do not exhaust the 3-process tree. *)
  (match
     Explore.explore ~mode:`Naive ~max_runs:20_000
       (fig1_cycle3 (module Oestm.Oe))
   with
  | Explore.Out_of_budget _ -> ()
  | r ->
    Alcotest.failf "naive should exhaust its budget, got %s" (verdict_name r));
  (* DPOR proves the invariant with a definite verdict. *)
  match
    Explore.explore ~mode:`Dpor ~max_runs:20_000 (fig1_cycle3 (module Oestm.Oe))
  with
  | Explore.All_ok { explored; pruned } ->
    Alcotest.(check bool) "definite verdict within budget" true
      (explored < 20_000);
    Alcotest.(check bool) "pruning did the work" true (pruned > 0)
  | r -> Alcotest.failf "DPOR should prove All_ok, got %s" (verdict_name r)

let test_three_proc_drop_violation () =
  (* The drop-composition bug is still found in the reduced tree. *)
  match
    Explore.explore ~mode:`Dpor ~max_runs:20_000
      (fig1_cycle3 (module Oestm.E_broken))
  with
  | Explore.Violation { schedule; _ } ->
    Alcotest.(check bool) "non-empty witness schedule" true (schedule <> [])
  | r -> Alcotest.failf "DPOR should find the violation, got %s" (verdict_name r)

let suite =
  [ Alcotest.test_case "Dep: single-access dependence" `Quick test_dep_access;
    Alcotest.test_case "Dep: footprint dependence" `Quick test_dep_footprints;
    Alcotest.test_case "fig1 is strictly pruned" `Quick
      test_fig1_strictly_pruned;
    Alcotest.test_case "DPOR and naive witness identical outcome sets" `Quick
      test_outcome_sets_equal;
    Alcotest.test_case "3-process OE cycle: definite under DPOR only" `Quick
      test_three_proc_oe_definite;
    Alcotest.test_case "3-process drop cycle: violation under DPOR" `Quick
      test_three_proc_drop_violation ]
  @ List.map
      (fun (name, max_runs, scenario) ->
        Alcotest.test_case ("differential: " ^ name) `Quick
          (differential ~name ~max_runs scenario))
      diff_cases
