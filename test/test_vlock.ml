[@@@txlint.allow "lock-release"
    "tests exercise the lock primitives directly and assert the release \
     behaviour themselves"]

open Stm_core

let test_fresh_unlocked () =
  let l = Vlock.create () in
  let s = Vlock.stamp l in
  Alcotest.(check bool) "fresh lock is unlocked" false (Vlock.locked s);
  Alcotest.(check int) "fresh lock is at version 0" 0 (Vlock.version_of s)

let test_lock_unlock_to () =
  let l = Vlock.create () in
  Alcotest.(check bool) "try_lock succeeds" true (Vlock.try_lock l ~owner:7);
  let s = Vlock.stamp l in
  Alcotest.(check bool) "locked after try_lock" true (Vlock.locked s);
  Alcotest.(check int) "locked stamp keeps version" 0 (Vlock.version_of s);
  Alcotest.(check int) "owner recorded" 7 (Vlock.owner l);
  Alcotest.(check bool) "locked_by owner" true (Vlock.locked_by l ~owner:7);
  Alcotest.(check bool) "not locked_by other" false (Vlock.locked_by l ~owner:8);
  Alcotest.(check bool) "second try_lock fails" false (Vlock.try_lock l ~owner:9);
  Vlock.unlock_to l ~version:42;
  let s = Vlock.stamp l in
  Alcotest.(check bool) "unlocked after unlock_to" false (Vlock.locked s);
  Alcotest.(check int) "new version published" 42 (Vlock.version_of s)

let test_unlock_restore () =
  let l = Vlock.create () in
  Vlock.unlock_to l ~version:5;
  Alcotest.(check bool) "lock at v5" true (Vlock.try_lock l ~owner:1);
  Vlock.unlock_restore l;
  let s = Vlock.stamp l in
  Alcotest.(check bool) "unlocked after restore" false (Vlock.locked s);
  Alcotest.(check int) "version restored" 5 (Vlock.version_of s)

let test_locked_by_after_restore () =
  let l = Vlock.create () in
  ignore (Vlock.try_lock l ~owner:3);
  Vlock.unlock_restore l;
  Alcotest.(check bool) "not locked_by after release" false
    (Vlock.locked_by l ~owner:3)

let prop_stamp_roundtrip =
  QCheck.Test.make ~name:"version survives lock/unlock cycles" ~count:200
    QCheck.(small_nat)
    (fun v ->
      let l = Vlock.create () in
      Vlock.unlock_to l ~version:v;
      let ok1 = Vlock.version_of (Vlock.stamp l) = v in
      let ok2 = Vlock.try_lock l ~owner:0 in
      let ok3 = Vlock.version_of (Vlock.stamp l) = v in
      Vlock.unlock_to l ~version:(v + 1);
      ok1 && ok2 && ok3 && Vlock.version_of (Vlock.stamp l) = v + 1)

let test_parallel_mutual_exclusion () =
  (* Domains contend on one lock; the protected counter must not lose
     increments. *)
  let l = Vlock.create () in
  let counter = ref 0 in
  let per_domain = 1000 in
  let work () =
    for _ = 1 to per_domain do
      let rec acquire () =
        if not (Vlock.try_lock l ~owner:(Domain.self () :> int)) then begin
          Domain.cpu_relax ();
          acquire ()
        end
      in
      acquire ();
      incr counter;
      Vlock.unlock_to l ~version:(Vlock.version_of (Vlock.stamp l) + 1)
    done
  in
  let domains = List.init 4 (fun _ -> Domain.spawn work) in
  List.iter Domain.join domains;
  Alcotest.(check int) "no lost increments" (4 * per_domain) !counter

let suite =
  [ Alcotest.test_case "fresh unlocked" `Quick test_fresh_unlocked;
    Alcotest.test_case "lock / unlock_to" `Quick test_lock_unlock_to;
    Alcotest.test_case "unlock_restore" `Quick test_unlock_restore;
    Alcotest.test_case "locked_by after restore" `Quick
      test_locked_by_after_restore;
    QCheck_alcotest.to_alcotest prop_stamp_roundtrip;
    Alcotest.test_case "parallel mutual exclusion" `Slow
      test_parallel_mutual_exclusion ]
