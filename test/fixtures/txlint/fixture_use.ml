(* txlint fixture — transaction bodies reaching the annotated escape
   wrappers of fixture_helpers.ml.  No escape-hatch name appears in
   this file at all, so single-file (v1) linting is provably clean
   here; only the interprocedural pass, analyzing the pair together,
   can flag these bodies. *)

let direct_wrap tv = atomic (fun _ctx -> Fixture_helpers.preload tv 1)

(* Two calls deep: snapshot -> read_raw -> Tvar.peek. *)
let two_deep tv = atomic (fun _ctx -> Fixture_helpers.snapshot tv)

(* Mutually-recursive pair whose cycle reaches unsafe_write. *)
let rec ping tv n =
  if n = 0 then Fixture_helpers.preload tv 0 else pong tv (n - 1)

and pong tv n = ping tv (n - 1)

let mutual tv = atomic (fun _ctx -> pong tv 3)
