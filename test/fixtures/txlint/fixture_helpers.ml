(* txlint fixture — deliberately wraps the escape hatches.  Never
   compiled (fixtures/ is skipped by the file walk); read from the
   source tree and parsed by test_txlint.

   Each site carries a [@txlint.allow] annotation, so single-file (v1)
   linting of this module is clean.  The interprocedural summaries
   still record the escape — annotations sanction the *site*, not
   reachability — so any transaction body that reaches these helpers
   must be flagged by the v2 pass. *)

let read_raw tv =
  (Tvar.peek tv
   [@txlint.allow "stm-escape" "fixture: quiescent read helper"])

let snapshot tv = read_raw tv

let preload tv v =
  (Tvar.unsafe_write tv v
   [@txlint.allow "stm-escape" "fixture: quiescent preload helper"])
