(* txlint fixture — the lock-release pair.  [leaky] acquires a vlock
   with no release on the exception path: v1 had no lock check of any
   kind, so it is provably v1-clean; v2 flags it.  [guarded] is the
   Fun.protect twin and must stay clean.  Never compiled. *)

let leaky lock ~owner = if Vlock.try_lock lock ~owner then critical lock

let guarded lock ~owner =
  if Vlock.try_lock lock ~owner then
    Fun.protect ~finally:(fun () -> Vlock.unlock lock) (fun () -> critical lock)
