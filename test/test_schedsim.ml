[@@@txlint.allow "stm-escape"
    "tests drive the escape hatches directly: preloads and post-run \
     state checks are quiescent"]

(* Mechanics of the deterministic scheduler: determinism, replay, process
   isolation of STM state, and bounded exploration. *)

open Stm_core
open Schedsim

let test_interleaving_basic () =
  let log = ref [] in
  let proc tag () =
    for i = 1 to 3 do
      log := (tag, i) :: !log;
      Runtime.schedule_point ()
    done
  in
  let outcome, trace = Sched.run [ proc "a"; proc "b" ] in
  Alcotest.(check bool) "completed" true (Sched.completed outcome);
  Alcotest.(check int) "all six records" 6 (List.length !log);
  Alcotest.(check bool) "interleaved (round robin)" true
    (List.rev !log
    = [ ("a", 1); ("b", 1); ("a", 2); ("b", 2); ("a", 3); ("b", 3) ]);
  Alcotest.(check bool) "trace non-empty" true (trace <> [])

let test_replay_determinism () =
  let run_once schedule =
    let log = ref [] in
    let proc tag () =
      for i = 1 to 4 do
        log := (tag, i) :: !log;
        Runtime.schedule_point ()
      done
    in
    let _, trace =
      match schedule with
      | None -> Sched.run ~pick:(fun ~step ~ready -> (step * 7 + 3) mod List.length ready) [ proc 0; proc 1; proc 2 ]
      | Some s -> Sched.run_schedule ~schedule:s [ proc 0; proc 1; proc 2 ]
    in
    (List.rev !log, List.map (fun c -> c.Sched.chosen) trace)
  in
  let log1, choices = run_once None in
  let log2, _ = run_once (Some choices) in
  Alcotest.(check bool) "replay reproduces the execution" true (log1 = log2)

let test_proc_ids () =
  let seen = ref [] in
  let proc () =
    seen := Runtime.current_proc () :: !seen;
    Runtime.schedule_point ();
    seen := Runtime.current_proc () :: !seen
  in
  let outcome, _ = Sched.run [ proc; proc ] in
  Alcotest.(check bool) "completed" true (Sched.completed outcome);
  Alcotest.(check (list int)) "logical pids stable across yields"
    [ 0; 0; 1; 1 ]
    (List.sort compare !seen)

let test_failure_isolated () =
  let ok = ref false in
  let bad () = failwith "expected" in
  let good () =
    Runtime.schedule_point ();
    ok := true
  in
  let outcome, _ = Sched.run [ bad; good ] in
  Alcotest.(check bool) "other process finished" true !ok;
  Alcotest.(check int) "one failure" 1 (List.length outcome.Sched.failures);
  Alcotest.(check bool) "failure attributed to process 0" true
    (List.mem_assoc 0 outcome.Sched.failures)

let test_max_steps_kills () =
  let spinner () =
    while true do
      Runtime.schedule_point ()
    done
  in
  let outcome, _ = Sched.run ~max_steps:50 [ spinner ] in
  Alcotest.(check (list int)) "spinner killed" [ 0 ] outcome.Sched.killed;
  Alcotest.(check bool) "not completed" false (Sched.completed outcome)

(* STM transactions driven by the scheduler: increments from two logical
   processes must never be lost, whatever the interleaving. *)
let counter_slot : (int, unit -> int) Hashtbl.t = Hashtbl.create 1

let test_explore_counter (module S : Stm_intf.S) () =
  (* Rebuild the scenario per schedule: wrap in a fresh closure each time. *)
  let scenario =
    { Explore.procs =
        (fun () ->
          let c = S.tvar 0 in
          let incr_proc () =
            for _ = 1 to 2 do
              S.atomic (fun ctx -> S.write ctx c (S.read ctx c + 1))
            done
          in
          (* Stash the tvar so check can see it. *)
          Hashtbl.replace counter_slot 0 (fun () -> S.peek c);
          [ incr_proc; incr_proc ]);
      check =
        (fun outcome ->
          (not (Sched.completed outcome))
          || (Hashtbl.find counter_slot 0) () = 4) }
  in
  match Explore.explore ~max_runs:4_000 scenario with
  | Explore.Violation { schedule; _ } ->
    Alcotest.failf "lost update under schedule [%s]"
      (String.concat ";" (List.map string_of_int schedule))
  | Explore.All_ok { explored; _ } ->
    Alcotest.(check bool) "explored several interleavings" true (explored > 10)
  | Explore.Out_of_budget _ -> ()

let test_sampler_finds_known_violation () =
  (* The random-walk sampler must find the Fig. 1 drop-composition
     violation too (the exhaustive explorer's job, sampled). *)
  let module S = Oestm.E_broken in
  let holds = ref (fun () -> true) in
  let scenario =
    { Explore.procs =
        (fun () ->
          let x = S.tvar false and y = S.tvar false in
          let contains tv = S.atomic ~mode:Elastic (fun ctx -> S.read ctx tv) in
          let insert tv =
            S.atomic ~mode:Elastic (fun ctx -> S.write ctx tv true)
          in
          let iia ~target ~guard =
            S.atomic ~mode:Elastic (fun _ ->
                if not (contains guard) then insert target)
          in
          holds := (fun () -> not (S.peek x && S.peek y));
          [ (fun () -> iia ~target:x ~guard:y);
            (fun () -> iia ~target:y ~guard:x) ]);
      check = (fun _ -> !holds ()) }
  in
  match Explore.sample ~runs:3_000 ~seed:5 scenario with
  | Explore.Violation { schedule; _ } ->
    (* And the violating schedule must replay. *)
    let procs = scenario.Explore.procs () in
    let _ = Sched.run_schedule ~schedule procs in
    Alcotest.(check bool) "replay reproduces" false (!holds ())
  | Explore.All_ok { explored; _ } | Explore.Out_of_budget { explored; _ } ->
    Alcotest.failf "sampler missed the violation in %d runs" explored

let test_sampler_accepts_safe_scenario () =
  let module S = Oestm.Oe in
  let holds = ref (fun () -> true) in
  let scenario =
    { Explore.procs =
        (fun () ->
          let c = S.tvar 0 in
          holds := (fun () -> S.peek c = 4);
          let incr_proc () =
            for _ = 1 to 2 do
              S.atomic (fun ctx -> S.write ctx c (S.read ctx c + 1))
            done
          in
          [ incr_proc; incr_proc ]);
      check = (fun o -> (not (Sched.completed o)) || !holds ()) }
  in
  match Explore.sample ~runs:300 ~seed:9 scenario with
  | Explore.Violation { schedule; _ } ->
    Alcotest.failf "lost update under sampled schedule [%s]"
      (String.concat ";" (List.map string_of_int schedule))
  | Explore.All_ok _ | Explore.Out_of_budget _ -> ()

let suite =
  [ Alcotest.test_case "basic interleaving" `Quick test_interleaving_basic;
    Alcotest.test_case "sampler finds the Fig. 1 violation" `Slow
      test_sampler_finds_known_violation;
    Alcotest.test_case "sampler accepts safe scenarios" `Slow
      test_sampler_accepts_safe_scenario;
    Alcotest.test_case "replay determinism" `Quick test_replay_determinism;
    Alcotest.test_case "logical process ids" `Quick test_proc_ids;
    Alcotest.test_case "failure isolation" `Quick test_failure_isolated;
    Alcotest.test_case "max_steps kills spinners" `Quick test_max_steps_kills;
    Alcotest.test_case "explore: TL2 counter" `Slow
      (test_explore_counter (module Classic_stm.Tl2));
    Alcotest.test_case "explore: OE-STM counter" `Slow
      (test_explore_counter (module Oestm.Oe)) ]
