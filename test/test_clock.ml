[@@@txlint.allow "stm-escape"
    "tests drive the escape hatches directly: preloads and post-run \
     state checks are quiescent"]

(* The pluggable global clock (DESIGN.md §5f): GV1, TL2-style GV4
   pass-on-failure, and GV5 increment-on-abort must be interchangeable
   without changing any observable STM semantics.

   Evidence, in increasing order of integration:
   - unit tests for each policy's arithmetic, including a deterministic
     GV4 CAS-race adoption via the [gv4_tick ~interference] hook (under a
     single domain the CAS never loses, so the race is driven by hand);
   - deterministic GV5 staleness: a TL2 reader needs exactly two
     catch-up aborts to reach a version installed at [now + 2], while an
     LSA reader accepts the same stale-but-valid location in one attempt
     through its extension path;
   - real-parallelism stress per policy, with the sanitizer on and a
     conserved invariant (no lost updates, no torn transfers);
   - the differential opacity harness: every policy runs the Fig. 1
     scenarios through both the DPOR explorer and the naive enumerator,
     and all verdicts must agree with each other and with GV1 — the
     clock policy may change performance, never outcomes;
   - a sanitized chaos lane per policy (fault injection + fallback +
     multi-domain stress) that must come back clean. *)

open Stm_core
open Schedsim

let with_policy p f =
  let saved = Clock.current_policy () in
  Clock.set_policy p;
  Fun.protect ~finally:(fun () -> Clock.set_policy saved) f

(* Run [f] with the sanitizer on (without double-enabling when the suite
   already runs under TXSAN=1) and check it recorded no new violations. *)
let sanitized name f =
  let was = Sanitizer.enabled () in
  if not was then Sanitizer.enable ();
  let before = Sanitizer.violation_count () in
  Fun.protect ~finally:(fun () -> if not was then Sanitizer.disable ()) f;
  Alcotest.(check int)
    (name ^ ": no new sanitizer violations")
    before
    (Sanitizer.violation_count ())

(* ------------------------------------------------------------------ *)
(* Policy naming                                                       *)

let test_policy_names () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Clock.policy_name p ^ " roundtrips")
        true
        (Clock.policy_of_string (Clock.policy_name p) = p))
    Clock.all_policies;
  Alcotest.(check bool) "parsing is case-insensitive" true
    (Clock.policy_of_string " GV4 " = Runtime.GV4);
  Alcotest.check_raises "unknown policy rejected"
    (Invalid_argument "Clock.policy_of_string: unknown policy gv2")
    (fun () -> ignore (Clock.policy_of_string "gv2"))

(* ------------------------------------------------------------------ *)
(* Per-policy arithmetic                                               *)

let test_gv1_tick () =
  with_policy Runtime.GV1 @@ fun () ->
  let c0 = Clock.now () in
  for i = 1 to 50 do
    Alcotest.(check int) "GV1 ticks by one" (c0 + i) (Clock.tick ())
  done;
  Alcotest.(check int) "clock advanced with the ticks" (c0 + 50) (Clock.now ());
  Clock.on_abort ();
  Alcotest.(check int) "GV1 aborts leave the clock alone" (c0 + 50)
    (Clock.now ())

let test_gv4_sequential () =
  with_policy Runtime.GV4 @@ fun () ->
  (* Uncontended, the CAS always wins: GV4 degenerates to GV1. *)
  let c0 = Clock.now () in
  for i = 1 to 50 do
    Alcotest.(check int) "uncontended GV4 ticks by one" (c0 + i) (Clock.tick ())
  done

let test_gv4_adoption () =
  with_policy Runtime.GV4 @@ fun () ->
  let c0 = Clock.now () in
  (* A competing committer slips its whole tick between our clock read
     and our CAS: we must lose the CAS and adopt its version, so the two
     commits share one write stamp (the paper-correct TL2/GV4 outcome —
     both hold their write locks, so neither can be half-read). *)
  let winner = ref 0 in
  let loser = Clock.gv4_tick ~interference:(fun () -> winner := Clock.tick ()) () in
  Alcotest.(check int) "interfering commit got c0+1" (c0 + 1) !winner;
  Alcotest.(check int) "loser adopts the winner's version" (c0 + 1) loser;
  Alcotest.(check int) "one bump total, not two" (c0 + 1) (Clock.now ());
  Alcotest.(check int) "the next tick moves on" (c0 + 2) (Clock.tick ())

let test_gv5_tick () =
  with_policy Runtime.GV5 @@ fun () ->
  let c0 = Clock.now () in
  Alcotest.(check int) "GV5 commits at now + 2" (c0 + 2) (Clock.tick ());
  Alcotest.(check int) "without touching the clock" c0 (Clock.now ());
  Clock.on_abort ();
  Alcotest.(check int) "an abort bumps by one" (c0 + 1) (Clock.now ());
  (* The floor rule: re-writing a location whose last committed version
     already reached [now + 2] must hand out a strictly larger version. *)
  let wv = Clock.tick ~floor:(fun () -> c0 + 9) () in
  Alcotest.(check int) "floor + 1 when the floor wins" (c0 + 10) wv;
  (* Leaving GV5 fences the clock above every version GV5 handed out, so
     GV1/GV4 cannot mint an already-used stamp. *)
  Clock.set_policy Runtime.GV1;
  Alcotest.(check bool) "exit fence clears the floor-raised version" true
    (Clock.now () >= wv)

(* ------------------------------------------------------------------ *)
(* Deterministic GV5 staleness through real engines                    *)

let test_gv5_tl2_staleness () =
  with_policy Runtime.GV5 @@ fun () ->
  let module S = Classic_stm.Tl2 in
  let tv = S.tvar 0 in
  let c0 = Clock.now () in
  S.atomic (fun ctx -> S.write ctx tv 1);
  Alcotest.(check int) "the lazy commit leaves the clock at c0" c0
    (Clock.now ());
  (* The value now sits at version c0 + 2.  TL2 has no read extension, so
     a fresh reader aborts Read_too_new twice — each abort bumps the
     clock by one — and succeeds on the third attempt, when rv = c0 + 2. *)
  let tries = ref 0 in
  let v =
    S.atomic (fun ctx ->
        incr tries;
        S.read ctx tv)
  in
  Alcotest.(check int) "reads the committed value" 1 v;
  Alcotest.(check int) "exactly two catch-up aborts" 3 !tries;
  Alcotest.(check int) "the aborts advanced the clock to the version"
    (c0 + 2) (Clock.now ())

let test_gv5_lsa_extension () =
  with_policy Runtime.GV5 @@ fun () ->
  let module S = Classic_stm.Lsa in
  let tv = S.tvar 0 in
  S.atomic (fun ctx -> S.write ctx tv 7);
  (* Same stale-but-valid read, but LSA extends the snapshot instead of
     aborting: one attempt, no clock catch-up needed. *)
  let tries = ref 0 in
  let v =
    S.atomic (fun ctx ->
        incr tries;
        S.read ctx tv)
  in
  Alcotest.(check int) "reads the committed value" 7 v;
  Alcotest.(check int) "a single attempt suffices" 1 !tries

(* ------------------------------------------------------------------ *)
(* Real-parallelism stress, sanitized                                  *)

(* Two domains hammer one counter: GV4's adoption path actually fires
   (CAS losses under contention), and the result must still be exact. *)
let contended_counter policy () =
  with_policy policy @@ fun () ->
  sanitized ("counter/" ^ Clock.policy_name policy) @@ fun () ->
  let module S = Classic_stm.Tl2 in
  let n = 1_000 in
  let shared = S.tvar 0 in
  let c0 = Clock.now () in
  let worker () =
    for _ = 1 to n do
      S.atomic (fun ctx -> S.write ctx shared (S.read ctx shared + 1))
    done
  in
  let ds = Array.init 2 (fun _ -> Domain.spawn worker) in
  Array.iter Domain.join ds;
  Alcotest.(check int) "no lost updates" (2 * n) (S.peek shared);
  Alcotest.(check bool) "the clock moved" true (Clock.now () > c0)

(* Three domains transfer between four accounts under TL2 and OE-STM:
   conservation plus a clean sanitizer are the whole spec. *)
let sanitized_transfers policy () =
  with_policy policy @@ fun () ->
  sanitized ("transfers/" ^ Clock.policy_name policy) @@ fun () ->
  List.iter
    (fun (module S : Stm_intf.S) ->
      let accounts = Array.init 4 (fun _ -> S.tvar 100) in
      let worker seed () =
        let rng = ref seed in
        let next m =
          rng := ((!rng * 1103515245) + 12345) land 0x3FFFFFFF;
          !rng mod m
        in
        for _ = 1 to 300 do
          let src = next 4 and dst = next 4 in
          S.atomic (fun ctx ->
              let a = S.read ctx accounts.(src) in
              let b = S.read ctx accounts.(dst) in
              if src <> dst then begin
                S.write ctx accounts.(src) (a - 1);
                S.write ctx accounts.(dst) (b + 1)
              end)
        done
      in
      let ds = Array.init 3 (fun i -> Domain.spawn (worker (i + 1))) in
      Array.iter Domain.join ds;
      let total = Array.fold_left (fun acc tv -> acc + S.peek tv) 0 accounts in
      Alcotest.(check int) (S.name ^ ": conservation") 400 total)
    [ (module Classic_stm.Tl2 : Stm_intf.S); (module Oestm.Oe : Stm_intf.S) ]

(* ------------------------------------------------------------------ *)
(* The differential opacity harness                                    *)

(* Each scenario runs under every policy, in both exploration modes.  A
   definite naive verdict must match DPOR's (the explorer contract), and
   every policy's DPOR verdict must match GV1's (the clock contract). *)
let diff_scenarios =
  [ ("fig1/OE-STM", 20_000,
     fun () -> Test_dpor.fig1 (module Oestm.Oe : Stm_intf.S));
    ("fig1/E-STM(drop)", 20_000,
     fun () -> Test_dpor.fig1 (module Oestm.E_broken : Stm_intf.S));
    ("fig1/TL2", 20_000,
     fun () -> Test_dpor.fig1 (module Classic_stm.Tl2 : Stm_intf.S));
    ("counter/TL2", 20_000,
     fun () -> Test_dpor.counter (module Classic_stm.Tl2 : Stm_intf.S)) ]

let test_cross_policy_verdicts () =
  List.iter
    (fun (name, max_runs, mk) ->
      let verdicts =
        List.map
          (fun p ->
            with_policy p @@ fun () ->
            let naive = Explore.explore ~mode:`Naive ~max_runs (mk ()) in
            let dpor = Explore.explore ~mode:`Dpor ~max_runs (mk ()) in
            (match naive with
            | Explore.Out_of_budget _ -> ()
            | _ ->
              Alcotest.(check string)
                (Printf.sprintf "%s under %s: DPOR matches naive" name
                   (Clock.policy_name p))
                (Test_dpor.verdict_name naive)
                (Test_dpor.verdict_name dpor));
            Test_dpor.verdict_name dpor)
          Clock.all_policies
      in
      match verdicts with
      | gv1 :: rest ->
        List.iteri
          (fun i v ->
            Alcotest.(check string)
              (Printf.sprintf "%s: %s agrees with gv1" name
                 (Clock.policy_name (List.nth Clock.all_policies (i + 1))))
              gv1 v)
          rest
      | [] -> assert false)
    diff_scenarios

(* Anchor the sweep to known ground truth so agreement cannot be vacuous:
   the safe Fig. 1 composition proves out, the drop-composition bug is
   caught, under every policy. *)
let test_policy_ground_truth () =
  List.iter
    (fun p ->
      with_policy p @@ fun () ->
      (match
         Explore.explore ~mode:`Dpor ~max_runs:20_000
           (Test_dpor.fig1 (module Oestm.Oe : Stm_intf.S))
       with
      | Explore.All_ok _ -> ()
      | r ->
        Alcotest.failf "fig1/OE under %s: expected All_ok, got %s"
          (Clock.policy_name p) (Test_dpor.verdict_name r));
      match
        Explore.explore ~mode:`Dpor ~max_runs:20_000
          (Test_dpor.fig1_cycle3 (module Oestm.E_broken : Stm_intf.S))
      with
      | Explore.Violation _ -> ()
      | r ->
        Alcotest.failf "cycle3/E-STM(drop) under %s: expected Violation, got %s"
          (Clock.policy_name p) (Test_dpor.verdict_name r))
    Clock.all_policies

(* ------------------------------------------------------------------ *)
(* Sanitized chaos lane                                                *)

let chaos_lane policy () =
  with_policy policy @@ fun () ->
  sanitized ("chaos/" ^ Clock.policy_name policy) @@ fun () ->
  List.iter
    (fun engine ->
      let r =
        Harness.Chaos.run_engine ~seeds:[ 11 ] ~runs_per_seed:10
          ~stress_domains:2 ~stress_txns:100 engine
      in
      Alcotest.(check bool)
        (Harness.Chaos.engine_name engine ^ " under "
        ^ Clock.policy_name policy ^ ": chaos clean")
        true
        (Harness.Chaos.ok r))
    [ Harness.Chaos.TL2; Harness.Chaos.OE ]

(* ------------------------------------------------------------------ *)

let per_policy name case =
  List.map
    (fun p ->
      Alcotest.test_case
        (Printf.sprintf "%s under %s" name (Clock.policy_name p))
        `Slow (case p))
    Clock.all_policies

let suite =
  [ Alcotest.test_case "policy names roundtrip" `Quick test_policy_names;
    Alcotest.test_case "GV1 ticks by one" `Quick test_gv1_tick;
    Alcotest.test_case "GV4 uncontended ticks by one" `Quick
      test_gv4_sequential;
    Alcotest.test_case "GV4 CAS loser adopts the winner" `Quick
      test_gv4_adoption;
    Alcotest.test_case "GV5 lazy tick, abort bump, floor, exit fence" `Quick
      test_gv5_tick;
    Alcotest.test_case "GV5/TL2: stale read costs two catch-up aborts" `Quick
      test_gv5_tl2_staleness;
    Alcotest.test_case "GV5/LSA: stale-but-valid read extends in place" `Quick
      test_gv5_lsa_extension;
    Alcotest.test_case "differential: verdicts agree across policies" `Slow
      test_cross_policy_verdicts;
    Alcotest.test_case "ground truth holds under every policy" `Slow
      test_policy_ground_truth ]
  @ per_policy "contended counter (2 domains, sanitized)" contended_counter
  @ per_policy "transfers conserve (3 domains, sanitized)" sanitized_transfers
  @ per_policy "chaos lane (faults + fallback + stress)" chaos_lane
