(* Unit tests for the deterministic fault-injection layer (Faults).

   Everything here runs single-domain: determinism means a fixed seed must
   reproduce the exact same injection decisions, and the gating rules
   (inside an attempt only, never under the serial token) are what keep
   the no-starvation guarantee alive at fault rate 1.0. *)

open Stm_core

(* Faults state is process-global; every test restores a clean slate. *)
let in_sandbox f =
  let finally () =
    Faults.disable ();
    Faults.leave_attempt ();
    Faults.reset_counts ()
  in
  Fun.protect ~finally f

let test_parse_roundtrip () =
  let c =
    { Faults.seed = 42; spurious_abort = 0.25; lock_fail = 0.5;
      validation_fail = 0.125; delay = 0.0625; max_delay_spins = 32;
      crash = 0.01; user_raise = 0.02; fsync_fail = 0.015;
      short_write = 0.005 }
  in
  Alcotest.(check bool) "parse inverts to_string" true
    (Faults.parse (Faults.to_string c) = c);
  (* Unmentioned fields keep their defaults. *)
  let partial = Faults.parse "seed=9,lock=0.5" in
  Alcotest.(check bool) "partial spec fills in defaults" true
    (partial
    = { Faults.default with Faults.seed = 9; lock_fail = 0.5 });
  Alcotest.(check bool) "empty fields tolerated" true
    (Faults.parse "seed=3,," = { Faults.default with Faults.seed = 3 })

let test_parse_errors () =
  Alcotest.check_raises "unknown key"
    (Invalid_argument "Faults.parse: unknown key frobnicate")
    (fun () -> ignore (Faults.parse "frobnicate=1"));
  Alcotest.check_raises "rate above 1"
    (Invalid_argument "Faults.parse: abort=2 (want 0..1)")
    (fun () -> ignore (Faults.parse "abort=2"));
  Alcotest.check_raises "negative rate"
    (Invalid_argument "Faults.parse: lock=-0.1 (want 0..1)")
    (fun () -> ignore (Faults.parse "lock=-0.1"));
  Alcotest.check_raises "non-integer seed"
    (Invalid_argument "Faults.parse: seed=x (want int)")
    (fun () -> ignore (Faults.parse "seed=x"));
  Alcotest.check_raises "missing ="
    (Invalid_argument "Faults.parse: expected key=value in oops")
    (fun () -> ignore (Faults.parse "oops"))

let test_determinism_per_seed () =
  in_sandbox (fun () ->
      let stream seed =
        Faults.enable { Faults.default with Faults.seed; lock_fail = 0.5 };
        Faults.enter_attempt ();
        List.init 64 (fun _ -> Faults.inject_lock_fail ())
      in
      let a = stream 7 in
      let b = stream 7 in
      Alcotest.(check (list bool)) "same seed, same decisions" a b;
      let c = stream 8 in
      Alcotest.(check bool) "nearby seed, different stream" true (a <> c);
      (* [reseed] restarts the stream without touching the rates. *)
      Faults.reseed 7;
      let d = List.init 64 (fun _ -> Faults.inject_lock_fail ()) in
      Alcotest.(check (list bool)) "reseed replays the stream" a d;
      Alcotest.(check bool) "some lock failures actually fired" true
        (List.mem true a);
      Alcotest.(check bool) "and some acquisitions survived" true
        (List.mem false a))

let test_attempt_gating () =
  in_sandbox (fun () ->
      Faults.enable { Faults.default with Faults.lock_fail = 1.0 };
      Alcotest.(check bool) "outside an attempt: no injection" false
        (Faults.inject_lock_fail ());
      Alcotest.(check int) "and no count" 0 (Faults.count Faults.Lock_fail);
      Faults.enter_attempt ();
      Alcotest.(check bool) "inside an attempt: rate 1.0 always fires" true
        (Faults.inject_lock_fail ());
      Alcotest.(check int) "counted" 1 (Faults.count Faults.Lock_fail);
      Faults.leave_attempt ();
      Alcotest.(check bool) "after leave_attempt: quiet again" false
        (Faults.inject_lock_fail ()))

let test_serial_suppression () =
  in_sandbox (fun () ->
      Faults.enable
        { Faults.default with
          Faults.lock_fail = 1.0; validation_fail = 1.0;
          spurious_abort = 1.0 };
      Faults.enter_attempt ();
      Alcotest.(check bool) "token acquired" true (Runtime.Serial.enter ());
      Fun.protect ~finally:Runtime.Serial.exit (fun () ->
          Alcotest.(check bool) "no lock failure under the serial token"
            false (Faults.inject_lock_fail ());
          Alcotest.(check bool) "no validation failure either" false
            (Faults.inject_validation_fail ());
          (* point () must not raise for the irrevocable holder. *)
          Faults.point ());
      (* Token released: injection resumes. *)
      Alcotest.(check bool) "after release: injection resumes" true
        (Faults.inject_lock_fail ()))

let test_point_aborts_and_counts () =
  in_sandbox (fun () ->
      Faults.enable
        { Faults.default with
          Faults.spurious_abort = 1.0; delay = 1.0; max_delay_spins = 4 };
      Faults.enter_attempt ();
      Alcotest.check_raises "spurious abort surfaces as Abort_tx Injected"
        (Control.Abort_tx Control.Injected) Faults.point;
      Alcotest.(check int) "abort counted" 1
        (Faults.count Faults.Spurious_abort);
      Alcotest.(check int) "delay counted too" 1 (Faults.count Faults.Delay);
      let counts = Faults.counts () in
      Alcotest.(check int) "counts lists every kind"
        (List.length Faults.all_kinds) (List.length counts);
      Faults.reset_counts ();
      Alcotest.(check bool) "reset clears every counter" true
        (List.for_all (fun (_, n) -> n = 0) (Faults.counts ())))

let test_disabled_is_free () =
  in_sandbox (fun () ->
      Alcotest.(check bool) "disabled by default" false (Faults.enabled ());
      Faults.enter_attempt ();
      Alcotest.(check bool) "no lock failures while disabled" false
        (Faults.inject_lock_fail ());
      Faults.point ();  (* must be a no-op, not an abort *)
      Alcotest.check_raises "reseed while disabled rejected"
        (Invalid_argument "Faults.reseed: fault injection is disabled")
        (fun () -> Faults.reseed 3);
      Faults.enable Faults.default;
      Alcotest.(check bool) "enabled" true (Faults.enabled ());
      Alcotest.(check bool) "current returns the config" true
        (Faults.current () = Some Faults.default);
      Faults.disable ();
      Alcotest.(check bool) "current cleared" true (Faults.current () = None))

let suite =
  [ Alcotest.test_case "spec parse round-trip" `Quick test_parse_roundtrip;
    Alcotest.test_case "spec parse errors" `Quick test_parse_errors;
    Alcotest.test_case "determinism per seed" `Quick
      test_determinism_per_seed;
    Alcotest.test_case "injection only inside attempts" `Quick
      test_attempt_gating;
    Alcotest.test_case "suppressed under the serial token" `Quick
      test_serial_suppression;
    Alcotest.test_case "scheduling-point aborts and counters" `Quick
      test_point_aborts_and_counts;
    Alcotest.test_case "disabled layer is inert" `Quick
      test_disabled_is_free ]
