(* Chaos regression: every engine model-checked under fault injection.

   This is the acceptance test for the robustness layer: across 20 fault
   seeds per engine no schedule may show a torn read, lose conservation or
   let any exception (Starvation included) escape, the forced-fallback
   scenario must drive the serial-irrevocable path, and every applicable
   fault kind must actually have fired at least once. *)

open Stm_core

let check_engine engine =
  let r = Harness.Chaos.run_engine ~runs_per_seed:20 engine in
  let name = r.Harness.Chaos.engine in
  Alcotest.(check int)
    (name ^ ": 20 seeds")
    20
    (List.length r.Harness.Chaos.seeds);
  Alcotest.(check (list int))
    (name ^ ": no seed shows a safety violation")
    [] r.Harness.Chaos.failed_seeds;
  Alcotest.(check bool)
    (name ^ ": multi-domain conservation holds under faults")
    true r.Harness.Chaos.stress_ok;
  Alcotest.(check bool) (name ^ ": chaos verdict ok") true
    (Harness.Chaos.ok r);
  Alcotest.(check bool)
    (name ^ ": schedules were actually explored")
    true
    (r.Harness.Chaos.schedules > 0);
  Alcotest.(check bool)
    (name ^ ": work committed under faults")
    true
    (r.Harness.Chaos.stats.Stats.commits > 0);
  (* The forced-fallback scenario guarantees escalations on every seed. *)
  Alcotest.(check bool)
    (name ^ ": serial-irrevocable fallback was exercised")
    true
    (r.Harness.Chaos.stats.Stats.fallbacks > 0);
  Alcotest.(check int)
    (name ^ ": no deadline configured, so no timeouts")
    0 r.Harness.Chaos.stats.Stats.timeouts;
  (* Every fault kind applicable to the engine must have fired.  Boosting
     has no read-set validation, so Validation_fail cannot occur there.
     The armed one-shot kinds (Crash_domain, User_raise) are not part of
     the probabilistic chaos spec — the domain-kill scenario and the
     exception-safety suite place those deterministically. *)
  let applicable =
    match engine with
    | Harness.Chaos.Boost ->
      [ Faults.Spurious_abort; Faults.Lock_fail; Faults.Delay ]
    | _ ->
      [ Faults.Spurious_abort; Faults.Lock_fail; Faults.Validation_fail;
        Faults.Delay ]
  in
  List.iter
    (fun k ->
      let n = List.assoc k r.Harness.Chaos.injected in
      Alcotest.(check bool)
        (Printf.sprintf "%s: injected at least one %s" name
           (Faults.kind_name k))
        true (n > 0))
    applicable

let test_oe () = check_engine Harness.Chaos.OE
let test_tl2 () = check_engine Harness.Chaos.TL2
let test_view () = check_engine Harness.Chaos.View
let test_boost () = check_engine Harness.Chaos.Boost

let test_engine_names () =
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Harness.Chaos.engine_name e ^ " round-trips")
        true
        (Harness.Chaos.engine_of_string (Harness.Chaos.engine_name e) = e))
    Harness.Chaos.all_engines;
  Alcotest.check_raises "unknown engine rejected"
    (Invalid_argument "Chaos.engine_of_string: unknown engine z80")
    (fun () -> ignore (Harness.Chaos.engine_of_string "z80"))

let test_report_shape () =
  let r = Harness.Chaos.run_engine ~seeds:[ 1; 2 ] ~runs_per_seed:3
      ~stress_domains:2 ~stress_txns:20 Harness.Chaos.OE
  in
  let json = Harness.Chaos.report_json [ r ] in
  let text = Harness.Report.to_string json in
  match Harness.Report.of_string text with
  | Error e -> Alcotest.failf "chaos report is not valid JSON: %s" e
  | Ok parsed ->
    let module R = Harness.Report in
    Alcotest.(check bool) "schema version" true
      (R.member "schema_version" parsed = Some (R.Int R.schema_version));
    Alcotest.(check bool) "kind marks the report as chaos" true
      (R.member "kind" parsed = Some (R.Str "chaos"));
    Alcotest.(check bool) "sanitizer verdict present (null when off)" true
      (match R.member "sanitizer" parsed with
      | Some R.Null | Some (R.Obj _) -> true
      | _ -> false);
    (match R.member "engines" parsed with
    | Some (R.List [ e ]) ->
      List.iter
        (fun key ->
          if R.member key e = None then
            Alcotest.failf "engine entry is missing %S" key)
        [ "engine"; "seeds"; "runs_per_seed"; "schedules"; "ok";
          "failed_seeds"; "stress_ok"; "commits"; "aborts"; "starvations";
          "fallbacks"; "timeouts"; "san_violations"; "injected" ]
    | _ -> Alcotest.fail "expected exactly one engine entry")

let suite =
  [ Alcotest.test_case "engine names" `Quick test_engine_names;
    Alcotest.test_case "report shape" `Quick test_report_shape;
    Alcotest.test_case "OE-STM survives chaos" `Slow test_oe;
    Alcotest.test_case "TL2 survives chaos" `Slow test_tl2;
    Alcotest.test_case "View-STM survives chaos" `Slow test_view;
    Alcotest.test_case "boosting survives chaos" `Slow test_boost ]
