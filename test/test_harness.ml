(* The benchmark harness: PRNG determinism, workload mix, figure wiring and
   a miniature end-to-end sweep. *)

let test_prng_deterministic () =
  let a = Harness.Prng.create ~seed:1 and b = Harness.Prng.create ~seed:1 in
  let xs = List.init 100 (fun _ -> Harness.Prng.next a) in
  let ys = List.init 100 (fun _ -> Harness.Prng.next b) in
  Alcotest.(check bool) "same seed, same stream" true (xs = ys);
  let c = Harness.Prng.create ~seed:2 in
  let zs = List.init 100 (fun _ -> Harness.Prng.next c) in
  Alcotest.(check bool) "different seed, different stream" false (xs = zs)

let test_prng_split_independent () =
  let root = Harness.Prng.create ~seed:1 in
  let s0 = Harness.Prng.split root ~index:0 in
  let s1 = Harness.Prng.split root ~index:1 in
  let xs = List.init 50 (fun _ -> Harness.Prng.next s0) in
  let ys = List.init 50 (fun _ -> Harness.Prng.next s1) in
  Alcotest.(check bool) "split streams differ" false (xs = ys)

let prop_prng_bounds =
  QCheck.Test.make ~name:"Prng.int stays in bounds" ~count:200
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Harness.Prng.create ~seed in
      List.for_all
        (fun _ ->
          let v = Harness.Prng.int rng bound in
          v >= 0 && v < bound)
        (List.init 50 Fun.id))

let test_workload_mix () =
  let cfg = Harness.Workload.paper ~size_exp:10 ~bulk_ratio:0.05 () in
  let rng = Harness.Prng.create ~seed:3 in
  let n = 100_000 in
  let contains = ref 0 and single = ref 0 and bulk = ref 0 in
  for _ = 1 to n do
    match Harness.Workload.gen_op cfg rng with
    | Harness.Workload.Contains _ -> incr contains
    | Harness.Workload.Add _ | Harness.Workload.Remove _ -> incr single
    | Harness.Workload.Add_all _ | Harness.Workload.Remove_all _ -> incr bulk
  done;
  let pct x = float_of_int x /. float_of_int n in
  Alcotest.(check bool) "~80% contains" true
    (abs_float (pct !contains -. 0.80) < 0.01);
  Alcotest.(check bool) "~15% single updates" true
    (abs_float (pct !single -. 0.15) < 0.01);
  Alcotest.(check bool) "~5% bulk updates" true
    (abs_float (pct !bulk -. 0.05) < 0.005)

let test_workload_keys_in_range () =
  let cfg = Harness.Workload.paper ~size_exp:8 ~bulk_ratio:0.15 () in
  let range = Harness.Workload.key_range cfg in
  Alcotest.(check int) "range = 2^(k+1)" 512 range;
  Alcotest.(check int) "preload size = 2^k" 256
    (List.length (Harness.Workload.initial_keys cfg));
  let rng = Harness.Prng.create ~seed:9 in
  for _ = 1 to 10_000 do
    match Harness.Workload.gen_op cfg rng with
    | Harness.Workload.Contains v | Harness.Workload.Add v
    | Harness.Workload.Remove v ->
      assert (v >= 0 && v < range)
    | Harness.Workload.Add_all (a, b) | Harness.Workload.Remove_all (a, b) ->
      assert (a >= 0 && a < range);
      (* b is the closest integer to a/2, as in the paper *)
      assert (b = (a + 1) / 2)
  done

let test_figure_wiring () =
  Alcotest.(check bool) "6a is linked list" true
    (Harness.Figures.structure_of Harness.Figures.F6a = Harness.Target.Linked_list);
  Alcotest.(check bool) "7b is skip list" true
    (Harness.Figures.structure_of Harness.Figures.F7b = Harness.Target.Skip_list);
  Alcotest.(check (float 1e-9)) "8b bulk ratio" 0.15
    (Harness.Figures.bulk_ratio_of Harness.Figures.F8b);
  Alcotest.(check (float 1e-9)) "7a bulk ratio" 0.05
    (Harness.Figures.bulk_ratio_of Harness.Figures.F7a);
  List.iter
    (fun f ->
      Alcotest.(check bool) "short name roundtrips" true
        (Harness.Figures.of_string (Harness.Figures.short_name f) = Some f))
    Harness.Figures.all

let test_targets_run_every_op () =
  (* Every (structure, STM) target must accept every op constructor. *)
  let cfg = Harness.Workload.paper ~size_exp:6 ~bulk_ratio:0.15 () in
  List.iter
    (fun structure ->
      List.iter
        (fun (module T : Harness.Target.TARGET) ->
          T.setup cfg;
          List.iter T.run_op
            [ Harness.Workload.Contains 3; Harness.Workload.Add 4;
              Harness.Workload.Remove 4; Harness.Workload.Add_all (10, 5);
              Harness.Workload.Remove_all (10, 5) ])
        (Harness.Target.series_for structure))
    [ Harness.Target.Linked_list; Harness.Target.Skip_list;
      Harness.Target.Hash_set { load_factor = 16 } ]

let test_mini_sweep () =
  (* End-to-end: a tiny sweep produces sane numbers. *)
  let cfg = Harness.Workload.paper ~size_exp:6 ~bulk_ratio:0.05 () in
  List.iter
    (fun (module T : Harness.Target.TARGET) ->
      let axis = if T.name = "Sequential" then [ 1 ] else [ 1; 2 ] in
      let points =
        Harness.Sweep.run_series (module T) ~cfg ~threads:axis ~duration:0.05
          ~runs:1 ~seed:5
      in
      List.iter
        (fun p ->
          Alcotest.(check bool)
            (Printf.sprintf "%s@%d made progress" T.name p.Harness.Sweep.threads)
            true
            (p.Harness.Sweep.ops_per_ms > 0.0);
          Alcotest.(check bool) "abort rate within [0,1]" true
            (p.Harness.Sweep.abort_rate >= 0.0 && p.Harness.Sweep.abort_rate <= 1.0))
        points)
    (Harness.Target.series_for Harness.Target.Linked_list)

let oe_target () =
  List.find
    (fun (module T : Harness.Target.TARGET) -> T.name = "OE-STM")
    (Harness.Target.series_for Harness.Target.Linked_list)

(* Regression for the PR-1 sweep bug: stats were reset at the start of every
   run but snapshotted only once, after the last run, so a multi-run point
   under-reported commits/aborts by a factor of [runs].  With per-run
   accumulation, runs:3 must report roughly three times the commits of
   runs:1 (same seed, same duration — the workload is deterministic, only
   the wall-clock window varies). *)
let test_runs_accumulate () =
  let cfg = Harness.Workload.paper ~size_exp:6 ~bulk_ratio:0.05 () in
  let (module T) = oe_target () in
  let point runs =
    Harness.Sweep.run_point (module T) ~cfg ~threads:1 ~duration:0.05 ~runs
      ~seed:11
  in
  let p1 = point 1 and p3 = point 3 in
  Alcotest.(check bool) "single run commits" true (p1.Harness.Sweep.total_commits > 0);
  Alcotest.(check int) "runs recorded" 3 p3.Harness.Sweep.runs;
  Alcotest.(check bool)
    (Printf.sprintf "3 runs accumulate ~3x the commits (1 run: %d, 3 runs: %d)"
       p1.Harness.Sweep.total_commits p3.Harness.Sweep.total_commits)
    true
    (float_of_int p3.Harness.Sweep.total_commits
     > 1.8 *. float_of_int p1.Harness.Sweep.total_commits);
  (* The accumulated snapshot must agree with the headline counters. *)
  Alcotest.(check int) "snapshot commits = total_commits"
    p3.Harness.Sweep.total_commits
    p3.Harness.Sweep.stats.Stm_core.Stats.commits

(* The timing window is the measured steady state only: it opens when every
   worker has passed the start barrier and closes at the stop flag, so it
   can never be shorter than the requested duration and never includes
   spawn/join time (which on a loaded CI box dwarfs a short window). *)
let test_timing_window () =
  let cfg = Harness.Workload.paper ~size_exp:6 ~bulk_ratio:0.05 () in
  let (module T) = oe_target () in
  let duration = 0.05 in
  let p =
    Harness.Sweep.run_point (module T) ~cfg ~threads:2 ~duration ~runs:2
      ~seed:13
  in
  Alcotest.(check bool) "window covers both runs" true
    (p.Harness.Sweep.elapsed_ms >= 2.0 *. duration *. 1000.0 *. 0.95);
  Alcotest.(check bool) "ops were counted" true
    (p.Harness.Sweep.total_ops > 0)

let test_detailed_metrics () =
  let cfg = Harness.Workload.paper ~size_exp:6 ~bulk_ratio:0.05 () in
  let (module T) = oe_target () in
  let p =
    Harness.Sweep.run_point ~detailed:true (module T) ~cfg ~threads:1
      ~duration:0.05 ~runs:1 ~seed:17
  in
  let s = p.Harness.Sweep.stats in
  let module H = Stm_core.Stats.Hist in
  Alcotest.(check bool) "commit latencies recorded" true
    (H.count s.Stm_core.Stats.commit_latency_ns > 0);
  Alcotest.(check bool) "commit latency p50 positive" true
    (H.percentile s.Stm_core.Stats.commit_latency_ns 50.0 > 0);
  Alcotest.(check bool) "retry depths recorded" true
    (H.count s.Stm_core.Stats.retry_depth > 0);
  Alcotest.(check bool) "read-set sizes recorded" true
    (H.count s.Stm_core.Stats.read_set_size > 0);
  Alcotest.(check bool) "flag restored after the sweep" false
    (Stm_core.Stats.detailed_enabled ());
  (* And without the flag nothing detailed is recorded. *)
  let q =
    Harness.Sweep.run_point (module T) ~cfg ~threads:1 ~duration:0.02 ~runs:1
      ~seed:17
  in
  Alcotest.(check int) "no latencies when disabled" 0
    (H.count q.Harness.Sweep.stats.Stm_core.Stats.commit_latency_ns)

let test_json_end_to_end () =
  let r =
    Harness.Figures.run ~size_exp:5 ~threads:[ 1 ] ~duration:0.02 ~runs:1
      ~seed:3 ~detailed:true Harness.Figures.F6a
  in
  let text = Harness.Report.to_string (Harness.Report.report [ r ]) in
  match Harness.Report.of_string text with
  | Error e -> Alcotest.failf "emitted report is not valid JSON: %s" e
  | Ok json ->
    let module R = Harness.Report in
    Alcotest.(check bool) "sanitizer verdict present (null when off)" true
      (match R.member "sanitizer" json with
      | Some R.Null | Some (R.Obj _) -> true
      | _ -> false);
    let fig =
      match R.member "figures" json with
      | Some (R.List [ fig ]) -> fig
      | _ -> Alcotest.fail "expected exactly one figure"
    in
    Alcotest.(check bool) "figure name" true
      (R.member "figure" fig = Some (R.Str "6a"));
    Alcotest.(check bool) "seed carried through" true
      (R.member "seed" fig = Some (R.Int 3));
    (match R.member "series" fig with
    | Some (R.List series) ->
      Alcotest.(check int) "five series" 5 (List.length series);
      List.iter
        (fun s ->
          match R.member "points" s with
          | Some (R.List (point :: _)) ->
            List.iter
              (fun key ->
                if R.member key point = None then
                  Alcotest.failf "point is missing %S" key)
              [ "threads"; "ops_per_ms"; "abort_rate"; "total_ops";
                "elapsed_ms"; "runs"; "commits"; "aborts";
                "starvations"; "fallbacks"; "timeouts";
                "aborts_by_reason"; "commit_latency_ns"; "abort_latency_ns";
                "retry_depth"; "read_set_size"; "write_set_size" ]
          | _ -> Alcotest.fail "series has no points")
        series
    | _ -> Alcotest.fail "figure has no series")

let suite =
  [ Alcotest.test_case "prng determinism" `Quick test_prng_deterministic;
    Alcotest.test_case "prng split independence" `Quick
      test_prng_split_independent;
    QCheck_alcotest.to_alcotest prop_prng_bounds;
    Alcotest.test_case "workload mix matches the paper" `Quick
      test_workload_mix;
    Alcotest.test_case "workload keys in range" `Quick
      test_workload_keys_in_range;
    Alcotest.test_case "figure wiring" `Quick test_figure_wiring;
    Alcotest.test_case "targets run every op" `Quick test_targets_run_every_op;
    Alcotest.test_case "mini sweep end-to-end" `Slow test_mini_sweep;
    Alcotest.test_case "multi-run points accumulate stats" `Slow
      test_runs_accumulate;
    Alcotest.test_case "timing window excludes spawn/join" `Slow
      test_timing_window;
    Alcotest.test_case "detailed metrics in the sweep" `Slow
      test_detailed_metrics;
    Alcotest.test_case "JSON report end-to-end" `Slow test_json_end_to_end ]
