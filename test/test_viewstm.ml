[@@@txlint.allow "stm-escape"
    "tests drive the escape hatches directly: preloads and post-run \
     state checks are quiescent"]

(* View transactions (Section VIII): the critical view is the minimal
   protected set, the programmer chooses it, nested commits outherit it.

   The decisive demonstration is the Fig. 1 scenario with the guard read
   either critically or weakly: critical -> safe in EVERY interleaving;
   weak -> the explorer finds the atomicity violation.  Outheritance is
   model-agnostic: elastic transactions slide the window automatically,
   view transactions hand the knob to the programmer. *)

open Stm_core
open Schedsim
module V = Viewstm.V

(* The view STM satisfies the generic semantics battery through its
   Stm_intf.S sub-signature. *)
module Battery = Test_stm_semantics.Battery (Viewstm.V)

let test_weak_read_not_validated () =
  let a = V.tvar 0 and d = V.tvar 0 in
  Stats.reset V.stats;
  let fired = ref false in
  V.atomic (fun ctx ->
      ignore (V.read_weak ctx a);
      if not !fired then begin
        fired := true;
        Domain.join (Domain.spawn (fun () -> V.atomic (fun c -> V.write c a 9)))
      end;
      V.write ctx d 1);
  Alcotest.(check int) "no abort: weak reads are not revalidated" 0
    (Stats.snapshot V.stats).Stats.aborts;
  Alcotest.(check (pair int int)) "both committed" (9, 1) (V.peek a, V.peek d)

let test_critical_read_validated () =
  let a = V.tvar 0 and d = V.tvar 0 in
  Stats.reset V.stats;
  let fired = ref false in
  V.atomic (fun ctx ->
      ignore (V.read ctx a);
      if not !fired then begin
        fired := true;
        Domain.join (Domain.spawn (fun () -> V.atomic (fun c -> V.write c a 9)))
      end;
      V.write ctx d 1);
  Alcotest.(check bool) "critical read conflicts abort" true
    ((Stats.snapshot V.stats).Stats.aborts >= 1);
  Alcotest.(check (pair int int)) "retry converges" (9, 1)
    (V.peek a, V.peek d)

(* Fig. 1 with the guard in or out of the critical view. *)
let scenario ~critical_guard () =
  let x = V.tvar false and y = V.tvar false in
  let contains tv =
    V.atomic (fun ctx ->
        if critical_guard then V.read ctx tv else V.read_weak ctx tv)
  in
  let insert tv = V.atomic (fun ctx -> V.write ctx tv true) in
  let insert_if_absent ~target ~guard =
    V.atomic (fun _ -> if not (contains guard) then ignore (insert target))
  in
  let procs =
    [ (fun () -> insert_if_absent ~target:x ~guard:y);
      (fun () -> insert_if_absent ~target:y ~guard:x) ]
  in
  let ok () = not (V.peek x && V.peek y) in
  (procs, ok)

let explore_guard ~critical_guard =
  let holds = ref (fun () -> true) in
  Explore.explore ~max_runs:4_000
    { Explore.procs =
        (fun () ->
          let procs, ok = scenario ~critical_guard () in
          holds := ok;
          procs);
      check = (fun _ -> !holds ()) }

let test_critical_view_composes () =
  match explore_guard ~critical_guard:true with
  | Explore.Violation { schedule; _ } ->
    Alcotest.failf "critical view violated under [%s]"
      (String.concat ";" (List.map string_of_int schedule))
  | Explore.All_ok { explored; pruned } ->
    Alcotest.(check bool) "meaningfully explored" true
      (explored > 0 && explored + pruned > 10)
  | Explore.Out_of_budget _ -> ()

let test_weak_guard_breaks () =
  match explore_guard ~critical_guard:false with
  | Explore.Violation _ -> ()
  | Explore.All_ok { explored; _ } | Explore.Out_of_budget { explored; _ } ->
    Alcotest.failf
      "guard outside the critical view should break in some interleaving \
       (%d explored)"
      explored

(* The outheritance story on recorded histories: a composition whose
   children read critically satisfies Def 4.1; weak guard reads leave
   Pmin empty, so there is nothing to protect (and correctness is on the
   programmer, as the paper says of view-style models). *)
let test_recorded_view_outheritance () =
  let events, _ =
    Recorder.record (fun () ->
        Sched.run
          [ (fun () ->
              let procs, _ = scenario ~critical_guard:true () in
              (List.hd procs) ()) ])
  in
  let h = Histories.Convert.to_history events in
  let committed = Histories.History.committed h in
  let children =
    match List.rev committed with _root :: r -> List.rev r | [] -> []
  in
  Alcotest.(check int) "two children" 2 (List.length children);
  let c = Histories.Composition.make_exn h children in
  Alcotest.(check bool) "critical view is outherited" true
    (Histories.Outheritance.satisfies h c);
  (* The contains child's Pmin is exactly its critical view. *)
  Alcotest.(check int) "contains child protects its guard" 1
    (List.length (Histories.History.pmin h (List.hd children)))

let suite =
  [ Alcotest.test_case "weak reads are not validated" `Quick
      test_weak_read_not_validated;
    Alcotest.test_case "critical reads are validated" `Quick
      test_critical_read_validated;
    Alcotest.test_case "critical view composes (all interleavings)" `Slow
      test_critical_view_composes;
    Alcotest.test_case "weak guard admits the Fig. 1 violation" `Slow
      test_weak_guard_breaks;
    Alcotest.test_case "recorded view outheritance" `Quick
      test_recorded_view_outheritance ]

let battery_suite = Battery.suite
