(* lib/persist: CRC framing, the write-ahead log, group commit,
   recovery, torn-tail handling, fault injection (fsync failures, short
   writes), checkpoint compaction and the per-engine durability hook. *)

open Stm_core

(* Durability state is process-global; every test restores a clean
   slate and works on a private temp file. *)
let with_wal_file f =
  let path = Filename.temp_file "test_persist" ".wal" in
  let finally () =
    Persist.reset_for_testing ();
    Faults.disable ();
    Stats.reset_durable_counters ();
    try Sys.remove path with Sys_error _ -> ()
  in
  Persist.reset_for_testing ();
  Fun.protect ~finally (fun () -> f path)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let mk_ptvar ?(v = 100) id =
  Persist.Ptvar.make ~id ~codec:Persist.Codec.int v

(* --- codecs ----------------------------------------------------------- *)

let test_codecs () =
  let roundtrip : 'a. 'a Persist.Codec.t -> 'a -> 'a =
   fun c v -> c.Persist.Codec.decode (c.Persist.Codec.encode v)
  in
  List.iter
    (fun v ->
      Alcotest.(check int) "int roundtrip" v (roundtrip Persist.Codec.int v))
    [ 0; 1; -1; 42; max_int; min_int ];
  Alcotest.(check string) "string is identity" "abc\000def"
    (roundtrip Persist.Codec.string "abc\000def");
  let m = Persist.Codec.marshal () in
  Alcotest.(check (list int)) "marshal roundtrip" [ 3; 1; 4 ]
    (roundtrip m [ 3; 1; 4 ]);
  Alcotest.check_raises "int codec rejects wrong length"
    (Invalid_argument "Persist.Codec.int: expected 8 bytes") (fun () ->
      ignore (Persist.Codec.int.Persist.Codec.decode "short"))

(* --- CRC-32 ----------------------------------------------------------- *)

let test_crc32 () =
  (* The IEEE 802.3 check value. *)
  Alcotest.(check int) "crc32(\"123456789\")" 0xCBF43926
    (Persist.Crc32.string "123456789");
  Alcotest.(check int) "crc32(\"\") is 0" 0 (Persist.Crc32.string "");
  (* Seeding with a prior digest chains: crc(a ++ b). *)
  let a = "hello " and b = "world" in
  Alcotest.(check int) "digest chains across fragments"
    (Persist.Crc32.string (a ^ b))
    (Persist.Crc32.digest ~seed:(Persist.Crc32.string a) b ~pos:0
       ~len:(String.length b))

(* --- WAL roundtrip through a real engine ------------------------------ *)

module type ENGINE = Stm_intf.S with type 'a tvar = 'a Tvar.t

let engines : (string * (module ENGINE)) list =
  [ ("TL2", (module Classic_stm.Tl2));
    ("OE-STM", (module Oestm.Oe));
    ("View-STM", (module Viewstm.V)) ]

let transfer (module S : ENGINE) a b =
  S.atomic (fun ctx ->
      S.write ctx (Persist.Ptvar.tvar a) (S.read ctx (Persist.Ptvar.tvar a) - 1);
      S.write ctx (Persist.Ptvar.tvar b) (S.read ctx (Persist.Ptvar.tvar b) + 1))

let test_engine_roundtrip ((name, engine) : string * (module ENGINE)) () =
  with_wal_file (fun path ->
      let a = mk_ptvar 0 and b = mk_ptvar 1 in
      Persist.enable ~path ();
      for _ = 1 to 5 do
        transfer engine a b
      done;
      Alcotest.(check int) (name ^ ": records appended") 5
        (Persist.appended_records ());
      Alcotest.(check int) (name ^ ": all acked at sync_every=1") 5
        (Persist.acked_records ());
      let max_wv = Persist.acked_wv () in
      Alcotest.(check bool) (name ^ ": acked wv positive") true (max_wv > 0);
      Persist.reset_for_testing ();
      (* Restart: fresh ptvars at the initial value, replay the log. *)
      let a' = mk_ptvar 0 and b' = mk_ptvar 1 in
      let s = Persist.recover ~path () in
      Alcotest.(check int) (name ^ ": updates replayed") 5 s.Persist.updates_intact;
      Alcotest.(check int) (name ^ ": values recovered") 95
        (Persist.Ptvar.value a');
      Alcotest.(check int) (name ^ ": conservation") 200
        (Persist.Ptvar.value a' + Persist.Ptvar.value b');
      Alcotest.(check int) (name ^ ": max_wv matches acked") max_wv
        s.Persist.max_wv;
      Alcotest.(check bool) (name ^ ": nothing torn") false s.Persist.truncated;
      (* The clock was fenced above the replayed versions: the next
         durable commit must mint a strictly larger wv. *)
      Persist.enable ~path ();
      transfer engine a' b';
      Alcotest.(check bool) (name ^ ": post-recovery wv above replayed max")
        true
        (Persist.acked_wv () > max_wv))

(* --- group commit ----------------------------------------------------- *)

let test_group_commit () =
  with_wal_file (fun path ->
      let a = mk_ptvar 0 and b = mk_ptvar 1 in
      Persist.enable ~sync_every:3 ~path ();
      let e = List.assoc "TL2" engines in
      transfer e a b;
      transfer e a b;
      Alcotest.(check int) "two pending, none acked" 0
        (Persist.acked_records ());
      Alcotest.(check int) "but both appended" 2 (Persist.appended_records ());
      transfer e a b;
      Alcotest.(check int) "third commit triggers the batch fsync" 3
        (Persist.acked_records ());
      transfer e a b;
      Alcotest.(check int) "fourth waits for the next batch" 3
        (Persist.acked_records ());
      Persist.sync ();
      Alcotest.(check int) "explicit sync drains it" 4
        (Persist.acked_records ()))

let test_no_sync_mode () =
  with_wal_file (fun path ->
      let a = mk_ptvar 0 and b = mk_ptvar 1 in
      Persist.enable ~sync_every:0 ~path ();
      let e = List.assoc "TL2" engines in
      for _ = 1 to 10 do
        transfer e a b
      done;
      Alcotest.(check int) "negative control never acks" 0
        (Persist.acked_records ());
      Alcotest.(check int) "records are still staged" 10
        (Persist.appended_records ()))

(* --- aborted work leaves no record ------------------------------------ *)

let test_no_record_on_abort () =
  with_wal_file (fun path ->
      let a = mk_ptvar 0 in
      Persist.enable ~path ();
      let module S = Classic_stm.Tl2 in
      (try
         S.atomic (fun ctx ->
             S.write ctx (Persist.Ptvar.tvar a) 1;
             raise Exit)
       with Exit -> ());
      Alcotest.(check int) "raising body appends nothing" 0
        (Persist.appended_records ());
      S.atomic (fun ctx -> ignore (S.read ctx (Persist.Ptvar.tvar a)));
      Alcotest.(check int) "read-only commit appends nothing" 0
        (Persist.appended_records ());
      S.atomic (fun ctx -> S.write ctx (Persist.Ptvar.tvar a) 7);
      Alcotest.(check int) "a real write commits one record" 1
        (Persist.appended_records ()))

let test_durability_off_is_noop () =
  with_wal_file (fun _path ->
      let a = mk_ptvar 0 in
      let before = (Stats.durable_counters ()).Stats.durable_commits in
      let module S = Classic_stm.Tl2 in
      S.atomic (fun ctx -> S.write ctx (Persist.Ptvar.tvar a) 1);
      Alcotest.(check bool) "flag stays down" false !Runtime.durability;
      Alcotest.(check int) "no durable commit counted" before
        (Stats.durable_counters ()).Stats.durable_commits)

(* --- torn-tail fuzz --------------------------------------------------- *)

(* Build a log of [n] single-entry records (ptvar 0 set to 100+k), then
   mutilate the last record every way a crash can: truncate at every
   offset inside it, and flip every one of its bytes.  Recovery must
   always keep the first [n-1] records and never replay the corrupt
   one. *)
let test_torn_tail_fuzz () =
  with_wal_file (fun path ->
      let n = 6 in
      let a = mk_ptvar 0 in
      Persist.enable ~path ();
      let module S = Classic_stm.Tl2 in
      for k = 1 to n do
        S.atomic (fun ctx -> S.write ctx (Persist.Ptvar.tvar a) (100 + k))
      done;
      Persist.reset_for_testing ();
      let whole = read_file path in
      let sc = Persist.Wal.scan_string whole in
      Alcotest.(check int) "fixture has n records" n
        (List.length sc.Persist.Wal.s_records);
      Alcotest.(check int) "fixture has no tail" (String.length whole)
        sc.Persist.Wal.s_good_end;
      let last_off = fst (List.nth sc.Persist.Wal.s_records (n - 1)) in
      let check_variant ~what mutated =
        let sc' = Persist.Wal.scan_string mutated in
        Alcotest.(check int)
          (what ^ ": exactly the intact prefix survives")
          (n - 1)
          (List.length sc'.Persist.Wal.s_records);
        Alcotest.(check int)
          (what ^ ": good_end at the last intact frame")
          last_off sc'.Persist.Wal.s_good_end;
        (* End-to-end: write it out, recover, check state and file. *)
        write_file path mutated;
        Persist.reset_for_testing ();
        let a' = mk_ptvar 0 in
        let s = Persist.recover ~path () in
        Alcotest.(check int) (what ^ ": replayed n-1 updates") (n - 1)
          s.Persist.updates_intact;
        Alcotest.(check int)
          (what ^ ": state is the last intact value")
          (100 + (n - 1))
          (Persist.Ptvar.value a');
        Alcotest.(check bool) (what ^ ": tail was truncated")
          (String.length mutated > last_off)
          s.Persist.truncated;
        Alcotest.(check int) (what ^ ": file cut back to the prefix")
          last_off
          (String.length (read_file path))
      in
      (* Truncations: every length in [last_off, len). *)
      for cut = last_off to String.length whole - 1 do
        check_variant
          ~what:(Printf.sprintf "truncate@%d" cut)
          (String.sub whole 0 cut)
      done;
      (* Bit flips: every byte of the last record. *)
      for off = last_off to String.length whole - 1 do
        let b = Bytes.of_string whole in
        Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0xFF));
        check_variant
          ~what:(Printf.sprintf "flip@%d" off)
          (Bytes.to_string b)
      done)

let test_missing_and_garbage_log () =
  with_wal_file (fun path ->
      Sys.remove path;
      let a = mk_ptvar 0 in
      let s = Persist.recover ~path () in
      Alcotest.(check int) "missing log replays nothing" 0
        s.Persist.records_intact;
      Alcotest.(check int) "value untouched" 100 (Persist.Ptvar.value a);
      write_file path "this is not a WAL";
      let s = Persist.recover ~path () in
      Alcotest.(check int) "bad magic replays nothing" 0
        s.Persist.records_intact;
      Alcotest.(check bool) "bad magic is never truncated" false
        s.Persist.truncated;
      Alcotest.(check string) "file left alone" "this is not a WAL"
        (read_file path))

(* --- fault injection -------------------------------------------------- *)

let test_fsync_failure () =
  with_wal_file (fun path ->
      let a = mk_ptvar 0 in
      Persist.enable ~path ();
      Faults.enable { Faults.default with Faults.seed = 11; fsync_fail = 1.0 };
      let module S = Classic_stm.Tl2 in
      S.atomic (fun ctx -> S.write ctx (Persist.Ptvar.tvar a) 1);
      S.atomic (fun ctx -> S.write ctx (Persist.Ptvar.tvar a) 2);
      Alcotest.(check int) "appended despite failing fsync" 2
        (Persist.appended_records ());
      Alcotest.(check int) "nothing acknowledged" 0 (Persist.acked_records ());
      Alcotest.(check bool) "failed fsync does not poison" false
        (Persist.wal_broken ());
      let c = Stats.durable_counters () in
      Alcotest.(check bool) "failures counted" true
        (c.Stats.wal_sync_failures >= 2);
      (* Once the injector clears, an explicit sync catches up. *)
      Faults.disable ();
      Persist.sync ();
      Alcotest.(check int) "sync catches up afterwards" 2
        (Persist.acked_records ()))

let test_short_write_poisons () =
  with_wal_file (fun path ->
      let a = mk_ptvar 0 in
      Persist.enable ~path ();
      let module S = Classic_stm.Tl2 in
      for k = 1 to 3 do
        S.atomic (fun ctx -> S.write ctx (Persist.Ptvar.tvar a) (100 + k))
      done;
      Faults.enable { Faults.default with Faults.seed = 7; short_write = 1.0 };
      S.atomic (fun ctx -> S.write ctx (Persist.Ptvar.tvar a) 999);
      Faults.disable ();
      Alcotest.(check bool) "short write poisons the log" true
        (Persist.wal_broken ());
      Alcotest.(check int) "acks stop at the intact prefix" 3
        (Persist.acked_records ());
      (* Committed user code never saw an exception; further commits are
         simply no longer durable. *)
      S.atomic (fun ctx -> S.write ctx (Persist.Ptvar.tvar a) 1000);
      Alcotest.(check int) "appends dropped once broken" 4
        (Persist.appended_records ());
      let c = Stats.durable_counters () in
      Alcotest.(check bool) "short write counted" true
        (c.Stats.wal_short_writes >= 1);
      Persist.reset_for_testing ();
      let a' = mk_ptvar 0 in
      let s = Persist.recover ~path () in
      Alcotest.(check int) "recovery keeps the intact records" 3
        s.Persist.updates_intact;
      Alcotest.(check int) "state from the intact prefix" 103
        (Persist.Ptvar.value a'))

(* --- checkpoint + compaction ------------------------------------------ *)

let test_checkpoint_compaction () =
  with_wal_file (fun path ->
      let a = mk_ptvar 0 and b = mk_ptvar 1 in
      Persist.enable ~path ();
      let e = List.assoc "TL2" engines in
      for _ = 1 to 8 do
        transfer e a b
      done;
      Persist.checkpoint ();
      for _ = 1 to 2 do
        transfer e a b
      done;
      Persist.reset_for_testing ();
      let sc = Persist.Wal.scan_string (read_file path) in
      Alcotest.(check int) "log compacted to checkpoint + tail" 3
        (List.length sc.Persist.Wal.s_records);
      let a' = mk_ptvar 0 and b' = mk_ptvar 1 in
      let s = Persist.recover ~path () in
      Alcotest.(check bool) "summary says checkpointed" true
        s.Persist.checkpointed;
      Alcotest.(check int) "value through checkpoint + updates" 90
        (Persist.Ptvar.value a');
      Alcotest.(check int) "conservation" 200
        (Persist.Ptvar.value a' + Persist.Ptvar.value b'))

(* --- boosting op-log + plain replayers -------------------------------- *)

let test_boosting_durable_oplog () =
  with_wal_file (fun path ->
      let applied = ref [] in
      Persist.register_replayer ~pid:50 (fun s -> applied := s :: !applied);
      Persist.enable ~path ();
      Boosting.atomic (fun tx ->
          Boosting.log_durable tx ~id:50 "add:7";
          Boosting.log_durable tx ~id:50 "add:9");
      Boosting.atomic (fun tx -> Boosting.log_durable tx ~id:50 "del:7");
      Alcotest.(check int) "one record per boosted root commit" 2
        (Persist.appended_records ());
      Alcotest.(check int) "acked" 2 (Persist.acked_records ());
      Persist.reset_for_testing ();
      Persist.register_replayer ~pid:50 (fun s -> applied := s :: !applied);
      let s = Persist.recover ~path () in
      Alcotest.(check int) "both records replayed" 2 s.Persist.updates_intact;
      Alcotest.(check (list string)) "ops in commit order"
        [ "add:7"; "add:9"; "del:7" ]
        (List.rev !applied);
      (* Plain replayers have no snapshot: a checkpoint must carry their
         records forward verbatim. *)
      Persist.enable ~path ();
      Persist.checkpoint ();
      Persist.reset_for_testing ();
      applied := [];
      Persist.register_replayer ~pid:50 (fun s -> applied := s :: !applied);
      let s = Persist.recover ~path () in
      Alcotest.(check bool) "checkpoint present" true s.Persist.checkpointed;
      Alcotest.(check (list string)) "ops survive compaction"
        [ "add:7"; "add:9"; "del:7" ]
        (List.rev !applied))

(* --- registration discipline ------------------------------------------ *)

let test_registration_errors () =
  with_wal_file (fun path ->
      let _a = mk_ptvar 0 in
      Alcotest.check_raises "duplicate pid rejected"
        (Invalid_argument "Persist: persistent id 0 is already registered")
        (fun () -> ignore (mk_ptvar 0));
      Persist.enable ~path ();
      Alcotest.check_raises "double enable rejected"
        (Invalid_argument "Persist.enable: already enabled") (fun () ->
          Persist.enable ~path ());
      Alcotest.check_raises "recover refuses a live log"
        (Invalid_argument "Persist.recover: disable the live log first")
        (fun () -> ignore (Persist.recover ~path ())))

let suite =
  [ Alcotest.test_case "codecs" `Quick test_codecs;
    Alcotest.test_case "crc32 vectors and chaining" `Quick test_crc32;
    Alcotest.test_case "group commit acks in batches" `Quick
      test_group_commit;
    Alcotest.test_case "no-sync negative control acks nothing" `Quick
      test_no_sync_mode;
    Alcotest.test_case "aborts and read-only commits leave no record"
      `Quick test_no_record_on_abort;
    Alcotest.test_case "durability off is a no-op" `Quick
      test_durability_off_is_noop;
    Alcotest.test_case "torn-tail fuzz: truncations and bit flips" `Quick
      test_torn_tail_fuzz;
    Alcotest.test_case "missing and garbage logs" `Quick
      test_missing_and_garbage_log;
    Alcotest.test_case "fsync failures hold back the ack" `Quick
      test_fsync_failure;
    Alcotest.test_case "short write poisons, prefix recovers" `Quick
      test_short_write_poisons;
    Alcotest.test_case "checkpoint compacts, state survives" `Quick
      test_checkpoint_compaction;
    Alcotest.test_case "boosting durable op-log" `Quick
      test_boosting_durable_oplog;
    Alcotest.test_case "registration discipline" `Quick
      test_registration_errors ]
  @ List.map
      (fun (name, _ as e) ->
        Alcotest.test_case
          (Printf.sprintf "durable roundtrip: %s" name)
          `Quick (test_engine_roundtrip e))
      engines
