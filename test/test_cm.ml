(* Unit tests for the pluggable contention-manager policies (Cm).

   The policies' waits are advisory spins, so the tests observe them
   through the introspection accessors (window, priority, birth_ns)
   rather than wall-clock time: Backoff must double its window per abort
   up to the cap, Karma must accumulate priority, Timestamp must keep its
   original birth stamp across attempts. *)

open Stm_core

let with_policy p f =
  let saved = Cm.current_policy () in
  Cm.set_policy p;
  Fun.protect ~finally:(fun () -> Cm.set_policy saved) f

let test_policy_names () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Cm.policy_name p ^ " round-trips")
        true
        (Cm.policy_of_string (Cm.policy_name p) = p))
    Cm.all_policies;
  Alcotest.(check bool) "case-insensitive" true
    (Cm.policy_of_string "KARMA" = Cm.Karma);
  Alcotest.check_raises "unknown policy rejected"
    (Invalid_argument "Cm.policy_of_string: unknown policy nonsense")
    (fun () -> ignore (Cm.policy_of_string "nonsense"))

let test_default_policy_plumbing () =
  with_policy Cm.Timestamp (fun () ->
      Alcotest.(check bool) "current_policy" true
        (Cm.current_policy () = Cm.Timestamp);
      let cm = Cm.create () in
      Alcotest.(check bool) "create picks up the default" true
        (Cm.policy cm = Cm.Timestamp));
  let cm = Cm.create ~policy:Cm.Karma () in
  Alcotest.(check bool) "explicit policy wins" true (Cm.policy cm = Cm.Karma)

let test_backoff_exponential () =
  let cm = Cm.create ~policy:Cm.Backoff ~seed:3 () in
  let init, cap = Backoff.defaults () in
  Alcotest.(check int) "starts at the default init" init (Cm.window cm);
  Cm.pre_attempt cm ~attempt:0;
  let expected = ref init in
  for attempt = 0 to 12 do
    Cm.on_abort cm ~attempt Control.Validation_failed;
    expected := min cap (!expected * 2);
    Alcotest.(check int)
      (Printf.sprintf "window doubles (abort %d)" attempt)
      !expected (Cm.window cm)
  done;
  Alcotest.(check int) "window saturates at the cap" cap (Cm.window cm);
  Cm.on_abort cm ~attempt:13 Control.Lock_contention;
  Alcotest.(check int) "still capped" cap (Cm.window cm);
  Cm.on_commit cm;
  Alcotest.(check int) "commit resets the window" init (Cm.window cm)

let test_karma_priority () =
  let cm = Cm.create ~policy:Cm.Karma ~seed:5 () in
  Alcotest.(check int) "fresh priority" 0 (Cm.priority cm);
  Cm.pre_attempt cm ~attempt:0;
  for attempt = 0 to 4 do
    Cm.on_abort cm ~attempt Control.Read_locked
  done;
  Alcotest.(check int) "each abort earns one karma" 5 (Cm.priority cm);
  Alcotest.(check bool) "window still grows under karma" true
    (Cm.window cm > fst (Backoff.defaults ()));
  Cm.on_commit cm;
  Alcotest.(check int) "commit resets priority" 0 (Cm.priority cm);
  Alcotest.(check int) "commit resets the window"
    (fst (Backoff.defaults ())) (Cm.window cm)

let test_timestamp_birth_preserved () =
  let cm = Cm.create ~policy:Cm.Timestamp ~seed:7 () in
  Cm.pre_attempt cm ~attempt:0;
  let birth = Cm.birth_ns cm in
  Alcotest.(check bool) "attempt 0 stamps a birth time" true
    (birth > 0L);
  for attempt = 0 to 3 do
    Cm.on_abort cm ~attempt Control.Validation_failed;
    Cm.pre_attempt cm ~attempt:(attempt + 1);
    Alcotest.(check bool)
      (Printf.sprintf "retry %d keeps the birth stamp" (attempt + 1))
      true
      (Cm.birth_ns cm = birth)
  done;
  (* A fresh top-level transaction (attempt 0 again) re-stamps. *)
  Cm.on_commit cm;
  Cm.pre_attempt cm ~attempt:0;
  Alcotest.(check bool) "next transaction gets a fresh stamp" true
    (Cm.birth_ns cm >= birth)

let test_backoff_defaults_validation () =
  let init, cap = Backoff.defaults () in
  let restore () = Backoff.set_defaults ~init ~max_window:cap () in
  Fun.protect ~finally:restore (fun () ->
      Backoff.set_defaults ~init:4 ~max_window:64 ();
      Alcotest.(check bool) "set_defaults applies" true
        (Backoff.defaults () = (4, 64));
      Alcotest.check_raises "init below 1 rejected"
        (Invalid_argument "Backoff.set_defaults: init must be >= 1")
        (fun () -> Backoff.set_defaults ~init:0 ());
      Alcotest.check_raises "cap below init rejected"
        (Invalid_argument "Backoff.set_defaults: max_window < init")
        (fun () -> Backoff.set_defaults ~max_window:2 ()))

let suite =
  [ Alcotest.test_case "policy names" `Quick test_policy_names;
    Alcotest.test_case "default policy plumbing" `Quick
      test_default_policy_plumbing;
    Alcotest.test_case "backoff doubles and resets" `Quick
      test_backoff_exponential;
    Alcotest.test_case "karma accumulates priority" `Quick
      test_karma_priority;
    Alcotest.test_case "timestamp keeps its birth" `Quick
      test_timestamp_birth_preserved;
    Alcotest.test_case "backoff defaults validation" `Quick
      test_backoff_defaults_validation ]
