(* The e.e.c collections, tested three ways:
   1. model-based: random operation sequences agree with a reference
      implementation (Stdlib.Set) — per structure, per STM;
   2. structural invariants hold after random workloads;
   3. concurrency: parallel domains hammering the structure preserve
      invariants, and composed operations (add_all / move / size) stay
      atomic. *)

open Stm_core

module IntSet = Set.Make (Int)

(* One test battery per (STM, structure) pair. *)
module Battery
    (S : Stm_intf.S) (Mk : functor (S' : Stm_intf.S) (K : Eec.Set_intf.ORDERED) ->
      Eec.Set_intf.SET with type elt = K.t) (Name : sig
      val name : string
    end) =
struct
  module TSet = Mk (S) (Eec.Set_intf.Int_key)

  let test_basic () =
    let s = TSet.create () in
    Alcotest.(check bool) "empty contains" false (TSet.contains s 5);
    Alcotest.(check bool) "add new" true (TSet.add s 5);
    Alcotest.(check bool) "add dup" false (TSet.add s 5);
    Alcotest.(check bool) "contains after add" true (TSet.contains s 5);
    Alcotest.(check bool) "remove present" true (TSet.remove s 5);
    Alcotest.(check bool) "remove absent" false (TSet.remove s 5);
    Alcotest.(check bool) "contains after remove" false (TSet.contains s 5)

  let test_ordering () =
    let s = TSet.create () in
    List.iter (fun x -> ignore (TSet.add s x)) [ 5; 1; 9; 3; 7; 1; 9 ];
    Alcotest.(check (list int)) "to_list ascending" [ 1; 3; 5; 7; 9 ]
      (TSet.to_list s);
    Alcotest.(check int) "size" 5 (TSet.size s);
    Alcotest.(check bool) "invariants" true
      (Result.is_ok (TSet.check_invariants s))

  let test_composed_ops () =
    let s = TSet.create () in
    Alcotest.(check bool) "add_all changes" true (TSet.add_all s [ 1; 2; 3 ]);
    Alcotest.(check bool) "add_all no-op" false (TSet.add_all s [ 1; 2; 3 ]);
    Alcotest.(check bool) "add_all partial" true (TSet.add_all s [ 3; 4 ]);
    Alcotest.(check (list int)) "contents" [ 1; 2; 3; 4 ] (TSet.to_list s);
    Alcotest.(check bool) "remove_all" true (TSet.remove_all s [ 2; 4; 9 ]);
    Alcotest.(check (list int)) "after remove_all" [ 1; 3 ] (TSet.to_list s);
    Alcotest.(check bool) "insert_if_absent blocked" false
      (TSet.insert_if_absent s ~ins:7 ~guard:1);
    Alcotest.(check bool) "insert_if_absent fires" true
      (TSet.insert_if_absent s ~ins:7 ~guard:2);
    Alcotest.(check (list int)) "after insert_if_absent" [ 1; 3; 7 ]
      (TSet.to_list s)

  let test_move () =
    let a = TSet.create () and b = TSet.create () in
    ignore (TSet.add a 1);
    Alcotest.(check bool) "move present" true (TSet.move ~src:a ~dst:b 1);
    Alcotest.(check bool) "gone from src" false (TSet.contains a 1);
    Alcotest.(check bool) "arrived in dst" true (TSet.contains b 1);
    Alcotest.(check bool) "move absent" false (TSet.move ~src:a ~dst:b 2)

  (* Model-based random testing against Stdlib.Set. *)
  type cmd = Add of int | Remove of int | Contains of int

  let cmd_gen =
    QCheck.Gen.(
      map2
        (fun tag v -> match tag with 0 -> Add v | 1 -> Remove v | _ -> Contains v)
        (int_bound 2) (int_bound 31))

  let cmd_print = function
    | Add v -> Printf.sprintf "add %d" v
    | Remove v -> Printf.sprintf "remove %d" v
    | Contains v -> Printf.sprintf "contains %d" v

  let prop_model =
    QCheck.Test.make
      ~name:(Name.name ^ ": agrees with Stdlib.Set model")
      ~count:150
      QCheck.(make ~print:(fun l -> String.concat "; " (List.map cmd_print l))
                (QCheck.Gen.list_size (QCheck.Gen.int_bound 60) cmd_gen))
      (fun cmds ->
        let s = TSet.create () in
        let model = ref IntSet.empty in
        List.for_all
          (fun cmd ->
            match cmd with
            | Add v ->
              let expect = not (IntSet.mem v !model) in
              model := IntSet.add v !model;
              TSet.add s v = expect
            | Remove v ->
              let expect = IntSet.mem v !model in
              model := IntSet.remove v !model;
              TSet.remove s v = expect
            | Contains v -> TSet.contains s v = IntSet.mem v !model)
          cmds
        && TSet.to_list s = IntSet.elements !model
        && TSet.size s = IntSet.cardinal !model
        && Result.is_ok (TSet.check_invariants s))

  let prop_bulk_model =
    QCheck.Test.make
      ~name:(Name.name ^ ": add_all/remove_all agree with model")
      ~count:80
      QCheck.(pair (list (int_bound 31)) (list (int_bound 31)))
      (fun (to_add, to_remove) ->
        let s = TSet.create () in
        let changed_add = TSet.add_all s to_add in
        let model = IntSet.of_list to_add in
        let changed_remove = TSet.remove_all s to_remove in
        let model = IntSet.diff model (IntSet.of_list to_remove) in
        changed_add = (to_add <> [])
        && changed_remove = List.exists (fun x -> List.mem x to_add) to_remove
        && TSet.to_list s = IntSet.elements model)

  let test_concurrent_invariants () =
    let s = TSet.create () in
    let n_domains = 4 and ops = 300 in
    let work seed () =
      let st = ref (seed * 7919 + 13) in
      let next bound =
        st := (!st * 25214903917 + 11) land max_int;
        !st mod bound
      in
      for _ = 1 to ops do
        let v = next 64 in
        match next 3 with
        | 0 -> ignore (TSet.add s v)
        | 1 -> ignore (TSet.remove s v)
        | _ -> ignore (TSet.contains s v)
      done
    in
    let domains = List.init n_domains (fun i -> Domain.spawn (work i)) in
    List.iter Domain.join domains;
    Alcotest.(check bool) "invariants after concurrent workload" true
      (Result.is_ok (TSet.check_invariants s));
    Alcotest.(check int) "size matches contents" (List.length (TSet.to_list s))
      (TSet.size s)

  let test_concurrent_move_conserves () =
    (* Tokens move between two sets concurrently; the total number must be
       conserved — the motivating example for composition. *)
    let a = TSet.create () and b = TSet.create () in
    let n_tokens = 16 in
    for i = 0 to n_tokens - 1 do
      ignore (TSet.add a i)
    done;
    let mover src dst seed () =
      let st = ref (seed + 3) in
      let next bound =
        st := (!st * 2862933555777941757 + 1442695040888963407) land max_int;
        !st mod bound
      in
      for _ = 1 to 150 do
        ignore (TSet.move ~src ~dst (next n_tokens))
      done
    in
    let domains =
      [ Domain.spawn (mover a b 1); Domain.spawn (mover b a 2);
        Domain.spawn (mover a b 3); Domain.spawn (mover b a 4) ]
    in
    List.iter Domain.join domains;
    let total = TSet.size a + TSet.size b in
    Alcotest.(check int) "tokens conserved" n_tokens total;
    (* No token duplicated across the two sets. *)
    let la = TSet.to_list a and lb = TSet.to_list b in
    Alcotest.(check int) "no duplication"
      n_tokens
      (IntSet.cardinal (IntSet.union (IntSet.of_list la) (IntSet.of_list lb)))

  let test_concurrent_size_atomic () =
    (* add_all inserts pairs; size must always observe an even count. *)
    let s = TSet.create () in
    let odd_seen = Atomic.make 0 in
    let writer =
      Domain.spawn (fun () ->
          for i = 0 to 99 do
            ignore (TSet.add_all s [ 2 * i; (2 * i) + 1 ])
          done)
    in
    let reader =
      (* Fixed iteration count, not a stop flag: identical coverage on any
         machine speed, and the invariant holds whether or not every check
         overlaps the writer. *)
      Domain.spawn (fun () ->
          for _ = 1 to 400 do
            if TSet.size s mod 2 = 1 then ignore (Atomic.fetch_and_add odd_seen 1)
          done)
    in
    Domain.join writer;
    Domain.join reader;
    Alcotest.(check int) "size never observes a half add_all" 0
      (Atomic.get odd_seen)

  let suite =
    [ Alcotest.test_case (Name.name ^ " basics") `Quick test_basic;
      Alcotest.test_case (Name.name ^ " ordering") `Quick test_ordering;
      Alcotest.test_case (Name.name ^ " composed ops") `Quick test_composed_ops;
      Alcotest.test_case (Name.name ^ " move") `Quick test_move;
      QCheck_alcotest.to_alcotest prop_model;
      QCheck_alcotest.to_alcotest prop_bulk_model;
      Alcotest.test_case (Name.name ^ " concurrent invariants") `Slow
        test_concurrent_invariants;
      Alcotest.test_case (Name.name ^ " concurrent move conserves") `Slow
        test_concurrent_move_conserves;
      Alcotest.test_case (Name.name ^ " size is atomic") `Slow
        test_concurrent_size_atomic ]
end

(* Sequential baselines share the model tests. *)
let seq_model_suite =
  let module M = Seqds.Linked_list (Seqds.Int_key) in
  let module Sk = Seqds.Skip_list (Seqds.Int_key) in
  let module H = Seqds.Hash (Seqds.Int_key) in
  let mk_prop (type t) name (create : unit -> t) (add : t -> int -> bool)
      (remove : t -> int -> bool) (contains : t -> int -> bool)
      (to_list : t -> int list) =
    QCheck.Test.make ~name ~count:200
      QCheck.(list (pair (int_bound 2) (int_bound 31)))
      (fun cmds ->
        let s = create () in
        let model = ref IntSet.empty in
        List.for_all
          (fun (tag, v) ->
            match tag with
            | 0 ->
              let e = not (IntSet.mem v !model) in
              model := IntSet.add v !model;
              add s v = e
            | 1 ->
              let e = IntSet.mem v !model in
              model := IntSet.remove v !model;
              remove s v = e
            | _ -> contains s v = IntSet.mem v !model)
          cmds
        && to_list s = IntSet.elements !model)
  in
  [ QCheck_alcotest.to_alcotest
      (mk_prop "seq linked list model" M.create M.add M.remove M.contains
         M.to_list);
    QCheck_alcotest.to_alcotest
      (mk_prop "seq skip list model" Sk.create Sk.add Sk.remove Sk.contains
         Sk.to_list);
    QCheck_alcotest.to_alcotest
      (mk_prop "seq hash set model" H.create H.add H.remove H.contains
         H.to_list) ]

module Ll_oe =
  Battery (Oestm.Oe) (Eec.Linked_list_set.Make)
    (struct let name = "ll/OE" end)

module Ll_tl2 =
  Battery (Classic_stm.Tl2) (Eec.Linked_list_set.Make)
    (struct let name = "ll/TL2" end)

module Ll_lsa =
  Battery (Classic_stm.Lsa) (Eec.Linked_list_set.Make)
    (struct let name = "ll/LSA" end)

module Ll_swiss =
  Battery (Classic_stm.Swisstm) (Eec.Linked_list_set.Make)
    (struct let name = "ll/Swiss" end)

module Sk_oe =
  Battery (Oestm.Oe) (Eec.Skip_list_set.Make)
    (struct let name = "skip/OE" end)

module Sk_tl2 =
  Battery (Classic_stm.Tl2) (Eec.Skip_list_set.Make)
    (struct let name = "skip/TL2" end)

module Hs_oe =
  Battery (Oestm.Oe) (Eec.Hash_set.Make)
    (struct let name = "hash/OE" end)

module Hs_swiss =
  Battery (Classic_stm.Swisstm) (Eec.Hash_set.Make)
    (struct let name = "hash/Swiss" end)

let suites =
  [ ("eec:linkedlist-OE", Ll_oe.suite);
    ("eec:linkedlist-TL2", Ll_tl2.suite);
    ("eec:linkedlist-LSA", Ll_lsa.suite);
    ("eec:linkedlist-Swiss", Ll_swiss.suite);
    ("eec:skiplist-OE", Sk_oe.suite);
    ("eec:skiplist-TL2", Sk_tl2.suite);
    ("eec:hashset-OE", Hs_oe.suite);
    ("eec:hashset-Swiss", Hs_swiss.suite);
    ("eec:sequential", seq_model_suite) ]
