[@@@txlint.allow "stm-escape"
    "tests drive the escape hatches directly: preloads and post-run \
     state checks are quiescent"]

[@@@txlint.allow "lock-release"
    "tests exercise the lock primitives directly and assert the release \
     behaviour themselves"]

open Stm_core

let test_wset_find_typed () =
  let ws = Rwsets.Wset.create () in
  let a = Tvar.make 1 in
  let b = Tvar.make "hello" in
  Alcotest.(check bool) "first write to a" true (Rwsets.Wset.add ws a 10);
  Alcotest.(check bool) "first write to b" true (Rwsets.Wset.add ws b "x");
  Alcotest.(check bool) "second write to a" false (Rwsets.Wset.add ws a 20);
  Alcotest.(check (option int)) "a pending" (Some 20) (Rwsets.Wset.find ws a);
  Alcotest.(check (option string)) "b pending" (Some "x") (Rwsets.Wset.find ws b);
  let c = Tvar.make 0 in
  Alcotest.(check (option int)) "c absent" None (Rwsets.Wset.find ws c);
  Alcotest.(check int) "size counts distinct tvars" 2 (Rwsets.Wset.size ws)

let test_lock_all_and_install () =
  let ws = Rwsets.Wset.create () in
  let a = Tvar.make 1 and b = Tvar.make 2 in
  ignore (Rwsets.Wset.add ws a 10);
  ignore (Rwsets.Wset.add ws b 20);
  Alcotest.(check bool) "lock_all succeeds" true
    (Rwsets.Wset.lock_all ws ~owner:1);
  Rwsets.Wset.install_and_unlock ws ~wv:7;
  Alcotest.(check int) "a installed" 10 (Tvar.peek a);
  Alcotest.(check int) "b installed" 20 (Tvar.peek b);
  Alcotest.(check int) "a version bumped" 7
    (Vlock.version_of (Vlock.stamp a.Tvar.lock));
  Alcotest.(check bool) "a unlocked" false
    (Vlock.locked (Vlock.stamp a.Tvar.lock))

let test_lock_all_fails_and_rolls_back () =
  let ws = Rwsets.Wset.create () in
  let a = Tvar.make 1 and b = Tvar.make 2 in
  ignore (Rwsets.Wset.add ws a 10);
  ignore (Rwsets.Wset.add ws b 20);
  (* Another transaction holds b. *)
  Alcotest.(check bool) "foreign lock" true (Vlock.try_lock b.Tvar.lock ~owner:99);
  Alcotest.(check bool) "lock_all fails" false (Rwsets.Wset.lock_all ws ~owner:1);
  Alcotest.(check bool) "a released again" false
    (Vlock.locked (Vlock.stamp a.Tvar.lock));
  Vlock.unlock_restore b.Tvar.lock;
  Alcotest.(check bool) "lock_all succeeds after release" true
    (Rwsets.Wset.lock_all ws ~owner:1);
  Rwsets.Wset.unlock_all_restore ws;
  Alcotest.(check int) "values untouched on rollback" 1 (Tvar.peek a)

let push_read rs tv =
  let s, _ = Tvar.read_consistent tv in
  Rwsets.Rset.push rs
    { Rwsets.r_lock = tv.Tvar.lock; r_seen = s; r_pe = Tvar.id tv }

let test_rset_validate () =
  let rs = Rwsets.Rset.create () in
  let a = Tvar.make 1 in
  push_read rs a;
  Alcotest.(check bool) "valid while unchanged" true
    (Rwsets.Rset.validate rs ~owner:1);
  (* Simulate a foreign commit. *)
  ignore (Vlock.try_lock a.Tvar.lock ~owner:9);
  Alcotest.(check bool) "invalid while foreign-locked" false
    (Rwsets.Rset.validate rs ~owner:1);
  Vlock.unlock_to a.Tvar.lock ~version:5;
  Alcotest.(check bool) "invalid after version bump" false
    (Rwsets.Rset.validate rs ~owner:1)

let test_rset_validate_own_lock () =
  let rs = Rwsets.Rset.create () in
  let a = Tvar.make 1 in
  push_read rs a;
  ignore (Vlock.try_lock a.Tvar.lock ~owner:1);
  Alcotest.(check bool) "own write lock over read version is valid" true
    (Rwsets.Rset.validate rs ~owner:1);
  Vlock.unlock_restore a.Tvar.lock

let test_read_consistent_aborts_on_lock () =
  let a = Tvar.make 1 in
  ignore (Vlock.try_lock a.Tvar.lock ~owner:3);
  Alcotest.check_raises "locked read aborts"
    (Control.Abort_tx Control.Read_locked) (fun () ->
      ignore (Tvar.read_consistent a));
  Vlock.unlock_restore a.Tvar.lock

let prop_wset_last_write_wins =
  QCheck.Test.make ~name:"wset: last write wins per tvar" ~count:200
    QCheck.(list (pair (int_bound 9) small_int))
    (fun writes ->
      let tvs = Array.init 10 (fun _ -> Tvar.make (-1)) in
      let ws = Rwsets.Wset.create () in
      List.iter (fun (i, v) -> ignore (Rwsets.Wset.add ws tvs.(i) v)) writes;
      List.for_all
        (fun i ->
          let expected =
            List.fold_left
              (fun acc (j, v) -> if i = j then Some v else acc)
              None writes
          in
          Rwsets.Wset.find ws tvs.(i) = expected)
        (List.init 10 Fun.id))

(* ------------------------------------------------------------------ *)
(* Differential properties: indexed Wset vs a linear assoc model, over
   random op sequences long enough to cross the small-set threshold and
   grow the hash index, with duplicate-id overwrites and post-clear
   reuse of the same (scratch-style) set. *)

type wop = Add of int * int | Clear

let wop_gen =
  QCheck.Gen.(
    frequency
      [ (20, map2 (fun i v -> Add (i, v)) (int_bound 31) small_nat);
        (1, return Clear) ])

let wop_print = function
  | Add (i, v) -> Printf.sprintf "Add(%d,%d)" i v
  | Clear -> "Clear"

let prop_wset_differential =
  QCheck.Test.make ~name:"wset: indexed = linear model under random ops"
    ~count:300
    QCheck.(make ~print:(QCheck.Print.list wop_print) (Gen.list_size (Gen.int_range 0 120) wop_gen))
    (fun ops ->
      let tvs = Array.init 32 (fun _ -> Tvar.make (-1)) in
      let ws = Rwsets.Wset.create () in
      let model = ref [] in
      let agree () =
        Array.for_all
          (fun tv ->
            let pe = Tvar.id tv in
            Rwsets.Wset.find ws tv = List.assoc_opt pe !model
            && Rwsets.Wset.mem_pe ws pe = List.mem_assoc pe !model)
          tvs
        && Rwsets.Wset.size ws = List.length !model
        && Rwsets.Wset.is_empty ws = (!model = [])
      in
      List.for_all
        (fun op ->
          (match op with
          | Add (i, v) ->
            let tv = tvs.(i) in
            let first = Rwsets.Wset.add ws tv v in
            let pe = Tvar.id tv in
            let model_first = not (List.mem_assoc pe !model) in
            model := (pe, v) :: List.remove_assoc pe !model;
            if first <> model_first then QCheck.Test.fail_report "add: first?"
          | Clear ->
            Rwsets.Wset.clear ws;
            model := []);
          agree ())
        ops)

let test_wset_large_lock_order () =
  let n = 100 in
  let tvs = Array.init n (fun i -> Tvar.make i) in
  let ws = Rwsets.Wset.create () in
  (* Insert in a scrambled order so [lock_all]'s sort has work to do and
     the index must survive the resulting slot permutation. *)
  Array.iter (fun tv -> ignore (Rwsets.Wset.add ws tv 0)) tvs;
  Alcotest.(check bool) "lock_all succeeds" true
    (Rwsets.Wset.lock_all ws ~owner:1);
  let prev = ref (-1) in
  Rwsets.Wset.iter_pes ws (fun pe ->
      Alcotest.(check bool) "pes strictly ascending" true (pe > !prev);
      prev := pe);
  (* The id -> slot index must still resolve every entry after the sort. *)
  Array.iter
    (fun tv ->
      Alcotest.(check (option int))
        "find after sort" (Some 0) (Rwsets.Wset.find ws tv))
    tvs;
  Rwsets.Wset.unlock_all_restore ws

(* ------------------------------------------------------------------ *)
(* Watermarked Rset vs a full-rescan reference. *)

let reference_validate_from entries ~owner ~from =
  List.for_all
    (Rwsets.rentry_valid ~owner)
    (List.filteri (fun i _ -> i >= from) entries)

let prop_rset_watermark =
  (* Random sequence of reads and validations interleaved with foreign
     commits; [validate] must agree with a full reference scan, and
     [validate_new] with the reference restricted to the suffix above the
     watermark. *)
  QCheck.Test.make ~name:"rset: watermark validation = reference" ~count:200
    QCheck.(list (int_bound 9))
    (fun reads ->
      let tvs = Array.init 10 (fun i -> Tvar.make i) in
      let rs = Rwsets.Rset.create () in
      let entries = ref [] in
      List.for_all
        (fun i ->
          let tv = tvs.(i) in
          let s, _ = Tvar.read_consistent tv in
          let e =
            { Rwsets.r_lock = tv.Tvar.lock; r_seen = s; r_pe = Tvar.id tv }
          in
          Rwsets.Rset.push rs e;
          entries := !entries @ [ e ];
          (* Invalidate every third location behind the set's back. *)
          if i mod 3 = 0 then begin
            ignore (Vlock.try_lock tv.Tvar.lock ~owner:999);
            Vlock.unlock_to tv.Tvar.lock
              ~version:(Vlock.version_of (Vlock.stamp tv.Tvar.lock) + 1)
          end;
          let wm = Rwsets.Rset.validated_upto rs in
          let inc = Rwsets.Rset.validate_new rs ~owner:1 in
          let inc_ref = reference_validate_from !entries ~owner:1 ~from:wm in
          let full = Rwsets.Rset.validate rs ~owner:1 in
          let full_ref = reference_validate_from !entries ~owner:1 ~from:0 in
          inc = inc_ref && full = full_ref
          && (not full
             || Rwsets.Rset.validated_upto rs = Rwsets.Rset.length rs))
        reads)

let test_rset_suffix_only_semantics () =
  (* The whole point of the watermark: after a successful full validation,
     invalidating a prefix entry is invisible to [validate_new] (sound
     while rv is unchanged — the snapshot it vouches for is unchanged)
     but caught by the full [validate]. *)
  let a = Tvar.make 1 and b = Tvar.make 2 in
  let rs = Rwsets.Rset.create () in
  push_read rs a;
  Alcotest.(check bool) "initial validate" true (Rwsets.Rset.validate rs ~owner:1);
  Alcotest.(check int) "watermark covers a" 1 (Rwsets.Rset.validated_upto rs);
  (* Foreign commit overwrites a. *)
  ignore (Vlock.try_lock a.Tvar.lock ~owner:9);
  Vlock.unlock_to a.Tvar.lock ~version:5;
  push_read rs b;
  Alcotest.(check bool) "suffix-only scan skips stale prefix" true
    (Rwsets.Rset.validate_new rs ~owner:1);
  Alcotest.(check int) "suffix scan examined 1 entry" 1
    (Rwsets.Rset.last_scan rs);
  Alcotest.(check bool) "full scan catches the stale prefix" false
    (Rwsets.Rset.validate rs ~owner:1);
  Alcotest.(check int) "full scan examined everything" 2
    (Rwsets.Rset.last_scan rs)

let test_rset_filter_pe_watermark () =
  let tvs = Array.init 6 (fun i -> Tvar.make i) in
  let rs = Rwsets.Rset.create () in
  (* Entries: a b a c (a = tvs.(0)), validate all, then append d a. *)
  push_read rs tvs.(0);
  push_read rs tvs.(1);
  push_read rs tvs.(0);
  push_read rs tvs.(2);
  Alcotest.(check bool) "validate" true (Rwsets.Rset.validate rs ~owner:1);
  push_read rs tvs.(3);
  push_read rs tvs.(0);
  Alcotest.(check int) "watermark before filter" 4
    (Rwsets.Rset.validated_upto rs);
  let dropped = Rwsets.Rset.filter_pe rs ~pe:(Tvar.id tvs.(0)) in
  Alcotest.(check int) "dropped all three" 3 dropped;
  Alcotest.(check int) "length shrank" 3 (Rwsets.Rset.length rs);
  (* 2 of the 4 validated entries were dropped: watermark 4 -> 2, which
     still covers exactly the surviving validated prefix (b, c). *)
  Alcotest.(check int) "watermark adjusted" 2 (Rwsets.Rset.validated_upto rs);
  Alcotest.(check bool) "survivors still valid" true
    (Rwsets.Rset.validate rs ~owner:1)

let test_rset_clear_resets_watermark () =
  let a = Tvar.make 1 in
  let rs = Rwsets.Rset.create () in
  push_read rs a;
  Alcotest.(check bool) "validate" true (Rwsets.Rset.validate rs ~owner:1);
  Rwsets.Rset.clear rs;
  Alcotest.(check int) "length" 0 (Rwsets.Rset.length rs);
  Alcotest.(check int) "watermark" 0 (Rwsets.Rset.validated_upto rs);
  (* Scratch-style reuse after clear behaves like a fresh set. *)
  push_read rs a;
  Alcotest.(check bool) "reuse validates" true (Rwsets.Rset.validate rs ~owner:1)

(* ------------------------------------------------------------------ *)
(* Fault-injection coverage: every validation entry point must consult
   the injector (validate_upto historically bypassed it). *)

let test_validation_fault_injection () =
  let saved = Faults.current () in
  Faults.enable { Faults.default with validation_fail = 1.0 };
  Faults.reset_counts ();
  Faults.enter_attempt ();
  Fun.protect
    ~finally:(fun () ->
      Faults.leave_attempt ();
      match saved with Some c -> Faults.enable c | None -> Faults.disable ())
    (fun () ->
      let a = Tvar.make 1 in
      let rs = Rwsets.Rset.create () in
      push_read rs a;
      Alcotest.(check bool) "validate injected" false
        (Rwsets.Rset.validate rs ~owner:1);
      Alcotest.(check bool) "validate_new injected" false
        (Rwsets.Rset.validate_new rs ~owner:1);
      Alcotest.(check bool) "validate_upto injected" false
        (Rwsets.Rset.validate_upto rs ~owner:1 ~limit:max_int);
      Alcotest.(check bool) "all three recorded" true
        (Faults.count Faults.Validation_fail >= 3))

(* ------------------------------------------------------------------ *)
(* GC regression: a cleared write set must not retain its tvars.  The
   helper is [@inline never] so no stack slot keeps the temporary alive. *)

let[@inline never] add_temp_tvar ws =
  let tv = Tvar.make 42 in
  ignore (Rwsets.Wset.add ws tv 43);
  let w = Weak.create 1 in
  Weak.set w 0 (Some tv);
  w

let test_wset_clear_releases_tvar () =
  let ws = Rwsets.Wset.create () in
  let w = add_temp_tvar ws in
  Rwsets.Wset.clear ws;
  Gc.full_major ();
  Gc.full_major ();
  Alcotest.(check bool) "cleared write set does not pin its tvar" true
    (Weak.get w 0 = None);
  (* The set stays usable after the wipe. *)
  let b = Tvar.make 7 in
  ignore (Rwsets.Wset.add ws b 8);
  Alcotest.(check (option int)) "reuse after clear" (Some 8)
    (Rwsets.Wset.find ws b)

(* ------------------------------------------------------------------ *)
(* DPOR sweep: verdicts must be unchanged by the set indexing.  One
   process writes 9 private pads — past the small-set threshold (8), so
   the hash index is live inside the explored schedules — reads them
   back through the write set and increments a shared counter; a rival
   runs a plain increment.  The asymmetry matters: pads are private, so
   the only races are on the counter and the clock, and the rival's
   short transaction keeps the schedule space within DPOR's reach (two
   symmetric big transactions blow it up by orders of magnitude). *)

let indexed_pads (module S : Stm_intf.S) =
  let final = ref (fun () -> 0) in
  { Schedsim.Explore.procs =
      (fun () ->
        let shared = S.tvar 0 in
        let pads = Array.init 9 (fun _ -> S.tvar 0) in
        final := (fun () -> S.peek shared);
        let big () =
          S.atomic (fun ctx ->
              (* 9 writes: crosses the threshold (8), builds the index. *)
              Array.iteri (fun j tv -> S.write ctx tv (j + 1)) pads;
              (* Read back through the write set: every lookup must hit. *)
              let sum =
                Array.fold_left (fun acc tv -> acc + S.read ctx tv) 0 pads
              in
              assert (sum = 45);
              S.write ctx shared (S.read ctx shared + 1))
        and small () =
          S.atomic (fun ctx -> S.write ctx shared (S.read ctx shared + 1))
        in
        [ big; small ]);
    check =
      (fun outcome ->
        (not (Schedsim.Sched.completed outcome)) || !final () = 2) }

let test_dpor_indexed_pads () =
  List.iter
    (fun (name, s) ->
      match Schedsim.Explore.explore ~mode:`Dpor ~max_runs:20_000 s with
      | Schedsim.Explore.All_ok _ -> ()
      | Schedsim.Explore.Violation _ ->
        Alcotest.failf "%s: violation with indexed write sets" name
      | Schedsim.Explore.Out_of_budget _ ->
        Alcotest.failf "%s: out of budget" name)
    [ ("TL2", indexed_pads (module Classic_stm.Tl2));
      ("LSA", indexed_pads (module Classic_stm.Lsa));
      ("OE-STM", indexed_pads (module Oestm.Oe)) ]

(* Small naive-vs-DPOR differential: the counter scenario exercises
   write-after-read lookups on every increment; both modes must agree. *)
let test_dpor_naive_agree_counter () =
  let counter (module S : Stm_intf.S) =
    let value = ref (fun () -> 0) in
    { Schedsim.Explore.procs =
        (fun () ->
          let c = S.tvar 0 in
          let incr () =
            S.atomic (fun ctx -> S.write ctx c (S.read ctx c + 1))
          in
          value := (fun () -> S.peek c);
          let proc () =
            incr ();
            incr ()
          in
          [ proc; proc ]);
      check =
        (fun outcome ->
          (not (Schedsim.Sched.completed outcome)) || !value () = 4) }
  in
  let verdict = function
    | Schedsim.Explore.All_ok _ -> "All_ok"
    | Schedsim.Explore.Violation _ -> "Violation"
    | Schedsim.Explore.Out_of_budget _ -> "Out_of_budget"
  in
  let s = counter (module Classic_stm.Tl2) in
  let naive = Schedsim.Explore.explore ~mode:`Naive ~max_runs:20_000 s in
  let dpor =
    Schedsim.Explore.explore ~mode:`Dpor ~max_runs:20_000
      (counter (module Classic_stm.Tl2))
  in
  (* A definite naive verdict must be reproduced exactly; a naive budget
     exhaustion decides nothing, and DPOR exists to decide within it. *)
  match naive with
  | Schedsim.Explore.Out_of_budget _ ->
    Alcotest.(check string) "dpor decides" "All_ok" (verdict dpor)
  | _ -> Alcotest.(check string) "verdicts agree" (verdict naive) (verdict dpor)

let suite =
  [ Alcotest.test_case "wset typed find" `Quick test_wset_find_typed;
    Alcotest.test_case "lock_all + install" `Quick test_lock_all_and_install;
    Alcotest.test_case "lock_all rollback" `Quick
      test_lock_all_fails_and_rolls_back;
    Alcotest.test_case "rset validate" `Quick test_rset_validate;
    Alcotest.test_case "rset validate own lock" `Quick
      test_rset_validate_own_lock;
    Alcotest.test_case "read_consistent aborts on lock" `Quick
      test_read_consistent_aborts_on_lock;
    Alcotest.test_case "wset large set lock order + index after sort" `Quick
      test_wset_large_lock_order;
    Alcotest.test_case "rset suffix-only semantics" `Quick
      test_rset_suffix_only_semantics;
    Alcotest.test_case "rset filter_pe adjusts watermark" `Quick
      test_rset_filter_pe_watermark;
    Alcotest.test_case "rset clear resets watermark" `Quick
      test_rset_clear_resets_watermark;
    Alcotest.test_case "validation fault injection covers all entry points"
      `Quick test_validation_fault_injection;
    Alcotest.test_case "cleared wset releases tvar (gc)" `Quick
      test_wset_clear_releases_tvar;
    Alcotest.test_case "dpor verdicts unchanged by indexing" `Slow
      test_dpor_indexed_pads;
    Alcotest.test_case "dpor vs naive on counter" `Slow
      test_dpor_naive_agree_counter;
    QCheck_alcotest.to_alcotest prop_wset_last_write_wins;
    QCheck_alcotest.to_alcotest prop_wset_differential;
    QCheck_alcotest.to_alcotest prop_rset_watermark ]
