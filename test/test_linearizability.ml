[@@@txlint.allow "stm-escape"
    "tests drive the escape hatches directly: preloads and post-run \
     state checks are quiescent"]

(* Exhaustive linearizability checking of the e.e.c sets.

   For randomly generated pairs of operations running as two concurrent
   processes over a small preloaded set, the deterministic scheduler
   enumerates EVERY interleaving; each execution's observable outcome
   (both return values plus the final contents) must equal the outcome of
   one of the two sequential orders.  This is linearizability checked by
   complete enumeration — feasible because the scheduler makes
   interleavings a finite, explorable tree, and far stronger than
   stress-style testing: a single non-linearizable interleaving anywhere
   in the tree fails the property. *)

open Stm_core
open Schedsim

type op =
  | Contains of int
  | Add of int
  | Remove of int
  | Add_all of int * int
  | Insert_if_absent of int * int  (* ins, guard *)

let op_print = function
  | Contains k -> Printf.sprintf "contains %d" k
  | Add k -> Printf.sprintf "add %d" k
  | Remove k -> Printf.sprintf "remove %d" k
  | Add_all (a, b) -> Printf.sprintf "add_all [%d;%d]" a b
  | Insert_if_absent (i, g) -> Printf.sprintf "insert_if_absent %d guard %d" i g

let op_gen =
  QCheck.Gen.(
    let key = int_bound 5 in
    oneof
      [ map (fun k -> Contains k) key;
        map (fun k -> Add k) key;
        map (fun k -> Remove k) key;
        map2 (fun a b -> Add_all (a, b)) key key;
        map2 (fun i g -> Insert_if_absent (i, g)) key key ])

(* Observable outcome of one execution. *)
type outcome = { r1 : int; r2 : int; final : int list }

let check_budget = 3_000

module Check
    (S : Stm_intf.S)
    (Mk : functor (S' : Stm_intf.S) (K : Eec.Set_intf.ORDERED) ->
      Eec.Set_intf.SET with type elt = K.t) (Name : sig
      val name : string
    end) =
struct
  module TSet = Mk (S) (Eec.Set_intf.Int_key)
  module Ref = Seqds.Linked_list (Seqds.Int_key)

  let initial = [ 1; 3 ]

  let run_op_tx s = function
    | Contains k -> Bool.to_int (TSet.contains s k)
    | Add k -> Bool.to_int (TSet.add s k)
    | Remove k -> Bool.to_int (TSet.remove s k)
    | Add_all (a, b) -> Bool.to_int (TSet.add_all s [ a; b ])
    | Insert_if_absent (i, g) ->
      Bool.to_int (TSet.insert_if_absent s ~ins:i ~guard:g)

  let run_op_seq s = function
    | Contains k -> Bool.to_int (Ref.contains s k)
    | Add k -> Bool.to_int (Ref.add s k)
    | Remove k -> Bool.to_int (Ref.remove s k)
    | Add_all (a, b) -> Bool.to_int (Ref.add_all s [ a; b ])
    | Insert_if_absent (i, g) ->
      Bool.to_int (Ref.insert_if_absent s ~ins:i ~guard:g)

  (* The two sequential outcomes that concurrent executions must match. *)
  let allowed op1 op2 =
    let seq first second swap =
      let s = Ref.create () in
      Ref.unsafe_preload s initial;
      let a = run_op_seq s first in
      let b = run_op_seq s second in
      let r1, r2 = if swap then (b, a) else (a, b) in
      { r1; r2; final = Ref.to_list s }
    in
    [ seq op1 op2 false; seq op2 op1 true ]

  let outcome_slot : (int, unit -> outcome option) Hashtbl.t = Hashtbl.create 1

  let linearizable (op1, op2) =
    let allowed = allowed op1 op2 in
    let observed_bad = ref None in
    let result =
      Explore.explore ~max_runs:check_budget
        { Explore.procs =
            (fun () ->
              let s = TSet.create () in
              TSet.unsafe_preload s initial;
              let r1 = ref (-1) and r2 = ref (-1) in
              let done1 = ref false and done2 = ref false in
              Hashtbl.replace outcome_slot 0 (fun () ->
                  if !done1 && !done2 then
                    Some { r1 = !r1; r2 = !r2; final = TSet.to_list s }
                  else None);
              [ (fun () ->
                  r1 := run_op_tx s op1;
                  done1 := true);
                (fun () ->
                  r2 := run_op_tx s op2;
                  done2 := true) ]);
          check =
            (fun outcome ->
              if not (Sched.completed outcome) then true
              else
                match (Hashtbl.find outcome_slot 0) () with
                | None -> true
                | Some o ->
                  let ok = List.mem o allowed in
                  if not ok then observed_bad := Some o;
                  ok) }
    in
    match result with
    | Explore.Violation _ ->
      QCheck.Test.fail_reportf
        "non-linearizable: %s || %s -> %s (allowed: %s)" (op_print op1)
        (op_print op2)
        (match !observed_bad with
        | Some o ->
          Printf.sprintf "(%d, %d, [%s])" o.r1 o.r2
            (String.concat ";" (List.map string_of_int o.final))
        | None -> "?")
        (String.concat " or "
           (List.map
              (fun o ->
                Printf.sprintf "(%d, %d, [%s])" o.r1 o.r2
                  (String.concat ";" (List.map string_of_int o.final)))
              allowed))
    | Explore.All_ok _ | Explore.Out_of_budget _ -> true

  let prop =
    QCheck.Test.make
      ~name:(Name.name ^ ": all interleavings linearizable")
      ~count:12
      QCheck.(
        make
          ~print:(fun (a, b) -> op_print a ^ " || " ^ op_print b)
          (Gen.pair op_gen op_gen))
      linearizable
end

module Oe_check =
  Check (Oestm.Oe) (Eec.Linked_list_set.Make)
    (struct let name = "lin:OE-STM/list" end)

module Oe_hash_check =
  Check (Oestm.Oe) (Eec.Hash_set.Make)
    (struct let name = "lin:OE-STM/hash" end)

module Oe_skip_check =
  Check (Oestm.Oe) (Eec.Skip_list_set.Make)
    (struct let name = "lin:OE-STM/skip" end)

module Tl2_check =
  Check (Classic_stm.Tl2) (Eec.Linked_list_set.Make)
    (struct let name = "lin:TL2/list" end)

module Swiss_check =
  Check (Classic_stm.Swisstm) (Eec.Linked_list_set.Make)
    (struct let name = "lin:SwissTM/list" end)

(* The drop instance breaks COMPOSED operations (its add_all and
   insert_if_absent are not atomic — that is the Fig. 1 story, tested in
   test_composition.ml).  Its primitive operations, however, are ordinary
   elastic transactions and must remain linearizable. *)
module Ebroken_prims =
  Check (Oestm.E_broken) (Eec.Linked_list_set.Make)
    (struct let name = "lin:E-STM(drop) primitives" end)

let prim_gen =
  QCheck.Gen.(
    let key = int_bound 5 in
    oneof
      [ map (fun k -> Contains k) key;
        map (fun k -> Add k) key;
        map (fun k -> Remove k) key ])

let ebroken_prims_prop =
  QCheck.Test.make
    ~name:"lin:E-STM(drop): primitive ops stay linearizable"
    ~count:12
    QCheck.(
      make
        ~print:(fun (a, b) -> op_print a ^ " || " ^ op_print b)
        (Gen.pair prim_gen prim_gen))
    Ebroken_prims.linearizable

let suite =
  [ QCheck_alcotest.to_alcotest Oe_check.prop;
    QCheck_alcotest.to_alcotest Oe_hash_check.prop;
    QCheck_alcotest.to_alcotest Oe_skip_check.prop;
    QCheck_alcotest.to_alcotest Tl2_check.prop;
    QCheck_alcotest.to_alcotest Swiss_check.prop;
    QCheck_alcotest.to_alcotest ebroken_prims_prop ]
