(* Coverage for the two previously untested e.e.c containers: the
   transactional FIFO queue (Tx_queue) and the transactional maps
   (Tx_map over the skip-list / linked-list / hash sets).

   Three layers of assurance, mirroring the rest of the test tree:
   - sequential unit + model-based property tests (Stdlib Queue / Map as
     the reference implementation);
   - multi-domain stress with fixed iteration counts and conservation
     invariants;
   - exhaustive-interleaving checks under the deterministic scheduler:
     two-producers/one-consumer queue linearizability against the
     6-permutation sequential oracle, put_if_absent mutual exclusion,
     and atomicity of a composed queue->map transfer (the element is in
     exactly one container in every atomic snapshot). *)

open Schedsim

module S = Oestm.Oe
module Q = Eec.Tx_queue.Make (S)

module IntV = struct
  type t = int
end

module M_skip = Eec.Tx_map.Skip_list (S) (Eec.Set_intf.Int_key) (IntV)
module M_list = Eec.Tx_map.Linked_list (S) (Eec.Set_intf.Int_key) (IntV)
module M_hash = Eec.Tx_map.Hash (S) (Eec.Set_intf.Int_key) (IntV)

(* ------------------------------------------------------------------ *)
(* Tx_queue: sequential semantics                                      *)
(* ------------------------------------------------------------------ *)

let test_queue_fifo_basics () =
  let q = Q.create () in
  Alcotest.(check bool) "fresh queue empty" true (Q.is_empty q);
  Alcotest.(check (option int)) "peek on empty" None (Q.peek_opt q);
  Alcotest.(check (option int)) "dequeue on empty" None (Q.dequeue_opt q);
  Q.enqueue q 1;
  Q.enqueue q 2;
  Q.enqueue q 3;
  Alcotest.(check int) "size" 3 (Q.size q);
  Alcotest.(check (option int)) "peek is oldest" (Some 1) (Q.peek_opt q);
  Alcotest.(check (option int)) "fifo 1" (Some 1) (Q.dequeue_opt q);
  Alcotest.(check (option int)) "fifo 2" (Some 2) (Q.dequeue_opt q);
  (* Interleave a fresh enqueue with the remaining element. *)
  Q.enqueue q 4;
  Alcotest.(check (list int)) "to_list in order" [ 3; 4 ] (Q.to_list q);
  Alcotest.(check (option int)) "fifo 3" (Some 3) (Q.dequeue_opt q);
  Alcotest.(check (option int)) "fifo 4" (Some 4) (Q.dequeue_opt q);
  Alcotest.(check bool) "empty again" true (Q.is_empty q);
  (* Emptying must have reset the tail: the next enqueue is reachable. *)
  Q.enqueue q 5;
  Alcotest.(check (list int)) "tail reset after drain" [ 5 ] (Q.to_list q)

let test_queue_bulk_ops () =
  let q = Q.create () in
  Q.enqueue_all q [ 1; 2; 3; 4 ];
  Alcotest.(check (list int)) "enqueue_all keeps order" [ 1; 2; 3; 4 ]
    (Q.to_list q);
  let dst = Q.create () in
  Q.enqueue dst 0;
  Alcotest.(check bool) "transfer_one moves head" true
    (Q.transfer_one ~src:q ~dst);
  Alcotest.(check (list int)) "src lost its head" [ 2; 3; 4 ] (Q.to_list q);
  Alcotest.(check (list int)) "dst appended" [ 0; 1 ] (Q.to_list dst);
  Alcotest.(check int) "drain_into moves the rest" 3
    (Q.drain_into ~src:q ~dst);
  Alcotest.(check bool) "src drained" true (Q.is_empty q);
  Alcotest.(check (list int)) "dst has everything in order" [ 0; 1; 2; 3; 4 ]
    (Q.to_list dst);
  Alcotest.(check bool) "transfer from empty is a no-op" false
    (Q.transfer_one ~src:q ~dst)

(* Model-based: a random op sequence must behave exactly like Stdlib.Queue. *)
type qop = Enq of int | Deq | Peek | Size

let qop_print = function
  | Enq n -> Printf.sprintf "enq %d" n
  | Deq -> "deq"
  | Peek -> "peek"
  | Size -> "size"

let qop_gen =
  QCheck.Gen.(
    oneof
      [ map (fun n -> Enq n) (int_bound 20);
        return Deq; return Peek; return Size ])

let queue_model_prop =
  QCheck.Test.make ~name:"Tx_queue: agrees with Stdlib.Queue" ~count:60
    QCheck.(
      make
        ~print:(fun ops -> String.concat "; " (List.map qop_print ops))
        Gen.(list_size (int_bound 40) qop_gen))
    (fun ops ->
      let q = Q.create () in
      let m = Queue.create () in
      List.for_all
        (fun op ->
          match op with
          | Enq n ->
            Q.enqueue q n;
            Queue.add n m;
            true
          | Deq -> Q.dequeue_opt q = Queue.take_opt m
          | Peek -> Q.peek_opt q = Queue.peek_opt m
          | Size -> Q.size q = Queue.length m)
        ops
      && Q.to_list q = List.of_seq (Queue.to_seq m))

(* Single producer / single consumer across real domains: with one
   producer, FIFO means the consumer sees exactly 0,1,2,... and whatever
   it missed is still queued, in order.  Fixed iteration counts on both
   sides so the test is machine-speed independent. *)
let test_queue_two_domain_stress () =
  let n = 200 in
  let q = Q.create () in
  let producer =
    Domain.spawn (fun () ->
        for i = 0 to n - 1 do
          Q.enqueue q i
        done)
  in
  let consumer =
    Domain.spawn (fun () ->
        let got = ref [] in
        for _ = 1 to 2 * n do
          match Q.dequeue_opt q with
          | Some v -> got := v :: !got
          | None -> Domain.cpu_relax ()
        done;
        List.rev !got)
  in
  Domain.join producer;
  let consumed = Domain.join consumer in
  let remaining = Q.to_list q in
  Alcotest.(check (list int)) "conservation: consumed @ remaining = produced"
    (List.init n Fun.id) (consumed @ remaining);
  (* FIFO: the consumed prefix is exactly 0..k-1 (implied by the check
     above, stated explicitly for a sharper failure message). *)
  Alcotest.(check (list int)) "consumer saw a FIFO prefix"
    (List.init (List.length consumed) Fun.id)
    consumed

(* Interleaving exploration budget, as in test_linearizability: the
   queue/map transactions have enough scheduling points that their trees
   exceed any practical budget even after partial-order reduction (every
   commit ticks the shared clock, so commits never commute), so — like
   the set linearizability checker — [Out_of_budget] means "no violation
   in [budget] distinct interleavings", which is the testable claim. *)
let check_budget = 1_000

(* Exhaustive-within-budget interleavings: two producers and one
   consumer.  The oracle is the set of outcomes of all 6 sequential
   permutations of the three operations, computed on Stdlib.Queue.
   Every interleaving the scheduler produces must land on one of them —
   the outcome-oracle pattern of test_linearizability. *)
let test_queue_exhaustive_linearizable () =
  let allowed =
    let rec perms = function
      | [] -> [ [] ]
      | l ->
        List.concat_map
          (fun x ->
            List.map (fun p -> x :: p) (perms (List.filter (( <> ) x) l)))
          l
    in
    List.map
      (fun order ->
        let m = Queue.create () in
        let d = ref None in
        List.iter
          (function
            | `E1 -> Queue.add 1 m
            | `E2 -> Queue.add 2 m
            | `D -> d := Queue.take_opt m)
          order;
        (!d, List.of_seq (Queue.to_seq m)))
      (perms [ `E1; `E2; `D ])
  in
  let slot = ref (fun () -> None) in
  let bad = ref None in
  let pp_outcome (d, l) =
    Printf.sprintf "(dequeued %s, final [%s])"
      (match d with None -> "None" | Some v -> Printf.sprintf "Some %d" v)
      (String.concat ";" (List.map string_of_int l))
  in
  let result =
    Explore.explore ~max_runs:check_budget
      { Explore.procs =
          (fun () ->
            let q = Q.create () in
            let dq = ref None in
            let d1 = ref false and d2 = ref false and d3 = ref false in
            slot :=
              (fun () ->
                if !d1 && !d2 && !d3 then Some (!dq, Q.to_list q) else None);
            [ (fun () ->
                Q.enqueue q 1;
                d1 := true);
              (fun () ->
                Q.enqueue q 2;
                d2 := true);
              (fun () ->
                dq := Q.dequeue_opt q;
                d3 := true) ]);
        check =
          (fun outcome ->
            if not (Sched.completed outcome) then true
            else
              match !slot () with
              | None -> true
              | Some o ->
                let ok = List.mem o allowed in
                if not ok then bad := Some o;
                ok) }
  in
  match result with
  | Explore.Violation { schedule; _ } ->
    Alcotest.failf "non-linearizable outcome %s under [%s]"
      (match !bad with Some o -> pp_outcome o | None -> "?")
      (String.concat ";" (List.map string_of_int schedule))
  | Explore.All_ok { explored; pruned } ->
    Alcotest.(check bool) "meaningfully explored" true
      (explored > 0 && explored + pruned > 10)
  | Explore.Out_of_budget { explored; _ } ->
    Alcotest.(check bool) "no violation within budget" true (explored > 0)

(* Composition across containers: one process atomically moves the single
   element from a queue into a map; another takes atomic snapshots of
   both.  In every explored interleaving each snapshot must find the
   element in exactly one container — the transfer is never half done. *)
let test_queue_to_map_transfer_atomic () =
  let slot = ref (fun () -> true) in
  let result =
    Explore.explore ~max_runs:check_budget
      { Explore.procs =
          (fun () ->
            let q = Q.create () in
            let m = M_hash.create () in
            Q.enqueue q 7;
            let torn = ref false in
            let observed = ref [] in
            slot :=
              (fun () ->
                (not !torn)
                && Q.is_empty q
                && M_hash.get m 7 = Some 70
                && List.for_all (fun c -> c = 1) !observed);
            [ (fun () ->
                S.atomic ~mode:Elastic (fun _ ->
                    match Q.dequeue_opt q with
                    | None -> ()
                    | Some v -> ignore (M_hash.put m v (v * 10))));
              (fun () ->
                for _ = 1 to 2 do
                  let in_q, in_m =
                    S.atomic ~mode:Regular (fun _ ->
                        (Q.size q, M_hash.mem m 7))
                  in
                  let count = in_q + Bool.to_int in_m in
                  observed := count :: !observed;
                  if count <> 1 then torn := true
                done) ]);
        check =
          (fun outcome ->
            if not (Sched.completed outcome) then true else !slot ()) }
  in
  match result with
  | Explore.Violation { schedule; _ } ->
    Alcotest.failf "queue->map transfer observed half-done under [%s]"
      (String.concat ";" (List.map string_of_int schedule))
  | Explore.All_ok { explored; pruned } ->
    Alcotest.(check bool) "meaningfully explored" true
      (explored > 0 && explored + pruned > 10)
  | Explore.Out_of_budget { explored; _ } ->
    Alcotest.(check bool) "no violation within budget" true (explored > 0)

(* ------------------------------------------------------------------ *)
(* Tx_map: sequential semantics, over all three backends               *)
(* ------------------------------------------------------------------ *)

module Map_battery
    (M : Eec.Tx_map.MAP with type key = int and type value = int) =
struct
  let test_basics () =
    let m = M.create () in
    Alcotest.(check int) "fresh map empty" 0 (M.size m);
    Alcotest.(check (option int)) "get on empty" None (M.get m 1);
    Alcotest.(check bool) "mem on empty" false (M.mem m 1);
    Alcotest.(check (option int)) "first put returns None" None (M.put m 1 10);
    Alcotest.(check (option int)) "get finds it" (Some 10) (M.get m 1);
    Alcotest.(check (option int)) "overwrite returns previous" (Some 10)
      (M.put m 1 11);
    Alcotest.(check (option int)) "overwritten" (Some 11) (M.get m 1);
    Alcotest.(check (option int)) "remove returns binding" (Some 11)
      (M.remove m 1);
    Alcotest.(check (option int)) "removed" None (M.get m 1);
    Alcotest.(check (option int)) "remove absent" None (M.remove m 1);
    (match M.check_invariants m with
    | Ok () -> ()
    | Error e -> Alcotest.failf "invariants broken: %s" e)

  let test_put_if_absent_and_update () =
    let m = M.create () in
    Alcotest.(check (option int)) "pia inserts when absent" None
      (M.put_if_absent m 5 50);
    Alcotest.(check (option int)) "pia returns existing" (Some 50)
      (M.put_if_absent m 5 99);
    Alcotest.(check (option int)) "pia did not overwrite" (Some 50)
      (M.get m 5);
    (* update: increment an existing binding... *)
    Alcotest.(check (option int)) "update sees previous" (Some 50)
      (M.update m 5 (function Some v -> Some (v + 1) | None -> Some 0));
    Alcotest.(check (option int)) "update applied" (Some 51) (M.get m 5);
    (* ...insert into an absent one... *)
    Alcotest.(check (option int)) "update on absent sees None" None
      (M.update m 6 (function None -> Some 60 | Some v -> Some v));
    Alcotest.(check (option int)) "update inserted" (Some 60) (M.get m 6);
    (* ...and remove by returning None. *)
    Alcotest.(check (option int)) "update-to-None removes" (Some 60)
      (M.update m 6 (fun _ -> None));
    Alcotest.(check bool) "gone" false (M.mem m 6)

  let test_bulk_ops () =
    let m = M.create () in
    M.put_all m [ (3, 30); (1, 10); (2, 20); (1, 11) ];
    Alcotest.(check int) "size after put_all" 3 (M.size m);
    Alcotest.(check (list (pair int int))) "bindings ascending by key"
      [ (1, 11); (2, 20); (3, 30) ]
      (M.bindings m);
    Alcotest.(check bool) "remove_all reports change" true
      (M.remove_all m [ 1; 3; 9 ]);
    Alcotest.(check bool) "remove_all of absentees reports no change" false
      (M.remove_all m [ 1; 9 ]);
    Alcotest.(check (list (pair int int))) "survivors" [ (2, 20) ]
      (M.bindings m);
    match M.check_invariants m with
    | Ok () -> ()
    | Error e -> Alcotest.failf "invariants broken: %s" e

  let suite name =
    [ Alcotest.test_case (name ^ ": basics") `Quick test_basics;
      Alcotest.test_case
        (name ^ ": put_if_absent & update") `Quick
        test_put_if_absent_and_update;
      Alcotest.test_case (name ^ ": bulk ops") `Quick test_bulk_ops ]
end

module Skip_battery = Map_battery (M_skip)
module List_battery = Map_battery (M_list)
module Hash_battery = Map_battery (M_hash)

(* Model-based: a random op sequence must agree with Stdlib Map. *)
module IntMap = Map.Make (Int)

type mop = Put of int * int | Rem of int | Get of int | Mem of int | Pia of int * int

let mop_print = function
  | Put (k, v) -> Printf.sprintf "put %d %d" k v
  | Rem k -> Printf.sprintf "remove %d" k
  | Get k -> Printf.sprintf "get %d" k
  | Mem k -> Printf.sprintf "mem %d" k
  | Pia (k, v) -> Printf.sprintf "put_if_absent %d %d" k v

let mop_gen =
  QCheck.Gen.(
    let key = int_bound 7 in
    oneof
      [ map2 (fun k v -> Put (k, v)) key (int_bound 100);
        map (fun k -> Rem k) key;
        map (fun k -> Get k) key;
        map (fun k -> Mem k) key;
        map2 (fun k v -> Pia (k, v)) key (int_bound 100) ])

let map_model_prop =
  QCheck.Test.make ~name:"Tx_map(skip): agrees with Stdlib.Map" ~count:60
    QCheck.(
      make
        ~print:(fun ops -> String.concat "; " (List.map mop_print ops))
        Gen.(list_size (int_bound 40) mop_gen))
    (fun ops ->
      let m = M_skip.create () in
      let model = ref IntMap.empty in
      List.for_all
        (fun op ->
          match op with
          | Put (k, v) ->
            let prev = IntMap.find_opt k !model in
            model := IntMap.add k v !model;
            M_skip.put m k v = prev
          | Rem k ->
            let prev = IntMap.find_opt k !model in
            model := IntMap.remove k !model;
            M_skip.remove m k = prev
          | Get k -> M_skip.get m k = IntMap.find_opt k !model
          | Mem k -> M_skip.mem m k = IntMap.mem k !model
          | Pia (k, v) ->
            let prev = IntMap.find_opt k !model in
            if prev = None then model := IntMap.add k v !model;
            M_skip.put_if_absent m k v = prev)
        ops
      && M_skip.bindings m = IntMap.bindings !model
      && M_skip.check_invariants m = Ok ())

(* Multi-domain stress: two writers on disjoint key ranges plus a
   contended put_if_absent on one shared key.  Fixed iteration counts;
   afterwards the map must hold exactly the union, the shared key must
   have exactly one winner, and the structural invariants must hold. *)
let test_map_two_domain_stress () =
  let n = 100 in
  let shared = 10_000 in
  let m = M_skip.create () in
  let writer lo id =
    Domain.spawn (fun () ->
        for i = 0 to n - 1 do
          ignore (M_skip.put m (lo + (2 * i)) (lo + (2 * i)))
        done;
        (* everyone also races on one shared key *)
        M_skip.put_if_absent m shared id = None)
  in
  let d1 = writer 0 1 and d2 = writer 1 2 in
  let won1 = Domain.join d1 and won2 = Domain.join d2 in
  Alcotest.(check bool) "exactly one put_if_absent winner" true
    (won1 <> won2);
  let winner = if won1 then 1 else 2 in
  Alcotest.(check (option int)) "shared key holds the winner's value"
    (Some winner) (M_skip.get m shared);
  Alcotest.(check int) "size = both ranges + shared" ((2 * n) + 1)
    (M_skip.size m);
  List.iter
    (fun k ->
      if M_skip.get m k <> Some k then
        Alcotest.failf "binding for %d lost or corrupted" k)
    (List.init (2 * n) Fun.id);
  match M_skip.check_invariants m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariants broken after stress: %s" e

(* Exhaustive interleavings: two processes race put_if_absent on the same
   key.  In EVERY interleaving exactly one must win (return None), the
   loser must be told the winner's value, and the map must keep the
   winner's binding. *)
let test_map_put_if_absent_exclusive () =
  let slot = ref (fun () -> None) in
  let result =
    Explore.explore ~max_runs:check_budget
      { Explore.procs =
          (fun () ->
            let m = M_list.create () in
            let r1 = ref (Some min_int) and r2 = ref (Some min_int) in
            let d1 = ref false and d2 = ref false in
            slot :=
              (fun () ->
                if !d1 && !d2 then Some (!r1, !r2, M_list.get m 5) else None);
            [ (fun () ->
                r1 := M_list.put_if_absent m 5 10;
                d1 := true);
              (fun () ->
                r2 := M_list.put_if_absent m 5 20;
                d2 := true) ]);
        check =
          (fun outcome ->
            if not (Sched.completed outcome) then true
            else
              match !slot () with
              | None -> true
              | Some (r1, r2, final) -> (
                match (r1, r2, final) with
                | None, Some seen, Some kept -> seen = 10 && kept = 10
                | Some seen, None, Some kept -> seen = 20 && kept = 20
                | _ -> false)) }
  in
  match result with
  | Explore.Violation { schedule; _ } ->
    Alcotest.failf "put_if_absent not mutually exclusive under [%s]"
      (String.concat ";" (List.map string_of_int schedule))
  | Explore.All_ok { explored; pruned } ->
    Alcotest.(check bool) "meaningfully explored" true
      (explored > 0 && explored + pruned > 10)
  | Explore.Out_of_budget { explored; _ } ->
    Alcotest.(check bool) "no violation within budget" true (explored > 0)

let suite =
  [ Alcotest.test_case "queue: FIFO basics" `Quick test_queue_fifo_basics;
    Alcotest.test_case "queue: bulk transfers" `Quick test_queue_bulk_ops;
    QCheck_alcotest.to_alcotest queue_model_prop;
    Alcotest.test_case "queue: 2-domain producer/consumer" `Slow
      test_queue_two_domain_stress;
    Alcotest.test_case "queue: exhaustive 2p/1c linearizability" `Slow
      test_queue_exhaustive_linearizable;
    Alcotest.test_case "queue->map: composed transfer is atomic" `Slow
      test_queue_to_map_transfer_atomic ]
  @ Skip_battery.suite "map(skip)"
  @ List_battery.suite "map(list)"
  @ Hash_battery.suite "map(hash)"
  @ [ QCheck_alcotest.to_alcotest map_model_prop;
      Alcotest.test_case "map: 2-domain stress + invariants" `Slow
        test_map_two_domain_stress;
      Alcotest.test_case "map: exhaustive put_if_absent exclusion" `Slow
        test_map_put_if_absent_exclusive ]
