open Stm_core

let test_push_get () =
  let v = Vec.create ~dummy:0 () in
  Alcotest.(check bool) "fresh is empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get 0" 0 (Vec.get v 0);
  Alcotest.(check int) "get 99" (99 * 99) (Vec.get v 99)

let test_bounds () =
  let v = Vec.create ~dummy:0 () in
  Vec.push v 1;
  Alcotest.check_raises "get out of bounds" (Invalid_argument "Vec.get")
    (fun () -> ignore (Vec.get v 1));
  Alcotest.check_raises "set out of bounds" (Invalid_argument "Vec.set")
    (fun () -> Vec.set v 2 0)

let test_clear_reuses () =
  let v = Vec.create ~capacity:2 ~dummy:0 () in
  Vec.push v 1;
  Vec.push v 2;
  Vec.push v 3;
  Vec.clear v;
  Alcotest.(check int) "empty after clear" 0 (Vec.length v);
  Vec.push v 9;
  Alcotest.(check int) "push after clear" 9 (Vec.get v 0)

let test_sort () =
  let v = Vec.create ~dummy:0 () in
  List.iter (Vec.push v) [ 5; 1; 4; 2; 3 ];
  Vec.sort compare v;
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] (Vec.to_list v)

let test_append_into () =
  let a = Vec.create ~dummy:0 () in
  let b = Vec.create ~dummy:0 () in
  List.iter (Vec.push a) [ 1; 2 ];
  List.iter (Vec.push b) [ 3; 4 ];
  Vec.append_into ~src:b ~dst:a;
  Alcotest.(check (list int)) "appended" [ 1; 2; 3; 4 ] (Vec.to_list a)

let prop_model =
  (* Vec behaves like a list under pushes. *)
  QCheck.Test.make ~name:"vec agrees with list model" ~count:300
    QCheck.(list small_int)
    (fun xs ->
      let v = Vec.create ~dummy:0 () in
      List.iter (Vec.push v) xs;
      Vec.to_list v = xs
      && Vec.length v = List.length xs
      && Vec.fold_left (fun acc x -> acc + x) 0 v
         = List.fold_left (fun acc x -> acc + x) 0 xs
      && Vec.exists (fun x -> x > 50) v = List.exists (fun x -> x > 50) xs
      && Vec.for_all (fun x -> x >= 0) v = List.for_all (fun x -> x >= 0) xs)

let prop_sort_model =
  QCheck.Test.make ~name:"vec sort agrees with list sort" ~count:300
    QCheck.(list small_int)
    (fun xs ->
      let v = Vec.create ~dummy:0 () in
      List.iter (Vec.push v) xs;
      Vec.sort compare v;
      Vec.to_list v = List.sort compare xs)

(* The next two tests pin the hot-path leak fix: [clear] and
   [filter_in_place] must wipe freed slots back to the dummy, otherwise the
   backing array keeps the last transaction's entries alive for as long as
   the (long-lived, domain-local) vector exists.  Weak pointers observe
   collectability directly.  The allocations go through [@inline never]
   helpers so no stack slot or register keeps the boxed value reachable
   after the helper returns. *)

let[@inline never] push_boxed v n =
  let x = ref n in
  Vec.push v x;
  let w = Weak.create 1 in
  Weak.set w 0 (Some x);
  w

let test_clear_wipes () =
  let dummy = ref (-1) in
  let v = Vec.create ~dummy () in
  let w = push_boxed v 7 in
  Vec.clear v;
  Gc.full_major ();
  Gc.full_major ();
  Alcotest.(check bool) "cleared element collected" true
    (Weak.get w 0 = None);
  (* The vector stays usable after the wipe. *)
  Vec.push v (ref 9);
  Alcotest.(check int) "push after clear" 9 !(Vec.get v 0)

let[@inline never] push_two_boxed v =
  let keep = ref 1 in
  let drop = ref 2 in
  Vec.push v keep;
  Vec.push v drop;
  let w = Weak.create 1 in
  Weak.set w 0 (Some drop);
  w

let test_filter_wipes () =
  let dummy = ref (-1) in
  let v = Vec.create ~dummy () in
  let w = push_two_boxed v in
  let dropped = Vec.filter_in_place (fun x -> !x <> 2) v in
  Alcotest.(check int) "one dropped" 1 dropped;
  Alcotest.(check int) "one kept" 1 (Vec.length v);
  Gc.full_major ();
  Gc.full_major ();
  Alcotest.(check bool) "dropped element collected" true
    (Weak.get w 0 = None);
  Alcotest.(check int) "kept element intact" 1 !(Vec.get v 0)

let test_sort_no_alloc () =
  let v = Vec.create ~dummy:0 () in
  for i = 999 downto 0 do
    Vec.push v i
  done;
  let before = Gc.minor_words () in
  Vec.sort compare v;
  let after = Gc.minor_words () in
  (* In-place heapsort: no [Array.sub] copy of the live prefix.  A small
     slack absorbs incidental boxing by the runtime. *)
  Alcotest.(check bool) "sort allocates no copy" true
    (after -. before < 100.0);
  Alcotest.(check int) "still sorted, first" 0 (Vec.get v 0);
  Alcotest.(check int) "still sorted, last" 999 (Vec.get v 999)

let suite =
  [ Alcotest.test_case "push/get" `Quick test_push_get;
    Alcotest.test_case "bounds checks" `Quick test_bounds;
    Alcotest.test_case "clear reuses storage" `Quick test_clear_reuses;
    Alcotest.test_case "sort" `Quick test_sort;
    Alcotest.test_case "append_into" `Quick test_append_into;
    Alcotest.test_case "clear wipes freed slots" `Quick test_clear_wipes;
    Alcotest.test_case "filter_in_place wipes freed slots" `Quick
      test_filter_wipes;
    Alcotest.test_case "sort is allocation-free" `Quick test_sort_no_alloc;
    QCheck_alcotest.to_alcotest prop_model;
    QCheck_alcotest.to_alcotest prop_sort_model ]
