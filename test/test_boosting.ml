[@@@txlint.allow "lock-release"
    "tests exercise the lock primitives directly and assert the release \
     behaviour themselves"]

(* Transactional boosting with outherited abstract locks (Section VIII):
   basic semantics, undo on abort, composition atomicity, deadlock
   recovery, and the same mutual insertIfAbsent invariant the STM tests
   use — boosting composes because its abstract locks are outherited. *)

module Base = Seqds.Hash (Seqds.Int_key)

module BSet =
  Boosting.Boost
    (struct
      type elt = int
      type t = Base.t

      let create () = Base.create ()
      let contains = Base.contains
      let add = Base.add
      let remove = Base.remove
    end)
    (struct
      let hash = Seqds.Int_key.hash
    end)

let test_basic () =
  let s = BSet.create () in
  Alcotest.(check bool) "add" true (BSet.add s 1);
  Alcotest.(check bool) "dup" false (BSet.add s 1);
  Alcotest.(check bool) "contains" true (BSet.contains s 1);
  Alcotest.(check bool) "remove" true (BSet.remove s 1);
  Alcotest.(check bool) "gone" false (BSet.contains s 1)

let test_undo_on_abort () =
  let s = BSet.create () in
  ignore (BSet.add s 1);
  (try
     Boosting.atomic (fun _ ->
         ignore (BSet.add s 2);
         ignore (BSet.remove s 1);
         failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "aborted add undone" false (BSet.contains s 2);
  Alcotest.(check bool) "aborted remove undone" true (BSet.contains s 1);
  Alcotest.(check bool) "no transaction left" false (Boosting.in_transaction ())

let test_locks_released_after_commit () =
  let s = BSet.create () in
  ignore (BSet.add_all s [ 1; 2; 3 ]);
  (* If locks leaked, this second operation would starve. *)
  ignore (BSet.remove_all s [ 1; 2; 3 ]);
  Alcotest.(check bool) "usable after composition" true (BSet.add s 1)

let test_composition_atomic () =
  (* Pairs inserted via add_all: observers using a composed transaction
     (contains both) never see exactly one element of a pair. *)
  let s = BSet.create () in
  let stop = Atomic.make false in
  let bad = Atomic.make 0 in
  let writer =
    Domain.spawn (fun () ->
        for i = 0 to 149 do
          ignore (BSet.add_all s [ 2 * i; (2 * i) + 1 ]);
          ignore (BSet.remove_all s [ 2 * i; (2 * i) + 1 ])
        done;
        Atomic.set stop true)
  in
  let reader =
    Domain.spawn (fun () ->
        let rng = ref 1 in
        while not (Atomic.get stop) do
          rng := (!rng * 48271) mod 2147483647;
          let i = !rng mod 150 in
          let a, b =
            Boosting.atomic (fun _ ->
                (BSet.contains s (2 * i), BSet.contains s ((2 * i) + 1)))
          in
          if a <> b then ignore (Atomic.fetch_and_add bad 1)
        done)
  in
  Domain.join writer;
  Domain.join reader;
  Alcotest.(check int) "pairs always observed whole" 0 (Atomic.get bad)

let test_deadlock_recovery () =
  (* Two domains move elements in opposite directions: lock acquisition
     orders collide, the patience bound turns deadlocks into aborts, and
     both finish. *)
  let a = BSet.create () and b = BSet.create () in
  for i = 0 to 15 do
    ignore (BSet.add a i)
  done;
  let mover src dst seed () =
    let st = ref (seed + 1) in
    for _ = 1 to 100 do
      st := (!st * 48271) mod 2147483647;
      ignore (BSet.move ~src ~dst (!st mod 16))
    done
  in
  let ds =
    [ Domain.spawn (mover a b 1); Domain.spawn (mover b a 2);
      Domain.spawn (mover a b 3); Domain.spawn (mover b a 4) ]
  in
  List.iter Domain.join ds;
  let count s = List.length (List.filter (BSet.contains s) (List.init 16 Fun.id)) in
  Alcotest.(check int) "tokens conserved through deadlock recovery" 16
    (count a + count b)

let test_mutual_insert_if_absent () =
  (* The Fig. 1 invariant, for boosting: outherited abstract locks keep the
     composition atomic. *)
  for _ = 1 to 50 do
    let s = BSet.create () in
    let d1 =
      Domain.spawn (fun () -> ignore (BSet.insert_if_absent s ~ins:3 ~guard:7))
    in
    let d2 =
      Domain.spawn (fun () -> ignore (BSet.insert_if_absent s ~ins:7 ~guard:3))
    in
    Domain.join d1;
    Domain.join d2;
    if BSet.contains s 3 && BSet.contains s 7 then
      Alcotest.fail "boosted insertIfAbsent violated mutual exclusion"
  done

let test_abstract_lock_unit () =
  let l = Boosting.Abstract_lock.create () in
  Alcotest.(check bool) "acquire free" true
    (Boosting.Abstract_lock.try_acquire l ~owner:1);
  Alcotest.(check bool) "reentrant for owner" true
    (Boosting.Abstract_lock.try_acquire l ~owner:1);
  Alcotest.(check bool) "other blocked" false
    (Boosting.Abstract_lock.try_acquire l ~owner:2);
  Alcotest.(check int) "holder" 1 (Boosting.Abstract_lock.held_by l);
  Boosting.Abstract_lock.release l ~owner:2;
  Alcotest.(check int) "release by non-owner ignored" 1
    (Boosting.Abstract_lock.held_by l);
  Boosting.Abstract_lock.release l ~owner:1;
  Alcotest.(check bool) "reacquirable" true
    (Boosting.Abstract_lock.try_acquire l ~owner:2)

let test_recorded_outheritance () =
  (* Section VIII's claim, closed end to end: a recorded boosted
     composition satisfies Definition 4.1 — the children's abstract locks
     (their protection elements) are released only after the root commit,
     hence after the supremum. *)
  let open Stm_core in
  let events, _ =
    Recorder.record (fun () ->
        Schedsim.Sched.run
          [ (fun () ->
              let s = BSet.create () in
              ignore (BSet.add_all s [ 1; 2; 3 ])) ])
  in
  let h = Histories.Convert.to_history events in
  Alcotest.(check bool) "well-formed" true
    (Result.is_ok (Histories.History.well_formed h));
  let committed = Histories.History.committed h in
  (* add_all + three child adds: root commits last. *)
  let children =
    match List.rev committed with _root :: rest -> List.rev rest | [] -> []
  in
  Alcotest.(check int) "three children" 3 (List.length children);
  let c = Histories.Composition.make_exn h children in
  List.iter
    (fun tx ->
      Alcotest.(check bool)
        (Printf.sprintf "Pmin(t%d) is non-trivial" tx)
        true
        (Histories.History.pmin h tx <> []))
    children;
  Alcotest.(check bool) "boosted composition satisfies outheritance" true
    (Histories.Outheritance.satisfies h c)

let suite =
  [ Alcotest.test_case "abstract lock unit" `Quick test_abstract_lock_unit;
    Alcotest.test_case "recorded outheritance (Section VIII)" `Quick
      test_recorded_outheritance;
    Alcotest.test_case "basics" `Quick test_basic;
    Alcotest.test_case "undo on abort" `Quick test_undo_on_abort;
    Alcotest.test_case "locks released after commit" `Quick
      test_locks_released_after_commit;
    Alcotest.test_case "composition atomic" `Slow test_composition_atomic;
    Alcotest.test_case "deadlock recovery" `Slow test_deadlock_recovery;
    Alcotest.test_case "mutual insertIfAbsent" `Slow
      test_mutual_insert_if_absent ]
