(* Property coverage for the contention-management plumbing that every
   STM shares: the randomised exponential backoff and the outermost retry
   loop.  Previously only exercised indirectly through the engines. *)

open Stm_core

(* Run [f] with the deterministic-scheduler flag set so Backoff.once does
   not actually spin — these are semantic tests, not timing tests. *)
let simulated f =
  let saved = !Runtime.simulated in
  Runtime.simulated := true;
  Fun.protect ~finally:(fun () -> Runtime.simulated := saved) f

(* ------------------------------------------------------------------ *)
(* Backoff                                                             *)
(* ------------------------------------------------------------------ *)

let test_backoff_growth_bounded () =
  simulated (fun () ->
      let b = Backoff.create () in
      Alcotest.(check int) "initial window" 16 (Backoff.window b);
      (* Exact doubling until the cap... *)
      for i = 1 to 9 do
        Backoff.once b;
        Alcotest.(check int)
          (Printf.sprintf "window after %d waits" i)
          (16 lsl i) (Backoff.window b)
      done;
      (* ...then clamped, no matter how many more waits happen. *)
      for _ = 1 to 100 do
        Backoff.once b
      done;
      Alcotest.(check int) "window clamped at max" Backoff.max_window
        (Backoff.window b))

let backoff_monotone_prop =
  QCheck.Test.make ~name:"Backoff: window monotone and within bounds"
    ~count:100
    QCheck.(pair small_nat small_nat)
    (fun (seed, waits) ->
      simulated (fun () ->
          let b = Backoff.create ~seed () in
          let ok = ref true in
          let prev = ref (Backoff.window b) in
          for _ = 1 to waits do
            Backoff.once b;
            let w = Backoff.window b in
            if not (w >= !prev && w >= 16 && w <= Backoff.max_window) then
              ok := false;
            prev := w
          done;
          !ok))

let test_backoff_reset () =
  simulated (fun () ->
      let b = Backoff.create ~seed:42 () in
      for _ = 1 to 20 do
        Backoff.once b
      done;
      Alcotest.(check int) "saturated before reset" Backoff.max_window
        (Backoff.window b);
      Backoff.reset b;
      Alcotest.(check int) "reset restores the initial window" 16
        (Backoff.window b);
      Backoff.once b;
      Alcotest.(check int) "growth restarts from the bottom" 32
        (Backoff.window b))

(* Under the simulated flag, Backoff.once must not spin: it only yields a
   scheduling point.  We count them through the yield hook. *)
let test_backoff_simulated_yields () =
  simulated (fun () ->
      let yields = ref 0 in
      let saved = !Runtime.yield_hook in
      Runtime.yield_hook := (fun _ -> incr yields);
      Fun.protect
        ~finally:(fun () -> Runtime.yield_hook := saved)
        (fun () ->
          let b = Backoff.create () in
          for _ = 1 to 5 do
            Backoff.once b
          done;
          Alcotest.(check int) "one scheduling point per wait" 5 !yields))

(* ------------------------------------------------------------------ *)
(* Retry_loop                                                          *)
(* ------------------------------------------------------------------ *)

let with_retry_cap cap f =
  let saved = !Runtime.retry_cap in
  Runtime.retry_cap := cap;
  Fun.protect ~finally:(fun () -> Runtime.retry_cap := saved) f

let test_retry_first_attempt_commits () =
  simulated (fun () ->
      let stats = Stats.create () in
      let seen_attempt = ref (-1) in
      let result =
        Retry_loop.run ~stats (fun ~attempt ->
            seen_attempt := attempt;
            "done")
      in
      Alcotest.(check string) "result returned" "done" result;
      Alcotest.(check int) "first attempt is number 0" 0 !seen_attempt;
      let s = Stats.snapshot stats in
      Alcotest.(check (pair int int)) "one commit, no aborts" (1, 0)
        (s.Stats.commits, s.Stats.aborts))

let test_retry_counts_aborts () =
  simulated (fun () ->
      let stats = Stats.create () in
      let attempts = ref [] in
      let result =
        Retry_loop.run ~stats (fun ~attempt ->
            attempts := attempt :: !attempts;
            if attempt < 3 then Control.abort_tx Control.Lock_contention;
            attempt)
      in
      Alcotest.(check int) "returns on the fourth attempt" 3 result;
      Alcotest.(check (list int)) "attempt numbers increment" [ 0; 1; 2; 3 ]
        (List.rev !attempts);
      let s = Stats.snapshot stats in
      Alcotest.(check int) "three aborts recorded" 3 s.Stats.aborts;
      Alcotest.(check int) "one commit recorded" 1 s.Stats.commits;
      Alcotest.(check (option int)) "aborts attributed to the reason"
        (Some 3)
        (List.assoc_opt Control.Lock_contention s.Stats.by_reason))

let test_retry_cap_starvation () =
  simulated (fun () ->
      with_retry_cap 7 (fun () ->
          let stats = Stats.create () in
          let calls = ref 0 in
          Alcotest.check_raises "starvation after the cap"
            (Control.Starvation "transaction exceeded retry cap") (fun () ->
              ignore
                (Retry_loop.run ~stats (fun ~attempt:_ ->
                     incr calls;
                     Control.abort_tx Control.Validation_failed)));
          (* attempts 0..7 ran, attempt 8 tripped the cap *)
          Alcotest.(check int) "cap+1 attempts executed" 8 !calls;
          let s = Stats.snapshot stats in
          Alcotest.(check int) "every attempt recorded as abort" 8
            s.Stats.aborts;
          Alcotest.(check int) "nothing committed" 0 s.Stats.commits))

let test_retry_user_exception_passes_through () =
  simulated (fun () ->
      let stats = Stats.create () in
      Alcotest.check_raises "user exceptions are not retried"
        (Failure "boom") (fun () ->
          ignore (Retry_loop.run ~stats (fun ~attempt:_ -> failwith "boom")));
      let s = Stats.snapshot stats in
      Alcotest.(check (pair int int)) "neither commit nor abort recorded"
        (0, 0)
        (s.Stats.commits, s.Stats.aborts))

let suite =
  [ Alcotest.test_case "backoff: doubling bounded by max" `Quick
      test_backoff_growth_bounded;
    QCheck_alcotest.to_alcotest backoff_monotone_prop;
    Alcotest.test_case "backoff: reset" `Quick test_backoff_reset;
    Alcotest.test_case "backoff: simulated mode only yields" `Quick
      test_backoff_simulated_yields;
    Alcotest.test_case "retry: first attempt commits" `Quick
      test_retry_first_attempt_commits;
    Alcotest.test_case "retry: aborts counted then commits" `Quick
      test_retry_counts_aborts;
    Alcotest.test_case "retry: cap raises Starvation" `Quick
      test_retry_cap_starvation;
    Alcotest.test_case "retry: user exceptions pass through" `Quick
      test_retry_user_exception_passes_through ]
