(* Property coverage for the contention-management plumbing that every
   STM shares: the randomised exponential backoff and the outermost retry
   loop.  Previously only exercised indirectly through the engines. *)

open Stm_core

(* Run [f] with the deterministic-scheduler flag set so Backoff.once does
   not actually spin — these are semantic tests, not timing tests. *)
let simulated f =
  let saved = !Runtime.simulated in
  Runtime.simulated := true;
  Fun.protect ~finally:(fun () -> Runtime.simulated := saved) f

(* ------------------------------------------------------------------ *)
(* Backoff                                                             *)
(* ------------------------------------------------------------------ *)

let test_backoff_growth_bounded () =
  simulated (fun () ->
      let b = Backoff.create () in
      Alcotest.(check int) "initial window" 16 (Backoff.window b);
      (* Exact doubling until the cap... *)
      for i = 1 to 9 do
        Backoff.once b;
        Alcotest.(check int)
          (Printf.sprintf "window after %d waits" i)
          (16 lsl i) (Backoff.window b)
      done;
      (* ...then clamped, no matter how many more waits happen. *)
      for _ = 1 to 100 do
        Backoff.once b
      done;
      Alcotest.(check int) "window clamped at max" Backoff.max_window
        (Backoff.window b))

let backoff_monotone_prop =
  QCheck.Test.make ~name:"Backoff: window monotone and within bounds"
    ~count:100
    QCheck.(pair small_nat small_nat)
    (fun (seed, waits) ->
      simulated (fun () ->
          let b = Backoff.create ~seed () in
          let ok = ref true in
          let prev = ref (Backoff.window b) in
          for _ = 1 to waits do
            Backoff.once b;
            let w = Backoff.window b in
            if not (w >= !prev && w >= 16 && w <= Backoff.max_window) then
              ok := false;
            prev := w
          done;
          !ok))

let test_backoff_reset () =
  simulated (fun () ->
      let b = Backoff.create ~seed:42 () in
      for _ = 1 to 20 do
        Backoff.once b
      done;
      Alcotest.(check int) "saturated before reset" Backoff.max_window
        (Backoff.window b);
      Backoff.reset b;
      Alcotest.(check int) "reset restores the initial window" 16
        (Backoff.window b);
      Backoff.once b;
      Alcotest.(check int) "growth restarts from the bottom" 32
        (Backoff.window b))

(* Under the simulated flag, Backoff.once must not spin: it only yields a
   scheduling point.  We count them through the yield hook. *)
let test_backoff_simulated_yields () =
  simulated (fun () ->
      let yields = ref 0 in
      let saved = !Runtime.yield_hook in
      Runtime.yield_hook := (fun _ -> incr yields);
      Fun.protect
        ~finally:(fun () -> Runtime.yield_hook := saved)
        (fun () ->
          let b = Backoff.create () in
          for _ = 1 to 5 do
            Backoff.once b
          done;
          Alcotest.(check int) "one scheduling point per wait" 5 !yields))

(* ------------------------------------------------------------------ *)
(* Retry_loop                                                          *)
(* ------------------------------------------------------------------ *)

let with_retry_cap cap f =
  let saved = !Runtime.retry_cap in
  Runtime.retry_cap := cap;
  Fun.protect ~finally:(fun () -> Runtime.retry_cap := saved) f

let with_starvation_mode mode f =
  let saved = !Runtime.starvation_mode in
  Runtime.starvation_mode := mode;
  Fun.protect ~finally:(fun () -> Runtime.starvation_mode := saved) f

let with_timeout_ns ns f =
  let saved = !Runtime.tx_timeout_ns in
  Runtime.tx_timeout_ns := Some ns;
  Fun.protect ~finally:(fun () -> Runtime.tx_timeout_ns := saved) f

let count_yields f =
  let yields = ref 0 in
  let saved = !Runtime.yield_hook in
  Runtime.yield_hook := (fun _ -> incr yields);
  Fun.protect
    ~finally:(fun () -> Runtime.yield_hook := saved)
    (fun () ->
      f ();
      !yields)

let test_retry_first_attempt_commits () =
  simulated (fun () ->
      let stats = Stats.create () in
      let seen_attempt = ref (-1) in
      let result =
        Retry_loop.run ~stats (fun ~attempt ->
            seen_attempt := attempt;
            "done")
      in
      Alcotest.(check string) "result returned" "done" result;
      Alcotest.(check int) "first attempt is number 0" 0 !seen_attempt;
      let s = Stats.snapshot stats in
      Alcotest.(check (pair int int)) "one commit, no aborts" (1, 0)
        (s.Stats.commits, s.Stats.aborts))

let test_retry_counts_aborts () =
  simulated (fun () ->
      let stats = Stats.create () in
      let attempts = ref [] in
      let result =
        Retry_loop.run ~stats (fun ~attempt ->
            attempts := attempt :: !attempts;
            if attempt < 3 then Control.abort_tx Control.Lock_contention;
            attempt)
      in
      Alcotest.(check int) "returns on the fourth attempt" 3 result;
      Alcotest.(check (list int)) "attempt numbers increment" [ 0; 1; 2; 3 ]
        (List.rev !attempts);
      let s = Stats.snapshot stats in
      Alcotest.(check int) "three aborts recorded" 3 s.Stats.aborts;
      Alcotest.(check int) "one commit recorded" 1 s.Stats.commits;
      Alcotest.(check (option int)) "aborts attributed to the reason"
        (Some 3)
        (List.assoc_opt Control.Lock_contention s.Stats.by_reason))

let test_retry_cap_starvation () =
  simulated (fun () ->
      with_starvation_mode `Raise (fun () ->
          with_retry_cap 7 (fun () ->
              let stats = Stats.create () in
              let calls = ref 0 in
              Alcotest.check_raises "starvation after the cap"
                (Control.Starvation "transaction exceeded retry cap")
                (fun () ->
                  ignore
                    (Retry_loop.run ~stats (fun ~attempt:_ ->
                         incr calls;
                         Control.abort_tx Control.Validation_failed)));
              (* attempts 0..7 ran, the cap refused an eighth retry *)
              Alcotest.(check int) "cap+1 attempts executed" 8 !calls;
              let s = Stats.snapshot stats in
              Alcotest.(check int) "every attempt recorded as abort" 8
                s.Stats.aborts;
              Alcotest.(check int) "starvation counted" 1 s.Stats.starvations;
              Alcotest.(check int) "nothing committed" 0 s.Stats.commits)))

(* Under the default [`Fallback] mode the same always-conflicting workload
   must NOT raise: the loop escalates to the serial-irrevocable mode, where
   the attempt (here: one that only succeeds once serial) commits. *)
let test_retry_cap_fallback_commits () =
  simulated (fun () ->
      with_starvation_mode `Fallback (fun () ->
          with_retry_cap 3 (fun () ->
              let stats = Stats.create () in
              let calls = ref 0 in
              let result =
                Retry_loop.run ~stats (fun ~attempt:_ ->
                    incr calls;
                    if Runtime.Serial.mine () then "serial-commit"
                    else Control.abort_tx Control.Validation_failed)
              in
              Alcotest.(check string) "committed via the fallback"
                "serial-commit" result;
              (* attempts 0..3 aborted, the escalated attempt 4 committed *)
              Alcotest.(check int) "cap+2 attempts executed" 5 !calls;
              Alcotest.(check bool) "token released" false
                (Runtime.Serial.active ());
              let s = Stats.snapshot stats in
              Alcotest.(check int) "optimistic aborts recorded" 4
                s.Stats.aborts;
              Alcotest.(check int) "one commit" 1 s.Stats.commits;
              Alcotest.(check int) "starvation counted" 1 s.Stats.starvations;
              Alcotest.(check int) "fallback entry counted" 1
                s.Stats.fallbacks)))

(* The escalating attempt must not sit out a contention-manager wait: with
   cap aborted attempts there are exactly cap backoff waits (one scheduling
   point each under the simulated flag), none between the last optimistic
   abort and the escalation. *)
let test_no_backoff_before_escalation () =
  simulated (fun () ->
      with_starvation_mode `Fallback (fun () ->
          with_retry_cap 2 (fun () ->
              let stats = Stats.create () in
              let yields =
                count_yields (fun () ->
                    ignore
                      (Retry_loop.run ~stats (fun ~attempt:_ ->
                           if Runtime.Serial.mine () then ()
                           else Control.abort_tx Control.Lock_contention)))
              in
              Alcotest.(check int) "exactly cap waits, none when escalating"
                2 yields)))

(* A caller-supplied contention manager is reset by the commit that ends a
   fallback episode, so the next transaction starts from a cold window. *)
let test_backoff_reset_after_fallback () =
  simulated (fun () ->
      with_starvation_mode `Fallback (fun () ->
          with_retry_cap 4 (fun () ->
              let stats = Stats.create () in
              let cm = Cm.create ~policy:Cm.Backoff () in
              ignore
                (Retry_loop.run ~cm ~stats (fun ~attempt:_ ->
                     if Runtime.Serial.mine () then ()
                     else Control.abort_tx Control.Validation_failed));
              Alcotest.(check int) "window back at its initial value" 16
                (Cm.window cm);
              Alcotest.(check int) "priority cleared" 0 (Cm.priority cm))))

(* With a deadline configured, a workload that cannot commit stops with
   Timeout instead of looping in the serial mode forever. *)
let test_timeout_expires () =
  simulated (fun () ->
      with_starvation_mode `Fallback (fun () ->
          with_retry_cap 1 (fun () ->
              with_timeout_ns 200_000 (fun () ->
                  let stats = Stats.create () in
                  Alcotest.check_raises "deadline surfaces as Timeout"
                    (Control.Timeout "transaction deadline expired")
                    (fun () ->
                      ignore
                        (Retry_loop.run ~stats (fun ~attempt:_ ->
                             Control.abort_tx Control.Validation_failed)));
                  Alcotest.(check bool) "token released after timeout" false
                    (Runtime.Serial.active ());
                  let s = Stats.snapshot stats in
                  Alcotest.(check int) "timeout counted" 1 s.Stats.timeouts;
                  Alcotest.(check int) "nothing committed" 0 s.Stats.commits))))

(* ------------------------------------------------------------------ *)
(* Mclock                                                              *)
(* ------------------------------------------------------------------ *)

let test_mclock_monotone () =
  let prev = ref (Mclock.now_ns ()) in
  for i = 1 to 10_000 do
    let t = Mclock.now_ns () in
    if Int64.compare t !prev < 0 then
      Alcotest.failf "clock went backwards at sample %d" i;
    prev := t
  done

let test_mclock_elapsed () =
  let t0 = Mclock.now_ns () in
  (* Burn a little time so elapsed is strictly positive even on a coarse
     clock source. *)
  let x = ref 0 in
  for i = 1 to 1_000_000 do
    x := !x + i
  done;
  Sys.opaque_identity !x |> ignore;
  let e = Mclock.elapsed_ns t0 in
  Alcotest.(check bool) "elapsed_ns is positive" true (e > 0);
  let e' = Mclock.elapsed_ns t0 in
  Alcotest.(check bool) "elapsed_ns grows" true (e' >= e)

let test_retry_user_exception_passes_through () =
  simulated (fun () ->
      let stats = Stats.create () in
      Alcotest.check_raises "user exceptions are not retried"
        (Failure "boom") (fun () ->
          ignore (Retry_loop.run ~stats (fun ~attempt:_ -> failwith "boom")));
      let s = Stats.snapshot stats in
      Alcotest.(check (pair int int)) "neither commit nor abort recorded"
        (0, 0)
        (s.Stats.commits, s.Stats.aborts))

let suite =
  [ Alcotest.test_case "backoff: doubling bounded by max" `Quick
      test_backoff_growth_bounded;
    QCheck_alcotest.to_alcotest backoff_monotone_prop;
    Alcotest.test_case "backoff: reset" `Quick test_backoff_reset;
    Alcotest.test_case "backoff: simulated mode only yields" `Quick
      test_backoff_simulated_yields;
    Alcotest.test_case "retry: first attempt commits" `Quick
      test_retry_first_attempt_commits;
    Alcotest.test_case "retry: aborts counted then commits" `Quick
      test_retry_counts_aborts;
    Alcotest.test_case "retry: cap raises Starvation under `Raise" `Quick
      test_retry_cap_starvation;
    Alcotest.test_case "retry: cap escalates to serial fallback" `Quick
      test_retry_cap_fallback_commits;
    Alcotest.test_case "retry: no backoff before escalation" `Quick
      test_no_backoff_before_escalation;
    Alcotest.test_case "retry: cm reset after fallback commit" `Quick
      test_backoff_reset_after_fallback;
    Alcotest.test_case "retry: deadline surfaces as Timeout" `Quick
      test_timeout_expires;
    Alcotest.test_case "mclock: monotone" `Quick test_mclock_monotone;
    Alcotest.test_case "mclock: elapsed grows" `Quick test_mclock_elapsed;
    Alcotest.test_case "retry: user exceptions pass through" `Quick
      test_retry_user_exception_passes_through ]
