[@@@txlint.allow "stm-escape"
    "tests drive the escape hatches directly: preloads and post-run \
     state checks are quiescent"]

[@@@txlint.allow "lock-release"
    "tests exercise the lock primitives directly and assert the release \
     behaviour themselves"]

(* Txsan, the transactional sanitizer (lib/stm_core/sanitizer.ml).

   Two families:

   - clean runs: every engine's multi-domain workload, and a chaos run
     with fault injection, must produce {e zero} sanitizer reports while
     provably exercising the checks (the counters must move);
   - deliberate violations: a seeded unsafe-write race, an escaped peek,
     a swallowed abort, a "broken engine" committing without validating,
     and driven lock-discipline violations must each be caught with the
     expected report kind. *)

open Stm_core

let san_kind k = List.assoc k (Sanitizer.counts_by_kind ())

(* Each test starts from a clean sanitizer and leaves a clean one behind,
   so the TXSAN=1 gate (zero violations over the whole run) still holds
   after the deliberate-violation tests.  The sanitizer stays enabled when
   the TXSAN lane asked for it. *)
let with_san f =
  Sanitizer.enable ();
  Sanitizer.reset ();
  Fun.protect
    ~finally:(fun () ->
      Sanitizer.reset ();
      if Sys.getenv_opt "TXSAN" = None then Sanitizer.disable ())
    f

(* ------------------------------------------------------------------ *)
(* Clean runs                                                          *)

let clean_engine (module S : Stm_intf.S) () =
  with_san (fun () ->
      let n = 4 in
      let preload = 100 in
      let tvs = Array.init n (fun _ -> S.tvar preload) in
      let worker d () =
        for j = 1 to 150 do
          let a = (d + j) mod n in
          let b = (a + 1 + (j mod (n - 1))) mod n in
          if a <> b then
            S.atomic (fun ctx ->
                let va = S.read ctx tvs.(a) in
                let vb = S.read ctx tvs.(b) in
                S.write ctx tvs.(a) (va - 1);
                S.write ctx tvs.(b) (vb + 1))
        done
      in
      let ds = List.init 4 (fun d -> Domain.spawn (worker d)) in
      List.iter Domain.join ds;
      Alcotest.(check int) "conserved" (n * preload)
        (Array.fold_left (fun acc tv -> acc + S.peek tv) 0 tvs);
      let c = Sanitizer.checks () in
      Alcotest.(check bool) "reads were validated" true
        (c.Sanitizer.reads_validated > 0);
      Alcotest.(check bool) "commits were checked" true
        (c.Sanitizer.commits_checked > 0);
      Alcotest.(check bool) "locks were tracked" true
        (c.Sanitizer.lock_transitions > 0);
      Alcotest.(check bool) "attempts were audited" true
        (c.Sanitizer.attempts_audited > 0);
      Alcotest.(check int) "zero violations" 0 (Sanitizer.violation_count ()))

module BBase = Seqds.Hash (Seqds.Int_key)

module BSet =
  Boosting.Boost
    (struct
      type elt = int
      type t = BBase.t

      let create () = BBase.create ()
      let contains = BBase.contains
      let add = BBase.add
      let remove = BBase.remove
    end)
    (struct
      let hash = Seqds.Int_key.hash
    end)

let test_clean_boosting () =
  with_san (fun () ->
      let s = BSet.create ~stripes:4 () in
      let txns = 100 in
      let worker d () =
        for i = 0 to txns - 1 do
          let base = 2 * ((d * txns) + i) in
          ignore (BSet.add_all s [ base; base + 1 ])
        done
      in
      let ds = List.init 3 (fun d -> Domain.spawn (worker d)) in
      List.iter Domain.join ds;
      Alcotest.(check bool) "all pairs present" true
        (List.for_all
           (fun d ->
             List.for_all
               (fun i ->
                 let base = 2 * ((d * txns) + i) in
                 BSet.contains s base && BSet.contains s (base + 1))
               (List.init txns Fun.id))
           [ 0; 1; 2 ]);
      let c = Sanitizer.checks () in
      Alcotest.(check bool) "abstract locks were tracked" true
        (c.Sanitizer.lock_transitions > 0);
      Alcotest.(check int) "zero violations" 0 (Sanitizer.violation_count ()))

(* Chaos under fault injection, sanitized: the schedule exploration is
   simulated (exempt by design); the multi-domain stress phase runs with
   every check live.  Zero reports expected on every engine. *)
let chaos_engine engine () =
  with_san (fun () ->
      let r =
        Harness.Chaos.run_engine ~seeds:[ 1 ] ~runs_per_seed:3
          ~stress_domains:2 ~stress_txns:50 engine
      in
      Alcotest.(check int)
        (Harness.Chaos.engine_name engine ^ " chaos run is sanitizer-clean")
        0 r.Harness.Chaos.san_violations;
      Alcotest.(check bool) "chaos verdict ok" true (Harness.Chaos.ok r))

(* ------------------------------------------------------------------ *)
(* Deliberate violations                                               *)

(* Park a transaction on another domain so escape checks have a live
   foreign transaction to race with, run [f], then release the gate. *)
let with_parked_tx (module S : Stm_intf.S) f =
  let tv = S.tvar 0 in
  let in_tx = Atomic.make false in
  let release = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        S.atomic (fun ctx ->
            let v = S.read ctx tv in
            Atomic.set in_tx true;
            while not (Atomic.get release) do
              Domain.cpu_relax ()
            done;
            v))
  in
  while not (Atomic.get in_tx) do
    Domain.cpu_relax ()
  done;
  Fun.protect
    ~finally:(fun () ->
      Atomic.set release true;
      ignore (Domain.join d : int))
    f

let test_unsafe_write_race () =
  with_san (fun () ->
      let module S = Classic_stm.Tl2 in
      let victim = S.tvar 7 in
      with_parked_tx
        (module S)
        (fun () -> S.unsafe_write victim 42);
      Alcotest.(check int) "unsafe-write race caught" 1
        (san_kind Sanitizer.Unsafe_write_race))

let test_peek_escape () =
  with_san (fun () ->
      let module S = Classic_stm.Tl2 in
      let victim = S.tvar 7 in
      with_parked_tx
        (module S)
        (fun () -> ignore (S.peek victim : int));
      Alcotest.(check int) "escaped peek caught" 1
        (san_kind Sanitizer.Peek_escape))

let test_abort_swallowed () =
  with_san (fun () ->
      let module S = Classic_stm.Tl2 in
      S.atomic (fun _ ->
          (* The catch-all anti-pattern the lint also flags: an abort
             raised inside the body never reaches the retry loop. *)
          try Control.abort_tx Control.Explicit
          with Control.Abort_tx _ -> ());
      Alcotest.(check int) "swallowed abort caught" 1
        (san_kind Sanitizer.Abort_swallowed);
      (* The control case: an abort that does reach the loop (it retries
         and then commits) is not a violation. *)
      Sanitizer.reset ();
      let once = ref true in
      S.atomic (fun _ ->
          if !once then begin
            once := false;
            Control.abort_tx Control.Explicit
          end);
      Alcotest.(check int) "honest abort is clean" 0
        (Sanitizer.violation_count ()))

(* A "broken engine": commits at tick [wv] an entry whose location moved
   to a version within [wv] since the read — sound validation cannot let
   that through, so the sanitizer must. *)
let test_broken_engine_commit_stale () =
  with_san (fun () ->
      let l = Vlock.create ~pe:424242 () in
      let seen = Vlock.stamp l in  (* unlocked, version 0 *)
      (* Another commit moves the location to version 1... *)
      Alcotest.(check bool) "lock free" true (Vlock.try_lock l ~owner:88);
      Vlock.unlock_to l ~version:1;
      (* ...and the broken engine still commits its version-0 read at
         wv 2 without validating. *)
      let entry =
        { Rwsets.r_lock = l; Rwsets.r_seen = seen; Rwsets.r_pe = 424242 }
      in
      Sanitizer.on_commit ~owner:99 ~wv:2 (fun f -> f entry);
      Alcotest.(check int) "stale commit caught" 1
        (san_kind Sanitizer.Commit_stale);
      (* Post-validation interference (version beyond wv) is benign and
         must not be flagged. *)
      Alcotest.(check bool) "lock free" true (Vlock.try_lock l ~owner:88);
      Vlock.unlock_to l ~version:5;
      Sanitizer.on_commit ~owner:99 ~wv:2 (fun f -> f entry);
      Alcotest.(check int) "newer interference not flagged" 1
        (san_kind Sanitizer.Commit_stale))

let test_lock_discipline_driven () =
  with_san (fun () ->
      let ev e = Runtime.sanitizer_event e in
      ev (Runtime.San_acquire { pe = 555; owner = 1; version = 3 });
      ev (Runtime.San_acquire { pe = 555; owner = 2; version = 3 });
      Alcotest.(check int) "double acquire caught" 1
        (san_kind Sanitizer.Lock_imbalance);
      ev (Runtime.San_release { pe = 555; owner = 2; version = Some 2 });
      Alcotest.(check int) "version regress on release caught" 1
        (san_kind Sanitizer.Version_regress);
      ev (Runtime.San_release { pe = 555; owner = 2; version = None });
      Alcotest.(check int) "release while free caught" 2
        (san_kind Sanitizer.Lock_imbalance);
      ev (Runtime.San_acquire { pe = 555; owner = 1; version = 1 });
      Alcotest.(check int) "version regress on acquire caught" 2
        (san_kind Sanitizer.Version_regress);
      (* A release of a lock the sanitizer never saw acquired is a benign
         cold start, not an imbalance. *)
      ev (Runtime.San_release { pe = 556; owner = 9; version = Some 4 });
      Alcotest.(check int) "cold-start release not flagged" 2
        (san_kind Sanitizer.Lock_imbalance))

let test_zombie_read_aborts () =
  with_san (fun () ->
      (* Strict opacity: a failing revalidation at a read is an immediate
         abort attributed to the read, counted but not a violation. *)
      Alcotest.check_raises "aborts with Read_inconsistent"
        (Control.Abort_tx Control.Read_inconsistent) (fun () ->
          Sanitizer.on_tx_read ~validate:(fun () -> false));
      let c = Sanitizer.checks () in
      Alcotest.(check int) "counted as zombie abort" 1
        c.Sanitizer.zombie_aborts;
      Alcotest.(check int) "not a violation" 0 (Sanitizer.violation_count ());
      Sanitizer.on_tx_read ~validate:(fun () -> true);
      let c = Sanitizer.checks () in
      Alcotest.(check int) "both reads validated" 2
        c.Sanitizer.reads_validated)

let suite =
  [ Alcotest.test_case "TL2 multi-domain clean" `Quick
      (clean_engine (module Classic_stm.Tl2));
    Alcotest.test_case "LSA multi-domain clean" `Quick
      (clean_engine (module Classic_stm.Lsa));
    Alcotest.test_case "OE-STM multi-domain clean" `Quick
      (clean_engine (module Oestm.Oe));
    Alcotest.test_case "View-STM multi-domain clean" `Quick
      (clean_engine (module Viewstm.V));
    Alcotest.test_case "boosting multi-domain clean" `Quick
      test_clean_boosting;
    Alcotest.test_case "OE-STM chaos clean" `Slow
      (chaos_engine Harness.Chaos.OE);
    Alcotest.test_case "TL2 chaos clean" `Slow
      (chaos_engine Harness.Chaos.TL2);
    Alcotest.test_case "View-STM chaos clean" `Slow
      (chaos_engine Harness.Chaos.View);
    Alcotest.test_case "boosting chaos clean" `Slow
      (chaos_engine Harness.Chaos.Boost);
    Alcotest.test_case "unsafe-write race detected" `Quick
      test_unsafe_write_race;
    Alcotest.test_case "peek escape detected" `Quick test_peek_escape;
    Alcotest.test_case "swallowed abort detected" `Quick
      test_abort_swallowed;
    Alcotest.test_case "broken engine: stale commit detected" `Quick
      test_broken_engine_commit_stale;
    Alcotest.test_case "lock discipline violations detected" `Quick
      test_lock_discipline_driven;
    Alcotest.test_case "zombie reads abort, not report" `Quick
      test_zombie_read_aborts ]
