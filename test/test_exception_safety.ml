[@@@txlint.allow "stm-escape"
    "tests drive the escape hatches directly: preloads and post-run \
     state checks are quiescent"]

[@@@txlint.allow "crash-swallowed"
    "the test is the crash orchestrator: it injects the fault and \
     asserts on the aftermath"]

(* Exception safety of the four engines: a user (or injected) exception
   escaping at the worst possible moment — mid-commit, while write locks
   are held — must leave no lock behind, keep the serial token free, and
   let the very next transaction on the same data commit.

   The armed-fault point arithmetic mirrors the chaos domain-kill killer:
   a transaction that reads and rewrites two fresh cells costs read,
   write, read, write (four points), one commit point, then one lock
   point per write-set entry, in all three lazy-locking tvar engines.
   [arm_raise_after ~points:7] therefore raises at the second lock point,
   with exactly one write lock held.  If the engine leaked that lock, the
   follow-up transaction would wedge — the transaction deadline turns
   that into a loud [Timeout] failure rather than a hang. *)

open Stm_core

let with_deadline f =
  let saved = !Runtime.tx_timeout_ns in
  Runtime.tx_timeout_ns := Some 2_000_000_000;
  Fun.protect
    ~finally:(fun () ->
      Runtime.tx_timeout_ns := saved;
      Faults.disarm ();
      Faults.disable ())
    f

module Make (S : Stm_intf.S) = struct
  let test_raise_mid_commit () =
    with_deadline (fun () ->
        let tvs = Array.init 2 (fun _ -> S.tvar 10) in
        Faults.arm_raise_after ~points:7;
        (try
           S.atomic (fun ctx ->
               for i = 0 to 1 do
                 S.write ctx tvs.(i) (S.read ctx tvs.(i) + 1)
               done);
           Alcotest.fail "expected Injected_failure to escape"
         with Faults.Injected_failure -> ());
        (* Nothing installed: the raise fired before the write set went in. *)
        Alcotest.(check int) "values untouched" 10 (S.peek tvs.(0));
        Alcotest.(check int) "values untouched" 10 (S.peek tvs.(1));
        Alcotest.(check bool) "serial token free" false
          (Runtime.Serial.active ());
        (* The locks were released: the same cells commit again at once. *)
        let sum =
          S.atomic (fun ctx ->
              S.write ctx tvs.(0) (S.read ctx tvs.(0) + 1);
              S.read ctx tvs.(0) + S.read ctx tvs.(1))
        in
        Alcotest.(check int) "next transaction commits" 21 sum;
        Alcotest.(check int) "and installed" 11 (S.peek tvs.(0)))

  let test_user_exception_in_body () =
    with_deadline (fun () ->
        let tv = S.tvar 1 in
        (try
           S.atomic (fun ctx ->
               S.write ctx tv 99;
               (failwith "body blew up" : unit));
           Alcotest.fail "expected Failure to escape"
         with Failure m ->
           Alcotest.(check string) "the user's exception, verbatim"
             "body blew up" m);
        Alcotest.(check int) "write rolled back" 1 (S.peek tv);
        Alcotest.(check bool) "serial token free" false
          (Runtime.Serial.active ());
        Alcotest.(check int) "next transaction commits" 2
          (S.atomic (fun ctx ->
               S.write ctx tv (S.read ctx tv + 1);
               S.read ctx tv)))

  (* Force escalation into the serial fallback, then blow up inside the
     irrevocable attempt: [Retry_loop.escalate]'s [Fun.protect] must
     release the token on the way out. *)
  let test_serial_fallback_releases_token () =
    with_deadline (fun () ->
        let saved_cap = !Runtime.retry_cap in
        let saved_mode = !Runtime.starvation_mode in
        Runtime.retry_cap := 2;
        Runtime.starvation_mode := `Fallback;
        Fun.protect
          ~finally:(fun () ->
            Runtime.retry_cap := saved_cap;
            Runtime.starvation_mode := saved_mode)
          (fun () ->
            let tv = S.tvar 0 in
            (try
               S.atomic (fun ctx ->
                   ignore (S.read ctx tv);
                   if Runtime.Serial.mine () then failwith "serial boom"
                   else (Control.abort_tx Control.Injected : unit));
               Alcotest.fail "expected Failure to escape"
             with Failure m ->
               Alcotest.(check string) "raised under the token" "serial boom"
                 m);
            Alcotest.(check bool) "token released on the exception path"
              false (Runtime.Serial.active ());
            Alcotest.(check int) "next transaction commits" 1
              (S.atomic (fun ctx ->
                   S.write ctx tv (S.read ctx tv + 1);
                   S.read ctx tv))))

  let cases =
    [ Alcotest.test_case
        (S.name ^ ": injected raise mid-commit leaves locks free") `Quick
        test_raise_mid_commit;
      Alcotest.test_case (S.name ^ ": user exception in body rolls back")
        `Quick test_user_exception_in_body;
      Alcotest.test_case
        (S.name ^ ": serial fallback releases token on raise") `Quick
        test_serial_fallback_releases_token ]
end

module Oe_exn = Make (Oestm.Oe)
module Tl2_exn = Make (Classic_stm.Tl2)
module View_exn = Make (Viewstm.V)

(* Boosting is eager and lock-based, so the same guarantees read
   differently: an exception rolls back via the undo log and releases the
   abstract locks.  The armed raise fires at the second fresh stripe
   acquisition (one schedule point per fresh acquire, fired before the
   attempt), i.e. holding one stripe lock with one eager insert already
   applied — both must be undone. *)
module Boost_exn = struct
  module Base = Seqds.Hash (Seqds.Int_key)

  module BSet =
    Boosting.Boost
      (struct
        type elt = int
        type t = Base.t

        let create () = Base.create ()
        let contains = Base.contains
        let add = Base.add
        let remove = Base.remove
      end)
      (struct
        let hash = Seqds.Int_key.hash
      end)

  let stripes = 8
  let stripe_of k = Seqds.Int_key.hash k mod stripes

  (* Two keys on distinct stripes, so the second [add] takes a fresh
     abstract lock (the reentrant fast path has no schedule point). *)
  let ka = 0

  let kb =
    let k = ref 1 in
    while stripe_of !k = stripe_of ka do incr k done;
    !k

  let test_raise_mid_pair () =
    with_deadline (fun () ->
        let s = BSet.create ~stripes () in
        Faults.arm_raise_after ~points:2;
        (try
           ignore (BSet.add_all s [ ka; kb ]);
           Alcotest.fail "expected Injected_failure to escape"
         with Faults.Injected_failure -> ());
        Faults.disarm ();
        (* The eager first insert was undone and its stripe released. *)
        Alcotest.(check bool) "first insert rolled back" false
          (BSet.contains s ka);
        Alcotest.(check bool) "serial token free" false
          (Runtime.Serial.active ());
        Alcotest.(check bool) "pair inserts cleanly afterwards" true
          (BSet.add_all s [ ka; kb ]);
        Alcotest.(check bool) "both present" true
          (BSet.contains s ka && BSet.contains s kb))

  let test_user_exception_in_body () =
    with_deadline (fun () ->
        let s = BSet.create ~stripes () in
        (try
           Boosting.atomic (fun _ ->
               ignore (BSet.add s ka);
               (failwith "body blew up" : unit));
           Alcotest.fail "expected Failure to escape"
         with Failure m ->
           Alcotest.(check string) "the user's exception, verbatim"
             "body blew up" m);
        Alcotest.(check bool) "insert rolled back" false (BSet.contains s ka);
        Alcotest.(check bool) "stripe released: add commits" true
          (BSet.add s ka))

  let cases =
    [ Alcotest.test_case
        "boosting: injected raise mid-pair undoes and releases" `Quick
        test_raise_mid_pair;
      Alcotest.test_case "boosting: user exception in body rolls back"
        `Quick test_user_exception_in_body ]
end

let suite = Oe_exn.cases @ Tl2_exn.cases @ View_exn.cases @ Boost_exn.cases
