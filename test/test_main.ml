(* TXSAN=1 runs the whole suite with the transactional sanitizer on; the
   final gate suite then asserts the run produced zero violations (the
   deliberate-violation tests in Test_sanitizer reset behind themselves). *)
let txsan = Sys.getenv_opt "TXSAN" <> None

let () = if txsan then Stm_core.Sanitizer.enable ()

(* CLOCK=gv1|gv4|gv5 runs the whole suite under that global-clock policy
   (the CI matrix lane); tests that pin a policy save and restore it, so
   the ambient choice survives across suites. *)
let () =
  match Sys.getenv_opt "CLOCK" with
  | None -> ()
  | Some p -> Stm_core.Clock.set_policy (Stm_core.Clock.policy_of_string p)

let txsan_gate =
  [ Alcotest.test_case "zero violations over the whole run" `Quick
      (fun () ->
        List.iter
          (fun v ->
            Format.printf "%a@." Stm_core.Sanitizer.pp_violation v)
          (Stm_core.Sanitizer.violations ());
        Alcotest.(check int) "violations" 0
          (Stm_core.Sanitizer.violation_count ())) ]

let () =
  Alcotest.run "composing_relaxed_transactions"
    ([ ("vlock", Test_vlock.suite);
       ("vec", Test_vec.suite);
       ("rwsets", Test_rwsets.suite);
       ("stats", Test_stats.suite);
       ("theory", Test_theory.suite);
       ("schedsim", Test_schedsim.suite);
       ("composition", Test_composition.suite);
       ("elastic", Test_elastic.suite);
       ("convert", Test_convert.suite);
       ("harness", Test_harness.suite);
       ("boosting", Test_boosting.suite);
       ("ablation", Test_ablation.suite);
       ("theorems", Test_theorems.suite);
       ("dpor", Test_dpor.suite);
       ("clock", Test_clock.suite);
       ("linearizability", Test_linearizability.suite);
       ("tx_queue_map", Test_tx_queue_map.suite);
       ("backoff_retry", Test_backoff_retry.suite);
       ("cm", Test_cm.suite);
       ("faults", Test_faults.suite);
       ("recovery", Test_recovery.suite);
       ("persist", Test_persist.suite);
       ("exception-safety", Test_exception_safety.suite);
       ("chaos", Test_chaos.suite);
       ("sanitizer", Test_sanitizer.suite);
       ("txlint", Test_txlint.suite);
       ("viewstm", Test_viewstm.suite);
       ("stm:View-STM", Test_viewstm.battery_suite) ]
    @ Test_stm_semantics.suites @ Test_eec.suites @ Test_collections.suites
    @ if txsan then [ ("txsan-gate", txsan_gate) ] else [])
