[@@@txlint.allow "stm-escape"
    "tests drive the escape hatches directly: preloads and post-run \
     state checks are quiescent"]

[@@@txlint.allow "lock-release"
    "tests exercise the lock primitives directly and assert the release \
     behaviour themselves"]

(* Crash-tolerant lock recovery: the in-flight registry, lease-based
   orphan-lock reclamation, poisoned-victim aborts, serial-token
   reclamation, and the end-to-end domain-kill scenario.

   Real-time leases need real sleeps, so the staleness tests use leases of
   a few milliseconds and busy-wait past them — long enough to be robust
   against scheduler noise, short enough to keep the suite quick. *)

open Stm_core

let spin_ns ns =
  let t0 = Mclock.now_ns () in
  while Int64.to_int (Int64.sub (Mclock.now_ns ()) t0) < ns do
    Domain.cpu_relax ()
  done

let status = Alcotest.testable
    (fun ppf s -> Format.pp_print_string ppf (Registry.status_name s))
    ( = )

(* Recovery state is process-global; every test restores a clean slate. *)
let with_recovery ?(lease_ns = 5_000_000) f =
  Stats.reset_recovery_counters ();
  Recovery.enable ~lease_ns ();
  let finally () =
    Recovery.disable ();
    Registry.clear ();
    Stats.reset_recovery_counters ()
  in
  Fun.protect ~finally f

let test_registry_lifecycle () =
  let lease_ns = 5_000_000 in
  Registry.publish ~owner:9001;
  Alcotest.check status "published owner is live" Registry.Live
    (Registry.owner_status ~lease_ns ~owner:9001);
  Alcotest.(check bool) "counted live" true (Registry.live_count () >= 1);
  (* No heartbeat past the lease: stale, not dead. *)
  spin_ns (2 * lease_ns);
  Alcotest.check status "silent past the lease" Registry.Stale
    (Registry.owner_status ~lease_ns ~owner:9001);
  Registry.heartbeat ();
  Alcotest.check status "heartbeat revives" Registry.Live
    (Registry.owner_status ~lease_ns ~owner:9001);
  (* Dooming poisons the published generation. *)
  Alcotest.(check bool) "fresh slot is not poisoned" false
    (Registry.poisoned ());
  Alcotest.(check bool) "doom finds the owner" true
    (Registry.doom ~owner:9001);
  Alcotest.(check bool) "doomed slot is poisoned" true (Registry.poisoned ());
  Alcotest.(check bool) "owner_doomed agrees" true
    (Registry.owner_doomed ~owner:9001);
  Alcotest.(check bool) "doom on an absent owner refuses" false
    (Registry.doom ~owner:424242);
  (* Republish resets the poison; clear maps the owner to absent = Dead. *)
  Registry.publish ~owner:9002;
  Alcotest.(check bool) "republish clears the poison" false
    (Registry.poisoned ());
  Registry.clear ();
  Alcotest.check status "cleared owner reads dead" Registry.Dead
    (Registry.owner_status ~lease_ns ~owner:9002);
  Alcotest.check status "unknown owner reads dead" Registry.Dead
    (Registry.owner_status ~lease_ns ~owner:31337)

let test_mark_crashed_is_dead () =
  let lease_ns = 5_000_000 in
  let d =
    Domain.spawn (fun () ->
        Registry.publish ~owner:9003;
        Registry.mark_crashed ())
  in
  Domain.join d;
  Alcotest.check status "crashed owner reads dead immediately" Registry.Dead
    (Registry.owner_status ~lease_ns ~owner:9003)

let test_vlock_steal_dead_owner () =
  with_recovery (fun () ->
      let lock = Vlock.create () in
      let d =
        Domain.spawn (fun () ->
            Registry.publish ~owner:7001;
            Alcotest.(check bool) "victim acquired its lock" true
              (Vlock.try_lock_save lock ~owner:7001 >= 0);
            Registry.mark_crashed ())
      in
      Domain.join d;
      Alcotest.(check bool) "lock is orphaned" true
        (Vlock.locked (Vlock.stamp lock));
      let v0 = Vlock.version_of (Vlock.stamp lock) in
      Alcotest.(check bool) "dead owner's lock is stolen" true
        (Recovery.try_steal_vlock lock);
      let s = Vlock.stamp lock in
      Alcotest.(check bool) "stolen lock is free" false (Vlock.locked s);
      Alcotest.(check bool) "at a poisoned (bumped) version" true
        (Vlock.version_of s > v0);
      Alcotest.(check int) "steal counted" 1
        (Stats.recovery_counters ()).Stats.orphan_steals;
      (* A second attempt finds nothing to steal. *)
      Alcotest.(check bool) "free lock cannot be stolen" false
        (Recovery.try_steal_vlock lock))

let test_live_owner_is_never_stolen () =
  (* Generous lease: domain spawn latency must never make the fresh
     heartbeat look stale. *)
  with_recovery ~lease_ns:2_000_000_000 (fun () ->
      let lock = Vlock.create () in
      Registry.publish ~owner:7002;
      Alcotest.(check bool) "locked" true
        (Vlock.try_lock_save lock ~owner:7002 >= 0);
      (* Heartbeat fresh: a contender (other domain) must refuse. *)
      let stolen = ref true in
      let d =
        Domain.spawn (fun () -> stolen := Recovery.try_steal_vlock lock)
      in
      Domain.join d;
      Alcotest.(check bool) "live owner's lock is left alone" false !stolen;
      Vlock.unlock_restore lock;
      Registry.clear ())

let test_stale_steal_poisons_victim () =
  let lease_ns = 2_000_000 in
  with_recovery ~lease_ns (fun () ->
      let lock = Vlock.create () in
      Registry.publish ~owner:7003;
      let saved = Vlock.try_lock_save lock ~owner:7003 in
      Alcotest.(check bool) "locked" true (saved >= 0);
      (* The victim stops heartbeating (simulated stall), a contender on
         another domain steals past the lease. *)
      spin_ns (3 * lease_ns);
      let stolen = ref false in
      let d =
        Domain.spawn (fun () -> stolen := Recovery.try_steal_vlock lock)
      in
      Domain.join d;
      Alcotest.(check bool) "stale owner's lock is stolen" true !stolen;
      Alcotest.(check bool) "lease expiry counted" true
        ((Stats.recovery_counters ()).Stats.lease_expiries >= 1);
      (* The resurrected victim is doomed: its commit must abort ... *)
      Alcotest.(check bool) "victim is poisoned" true (Registry.poisoned ());
      Alcotest.check_raises "commit aborts Poisoned"
        (Control.Abort_tx Control.Poisoned) Recovery.check_poisoned;
      Alcotest.(check int) "poisoned commit counted" 1
        (Stats.recovery_counters ()).Stats.poisoned_commits;
      (* ... and its CAS-based release fails silently instead of clobbering
         the thief's poisoned version. *)
      Alcotest.(check bool) "victim's release refuses" false
        (Vlock.unlock_restore_from lock ~saved);
      Alcotest.(check bool) "lock stays free at the stolen version" false
        (Vlock.locked (Vlock.stamp lock)))

(* The claim cell: recovery-mode acquisitions publish the holder identity
   atomically with the acquisition (claim CAS before stamp CAS, cleared
   only after the release transition), so a thief reading [Vlock.holder]
   against a locked stamp always sees the actual holder — never the stale
   previous owner the plain [Vlock.owner] field can expose. *)
let test_claim_tracks_holder () =
  with_recovery (fun () ->
      let lock = Vlock.create () in
      Alcotest.(check int) "unlocked: no claim" (-1) (Vlock.holder lock);
      let saved = Vlock.try_lock_save lock ~owner:7100 in
      Alcotest.(check bool) "locked" true (saved >= 0);
      Alcotest.(check int) "claim names the holder" 7100 (Vlock.holder lock);
      Alcotest.(check bool) "release" true
        (Vlock.unlock_restore_from lock ~saved);
      Alcotest.(check int) "released: claim cleared" (-1) (Vlock.holder lock);
      (* Re-acquisition by a different owner moves the claim with the
         stamp; a steal then displaces exactly that claim. *)
      Alcotest.(check bool) "relock" true (Vlock.try_lock lock ~owner:7101);
      Alcotest.(check int) "claim follows the new holder" 7101
        (Vlock.holder lock);
      let s = Vlock.stamp lock in
      (match
         Vlock.steal lock ~observed:s ~victim:7101
           ~version:(Vlock.version_of s + 1)
       with
      | Some displaced ->
        Alcotest.(check int) "steal displaced the holder's claim" 7101
          displaced
      | None -> Alcotest.fail "steal refused a held lock");
      Alcotest.(check int) "stolen: claim cleared for the next locker" (-1)
        (Vlock.holder lock);
      Alcotest.(check bool) "stolen lock is re-acquirable" true
        (Vlock.try_lock lock ~owner:7102);
      Vlock.unlock_restore lock)

(* Install backstop: a steal landing after lock_all leaves the write set
   part-published.  install_and_unlock must finish releasing what it still
   holds, then abort Poisoned and count the event — never report the
   partial install as a successful commit. *)
let test_stolen_install_aborts_poisoned () =
  with_recovery (fun () ->
      let tv1 = Tvar.make 10 and tv2 = Tvar.make 20 in
      let w = Rwsets.Wset.create () in
      ignore (Rwsets.Wset.add w tv1 11);
      ignore (Rwsets.Wset.add w tv2 21);
      Alcotest.(check bool) "locked" true (Rwsets.Wset.lock_all w ~owner:7400);
      (* A thief takes tv2's lock (entries install in id order, so tv1 is
         published before the loop reaches the stolen entry). *)
      let lock2 = tv2.Tvar.lock in
      let s = Vlock.stamp lock2 in
      Alcotest.(check bool) "entry lock held" true (Vlock.locked s);
      (match
         Vlock.steal lock2 ~observed:s ~victim:7400
           ~version:(Vlock.version_of s + 1)
       with
      | Some displaced ->
        Alcotest.(check int) "thief displaced the victim's claim" 7400
          displaced
      | None -> Alcotest.fail "steal refused a held lock");
      Alcotest.check_raises "partial install aborts Poisoned"
        (Control.Abort_tx Control.Poisoned) (fun () ->
          Rwsets.Wset.install_and_unlock w ~wv:42);
      Alcotest.(check int) "entry before the steal is published" 11
        (Tvar.peek tv1);
      Alcotest.(check int) "stolen entry is not written" 20 (Tvar.peek tv2);
      Alcotest.(check bool) "non-stolen lock released" false
        (Vlock.locked (Vlock.stamp tv1.Tvar.lock));
      Alcotest.(check bool) "stolen lock left to its thief" false
        (Vlock.locked (Vlock.stamp lock2));
      Alcotest.(check int) "partial commit counted as poisoned" 1
        (Stats.recovery_counters ()).Stats.poisoned_commits)

(* Boosting applies operations eagerly, so a doomed victim must be caught
   by the acquire-path / commit-gate poison checks — there is no install
   step to stop it.  The first attempt is doomed mid-flight (as a thief
   does before CASing an abstract lock free); it must abort and roll
   back, and the retry must commit cleanly. *)
let test_boosting_poisoned_victim_aborts () =
  with_recovery (fun () ->
      let lock = Boosting.Abstract_lock.create () in
      let attempts = ref 0 in
      let committed =
        Boosting.atomic (fun tx ->
            incr attempts;
            Boosting.acquire tx lock;
            if !attempts = 1 then
              ignore
                (Registry.doom ~owner:(Boosting.Abstract_lock.held_by lock));
            (* The next operation's acquire (reentrant here) must notice
               the doom instead of keeping to mutate under a stolen
               stripe. *)
            Boosting.acquire tx lock;
            true)
      in
      Alcotest.(check bool) "retry commits" true committed;
      Alcotest.(check int) "first attempt aborted, second committed" 2
        !attempts;
      Alcotest.(check bool) "poisoned abort counted" true
        ((Stats.recovery_counters ()).Stats.poisoned_commits >= 1);
      Alcotest.(check int) "lock released after the retry's commit" (-1)
        (Boosting.Abstract_lock.held_by lock))

let test_serial_token_reclaim () =
  with_recovery ~lease_ns:1_000_000 (fun () ->
      let d =
        Domain.spawn (fun () ->
            Alcotest.(check bool) "token acquired" true
              (Runtime.Serial.enter ())
            (* dies without exit: the token is orphaned *))
      in
      Domain.join d;
      Alcotest.(check bool) "token is held by the dead domain" true
        (Runtime.Serial.active ());
      (* enter must reclaim the orphan instead of spinning forever; the
         giveup deadline turns a regression into a failure, not a hang. *)
      let t0 = Mclock.now_ns () in
      let expired () =
        Int64.to_int (Int64.sub (Mclock.now_ns ()) t0) > 2_000_000_000
      in
      Alcotest.(check bool) "token reclaimed from the dead holder" true
        (Runtime.Serial.enter ~giveup:expired ());
      Runtime.Serial.exit ();
      Alcotest.(check bool) "token free again" false (Runtime.Serial.active ());
      Alcotest.(check bool) "reclaim counted as a steal" true
        ((Stats.recovery_counters ()).Stats.orphan_steals >= 1))

(* Serial-token reclaim must doom the victim's slot before force-clearing
   the token, exactly like the lock steal paths: a stale-but-alive holder
   that resurrects must observe itself poisoned (and so abort at its next
   commit-entry check) rather than keep running in presumed-exclusive
   serial mode. *)
let test_serial_reclaim_dooms_victim () =
  let lease_ns = 2_000_000 in
  with_recovery ~lease_ns (fun () ->
      let ready = Atomic.make false in
      let go = Atomic.make false in
      let victim_poisoned = ref false in
      let d =
        Domain.spawn (fun () ->
            Registry.publish ~owner:7200;
            Alcotest.(check bool) "victim takes the token" true
              (Runtime.Serial.enter ());
            Atomic.set ready true;
            (* Stalled: no heartbeats, so the holder goes stale. *)
            while not (Atomic.get go) do
              Domain.cpu_relax ()
            done;
            (* Resurrected after the steal: the slot must be doomed. *)
            victim_poisoned := Registry.poisoned ();
            Registry.clear ())
      in
      while not (Atomic.get ready) do
        Domain.cpu_relax ()
      done;
      spin_ns (3 * lease_ns);
      let t0 = Mclock.now_ns () in
      let expired () =
        Int64.to_int (Int64.sub (Mclock.now_ns ()) t0) > 2_000_000_000
      in
      Alcotest.(check bool) "token stolen from the stale holder" true
        (Runtime.Serial.enter ~giveup:expired ());
      Atomic.set go true;
      Domain.join d;
      Runtime.Serial.exit ();
      Alcotest.(check bool) "victim's slot was doomed by the reclaim" true
        !victim_poisoned)

(* A released slot keeps its dead flag until the next occupant resets it,
   so a racer that matched the slot mid-release can never read it back as
   live; and the freed slot stays reclaimable by new domains. *)
let test_released_slot_reuse () =
  let lease_ns = 5_000_000 in
  let d1 = Domain.spawn (fun () -> Registry.publish ~owner:7300) in
  Domain.join d1;
  Alcotest.check status "exited publisher reads dead" Registry.Dead
    (Registry.owner_status ~lease_ns ~owner:7300);
  let d2 =
    Domain.spawn (fun () ->
        Registry.publish ~owner:7301;
        Alcotest.check status "re-claimed slot is live" Registry.Live
          (Registry.owner_status ~lease_ns ~owner:7301);
        Registry.clear ())
  in
  Domain.join d2

(* End-to-end: the chaos domain-kill scenario, both directions.  Killers
   crash mid-commit holding write locks; with recovery the survivors steal
   and keep committing, without it they wedge on the orphans. *)

let test_kill_with_recovery_progresses () =
  List.iter
    (fun engine ->
      let r =
        Harness.Chaos.run_kill ~killers:1 ~survivors:2 ~txns:16
          ~lease_ns:5_000_000 ~recovery:true engine
      in
      let name = r.Harness.Chaos.k_engine in
      Alcotest.(check bool) (name ^ ": crashed") true
        (r.Harness.Chaos.k_crashes >= 1);
      Alcotest.(check bool) (name ^ ": survivors progressed") true
        (r.Harness.Chaos.k_commits > 0);
      Alcotest.(check bool) (name ^ ": stole the orphaned lock") true
        (r.Harness.Chaos.k_orphan_steals >= 1);
      Alcotest.(check bool) (name ^ ": scenario ok") true
        (Harness.Chaos.kill_ok r))
    [ Harness.Chaos.TL2; Harness.Chaos.Boost ]

let test_kill_without_recovery_wedges () =
  let r =
    Harness.Chaos.run_kill ~killers:1 ~survivors:2 ~txns:16 ~recovery:false
      Harness.Chaos.TL2
  in
  Alcotest.(check bool) "crashed" true (r.Harness.Chaos.k_crashes >= 1);
  Alcotest.(check bool) "survivors wedged on the orphaned lock" true
    r.Harness.Chaos.k_wedged;
  Alcotest.(check bool) "nothing was stolen" true
    (r.Harness.Chaos.k_orphan_steals = 0);
  Alcotest.(check bool) "cells still conserved" true
    r.Harness.Chaos.k_conserved;
  Alcotest.(check bool) "scenario ok (the wedge is the expected outcome)"
    true
    (Harness.Chaos.kill_ok r)

let suite =
  [ Alcotest.test_case "registry lifecycle" `Quick test_registry_lifecycle;
    Alcotest.test_case "crashed slot reads dead" `Quick
      test_mark_crashed_is_dead;
    Alcotest.test_case "dead owner's vlock is stolen" `Quick
      test_vlock_steal_dead_owner;
    Alcotest.test_case "live owner is never stolen" `Quick
      test_live_owner_is_never_stolen;
    Alcotest.test_case "stale steal poisons the victim" `Quick
      test_stale_steal_poisons_victim;
    Alcotest.test_case "claim cell tracks the holder" `Quick
      test_claim_tracks_holder;
    Alcotest.test_case "stolen install aborts poisoned" `Quick
      test_stolen_install_aborts_poisoned;
    Alcotest.test_case "boosting: poisoned victim aborts" `Quick
      test_boosting_poisoned_victim_aborts;
    Alcotest.test_case "orphaned serial token is reclaimed" `Quick
      test_serial_token_reclaim;
    Alcotest.test_case "serial reclaim dooms the victim" `Quick
      test_serial_reclaim_dooms_victim;
    Alcotest.test_case "released slot stays dead until re-claimed" `Quick
      test_released_slot_reuse;
    Alcotest.test_case "domain-kill: recovery keeps survivors going" `Slow
      test_kill_with_recovery_progresses;
    Alcotest.test_case "domain-kill: no recovery wedges" `Slow
      test_kill_without_recovery_wedges ]
