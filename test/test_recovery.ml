(* Crash-tolerant lock recovery: the in-flight registry, lease-based
   orphan-lock reclamation, poisoned-victim aborts, serial-token
   reclamation, and the end-to-end domain-kill scenario.

   Real-time leases need real sleeps, so the staleness tests use leases of
   a few milliseconds and busy-wait past them — long enough to be robust
   against scheduler noise, short enough to keep the suite quick. *)

open Stm_core

let spin_ns ns =
  let t0 = Mclock.now_ns () in
  while Int64.to_int (Int64.sub (Mclock.now_ns ()) t0) < ns do
    Domain.cpu_relax ()
  done

let status = Alcotest.testable
    (fun ppf s -> Format.pp_print_string ppf (Registry.status_name s))
    ( = )

(* Recovery state is process-global; every test restores a clean slate. *)
let with_recovery ?(lease_ns = 5_000_000) f =
  Stats.reset_recovery_counters ();
  Recovery.enable ~lease_ns ();
  let finally () =
    Recovery.disable ();
    Registry.clear ();
    Stats.reset_recovery_counters ()
  in
  Fun.protect ~finally f

let test_registry_lifecycle () =
  let lease_ns = 5_000_000 in
  Registry.publish ~owner:9001;
  Alcotest.check status "published owner is live" Registry.Live
    (Registry.owner_status ~lease_ns ~owner:9001);
  Alcotest.(check bool) "counted live" true (Registry.live_count () >= 1);
  (* No heartbeat past the lease: stale, not dead. *)
  spin_ns (2 * lease_ns);
  Alcotest.check status "silent past the lease" Registry.Stale
    (Registry.owner_status ~lease_ns ~owner:9001);
  Registry.heartbeat ();
  Alcotest.check status "heartbeat revives" Registry.Live
    (Registry.owner_status ~lease_ns ~owner:9001);
  (* Dooming poisons the published generation. *)
  Alcotest.(check bool) "fresh slot is not poisoned" false
    (Registry.poisoned ());
  Alcotest.(check bool) "doom finds the owner" true
    (Registry.doom ~owner:9001);
  Alcotest.(check bool) "doomed slot is poisoned" true (Registry.poisoned ());
  Alcotest.(check bool) "owner_doomed agrees" true
    (Registry.owner_doomed ~owner:9001);
  Alcotest.(check bool) "doom on an absent owner refuses" false
    (Registry.doom ~owner:424242);
  (* Republish resets the poison; clear maps the owner to absent = Dead. *)
  Registry.publish ~owner:9002;
  Alcotest.(check bool) "republish clears the poison" false
    (Registry.poisoned ());
  Registry.clear ();
  Alcotest.check status "cleared owner reads dead" Registry.Dead
    (Registry.owner_status ~lease_ns ~owner:9002);
  Alcotest.check status "unknown owner reads dead" Registry.Dead
    (Registry.owner_status ~lease_ns ~owner:31337)

let test_mark_crashed_is_dead () =
  let lease_ns = 5_000_000 in
  let d =
    Domain.spawn (fun () ->
        Registry.publish ~owner:9003;
        Registry.mark_crashed ())
  in
  Domain.join d;
  Alcotest.check status "crashed owner reads dead immediately" Registry.Dead
    (Registry.owner_status ~lease_ns ~owner:9003)

let test_vlock_steal_dead_owner () =
  with_recovery (fun () ->
      let lock = Vlock.create () in
      let d =
        Domain.spawn (fun () ->
            Registry.publish ~owner:7001;
            Alcotest.(check bool) "victim acquired its lock" true
              (Vlock.try_lock_save lock ~owner:7001 >= 0);
            Registry.mark_crashed ())
      in
      Domain.join d;
      Alcotest.(check bool) "lock is orphaned" true
        (Vlock.locked (Vlock.stamp lock));
      let v0 = Vlock.version_of (Vlock.stamp lock) in
      Alcotest.(check bool) "dead owner's lock is stolen" true
        (Recovery.try_steal_vlock lock);
      let s = Vlock.stamp lock in
      Alcotest.(check bool) "stolen lock is free" false (Vlock.locked s);
      Alcotest.(check bool) "at a poisoned (bumped) version" true
        (Vlock.version_of s > v0);
      Alcotest.(check int) "steal counted" 1
        (Stats.recovery_counters ()).Stats.orphan_steals;
      (* A second attempt finds nothing to steal. *)
      Alcotest.(check bool) "free lock cannot be stolen" false
        (Recovery.try_steal_vlock lock))

let test_live_owner_is_never_stolen () =
  (* Generous lease: domain spawn latency must never make the fresh
     heartbeat look stale. *)
  with_recovery ~lease_ns:2_000_000_000 (fun () ->
      let lock = Vlock.create () in
      Registry.publish ~owner:7002;
      Alcotest.(check bool) "locked" true
        (Vlock.try_lock_save lock ~owner:7002 >= 0);
      (* Heartbeat fresh: a contender (other domain) must refuse. *)
      let stolen = ref true in
      let d =
        Domain.spawn (fun () -> stolen := Recovery.try_steal_vlock lock)
      in
      Domain.join d;
      Alcotest.(check bool) "live owner's lock is left alone" false !stolen;
      Vlock.unlock_restore lock;
      Registry.clear ())

let test_stale_steal_poisons_victim () =
  let lease_ns = 2_000_000 in
  with_recovery ~lease_ns (fun () ->
      let lock = Vlock.create () in
      Registry.publish ~owner:7003;
      let saved = Vlock.try_lock_save lock ~owner:7003 in
      Alcotest.(check bool) "locked" true (saved >= 0);
      (* The victim stops heartbeating (simulated stall), a contender on
         another domain steals past the lease. *)
      spin_ns (3 * lease_ns);
      let stolen = ref false in
      let d =
        Domain.spawn (fun () -> stolen := Recovery.try_steal_vlock lock)
      in
      Domain.join d;
      Alcotest.(check bool) "stale owner's lock is stolen" true !stolen;
      Alcotest.(check bool) "lease expiry counted" true
        ((Stats.recovery_counters ()).Stats.lease_expiries >= 1);
      (* The resurrected victim is doomed: its commit must abort ... *)
      Alcotest.(check bool) "victim is poisoned" true (Registry.poisoned ());
      Alcotest.check_raises "commit aborts Poisoned"
        (Control.Abort_tx Control.Poisoned) Recovery.check_poisoned;
      Alcotest.(check int) "poisoned commit counted" 1
        (Stats.recovery_counters ()).Stats.poisoned_commits;
      (* ... and its CAS-based release fails silently instead of clobbering
         the thief's poisoned version. *)
      Alcotest.(check bool) "victim's release refuses" false
        (Vlock.unlock_restore_from lock ~saved);
      Alcotest.(check bool) "lock stays free at the stolen version" false
        (Vlock.locked (Vlock.stamp lock)))

let test_serial_token_reclaim () =
  with_recovery ~lease_ns:1_000_000 (fun () ->
      let d =
        Domain.spawn (fun () ->
            Alcotest.(check bool) "token acquired" true
              (Runtime.Serial.enter ())
            (* dies without exit: the token is orphaned *))
      in
      Domain.join d;
      Alcotest.(check bool) "token is held by the dead domain" true
        (Runtime.Serial.active ());
      (* enter must reclaim the orphan instead of spinning forever; the
         giveup deadline turns a regression into a failure, not a hang. *)
      let t0 = Mclock.now_ns () in
      let expired () =
        Int64.to_int (Int64.sub (Mclock.now_ns ()) t0) > 2_000_000_000
      in
      Alcotest.(check bool) "token reclaimed from the dead holder" true
        (Runtime.Serial.enter ~giveup:expired ());
      Runtime.Serial.exit ();
      Alcotest.(check bool) "token free again" false (Runtime.Serial.active ());
      Alcotest.(check bool) "reclaim counted as a steal" true
        ((Stats.recovery_counters ()).Stats.orphan_steals >= 1))

(* End-to-end: the chaos domain-kill scenario, both directions.  Killers
   crash mid-commit holding write locks; with recovery the survivors steal
   and keep committing, without it they wedge on the orphans. *)

let test_kill_with_recovery_progresses () =
  List.iter
    (fun engine ->
      let r =
        Harness.Chaos.run_kill ~killers:1 ~survivors:2 ~txns:16
          ~lease_ns:5_000_000 ~recovery:true engine
      in
      let name = r.Harness.Chaos.k_engine in
      Alcotest.(check bool) (name ^ ": crashed") true
        (r.Harness.Chaos.k_crashes >= 1);
      Alcotest.(check bool) (name ^ ": survivors progressed") true
        (r.Harness.Chaos.k_commits > 0);
      Alcotest.(check bool) (name ^ ": stole the orphaned lock") true
        (r.Harness.Chaos.k_orphan_steals >= 1);
      Alcotest.(check bool) (name ^ ": scenario ok") true
        (Harness.Chaos.kill_ok r))
    [ Harness.Chaos.TL2; Harness.Chaos.Boost ]

let test_kill_without_recovery_wedges () =
  let r =
    Harness.Chaos.run_kill ~killers:1 ~survivors:2 ~txns:16 ~recovery:false
      Harness.Chaos.TL2
  in
  Alcotest.(check bool) "crashed" true (r.Harness.Chaos.k_crashes >= 1);
  Alcotest.(check bool) "survivors wedged on the orphaned lock" true
    r.Harness.Chaos.k_wedged;
  Alcotest.(check bool) "nothing was stolen" true
    (r.Harness.Chaos.k_orphan_steals = 0);
  Alcotest.(check bool) "cells still conserved" true
    r.Harness.Chaos.k_conserved;
  Alcotest.(check bool) "scenario ok (the wedge is the expected outcome)"
    true
    (Harness.Chaos.kill_ok r)

let suite =
  [ Alcotest.test_case "registry lifecycle" `Quick test_registry_lifecycle;
    Alcotest.test_case "crashed slot reads dead" `Quick
      test_mark_crashed_is_dead;
    Alcotest.test_case "dead owner's vlock is stolen" `Quick
      test_vlock_steal_dead_owner;
    Alcotest.test_case "live owner is never stolen" `Quick
      test_live_owner_is_never_stolen;
    Alcotest.test_case "stale steal poisons the victim" `Quick
      test_stale_steal_poisons_victim;
    Alcotest.test_case "orphaned serial token is reclaimed" `Quick
      test_serial_token_reclaim;
    Alcotest.test_case "domain-kill: recovery keeps survivors going" `Slow
      test_kill_with_recovery_progresses;
    Alcotest.test_case "domain-kill: no recovery wedges" `Slow
      test_kill_without_recovery_wedges ]
