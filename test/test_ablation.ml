[@@@txlint.allow "stm-escape"
    "tests drive the escape hatches directly: preloads and post-run \
     state checks are quiescent"]

(* Ablation regression: why the elastic window must span two reads.

   A chain unlink reads the predecessor cell, then the successor cell,
   then writes the predecessor.  With a one-read window, the predecessor
   read slides out of the validated set: a concurrent insertion right
   behind it is silently overwritten (lost update).  The explorer finds
   that interleaving for the window-1 instance and — within the same
   budget — none for the production window-2 instance.  This is the bug
   the move/rebalance example caught live, pinned down as a test. *)

open Stm_core
open Schedsim

(* A 3-cell chain 1 -> 5 -> 9.  Process 0 removes 5: it reads the head,
   then the cell of 1 (finding 5), then 5's cell, and rewrites 1's cell —
   whose read has left a one-read window by then.  Process 1 inserts 3,
   which also rewrites 1's cell.  If the remover misses the insertion, the
   committed 3 vanishes. *)
let scenario (module S : Stm_intf.S) () =
  let module Set = Eec.Linked_list_set.Make (S) (Eec.Set_intf.Int_key) in
  let s = Set.create () in
  Set.unsafe_preload s [ 1; 5; 9 ];
  let insert_done = ref false in
  let procs =
    [ (fun () -> ignore (Set.remove s 5));
      (fun () ->
        ignore (Set.add s 3);
        insert_done := true) ]
  in
  let check () = (not !insert_done) || Set.contains s 3 in
  (procs, check)

let explore_with (module S : Stm_intf.S) =
  let holds = ref (fun () -> true) in
  Explore.explore ~max_runs:4_000
    { Explore.procs =
        (fun () ->
          let procs, check = scenario (module S) () in
          holds := check;
          procs);
      check = (fun _ -> !holds ()) }

let test_window1_loses_updates () =
  match explore_with (module Oestm.Oe_window1) with
  | Explore.Violation _ -> ()
  | Explore.All_ok { explored; _ } | Explore.Out_of_budget { explored; _ } ->
    Alcotest.failf
      "expected the one-read window to lose an update; %d interleavings \
       found none"
      explored

let test_window2_is_safe () =
  match explore_with (module Oestm.Oe) with
  | Explore.Violation { schedule; _ } ->
    Alcotest.failf "window-2 lost an update under schedule [%s]"
      (String.concat ";" (List.map string_of_int schedule))
  | Explore.All_ok _ | Explore.Out_of_budget _ -> ()

let test_classic_is_safe () =
  match explore_with (module Classic_stm.Tl2) with
  | Explore.Violation _ -> Alcotest.fail "TL2 lost an update"
  | Explore.All_ok _ | Explore.Out_of_budget _ -> ()

(* Regression for the detached-node races the exhaustive linearizability
   checker uncovered: a remove must tombstone the removed cell, or a
   concurrent remove/add that resolved its write point to that node stores
   into a detached cell and the committed effect vanishes. *)
let detached_node_scenario (module S : Stm_intf.S) second_op () =
  let module Set = Eec.Linked_list_set.Make (S) (Eec.Set_intf.Int_key) in
  let s = Set.create () in
  Set.unsafe_preload s [ 1; 3 ];
  let r1 = ref false and r2 = ref false in
  let d1 = ref false and d2 = ref false in
  let procs =
    [ (fun () ->
        r1 := Set.remove s 1;
        d1 := true);
      (fun () ->
        (r2 :=
           match second_op with
           | `Remove k -> Set.remove s k
           | `Add k -> Set.add s k);
        d2 := true) ]
  in
  let check () =
    (not (!d1 && !d2))
    ||
    match second_op with
    | `Remove k -> (not !r2) || not (Set.contains s k)
    | `Add k -> (not !r2) || Set.contains s k
  in
  (procs, check)

let test_detached_node_races (module S : Stm_intf.S) second_op () =
  let holds = ref (fun () -> true) in
  match
    Explore.explore ~max_runs:4_000
      { Explore.procs =
          (fun () ->
            let procs, check = detached_node_scenario (module S) second_op () in
            holds := check;
            procs);
        check = (fun _ -> !holds ()) }
  with
  | Explore.Violation { schedule; _ } ->
    Alcotest.failf "%s: committed effect lost under schedule [%s]" S.name
      (String.concat ";" (List.map string_of_int schedule))
  | Explore.All_ok _ | Explore.Out_of_budget _ -> ()

let suite =
  [ Alcotest.test_case "window-1 elastic loses an update (ablation)" `Slow
      test_window1_loses_updates;
    Alcotest.test_case "remove||remove keeps both effects (OE)" `Slow
      (test_detached_node_races (module Oestm.Oe) (`Remove 3));
    Alcotest.test_case "remove||remove keeps both effects (drop)" `Slow
      (test_detached_node_races (module Oestm.E_broken) (`Remove 3));
    Alcotest.test_case "remove||add keeps both effects (OE)" `Slow
      (test_detached_node_races (module Oestm.Oe) (`Add 2));
    Alcotest.test_case "remove||add keeps both effects (TL2)" `Slow
      (test_detached_node_races (module Classic_stm.Tl2) (`Add 2));
    Alcotest.test_case "window-2 elastic is safe" `Slow test_window2_is_safe;
    Alcotest.test_case "classic STM is safe" `Slow test_classic_is_safe ]
