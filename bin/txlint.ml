(* txlint: static STM-discipline lint over the repo's OCaml sources.

   Usage:  dune exec bin/txlint.exe -- [--json] [PATH ...]

   Paths default to lib, bin and examples; directories are walked
   recursively for *.ml files.  Exit status: 0 clean, 1 findings,
   2 parse/usage errors.  See lib/txlint/lint.mli for the checks. *)

let default_roots = [ "lib"; "bin"; "examples" ]

let usage () =
  prerr_endline "usage: txlint [--json] [PATH ...]";
  exit 2

let () =
  let json = ref false in
  let paths = ref [] in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--json" -> json := true
        | "--help" | "-h" -> usage ()
        | _ when String.length arg > 0 && arg.[0] = '-' ->
          Printf.eprintf "txlint: unknown option %s\n" arg;
          usage ()
        | p -> paths := p :: !paths)
    Sys.argv;
  let roots = if !paths = [] then default_roots else List.rev !paths in
  let files =
    List.concat_map
      (fun r -> if Sys.file_exists r && not (Sys.is_directory r) then [ r ]
                else Lint.ml_files_under [ r ])
      roots
  in
  if files = [] then begin
    Printf.eprintf "txlint: no .ml files under: %s\n"
      (String.concat " " roots);
    exit 2
  end;
  let findings, errors = Lint.lint_files files in
  if !json then begin
    print_string "[";
    List.iteri
      (fun i f ->
        if i > 0 then print_string ",";
        print_string "\n  ";
        print_string (Lint.finding_to_json f))
      findings;
    if findings <> [] then print_newline ();
    print_endline "]"
  end
  else
    List.iter
      (fun f -> Format.printf "%a@." Lint.pp_finding f)
      findings;
  List.iter (Printf.eprintf "txlint: %s\n") errors;
  if errors <> [] then exit 2
  else if findings <> [] then begin
    Printf.eprintf "txlint: %d finding(s) in %d file(s)\n"
      (List.length findings) (List.length files);
    exit 1
  end
  else Printf.eprintf "txlint: clean (%d files)\n" (List.length files)
