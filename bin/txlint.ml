(* txlint: static STM-discipline lint over the repo's OCaml sources.

   Usage:
     dune exec bin/txlint.exe -- [OPTIONS] [PATH ...]

   Options:
     --json                 findings as a JSON array on stdout
     --sarif FILE           also write a SARIF 2.1.0 log to FILE
     --baseline FILE        suppress findings listed in FILE; exit 1
                            only on findings NOT in the baseline
     --write-baseline FILE  write the current findings to FILE (one
                            kind<TAB>file<TAB>message line each) and
                            exit 0

   Paths default to lib, bin, examples and test; directories are walked
   recursively for *.ml files (fixtures/ subtrees are skipped — they
   exist to be deliberately dirty).  All files are analyzed together so
   the interprocedural checks see cross-file call chains.  Exit status:
   0 clean, 1 findings, 2 parse/usage errors. *)

let default_roots = [ "lib"; "bin"; "examples"; "test" ]

let usage () =
  prerr_endline
    "usage: txlint [--json] [--sarif FILE] [--baseline FILE]\n\
    \              [--write-baseline FILE] [PATH ...]";
  exit 2

let read_file file =
  match In_channel.with_open_bin file In_channel.input_all with
  | text -> text
  | exception Sys_error msg ->
    Printf.eprintf "txlint: %s\n" msg;
    exit 2

let write_file file text =
  match Out_channel.with_open_bin file (fun oc -> Out_channel.output_string oc text) with
  | () -> ()
  | exception Sys_error msg ->
    Printf.eprintf "txlint: %s\n" msg;
    exit 2

let () =
  let json = ref false in
  let sarif = ref None in
  let baseline = ref None in
  let write_baseline = ref None in
  let paths = ref [] in
  let argv = Sys.argv and n = Array.length Sys.argv in
  let i = ref 1 in
  let next_arg opt =
    incr i;
    if !i >= n then begin
      Printf.eprintf "txlint: %s needs an argument\n" opt;
      usage ()
    end;
    argv.(!i)
  in
  while !i < n do
    (match argv.(!i) with
    | "--json" -> json := true
    | "--sarif" -> sarif := Some (next_arg "--sarif")
    | "--baseline" -> baseline := Some (next_arg "--baseline")
    | "--write-baseline" ->
      write_baseline := Some (next_arg "--write-baseline")
    | "--help" | "-h" -> usage ()
    | arg when String.length arg > 0 && arg.[0] = '-' ->
      Printf.eprintf "txlint: unknown option %s\n" arg;
      usage ()
    | p -> paths := p :: !paths);
    incr i
  done;
  let roots = if !paths = [] then default_roots else List.rev !paths in
  let files =
    List.concat_map
      (fun r ->
        if Sys.file_exists r && not (Sys.is_directory r) then [ r ]
        else Lint.ml_files_under [ r ])
      roots
  in
  if files = [] then begin
    Printf.eprintf "txlint: no .ml files under: %s\n"
      (String.concat " " roots);
    exit 2
  end;
  let findings, errors = Lint.lint_files files in
  (match !write_baseline with
  | Some file ->
    let b = Buffer.create 1024 in
    Buffer.add_string b "# txlint baseline: kind<TAB>file<TAB>message\n";
    List.iter
      (fun f ->
        Buffer.add_string b (Lint.finding_key f);
        Buffer.add_char b '\n')
      findings;
    write_file file (Buffer.contents b);
    Printf.eprintf "txlint: wrote %d finding(s) to %s\n"
      (List.length findings) file;
    List.iter (Printf.eprintf "txlint: %s\n") errors;
    exit (if errors <> [] then 2 else 0)
  | None -> ());
  let fresh =
    match !baseline with
    | None -> findings
    | Some file ->
      Lint.subtract_baseline
        ~baseline:(Lint.parse_baseline (read_file file))
        findings
  in
  (* SARIF reports the fresh findings only: with a baseline in play the
     uploaded log should match what gates CI. *)
  (match !sarif with
  | Some file -> write_file file (Sarif.to_string fresh)
  | None -> ());
  if !json then begin
    print_string "[";
    List.iteri
      (fun i f ->
        if i > 0 then print_string ",";
        print_string "\n  ";
        print_string (Lint.finding_to_json f))
      fresh;
    if fresh <> [] then print_newline ();
    print_endline "]"
  end
  else List.iter (fun f -> Format.printf "%a@." Lint.pp_finding f) fresh;
  List.iter (Printf.eprintf "txlint: %s\n") errors;
  if errors <> [] then exit 2
  else if fresh <> [] then begin
    Printf.eprintf "txlint: %d finding(s) in %d file(s)%s\n"
      (List.length fresh) (List.length files)
      (match !baseline with
      | Some _ ->
        Printf.sprintf " (not in baseline; %d baselined)"
          (List.length findings - List.length fresh)
      | None -> "");
    exit 1
  end
  else
    Printf.eprintf "txlint: clean (%d files%s)\n" (List.length files)
      (match !baseline with
      | Some _ when findings <> [] ->
        Printf.sprintf ", %d baselined finding(s)" (List.length findings)
      | _ -> "")
