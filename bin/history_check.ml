(* Interactive demonstration of the theory toolbox: runs the Fig. 1
   scenario (insertIfAbsent composed from elastic children) under the
   deterministic scheduler with a chosen STM, records the history, prints
   it, and reports the verdict of every checker — outheritance,
   relax-serializability, weak and strong composability.

   Examples:
     dune exec bin/history_check.exe -- --stm oe
     dune exec bin/history_check.exe -- --stm drop
     dune exec bin/history_check.exe -- --stm drop --explore *)

open Cmdliner
open Stm_core

[@@@txlint.allow "stm-escape"
    "post-run checkers read committed state after the scheduler run \
     completes"]

let scenario (module S : Stm_intf.S) =
  let x = S.tvar 0 and y = S.tvar 0 in
  let contains tv = S.atomic ~mode:Elastic (fun ctx -> S.read ctx tv) in
  let insert tv = S.atomic ~mode:Elastic (fun ctx -> S.write ctx tv 1) in
  let insert_if_absent ~target ~guard =
    S.atomic ~mode:Elastic (fun _ ->
        if contains guard = 0 then ignore (insert target))
  in
  let procs =
    [ (fun () -> insert_if_absent ~target:x ~guard:y);
      (fun () -> insert_if_absent ~target:y ~guard:x) ]
  in
  let both_set () = S.peek x = 1 && S.peek y = 1 in
  (procs, both_set)

let stm_of_string = function
  | "oe" -> Ok (module Oestm.Oe : Stm_intf.S)
  | "drop" -> Ok (module Oestm.E_broken : Stm_intf.S)
  | "tl2" -> Ok (module Classic_stm.Tl2 : Stm_intf.S)
  | "lsa" -> Ok (module Classic_stm.Lsa : Stm_intf.S)
  | "swiss" -> Ok (module Classic_stm.Swisstm : Stm_intf.S)
  | s -> Error (Printf.sprintf "unknown STM %S (oe drop tl2 lsa swiss)" s)

let analyse h =
  let open Histories in
  Format.printf "@.Recorded history:@.%a@." History.pp h;
  Format.printf "committed: %s@."
    (String.concat ", "
       (List.map (Printf.sprintf "t%d") (History.committed h)));
  let env : Spec.env = Spec.all_registers ~init:(fun _ -> Recorder.repr_of_value 0) in
  (match History.well_formed h with
  | Ok () -> Format.printf "well-formed: yes@."
  | Error e -> Format.printf "well-formed: NO (%s)@." e);
  Format.printf "relax-serial as recorded: %b@." (History.relax_serial h);
  (match Serializability.relax_serializable ~env h with
  | Search.Witness_found -> Format.printf "relax-serializable: yes@."
  | Search.No_witness -> Format.printf "relax-serializable: NO@."
  | Search.Unknown -> Format.printf "relax-serializable: budget exhausted@.");
  (* Compositions: per process, the committed children preceding the root. *)
  List.iter
    (fun p ->
      let committed = History.committed h in
      let of_p = List.filter (fun t -> History.proc_of_tx h t = p) committed in
      match List.rev of_p with
      | _root :: (_ :: _ as rev_children) ->
        let children = List.rev rev_children in
        (match Composition.make h children with
        | Error e -> Format.printf "p%d: no composition (%s)@." p e
        | Ok c ->
          Format.printf "p%d composition {%s}:@." p
            (String.concat ", " (List.map (Printf.sprintf "t%d") children));
          List.iter
            (fun t ->
              Format.printf "  Pmin(t%d) = {%s}@." t
                (String.concat ", "
                   (List.map (Printf.sprintf "l%d") (History.pmin h t))))
            children;
          Format.printf "  outheritance: %b@." (Outheritance.satisfies h c);
          List.iter
            (fun v -> Format.printf "    %a@." Outheritance.pp_violation v)
            (Outheritance.violations h c);
          (match Composition.weakly_composable ~env h c with
          | Search.Witness_found -> Format.printf "  weakly composable: yes@."
          | Search.No_witness -> Format.printf "  weakly composable: NO@."
          | Search.Unknown -> Format.printf "  weakly composable: budget exhausted@.");
          (match Composition.strongly_composable ~env h c with
          | Search.Witness_found -> Format.printf "  strongly composable: yes@."
          | Search.No_witness -> Format.printf "  strongly composable: NO@."
          | Search.Unknown ->
            Format.printf "  strongly composable: budget exhausted@."))
      | _ -> ())
    (History.procs h)

let mode_of_string = function
  | "dpor" -> Ok `Dpor
  | "naive" -> Ok `Naive
  | s -> Error (Printf.sprintf "unknown mode %S (dpor naive)" s)

let main stm_name explore mode_name =
  match (stm_of_string stm_name, mode_of_string mode_name) with
  | Error e, _ | _, Error e ->
    prerr_endline e;
    2
  | Ok (module S : Stm_intf.S), Ok mode ->
    Printf.printf "STM: %s\n" S.name;
    let schedule =
      if explore then begin
        let holds = ref (fun () -> false) in
        match
          Schedsim.Explore.explore ~mode ~max_runs:10_000
            { Schedsim.Explore.procs =
                (fun () ->
                  let procs, both = scenario (module S) in
                  holds := both;
                  procs);
              check = (fun _ -> not (!holds ())) }
        with
        | Schedsim.Explore.Violation { schedule; explored; pruned } ->
          Printf.printf
            "explorer: atomicity violation (both inserted) after %d \
             interleavings (%d pruned)\n"
            explored pruned;
          schedule
        | Schedsim.Explore.All_ok { explored; pruned } ->
          Printf.printf "explorer: all %d interleavings atomic (%d pruned)\n"
            explored pruned;
          []
        | Schedsim.Explore.Out_of_budget { explored; pruned } ->
          Printf.printf "explorer: no violation in %d interleavings (%d pruned)\n"
            explored pruned;
          []
      end
      else []
    in
    let events, both =
      Recorder.record (fun () ->
          let procs, both = scenario (module S) in
          let _ = Schedsim.Sched.run_schedule ~schedule procs in
          both ())
    in
    Printf.printf "final state: both inserted = %b\n" both;
    analyse (Histories.Convert.to_history events);
    0

let cmd =
  let stm =
    Arg.(value & opt string "oe" & info [ "stm" ] ~docv:"STM"
           ~doc:"STM to drive: oe, drop, tl2, lsa, swiss.")
  in
  let explore =
    Arg.(value & flag & info [ "explore" ]
           ~doc:"First search all interleavings for an atomicity violation \
                 and replay the violating schedule if one exists.")
  in
  let mode =
    Arg.(value & opt string "dpor" & info [ "mode" ] ~docv:"MODE"
           ~doc:"Exploration mode: dpor (partial-order reduction, default) \
                 or naive (full schedule tree).")
  in
  Cmd.v
    (Cmd.info "history_check"
       ~doc:"Record the Fig. 1 composition scenario and run the theory checkers on it")
    Term.(const main $ stm $ explore $ mode)

let () = exit (Cmd.eval' cmd)
