(* CLI regenerating the paper's evaluation figures.

   Examples:
     dune exec bin/figures.exe -- --figure 6a
     dune exec bin/figures.exe -- --figure all --threads 1,2,4,8,16 \
       --duration 1.0 --runs 3
     dune exec bin/figures.exe -- --figure 6b --full        # paper settings
     dune exec bin/figures.exe -- --figure 8a --csv *)

open Cmdliner

let parse_threads s =
  let parts = String.split_on_char ',' s in
  let ints = List.filter_map int_of_string_opt parts in
  if parts <> [] && List.length ints = List.length parts then Ok ints
  else Error (`Msg "expected a comma-separated list of integers")

let threads_conv = Arg.conv (parse_threads, fun ppf l ->
    Format.fprintf ppf "%s" (String.concat "," (List.map string_of_int l)))

let run_figures figure_str threads duration runs size_exp seed full csv json
    cm clock retry_cap backoff_init backoff_max faults sanitizer recovery
    lease_ns =
  (* Robustness knobs first: they configure process-wide state that the
     sweep reads, and the JSON report records them in its "config". *)
  (match cm with
  | None -> ()
  | Some p ->
    (match Stm_core.Cm.policy_of_string p with
    | p -> Stm_core.Cm.set_policy p
    | exception Invalid_argument m ->
      Printf.eprintf "%s\n" m;
      exit 2));
  (match clock with
  | None -> ()
  | Some p ->
    (match Stm_core.Clock.policy_of_string p with
    | p -> Stm_core.Clock.set_policy p
    | exception Invalid_argument m ->
      Printf.eprintf "%s\n" m;
      exit 2));
  Option.iter (fun n -> Stm_core.Runtime.retry_cap := n) retry_cap;
  (try
     Option.iter (fun i -> Stm_core.Backoff.set_defaults ~init:i ()) backoff_init;
     Option.iter
       (fun m -> Stm_core.Backoff.set_defaults ~max_window:m ())
       backoff_max
   with Invalid_argument m ->
     Printf.eprintf "%s\n" m;
     exit 2);
  (match faults with
  | None -> ()
  | Some spec ->
    (match Stm_core.Faults.parse spec with
    | c -> Stm_core.Faults.enable c
    | exception Invalid_argument m ->
      Printf.eprintf "%s\n" m;
      exit 2));
  if sanitizer then begin
    Stm_core.Sanitizer.enable ();
    Printf.printf
      "# sanitizer on: numbers are NOT comparable to clean runs\n%!"
  end;
  if recovery then begin
    Stm_core.Recovery.enable ~lease_ns ();
    Printf.printf "# recovery on: lease %dns\n%!" lease_ns
  end;
  let figures =
    if figure_str = "all" then Harness.Figures.all
    else
      match Harness.Figures.of_string figure_str with
      | Some f -> [ f ]
      | None ->
        Printf.eprintf "unknown figure %S (use 6a 6b 6r 7a 7b 8a 8b or all)\n"
          figure_str;
        exit 2
  in
  let threads, duration, runs =
    if full then ([ 1; 2; 4; 8; 16; 32; 64 ], 10.0, 10)
    else (threads, duration, runs)
  in
  (* Latency/footprint histograms are only paid for when they will be
     reported; the plain tables match the paper's counters-only runs. *)
  let detailed = json <> None in
  Printf.printf
    "# Composing Relaxed Transactions - evaluation reproduction\n\
     # threads axis: %s; duration/point: %.2fs; runs/point: %d; 2^%d elements\n\
     # host: %d hardware core(s) - see EXPERIMENTS.md for the simulation note\n%!"
    (String.concat "," (List.map string_of_int threads))
    duration runs size_exp
    (Domain.recommended_domain_count ());
  let results =
    List.map
      (fun f ->
        let r =
          Harness.Figures.run ~size_exp ~threads ~duration ~runs ~seed
            ~detailed f
        in
        if csv then Format.printf "%a%!" Harness.Figures.pp_csv r
        else Format.printf "%a%!" Harness.Figures.pp_result r;
        r)
      figures
  in
  (match json with
  | None -> ()
  | Some file ->
    Harness.Report.write_file file (Harness.Report.report results);
    Printf.printf "# wrote %s\n%!" file);
  if sanitizer then begin
    let n = Stm_core.Sanitizer.violation_count () in
    if n > 0 then begin
      Printf.eprintf "# sanitizer: %d violation(s)\n" n;
      List.iter
        (fun v -> Format.eprintf "#   %a@." Stm_core.Sanitizer.pp_violation v)
        (Stm_core.Sanitizer.violations ());
      exit 1
    end
    else Printf.printf "# sanitizer: clean\n%!"
  end;
  0

let cmd =
  let figure =
    Arg.(value & opt string "all" & info [ "figure"; "f" ] ~docv:"FIG"
           ~doc:"Which figure to regenerate: 6a, 6b, 6r (read-heavy \
                 companion), 7a, 7b, 8a, 8b or all.")
  in
  let threads =
    Arg.(value & opt threads_conv [ 1; 2; 4; 8 ] & info [ "threads"; "t" ]
           ~docv:"LIST" ~doc:"Comma-separated thread counts.")
  in
  let duration =
    Arg.(value & opt float 0.2 & info [ "duration"; "d" ] ~docv:"SECONDS"
           ~doc:"Measured duration per point.")
  in
  let runs =
    Arg.(value & opt int 1 & info [ "runs"; "r" ] ~docv:"N"
           ~doc:"Runs averaged per point.")
  in
  let size_exp =
    Arg.(value & opt int 12 & info [ "size-exp" ] ~docv:"K"
           ~doc:"log2 of the initial structure size (paper: 12).")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED"
           ~doc:"Workload seed (runs are deterministic given a seed).")
  in
  let full =
    Arg.(value & flag & info [ "full" ]
           ~doc:"Paper settings: threads 1..64, 10 runs of 10s per point.")
  in
  let csv =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of tables.")
  in
  let json =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Additionally write a machine-readable JSON report \
                 (schema in EXPERIMENTS.md) to $(docv), e.g. \
                 BENCH_6a.json.  Enables detailed metrics (latency \
                 percentiles, rw-set sizes, retry depths).")
  in
  let cm =
    Arg.(value & opt (some string) None & info [ "cm" ] ~docv:"POLICY"
           ~doc:"Contention-manager policy: backoff (default), karma or \
                 timestamp.")
  in
  let clock =
    Arg.(value & opt (some string) None & info [ "clock" ] ~docv:"POLICY"
           ~doc:"Global-version-clock policy: gv1 (default, fetch-and-add \
                 per commit), gv4 (CAS once, adopt the winner's value on \
                 failure) or gv5 (commit at read+2, bump the clock on \
                 aborts).  Recorded in the JSON report config.")
  in
  let retry_cap =
    Arg.(value & opt (some int) None & info [ "retry-cap" ] ~docv:"N"
           ~doc:"Optimistic retries before escalating to the \
                 serial-irrevocable fallback (default 64).")
  in
  let backoff_init =
    Arg.(value & opt (some int) None & info [ "backoff-init" ] ~docv:"N"
           ~doc:"Initial backoff window in relaxation steps (default 16).")
  in
  let backoff_max =
    Arg.(value & opt (some int) None & info [ "backoff-max" ] ~docv:"N"
           ~doc:"Backoff window ceiling in relaxation steps (default 2^14).")
  in
  let faults =
    Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"SPEC"
           ~doc:"Enable fault injection, e.g. \
                 seed=7,abort=0.01,lock=0.05,validate=0.05,delay=0.01. \
                 For robustness experiments only - numbers measured with \
                 faults on are not comparable to clean runs.")
  in
  let sanitizer =
    Arg.(value & flag & info [ "sanitizer" ]
           ~doc:"Enable the transactional sanitizer (Txsan): checks vlock \
                 discipline, opacity at every read, escape hatches and \
                 abort swallowing while the benchmark runs.  Adds a \
                 \"sanitizer\" object to the JSON report and exits 1 on \
                 any violation.  Numbers are not comparable to clean runs.")
  in
  let recovery =
    Arg.(value & flag & info [ "recovery" ]
           ~doc:"Enable crash-tolerant orphan-lock recovery (in-flight \
                 registry, lease-based reclamation).  Adds a \"recovery\" \
                 object to the JSON report.")
  in
  let lease_ns =
    Arg.(value
         & opt int Stm_core.Recovery.default_lease_ns
         & info [ "lease-ns" ] ~docv:"NS"
             ~doc:"Heartbeat lease in nanoseconds before a lock owner is \
                   considered stale and its locks reclaimable.")
  in
  Cmd.v
    (Cmd.info "figures" ~doc:"Regenerate the figures of Composing Relaxed Transactions (IPDPS'13)")
    Term.(const run_figures $ figure $ threads $ duration $ runs $ size_exp
          $ seed $ full $ csv $ json $ cm $ clock $ retry_cap $ backoff_init
          $ backoff_max $ faults $ sanitizer $ recovery $ lease_ns)

let () = exit (Cmd.eval' cmd)
