(* CLI for the chaos (fault-injection) test harness.

   Runs every engine's model-checked transfer workload under injected
   faults across a seed range, plus the forced-fallback scenario and a
   multi-domain stress run, and prints one summary line per engine.
   Exits non-zero if any engine shows a safety violation, so CI can gate
   on it directly.

   Examples:
     dune exec bin/chaos.exe --                       # 20 seeds, all engines
     dune exec bin/chaos.exe -- --seeds 5 --runs 10   # short budget
     dune exec bin/chaos.exe -- --engine oe --json chaos.json *)

open Cmdliner

let parse_engines s =
  try
    Ok
      (List.map
         (fun e -> Harness.Chaos.engine_of_string e)
         (String.split_on_char ',' s))
  with Invalid_argument m -> Error (`Msg m)

let engines_conv =
  Arg.conv
    ( parse_engines,
      fun ppf es ->
        Format.fprintf ppf "%s"
          (String.concat "," (List.map Harness.Chaos.engine_name es)) )

(* Domain-kill mode: for each engine, crash killer domains mid-commit and
   check that survivors keep committing with recovery on AND that the same
   scenario wedges with recovery off.  Both directions must pass. *)
let run_kill_mode engines lease_ns json sanitizer =
  if sanitizer then Stm_core.Sanitizer.enable ();
  Printf.printf "## Chaos domain-kill: lease=%dns%s\n%!" lease_ns
    (if sanitizer then ", sanitizer on" else "");
  let results =
    List.concat_map
      (fun e ->
        let on, off = Harness.Chaos.run_kill_both ~lease_ns e in
        List.iter
          (fun r ->
            Printf.printf
              "%-10s recovery=%-3s %s  commits=%d conserved=%b wedged=%b \
               crashes=%d steals=%d expiries=%d poisoned=%d san_violations=%d\n\
               %!"
              r.Harness.Chaos.k_engine
              (if r.Harness.Chaos.k_recovery then "on" else "off")
              (if Harness.Chaos.kill_ok r then "ok  " else "FAIL")
              r.Harness.Chaos.k_commits r.Harness.Chaos.k_conserved
              r.Harness.Chaos.k_wedged r.Harness.Chaos.k_crashes
              r.Harness.Chaos.k_orphan_steals
              r.Harness.Chaos.k_lease_expiries
              r.Harness.Chaos.k_poisoned_commits
              r.Harness.Chaos.k_san_violations)
          [ on; off ];
        [ on; off ])
      engines
  in
  (match json with
  | None -> ()
  | Some file ->
    Harness.Report.write_file file (Harness.Chaos.kill_report_json results);
    Printf.printf "## wrote %s\n%!" file);
  if sanitizer then
    List.iter
      (fun v ->
        Format.eprintf "sanitizer: %a@." Stm_core.Sanitizer.pp_violation v)
      (Stm_core.Sanitizer.violations ());
  if List.for_all Harness.Chaos.kill_ok results then 0 else 1

(* Crash-restart mode: for each tvar engine, fork child workers that
   commit durable transfers into a write-ahead log, SIGKILL them
   mid-commit across the seed range, recover in the parent, and check
   conservation plus prefix durability.  The same scenario then runs as a
   negative control with fsync disabled (sync_every = 0), which must
   demonstrably lose committed records — proving the kill actually lands
   before the data is safe, so the positive direction is meaningful. *)
let run_restart_mode engines crash_seeds sync_every wal_path json =
  let engines =
    List.filter (fun e -> e <> Harness.Chaos.Boost) engines
  in
  let seeds = List.init crash_seeds (fun i -> i + 1) in
  Printf.printf
    "## Chaos crash-restart: %d seed(s)/engine, sync_every=%d (+ no-sync \
     negative control)\n%!"
    crash_seeds sync_every;
  let print r =
    Printf.printf
      "%-10s sync_every=%-2d %s  commits=%d acked=%d recovered=%d \
       torn_seeds=%d lost_acked=%d lost_commits=%d%s\n%!"
      r.Harness.Chaos.rr_engine r.Harness.Chaos.rr_sync_every
      (if Harness.Chaos.restart_ok r then "ok  " else "FAIL")
      r.Harness.Chaos.rr_commits r.Harness.Chaos.rr_acked
      r.Harness.Chaos.rr_recovered r.Harness.Chaos.rr_torn_seeds
      (List.length r.Harness.Chaos.rr_lost_acked_seeds)
      (List.length r.Harness.Chaos.rr_lost_commit_seeds)
      (match r.Harness.Chaos.rr_failed_seeds with
      | [] -> ""
      | l -> "  failed_seeds=" ^ String.concat "," (List.map string_of_int l))
  in
  let results =
    List.concat_map
      (fun e ->
        let wal_path =
          match wal_path with
          | Some p -> p
          | None ->
            Filename.concat (Filename.get_temp_dir_name ())
              (Printf.sprintf "chaos-restart-%d.wal" (Unix.getpid ()))
        in
        let on = Harness.Chaos.run_restart ~seeds ~sync_every ~wal_path e in
        print on;
        let off = Harness.Chaos.run_restart ~seeds ~sync_every:0 ~wal_path e in
        print off;
        [ on; off ])
      engines
  in
  (match json with
  | None -> ()
  | Some file ->
    Harness.Report.write_file file
      (Harness.Chaos.restart_report_json results);
    Printf.printf "## wrote %s\n%!" file);
  if List.for_all Harness.Chaos.restart_ok results then 0 else 1

let run_chaos engines seeds runs stress_domains stress_txns json sanitizer
    recovery lease_ns kill crash_restart crash_seeds wal_sync_every wal_path
    =
  if crash_restart then
    run_restart_mode engines crash_seeds wal_sync_every wal_path json
  else if kill then run_kill_mode engines lease_ns json sanitizer
  else begin
  let seeds = List.init seeds (fun i -> i + 1) in
  if sanitizer then Stm_core.Sanitizer.enable ();
  if recovery then Stm_core.Recovery.enable ~lease_ns ();
  Printf.printf
    "## Chaos: %d seed(s)/engine, %d schedule(s)/seed, faults %s%s\n%!"
    (List.length seeds) runs
    (Stm_core.Faults.to_string Harness.Chaos.default_faults)
    (if sanitizer then ", sanitizer on" else "");
  let results =
    List.map
      (fun e ->
        let r =
          Harness.Chaos.run_engine ~seeds ~runs_per_seed:runs ~stress_domains
            ~stress_txns e
        in
        Printf.printf
          "%-10s %s  schedules=%d commits=%d aborts=%d fallbacks=%d \
           timeouts=%d san_violations=%d injected=[%s]%s\n%!"
          r.Harness.Chaos.engine
          (if Harness.Chaos.ok r then "ok  " else "FAIL")
          r.Harness.Chaos.schedules r.Harness.Chaos.stats.Stm_core.Stats.commits
          r.Harness.Chaos.stats.Stm_core.Stats.aborts
          r.Harness.Chaos.stats.Stm_core.Stats.fallbacks
          r.Harness.Chaos.stats.Stm_core.Stats.timeouts
          r.Harness.Chaos.san_violations
          (String.concat " "
             (List.map
                (fun (k, n) ->
                  Printf.sprintf "%s=%d" (Stm_core.Faults.kind_name k) n)
                r.Harness.Chaos.injected))
          (match r.Harness.Chaos.failed_seeds with
          | [] -> ""
          | l ->
            "  failed_seeds="
            ^ String.concat "," (List.map string_of_int l))
        ;
        r)
      engines
  in
  (match json with
  | None -> ()
  | Some file ->
    Harness.Report.write_file file (Harness.Chaos.report_json results);
    Printf.printf "## wrote %s\n%!" file);
  if sanitizer then
    List.iter
      (fun v -> Format.eprintf "sanitizer: %a@." Stm_core.Sanitizer.pp_violation v)
      (Stm_core.Sanitizer.violations ());
  if recovery then Stm_core.Recovery.disable ();
  if List.for_all Harness.Chaos.ok results then 0 else 1
  end

let cmd =
  let engines =
    Arg.(value
         & opt engines_conv Harness.Chaos.all_engines
         & info [ "engine"; "e" ] ~docv:"LIST"
             ~doc:"Comma-separated engines: oe, tl2, view, boost (default \
                   all).")
  in
  let seeds =
    Arg.(value & opt int 20 & info [ "seeds" ] ~docv:"N"
           ~doc:"Number of fault seeds per engine (seeds 1..N).")
  in
  let runs =
    Arg.(value & opt int 30 & info [ "runs"; "r" ] ~docv:"N"
           ~doc:"Sampled schedules per seed.")
  in
  let stress_domains =
    Arg.(value & opt int 4 & info [ "stress-domains" ] ~docv:"N"
           ~doc:"Domains in the multi-domain stress run.")
  in
  let stress_txns =
    Arg.(value & opt int 200 & info [ "stress-txns" ] ~docv:"N"
           ~doc:"Transactions per domain in the stress run.")
  in
  let json =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Write a machine-readable JSON chaos report to $(docv).")
  in
  let sanitizer =
    Arg.(value & flag & info [ "sanitizer" ]
           ~doc:"Enable the transactional sanitizer (Txsan) for the run; \
                 the multi-domain stress phase is checked (schedule \
                 exploration is simulated and exempt).  Any violation \
                 fails the engine's verdict and the exit status.")
  in
  let recovery =
    Arg.(value & flag & info [ "recovery" ]
           ~doc:"Enable crash-tolerant orphan-lock recovery (registry, \
                 lease-based reclamation) for the run.")
  in
  let lease_ns =
    Arg.(value & opt int 10_000_000 & info [ "lease-ns" ] ~docv:"NS"
           ~doc:"Heartbeat lease in nanoseconds: a lock owner whose \
                 registry heartbeat is older than this is considered \
                 stale and its locks may be reclaimed.")
  in
  let kill =
    Arg.(value & flag & info [ "kill" ]
           ~doc:"Run the domain-kill scenario instead: crash domains \
                 mid-commit (orphaning their locks) and require that \
                 survivors keep committing with recovery on, and that the \
                 same scenario wedges with recovery off.")
  in
  let crash_restart =
    Arg.(value & flag & info [ "crash-restart" ]
           ~doc:"Run the crash-restart scenario instead: fork child \
                 workers committing durable transfers into a write-ahead \
                 log, SIGKILL them mid-commit across the seed range, \
                 recover in the parent and check conservation and prefix \
                 durability; a no-sync negative control must demonstrably \
                 lose committed records.  Boosting is skipped (no tvar \
                 write set).")
  in
  let crash_seeds =
    Arg.(value & opt int 20 & info [ "crash-seeds" ] ~docv:"N"
           ~doc:"Seeds (kill timings) per engine in crash-restart mode.")
  in
  let wal_sync_every =
    Arg.(value & opt int 1 & info [ "wal-sync-every" ] ~docv:"N"
           ~doc:"Group-commit knob for crash-restart mode: fsync the log \
                 every $(docv) records (1 = every commit).")
  in
  let wal_path =
    Arg.(value & opt (some string) None & info [ "wal-path" ] ~docv:"FILE"
           ~doc:"Write-ahead-log file for crash-restart mode (default: a \
                 per-process file under the temp directory).")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Model-check all STM engines under deterministic fault injection")
    Term.(const run_chaos $ engines $ seeds $ runs $ stress_domains
          $ stress_txns $ json $ sanitizer $ recovery $ lease_ns $ kill
          $ crash_restart $ crash_seeds $ wal_sync_every $ wal_path)

let () = exit (Cmd.eval' cmd)
