(** Transactional boosting (Herlihy & Koskinen, PPoPP'08), composed through
    outheritance.

    Section VIII of the paper observes that boosting fits the protection
    element model — one protection element per abstract lock — and that
    "passing abstract locks from the child to the parent transaction would
    make transactional boosting satisfy outheritance and therefore provide
    composition".  This module is that sentence, executable:

    - a boosted transaction pessimistically acquires {e abstract locks}
      (one per semantic entity, e.g. per key of a set) before invoking an
      operation of an underlying {e linearizable} object, and records an
      {e inverse} operation in an undo log;
    - on abort the undo log runs backwards and the locks are released;
    - nested [atomic] blocks share the root's lock table and undo log, so
      a child's abstract locks are held until the {e root} commits —
      outheritance, and with it composition, by construction.

    Deadlocks (two transactions acquiring locks in opposite orders) are
    broken by bounded lock acquisition: a transaction that cannot get a
    lock within its patience aborts, undoes, backs off and retries. *)

open Stm_core

exception Too_many_retries = Control.Starvation

(** One abstract lock: a test-and-set lock with an owner, reentrant with
    respect to one boosted transaction.  The [id] doubles as the
    protection-element identifier when runs are recorded for the theory
    checkers. *)
module Abstract_lock = struct
  type t = {
    holder : int Atomic.t;  (* root transaction id, or -1 *)
    id : int;
  }

  let next_id = Atomic.make 1_000_000  (* disjoint from tvar ids in practice *)

  let create () =
    { holder = Atomic.make (-1); id = Atomic.fetch_and_add next_id 1 }

  let id t = t.id

  (* Lock transitions report themselves to the sanitizer (abstract locks
     carry no version, so only the balance checks apply).  Events fire on
     actual state changes, not on reentrant hits or failed attempts. *)
  let try_acquire t ~owner =
    if !Runtime.tracing then Runtime.trace_access (Runtime.Lock t.id);
    Atomic.get t.holder = owner
    ||
    if Atomic.compare_and_set t.holder (-1) owner then begin
      if !Runtime.sanitizer then
        Runtime.sanitizer_event
          (Runtime.San_acquire { pe = t.id; owner; version = 0 });
      true
    end
    else false

  let release t ~owner =
    if !Runtime.tracing then Runtime.trace_access (Runtime.Lock t.id);
    if Atomic.compare_and_set t.holder owner (-1) then
      if !Runtime.sanitizer then
        Runtime.sanitizer_event
          (Runtime.San_release { pe = t.id; owner; version = None })

  let held_by t = Atomic.get t.holder
end

type tx = {
  root_id : int;
  mutable locks : Abstract_lock.t list;  (* acquired, for release at root commit *)
  mutable undo : (unit -> unit) list;    (* inverses, newest first *)
  mutable durable : (int * string) list; (* WAL payloads, newest first *)
  rec_state : Txrec.t option;            (* event recording, when enabled *)
}

let current : tx option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let () =
  Runtime.register_tls
    ~save:(fun () -> Obj.repr (Domain.DLS.get current))
    ~restore:(fun o -> Domain.DLS.set current (Obj.obj o : tx option))

let stats = Stats.create ()

let in_transaction () = Option.is_some (Domain.DLS.get current)

(** Acquire an abstract lock for the running transaction (idempotent).
    Aborts the transaction if the lock stays unavailable past the
    transaction's patience. *)
let acquire tx lock =
  (* Boosting applies operations eagerly, so a doomed victim (its stripe
     stolen by recovery) is not stopped by any install-time check — it
     would keep mutating shared structures it no longer isolates.  Every
     operation acquires its stripe first, so checking here (before even
     the reentrant fast path: a stolen stripe makes that "stable local
     fact" false) bounds the damage to at most one operation past the
     steal; the abort rolls the undo log back and releases the remaining
     locks. *)
  Recovery.check_poisoned ();
  (* Reentrant fast path: [holder = root_id] can only have been set by this
     transaction and is only cleared at its own commit/abort, so the read
     is a stable local fact — and the invariant "we hold it iff it is in
     [tx.locks]" makes the old O(|locks|) membership scan unnecessary. *)
  if Abstract_lock.held_by lock = tx.root_id then ()
  else begin
  let patience = 1_000 in
  let rec go n =
    Runtime.schedule_point_on (Runtime.Lock (Abstract_lock.id lock));
    (* Serial-irrevocable gate.  Boosting applies operations eagerly, so
       the gate sits on lock acquisition (the engine's only wait point):
       a transaction refused here rolls back via its undo log and releases
       its abstract locks, letting the token holder proceed.  Transactions
       that already hold every lock they need run to completion — that is
       harmless, since boosting commits touch no shared STM metadata. *)
    if not (Runtime.Serial.commit_allowed ()) then
      Control.abort_tx Control.Killed;
    (* An injected lock failure skips this round's acquisition attempt, so
       it behaves exactly like contention: retry, then abort at patience. *)
    if
      (not (!Runtime.fault_injection && Faults.inject_lock_fail ()))
      && (Abstract_lock.try_acquire lock
            ~owner:tx.root_id
          [@txlint.allow "lock-release"
              "abstract locks accumulate in tx.locks; commit/abort \
               release them all in [finish], and a simulated crash must \
               leave them held for lease reclamation"])
    then begin
      tx.locks <- lock :: tx.locks;
      Txrec.acquire tx.rec_state ~pe:(Abstract_lock.id lock)
    end
    else begin
      (* Orphan reclamation: every 64 failed rounds (and once more before
         giving up) check whether the holder is dead or stale, and steal
         the lock on its behalf if so. *)
      let stolen =
        !Runtime.recovery
        && (n land 63 = 63 || n >= patience)
        && Recovery.try_steal_owner ~holder:lock.Abstract_lock.holder
             ~pe:(Abstract_lock.id lock)
      in
      if stolen then go n
      else if n >= patience then Control.abort_tx Control.Lock_contention
      else begin
        Domain.cpu_relax ();
        go (n + 1)
      end
    end
  in
  go 0
  end

(** Record the inverse of an operation about to be applied. *)
let log_undo tx inverse = tx.undo <- inverse :: tx.undo

(* Boosting has no versioned write set to serialize, so durable state
   flows through an explicit op log: operations on a persistent boosted
   structure record (persistent id, payload) pairs, and the root commit
   stages them as one WAL record.  Replay goes through the function
   registered with [Persist.register_replayer] for that id.

   The record's commit version must order dependent boosting commits
   even under GV5 (where commits never advance the clock): a dedicated
   monotone floor makes every durable boosting wv strictly larger than
   the previous one. *)
let log_durable tx ~id payload = tx.durable <- (id, payload) :: tx.durable

let durable_floor = Padding.atomic 0

let rec bump_durable_floor v =
  let cur = Atomic.get durable_floor in
  if v > cur && not (Atomic.compare_and_set durable_floor cur v) then
    bump_durable_floor v

let release_all tx =
  List.iter (fun l -> Abstract_lock.release l ~owner:tx.root_id) tx.locks;
  tx.locks <- []

let rollback tx =
  List.iter (fun inverse -> inverse ()) tx.undo;
  tx.undo <- []

(** Run a boosted transaction.  Nested calls share the root transaction's
    lock table and undo log: the child's abstract locks are outherited and
    released only at the root commit. *)
let atomic f =
  match Domain.DLS.get current with
  | Some parent ->
    (* Flat nesting with outheritance: everything the child acquires or
       logs accumulates in the root's lock table and undo log.  The child
       is a transaction of its own in the recorded history. *)
    let child_id = Runtime.fresh_tx_id () in
    Txrec.begin_tx parent.rec_state ~tx:child_id;
    let result = f parent in
    Txrec.commit_tx parent.rec_state ~tx:child_id;
    result
  | None ->
    Retry_loop.run ~stats (fun ~attempt:_ ->
        let tx =
          { root_id = Runtime.fresh_tx_id (); locks = []; undo = [];
            durable = []; rec_state = Txrec.create () }
        in
        Domain.DLS.set current (Some tx);
        if !Runtime.recovery then Registry.publish ~owner:tx.root_id;
        if !Runtime.sanitizer then Sanitizer.tx_begin ~owner:tx.root_id;
        Txrec.begin_tx tx.rec_state ~tx:tx.root_id;
        try
          let result = f tx in
          (* Commit gate: a victim whose stripe was stolen must not commit
             — the steal protocol relies on the doomed victim aborting
             (rolling its undo log back) instead of reporting success over
             structures another transaction now owns. *)
          Recovery.check_poisoned ();
          (* Commit: changes are already applied to the base objects;
             drop the undo log and release the locks. *)
          tx.undo <- [];
          if !Runtime.durability && tx.durable <> [] then begin
            (* Mint the WAL record's version while the abstract locks are
               still held: any dependent boosting commit acquires one of
               them afterwards and so observes the bumped floor, keeping
               replay order consistent with real order. *)
            let wv =
              Clock.tick ~floor:(fun () -> Atomic.get durable_floor) ()
            in
            bump_durable_floor wv;
            Durable.stage ~wv (List.rev tx.durable);
            tx.durable <- []
          end;
          Txrec.commit_tx tx.rec_state ~tx:tx.root_id;
          release_all tx;
          Txrec.release_remaining tx.rec_state;
          if !Runtime.sanitizer then Sanitizer.tx_end ~owner:tx.root_id;
          if !Runtime.recovery then Registry.clear ();
          Domain.DLS.set current None;
          result
        with
        | Control.Crashed as e ->
          (* Simulated domain death: no rollback and no release — the
             orphaned abstract locks are recovery's to reclaim.  Note the
             crashed transaction's undo log dies with it: boosting applies
             operations eagerly, so its effects up to the crash point
             remain applied (DESIGN.md 5h documents this limitation). *)
          tx.locks <- [];
          tx.undo <- [];
          tx.durable <- [];
          if !Runtime.recovery then Registry.mark_crashed ();
          if !Runtime.sanitizer then Sanitizer.tx_crashed ~owner:tx.root_id;
          Domain.DLS.set current None;
          raise e
        | e ->
          rollback tx;
          release_all tx;
          tx.durable <- [];
          Txrec.abort_open tx.rec_state;
          if !Runtime.sanitizer then Sanitizer.tx_end ~owner:tx.root_id;
          if !Runtime.recovery then Registry.clear ();
          Domain.DLS.set current None;
          raise e)

(* ------------------------------------------------------------------ *)
(* A boosted set: striped abstract locks over a sequential hash set.    *)

module type BOOSTABLE_SET = sig
  type elt
  type t

  val create : unit -> t
  val contains : t -> elt -> bool
  val add : t -> elt -> bool
  val remove : t -> elt -> bool
end

(** Boost a sequential set into a composable concurrent one.

    Each key maps to one abstract lock (striped); [add]/[remove]/[contains]
    acquire the key's lock, apply the sequential operation under it, and
    log the inverse.  Two operations conflict exactly when their keys
    collide on a stripe — the semantic conflict relation of boosting,
    coarser-grained here than true per-key locks but with bounded memory. *)
module Boost (Base : BOOSTABLE_SET) (K : sig
  val hash : Base.elt -> int
end) =
struct
  type elt = Base.elt

  type t = {
    base : Base.t;
    stripes : Abstract_lock.t array;
    base_mutex : Mutex.t;
        (* The sequential structure itself is not thread-safe; distinct
           keys on distinct stripes may still touch adjacent nodes, so the
           actual base operation runs under a short critical section.
           Abstract locks provide the *transactional* isolation (held to
           the root commit); the mutex only protects physical integrity. *)
  }

  let create ?(stripes = 64) () =
    { base = Base.create ();
      stripes = Array.init stripes (fun _ -> Abstract_lock.create ());
      base_mutex = Mutex.create () }

  let lock_for t k = t.stripes.(K.hash k mod Array.length t.stripes)

  let critical t f =
    Mutex.lock t.base_mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.base_mutex) f

  let contains t k =
    atomic (fun tx ->
        acquire tx (lock_for t k);
        critical t (fun () -> Base.contains t.base k))

  let add t k =
    atomic (fun tx ->
        acquire tx (lock_for t k);
        let changed = critical t (fun () -> Base.add t.base k) in
        if changed then
          log_undo tx (fun () ->
              ignore (critical t (fun () -> Base.remove t.base k)));
        changed)

  let remove t k =
    atomic (fun tx ->
        acquire tx (lock_for t k);
        let changed = critical t (fun () -> Base.remove t.base k) in
        if changed then
          log_undo tx (fun () ->
              ignore (critical t (fun () -> Base.add t.base k)));
        changed)

  (* Compositions — identical in shape to the e.e.c ones: boosting with
     outherited locks composes the same way elastic transactions do. *)

  let add_all t ks =
    atomic (fun _ -> List.fold_left (fun c k -> add t k || c) false ks)

  let remove_all t ks =
    atomic (fun _ -> List.fold_left (fun c k -> remove t k || c) false ks)

  let insert_if_absent t ~ins ~guard =
    atomic (fun _ -> if contains t guard then false else add t ins)

  let move ~src ~dst k =
    atomic (fun _ ->
        if remove src k then begin
          ignore (add dst k);
          true
        end
        else false)
end
