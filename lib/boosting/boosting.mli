(** Transactional boosting (Herlihy & Koskinen, PPoPP'08), composed
    through outheritance: a boosted transaction pessimistically acquires
    {e abstract locks} (one per semantic entity) before invoking an
    operation of an underlying linearizable object and records an inverse
    in an undo log; on abort the log runs backwards and the locks are
    released.  Nested [atomic] blocks share the root's lock table and
    undo log, so a child's abstract locks are held until the {e root}
    commits — outheritance, and with it composition, by construction
    (Section VIII of the paper). *)

exception Too_many_retries of string
(** Alias of {!Stm_core.Control.Starvation}: raised when the retry cap is
    exceeded under [`Raise] starvation mode. *)

(** One abstract lock: a test-and-set lock with an owner, reentrant with
    respect to one boosted transaction.  The [id] doubles as the
    protection-element identifier when runs are recorded for the theory
    checkers. *)
module Abstract_lock : sig
  type t

  val create : unit -> t
  val id : t -> int

  val try_acquire : t -> owner:int -> bool
  (** [true] if the lock is now (or already was) held by [owner]. *)

  val release : t -> owner:int -> unit
  (** Release if held by [owner]; a no-op otherwise. *)

  val held_by : t -> int
  (** Current holder's owner id, or -1 when free. *)
end

type tx
(** Handle on the running boosted transaction, passed to the body of
    {!atomic}. *)

val stats : Stm_core.Stats.t
(** Commit/abort counters of the boosting engine. *)

val in_transaction : unit -> bool

val acquire : tx -> Abstract_lock.t -> unit
(** Acquire an abstract lock for the running transaction (idempotent);
    aborts the transaction if the lock stays unavailable past the
    transaction's patience.  The lock is outherited: released only when
    the root commits or aborts. *)

val log_undo : tx -> (unit -> unit) -> unit
(** Record the inverse of an operation about to be applied. *)

val log_durable : tx -> id:int -> string -> unit
(** Record a durable payload for this transaction's write-ahead-log
    record (boosting has no versioned write set, so durable state flows
    through an explicit op log).  All payloads logged by the root and its
    nested children are staged as one record, with a commit version
    minted while the abstract locks are still held, when — and only when
    — the root commits under [Persist.enable].  Replay on recovery goes
    through the function registered with [Persist.register_replayer] for
    [id], in commit-version order. *)

val atomic : (tx -> 'a) -> 'a
(** Run a boosted transaction to successful commit.  Nested calls share
    the root transaction's lock table and undo log. *)

(** A sequential data type that can be boosted: a set with membership,
    insertion and removal, each invertible. *)
module type BOOSTABLE_SET = sig
  type elt
  type t

  val create : unit -> t
  val contains : t -> elt -> bool
  val add : t -> elt -> bool
  val remove : t -> elt -> bool
end

(** Boost a sequential set into a composable concurrent one: each key
    hashes to one of [stripes] abstract locks; operations acquire the
    key's lock, apply the sequential operation, and log the inverse. *)
module Boost (Base : BOOSTABLE_SET) (_ : sig
  val hash : Base.elt -> int
end) : sig
  type elt = Base.elt
  type t

  val create : ?stripes:int -> unit -> t
  val contains : t -> elt -> bool
  val add : t -> elt -> bool
  val remove : t -> elt -> bool

  (** Compositions: one transaction spanning several operations, atomic
      thanks to outherited abstract locks. *)

  val add_all : t -> elt list -> bool
  val remove_all : t -> elt list -> bool
  val insert_if_absent : t -> ins:elt -> guard:elt -> bool
  val move : src:t -> dst:t -> elt -> bool
end
