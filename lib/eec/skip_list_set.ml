(** SkipListSet of e.e.c: a sorted skip list.

    Tower heights are derived from the key's hash, which keeps the
    structure probabilistically balanced while making every execution
    deterministic and thread-agnostic (no shared random state).  Updates
    touch O(log n) towers, so — as Fig. 7 of the paper observes — elastic
    transactions gain less here than on a linear list. *)

module Make (S : Stm_core.Stm_intf.S) (K : Set_intf.ORDERED) :
  Set_intf.SET with type elt = K.t = struct
  type elt = K.t

  let max_level = 16

  type node =
    | Nil
    | Node of { key : K.t; next : node S.tvar array }

  type t = { head : node S.tvar array }

  let create () = { head = Array.init max_level (fun _ -> S.tvar Nil) }

  (* Height of the tower for [key]: 1 + number of trailing ones of its
     hash, capped — a geometric(1/2) distribution, deterministic per key. *)
  let level_of key =
    let h = K.hash key in
    let rec count l h =
      if l >= max_level then max_level else if h land 1 = 1 then count (l + 1) (h lsr 1) else l + 1
    in
    count 0 h

  let node_next = function
    | Nil -> invalid_arg "Skip_list_set.node_next"
    | Node { next; _ } -> next

  (* Search [k] from the top level down, keeping the last node seen with a
     key below [k] (its tower necessarily reaches the current level, since
     it was traversed there).  Returns per-level predecessor tvars — the
     cells an insertion or unlink must rewrite — and successor nodes, plus
     whether level 0 holds [k]. *)
  let search ctx t k =
    let preds = Array.make max_level t.head.(0) in
    let succs = Array.make max_level Nil in
    let pred_node = ref Nil in
    (* [Nil] stands for the head sentinel here. *)
    for level = max_level - 1 downto 0 do
      let start =
        match !pred_node with
        | Nil -> t.head.(level)
        | Node { next; _ } -> next.(level)
      in
      let rec forward (tv : node S.tvar) =
        match S.read ctx tv with
        | Nil -> (tv, Nil)
        | Node { key; next } as cur ->
          if K.compare key k < 0 then begin
            pred_node := cur;
            forward next.(level)
          end
          else (tv, cur)
      in
      let tv, succ = forward start in
      preds.(level) <- tv;
      succs.(level) <- succ
    done;
    let found =
      match succs.(0) with Nil -> false | Node { key; _ } -> K.compare key k = 0
    in
    (preds, succs, found)

  let contains t k =
    S.atomic ~mode:Elastic (fun ctx ->
        let _, _, found = search ctx t k in
        found)

  let find_opt t k =
    S.atomic ~mode:Elastic (fun ctx ->
        let _, succs, found = search ctx t k in
        if found then
          match succs.(0) with Nil -> None | Node { key; _ } -> Some key
        else None)

  (* Updates run as regular transactions: a skip-list update rewrites one
     predecessor cell per level based on values read much earlier in the
     search, so the whole search must stay validated — and the paper's
     Fig. 7 observes that elasticity buys little on skip lists anyway.
     [contains] stays elastic: its answer only depends on its last reads. *)
  let add t k =
    S.atomic ~mode:Regular (fun ctx ->
        let preds, succs, found = search ctx t k in
        if found then false
        else begin
          let lvl = level_of k in
          let next = Array.init lvl (fun i -> S.tvar succs.(i)) in
          let node = Node { key = k; next } in
          for i = 0 to lvl - 1 do
            S.write ctx preds.(i) node
          done;
          true
        end)

  let remove t k =
    S.atomic ~mode:Regular (fun ctx ->
        let preds, succs, found = search ctx t k in
        if not found then false
        else begin
          let node = succs.(0) in
          let next = node_next node in
          let lvl = Array.length next in
          for i = 0 to lvl - 1 do
            (* preds.(i) points at [node] for every level the tower has. *)
            S.write ctx preds.(i) (S.read ctx next.(i))
          done;
          true
        end)

  let fold ctx t ~init ~f =
    let rec go acc tv =
      match S.read ctx tv with
      | Nil -> acc
      | Node { key; next } -> go (f acc key) next.(0)
    in
    go init t.head.(0)

  let size t =
    S.atomic ~mode:Regular (fun ctx -> fold ctx t ~init:0 ~f:(fun n _ -> n + 1))

  let to_list t =
    S.atomic ~mode:Regular (fun ctx ->
        List.rev (fold ctx t ~init:[] ~f:(fun acc k -> k :: acc)))

  module C =
    Composed.Make
      (S)
      (struct
        type nonrec t = t
        type nonrec elt = elt

        let contains = contains
        let add = add
        let remove = remove
      end)

  let add_all = C.add_all
  let remove_all = C.remove_all
  let insert_if_absent = C.insert_if_absent
  let move = C.move

  let unsafe_preload t keys =
    let keys = List.sort_uniq K.compare keys in
    (* tails.(l): the cell that should point at the next node of level l. *)
    let tails = Array.init max_level (fun i -> t.head.(i)) in
    List.iter
      (fun k ->
        let lvl = level_of k in
        let next = Array.init lvl (fun _ -> S.tvar Nil) in
        let node = Node { key = k; next } in
        for l = 0 to lvl - 1 do
          (S.unsafe_write tails.(l) node
           [@txlint.allow "stm-escape"
               "quiescent bulk preload; runs strictly before any domain \
                spawns"]);
          tails.(l) <- next.(l)
        done)
      keys

  let check_invariants t =
    (* Level-0 keys strictly ascending; every higher-level list is a
       subsequence of level 0. *)
    let rec keys acc tv level =
      match
        (S.peek tv
         [@txlint.allow "stm-escape"
             "quiescent invariant check, run after all domains join"])
      with
      | Nil -> List.rev acc
      | Node { key; next } -> keys (key :: acc) next.(level) level
    in
    let level0 = keys [] t.head.(0) 0 in
    let rec ascending = function
      | [] | [ _ ] -> true
      | a :: (b :: _ as rest) -> K.compare a b < 0 && ascending rest
    in
    if not (ascending level0) then Error "level-0 keys not ascending"
    else begin
      let ok = ref (Ok ()) in
      for level = 1 to max_level - 1 do
        if !ok = Ok () then begin
          let upper = keys [] t.head.(level) level in
          let is_sub =
            List.for_all (fun k -> List.exists (fun k' -> K.compare k k' = 0) level0) upper
          in
          if not (ascending upper) then
            ok := Error (Printf.sprintf "level-%d keys not ascending" level)
          else if not is_sub then
            ok := Error (Printf.sprintf "level-%d not a subsequence of level 0" level)
        end
      done;
      !ok
    end
end
