(** Sorted singly-linked chains of transactional nodes — the building block
    shared by {!Linked_list_set} (one chain) and {!Hash_set} (one chain per
    bucket).

    All functions run inside a caller-supplied transaction context; the
    traversal performs transactional reads only until the write that links
    or unlinks a node, which is precisely the access pattern elastic
    transactions exploit (conflicts on the already-traversed prefix are
    ignored). *)

module Make (S : Stm_core.Stm_intf.S) (K : Set_intf.ORDERED) = struct
  type node =
    | Nil
    | Node of { key : K.t; next : node S.tvar }

  let new_head () : node S.tvar = S.tvar Nil

  let rec find_in ctx (prev : node S.tvar) k =
    match S.read ctx prev with
    | Nil -> None
    | Node { key; next } ->
      let c = K.compare k key in
      if c = 0 then Some key
      else if c < 0 then None
      else find_in ctx next k

  let contains_in ctx prev k = Option.is_some (find_in ctx prev k)

  let rec add_in ctx (prev : node S.tvar) k =
    match S.read ctx prev with
    | Nil ->
      S.write ctx prev (Node { key = k; next = S.tvar Nil });
      true
    | Node { key; next } as cur ->
      let c = K.compare k key in
      if c = 0 then false
      else if c < 0 then begin
        S.write ctx prev (Node { key = k; next = S.tvar cur });
        true
      end
      else add_in ctx next k

  let rec remove_in ctx (prev : node S.tvar) k =
    match S.read ctx prev with
    | Nil -> false
    | Node { key; next } ->
      let c = K.compare k key in
      if c = 0 then begin
        (* Read the successor first, then unlink: both cells are then the
           last two reads, exactly covered by the elastic window.

           The rewrite of [next] (with its own value) is the tombstone of
           Harris-style deletion: any concurrent update that resolved its
           insertion or unlink point to the node being removed has [next]
           in its write set too, so the conflict surfaces as write/write
           instead of a silent store into a detached node.  Without it,
           remove(1) || remove(3) on 1->3 can commit both while leaving 3
           in the set — found by the exhaustive linearizability checker. *)
        let succ = S.read ctx next in
        S.write ctx next succ;
        S.write ctx prev succ;
        true
      end
      else if c < 0 then false
      else remove_in ctx next k

  let fold_in ctx (head : node S.tvar) ~init ~f =
    let rec go acc tv =
      match S.read ctx tv with
      | Nil -> acc
      | Node { key; next } -> go (f acc key) next
    in
    go init head

  (* Quiescent bulk construction: overwrite the chain at [head] with the
     given keys (sorted, deduplicated here). *)
  let unsafe_build (head : node S.tvar) keys =
    let keys = List.sort_uniq K.compare keys in
    let chain =
      List.fold_right (fun k acc -> Node { key = k; next = S.tvar acc }) keys Nil
    in
    (S.unsafe_write head chain
     [@txlint.allow "stm-escape"
         "quiescent bulk preload; runs strictly before any domain \
          spawns"])

  (* Quiescent structural check: strictly ascending keys. *)
  let check head =
    let rec go last tv =
      match
        (S.peek tv
         [@txlint.allow "stm-escape"
             "quiescent structural check, run after all domains join"])
      with
      | Nil -> Ok ()
      | Node { key; next } -> (
        match last with
        | Some prev_key when K.compare prev_key key >= 0 ->
          Error
            (Printf.sprintf "chain out of order: %s then %s"
               (K.to_string prev_key) (K.to_string key))
        | _ -> go (Some key) next)
    in
    go None head
end
