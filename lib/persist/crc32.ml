(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven and
   dependency-free, in the spirit of Harness.Report's hand-rolled JSON.
   All arithmetic stays in OCaml's native int (the values fit in 32 bits,
   well inside the 63-bit range), masked back to 32 bits where shifts
   could carry. *)

let poly = 0xEDB88320

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then poly lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let mask32 = 0xFFFFFFFF

let digest ?(seed = 0) s ~pos ~len =
  let t = Lazy.force table in
  let c = ref (seed lxor mask32) in
  for i = pos to pos + len - 1 do
    c := t.((!c lxor Char.code (String.unsafe_get s i)) land 0xff)
         lxor (!c lsr 8)
  done;
  !c lxor mask32

let string s = digest s ~pos:0 ~len:(String.length s)
