(** The write-ahead log file: CRC32-framed records with group commit.

    Format: an 8-byte magic, then frames of
    [length (u32 LE) | CRC-32 over (length bytes ++ payload) | payload].
    The scanner stops at the first frame that fails the CRC or the strict
    payload decode — a torn tail — and reports the offset where the
    intact prefix ends, so recovery can truncate it.

    [append] is one buffer enqueue; the buffer is written and fsynced
    once [sync_every] records are pending or [sync_ns] has elapsed since
    the last sync (group commit).  [sync_every <= 0] is the
    negative-control mode: never fsync, drain the buffer to the OS only
    past a size threshold — acknowledged durability stays at zero.

    IO errors and injected short writes {e poison} the log ([broken])
    instead of raising: the append hook runs inside committed user code,
    which must never observe a WAL failure as an exception. *)

type record =
  | Update of { wv : int; entries : (int * string) list }
      (** one committed write set: (persistent id, serialized value) *)
  | Checkpoint of { wv : int; entries : (int * int * string) list }
      (** full snapshot: (persistent id, committed version, value) *)

val record_wv : record -> int

(** {1 Writing} *)

type t

val open_log : path:string -> sync_every:int -> sync_ns:int -> t
(** Open (or create, writing the magic) the log at [path] for appending. *)

val append : t -> record -> unit
(** Enqueue one record; may trigger a group-commit flush.  Dropped
    silently once the log is {!broken}. *)

val sync : t -> unit
(** Force a flush + fsync of everything appended so far. *)

val close : t -> unit
(** Flush (and, unless in negative-control mode, fsync) then close. *)

val rotate : t -> build:(record list -> record list) -> unit
(** Checkpoint + compaction: drain the buffer, hand the old log's intact
    records to [build], write the records it returns to a temp file,
    fsync, rename over the log (the atomic commit point) and fsync the
    directory.  Counters reset to the new file's contents, all of it
    acknowledged. *)

val path : t -> string
val sync_every : t -> int

val broken : t -> bool
(** The log was poisoned by an IO error or an injected short write; all
    subsequent appends are dropped. *)

val appended_records : t -> int
(** Records enqueued since open/rotate (monotone, read without lock). *)

val synced_records : t -> int
(** Records covered by a completed fsync — the acknowledged-durable
    count the crash-restart lane checks against. *)

val synced_wv : t -> int
(** Highest commit version among acknowledged records. *)

(** {1 Scanning (recovery side)} *)

type scanned = {
  s_records : (int * record) list;  (** file offset of each intact frame *)
  s_good_end : int;  (** offset just past the last intact frame *)
  s_file_len : int;  (** [s_file_len > s_good_end] means a torn tail *)
  s_valid_header : bool;  (** bad/missing magic: nothing is replayable *)
}

val scan : string -> scanned
(** Parse the log at [path], stopping at the first torn frame.  Raises
    [Sys_error] if the file cannot be read. *)

val scan_string : string -> scanned
(** Same, over in-memory contents (torn-tail fuzzing). *)

val truncate_tail : string -> good_end:int -> unit
(** Cut the file back to the intact prefix. *)
