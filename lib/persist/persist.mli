(** Durable commits: a write-ahead log for committed top-level
    transactions, crash-restart recovery, and log compaction.

    A {!Ptvar.t} wraps a {!Stm_core.Tvar.t} with a stable persistent id
    and a {!Codec}.  While {!enable} has a log open, every committed
    top-level transaction that wrote at least one ptvar appends one
    CRC32-framed record [{wv, [(id, bytes)]}] — fired by the engines'
    post-install hook in [Retry_loop], so a record always describes a
    transaction that definitively happened.  Group commit batches fsyncs
    ({!enable}'s [sync_every] / [sync_ns]); the acknowledged-durable
    boundary is {!acked_records}.  On restart, {!recover} scans the log,
    truncates a torn tail at the first bad CRC and replays records in
    commit-version order into the registered ptvars.

    What durability does {e not} promise under [sync_every > 1]: a
    commit's record may still sit in the user-space buffer (or the OS
    page cache) when the process dies — only records counted by
    {!acked_records} are guaranteed to survive.  The crash-restart chaos
    lane measures exactly this boundary. *)

module Crc32 : module type of Crc32
module Wal : module type of Wal

(** Value serialization for ptvars. *)
module Codec : sig
  type 'a t = { encode : 'a -> string; decode : string -> 'a }

  val int : int t
  (** 8-byte little-endian. *)

  val string : string t
  (** Identity. *)

  val marshal : unit -> 'a t
  (** [Marshal]-based catch-all — same-program use only (the bytes are
      not stable across compiler versions or type changes). *)
end

(** Transactional variables with a durable identity. *)
module Ptvar : sig
  type 'a t

  val make : id:int -> codec:'a Codec.t -> 'a -> 'a t
  (** Create a tvar initialized to the given value and register it under
      persistent id [id].  Must run before the tvar is shared with
      concurrently committing domains (encoder lookups are
      unsynchronized) and before {!recover} (replay only reaches
      registered ids).  Raises [Invalid_argument] if [id] is taken. *)

  val tvar : 'a t -> 'a Stm_core.Tvar.t
  (** The underlying tvar, for use with any engine whose
      ['a tvar = 'a Stm_core.Tvar.t]. *)

  val id : 'a t -> int

  val value : 'a t -> 'a
  (** Committed value (non-transactional peek). *)
end

val register_replayer :
  pid:int -> ?snapshot:(unit -> int * string) -> (string -> unit) -> unit
(** Register a plain replay function under a persistent id — the hook for
    durable structures that are not single tvars (e.g. boosted
    containers logging [Boosting.log_durable] entries).  [snapshot], if
    given, returns the committed [(version, bytes)] for checkpointing;
    without it the id's update records are carried forward verbatim at
    every {!checkpoint}.  Raises [Invalid_argument] if [pid] is taken. *)

(** {1 The live log} *)

val enable : ?sync_every:int -> ?sync_ns:int -> path:string -> unit -> unit
(** Open (or append to) the WAL at [path], install the commit hook and
    set [Runtime.durability].  [sync_every] (default 1): fsync once this
    many records are pending — 1 is ack-before-return full durability;
    [<= 0] is the negative-control mode that never fsyncs.  [sync_ns]
    (default 0 = off): also fsync when this much time has passed since
    the last sync.  Raises [Invalid_argument] if already enabled. *)

val disable : unit -> unit
(** Flush, close and uninstall.  No-op when not enabled. *)

val is_enabled : unit -> bool

val sync : unit -> unit
(** Force flush + fsync now (raises [Invalid_argument] when disabled). *)

val wal_path : unit -> string
val wal_sync_every : unit -> int

val wal_broken : unit -> bool
(** The log was poisoned by an IO error or an injected short write;
    appends are being dropped.  [false] when disabled. *)

val appended_records : unit -> int
(** Records enqueued since {!enable} (0 when disabled). *)

val acked_records : unit -> int
(** Records covered by a completed fsync — the acknowledged-durable
    count; what a crash is guaranteed not to lose. *)

val acked_wv : unit -> int
(** Highest commit version among acknowledged records. *)

(** {1 Recovery} *)

type summary = {
  records_intact : int;  (** intact records in the log, all types *)
  updates_intact : int;  (** intact update records (prefix durability) *)
  entries_applied : int;
  entries_skipped : int;
      (** unknown persistent id, or already covered by the checkpoint *)
  torn_bytes : int;  (** bytes past the last intact record *)
  truncated : bool;  (** a torn tail was cut off *)
  max_wv : int;  (** highest replayed commit version (clock catch-up) *)
  checkpointed : bool;  (** the log carried a checkpoint *)
}

val recover : ?truncate:bool -> path:string -> unit -> summary
(** Scan the log at [path], drop the torn tail (truncating the file
    unless [truncate:false]), seed state from the last checkpoint and
    replay update records in ascending commit version into the
    registered ptvars/replayers, then fence the global clock above the
    highest replayed version.  A missing file is an empty log.  Call
    with no transactions live and the log not {!enable}d (raises
    [Invalid_argument] otherwise). *)

val checkpoint : unit -> unit
(** Snapshot every snapshot-capable registered id and atomically rewrite
    the log as one checkpoint record (plus carried-forward records of
    plain replayers): rename(2) is the commit point, so a crash leaves
    either the old or the new log, never a mix.  Safe under concurrent
    commits — the append mutex orders every record against the snapshot,
    and replay skips updates the checkpoint already covers by version.
    Raises [Invalid_argument] when disabled. *)

(** {1 Test / restart isolation} *)

val reset_for_testing : unit -> unit
(** Disable the log (if any) and clear every registration — required
    between chaos seeds that reuse persistent ids. *)
