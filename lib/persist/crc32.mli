(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over strings; the checksum
    framing every write-ahead-log record. *)

val digest : ?seed:int -> string -> pos:int -> len:int -> int
(** Checksum of [len] bytes of [s] starting at [pos].  [seed] is a
    previous digest, for incremental use over concatenated spans:
    [digest ~seed:(digest a) b = digest (a ^ b)] (with full ranges). *)

val string : string -> int
(** [digest s ~pos:0 ~len:(String.length s)]. *)
