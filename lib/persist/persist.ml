(* Durable commits: the public face of lib/persist.

   [Ptvar.make] registers a tvar under a stable persistent id with a
   codec; [enable] opens the write-ahead log and installs the commit
   hook; [recover] replays a log into the registered ptvars on restart;
   [checkpoint] compacts the log behind an atomic rename.

   The durability unit is the top-level committed transaction, exactly
   as the paper's relaxed-transaction model defines it: the post-install
   hook fires in Retry_loop once the outcome is a definitive commit, and
   the record carries the commit version wv, so replay can re-impose
   version order across restarts the same way the multi-version systems
   it borrows from reconstruct state from version order. *)

open Stm_core

(* [persist.ml] is the library's interface module, so the framing and
   file-format modules must be re-exported to stay reachable (the
   torn-tail fuzz suite drives [Wal.scan_string] directly). *)
module Crc32 = Crc32
module Wal = Wal

[@@@txlint.allow "stm-escape"
    "recovery replays into quiescent tvars (no transactions are live \
     during [recover] by contract) and checkpoint snapshots use bounded \
     consistent reads, falling back to a peek only on a quiescent log"]

module Codec = struct
  type 'a t = { encode : 'a -> string; decode : string -> 'a }

  let int =
    { encode =
        (fun v ->
          let b = Bytes.create 8 in
          Bytes.set_int64_le b 0 (Int64.of_int v);
          Bytes.unsafe_to_string b);
      decode =
        (fun s ->
          if String.length s <> 8 then
            invalid_arg "Persist.Codec.int: expected 8 bytes";
          Int64.to_int (String.get_int64_le s 0)) }

  let string = { encode = Fun.id; decode = Fun.id }

  (* [Marshal]-based catch-all.  Same-program use only: the bytes are not
     stable across compiler versions or type changes. *)
  let marshal () =
    { encode = (fun v -> Marshal.to_string v []);
      decode = (fun s -> Marshal.from_string s 0) }
end

(* ------------------------------------------------------------------ *)
(* Replay / snapshot registry                                          *)

type reg_entry = {
  re_replay : string -> unit;
  re_snapshot : (unit -> int * string) option;
      (* committed (version, bytes); [None] for plain replayers, whose
         records are carried forward verbatim at checkpoint *)
}

let registry : (int, reg_entry) Hashtbl.t = Hashtbl.create 64
let reg_mu = Mutex.create ()

let reg_locked f =
  Mutex.lock reg_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg_mu) f

let register ~pid entry =
  let dup =
    reg_locked (fun () ->
        let dup = Hashtbl.mem registry pid in
        if not dup then Hashtbl.replace registry pid entry;
        dup)
  in
  if dup then
    invalid_arg
      (Printf.sprintf "Persist: persistent id %d is already registered" pid)

let register_replayer ~pid ?snapshot replay =
  register ~pid { re_replay = replay; re_snapshot = snapshot }

(* ------------------------------------------------------------------ *)
(* Persistent tvars                                                    *)

module Ptvar = struct
  type 'a t = { pid : int; tv : 'a Tvar.t; codec : 'a Codec.t }

  (* Committed (version, value) of a tvar, for checkpoint snapshots.
     Bounded consistent-read retries ride out concurrent commits; the
     peek fallback can only be reached under a persistent lock-holder,
     which checkpoint's quiescence contract excludes. *)
  let snapshot_tvar tv codec () =
    let rec go n =
      if n = 0 then
        (Vlock.version_of (Vlock.stamp tv.Tvar.lock), codec.Codec.encode (Tvar.peek tv))
      else
        match Tvar.read_consistent tv with
        | stamp, v -> (Vlock.version_of stamp, codec.Codec.encode v)
        | exception Control.Abort_tx _ ->
          Domain.cpu_relax ();
          go (n - 1)
    in
    go 64

  let make ~id ~codec v =
    let tv = Tvar.make v in
    register ~pid:id
      { re_replay = (fun s -> Tvar.unsafe_write tv (codec.Codec.decode s));
        re_snapshot = Some (snapshot_tvar tv codec) };
    Durable.register_encoder ~tvar_id:(Tvar.id tv) ~pid:id (fun o ->
        codec.Codec.encode (Obj.obj o));
    { pid = id; tv; codec }

  let tvar t = t.tv
  let id t = t.pid
  let value t = Tvar.peek t.tv
end

(* ------------------------------------------------------------------ *)
(* Enable / disable                                                    *)

let wal : Wal.t option ref = ref None

let append_staged w (st : Durable.staged) =
  Wal.append w (Wal.Update { wv = st.Durable.s_wv; entries = st.Durable.s_entries })

let enable ?(sync_every = 1) ?(sync_ns = 0) ~path () =
  if Option.is_some !wal then invalid_arg "Persist.enable: already enabled";
  let w = Wal.open_log ~path ~sync_every ~sync_ns in
  wal := Some w;
  Durable.commit_hook := append_staged w;
  Runtime.durability := true

let disable () =
  match !wal with
  | None -> ()
  | Some w ->
    Runtime.durability := false;
    Durable.commit_hook := (fun _ -> ());
    Wal.close w;
    wal := None

let is_enabled () = Option.is_some !wal

let with_wal f = match !wal with None -> invalid_arg "Persist: not enabled" | Some w -> f w

let sync () = with_wal Wal.sync
let wal_path () = with_wal Wal.path
let wal_sync_every () = with_wal Wal.sync_every
let wal_broken () = match !wal with None -> false | Some w -> Wal.broken w

let appended_records () =
  match !wal with None -> 0 | Some w -> Wal.appended_records w

let acked_records () =
  match !wal with None -> 0 | Some w -> Wal.synced_records w

let acked_wv () = match !wal with None -> 0 | Some w -> Wal.synced_wv w

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)

type summary = {
  records_intact : int;  (** intact records in the log, all types *)
  updates_intact : int;  (** intact update records (prefix durability) *)
  entries_applied : int;
  entries_skipped : int;
      (** unknown persistent id, or already covered by the checkpoint *)
  torn_bytes : int;  (** bytes past the last intact record *)
  truncated : bool;  (** a torn tail was cut off *)
  max_wv : int;  (** highest replayed commit version (clock catch-up) *)
  checkpointed : bool;  (** the log carried a checkpoint *)
}

let empty_summary =
  { records_intact = 0; updates_intact = 0; entries_applied = 0;
    entries_skipped = 0; torn_bytes = 0; truncated = false; max_wv = 0;
    checkpointed = false }

let find_entry pid = Hashtbl.find_opt registry pid

(* Replay a scanned log into the registered ptvars/replayers.

   Order: the *last* checkpoint seeds per-id base versions and values;
   update records then apply in ascending wv, and an entry lands only if
   its wv is strictly above its id's base — a snapshot taken at version v
   already contains every commit with wv <= v.  wv order extends the
   real dependency order under every clock policy (an update that read or
   overwrote another's write carries a strictly larger wv), so replaying
   in wv order reconstructs a state equivalent to the pre-crash history;
   ties are between independent commits, kept in file order. *)
let replay_scanned (sc : Wal.scanned) =
  let records = List.map snd sc.Wal.s_records in
  let applied = ref 0 and skipped = ref 0 in
  let base : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let ckpt =
    List.fold_left
      (fun acc r ->
        match r with
        | Wal.Checkpoint { entries; _ } -> Some entries
        | _ -> acc)
      None records
  in
  (match ckpt with
  | None -> ()
  | Some entries ->
    List.iter
      (fun (pid, version, bytes) ->
        Hashtbl.replace base pid version;
        match find_entry pid with
        | Some e ->
          e.re_replay bytes;
          incr applied
        | None -> incr skipped)
      entries);
  let updates =
    List.filter_map
      (function
        | Wal.Update { wv; entries } -> Some (wv, entries)
        | _ -> None)
      records
  in
  let updates =
    List.stable_sort (fun (a, _) (b, _) -> compare a b) updates
  in
  List.iter
    (fun (wv, entries) ->
      List.iter
        (fun (pid, bytes) ->
          let covered =
            match Hashtbl.find_opt base pid with
            | Some v -> wv <= v
            | None -> false
          in
          if covered then incr skipped
          else
            match find_entry pid with
            | Some e ->
              e.re_replay bytes;
              incr applied
            | None -> incr skipped)
        entries)
    updates;
  let max_wv = List.fold_left (fun a r -> max a (Wal.record_wv r)) 0 records in
  Clock.catch_up max_wv;
  { records_intact = List.length records;
    updates_intact = List.length updates;
    entries_applied = !applied;
    entries_skipped = !skipped;
    torn_bytes = sc.Wal.s_file_len - sc.Wal.s_good_end;
    truncated = false;
    max_wv;
    checkpointed = Option.is_some ckpt }

let recover ?(truncate = true) ~path () =
  if is_enabled () then
    invalid_arg "Persist.recover: disable the live log first";
  match Wal.scan path with
  | exception Sys_error _ -> empty_summary  (* no log: nothing to replay *)
  | sc ->
    let s = replay_scanned sc in
    let cut =
      truncate && sc.Wal.s_valid_header
      && sc.Wal.s_file_len > sc.Wal.s_good_end
    in
    if cut then Wal.truncate_tail path ~good_end:sc.Wal.s_good_end;
    { s with truncated = cut }

(* ------------------------------------------------------------------ *)
(* Checkpoint + compaction                                             *)

let checkpoint () =
  with_wal (fun w ->
      Wal.rotate w ~build:(fun old ->
          (* Snapshot every id that can be snapshotted; carry forward,
             verbatim and in order, the update entries of ids that can
             only be replayed (plain replayers have no committed value
             to snapshot, so dropping their records would lose them). *)
          let snaps = ref [] in
          reg_locked (fun () ->
              Hashtbl.iter
                (fun pid e ->
                  match e.re_snapshot with
                  | Some snap ->
                    let version, bytes = snap () in
                    snaps := (pid, version, bytes) :: !snaps
                  | None -> ())
                registry);
          let snaps = List.sort compare !snaps in
          let has_snap pid =
            match find_entry pid with
            | Some { re_snapshot = Some _; _ } -> true
            | _ -> false
          in
          let ckpt_wv =
            List.fold_left (fun a (_, v, _) -> max a v) 0 snaps
          in
          let carried =
            List.filter_map
              (function
                | Wal.Update { wv; entries } ->
                  (match
                     List.filter (fun (pid, _) -> not (has_snap pid)) entries
                   with
                  | [] -> None
                  | kept -> Some (Wal.Update { wv; entries = kept }))
                | Wal.Checkpoint _ -> None)
              old
          in
          Wal.Checkpoint { wv = ckpt_wv; entries = snaps } :: carried))

(* ------------------------------------------------------------------ *)
(* Test / restart isolation                                            *)

let reset_for_testing () =
  disable ();
  reg_locked (fun () -> Hashtbl.reset registry);
  Durable.reset_for_testing ()
