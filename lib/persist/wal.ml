(* The write-ahead log file: CRC32-framed records with group commit.

   On-disk layout:

     magic   8 bytes   "CRTXWAL1"
     frame*  4 bytes   payload length (u32 LE)
             4 bytes   CRC-32 over (length bytes ++ payload)
             payload

   payload:
     1 byte    record type: 1 = update, 2 = checkpoint
     8 bytes   commit version wv (u64 LE)
     4 bytes   entry count (u32 LE)
     entries   update:     { pid u32 | len u32 | bytes }
               checkpoint: { pid u32 | version u64 | len u32 | bytes }

   The CRC covers the length prefix, so a bit flip in the length cannot
   silently re-frame the stream; the payload decoder is additionally
   strict (known type byte, entries consume the payload exactly), so even
   a 2^-32 CRC collision cannot replay garbage — it degrades to a torn
   tail.

   Group commit: [append] is one buffer enqueue; the buffer is written
   and fsynced once [sync_every] records are pending (or [sync_ns] has
   elapsed since the last sync).  Acknowledged durability is what
   [synced_records] reports — everything else is a volatile buffer and
   dies with the process, which is exactly the window the crash-restart
   chaos lane measures.  With [sync_every <= 0] the log never fsyncs and
   only drains its buffer past a size threshold: the negative-control
   mode, expected to lose the committed tail on a kill.

   Writes go out in small chunks so that a SIGKILL landing mid-flush
   leaves a torn prefix of a frame — keeping the torn-tail recovery path
   reachable by the chaos lane, not only by fault injection. *)

let magic = "CRTXWAL1"
let header_len = String.length magic

(* Smallest payload: type + wv + count. *)
let min_payload = 13

(* Upper bound on one payload; anything larger is treated as torn. *)
let max_payload = 1 lsl 30

(* Buffer threshold that triggers an OS write (no fsync) in no-sync
   mode. *)
let nosync_flush_bytes = 1 lsl 16

(* Flush chunk size; see the header comment. *)
let chunk = 512

type record =
  | Update of { wv : int; entries : (int * string) list }
      (** one committed write set: (persistent id, serialized value) *)
  | Checkpoint of { wv : int; entries : (int * int * string) list }
      (** full snapshot: (persistent id, committed version, value) *)

let record_wv = function Update { wv; _ } | Checkpoint { wv; _ } -> wv

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)

let add_u32 b n = Buffer.add_int32_le b (Int32.of_int n)
let add_u64 b n = Buffer.add_int64_le b (Int64.of_int n)

let encode_payload r =
  let b = Buffer.create 64 in
  (match r with
  | Update { wv; entries } ->
    Buffer.add_char b '\001';
    add_u64 b wv;
    add_u32 b (List.length entries);
    List.iter
      (fun (pid, bytes) ->
        add_u32 b pid;
        add_u32 b (String.length bytes);
        Buffer.add_string b bytes)
      entries
  | Checkpoint { wv; entries } ->
    Buffer.add_char b '\002';
    add_u64 b wv;
    add_u32 b (List.length entries);
    List.iter
      (fun (pid, version, bytes) ->
        add_u32 b pid;
        add_u64 b version;
        add_u32 b (String.length bytes);
        Buffer.add_string b bytes)
      entries);
  Buffer.contents b

let add_frame buf payload =
  let len = String.length payload in
  let lb = Buffer.create 4 in
  add_u32 lb len;
  let len_bytes = Buffer.contents lb in
  let crc = Crc32.digest ~seed:(Crc32.string len_bytes) payload ~pos:0 ~len in
  Buffer.add_string buf len_bytes;
  add_u32 buf crc;
  Buffer.add_string buf payload

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)

(* Unsigned: [Int32.to_int] sign-extends, and a CRC (or length) with the
   top bit set must compare equal to the unsigned value the encoder
   produced. *)
let get_u32 s pos = Int32.to_int (String.get_int32_le s pos) land 0xFFFFFFFF
let get_u64 s pos = Int64.to_int (String.get_int64_le s pos)

(* Strict payload decoder: [None] on any structural violation, which the
   scanner treats as a torn record. *)
let decode_payload s ~pos ~len =
  let fin = pos + len in
  let entry_count = get_u32 s (pos + 9) in
  if entry_count < 0 || entry_count > len then None
  else
    match s.[pos] with
    | '\001' ->
      let wv = get_u64 s (pos + 1) in
      if wv < 0 then None
      else begin
        let p = ref (pos + 13) in
        let acc = ref [] in
        let ok = ref true in
        (try
           for _ = 1 to entry_count do
             if !p + 8 > fin then raise Exit;
             let pid = get_u32 s !p in
             let blen = get_u32 s (!p + 4) in
             if pid < 0 || blen < 0 || !p + 8 + blen > fin then raise Exit;
             acc := (pid, String.sub s (!p + 8) blen) :: !acc;
             p := !p + 8 + blen
           done
         with Exit -> ok := false);
        if !ok && !p = fin then Some (Update { wv; entries = List.rev !acc })
        else None
      end
    | '\002' ->
      let wv = get_u64 s (pos + 1) in
      if wv < 0 then None
      else begin
        let p = ref (pos + 13) in
        let acc = ref [] in
        let ok = ref true in
        (try
           for _ = 1 to entry_count do
             if !p + 16 > fin then raise Exit;
             let pid = get_u32 s !p in
             let version = get_u64 s (!p + 4) in
             let blen = get_u32 s (!p + 12) in
             if pid < 0 || version < 0 || blen < 0 || !p + 16 + blen > fin
             then raise Exit;
             acc := (pid, version, String.sub s (!p + 16) blen) :: !acc;
             p := !p + 16 + blen
           done
         with Exit -> ok := false);
        if !ok && !p = fin then Some (Checkpoint { wv; entries = List.rev !acc })
        else None
      end
    | _ -> None

(* ------------------------------------------------------------------ *)
(* Scanning                                                            *)

type scanned = {
  s_records : (int * record) list;  (** file offset of each intact frame *)
  s_good_end : int;  (** offset just past the last intact frame *)
  s_file_len : int;
  s_valid_header : bool;
}

let scan_string s =
  let len = String.length s in
  if len < header_len || String.sub s 0 header_len <> magic then
    { s_records = []; s_good_end = 0; s_file_len = len;
      s_valid_header = false }
  else begin
    let records = ref [] in
    let pos = ref header_len in
    let stop = ref false in
    while not !stop do
      let p = !pos in
      if p + 8 > len then stop := true
      else begin
        let rlen = get_u32 s p in
        if rlen < min_payload || rlen > max_payload || p + 8 + rlen > len
        then stop := true
        else begin
          let crc = get_u32 s (p + 4) in
          let computed =
            Crc32.digest
              ~seed:(Crc32.digest s ~pos:p ~len:4)
              s ~pos:(p + 8) ~len:rlen
          in
          if computed <> crc then stop := true
          else
            match decode_payload s ~pos:(p + 8) ~len:rlen with
            | None -> stop := true
            | Some r ->
              records := (p, r) :: !records;
              pos := p + 8 + rlen
        end
      end
    done;
    { s_records = List.rev !records; s_good_end = !pos; s_file_len = len;
      s_valid_header = true }
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let scan path = scan_string (read_file path)

let truncate_tail path ~good_end =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () -> Unix.ftruncate fd good_end)

(* ------------------------------------------------------------------ *)
(* The writer                                                          *)

type t = {
  path : string;
  mutable fd : Unix.file_descr;
  mu : Mutex.t;
  buf : Buffer.t;  (* framed records not yet handed to write(2) *)
  mutable buf_records : int;
  mutable buf_wv : int;  (* max wv among buffered records *)
  mutable appended_records : int;  (* total enqueued since open/rotate *)
  mutable written_records : int;  (* handed to the OS *)
  mutable written_wv : int;
  mutable synced_records : int;  (* covered by a completed fsync *)
  mutable synced_wv : int;
  mutable last_sync : int64;  (* Mclock stamp of the last flush decision *)
  mutable broken : bool;  (* poisoned: all further appends are dropped *)
  sync_every : int;  (* fsync once this many records are pending; <= 0:
                        never fsync (negative-control mode) *)
  sync_ns : int;  (* also fsync once this much time has passed; 0: off *)
}

let open_log ~path ~sync_every ~sync_ns =
  let existing = Sys.file_exists path && (Unix.stat path).Unix.st_size > 0 in
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  if not existing then begin
    ignore (Unix.write_substring fd magic 0 header_len);
    Unix.fsync fd
  end;
  { path; fd; mu = Mutex.create (); buf = Buffer.create 4096;
    buf_records = 0; buf_wv = 0; appended_records = 0; written_records = 0;
    written_wv = 0; synced_records = 0; synced_wv = 0;
    last_sync = Stm_core.Mclock.now_ns (); broken = false; sync_every;
    sync_ns }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let rec write_all fd s pos len =
  if len > 0 then begin
    let n = Unix.write_substring fd s pos (min chunk len) in
    write_all fd s (pos + n) (len - n)
  end

(* Write the buffer out (in chunks) and optionally fsync.  IO errors
   poison the log rather than escape: the hook that calls this runs
   inside committed user code, which must never observe a WAL failure as
   an exception.  Poisoning is visible through [broken] and the
   acknowledged counters simply stop advancing. *)
let flush_locked t ~sync =
  if not t.broken then begin
    (try
       if Buffer.length t.buf > 0 then begin
         let data = Buffer.contents t.buf in
         if Stm_core.Faults.inject_short_write () then begin
           t.broken <- true;
           Stm_core.Stats.record_wal_short_write ();
           write_all t.fd data 0 (String.length data / 2)
         end
         else begin
           write_all t.fd data 0 (String.length data);
           t.written_records <- t.written_records + t.buf_records;
           if t.buf_wv > t.written_wv then t.written_wv <- t.buf_wv
         end;
         Buffer.clear t.buf;
         t.buf_records <- 0;
         t.buf_wv <- 0
       end;
       if sync && not t.broken then begin
         if Stm_core.Faults.inject_fsync_fail () then
           Stm_core.Stats.record_wal_sync_failure ()
         else begin
           Unix.fsync t.fd;
           t.synced_records <- t.written_records;
           t.synced_wv <- t.written_wv;
           Stm_core.Stats.record_wal_sync ()
         end
       end
     with Unix.Unix_error _ | Sys_error _ -> t.broken <- true);
    t.last_sync <- Stm_core.Mclock.now_ns ()
  end

let maybe_flush_locked t =
  if t.sync_every > 0 then begin
    if
      t.appended_records - t.synced_records >= t.sync_every
      || (t.sync_ns > 0
          && Stm_core.Mclock.elapsed_ns t.last_sync >= t.sync_ns)
    then flush_locked t ~sync:true
  end
  else if Buffer.length t.buf >= nosync_flush_bytes then
    flush_locked t ~sync:false

let append t r =
  locked t (fun () ->
      if not t.broken then begin
        add_frame t.buf (encode_payload r);
        t.appended_records <- t.appended_records + 1;
        t.buf_records <- t.buf_records + 1;
        let wv = record_wv r in
        if wv > t.buf_wv then t.buf_wv <- wv;
        Stm_core.Stats.record_wal_append ();
        maybe_flush_locked t
      end)

let sync t = locked t (fun () -> flush_locked t ~sync:true)

let close t =
  locked t (fun () ->
      flush_locked t ~sync:(t.sync_every > 0);
      try Unix.close t.fd with Unix.Unix_error _ -> ())

(* Atomic log rotation (checkpoint + compaction).  Under the append
   mutex: drain the buffer into the old file, hand its intact records to
   [build] (which returns the new file's contents, typically a checkpoint
   record plus whatever must be carried forward), write them to a
   sibling temp file, fsync it, rename over the log and fsync the
   directory.  A crash at any point leaves either the complete old log
   or the complete new one — rename(2) is the commit point. *)
let rotate t ~build =
  locked t (fun () ->
      flush_locked t ~sync:false;
      if not t.broken then begin
        let old = scan t.path in
        let records = build (List.map snd old.s_records) in
        let tmp = t.path ^ ".ckpt" in
        let tfd =
          Unix.openfile tmp
            [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
            0o644
        in
        let b = Buffer.create 4096 in
        Buffer.add_string b magic;
        List.iter (fun r -> add_frame b (encode_payload r)) records;
        let data = Buffer.contents b in
        (try
           write_all tfd data 0 (String.length data);
           Unix.fsync tfd;
           Unix.close tfd;
           Unix.rename tmp t.path;
           (* Persist the rename itself. *)
           (try
              let dfd =
                Unix.openfile (Filename.dirname t.path) [ Unix.O_RDONLY ] 0
              in
              (try Unix.fsync dfd with Unix.Unix_error _ -> ());
              Unix.close dfd
            with Unix.Unix_error _ -> ());
           let nfd =
             Unix.openfile t.path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644
           in
           let ofd = t.fd in
           t.fd <- nfd;
           (try Unix.close ofd with Unix.Unix_error _ -> ());
           let n = List.length records in
           let wv = List.fold_left (fun a r -> max a (record_wv r)) 0 records in
           t.appended_records <- n;
           t.written_records <- n;
           t.written_wv <- wv;
           t.synced_records <- n;
           t.synced_wv <- wv;
           Buffer.clear t.buf;
           t.buf_records <- 0;
           t.buf_wv <- 0
         with Unix.Unix_error _ | Sys_error _ -> t.broken <- true)
      end)

let path t = t.path
let sync_every t = t.sync_every
let broken t = t.broken
let appended_records t = t.appended_records
let synced_records t = locked t (fun () -> t.synced_records)
let synced_wv t = locked t (fun () -> t.synced_wv)
