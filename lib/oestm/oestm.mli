(** OE-STM — elastic transactions with outheritance (the paper's Section V).

    See the implementation header for the full design discussion.  The
    essentials:

    - [Elastic] transactions keep a two-read sliding window over their
      read-only prefix, ignoring conflicts on everything older (the
      elastic relaxation of Felber et al., DISC'09); from the first write
      on, the window is promoted into the protected read set and every
      further access is tracked.
    - Nested transactions either {e outherit} — pass their protected sets
      to the parent at commit, Fig. 4 of the paper — or {e drop} them,
      which reproduces the broken composition of Fig. 1 and is kept as an
      executable counterexample. *)

type nesting =
  | Outherit  (** child passes read set, window and writes to its parent *)
  | Drop      (** child conflict information is discarded at child commit *)

module type CONFIG = sig
  val name : string
  val nesting : nesting

  val window_size : int
  (** Number of most-recent reads an elastic transaction keeps mutually
      validated before its first write.  2 (the default instances) is what
      linked-structure updates require; 1 is the ablation that loses
      updates on chain unlinks (kept for the regression test). *)
end

(** {!Stm_core.Stm_intf.S} extended with DSTM-style early release
    (Section II.A: the protection element of a location can be released
    before commit by an explicit call; the caller takes responsibility
    that its postcondition no longer depends on the location). *)
module type S_EXT = sig
  include Stm_core.Stm_intf.S

  val release : ctx -> 'a tvar -> unit
  (** Drop every tracked read of the variable from the running
      transaction: later conflicts on it no longer abort this
      transaction.  Writes are unaffected. *)
end

module Make (C : CONFIG) : S_EXT with type 'a tvar = 'a Stm_core.Tvar.t

(** The paper's OE-STM: elastic transactions that compose. *)
module Oe : S_EXT with type 'a tvar = 'a Stm_core.Tvar.t

(** Elastic transactions composed without outheritance — the broken
    composition of Fig. 1, kept as an executable counterexample. *)
module E_broken : S_EXT with type 'a tvar = 'a Stm_core.Tvar.t

(** Ablation: a one-read window ("the immediate past read", read
    literally).  Unsafe for chain updates; see [test/test_ablation.ml]. *)
module Oe_window1 : S_EXT with type 'a tvar = 'a Stm_core.Tvar.t
