(** OE-STM — the paper's contribution (Section V).

    The engine implements the elastic transaction model of Felber, Gramoli
    and Guerraoui (DISC'09): an [Elastic] transaction keeps only a short
    sliding window of its most recent reads while it has not written, so
    conflicts on the read-only prefix of a traversal are ignored; from the
    first write on, every access is tracked and validated at commit
    together with the window contents at the moment of the write.
    [Regular] transactions track everything with TL2/LSA-style snapshot
    validation.

    The window spans the last {e two} reads, which is what
    linked-structure updates need: an unlink reads the predecessor cell,
    then the successor cell, then writes the predecessor — both reads must
    still be valid at commit or a concurrent insertion between them is
    silently overwritten (a lost update this repository's move/rebalance
    example catches immediately with a size-1 window).

    Nested transactions are where implementations differ, and this module is
    parameterised by the {!nesting} policy:

    - {!Outherit} — the child passes its read set, its last-read entry and
      its write set to the parent at commit (Fig. 4 of the paper), so the
      parent keeps detecting conflicts on everything the child protected
      until the parent itself commits.  This satisfies outheritance and
      therefore weak composability (Theorems 4.3 and 4.4).
    - {!Drop} — the child's conflict information is discarded when it
      commits, which is what composing elastic transactions naively does
      (Fig. 1); the resulting STM admits non-atomic compositions, and the
      test suite demonstrates it by exhaustive interleaving exploration.

    One deliberate difference with the original E-STM: a child's writes are
    kept pending in the (shared) top-level write set until the top-level
    commit rather than being installed at child commit.  This is required
    for the parent's isolation either way, and it only makes the [Drop]
    instance {e more} protective than real E-STM — the composition
    violations it exhibits come purely from the dropped read information,
    exactly the phenomenon the paper describes. *)

open Stm_core

type nesting = Outherit | Drop

module type CONFIG = sig
  val name : string
  val nesting : nesting

  val window_size : int
  (** Number of most-recent reads an elastic transaction keeps mutually
      validated before its first write.  2 (the default instances) is what
      linked-structure updates require; 1 is the ablation that loses
      updates on chain unlinks (kept for the regression test). *)
end

module type S_EXT = sig
  include Stm_intf.S

  val release : ctx -> 'a tvar -> unit
end

module Make (C : CONFIG) : S_EXT with type 'a tvar = 'a Tvar.t = struct
  let name = C.name

  type 'a tvar = 'a Tvar.t

  (* State shared by every nesting level of one top-level attempt. *)
  type root = {
    root_tx : int;           (* lock owner id for this attempt *)
    wset : Rwsets.Wset.t;    (* shared: children's writes stay pending *)
    mutable rv : int;        (* snapshot validity watermark *)
    rec_state : Txrec.t option;
  }

  type ctx = {
    tx_id : int;
    mode : Stm_intf.mode;
    root : root;
    parent : ctx option;
    rset_snap : Rwsets.Rset.t;
        (* reads validated against [rv] when made (regular mode and
           post-write elastic reads); consistent as a snapshot *)
    rset_prot : Rwsets.Rset.t;
        (* protected elastic entries: window entries promoted at the first
           write or outherited from children; validated at commit *)
    mutable w0 : Rwsets.rentry option;  (* most recent elastic read *)
    mutable w1 : Rwsets.rentry option;  (* second most recent, unused when
                                           [C.window_size] is 1 *)
    mutable written : bool;
  }

  let keep_two = C.window_size >= 2

  let stats = Stats.create ()

  let current : ctx option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

  let () =
    Runtime.register_tls
      ~save:(fun () -> Obj.repr (Domain.DLS.get current))
      ~restore:(fun o -> Domain.DLS.set current (Obj.obj o : ctx option))

  let tvar = Tvar.make
  let peek = Tvar.peek
  [@@txlint.allow "stm-escape"
       "re-export of the quiescent escape hatch; callers are linted at \
        their own sites"]

  let unsafe_write = Tvar.unsafe_write
  [@@txlint.allow "stm-escape"
       "re-export of the quiescent escape hatch; callers are linted at \
        their own sites"]
  let tvar_id = Tvar.id
  let in_transaction () = Option.is_some (Domain.DLS.get current)

  let entry_valid ~owner = function
    | None -> true
    | Some e -> Rwsets.rentry_valid ~owner e

  let window_valid ~owner ctx =
    entry_valid ~owner ctx.w0 && entry_valid ~owner ctx.w1

  (* Every tracked observation of this level and its ancestors is still
     valid.  Committed children have already merged their sets into their
     parent, so walking the parent chain covers the whole transaction. *)
  let rec validate_levels ~owner ctx =
    Rwsets.Rset.validate ctx.rset_snap ~owner
    && Rwsets.Rset.validate ctx.rset_prot ~owner
    && window_valid ~owner ctx
    && (match ctx.parent with None -> true | Some p -> validate_levels ~owner p)

  let rec validate_protected ~owner ctx =
    Rwsets.Rset.validate ctx.rset_prot ~owner
    && window_valid ~owner ctx
    && (match ctx.parent with
       | None -> true
       | Some p -> validate_protected ~owner p)

  (* Suffix-only variant for the sanitizer's per-read strict-opacity check:
     [rv] is unchanged between successful validations at reads, so only the
     entries appended since need checking (see DESIGN.md 5g).  Extension
     and commit use the full [validate_levels]. *)
  let rec validate_levels_new ~owner ctx =
    Rwsets.Rset.validate_new ctx.rset_snap ~owner
    && Rwsets.Rset.validate_new ctx.rset_prot ~owner
    && window_valid ~owner ctx
    && (match ctx.parent with
       | None -> true
       | Some p -> validate_levels_new ~owner p)

  let rec protected_is_empty ctx =
    Rwsets.Rset.is_empty ctx.rset_prot
    && (match ctx.parent with None -> true | Some p -> protected_is_empty p)

  (* Entries examined by the innermost level's latest validation — a lower
     bound of the whole-chain scan, exact for unnested transactions. *)
  let record_scan ctx =
    if Stats.detailed_enabled () then
      Stats.record_validation_len stats
        (Rwsets.Rset.last_scan ctx.rset_snap
        + Rwsets.Rset.last_scan ctx.rset_prot)

  let extend_or_abort ctx =
    let owner = ctx.root.root_tx in
    let now = Clock.now () in
    let ok = validate_levels ~owner ctx in
    record_scan ctx;
    if ok then ctx.root.rv <- now else Control.abort_tx Control.Read_too_new

  let read : type a. ctx -> a tvar -> a =
   fun ctx tv ->
    Runtime.schedule_point_on (Runtime.Read (Tvar.id tv));
    match Rwsets.Wset.find ctx.root.wset tv with
    | Some v ->
      if Stats.detailed_enabled () then Stats.record_read_ws_hit stats;
      Txrec.read ctx.root.rec_state ~tx:ctx.tx_id ~pe:(Tvar.id tv)
        ~repr:(Recorder.repr_of_value v);
      v
    | None ->
      if Stats.detailed_enabled () then Stats.record_read_ws_miss stats;
      let s, v = Tvar.read_consistent tv in
      let pe = Tvar.id tv in
      let entry = { Rwsets.r_lock = tv.Tvar.lock; r_seen = s; r_pe = pe } in
      let owner = ctx.root.root_tx in
      if ctx.mode = Elastic && not ctx.written then begin
        (* Elastic prefix: the new read must be mutually atomic with the
           reads still in the window; anything older is forgotten (the
           relaxation). *)
        if not (window_valid ~owner ctx) then
          Control.abort_tx Control.Window_invalid;
        Txrec.acquire ctx.root.rec_state ~pe;
        if keep_two then begin
          (match ctx.w1 with
          | Some dropped ->
            Txrec.release ctx.root.rec_state ~pe:dropped.Rwsets.r_pe
          | None -> ());
          ctx.w1 <- ctx.w0
        end
        else
          (match ctx.w0 with
          | Some dropped ->
            Txrec.release ctx.root.rec_state ~pe:dropped.Rwsets.r_pe
          | None -> ());
        ctx.w0 <- Some entry
      end
      else begin
        if Vlock.version_of s > ctx.root.rv then extend_or_abort ctx;
        Txrec.acquire ctx.root.rec_state ~pe;
        Rwsets.Rset.push ctx.rset_snap entry
      end;
      (* Sanitizer strict-opacity mode: revalidate everything this
         transaction still tracks (window included) at every read, so
         inconsistent snapshots abort here rather than at commit.  [rv] is
         unchanged since the last success, so the suffix scan suffices. *)
      if !Runtime.sanitizer then
        Sanitizer.on_tx_read ~validate:(fun () ->
            let ok = validate_levels_new ~owner ctx in
            record_scan ctx;
            ok);
      Txrec.read ctx.root.rec_state ~tx:ctx.tx_id ~pe
        ~repr:(Recorder.repr_of_value v);
      v

  let write : type a. ctx -> a tvar -> a -> unit =
   fun ctx tv v ->
    Runtime.schedule_point_on (Runtime.Write (Tvar.id tv));
    let pe = Tvar.id tv in
    if not ctx.written then begin
      ctx.written <- true;
      (* Promote the window: from the first write on its reads belong to
         the minimal protected set (Section V: Pmin = {r_k, ..., r_n}). *)
      Option.iter (Rwsets.Rset.push ctx.rset_prot) ctx.w1;
      Option.iter (Rwsets.Rset.push ctx.rset_prot) ctx.w0;
      ctx.w0 <- None;
      ctx.w1 <- None
    end;
    let first = Rwsets.Wset.add ctx.root.wset tv v in
    if first then Txrec.acquire ctx.root.rec_state ~pe;
    Txrec.write ctx.root.rec_state ~tx:ctx.tx_id ~pe
      ~repr:(Recorder.repr_of_value v)

  (* DSTM-style early release (Section II.A of the paper: "the protection
     element is released when the release operation of the transactional
     memory is called").  Drops every tracked read of [tv] from the running
     transaction — all nesting levels — so later conflicts on it are
     ignored.  The caller asserts that its postcondition no longer depends
     on the location; misuse trades atomicity for concurrency exactly as
     in DSTM. *)
  let release : type a. ctx -> a tvar -> unit =
   fun ctx tv ->
    let pe = Tvar.id tv in
    let rec walk level =
      let dropped =
        Rwsets.Rset.filter_pe level.rset_snap ~pe
        + Rwsets.Rset.filter_pe level.rset_prot ~pe
      in
      let dropped = ref dropped in
      (match level.w0 with
      | Some e when e.Rwsets.r_pe = pe ->
        level.w0 <- None;
        incr dropped
      | _ -> ());
      (match level.w1 with
      | Some e when e.Rwsets.r_pe = pe ->
        level.w1 <- None;
        incr dropped
      | _ -> ());
      for _ = 1 to !dropped do
        Txrec.release ctx.root.rec_state ~pe
      done;
      match level.parent with None -> () | Some p -> walk p
    in
    walk ctx

  (* Child commit, part 1 (before the commit event): with [Drop], the child
     validates itself at its own commit, as E-STM does. *)
  let validate_child child =
    match C.nesting with
    | Outherit -> ()
    | Drop ->
      let owner = child.root.root_tx in
      if
        not
          (Rwsets.Rset.validate child.rset_snap ~owner
          && Rwsets.Rset.validate child.rset_prot ~owner
          && window_valid ~owner child)
      then Control.abort_tx Control.Validation_failed

  (* Child commit, part 2 (after the commit event): outherit the protected
     set to the parent, or drop it (releasing the protection elements — the
     composition-breaking behaviour of Fig. 1). *)
  let close_child ~parent child =
    match C.nesting with
    | Outherit ->
      Rwsets.Rset.append_into ~src:child.rset_snap ~dst:parent.rset_snap;
      Rwsets.Rset.append_into ~src:child.rset_prot ~dst:parent.rset_prot;
      Option.iter (Rwsets.Rset.push parent.rset_prot) child.w1;
      Option.iter (Rwsets.Rset.push parent.rset_prot) child.w0;
      if child.written && not parent.written then begin
        parent.written <- true;
        Option.iter (Rwsets.Rset.push parent.rset_prot) parent.w1;
        Option.iter (Rwsets.Rset.push parent.rset_prot) parent.w0;
        parent.w0 <- None;
        parent.w1 <- None
      end
    | Drop ->
      let release (e : Rwsets.rentry) =
        Txrec.release child.root.rec_state ~pe:e.Rwsets.r_pe
      in
      Rwsets.Rset.iter release child.rset_snap;
      Rwsets.Rset.iter release child.rset_prot;
      Option.iter release child.w1;
      Option.iter release child.w0

  let commit_root ctx =
    Runtime.schedule_point ();
    (* Serial-irrevocable gate: while another process holds the fallback
       token, no one else may commit.  Abort (not block): blocking here
       would keep our write locks held and deadlock the token holder. *)
    if not (Runtime.Serial.commit_allowed ()) then
      Control.abort_tx Control.Killed;
    if !Runtime.recovery then Recovery.check_poisoned ();
    let owner = ctx.root.root_tx in
    if Rwsets.Wset.is_empty ctx.root.wset then begin
      (* Read-only.  A lone elastic transaction needs no commit validation
         (it serialised at its last read); only outherited protected sets
         must still hold, so that composed children appear adjacent. *)
      if not (protected_is_empty ctx) && not (validate_protected ~owner ctx)
      then Control.abort_tx Control.Validation_failed
    end
    else begin
      if not (Rwsets.Wset.lock_all ctx.root.wset ~owner) then
        Control.abort_tx Control.Lock_contention;
      let wv =
        Clock.tick ~floor:(fun () -> Rwsets.Wset.max_version ctx.root.wset) ()
      in
      let ok = validate_levels ~owner ctx in
      record_scan ctx;
      if not ok then begin
        Rwsets.Wset.unlock_all_restore ctx.root.wset;
        Control.abort_tx Control.Validation_failed
      end;
      if !Runtime.sanitizer then begin
        let rec iter_levels f level =
          Rwsets.Rset.iter f level.rset_snap;
          Rwsets.Rset.iter f level.rset_prot;
          Option.iter f level.w0;
          Option.iter f level.w1;
          match level.parent with None -> () | Some p -> iter_levels f p
        in
        Sanitizer.on_commit ~owner ~wv (fun f -> iter_levels f ctx)
      end;
      (* Last poison check while the locks are still held: a doomed victim
         must abort here, before installing over a stolen lock. *)
      if !Runtime.recovery then begin
        try Recovery.check_poisoned ()
        with e ->
          Rwsets.Wset.unlock_all_restore ctx.root.wset;
          raise e
      end;
      Rwsets.Wset.install_and_unlock ctx.root.wset ~wv;
      (* Post-install: stage the durable entries for the WAL.  Retry_loop
         fires the record once this attempt's outcome is a definitive
         commit, and discards it if anything below still aborts. *)
      if !Runtime.durability then
        Durable.stage ~wv (Rwsets.Wset.capture_durable ctx.root.wset)
    end;
    Txrec.commit_tx ctx.root.rec_state ~tx:ctx.tx_id;
    Txrec.release_remaining ctx.root.rec_state

  let run_nested parent mode f =
    let child =
      { tx_id = Runtime.fresh_tx_id (); mode; root = parent.root;
        parent = Some parent; rset_snap = Rwsets.Rset.create ();
        rset_prot = Rwsets.Rset.create (); w0 = None; w1 = None;
        written = false }
    in
    Txrec.begin_tx child.root.rec_state ~tx:child.tx_id;
    Domain.DLS.set current (Some child);
    match f child with
    | result ->
      validate_child child;
      Txrec.commit_tx child.root.rec_state ~tx:child.tx_id;
      close_child ~parent child;
      Domain.DLS.set current (Some parent);
      result
    | exception e ->
      (* Aborts unwind to the top-level retry loop (flat nesting). *)
      Domain.DLS.set current (Some parent);
      raise e

  (* Per-domain scratch sets reused across toplevel transactions (nested
     levels still allocate fresh per-level sets — they are short-lived and
     merged away at child commit).  Simulated runs allocate fresh sets:
     one domain multiplexes many logical processes there, which must not
     share mutable state. *)
  type scratch = {
    s_wset : Rwsets.Wset.t;
    s_snap : Rwsets.Rset.t;
    s_prot : Rwsets.Rset.t;
  }

  let scratch : scratch Domain.DLS.key =
    Domain.DLS.new_key (fun () ->
        { s_wset = Rwsets.Wset.create (); s_snap = Rwsets.Rset.create ();
          s_prot = Rwsets.Rset.create () })

  let fresh_sets () =
    if !Runtime.simulated then
      (Rwsets.Wset.create (), Rwsets.Rset.create (), Rwsets.Rset.create ())
    else begin
      let s = Domain.DLS.get scratch in
      Rwsets.Wset.clear s.s_wset;
      Rwsets.Rset.clear s.s_snap;
      Rwsets.Rset.clear s.s_prot;
      (s.s_wset, s.s_snap, s.s_prot)
    end

  let run_toplevel mode f =
    Retry_loop.run ~stats (fun ~attempt:_ ->
        let root_tx = Runtime.fresh_tx_id () in
        let wset, rset_snap, rset_prot = fresh_sets () in
        let root =
          { root_tx; wset; rv = Clock.now (); rec_state = Txrec.create () }
        in
        let ctx =
          { tx_id = root_tx; mode; root; parent = None; rset_snap; rset_prot;
            w0 = None; w1 = None; written = false }
        in
        Domain.DLS.set current (Some ctx);
        if !Runtime.recovery then Registry.publish ~owner:root_tx;
        if !Runtime.sanitizer then Sanitizer.tx_begin ~owner:root_tx;
        Txrec.begin_tx root.rec_state ~tx:root_tx;
        (* The commit itself can abort, so it must run inside the cleanup
           handler, not in the success branch of a match on [f ctx]. *)
        try
          let result = f ctx in
          (commit_root ctx
           [@txlint.allow "tx-escape"
               "the engine's attempt thunk commits here: installing the \
                write set via unsafe_write under the write locks is the \
                one sanctioned escape"]);
          if Stats.detailed_enabled () then begin
            (* Committed children have merged their sets into the root, so
               the root's sets are the whole transaction's footprint.  The
               elastic window holds at most two more tracked reads. *)
            let window =
              (match ctx.w0 with Some _ -> 1 | None -> 0)
              + match ctx.w1 with Some _ -> 1 | None -> 0
            in
            Stats.record_rwset_sizes stats
              ~reads:
                (Rwsets.Rset.length ctx.rset_snap
                + Rwsets.Rset.length ctx.rset_prot
                + window)
              ~writes:(Rwsets.Wset.size root.wset)
          end;
          if !Runtime.sanitizer then Sanitizer.tx_end ~owner:root_tx;
          if !Runtime.recovery then Registry.clear ();
          Domain.DLS.set current None;
          result
        with
        | Control.Crashed as e ->
          (* Simulated domain death: leave held locks for recovery to
             reclaim; mark the registry slot dead. *)
          Rwsets.Wset.forget_locks root.wset;
          if !Runtime.recovery then Registry.mark_crashed ();
          if !Runtime.sanitizer then Sanitizer.tx_crashed ~owner:root_tx;
          Domain.DLS.set current None;
          raise e
        | e ->
          Rwsets.Wset.unlock_all_restore root.wset;
          Txrec.abort_open root.rec_state;
          if !Runtime.sanitizer then Sanitizer.tx_end ~owner:root_tx;
          if !Runtime.recovery then Registry.clear ();
          Domain.DLS.set current None;
          raise e)

  let atomic ?(mode = Stm_intf.Regular) f =
    match Domain.DLS.get current with
    | Some parent -> run_nested parent mode f
    | None -> run_toplevel mode f
end

(** The paper's OE-STM: elastic transactions that compose. *)
module Oe = Make (struct
  let name = "OE-STM"
  let nesting = Outherit
  let window_size = 2
end)

(** Elastic transactions composed without outheritance — the broken
    composition of Fig. 1, kept as an executable counterexample. *)
module E_broken = Make (struct
  let name = "E-STM(drop)"
  let nesting = Drop
  let window_size = 2
end)

(** Ablation: a one-read window.  Unsafe for chain updates (an unlink's
    predecessor read escapes validation — see the module comment); the
    test suite demonstrates the lost update by exhaustive exploration. *)
module Oe_window1 = Make (struct
  let name = "OE-STM(w1)"
  let nesting = Outherit
  let window_size = 1
end)
