(* Call extraction and best-effort resolution over the symbol index, plus
   the shared AST predicates the checks are built from (catch-all
   patterns, crash patterns, the re-raiser allowlist).

   Resolution is deliberately conservative in both directions
   (DESIGN.md §5i): a mention that cannot be resolved contributes no
   edge — unless its final name is itself one of the dangerous
   primitives (escape hatches, lock acquires), in which case the
   *caller's* local scan already treats it as the effect.  Passing a
   function as a value counts as a call: every [Pexp_ident] mention in a
   body is an edge candidate, so storing a closure that escapes and
   invoking it later are the same to the summary fixpoint. *)

type mention = { m_path : string list; m_loc : Location.t }

(* Every identifier mention in an expression, in source order.  Field
   projections, record labels and constructors are not [Pexp_ident]s, so
   [Tvar.value <- ...] does not count as a call to [Tvar]. *)
let mentions (body : Parsetree.expression) : mention list =
  let acc = ref [] in
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; loc } -> (
            match Index.flatten_lid txt with
            | Some p -> acc := { m_path = p; m_loc = loc } :: !acc
            | None -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  iter.expr iter body;
  List.rev !acc

(* --- resolution ------------------------------------------------------- *)

let rec drop_prefixes = function
  | [] | [ _ ] -> []
  | p -> p :: drop_prefixes (List.tl p)

let rec prefixes = function
  | [] -> [ [] ]
  | _ :: _ as p ->
    p :: prefixes (List.rev (List.tl (List.rev p)))

(* Resolve a mention to index entries.  [scope] is the module path of
   the body the mention appears in (entry path minus the value name);
   [file] supplies the opened modules.  Fuel bounds alias chains, so a
   cyclic alias pair resolves to nothing instead of looping. *)
let resolve (idx : Index.t) ~file ~scope (path : string list) :
    Index.entry list =
  let rec go fuel ~file ~scope path =
    if fuel <= 0 || path = [] then []
    else
      let direct =
        match path with
        | [ n ] ->
          (* Bare name: innermost enclosing module first, then the
             file's opens, then any same-file entry of that name
             (nested modules the scope walk cannot see). *)
          let rec first = function
            | [] -> []
            | sc :: rest -> (
              match Index.find_key idx (Index.join (sc @ [ n ])) with
              | [] -> first rest
              | ids -> ids)
          in
          let ids = first (prefixes scope) in
          let ids =
            if ids <> [] then ids
            else
              List.concat_map
                (fun o -> Index.find_key idx (Index.join (o @ [ n ])))
                (Index.opens_of_file idx file)
          in
          if ids <> [] then ids
          else
            List.filter_map
              (fun (e : Index.entry) ->
                if e.name = n && not e.anon then Some e.id else None)
              (Index.entries_of_file idx file)
        | _ -> (
          (* Qualified: exact key, else progressively drop leading
             components ("Stm_core.Runtime.Serial.enter" ->
             "Serial.enter"). *)
          match
            List.concat_map
              (fun p -> Index.find_key idx (Index.join p))
              (drop_prefixes path)
          with
          | [] -> []
          | ids -> ids)
      in
      if direct <> [] then
        List.map (Index.entry idx)
          (List.sort_uniq compare direct)
      else
        (* Alias step: expand the head component(s) of the path through
           recorded module aliases, preferring an alias declared in the
           current scope; the target re-resolves in the scope the alias
           was declared in ([Make] inside [Classic_stm]). *)
        match path with
        | [] | [ _ ] -> []
        | head :: rest ->
          let alias_of k =
            let rec first = function
              | [] -> Hashtbl.find_opt idx.Index.aliases k
              | sc :: tl -> (
                match
                  Hashtbl.find_opt idx.Index.aliases
                    (Index.join (sc @ [ k ]))
                with
                | Some a -> Some a
                | None -> first tl)
            in
            first (prefixes scope)
          in
          let two =
            match rest with
            | r1 :: r2 ->
              Option.map
                (fun a -> (a, r2))
                (alias_of (Index.join [ head; r1 ]))
            | [] -> None
          in
          let one = Option.map (fun a -> (a, rest)) (alias_of head) in
          (match (two, one) with
          | Some (a, tail), _ | None, Some (a, tail) ->
            go (fuel - 1) ~file:a.Index.a_file ~scope:a.Index.a_scope
              (a.Index.a_target @ tail)
          | None, None -> [])
  in
  go 8 ~file ~scope path

(* --- shared AST predicates ------------------------------------------- *)

(* A pattern that matches every exception: _, a variable, or built from
   such by alias/or/constraint/open. *)
let rec pattern_is_catch_all (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_alias (p, _) | Ppat_constraint (p, _) | Ppat_open (_, p) ->
    pattern_is_catch_all p
  | Ppat_or (a, b) -> pattern_is_catch_all a || pattern_is_catch_all b
  | _ -> false

(* A pattern naming one of the raise-at-point fault exceptions
   ([Control.Crashed], [Faults.Injected_failure]).  Handlers matching
   these without re-raising defeat the crash simulation: engines rely on
   the exception unwinding all the way out so orphaned locks stay
   orphaned. *)
let crash_exn_names = [ "Crashed"; "Injected_failure" ]

let rec pattern_mentions_crash (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_construct ({ txt; _ }, _) -> (
    match txt with
    | Lident n | Ldot (_, n) -> List.mem n crash_exn_names
    | _ -> false)
  | Ppat_alias (p, _) | Ppat_constraint (p, _) | Ppat_open (_, p)
  | Ppat_exception p ->
    pattern_mentions_crash p
  | Ppat_or (a, b) -> pattern_mentions_crash a || pattern_mentions_crash b
  | _ -> false

(* Does the handler body syntactically re-raise?  The accepted raisers
   are a *named* allowlist: the stdlib raisers (bare or [Stdlib.]-
   qualified), this repo's [Control.abort_tx], and [Alcotest.fail]/
   [failf].  Any other module's [fail]/[failf]/[raise] lookalike — a
   logging [Log.fail], a monadic [Lwt.fail] — does NOT count, and
   neither does [exit]: terminating the process is not propagating the
   abort.  [assert] is accepted ([Assert_failure] propagates). *)
let is_raiser (lid : Longident.t) =
  match Index.flatten_lid lid with
  | Some [ ("raise" | "raise_notrace" | "raise_with_backtrace"
          | "failwith" | "invalid_arg") ] ->
    true
  | Some p -> (
    match
      (* last two components *)
      match List.rev p with
      | a :: b :: _ -> [ b; a ]
      | _ -> []
    with
    | [ "Stdlib";
        ( "raise" | "raise_notrace" | "raise_with_backtrace" | "failwith"
        | "invalid_arg" ) ] ->
      true
    | [ "Control"; "abort_tx" ] -> true
    | [ "Alcotest"; ("fail" | "failf") ] -> true
    | _ -> false)
  | None -> false

let body_reraises (body : Parsetree.expression) =
  let found = ref false in
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _)
            when is_raiser txt ->
            found := true
          | Pexp_assert _ -> found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  iter.expr iter body;
  !found
