(* Transitive effect summaries, computed to fixpoint over the call graph
   (DESIGN.md §5i).

   Four effects per indexed function:

   - [escapes]: reaches an escape hatch ([peek] / [unsafe_write] /
     [unsafe_preload]), either by *being* one (the definition, or a
     value alias like [let peek = Tvar.peek]), by mentioning one
     qualified (resolved or not — the unresolved case is the
     conservative fallback that covers functor parameters like
     [S.peek]), or by reaching a function that does.
   - [swallows_abort]: some path ends in a catch-all handler without a
     re-raise — a helper that would turn a doomed transaction into a
     zombie when called from a transaction body.
   - [swallows_crash]: likewise for the raise-at-point fault exceptions.
   - [acquires_lock]: reaches a lock-acquire primitive
     ([Vlock.try_lock]/[try_lock_save], [Wset.lock_all]/[lock_one],
     boosting [Abstract_lock.try_acquire], [Serial.enter],
     [Mutex.lock]).

   Each present effect carries a witness chain (who was called to reach
   the primitive) used verbatim in finding messages.  Effects only ever
   grow, so the worklist iteration terminates. *)

let escape_names = [ "peek"; "unsafe_write"; "unsafe_preload" ]

(* Lock-acquire primitives, matched on the last two path components of a
   qualified mention.  Bare-name calls that *resolve* to one of these
   (or to a wrapper around one, like boosting's [acquire]) inherit the
   effect through propagation instead. *)
let acquire_primitives =
  [
    [ "Vlock"; "try_lock" ];
    [ "Vlock"; "try_lock_save" ];
    [ "Wset"; "lock_all" ];
    [ "Wset"; "lock_one" ];
    [ "Abstract_lock"; "try_acquire" ];
    [ "Serial"; "enter" ];
    [ "Mutex"; "lock" ];
  ]

let last2 p =
  match List.rev p with a :: b :: _ -> [ b; a ] | _ -> []

let is_acquire_path p = List.mem (last2 p) acquire_primitives

type eff = {
  mutable escapes : string list option;
  mutable swallows_abort : string list option;
  mutable swallows_crash : string list option;
  mutable acquires_lock : string list option;
}

type t = {
  effs : eff array;  (** indexed by [Index.entry.id] *)
  idx : Index.t;
}

let get t (e : Index.entry) = t.effs.(e.id)

(* Local handler scan: does this body contain a catch-all (or
   crash-matching) case without guard or syntactic re-raise?  Same
   predicate the per-site checks use; here it seeds the summary. *)
let local_swallows (body : Parsetree.expression) =
  let swa = ref false and swc = ref false in
  let check_case ~what (c : Parsetree.case) =
    let catch_all_pat =
      match c.pc_lhs.ppat_desc with
      | Ppat_exception p when what = `Match -> Callgraph.pattern_is_catch_all p
      | _ -> what = `Try && Callgraph.pattern_is_catch_all c.pc_lhs
    in
    let crash_pat =
      match c.pc_lhs.ppat_desc with
      | Ppat_exception p when what = `Match -> Callgraph.pattern_mentions_crash p
      | _ -> what = `Try && Callgraph.pattern_mentions_crash c.pc_lhs
    in
    if
      (catch_all_pat || crash_pat)
      && c.pc_guard = None
      && not (Callgraph.body_reraises c.pc_rhs)
    then begin
      if catch_all_pat then swa := true;
      if crash_pat then swc := true
    end
  in
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_try (_, cases) -> List.iter (check_case ~what:`Try) cases
          | Pexp_match (_, cases) -> List.iter (check_case ~what:`Match) cases
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  iter.expr iter body;
  (!swa, !swc)

let scope_of (e : Index.entry) =
  match List.rev e.path with _ :: tl -> List.rev tl | [] -> []

(* Transaction entry points are {e barriers}: effects never propagate
   through a call to [atomic] or [Retry_loop.run].  The engine's commit
   path legitimately ends in [Tvar.unsafe_write] (that is where writes
   install) and [Serial.enter] — reaching those *through the engine* is
   safe by construction, and without the barrier every function that
   runs a transaction would summarize as escaping. *)
let is_barrier (e : Index.entry) =
  e.name = "atomic" || last2 e.path = [ "Retry_loop"; "run" ]

let compute (idx : Index.t) : t =
  let n = Array.length idx.Index.entries in
  let effs =
    Array.init n (fun _ ->
        { escapes = None; swallows_abort = None; swallows_crash = None;
          acquires_lock = None })
  in
  (* Edges: entry id -> resolved callee ids (deduped); built once. *)
  let callees = Array.make n [] in
  Array.iter
    (fun (e : Index.entry) ->
      let ms = Callgraph.mentions e.body in
      let eff = effs.(e.id) in
      (* Seeds. *)
      if List.mem e.name escape_names then eff.escapes <- Some [];
      List.iter
        (fun (m : Callgraph.mention) ->
          let final = List.nth m.m_path (List.length m.m_path - 1) in
          if List.length m.m_path >= 2 && List.mem final escape_names then
            (* Qualified escape mention: dangerous whether or not the
               module resolves (functor parameters, foreign modules). *)
            (if eff.escapes = None then
               eff.escapes <- Some [ Index.join m.m_path ]);
          if is_acquire_path m.m_path && eff.acquires_lock = None then
            eff.acquires_lock <- Some [ Index.join m.m_path ])
        ms;
      let swa, swc = local_swallows e.body in
      if swa then eff.swallows_abort <- Some [];
      if swc then eff.swallows_crash <- Some [];
      (* Edges. *)
      let scope = scope_of e in
      let tgt = Hashtbl.create 8 in
      List.iter
        (fun (m : Callgraph.mention) ->
          List.iter
            (fun (g : Index.entry) ->
              if g.id <> e.id && not (is_barrier g) then
                Hashtbl.replace tgt g.id ())
            (Callgraph.resolve idx ~file:e.file ~scope m.m_path))
        ms;
      callees.(e.id) <- Hashtbl.fold (fun id () acc -> id :: acc) tgt [])
    idx.Index.entries;
  (* Reverse edges for the worklist. *)
  let callers = Array.make n [] in
  Array.iteri
    (fun i cs -> List.iter (fun j -> callers.(j) <- i :: callers.(j)) cs)
    callees;
  let queue = Queue.create () in
  let on_queue = Array.make n false in
  let enqueue i =
    if not on_queue.(i) then begin
      on_queue.(i) <- true;
      Queue.push i queue
    end
  in
  Array.iteri (fun i _ -> enqueue i) effs;
  let display (g : Index.entry) = Index.join g.path in
  let cap_chain c = if List.length c > 5 then [] else c in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    on_queue.(i) <- false;
    let ei = effs.(i) in
    let changed = ref false in
    List.iter
      (fun j ->
        let g = Index.entry idx j and ej = effs.(j) in
        let pull get set =
          match (get ej, get ei) with
          | Some chain, None ->
            set ei (Some (display g :: cap_chain chain));
            changed := true
          | _ -> ()
        in
        pull (fun e -> e.escapes) (fun e v -> e.escapes <- v);
        pull (fun e -> e.swallows_abort) (fun e v -> e.swallows_abort <- v);
        pull (fun e -> e.swallows_crash) (fun e v -> e.swallows_crash <- v);
        pull (fun e -> e.acquires_lock) (fun e v -> e.acquires_lock <- v))
      callees.(i);
    if !changed then List.iter enqueue callers.(i)
  done;
  { effs; idx }

let chain_to_string name = function
  | [] -> name
  | c -> name ^ " -> " ^ String.concat " -> " c
