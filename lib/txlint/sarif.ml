(* SARIF 2.1.0 emission for txlint findings — dependency-free, in the
   spirit of Harness.Report's hand-rolled JSON.  The subset GitHub code
   scanning consumes: tool.driver with a rule per check kind, one result
   per finding with ruleId, message and a physical location (1-based
   line/column).  Every distinct file appears once in the run-level
   [artifacts] array; each result's artifactLocation carries the
   artifact's [index] into that array so consumers can join results to
   artifacts without string-matching uris, and a [uriBaseId] resolved
   through the run's [originalUriBaseIds] (SRCROOT = the directory the
   lint ran from), which keeps the uris in results relative and
   machine-resolvable to absolute paths. *)

let schema_uri = "https://json.schemastore.org/sarif-2.1.0.json"
let version = "2.1.0"
let base_id = "SRCROOT"

let escape = Lint.json_escape

let rule_json kind =
  Printf.sprintf
    {|{"id":"%s","shortDescription":{"text":"%s"}}|}
    (Lint.kind_name kind)
    (escape (Lint.kind_description kind))

(* Distinct finding files, in order of first appearance; the position in
   this list is the artifact index results refer to. *)
let artifact_files (findings : Lint.finding list) =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun (f : Lint.finding) ->
      if Hashtbl.mem seen f.Lint.file then None
      else begin
        Hashtbl.replace seen f.Lint.file (Hashtbl.length seen);
        Some f.Lint.file
      end)
    findings

let artifact_json file =
  Printf.sprintf {|{"location":{"uri":"%s","uriBaseId":"%s"}}|}
    (escape file) base_id

(* "file:///abs/dir/" for the current directory, with a trailing slash so
   relative uris append cleanly. *)
let srcroot_uri () =
  let cwd = String.map (fun c -> if c = '\\' then '/' else c) (Sys.getcwd ()) in
  let cwd = if cwd <> "" && cwd.[String.length cwd - 1] = '/' then cwd else cwd ^ "/" in
  if String.length cwd > 0 && cwd.[0] = '/' then "file://" ^ cwd
  else "file:///" ^ cwd

let result_json ~index_of (f : Lint.finding) =
  (* SARIF columns are 1-based; finding columns are 0-based (compiler
     convention). *)
  Printf.sprintf
    {|{"ruleId":"%s","level":"error","message":{"text":"%s"},"locations":[{"physicalLocation":{"artifactLocation":{"uri":"%s","uriBaseId":"%s","index":%d},"region":{"startLine":%d,"startColumn":%d}}}]}|}
    (Lint.kind_name f.Lint.kind)
    (escape f.Lint.msg)
    (escape f.Lint.file)
    base_id
    (index_of f.Lint.file)
    f.Lint.line (f.Lint.col + 1)

let to_string (findings : Lint.finding list) =
  let rules = String.concat "," (List.map rule_json Lint.all_kinds) in
  let files = artifact_files findings in
  let index = Hashtbl.create 16 in
  List.iteri (fun i file -> Hashtbl.replace index file i) files;
  let index_of file = try Hashtbl.find index file with Not_found -> 0 in
  let artifacts = String.concat "," (List.map artifact_json files) in
  let results =
    String.concat ",\n      " (List.map (result_json ~index_of) findings)
  in
  Printf.sprintf
    {|{
  "$schema": "%s",
  "version": "%s",
  "runs": [
    {
      "tool": {
        "driver": {
          "name": "txlint",
          "version": "2.1.0",
          "rules": [%s]
        }
      },
      "originalUriBaseIds": {"%s": {"uri": "%s"}},
      "artifacts": [%s],
      "results": [%s]
    }
  ]
}
|}
    schema_uri version rules base_id
    (escape (srcroot_uri ()))
    artifacts results
