(* SARIF 2.1.0 emission for txlint findings — dependency-free, in the
   spirit of Harness.Report's hand-rolled JSON.  Only the minimum-schema
   subset GitHub code scanning consumes: tool.driver with a rule per
   check kind, one result per finding with ruleId, message and a
   physical location (1-based line/column). *)

let schema_uri = "https://json.schemastore.org/sarif-2.1.0.json"
let version = "2.1.0"

let escape = Lint.json_escape

let rule_json kind =
  Printf.sprintf
    {|{"id":"%s","shortDescription":{"text":"%s"}}|}
    (Lint.kind_name kind)
    (escape (Lint.kind_description kind))

let result_json (f : Lint.finding) =
  (* SARIF columns are 1-based; finding columns are 0-based (compiler
     convention). *)
  Printf.sprintf
    {|{"ruleId":"%s","level":"error","message":{"text":"%s"},"locations":[{"physicalLocation":{"artifactLocation":{"uri":"%s"},"region":{"startLine":%d,"startColumn":%d}}}]}|}
    (Lint.kind_name f.Lint.kind)
    (escape f.Lint.msg)
    (escape f.Lint.file)
    f.Lint.line (f.Lint.col + 1)

let to_string (findings : Lint.finding list) =
  let rules = String.concat "," (List.map rule_json Lint.all_kinds) in
  let results = String.concat ",\n      " (List.map result_json findings) in
  Printf.sprintf
    {|{
  "$schema": "%s",
  "version": "%s",
  "runs": [
    {
      "tool": {
        "driver": {
          "name": "txlint",
          "version": "2.0.0",
          "rules": [%s]
        }
      },
      "results": [%s]
    }
  ]
}
|}
    schema_uri version rules results
