(* Static lint for STM discipline.  See lint.mli for the check catalogue
   and DESIGN.md §5e/§5i for the policy.

   v2 is interprocedural: the per-expression checks of v1 are joined by
   a repo-wide symbol index (Index), a best-effort call graph
   (Callgraph) and transitive effect summaries (Summary), so a helper
   that wraps [Tvar.peek] two calls away from an [atomic] body is
   flagged at the call site inside the transaction.  Suppression is
   attribute-based — [[@txlint.allow "<kind>" "<reason>"]] on an
   expression, a [let] binding, a module binding, or the whole file
   ([[@@@txlint.allow ...]]), which fully replaced the v1 path-suffix
   whitelists (retired after their one release of grace). *)

type kind =
  | Catch_all
  | Obj_magic
  | Stm_escape
  | Crash_swallowed
  | Tx_escape
  | Tx_swallow
  | Lock_release
  | Bad_allow

let all_kinds =
  [ Catch_all; Obj_magic; Stm_escape; Crash_swallowed; Tx_escape; Tx_swallow;
    Lock_release; Bad_allow ]

let kind_name = function
  | Catch_all -> "catch-all"
  | Obj_magic -> "obj-magic"
  | Stm_escape -> "stm-escape"
  | Crash_swallowed -> "crash-swallowed"
  | Tx_escape -> "tx-escape"
  | Tx_swallow -> "tx-swallow"
  | Lock_release -> "lock-release"
  | Bad_allow -> "bad-allow"

let kind_description = function
  | Catch_all ->
    "exception handler that swallows every exception without re-raising"
  | Obj_magic -> "Obj.magic outside the sanctioned rw-set existential"
  | Stm_escape ->
    "non-transactional escape hatch (peek/unsafe_write/unsafe_preload) \
     at an unannotated site"
  | Crash_swallowed ->
    "raise-at-point fault exception caught without re-raise"
  | Tx_escape ->
    "escape hatch transitively reachable from a transaction body"
  | Tx_swallow ->
    "abort/crash-swallowing helper transitively reachable from a \
     transaction body"
  | Lock_release ->
    "lock acquired without a Fun.protect or try-handler release in the \
     same function"
  | Bad_allow -> "malformed [@txlint.allow] suppression"

type finding = {
  file : string;
  line : int;
  col : int;
  kind : kind;
  msg : string;
}

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" f.file f.line f.col
    (kind_name f.kind) f.msg

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let finding_to_json f =
  Printf.sprintf
    {|{"file":"%s","line":%d,"col":%d,"kind":"%s","msg":"%s"}|}
    (json_escape f.file) f.line f.col (kind_name f.kind) (json_escape f.msg)

let escape_names = Summary.escape_names

(* --- suppression regions ([@txlint.allow "kind" "reason"]) ----------- *)

type region = {
  rg_kind : string;
  rg_from : int * int;  (* (line, col), inclusive *)
  rg_to : int * int;
}

let pos_of (p : Lexing.position) = (p.pos_lnum, p.pos_cnum - p.pos_bol)

let region_of_loc kind (loc : Location.t) =
  { rg_kind = kind; rg_from = pos_of loc.loc_start; rg_to = pos_of loc.loc_end }

let in_region r (line, col) =
  r.rg_from <= (line, col) && (line, col) <= r.rg_to

(* Payload forms accepted: two juxtaposed string constants
   ([@txlint.allow "stm-escape" "reason"]) or a two-string tuple.  A
   lone kind is rejected: every suppression must carry a reason. *)
let parse_allow_payload (p : Parsetree.payload) =
  let const_string (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_constant (Pconst_string (s, _, _)) -> Some s
    | _ -> None
  in
  match p with
  | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] -> (
    match e.pexp_desc with
    | Pexp_apply (k, [ (Nolabel, r) ]) -> (
      match (const_string k, const_string r) with
      | Some k, Some r -> Ok (k, r)
      | _ -> Error "expected [@txlint.allow \"<kind>\" \"<reason>\"]")
    | Pexp_tuple [ k; r ] -> (
      match (const_string k, const_string r) with
      | Some k, Some r -> Ok (k, r)
      | _ -> Error "expected [@txlint.allow \"<kind>\" \"<reason>\"]")
    | Pexp_constant (Pconst_string _) ->
      Error "suppression must carry a reason string"
    | _ -> Error "expected [@txlint.allow \"<kind>\" \"<reason>\"]")
  | _ -> Error "expected [@txlint.allow \"<kind>\" \"<reason>\"]"

let suppressible_kind_names =
  List.filter_map
    (fun k -> if k = Bad_allow then None else Some (kind_name k))
    all_kinds

(* Collect allow regions and malformed-allow findings for one file.  A
   floating [[@@@txlint.allow ...]] covers everything from its position
   to the end of the file; attribute placements on expressions, value
   bindings and module bindings cover exactly that range. *)
let collect_allows ~file (str : Parsetree.structure) =
  let regions = ref [] and bad = ref [] in
  let add_bad (loc : Location.t) msg =
    let line, col = pos_of loc.loc_start in
    bad := { file; line; col; kind = Bad_allow; msg } :: !bad
  in
  let consider ~floating (a : Parsetree.attribute) range =
    if a.attr_name.txt = "txlint.allow" then
      match parse_allow_payload a.attr_payload with
      | Error msg -> add_bad a.attr_loc ("malformed txlint.allow: " ^ msg)
      | Ok (kind, reason) ->
        if not (List.mem kind suppressible_kind_names) then
          add_bad a.attr_loc
            (Printf.sprintf "malformed txlint.allow: unknown kind %S" kind)
        else if String.trim reason = "" then
          add_bad a.attr_loc
            "malformed txlint.allow: the reason string is empty"
        else
          let rg =
            if floating then
              { rg_kind = kind;
                rg_from = pos_of a.attr_loc.Location.loc_start;
                rg_to = (max_int, max_int) }
            else region_of_loc kind range
          in
          regions := rg :: !regions
  in
  let iter =
    {
      Ast_iterator.default_iterator with
      structure_item =
        (fun self it ->
          (match it.pstr_desc with
          | Pstr_attribute a -> consider ~floating:true a it.pstr_loc
          | _ -> ());
          Ast_iterator.default_iterator.structure_item self it);
      expr =
        (fun self e ->
          List.iter
            (fun a -> consider ~floating:false a e.pexp_loc)
            e.pexp_attributes;
          Ast_iterator.default_iterator.expr self e);
      value_binding =
        (fun self vb ->
          List.iter
            (fun a -> consider ~floating:false a vb.pvb_loc)
            vb.pvb_attributes;
          Ast_iterator.default_iterator.value_binding self vb);
      module_binding =
        (fun self mb ->
          List.iter
            (fun a -> consider ~floating:false a mb.pmb_loc)
            mb.pmb_attributes;
          Ast_iterator.default_iterator.module_binding self mb);
    }
  in
  iter.structure iter str;
  (!regions, !bad)

(* --- per-site checks (v1) -------------------------------------------- *)

let check_sites ~file (body : Parsetree.expression) =
  let findings = ref [] in
  let add (loc : Location.t) kind msg =
    let line, col = pos_of loc.loc_start in
    findings := { file; line; col; kind; msg } :: !findings
  in
  let check_case ~what (c : Parsetree.case) =
    let catch_all_pat =
      match c.pc_lhs.ppat_desc with
      | Ppat_exception p when what = `Match -> Callgraph.pattern_is_catch_all p
      | _ -> what = `Try && Callgraph.pattern_is_catch_all c.pc_lhs
    in
    if
      catch_all_pat && c.pc_guard = None
      && not (Callgraph.body_reraises c.pc_rhs)
    then
      add c.pc_lhs.ppat_loc Catch_all
        "catch-all exception handler without re-raise swallows \
         Control.Abort_tx; match specific exceptions or re-raise";
    let crash_pat =
      match c.pc_lhs.ppat_desc with
      | Ppat_exception p when what = `Match ->
        Callgraph.pattern_mentions_crash p
      | _ -> what = `Try && Callgraph.pattern_mentions_crash c.pc_lhs
    in
    if
      crash_pat && c.pc_guard = None
      && not (Callgraph.body_reraises c.pc_rhs)
    then
      add c.pc_lhs.ppat_loc Crash_swallowed
        "handler swallows a raise-at-point fault (Control.Crashed / \
         Faults.Injected_failure); crash simulation needs these to \
         propagate - re-raise after cleanup"
  in
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_try (_, cases) -> List.iter (check_case ~what:`Try) cases
          | Pexp_match (_, cases) -> List.iter (check_case ~what:`Match) cases
          | Pexp_ident { txt = Ldot (Lident "Obj", "magic"); loc } ->
            add loc Obj_magic
              "Obj.magic outside the rw-set existential; annotate the \
               sanctioned site with [@txlint.allow \"obj-magic\" \"...\"]"
          | Pexp_ident { txt = Ldot (_, name); loc }
            when List.mem name escape_names ->
            add loc Stm_escape
              (Printf.sprintf
                 "escape hatch %s at an unannotated site; reads and \
                  writes must go through a transaction (or annotate \
                  with [@txlint.allow \"stm-escape\" \"<why>\"])"
                 name)
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  iter.expr iter body;
  List.rev !findings

(* --- interprocedural checks ------------------------------------------ *)

type interp = { idx : Index.t; sums : Summary.t }

(* A transaction entry point: any [atomic] application (every engine and
   the Stm_intf.S signature use the name) or a [Retry_loop.run] thunk. *)
let is_tx_entry path =
  let final = List.nth path (List.length path - 1) in
  final = "atomic" || Summary.last2 path = [ "Retry_loop"; "run" ]

let last_nolabel_arg (args : (Asttypes.arg_label * Parsetree.expression) list)
    =
  List.fold_left
    (fun acc (lbl, e) ->
      match lbl with Asttypes.Nolabel -> Some e | _ -> acc)
    None args

(* Scan a transaction body for reachability violations: any mention that
   is, or transitively reaches, an escape hatch or an abort/crash
   swallowing handler.  Direct qualified escapes are also flagged here
   (distance 0): an annotated [peek] is sanctioned *outside*
   transactions only. *)
let scan_tx_body interp ~file ~scope (body : Parsetree.expression) =
  let findings = ref [] in
  let add (loc : Location.t) kind msg =
    let line, col = pos_of loc.loc_start in
    findings := { file; line; col; kind; msg } :: !findings
  in
  List.iter
    (fun (m : Callgraph.mention) ->
      let final = List.nth m.m_path (List.length m.m_path - 1) in
      let shown = Index.join m.m_path in
      if List.mem final escape_names && List.length m.m_path >= 2 then
        add m.m_loc Tx_escape
          (Printf.sprintf
             "escape hatch %s used inside a transaction body; \
              non-transactional reads/writes break opacity even when the \
              site is sanctioned for non-transactional use"
             shown)
      else if not (is_tx_entry m.m_path) then begin
        let targets =
          Callgraph.resolve interp.idx ~file ~scope m.m_path
        in
        let rec first_effect = function
          | [] -> ()
          | (g : Index.entry) :: rest ->
            let eff = Summary.get interp.sums g in
            let display = Index.join g.path in
            (match eff.Summary.escapes with
            | Some chain ->
              add m.m_loc Tx_escape
                (Printf.sprintf
                   "transaction body reaches an escape hatch: %s"
                   (Summary.chain_to_string display chain))
            | None -> ());
            (match eff.Summary.swallows_abort with
            | Some chain ->
              add m.m_loc Tx_swallow
                (Printf.sprintf
                   "transaction body reaches a catch-all handler that \
                    swallows Control.Abort_tx: %s"
                   (Summary.chain_to_string display chain))
            | None -> ());
            (match eff.Summary.swallows_crash with
            | Some chain ->
              add m.m_loc Tx_swallow
                (Printf.sprintf
                   "transaction body reaches a handler that swallows a \
                    raise-at-point fault: %s"
                   (Summary.chain_to_string display chain))
            | None -> ());
            if
              eff.Summary.escapes = None
              && eff.Summary.swallows_abort = None
              && eff.Summary.swallows_crash = None
            then first_effect rest
        in
        first_effect targets
      end)
    (Callgraph.mentions body);
  List.rev !findings

(* Find transaction entry applications in an entry body and scan their
   thunk arguments. *)
let check_tx_entries interp ~file ~scope (body : Parsetree.expression) =
  let findings = ref [] in
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
            match Index.flatten_lid txt with
            | Some path when is_tx_entry path -> (
              match last_nolabel_arg args with
              | Some tx_body ->
                findings :=
                  List.rev_append
                    (List.rev (scan_tx_body interp ~file ~scope tx_body))
                    !findings
              | None -> ())
            | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  iter.expr iter body;
  List.rev !findings

(* Lock-release safety (the static twin of the exception-safe-engine
   work, DESIGN.md §5h): a function that *directly* calls a lock-acquire
   primitive must contain a [Fun.protect] or a [try] whose handler
   mentions a release/undo/forget, or carry an annotation.  Transitive
   acquirers (callers of combinators) are exempt — their releases live
   with the acquire, which is what this check pins down; the soundness
   caveats are documented in DESIGN.md §5i. *)
let release_hints =
  [ "unlock"; "release"; "forget"; "undo"; "rollback"; "exit"; "restore";
    "clear" ]

let mentions_release (e : Parsetree.expression) =
  List.exists
    (fun (m : Callgraph.mention) ->
      let final = List.nth m.m_path (List.length m.m_path - 1) in
      List.exists
        (fun hint ->
          let lf = String.length final and lh = String.length hint in
          let rec at i =
            i + lh <= lf
            && (String.sub final i lh = hint || at (i + 1))
          in
          at 0)
        release_hints)
    (Callgraph.mentions e)

let check_lock_release ~file (body : Parsetree.expression) =
  let acquire_locs =
    List.filter_map
      (fun (m : Callgraph.mention) ->
        if Summary.is_acquire_path m.m_path then
          Some (m.m_loc, Index.join m.m_path)
        else None)
      (Callgraph.mentions body)
  in
  if acquire_locs = [] then []
  else begin
    let has_protect =
      List.exists
        (fun (m : Callgraph.mention) ->
          Summary.last2 m.m_path = [ "Fun"; "protect" ])
        (Callgraph.mentions body)
    in
    let has_try_release = ref false in
    let iter =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun self e ->
            (match e.pexp_desc with
            | Pexp_try (_, cases) ->
              if
                List.exists
                  (fun (c : Parsetree.case) -> mentions_release c.pc_rhs)
                  cases
              then has_try_release := true
            | _ -> ());
            Ast_iterator.default_iterator.expr self e);
      }
    in
    iter.expr iter body;
    if has_protect || !has_try_release then []
    else
      List.map
        (fun (loc, shown) ->
          let line, col = pos_of loc.Location.loc_start in
          { file; line; col; kind = Lock_release;
            msg =
              Printf.sprintf
                "%s acquired without a Fun.protect or try-handler \
                 release in this function; pair every acquire with a \
                 release/undo/forget on all exception paths (or annotate \
                 with [@txlint.allow \"lock-release\" \"<why>\"])"
                shown })
        acquire_locs
  end

(* --- orchestration --------------------------------------------------- *)

let parse_source ~filename source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf filename;
  match Parse.implementation lexbuf with
  | str -> Ok str
  | exception e -> (
    (* Only exceptions the compiler knows how to report are parse errors;
       anything else (Out_of_memory, a bug in this linter) propagates. *)
    match Location.error_of_exn e with
    | Some (`Ok report) ->
      Error
        (Printf.sprintf "%s: parse error: %s" filename
           (Format.asprintf "%a" Location.print_report report))
    | Some `Already_displayed -> Error (filename ^ ": parse error")
    | None -> raise e)

let compare_findings a b =
  compare
    (a.file, a.line, a.col, kind_name a.kind, a.msg)
    (b.file, b.line, b.col, kind_name b.kind, b.msg)

let analyze ?wrapper_of (sources : (string * string) list) :
    finding list * string list =
  (* Reverse-accumulate, reverse once: linear in the number of files and
     findings (the v1 fold appended per file, going quadratic on large
     trees). *)
  let parsed = ref [] and errors = ref [] in
  List.iter
    (fun (filename, text) ->
      match parse_source ~filename text with
      | Ok str -> parsed := (filename, str) :: !parsed
      | Error msg -> errors := msg :: !errors)
    sources;
  let parsed = List.rev !parsed in
  let idx = Index.build ?wrapper_of parsed in
  let sums = Summary.compute idx in
  let interp = { idx; sums } in
  let findings = ref [] in
  let push fs = findings := List.rev_append fs !findings in
  List.iter
    (fun (file, str) ->
      let regions, bad = collect_allows ~file str in
      let raw = ref [] in
      List.iter
        (fun (e : Index.entry) ->
          let scope = Summary.scope_of e in
          raw := List.rev_append (check_sites ~file e.body) !raw;
          raw :=
            List.rev_append (check_tx_entries interp ~file ~scope e.body) !raw;
          raw := List.rev_append (check_lock_release ~file e.body) !raw)
        (Index.entries_of_file idx file);
      let kept =
        List.filter
          (fun f ->
            f.kind = Bad_allow
            || not
                 (List.exists
                    (fun r ->
                      r.rg_kind = kind_name f.kind
                      && in_region r (f.line, f.col))
                    regions))
          !raw
      in
      push bad;
      push kept)
    parsed;
  (List.sort_uniq compare_findings !findings, List.rev !errors)

let lint_string ~filename source =
  match parse_source ~filename source with
  | Error msg -> Error msg
  | Ok _ ->
    let findings, _errors = analyze [ (filename, source) ] in
    Ok findings

let read_file file =
  match In_channel.with_open_bin file In_channel.input_all with
  | source -> Ok source
  | exception Sys_error msg -> Error msg

let lint_file file =
  match read_file file with
  | Error msg -> Error msg
  | Ok source -> lint_string ~filename:file source

(* Whole-set analysis: one parse per file, one shared call graph.  The
   result covers cross-file reachability that [lint_file] alone cannot
   see. *)
let lint_files files =
  let sources = ref [] and errors = ref [] in
  List.iter
    (fun file ->
      match read_file file with
      | Ok src -> sources := (file, src) :: !sources
      | Error msg -> errors := msg :: !errors)
    files;
  let findings, parse_errors = analyze (List.rev !sources) in
  (findings, List.rev_append !errors parse_errors)

let ml_files_under roots =
  let acc = ref [] in
  let rec walk path =
    match Sys.is_directory path with
    | true ->
      let base = Filename.basename path in
      if
        base <> "_build" && base <> "_opam" && base <> "fixtures"
        && not (String.length base > 1 && base.[0] = '.')
      then
        Array.iter
          (fun entry -> walk (Filename.concat path entry))
          (Sys.readdir path)
    | false ->
      if Filename.check_suffix path ".ml" then acc := path :: !acc
    | exception Sys_error _ -> ()
  in
  List.iter
    (fun root -> if Sys.file_exists root then walk root)
    roots;
  List.sort compare !acc

(* --- baselines ------------------------------------------------------- *)

(* Baselines identify findings by kind, file and message — not line or
   column, so unrelated edits above a baselined finding do not make it
   "new".  The file format is one finding per line, tab-separated;
   blank lines and [#] comments are skipped. *)
let finding_key f =
  Printf.sprintf "%s\t%s\t%s" (kind_name f.kind) f.file f.msg

let parse_baseline text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None else Some line)

(* Findings not covered by the baseline (multiset semantics: two
   identical findings need two baseline lines). *)
let subtract_baseline ~baseline findings =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun k ->
      Hashtbl.replace counts k
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
    baseline;
  List.filter
    (fun f ->
      let k = finding_key f in
      match Hashtbl.find_opt counts k with
      | Some n when n > 0 ->
        Hashtbl.replace counts k (n - 1);
        false
      | _ -> true)
    findings
