(* Static lint for STM discipline.  See lint.mli for the check catalogue
   and DESIGN.md ("Txsan") for the policy behind the whitelists. *)

type kind = Catch_all | Obj_magic | Stm_escape | Crash_swallowed

let kind_name = function
  | Catch_all -> "catch-all"
  | Obj_magic -> "obj-magic"
  | Stm_escape -> "stm-escape"
  | Crash_swallowed -> "crash-swallowed"

type finding = {
  file : string;
  line : int;
  col : int;
  kind : kind;
  msg : string;
}

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" f.file f.line f.col
    (kind_name f.kind) f.msg

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let finding_to_json f =
  Printf.sprintf
    {|{"file":"%s","line":%d,"col":%d,"kind":"%s","msg":"%s"}|}
    (json_escape f.file) f.line f.col (kind_name f.kind) (json_escape f.msg)

(* Whitelists: path suffixes.  Escape hatches are legitimate in engine
   internals (commit install under the own lock), in single-domain
   initialisation helpers and in post-run checkers; Obj.magic only in the
   read/write-set entries where the existential is hand-rolled. *)
let default_escape_whitelist =
  [
    "lib/stm_core/tvar.ml" (* the definitions themselves *);
    "lib/stm_core/rwsets.ml" (* commit install under the own lock *);
    "lib/stm_core/stm_intf.ml" (* interface docs name them *);
    "lib/classic_stm/classic_stm.ml" (* Stm_intf.S re-exports *);
    "lib/oestm/oestm.ml" (* Stm_intf.S re-exports *);
    "lib/viewstm/viewstm.ml" (* Stm_intf.S re-exports *);
    "lib/eec/skip_list_set.ml" (* single-domain preload *);
    "lib/eec/sorted_chain.ml" (* single-domain preload *);
    "lib/seqds/seqds.ml" (* single-domain bucket preload *);
    "lib/harness/target.ml" (* benchmark population, pre-measurement *);
    "lib/harness/chaos.ml" (* post-run invariant checks *);
    "bin/history_check.ml" (* post-run verification *);
    "examples/move_rebalance.ml" (* single-domain preload *);
    "examples/insert_if_absent_race.ml" (* single-domain preload *);
  ]

let default_obj_magic_whitelist = [ "lib/stm_core/rwsets.ml" ]

(* The chaos harness is the crash orchestrator: its killer processes
   absorb the simulated death they themselves arranged. *)
let default_crash_whitelist = [ "lib/harness/chaos.ml" ]

let escape_names = [ "peek"; "unsafe_write"; "unsafe_preload" ]

(* Suffix match on '/'-normalised paths, aligned to a component boundary,
   so "lib/harness/chaos.ml" matches "/root/repo/lib/harness/chaos.ml"
   but not "lib/harness/not_chaos.ml". *)
let path_matches file suffix =
  let norm s = String.map (fun c -> if c = '\\' then '/' else c) s in
  let file = norm file and suffix = norm suffix in
  let lf = String.length file and ls = String.length suffix in
  lf >= ls
  && String.sub file (lf - ls) ls = suffix
  && (lf = ls || file.[lf - ls - 1] = '/')

let whitelisted file wl = List.exists (path_matches file) wl

(* --- catch-all handler detection ------------------------------------- *)

(* A pattern that matches every exception: _, a variable, or built from
   such by alias/or/constraint/open. *)
let rec pattern_is_catch_all (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_alias (p, _) | Ppat_constraint (p, _) | Ppat_open (_, p) ->
    pattern_is_catch_all p
  | Ppat_or (a, b) -> pattern_is_catch_all a || pattern_is_catch_all b
  | _ -> false

(* A pattern that names one of the raise-at-point fault exceptions
   ([Control.Crashed], [Faults.Injected_failure]), directly or inside
   alias/or/constraint/open.  Handlers matching these without re-raising
   defeat the crash simulation: engines rely on the exception unwinding
   all the way out so orphaned locks stay orphaned. *)
let crash_exn_names = [ "Crashed"; "Injected_failure" ]

let rec pattern_mentions_crash (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_construct ({ txt; _ }, _) -> (
    match txt with
    | Lident n | Ldot (_, n) -> List.mem n crash_exn_names
    | _ -> false)
  | Ppat_alias (p, _) | Ppat_constraint (p, _) | Ppat_open (_, p)
  | Ppat_exception p ->
    pattern_mentions_crash p
  | Ppat_or (a, b) -> pattern_mentions_crash a || pattern_mentions_crash b
  | _ -> false

(* Does the handler body syntactically re-raise?  We accept the stdlib
   raisers, [exit], [assert], and any qualified call whose final name is a
   raiser by convention in this repo ([Control.abort_tx], [Alcotest.fail],
   a local [fail]/[failf], ...).  This is a conservative syntactic check:
   cleanup-then-reraise passes, a bare [()] or logging body does not. *)
let body_reraises (body : Parsetree.expression) =
  let found = ref false in
  let is_raiser (lid : Longident.t) =
    match lid with
    | Lident
        ( "raise" | "raise_notrace" | "raise_with_backtrace" | "failwith"
        | "invalid_arg" | "exit" | "fail" | "failf" ) ->
      true
    | Ldot (_, ("raise" | "raise_notrace" | "raise_with_backtrace"))
    | Ldot (_, ("abort_tx" | "fail" | "failf" | "failwith" | "invalid_arg")) ->
      true
    | _ -> false
  in
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _)
            when is_raiser txt ->
            found := true
          | Pexp_assert _ -> found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  iter.expr iter body;
  !found

(* --- the linter ------------------------------------------------------ *)

let lint_structure ~file ~escape_whitelist ~obj_magic_whitelist
    ~crash_whitelist str =
  let findings = ref [] in
  let add (loc : Location.t) kind msg =
    let p = loc.loc_start in
    findings :=
      { file; line = p.pos_lnum; col = p.pos_cnum - p.pos_bol; kind; msg }
      :: !findings
  in
  let check_case ~what (c : Parsetree.case) =
    let catch_all_pat =
      match c.pc_lhs.ppat_desc with
      (* [match ... with exception p -> ...] *)
      | Ppat_exception p when what = `Match -> pattern_is_catch_all p
      | _ -> what = `Try && pattern_is_catch_all c.pc_lhs
    in
    if catch_all_pat && c.pc_guard = None && not (body_reraises c.pc_rhs)
    then
      add c.pc_lhs.ppat_loc Catch_all
        "catch-all exception handler without re-raise swallows \
         Control.Abort_tx; match specific exceptions or re-raise";
    let crash_pat =
      match c.pc_lhs.ppat_desc with
      | Ppat_exception p when what = `Match -> pattern_mentions_crash p
      | _ -> what = `Try && pattern_mentions_crash c.pc_lhs
    in
    if
      crash_pat && c.pc_guard = None
      && not (body_reraises c.pc_rhs)
      && not (whitelisted file crash_whitelist)
    then
      add c.pc_lhs.ppat_loc Crash_swallowed
        "handler swallows a raise-at-point fault (Control.Crashed / \
         Faults.Injected_failure); crash simulation needs these to \
         propagate - re-raise after cleanup"
  in
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_try (_, cases) ->
            List.iter (check_case ~what:`Try) cases
          | Pexp_match (_, cases) ->
            List.iter (check_case ~what:`Match) cases
          | Pexp_ident { txt = Ldot (Lident "Obj", "magic"); loc }
            when not (whitelisted file obj_magic_whitelist) ->
            add loc Obj_magic
              "Obj.magic outside lib/stm_core/rwsets.ml; the rw-set \
               existential is the only sanctioned use"
          | Pexp_ident { txt = Ldot (_, name); loc }
            when List.mem name escape_names
                 && not (whitelisted file escape_whitelist) ->
            add loc Stm_escape
              (Printf.sprintf
                 "escape hatch %s used outside the whitelist; reads and \
                  writes must go through a transaction"
                 name)
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  iter.structure iter str;
  List.rev !findings

let lint_string ?(escape_whitelist = default_escape_whitelist)
    ?(obj_magic_whitelist = default_obj_magic_whitelist)
    ?(crash_whitelist = default_crash_whitelist) ~filename source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf filename;
  match Parse.implementation lexbuf with
  | str ->
    Ok
      (lint_structure ~file:filename ~escape_whitelist ~obj_magic_whitelist
         ~crash_whitelist str)
  | exception e -> (
    (* Only exceptions the compiler knows how to report are parse errors;
       anything else (Out_of_memory, a bug in this linter) propagates. *)
    match Location.error_of_exn e with
    | Some (`Ok report) ->
      Error
        (Printf.sprintf "%s: parse error: %s" filename
           (Format.asprintf "%a" Location.print_report report))
    | Some `Already_displayed -> Error (filename ^ ": parse error")
    | None -> raise e)

let lint_file ?escape_whitelist ?obj_magic_whitelist ?crash_whitelist file =
  match In_channel.with_open_bin file In_channel.input_all with
  | source -> lint_string ?escape_whitelist ?obj_magic_whitelist
                ?crash_whitelist ~filename:file source
  | exception Sys_error msg -> Error msg

let lint_files ?escape_whitelist ?obj_magic_whitelist ?crash_whitelist files =
  List.fold_left
    (fun (findings, errors) file ->
      match
        lint_file ?escape_whitelist ?obj_magic_whitelist ?crash_whitelist file
      with
      | Ok fs -> (findings @ fs, errors)
      | Error msg -> (findings, errors @ [ msg ]))
    ([], []) files

let ml_files_under roots =
  let acc = ref [] in
  let rec walk path =
    match Sys.is_directory path with
    | true ->
      let base = Filename.basename path in
      if
        base <> "_build" && base <> "_opam"
        && not (String.length base > 1 && base.[0] = '.')
      then
        Array.iter
          (fun entry -> walk (Filename.concat path entry))
          (Sys.readdir path)
    | false ->
      if Filename.check_suffix path ".ml" then acc := path :: !acc
    | exception Sys_error _ -> ()
  in
  List.iter
    (fun root -> if Sys.file_exists root then walk root)
    roots;
  List.sort compare !acc
