(** Static lint for STM discipline ("txlint").

    Four checks, applied to OCaml implementation files ([*.ml]) with the
    compiler-libs parser:

    - {b catch-all}: an exception handler that matches every exception
      ([with _ ->], [with e ->], an [exception _] case of a [match])
      without a guard and without re-raising in its body.  Such handlers
      swallow [Control.Abort_tx] and turn doomed transactions into
      zombies — the paper's opacity argument assumes aborts always reach
      the retry loop.  A handler whose body syntactically re-raises
      ([raise]/[raise_notrace]/[raise_with_backtrace], [failwith],
      [invalid_arg], [exit], an [assert], or a qualified
      [Control.abort_tx]-style call) is accepted: cleanup-then-reraise is
      the sanctioned pattern.
    - {b obj-magic}: any use of [Obj.magic] outside the single whitelisted
      site ({!default_obj_magic_whitelist}).
    - {b stm-escape}: any mention of the escape hatches [peek],
      [unsafe_write] or [unsafe_preload] outside the whitelisted modules
      ({!default_escape_whitelist}) — engine internals, single-domain
      preload helpers and post-run checkers.
    - {b crash-swallowed}: a handler matching one of the raise-at-point
      fault exceptions ([Control.Crashed], [Faults.Injected_failure])
      without re-raising.  Engines must let a simulated crash unwind the
      whole stack — forgetting (not releasing) its locks on the way — so
      the orphan-lock recovery layer sees the same state a real domain
      death would leave.  Only the chaos harness, which orchestrates the
      crashes, may absorb them ({!default_crash_whitelist}).

    Whitelists match by path {e suffix} (so absolute and relative
    invocations agree) and are part of the repo's policy: extending one is
    a reviewed change, not a local annotation. *)

type kind =
  | Catch_all  (** exception handler that swallows every exception *)
  | Obj_magic  (** [Obj.magic] outside the whitelist *)
  | Stm_escape  (** [peek]/[unsafe_write]/[unsafe_preload] outside the whitelist *)
  | Crash_swallowed
      (** [Control.Crashed]/[Faults.Injected_failure] caught without
          re-raise outside the whitelist *)

val kind_name : kind -> string
(** Stable machine-readable name: ["catch-all"], ["obj-magic"],
    ["stm-escape"], ["crash-swallowed"]. *)

type finding = {
  file : string;
  line : int;
  col : int;
  kind : kind;
  msg : string;
}

val pp_finding : Format.formatter -> finding -> unit
(** [file:line:col: [kind] msg] — one line, editor-clickable. *)

val finding_to_json : finding -> string
(** One JSON object per finding. *)

val default_escape_whitelist : string list
(** Path suffixes allowed to use the escape hatches. *)

val default_obj_magic_whitelist : string list
(** Path suffixes allowed to use [Obj.magic]. *)

val default_crash_whitelist : string list
(** Path suffixes allowed to absorb the raise-at-point fault exceptions. *)

val lint_string :
  ?escape_whitelist:string list ->
  ?obj_magic_whitelist:string list ->
  ?crash_whitelist:string list ->
  filename:string ->
  string ->
  (finding list, string) result
(** Lint one compilation unit given as source text.  [filename] is used
    for locations and for whitelist matching.  [Error msg] on a parse
    failure (the file is reported, not skipped silently). *)

val lint_file :
  ?escape_whitelist:string list ->
  ?obj_magic_whitelist:string list ->
  ?crash_whitelist:string list ->
  string ->
  (finding list, string) result

val lint_files :
  ?escape_whitelist:string list ->
  ?obj_magic_whitelist:string list ->
  ?crash_whitelist:string list ->
  string list ->
  finding list * string list
(** Lint many files; returns all findings (in file order, then source
    order) and the list of parse-error messages. *)

val ml_files_under : string list -> string list
(** Recursively collect [*.ml] files under the given roots, skipping
    [_build], [_opam] and dot-directories; sorted. *)
