(** Static lint for STM discipline ("txlint"), v2: interprocedural.

    The per-site checks of v1 are joined by a repo-wide symbol index
    ({!Index}), a best-effort call graph ({!Callgraph}) and transitive
    effect summaries computed to fixpoint ({!Summary}), so violations
    are reported on {e reachability} from transaction entry points, not
    just on textual occurrence.

    Check catalogue:

    - {b catch-all}: an exception handler that matches every exception
      ([with _ ->], [with e ->], an [exception _] case of a [match])
      without a guard and without re-raising in its body.  Such handlers
      swallow [Control.Abort_tx] and turn doomed transactions into
      zombies — the paper's opacity argument assumes aborts always reach
      the retry loop.  The accepted re-raisers are a {e named}
      allowlist: the stdlib raisers (bare or [Stdlib.]-qualified),
      [Control.abort_tx], [Alcotest.fail]/[failf] and [assert].  Other
      modules' [fail]/[failf] lookalikes and [exit] do not count.
    - {b obj-magic}: any use of [Obj.magic] at an unannotated site.
    - {b stm-escape}: any qualified mention of the escape hatches
      [peek], [unsafe_write] or [unsafe_preload] at an unannotated site.
    - {b crash-swallowed}: a handler matching one of the raise-at-point
      fault exceptions ([Control.Crashed], [Faults.Injected_failure])
      without re-raising.  Engines must let a simulated crash unwind the
      whole stack so the orphan-lock recovery layer sees the same state
      a real domain death would leave.
    - {b tx-escape}: a transaction body (the thunk passed to [atomic] or
      [Retry_loop.run]) mentions, or transitively reaches through the
      call graph, an escape hatch — even an annotated one: annotations
      sanction {e non-transactional} use only.
    - {b tx-swallow}: a transaction body transitively reaches a
      catch-all or crash-swallowing handler.  The finding message
      carries the witness call chain.
    - {b lock-release}: a function that directly calls a lock-acquire
      primitive ([Vlock.try_lock]/[try_lock_save],
      [Wset.lock_all]/[lock_one], [Abstract_lock.try_acquire],
      [Serial.enter], [Mutex.lock]) without a [Fun.protect] or a [try]
      whose handler releases/undoes/forgets, and without an annotation.
    - {b bad-allow}: a [[@txlint.allow]] attribute that is malformed,
      names an unknown kind, or lacks a reason string.

    Suppression is by annotation at the site:
    [[@txlint.allow "<kind>" "<reason>"]] on an expression, [let]
    binding or module binding, or [[@@@txlint.allow ...]] floating in a
    structure (covers the rest of the file).  The v1 path-suffix
    whitelists are gone: annotation at the site is the only
    suppression. *)

type kind =
  | Catch_all  (** exception handler that swallows every exception *)
  | Obj_magic  (** [Obj.magic] at an unannotated site *)
  | Stm_escape
      (** [peek]/[unsafe_write]/[unsafe_preload] at an unannotated site *)
  | Crash_swallowed
      (** [Control.Crashed]/[Faults.Injected_failure] caught without
          re-raise *)
  | Tx_escape  (** escape hatch reachable from a transaction body *)
  | Tx_swallow
      (** abort/crash-swallowing helper reachable from a transaction
          body *)
  | Lock_release
      (** lock acquired without a protected release in the same
          function *)
  | Bad_allow  (** malformed [[@txlint.allow]] *)

val all_kinds : kind list

val kind_name : kind -> string
(** Stable machine-readable name (["catch-all"], ["tx-escape"], ...),
    also the SARIF rule id and the kind string accepted by
    [[@txlint.allow]]. *)

val kind_description : kind -> string
(** One-line description used as the SARIF rule shortDescription. *)

type finding = {
  file : string;
  line : int;
  col : int;  (** 0-based, compiler convention *)
  kind : kind;
  msg : string;
}

val pp_finding : Format.formatter -> finding -> unit
(** [file:line:col: [kind] msg] — one line, editor-clickable. *)

val json_escape : string -> string
val finding_to_json : finding -> string

val escape_names : string list
(** The escape-hatch value names: [peek], [unsafe_write],
    [unsafe_preload]. *)

val analyze :
  ?wrapper_of:(string -> string option) ->
  (string * string) list ->
  finding list * string list
(** [analyze sources] runs the full interprocedural analysis over a set
    of [(filename, source)] pairs: one parse per file, one shared
    symbol index and summary fixpoint.  Returns findings (sorted by
    file, position, kind; deduplicated) and parse-error messages.
    [~wrapper_of] overrides the dune-probe used to map a file to its
    library wrapper module (used by tests to analyze in-memory
    sources). *)

val lint_string : filename:string -> string -> (finding list, string) result
(** Single-unit analysis — no cross-file edges, so strictly weaker than
    {!analyze} on the same file set.  [Error msg] on a parse failure. *)

val lint_file : string -> (finding list, string) result

val lint_files : string list -> finding list * string list
(** Read and {!analyze} many files together; unreadable files are
    reported in the error list, not skipped silently. *)

val ml_files_under : string list -> string list
(** Recursively collect [*.ml] files under the given roots, skipping
    [_build], [_opam], [fixtures] and dot-directories; sorted. *)

(** {2 Baselines}

    A baseline is a text file with one finding per line —
    [kind<TAB>file<TAB>message] — as produced by {!finding_key}.  Lines
    are position-independent so edits above a baselined finding do not
    resurface it.  Blank lines and [#] comments are ignored. *)

val finding_key : finding -> string
val parse_baseline : string -> string list

val subtract_baseline : baseline:string list -> finding list -> finding list
(** Findings not covered by the baseline (multiset semantics). *)
