(* Repo-wide symbol index for the interprocedural lint (DESIGN.md §5i).

   Every *.ml file is parsed once; each top-level [let]-bound value —
   including values nested in [module]s and functor bodies — becomes an
   {!entry} addressable under every suffix of its qualified path
   ("Vlock.try_lock", "Stm_core.Vlock.try_lock", ...).  The wrapper
   component comes from the dune library name of the file's directory
   (dune wraps library modules by default), so both intra-library
   ("Tvar.peek") and cross-library ("Stm_core.Tvar.peek") spellings hit
   the same entry.

   Module aliases ([module S = Classic_stm.Tl2]) and functor
   applications ([module Tl2 = Make (...)]) are recorded so calls through
   them resolve to the functor body's entries; [open]ed module paths are
   recorded per file for best-effort [Lident] resolution.  Everything the
   index cannot resolve is left to the caller's conservative fallbacks
   (Callgraph.resolve). *)

type entry = {
  id : int;
  name : string;  (** last path component *)
  path : string list;  (** full qualified path, wrapper included *)
  file : string;
  loc : Location.t;
  body : Parsetree.expression;
  anon : bool;  (** [let () = ...] / [let _ = ...]: scanned, never called *)
}

type alias = {
  a_file : string;
  a_scope : string list;  (** module path where the alias was declared *)
  a_target : string list;  (** target path, as written at the declaration *)
}

type t = {
  entries : entry array;
  by_key : (string, int list) Hashtbl.t;
      (** suffix-joined qualified name -> entry ids (later files shadow
          nothing: all candidates are kept and callers union effects) *)
  aliases : (string, alias) Hashtbl.t;
  opens_by_file : (string, string list list) Hashtbl.t;
  by_file : (string, int list) Hashtbl.t;
}

let join = String.concat "."

(* [Longident.flatten] is partial (fails on [Lapply]); the lint never
   needs applicative paths, so they resolve to nothing. *)
let flatten_lid (lid : Longident.t) =
  let rec go acc = function
    | Longident.Lident s -> Some (s :: acc)
    | Longident.Ldot (l, s) -> go (s :: acc) l
    | Longident.Lapply _ -> None
  in
  go [] lid

(* Suffix keys of ["A";"B";"c"]: ["B.c"; "A.B.c"].  Single-component
   keys are omitted — bare names are resolved against an explicit scope
   instead (Callgraph.resolve), which avoids cross-module collisions on
   common names like [create]. *)
let suffix_keys path =
  let rec go = function
    | [] | [ _ ] -> []
    | _ :: tl as p -> join p :: go tl
  in
  go path

let binding_name (p : Parsetree.pattern) =
  let rec go (p : Parsetree.pattern) =
    match p.ppat_desc with
    | Ppat_var { txt; _ } -> Some txt
    | Ppat_constraint (p, _) -> go p
    | _ -> None
  in
  go p

(* --- directory -> wrapper module (dune library name) ----------------- *)

(* Crude s-expression probe: the first [(name x)] after a [(library]
   marker.  Executable directories (bin, test, examples) yield no
   wrapper.  Cached per directory. *)
let wrapper_cache : (string, string option) Hashtbl.t = Hashtbl.create 16

let dune_wrapper_of_dir dir =
  match Hashtbl.find_opt wrapper_cache dir with
  | Some w -> w
  | None ->
    let w =
      let dune = Filename.concat dir "dune" in
      match In_channel.with_open_bin dune In_channel.input_all with
      | text ->
        let find_after pat =
          let lt = String.length text and lp = String.length pat in
          let rec at i =
            if i + lp > lt then None
            else if String.sub text i lp = pat then Some (i + lp)
            else at (i + 1)
          in
          at 0
        in
        (match find_after "(library" with
        | None -> None
        | Some i -> (
          match find_after "(name " with
          | Some j when j > i ->
            let k = ref j in
            let lt = String.length text in
            while
              !k < lt && text.[!k] <> ')' && text.[!k] <> ' '
              && text.[!k] <> '\n'
            do
              incr k
            done;
            if !k > j then Some (String.capitalize_ascii (String.sub text j (!k - j)))
            else None
          | _ -> None))
      | exception Sys_error _ -> None
    in
    Hashtbl.replace wrapper_cache dir w;
    w

let default_wrapper_of file = dune_wrapper_of_dir (Filename.dirname file)

let module_name_of_file file =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename file))

let file_module_path ?(wrapper_of = default_wrapper_of) file =
  let m = module_name_of_file file in
  match wrapper_of file with
  | Some w when w <> m -> [ w; m ]
  | _ -> [ m ]

(* --- building --------------------------------------------------------- *)

let build ?wrapper_of (parsed : (string * Parsetree.structure) list) : t =
  let entries = ref [] and n = ref 0 in
  let by_key = Hashtbl.create 512 in
  let aliases = Hashtbl.create 32 in
  let opens_by_file = Hashtbl.create 32 in
  let by_file = Hashtbl.create 32 in
  let add_key k id =
    let prev = Option.value ~default:[] (Hashtbl.find_opt by_key k) in
    Hashtbl.replace by_key k (id :: prev)
  in
  let add_entry ~file ~path ~name ~loc ~body ~anon =
    let id = !n in
    incr n;
    let e = { id; name; path = path @ [ name ]; file; loc; body; anon } in
    entries := e :: !entries;
    if not anon then List.iter (fun k -> add_key k id) (suffix_keys e.path);
    let prev = Option.value ~default:[] (Hashtbl.find_opt by_file file) in
    Hashtbl.replace by_file file (id :: prev)
  in
  let add_open file path =
    let prev = Option.value ~default:[] (Hashtbl.find_opt opens_by_file file) in
    Hashtbl.replace opens_by_file file (path :: prev)
  in
  let add_alias ~file ~scope ~name ~target =
    List.iter
      (fun k ->
        Hashtbl.replace aliases k
          { a_file = file; a_scope = scope; a_target = target })
      (suffix_keys (scope @ [ name ]) @ [ name ])
  in
  (* Head module path of a module expression: through functor
     applications ([Make (...)] -> Make), constraints and functors. *)
  let rec module_head (m : Parsetree.module_expr) =
    match m.pmod_desc with
    | Pmod_ident { txt; _ } -> flatten_lid txt
    | Pmod_apply (f, _) -> module_head f
    | Pmod_constraint (m, _) -> module_head m
    | _ -> None
  in
  let rec walk_module ~file ~scope (m : Parsetree.module_expr) ~name =
    match m.pmod_desc with
    | Pmod_structure str -> walk_structure ~file ~scope:(scope @ [ name ]) str
    | Pmod_functor (_, body) ->
      (* Functor bodies are indexed under the functor's own name; the
         parameter stays abstract and its uses resolve conservatively. *)
      walk_module ~file ~scope body ~name
    | Pmod_constraint (m, _) -> walk_module ~file ~scope m ~name
    | Pmod_ident _ | Pmod_apply _ -> (
      match module_head m with
      | Some target -> add_alias ~file ~scope ~name ~target
      | None -> ())
    | _ -> ()
  and walk_structure ~file ~scope (str : Parsetree.structure) =
    List.iter
      (fun (item : Parsetree.structure_item) ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
          List.iter
            (fun (vb : Parsetree.value_binding) ->
              match binding_name vb.pvb_pat with
              | Some name ->
                add_entry ~file ~path:scope ~name ~loc:vb.pvb_loc
                  ~body:vb.pvb_expr ~anon:false
              | None ->
                (* [let () = ...], [let _ = ...], destructuring lets:
                   not addressable, but their bodies must still be
                   scanned by every check. *)
                add_entry ~file ~path:scope ~name:"_" ~loc:vb.pvb_loc
                  ~body:vb.pvb_expr ~anon:true)
            vbs
        | Pstr_eval (e, _) ->
          add_entry ~file ~path:scope ~name:"_" ~loc:item.pstr_loc ~body:e
            ~anon:true
        | Pstr_module mb -> (
          match mb.pmb_name.txt with
          | Some name -> walk_module ~file ~scope mb.pmb_expr ~name
          | None -> ())
        | Pstr_recmodule mbs ->
          List.iter
            (fun (mb : Parsetree.module_binding) ->
              match mb.pmb_name.txt with
              | Some name -> walk_module ~file ~scope mb.pmb_expr ~name
              | None -> ())
            mbs
        | Pstr_open { popen_expr; _ } -> (
          match module_head popen_expr with
          | Some path -> add_open file path
          | None -> ())
        | Pstr_include { pincl_mod; _ } -> (
          (* [include M]: M's members appear unqualified here — treat as
             an open for resolution purposes (best effort). *)
          match module_head pincl_mod with
          | Some path -> add_open file path
          | None -> ())
        | _ -> ())
      str
  in
  List.iter
    (fun (file, str) ->
      let scope = file_module_path ?wrapper_of file in
      (* A file module is addressable both with and without the library
         wrapper; indexing under the full path plus suffix keys covers
         both spellings. *)
      walk_structure ~file ~scope str)
    parsed;
  let arr = Array.of_list (List.rev !entries) in
  { entries = arr; by_key; aliases; opens_by_file; by_file }

let find_key t k = Option.value ~default:[] (Hashtbl.find_opt t.by_key k)
let entry t id = t.entries.(id)

let entries_of_file t file =
  List.rev_map (entry t)
    (Option.value ~default:[] (Hashtbl.find_opt t.by_file file))

let opens_of_file t file =
  Option.value ~default:[] (Hashtbl.find_opt t.opens_by_file file)
