(** Orchestration of the paper's figures (the per-experiment index of
    DESIGN.md).  Each figure is a (structure, bulk-ratio) pair measured for
    the five series — Sequential, OE-STM, LSA, TL2, SwissTM — across the
    thread axis, reporting throughput (ops/ms) and abort rate (%), exactly
    the two quantities plotted in Figures 6, 7 and 8. *)

type figure = F6a | F6b | F6r | F7a | F7b | F8a | F8b

let all = [ F6a; F6b; F7a; F7b; F8a; F8b ]

(* The read-dominated companion sweep: linked-list traversals are the
   workload where per-read write-set lookups and read-set revalidation
   dominate, so this is the series that exposes set-indexing regressions
   (or wins).  [F6r] drops the update ratio to 5%. *)
let read_heavy = [ F6a; F6b; F6r ]

let of_string = function
  | "6a" -> Some F6a
  | "6b" -> Some F6b
  | "6r" -> Some F6r
  | "7a" -> Some F7a
  | "7b" -> Some F7b
  | "8a" -> Some F8a
  | "8b" -> Some F8b
  | _ -> None

let name = function
  | F6a -> "Figure 6(a): LinkedListSet, 5% addAll/removeAll"
  | F6b -> "Figure 6(b): LinkedListSet, 15% addAll/removeAll"
  | F6r -> "Figure 6(r): LinkedListSet read-heavy, 5% updates, 1% bulk"
  | F7a -> "Figure 7(a): SkipListSet, 5% addAll/removeAll"
  | F7b -> "Figure 7(b): SkipListSet, 15% addAll/removeAll"
  | F8a -> "Figure 8(a): HashSet (load factor 512), 5% addAll/removeAll"
  | F8b -> "Figure 8(b): HashSet (load factor 512), 15% addAll/removeAll"

let short_name = function
  | F6a -> "6a"
  | F6b -> "6b"
  | F6r -> "6r"
  | F7a -> "7a"
  | F7b -> "7b"
  | F8a -> "8a"
  | F8b -> "8b"

let structure_of = function
  | F6a | F6b | F6r -> Target.Linked_list
  | F7a | F7b -> Target.Skip_list
  | F8a | F8b -> Target.Hash_set { load_factor = 512 }

let bulk_ratio_of = function
  | F6a | F7a | F8a -> 0.05
  | F6r -> 0.01
  | F6b | F7b | F8b -> 0.15

let update_ratio_of = function F6r -> 0.05 | _ -> 0.20

type series_result = {
  series_name : string;
  points : Sweep.point list;
}

type figure_result = {
  figure : figure;
  cfg : Workload.config;
  threads : int list;
  series : series_result list;
  seed : int;
  duration : float;  (** seconds per run, as requested *)
  runs : int;
}

let run ?(size_exp = 12) ?(threads = [ 1; 2; 4; 8 ]) ?(duration = 0.2)
    ?(runs = 1) ?(seed = 42) ?(detailed = false) figure =
  let cfg =
    Workload.paper ~size_exp
      ~update_ratio:(update_ratio_of figure)
      ~bulk_ratio:(bulk_ratio_of figure) ()
  in
  let series =
    List.map
      (fun (module T : Target.TARGET) ->
        (* The bare sequential structure is only safe single-threaded; its
           line in the paper is the single-thread throughput. *)
        let axis = if T.name = "Sequential" then [ 1 ] else threads in
        { series_name = T.name;
          points =
            Sweep.run_series ~detailed (module T) ~cfg ~threads:axis
              ~duration ~runs ~seed })
      (Target.series_for (structure_of figure))
  in
  { figure; cfg; threads; series; seed; duration; runs }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let pp_result ppf (r : figure_result) =
  Format.fprintf ppf "@.=== %s ===@." (name r.figure);
  Format.fprintf ppf "workload: 2^%d elements, range 2^%d, %.0f%% updates \
                      (%.0f%% bulk)@."
    r.cfg.Workload.size_exp
    (r.cfg.Workload.size_exp + 1)
    (100.0 *. r.cfg.Workload.update_ratio)
    (100.0 *. r.cfg.Workload.bulk_ratio);
  Format.fprintf ppf "%-12s" "series";
  List.iter (fun t -> Format.fprintf ppf "%14s" (Printf.sprintf "%d thr" t)) r.threads;
  Format.fprintf ppf "@.";
  List.iter
    (fun s ->
      (* throughput row *)
      Format.fprintf ppf "%-12s" s.series_name;
      List.iter
        (fun t ->
          match List.find_opt (fun p -> p.Sweep.threads = t) s.points with
          | Some p -> Format.fprintf ppf "%11.1f op/ms" p.Sweep.ops_per_ms
          | None ->
            (* Sequential: single-thread value repeated as the flat line. *)
            (match s.points with
            | [ p ] -> Format.fprintf ppf "%11.1f op/ms" p.Sweep.ops_per_ms
            | _ -> Format.fprintf ppf "%17s" "-"))
        r.threads;
      Format.fprintf ppf "@.";
      if s.series_name <> "Sequential" then begin
        Format.fprintf ppf "%-12s" "  abort rate";
        List.iter
          (fun t ->
            match List.find_opt (fun p -> p.Sweep.threads = t) s.points with
            | Some p ->
              Format.fprintf ppf "%15.1f %%" (100.0 *. p.Sweep.abort_rate)
            | None -> Format.fprintf ppf "%17s" "-")
          r.threads;
        Format.fprintf ppf "@."
      end)
    r.series;
  (* The paper's headline: OE-STM speedup over the best classic STM at the
     highest thread count. *)
  let at_max s =
    List.find_opt
      (fun p -> p.Sweep.threads = List.fold_left max 1 r.threads)
      s.points
  in
  let tp name =
    List.find_opt (fun s -> s.series_name = name) r.series
    |> Fun.flip Option.bind at_max
    |> Option.map (fun p -> p.Sweep.ops_per_ms)
  in
  (match (tp "OE-STM", tp "LSA", tp "TL2", tp "SwissTM") with
  | Some oe, Some a, Some b, Some c ->
    let best_classic = List.fold_left max a [ b; c ] |> fun m -> List.fold_left max m [] in
    if best_classic > 0.0 then
      Format.fprintf ppf
        "OE-STM speedup over best classic STM at %d threads: %.2fx@."
        (List.fold_left max 1 r.threads)
        (oe /. best_classic)
  | _ -> ())

let pp_csv ppf (r : figure_result) =
  Format.fprintf ppf "figure,series,threads,ops_per_ms,abort_rate@.";
  List.iter
    (fun s ->
      List.iter
        (fun p ->
          Format.fprintf ppf "%s,%s,%d,%.3f,%.4f@." (short_name r.figure)
            s.series_name p.Sweep.threads p.Sweep.ops_per_ms
            p.Sweep.abort_rate)
        s.points)
    r.series
