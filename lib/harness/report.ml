(** Machine-readable benchmark reports.

    A dependency-free JSON value type with a printer (and a small parser,
    used by the tests to prove the emitted reports are well formed), plus
    the serialisation of {!Figures.figure_result} into the repository's
    benchmark schema:

    {v
    { "schema_version": 2,
      "config": { "cm": ..., "retry_cap": ..., "starvation_mode": ...,
                  "tx_timeout_ns": ..., "backoff_init": ..., "backoff_max": ...,
                  "faults": null | { "spec": ..., rates..., "injected": {...} } },
      "figures": [
        { "figure": "6a", "title": ..., "workload": {...},
          "seed": ..., "runs": ..., "duration_s": ...,
          "threads": [1, 2, ...],
          "series": [
            { "name": "OE-STM",
              "points": [
                { "threads": ..., "ops_per_ms": ..., "abort_rate": ...,
                  "total_ops": ..., "commits": ..., "aborts": ...,
                  "starvations": ..., "fallbacks": ..., "timeouts": ...,
                  "read_ws_hits": ..., "read_ws_misses": ...,
                  "elapsed_ms": ..., "runs": ...,
                  "aborts_by_reason": { "<reason>": n, ... },
                  "commit_latency_ns":  {"count", "p50", "p90", "p99", "max"},
                  "abort_latency_ns":   {...},
                  "retry_depth":        {...},
                  "read_set_size":      {...},
                  "write_set_size":     {...},
                  "validation_len":     {...} } ] } ] } ] }
    v}

    Histogram summaries come from the log-bucketed {!Stm_core.Stats.Hist},
    so every percentile is a power-of-two upper bound; a count of 0 means
    detailed metrics were off while the point was measured. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_repr f =
  match Float.classify_float f with
  | FP_nan | FP_infinite -> "null"  (* JSON has no nan/inf *)
  | _ ->
    let s = Printf.sprintf "%.12g" f in
    (* "%g" may print an integral float without '.' or 'e'; that is still
       valid JSON (a number), so no fixup is needed. *)
    s

let rec print_into buf ~indent ~level (j : json) =
  let pad n = Buffer.add_string buf (String.make (n * indent) ' ') in
  let newline () = if indent > 0 then Buffer.add_char buf '\n' in
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s ->
    Buffer.add_char buf '"';
    escape_into buf s;
    Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_char buf '[';
    newline ();
    List.iteri
      (fun i item ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          newline ()
        end;
        pad (level + 1);
        print_into buf ~indent ~level:(level + 1) item)
      items;
    newline ();
    pad level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    newline ();
    List.iteri
      (fun i (k, v) ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          newline ()
        end;
        pad (level + 1);
        Buffer.add_char buf '"';
        escape_into buf k;
        Buffer.add_string buf "\": ";
        print_into buf ~indent ~level:(level + 1) v)
      fields;
    newline ();
    pad level;
    Buffer.add_char buf '}'

let to_string ?(indent = 2) j =
  let buf = Buffer.create 4096 in
  print_into buf ~indent ~level:0 j;
  if indent > 0 then Buffer.add_char buf '\n';
  Buffer.contents buf

let write_file file j =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string j))

(* ------------------------------------------------------------------ *)
(* Parsing (for validation; accepts exactly the JSON we print, plus
   arbitrary whitespace)                                               *)

exception Parse_error of string

let of_string (s : string) : (json, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal lit v =
    if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit
    then begin
      pos := !pos + String.length lit;
      v
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "unterminated escape";
         match s.[!pos] with
         | '"' -> Buffer.add_char buf '"'; advance ()
         | '\\' -> Buffer.add_char buf '\\'; advance ()
         | '/' -> Buffer.add_char buf '/'; advance ()
         | 'n' -> Buffer.add_char buf '\n'; advance ()
         | 'r' -> Buffer.add_char buf '\r'; advance ()
         | 't' -> Buffer.add_char buf '\t'; advance ()
         | 'b' -> Buffer.add_char buf '\b'; advance ()
         | 'f' -> Buffer.add_char buf '\012'; advance ()
         | 'u' ->
           if !pos + 4 >= n then fail "truncated \\u escape";
           let hex = String.sub s (!pos + 1) 4 in
           let code =
             match int_of_string_opt ("0x" ^ hex) with
             | Some c -> c
             | None -> fail "bad \\u escape"
           in
           (* The emitter only escapes control characters, so decoding the
              ASCII range suffices for round-tripping our own output. *)
           if code < 0x80 then Buffer.add_char buf (Char.chr code)
           else fail "non-ASCII \\u escape unsupported";
           pos := !pos + 5
         | _ -> fail "bad escape");
        go ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match int_of_string_opt lit with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* Convenience accessors for tests and downstream tooling. *)
let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Benchmark schema                                                    *)

let schema_version = 2

let hist_summary (h : Stm_core.Stats.Hist.snapshot) =
  let module H = Stm_core.Stats.Hist in
  Obj
    [ ("count", Int (H.count h));
      ("p50", Int (H.percentile h 50.0));
      ("p90", Int (H.percentile h 90.0));
      ("p99", Int (H.percentile h 99.0));
      ("max", Int (H.max_value h)) ]

let snapshot_fields (s : Stm_core.Stats.snapshot) =
  [ ("commits", Int s.Stm_core.Stats.commits);
    ("aborts", Int s.Stm_core.Stats.aborts);
    ("starvations", Int s.Stm_core.Stats.starvations);
    ("fallbacks", Int s.Stm_core.Stats.fallbacks);
    ("timeouts", Int s.Stm_core.Stats.timeouts);
    ("read_ws_hits", Int s.Stm_core.Stats.read_ws_hits);
    ("read_ws_misses", Int s.Stm_core.Stats.read_ws_misses);
    ( "aborts_by_reason",
      Obj
        (List.map
           (fun (r, n) -> (Stm_core.Control.reason_to_string r, Int n))
           s.Stm_core.Stats.by_reason) );
    ("commit_latency_ns", hist_summary s.Stm_core.Stats.commit_latency_ns);
    ("abort_latency_ns", hist_summary s.Stm_core.Stats.abort_latency_ns);
    ("retry_depth", hist_summary s.Stm_core.Stats.retry_depth);
    ("read_set_size", hist_summary s.Stm_core.Stats.read_set_size);
    ("write_set_size", hist_summary s.Stm_core.Stats.write_set_size);
    ("validation_len", hist_summary s.Stm_core.Stats.validation_len) ]

let point_to_json (p : Sweep.point) =
  Obj
    ([ ("threads", Int p.Sweep.threads);
       ("ops_per_ms", Float p.Sweep.ops_per_ms);
       ("abort_rate", Float p.Sweep.abort_rate);
       ("total_ops", Int p.Sweep.total_ops);
       ("elapsed_ms", Float p.Sweep.elapsed_ms);
       ("runs", Int p.Sweep.runs) ]
    @ snapshot_fields p.Sweep.stats)

let series_to_json (s : Figures.series_result) =
  Obj
    [ ("name", Str s.Figures.series_name);
      ("points", List (List.map point_to_json s.Figures.points)) ]

let figure_to_json (r : Figures.figure_result) =
  let cfg = r.Figures.cfg in
  Obj
    [ ("figure", Str (Figures.short_name r.Figures.figure));
      ("title", Str (Figures.name r.Figures.figure));
      ( "workload",
        Obj
          [ ("size_exp", Int cfg.Workload.size_exp);
            ("update_ratio", Float cfg.Workload.update_ratio);
            ("bulk_ratio", Float cfg.Workload.bulk_ratio) ] );
      ("seed", Int r.Figures.seed);
      ("runs", Int r.Figures.runs);
      ("duration_s", Float r.Figures.duration);
      ("threads", List (List.map (fun t -> Int t) r.Figures.threads));
      ("series", List (List.map series_to_json r.Figures.series)) ]

(* Runtime configuration snapshot: which contention manager, retry cap,
   backoff parameters and fault-injection settings produced the numbers.
   Read at report-generation time, so it reflects what the CLIs set. *)
let config_to_json () =
  let init, max_window = Stm_core.Backoff.defaults () in
  let faults =
    match Stm_core.Faults.current () with
    | None -> Null
    | Some c ->
      Obj
        ([ ("spec", Str (Stm_core.Faults.to_string c));
           ("seed", Int c.Stm_core.Faults.seed);
           ("spurious_abort", Float c.Stm_core.Faults.spurious_abort);
           ("lock_fail", Float c.Stm_core.Faults.lock_fail);
           ("validation_fail", Float c.Stm_core.Faults.validation_fail);
           ("delay", Float c.Stm_core.Faults.delay);
           ("max_delay_spins", Int c.Stm_core.Faults.max_delay_spins);
           ("crash", Float c.Stm_core.Faults.crash);
           ("user_raise", Float c.Stm_core.Faults.user_raise);
           ("fsync_fail", Float c.Stm_core.Faults.fsync_fail);
           ("short_write", Float c.Stm_core.Faults.short_write) ]
        @ [ ( "injected",
              Obj
                (List.map
                   (fun (k, n) -> (Stm_core.Faults.kind_name k, Int n))
                   (Stm_core.Faults.counts ())) ) ])
  in
  Obj
    [ ("cm", Str (Stm_core.Cm.policy_name (Stm_core.Cm.current_policy ())));
      (* Additive since the clock grew GV1/GV4/GV5 policies; the schema
         version stays 2 (absent = "gv1" in older reports). *)
      ( "clock",
        Str (Stm_core.Clock.policy_name (Stm_core.Clock.current_policy ())) );
      ("retry_cap", Int !Stm_core.Runtime.retry_cap);
      ( "starvation_mode",
        Str
          (match !Stm_core.Runtime.starvation_mode with
          | `Raise -> "raise"
          | `Fallback -> "fallback") );
      ( "tx_timeout_ns",
        match !Stm_core.Runtime.tx_timeout_ns with
        | None -> Null
        | Some ns -> Int ns );
      ("backoff_init", Int init);
      ("backoff_max", Int max_window);
      ("faults", faults) ]

(* Sanitizer verdict: [null] when the run was not sanitized (so old
   consumers see an explicit "not checked", not a zero count), otherwise
   the work done and the violations found, by kind.  Additive — the
   schema version stays 2. *)
let sanitizer_to_json () =
  let module San = Stm_core.Sanitizer in
  if not (San.enabled ()) then Null
  else
    let c = San.checks () in
    Obj
      [ ("enabled", Bool true);
        ( "checks",
          Obj
            [ ("lock_transitions", Int c.San.lock_transitions);
              ("reads_validated", Int c.San.reads_validated);
              ("commits_checked", Int c.San.commits_checked);
              ("unsafe_writes_checked", Int c.San.unsafe_writes_checked);
              ("peeks_checked", Int c.San.peeks_checked);
              ("attempts_audited", Int c.San.attempts_audited);
              ("zombie_aborts", Int c.San.zombie_aborts);
              ("steals_checked", Int c.San.steals_checked) ] );
        ("violations", Int (San.violation_count ()));
        ( "violations_by_kind",
          Obj
            (List.map
               (fun (k, n) -> (San.kind_name k, Int n))
               (San.counts_by_kind ())) ) ]

(* Recovery verdict: [null] when orphan-lock recovery was off (explicit
   "not running", not a zero count), otherwise the lease and the steal
   counters.  Additive — the schema version stays 2. *)
let recovery_to_json () =
  if not !Stm_core.Runtime.recovery then Null
  else
    let c = Stm_core.Stats.recovery_counters () in
    Obj
      [ ("enabled", Bool true);
        ("lease_ns", Int (Stm_core.Recovery.lease_ns ()));
        ("orphan_steals", Int c.Stm_core.Stats.orphan_steals);
        ("lease_expiries", Int c.Stm_core.Stats.lease_expiries);
        ("poisoned_commits", Int c.Stm_core.Stats.poisoned_commits) ]

(* Durability verdict: [null] when no write-ahead log was open (explicit
   "not durable", not a zero count), otherwise the WAL configuration and
   the durable-commit counters.  Additive — the schema version stays 2. *)
let durability_to_json () =
  if not !Stm_core.Runtime.durability then Null
  else
    let c = Stm_core.Stats.durable_counters () in
    Obj
      [ ("enabled", Bool true);
        ("wal_path", Str (Persist.wal_path ()));
        ("sync_every", Int (Persist.wal_sync_every ()));
        ("broken", Bool (Persist.wal_broken ()));
        ("durable_commits", Int c.Stm_core.Stats.durable_commits);
        ("wal_appends", Int c.Stm_core.Stats.wal_appends);
        ("wal_syncs", Int c.Stm_core.Stats.wal_syncs);
        ("wal_sync_failures", Int c.Stm_core.Stats.wal_sync_failures);
        ("wal_short_writes", Int c.Stm_core.Stats.wal_short_writes);
        ("acked_records", Int (Persist.acked_records ()));
        ("acked_wv", Int (Persist.acked_wv ())) ]

let report (results : Figures.figure_result list) =
  Obj
    [ ("schema_version", Int schema_version);
      ("config", config_to_json ());
      ("sanitizer", sanitizer_to_json ());
      ("recovery", recovery_to_json ());
      ("durability", durability_to_json ());
      ("figures", List (List.map figure_to_json results)) ]
