(** Chaos testing: model checks under deterministic fault injection.

    For each engine (OE-STM, TL2, View-STM, boosting) and each seed, random
    schedules from the deterministic scheduler run a small transfer
    workload while {!Stm_core.Faults} injects spurious aborts, lock-acquire
    failures, validation failures and delays.  Three properties are
    checked, per schedule:

    - {b isolation}: every transaction that reads all cells sees the
      conserved total — a torn read under faults is a safety violation;
    - {b conservation}: after all processes finish, the cells still sum to
      the preloaded total;
    - {b no escaping exceptions}: under the default configuration no
      process may end with {!Stm_core.Control.Starvation} (or anything
      else) — the serial-irrevocable fallback must absorb livelocks.

    A dedicated high-rate scenario drives every engine into the fallback
    (retry cap 1, near-certain injected aborts), so a chaos run also proves
    the escalation path commits.  Finally a multi-domain stress run checks
    conservation under real parallelism with faults enabled.

    The module is shared by the [chaos] test suite and [bin/chaos.exe]
    (which emits the JSON report CI archives). *)

open Stm_core
open Schedsim

type engine = OE | TL2 | View | Boost

let all_engines = [ OE; TL2; View; Boost ]

let engine_name = function
  | OE -> "OE-STM"
  | TL2 -> "TL2"
  | View -> "View-STM"
  | Boost -> "boosting"

let engine_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "oe" | "oe-stm" | "oestm" -> OE
  | "tl2" -> TL2
  | "view" | "view-stm" | "viewstm" -> View
  | "boost" | "boosting" -> Boost
  | _ -> invalid_arg ("Chaos.engine_of_string: unknown engine " ^ s)

(* Default chaos rates: every fault kind enabled, none so hot that honest
   work cannot get through optimistically most of the time. *)
let default_faults =
  { Faults.default with
    Faults.spurious_abort = 0.02;
    lock_fail = 0.05;
    validation_fail = 0.05;
    delay = 0.02;
    max_delay_spins = 8 }

type engine_result = {
  engine : string;
  seeds : int list;
  runs_per_seed : int;
  schedules : int;       (** sampled schedules actually executed *)
  failed_seeds : int list;  (** seeds with at least one failing schedule *)
  stress_ok : bool;      (** multi-domain conservation held *)
  stats : Stats.snapshot;   (** engine stats over the whole chaos run *)
  injected : (Faults.kind * int) list;  (** faults injected, by kind *)
  san_violations : int;
      (** sanitizer violations recorded during this engine's run; 0 when
          the sanitizer is off (schedule exploration is simulated and thus
          exempt — only the multi-domain stress run is sanitized) *)
}

let ok r = r.failed_seeds = [] && r.stress_ok && r.san_violations = 0

(* ------------------------------------------------------------------ *)
(* Scenarios for tvar-based engines                                    *)

module Stm_chaos (S : Stm_intf.S) = struct
  let cells = 4
  let preload = 100
  let total = cells * preload

  (* Two processes, two transfers each.  Each transfer reads every cell
     (isolation check), then moves one unit between two of them. *)
  let scenario () =
    let slot = ref (fun () -> true) in
    { Explore.procs =
        (fun () ->
          let tvs = Array.init cells (fun _ -> S.tvar preload) in
          let torn = ref false in
          slot :=
            (fun () ->
              (not !torn)
              && Array.fold_left (fun a tv -> a + S.peek tv) 0 tvs = total);
          let proc i () =
            for j = 0 to 1 do
              let a = (i + j) mod cells in
              let b = (a + 1 + i) mod cells in
              let sum =
                S.atomic (fun ctx ->
                    let vals = Array.map (fun tv -> S.read ctx tv) tvs in
                    let s = Array.fold_left ( + ) 0 vals in
                    if a <> b then begin
                      S.write ctx tvs.(a) (vals.(a) - 1);
                      S.write ctx tvs.(b) (vals.(b) + 1)
                    end;
                    s)
              in
              if sum <> total then torn := true
            done
          in
          [ proc 0; proc 1 ]);
      check =
        (fun outcome ->
          match outcome.Sched.failures with
          | _ :: _ -> false  (* nothing may escape, Starvation included *)
          | [] -> if Sched.completed outcome then (!slot) () else true) }

  (* One process, retry cap 1, near-certain injected aborts: the only way
     to finish is through the serial fallback. *)
  let fallback_scenario () =
    let slot = ref (fun () -> true) in
    { Explore.procs =
        (fun () ->
          let tv = S.tvar 0 in
          slot := (fun () -> S.peek tv = 1);
          [ (fun () ->
              S.atomic (fun ctx -> S.write ctx tv (S.read ctx tv + 1))) ])
      ;
      check =
        (fun outcome ->
          match outcome.Sched.failures with
          | _ :: _ -> false
          | [] -> if Sched.completed outcome then (!slot) () else true) }

  let sample_seed ~runs ~seed =
    let sc = scenario () in
    let r1 =
      Explore.sample ~runs ~retry_cap:8 ~starvation_mode:`Fallback ~seed sc
    in
    let hot = { default_faults with Faults.spurious_abort = 0.9; seed } in
    Faults.enable hot;
    let r2 =
      Fun.protect
        ~finally:(fun () -> Faults.enable { default_faults with Faults.seed })
        (fun () ->
          Explore.sample ~runs:2 ~retry_cap:1 ~starvation_mode:`Fallback ~seed
            (fallback_scenario ()))
    in
    (r1, r2)

  (* Real-domain stress: [domains] workers, [txns] transfers each over a
     shared array; the total is conserved iff every transfer was atomic. *)
  let stress ~domains ~txns =
    let n = 8 in
    let tvs = Array.init n (fun _ -> S.tvar preload) in
    let worker d () =
      for j = 1 to txns do
        let a = (d + j) mod n in
        let b = (a + 1 + (j mod (n - 1))) mod n in
        if a <> b then
          S.atomic (fun ctx ->
              let va = S.read ctx tvs.(a) in
              let vb = S.read ctx tvs.(b) in
              S.write ctx tvs.(a) (va - 1);
              S.write ctx tvs.(b) (vb + 1))
      done
    in
    let ds = List.init domains (fun d -> Domain.spawn (worker d)) in
    List.iter Domain.join ds;
    Array.fold_left (fun a tv -> a + S.peek tv) 0 tvs = n * preload

  let run ~seeds ~runs_per_seed ~stress_domains ~stress_txns =
    Stats.reset S.stats;
    Faults.reset_counts ();
    let san0 = Sanitizer.violation_count () in
    let failed = ref [] in
    let schedules = ref 0 in
    List.iter
      (fun seed ->
        Faults.enable { default_faults with Faults.seed };
        let r1, r2 =
          Fun.protect ~finally:Faults.disable (fun () ->
              sample_seed ~runs:runs_per_seed ~seed)
        in
        let count = function
          | Explore.All_ok { explored; _ } ->
            schedules := !schedules + explored;
            true
          | Explore.Out_of_budget { explored; _ } ->
            schedules := !schedules + explored;
            true
          | Explore.Violation { explored; _ } ->
            schedules := !schedules + explored;
            false
        in
        let ok1 = count r1 in
        let ok2 = count r2 in
        if not (ok1 && ok2) then failed := seed :: !failed)
      seeds;
    let stress_ok =
      Faults.enable { default_faults with Faults.seed = List.nth seeds 0 };
      Fun.protect ~finally:Faults.disable (fun () ->
          stress ~domains:stress_domains ~txns:stress_txns)
    in
    { engine = S.name;
      seeds;
      runs_per_seed;
      schedules = !schedules;
      failed_seeds = List.rev !failed;
      stress_ok;
      stats = Stats.snapshot S.stats;
      injected = Faults.counts ();
      san_violations = Sanitizer.violation_count () - san0 }
end

(* ------------------------------------------------------------------ *)
(* Boosting scenario                                                   *)

module Boost_chaos = struct
  module Base = Seqds.Hash (Seqds.Int_key)

  module BSet =
    Boosting.Boost
      (struct
        type elt = int
        type t = Base.t

        let create () = Base.create ()
        let contains = Base.contains
        let add = Base.add
        let remove = Base.remove
      end)
      (struct
        let hash = Seqds.Int_key.hash
      end)

  (* One process inserts pairs atomically; the other must never observe
     half a pair.  Conservation: both pairs complete in the end. *)
  let scenario () =
    let slot = ref (fun () -> true) in
    { Explore.procs =
        (fun () ->
          let s = BSet.create ~stripes:4 () in
          let half_pair = ref false in
          slot :=
            (fun () ->
              (not !half_pair)
              && BSet.contains s 0 && BSet.contains s 1 && BSet.contains s 2
              && BSet.contains s 3);
          [ (fun () ->
              ignore (BSet.add_all s [ 0; 1 ]);
              ignore (BSet.add_all s [ 2; 3 ]));
            (fun () ->
              for _ = 1 to 2 do
                let seen =
                  Boosting.atomic (fun _ ->
                      (Bool.to_int (BSet.contains s 0), Bool.to_int (BSet.contains s 1)))
                in
                match seen with
                | 1, 0 | 0, 1 -> half_pair := true
                | _ -> ()
              done) ]);
      check =
        (fun outcome ->
          match outcome.Sched.failures with
          | _ :: _ -> false
          | [] -> if Sched.completed outcome then (!slot) () else true) }

  let fallback_scenario () =
    let slot = ref (fun () -> true) in
    { Explore.procs =
        (fun () ->
          let s = BSet.create ~stripes:2 () in
          slot := (fun () -> BSet.contains s 7);
          [ (fun () -> ignore (BSet.add s 7)) ]);
      check =
        (fun outcome ->
          match outcome.Sched.failures with
          | _ :: _ -> false
          | [] -> if Sched.completed outcome then (!slot) () else true) }

  let sample_seed ~runs ~seed =
    let r1 =
      Explore.sample ~runs ~retry_cap:8 ~starvation_mode:`Fallback ~seed
        (scenario ())
    in
    let hot = { default_faults with Faults.spurious_abort = 0.9; seed } in
    Faults.enable hot;
    let r2 =
      Fun.protect
        ~finally:(fun () -> Faults.enable { default_faults with Faults.seed })
        (fun () ->
          Explore.sample ~runs:2 ~retry_cap:1 ~starvation_mode:`Fallback ~seed
            (fallback_scenario ()))
    in
    (r1, r2)

  let stress ~domains ~txns =
    let s = BSet.create () in
    let worker d () =
      for i = 0 to txns - 1 do
        let base = 2 * ((d * txns) + i) in
        ignore (BSet.add_all s [ base; base + 1 ])
      done
    in
    let ds = List.init domains (fun d -> Domain.spawn (worker d)) in
    List.iter Domain.join ds;
    let ok = ref true in
    for d = 0 to domains - 1 do
      for i = 0 to txns - 1 do
        let base = 2 * ((d * txns) + i) in
        if not (BSet.contains s base && BSet.contains s (base + 1)) then
          ok := false
      done
    done;
    !ok

  let run ~seeds ~runs_per_seed ~stress_domains ~stress_txns =
    Stats.reset Boosting.stats;
    Faults.reset_counts ();
    let san0 = Sanitizer.violation_count () in
    let failed = ref [] in
    let schedules = ref 0 in
    List.iter
      (fun seed ->
        Faults.enable { default_faults with Faults.seed };
        let r1, r2 =
          Fun.protect ~finally:Faults.disable (fun () ->
              sample_seed ~runs:runs_per_seed ~seed)
        in
        let count = function
          | Explore.All_ok { explored; _ } | Explore.Out_of_budget { explored; _ }
            ->
            schedules := !schedules + explored;
            true
          | Explore.Violation { explored; _ } ->
            schedules := !schedules + explored;
            false
        in
        let ok1 = count r1 in
        let ok2 = count r2 in
        if not (ok1 && ok2) then failed := seed :: !failed)
      seeds;
    let stress_ok =
      Faults.enable { default_faults with Faults.seed = List.nth seeds 0 };
      Fun.protect ~finally:Faults.disable (fun () ->
          stress ~domains:stress_domains ~txns:stress_txns)
    in
    { engine = "boosting";
      seeds;
      runs_per_seed;
      schedules = !schedules;
      failed_seeds = List.rev !failed;
      stress_ok;
      stats = Stats.snapshot Boosting.stats;
      injected = Faults.counts ();
      san_violations = Sanitizer.violation_count () - san0 }
end

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)

module Oe_chaos = Stm_chaos (Oestm.Oe)
module Tl2_chaos = Stm_chaos (Classic_stm.Tl2)
module View_chaos = Stm_chaos (Viewstm.V)

let default_seeds = List.init 20 (fun i -> i + 1)

let run_engine ?(seeds = default_seeds) ?(runs_per_seed = 30)
    ?(stress_domains = 4) ?(stress_txns = 200) engine =
  if seeds = [] then invalid_arg "Chaos.run_engine: empty seed list";
  let run =
    match engine with
    | OE -> Oe_chaos.run
    | TL2 -> Tl2_chaos.run
    | View -> View_chaos.run
    | Boost -> Boost_chaos.run
  in
  run ~seeds ~runs_per_seed ~stress_domains ~stress_txns

let run_all ?seeds ?runs_per_seed ?stress_domains ?stress_txns () =
  List.map
    (fun e -> run_engine ?seeds ?runs_per_seed ?stress_domains ?stress_txns e)
    all_engines

(* ------------------------------------------------------------------ *)
(* JSON report                                                         *)

let engine_to_json (r : engine_result) =
  Report.Obj
    [ ("engine", Report.Str r.engine);
      ("seeds", Report.List (List.map (fun s -> Report.Int s) r.seeds));
      ("runs_per_seed", Report.Int r.runs_per_seed);
      ("schedules", Report.Int r.schedules);
      ("ok", Report.Bool (ok r));
      ( "failed_seeds",
        Report.List (List.map (fun s -> Report.Int s) r.failed_seeds) );
      ("stress_ok", Report.Bool r.stress_ok);
      ("commits", Report.Int r.stats.Stats.commits);
      ("aborts", Report.Int r.stats.Stats.aborts);
      ("starvations", Report.Int r.stats.Stats.starvations);
      ("fallbacks", Report.Int r.stats.Stats.fallbacks);
      ("timeouts", Report.Int r.stats.Stats.timeouts);
      ("san_violations", Report.Int r.san_violations);
      ( "injected",
        Report.Obj
          (List.map
             (fun (k, n) -> (Faults.kind_name k, Report.Int n))
             r.injected) ) ]

let report_json (results : engine_result list) =
  Report.Obj
    [ ("schema_version", Report.Int Report.schema_version);
      ("kind", Report.Str "chaos");
      ( "faults",
        Report.Str (Faults.to_string default_faults) );
      ("sanitizer", Report.sanitizer_to_json ());
      ("engines", Report.List (List.map engine_to_json results)) ]
