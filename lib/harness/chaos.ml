(** Chaos testing: model checks under deterministic fault injection.

    For each engine (OE-STM, TL2, View-STM, boosting) and each seed, random
    schedules from the deterministic scheduler run a small transfer
    workload while {!Stm_core.Faults} injects spurious aborts, lock-acquire
    failures, validation failures and delays.  Three properties are
    checked, per schedule:

    - {b isolation}: every transaction that reads all cells sees the
      conserved total — a torn read under faults is a safety violation;
    - {b conservation}: after all processes finish, the cells still sum to
      the preloaded total;
    - {b no escaping exceptions}: under the default configuration no
      process may end with {!Stm_core.Control.Starvation} (or anything
      else) — the serial-irrevocable fallback must absorb livelocks.

    A dedicated high-rate scenario drives every engine into the fallback
    (retry cap 1, near-certain injected aborts), so a chaos run also proves
    the escalation path commits.  Finally a multi-domain stress run checks
    conservation under real parallelism with faults enabled.

    The module is shared by the [chaos] test suite and [bin/chaos.exe]
    (which emits the JSON report CI archives). *)

open Stm_core
open Schedsim

[@@@txlint.allow "stm-escape"
    "the chaos driver peeks committed state between scheduler steps and \
     after runs, never inside a transaction"]

[@@@txlint.allow "crash-swallowed"
    "the chaos driver injected the crashes; it alone absorbs them to \
     keep exploring schedules"]

[@@@txlint.allow "catch-all"
    "the crash-restart child worker runs between [fork] and [SIGKILL]: \
     any exception there must turn into [Unix._exit], never escape into \
     a duplicated parent stack"]

type engine = OE | TL2 | View | Boost

let all_engines = [ OE; TL2; View; Boost ]

let engine_name = function
  | OE -> "OE-STM"
  | TL2 -> "TL2"
  | View -> "View-STM"
  | Boost -> "boosting"

let engine_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "oe" | "oe-stm" | "oestm" -> OE
  | "tl2" -> TL2
  | "view" | "view-stm" | "viewstm" -> View
  | "boost" | "boosting" -> Boost
  | _ -> invalid_arg ("Chaos.engine_of_string: unknown engine " ^ s)

(* Default chaos rates: every fault kind enabled, none so hot that honest
   work cannot get through optimistically most of the time. *)
let default_faults =
  { Faults.default with
    Faults.spurious_abort = 0.02;
    lock_fail = 0.05;
    validation_fail = 0.05;
    delay = 0.02;
    max_delay_spins = 8 }

type engine_result = {
  engine : string;
  seeds : int list;
  runs_per_seed : int;
  schedules : int;       (** sampled schedules actually executed *)
  failed_seeds : int list;  (** seeds with at least one failing schedule *)
  stress_ok : bool;      (** multi-domain conservation held *)
  stats : Stats.snapshot;   (** engine stats over the whole chaos run *)
  injected : (Faults.kind * int) list;  (** faults injected, by kind *)
  san_violations : int;
      (** sanitizer violations recorded during this engine's run; 0 when
          the sanitizer is off (schedule exploration is simulated and thus
          exempt — only the multi-domain stress run is sanitized) *)
}

let ok r = r.failed_seeds = [] && r.stress_ok && r.san_violations = 0

(* ------------------------------------------------------------------ *)
(* Domain-kill scenario                                                *)

(** Result of one {!run_kill}: killer domains crash mid-commit holding
    locks; survivor domains then run a contending workload.  With
    recovery on the survivors must keep committing (orphaned locks are
    reclaimed); with recovery off the same scenario must wedge — every
    survivor that trips over an orphaned lock times out. *)
type kill_result = {
  k_engine : string;
  k_recovery : bool;
  k_lease_ns : int;
  k_killers : int;       (** domains crashed mid-commit *)
  k_survivors : int;     (** domains run after the crashes *)
  k_txns : int;          (** transactions attempted per survivor *)
  k_commits : int;       (** survivor transactions that committed *)
  k_conserved : bool;    (** invariant held on the final state *)
  k_wedged : bool;       (** some survivor hit {!Control.Timeout} *)
  k_crashes : int;       (** [Crash_domain] faults that actually fired *)
  k_orphan_steals : int;
  k_lease_expiries : int;
  k_poisoned_commits : int;
  k_san_violations : int;
}

(** The pass criterion flips with the recovery switch: recovery on means
    progress (no wedge, survivors committed), recovery off means the
    wedge is demonstrated.  Both directions require at least one crash to
    have fired, the data invariant to hold, and a clean sanitizer. *)
let kill_ok r =
  r.k_crashes >= 1 && r.k_conserved && r.k_san_violations = 0
  && (if r.k_recovery then (not r.k_wedged) && r.k_commits > 0
      else r.k_wedged)

(* ------------------------------------------------------------------ *)
(* Scenarios for tvar-based engines                                    *)

module Stm_chaos (S : Stm_intf.S) = struct
  let cells = 4
  let preload = 100
  let total = cells * preload

  (* Two processes, two transfers each.  Each transfer reads every cell
     (isolation check), then moves one unit between two of them. *)
  let scenario () =
    let slot = ref (fun () -> true) in
    { Explore.procs =
        (fun () ->
          let tvs = Array.init cells (fun _ -> S.tvar preload) in
          let torn = ref false in
          slot :=
            (fun () ->
              (not !torn)
              && Array.fold_left (fun a tv -> a + S.peek tv) 0 tvs = total);
          let proc i () =
            for j = 0 to 1 do
              let a = (i + j) mod cells in
              let b = (a + 1 + i) mod cells in
              let sum =
                S.atomic (fun ctx ->
                    let vals = Array.map (fun tv -> S.read ctx tv) tvs in
                    let s = Array.fold_left ( + ) 0 vals in
                    if a <> b then begin
                      S.write ctx tvs.(a) (vals.(a) - 1);
                      S.write ctx tvs.(b) (vals.(b) + 1)
                    end;
                    s)
              in
              if sum <> total then torn := true
            done
          in
          [ proc 0; proc 1 ]);
      check =
        (fun outcome ->
          match outcome.Sched.failures with
          | _ :: _ -> false  (* nothing may escape, Starvation included *)
          | [] -> if Sched.completed outcome then (!slot) () else true) }

  (* One process, retry cap 1, near-certain injected aborts: the only way
     to finish is through the serial fallback. *)
  let fallback_scenario () =
    let slot = ref (fun () -> true) in
    { Explore.procs =
        (fun () ->
          let tv = S.tvar 0 in
          slot := (fun () -> S.peek tv = 1);
          [ (fun () ->
              S.atomic (fun ctx -> S.write ctx tv (S.read ctx tv + 1))) ])
      ;
      check =
        (fun outcome ->
          match outcome.Sched.failures with
          | _ :: _ -> false
          | [] -> if Sched.completed outcome then (!slot) () else true) }

  let sample_seed ~runs ~seed =
    let sc = scenario () in
    let r1 =
      Explore.sample ~runs ~retry_cap:8 ~starvation_mode:`Fallback ~seed sc
    in
    let hot = { default_faults with Faults.spurious_abort = 0.9; seed } in
    Faults.enable hot;
    let r2 =
      Fun.protect
        ~finally:(fun () -> Faults.enable { default_faults with Faults.seed })
        (fun () ->
          Explore.sample ~runs:2 ~retry_cap:1 ~starvation_mode:`Fallback ~seed
            (fallback_scenario ()))
    in
    (r1, r2)

  (* Real-domain stress: [domains] workers, [txns] transfers each over a
     shared array; the total is conserved iff every transfer was atomic. *)
  let stress ~domains ~txns =
    let n = 8 in
    let tvs = Array.init n (fun _ -> S.tvar preload) in
    let worker d () =
      for j = 1 to txns do
        let a = (d + j) mod n in
        let b = (a + 1 + (j mod (n - 1))) mod n in
        if a <> b then
          S.atomic (fun ctx ->
              let va = S.read ctx tvs.(a) in
              let vb = S.read ctx tvs.(b) in
              S.write ctx tvs.(a) (va - 1);
              S.write ctx tvs.(b) (vb + 1))
      done
    in
    let ds = List.init domains (fun d -> Domain.spawn (worker d)) in
    List.iter Domain.join ds;
    Array.fold_left (fun a tv -> a + S.peek tv) 0 tvs = n * preload

  (* Domain-kill: each killer reads and rewrites the two cells of its
     private band, and an armed fault crashes it at the 7th schedule
     point.  The killer transaction costs read, write, read, write (four
     points), one commit point, then one lock point per write-set entry —
     all three tvar engines lock lazily at commit through
     [Wset.lock_all], so the count is engine-independent.  Point 7 is the
     second lock point, which fires {e before} the acquisition attempt:
     the domain dies holding exactly one write lock (its band's lower
     cell), pre-install, so cell values are untouched and conservation is
     trivially preserved.  Bands are disjoint, so concurrent killers
     cannot perturb each other's point arithmetic. *)
  let kill_stress ~killers ~survivors ~txns ~recovery ~lease_ns =
    let n = 8 in
    let killers = max 1 (min killers (n / 2)) in
    let tvs = Array.init n (fun _ -> S.tvar preload) in
    let saved_timeout = !Runtime.tx_timeout_ns in
    if recovery then Recovery.enable ~lease_ns ();
    (* The timeout is the wedge detector: a survivor blocked on an
       orphaned lock with no recovery must surface as [Control.Timeout]
       rather than hang the test. *)
    Runtime.tx_timeout_ns := Some 300_000_000;
    Fun.protect
      ~finally:(fun () ->
        Runtime.tx_timeout_ns := saved_timeout;
        if recovery then Recovery.disable ();
        Faults.disable ())
      (fun () ->
        let killer k () =
          Faults.arm_crash_after ~points:7;
          try
            S.atomic (fun ctx ->
                let a = 2 * k and b = (2 * k) + 1 in
                S.write ctx tvs.(a) (S.read ctx tvs.(a));
                S.write ctx tvs.(b) (S.read ctx tvs.(b)))
          with Control.Crashed -> ()
        in
        let kds = List.init killers (fun k -> Domain.spawn (killer k)) in
        List.iter Domain.join kds;
        (* Survivors transfer across all cells, so every one of them walks
           into the orphaned locks within its first few transactions. *)
        let commits = Atomic.make 0 in
        let wedged = Atomic.make false in
        let survivor d () =
          try
            for j = 1 to txns do
              if not (Atomic.get wedged) then begin
                let a = (d + j) mod n in
                let b = (a + 1 + (j mod (n - 1))) mod n in
                if a <> b then begin
                  S.atomic (fun ctx ->
                      let va = S.read ctx tvs.(a) in
                      let vb = S.read ctx tvs.(b) in
                      S.write ctx tvs.(a) (va - 1);
                      S.write ctx tvs.(b) (vb + 1));
                  Atomic.incr commits
                end
              end
            done
          with Control.Timeout _ -> Atomic.set wedged true
        in
        let ds = List.init survivors (fun d -> Domain.spawn (survivor d)) in
        List.iter Domain.join ds;
        let conserved =
          Array.fold_left (fun a tv -> a + S.peek tv) 0 tvs = n * preload
        in
        (Atomic.get commits, conserved, Atomic.get wedged))

  let run ~seeds ~runs_per_seed ~stress_domains ~stress_txns =
    Stats.reset S.stats;
    Faults.reset_counts ();
    let san0 = Sanitizer.violation_count () in
    let failed = ref [] in
    let schedules = ref 0 in
    List.iter
      (fun seed ->
        Faults.enable { default_faults with Faults.seed };
        let r1, r2 =
          Fun.protect ~finally:Faults.disable (fun () ->
              sample_seed ~runs:runs_per_seed ~seed)
        in
        let count = function
          | Explore.All_ok { explored; _ } ->
            schedules := !schedules + explored;
            true
          | Explore.Out_of_budget { explored; _ } ->
            schedules := !schedules + explored;
            true
          | Explore.Violation { explored; _ } ->
            schedules := !schedules + explored;
            false
        in
        let ok1 = count r1 in
        let ok2 = count r2 in
        if not (ok1 && ok2) then failed := seed :: !failed)
      seeds;
    let stress_ok =
      Faults.enable { default_faults with Faults.seed = List.nth seeds 0 };
      Fun.protect ~finally:Faults.disable (fun () ->
          stress ~domains:stress_domains ~txns:stress_txns)
    in
    { engine = S.name;
      seeds;
      runs_per_seed;
      schedules = !schedules;
      failed_seeds = List.rev !failed;
      stress_ok;
      stats = Stats.snapshot S.stats;
      injected = Faults.counts ();
      san_violations = Sanitizer.violation_count () - san0 }
end

(* ------------------------------------------------------------------ *)
(* Boosting scenario                                                   *)

module Boost_chaos = struct
  module Base = Seqds.Hash (Seqds.Int_key)

  module BSet =
    Boosting.Boost
      (struct
        type elt = int
        type t = Base.t

        let create () = Base.create ()
        let contains = Base.contains
        let add = Base.add
        let remove = Base.remove
      end)
      (struct
        let hash = Seqds.Int_key.hash
      end)

  (* One process inserts pairs atomically; the other must never observe
     half a pair.  Conservation: both pairs complete in the end. *)
  let scenario () =
    let slot = ref (fun () -> true) in
    { Explore.procs =
        (fun () ->
          let s = BSet.create ~stripes:4 () in
          let half_pair = ref false in
          slot :=
            (fun () ->
              (not !half_pair)
              && BSet.contains s 0 && BSet.contains s 1 && BSet.contains s 2
              && BSet.contains s 3);
          [ (fun () ->
              ignore (BSet.add_all s [ 0; 1 ]);
              ignore (BSet.add_all s [ 2; 3 ]));
            (fun () ->
              for _ = 1 to 2 do
                let seen =
                  Boosting.atomic (fun _ ->
                      (Bool.to_int (BSet.contains s 0), Bool.to_int (BSet.contains s 1)))
                in
                match seen with
                | 1, 0 | 0, 1 -> half_pair := true
                | _ -> ()
              done) ]);
      check =
        (fun outcome ->
          match outcome.Sched.failures with
          | _ :: _ -> false
          | [] -> if Sched.completed outcome then (!slot) () else true) }

  let fallback_scenario () =
    let slot = ref (fun () -> true) in
    { Explore.procs =
        (fun () ->
          let s = BSet.create ~stripes:2 () in
          slot := (fun () -> BSet.contains s 7);
          [ (fun () -> ignore (BSet.add s 7)) ]);
      check =
        (fun outcome ->
          match outcome.Sched.failures with
          | _ :: _ -> false
          | [] -> if Sched.completed outcome then (!slot) () else true) }

  let sample_seed ~runs ~seed =
    let r1 =
      Explore.sample ~runs ~retry_cap:8 ~starvation_mode:`Fallback ~seed
        (scenario ())
    in
    let hot = { default_faults with Faults.spurious_abort = 0.9; seed } in
    Faults.enable hot;
    let r2 =
      Fun.protect
        ~finally:(fun () -> Faults.enable { default_faults with Faults.seed })
        (fun () ->
          Explore.sample ~runs:2 ~retry_cap:1 ~starvation_mode:`Fallback ~seed
            (fallback_scenario ()))
    in
    (r1, r2)

  let stress ~domains ~txns =
    let s = BSet.create () in
    let worker d () =
      for i = 0 to txns - 1 do
        let base = 2 * ((d * txns) + i) in
        ignore (BSet.add_all s [ base; base + 1 ])
      done
    in
    let ds = List.init domains (fun d -> Domain.spawn (worker d)) in
    List.iter Domain.join ds;
    let ok = ref true in
    for d = 0 to domains - 1 do
      for i = 0 to txns - 1 do
        let base = 2 * ((d * txns) + i) in
        if not (BSet.contains s base && BSet.contains s (base + 1)) then
          ok := false
      done
    done;
    !ok

  let n_stripes = 8

  (* Stripe placement must be deterministic, and [Boost.lock_for] is
     [K.hash k mod stripes]: replicate it to aim keys at chosen stripes. *)
  let stripe_of key = Seqds.Int_key.hash key mod n_stripes

  (* First key at or above [start] that lands on [stripe]. *)
  let key_on_stripe ~start stripe =
    let k = ref start in
    while stripe_of !k <> stripe do incr k done;
    !k

  (* Domain-kill for boosting.  Each killer inserts a two-key pair whose
     keys land on its private pair of stripes; boosting fires one schedule
     point per {e fresh} abstract-lock acquisition (the reentrant fast
     path has none), and the point fires before the acquisition attempt,
     so [points = 2] crashes the killer holding exactly its first stripe
     lock.  The first key is already in the set — boosting applies
     operations eagerly and the crashed transaction's undo log dies with
     it (the lost-undo limitation DESIGN.md 5h documents) — so the
     conservation check covers survivor keys only, from a disjoint
     range. *)
  let kill_stress ~killers ~survivors ~txns ~recovery ~lease_ns =
    let killers = max 1 (min killers (n_stripes / 2)) in
    let s = BSet.create ~stripes:n_stripes () in
    let saved_timeout = !Runtime.tx_timeout_ns in
    if recovery then Recovery.enable ~lease_ns ();
    Runtime.tx_timeout_ns := Some 300_000_000;
    Fun.protect
      ~finally:(fun () ->
        Runtime.tx_timeout_ns := saved_timeout;
        if recovery then Recovery.disable ();
        Faults.disable ())
      (fun () ->
        let killer k () =
          let ka = key_on_stripe ~start:0 (2 * k) in
          let kb = key_on_stripe ~start:0 ((2 * k) + 1) in
          Faults.arm_crash_after ~points:2;
          try ignore (BSet.add_all s [ ka; kb ])
          with Control.Crashed -> ()
        in
        let kds = List.init killers (fun k -> Domain.spawn (killer k)) in
        List.iter Domain.join kds;
        (* Each survivor aims successive inserts at successive stripes
           from a private key range, so all of them hit the orphaned
           stripes within their first [n_stripes] operations. *)
        let commits = Atomic.make 0 in
        let wedged = Atomic.make false in
        let done_counts = Array.make survivors 0 in
        let survivor d () =
          let cursor = ref (10_000 * (d + 1)) in
          try
            for i = 0 to txns - 1 do
              if not (Atomic.get wedged) then begin
                let key = key_on_stripe ~start:!cursor (i mod n_stripes) in
                cursor := key + 1;
                ignore (BSet.add s key);
                done_counts.(d) <- done_counts.(d) + 1;
                Atomic.incr commits
              end
            done
          with Control.Timeout _ -> Atomic.set wedged true
        in
        let ds = List.init survivors (fun d -> Domain.spawn (survivor d)) in
        List.iter Domain.join ds;
        (* Read back every key the survivors reported committed.  Reading
           is itself transactional, so it only runs when nothing wedged —
           against orphaned stripes it would just wedge again. *)
        let conserved =
          Atomic.get wedged
          ||
          let ok = ref true in
          for d = 0 to survivors - 1 do
            let cursor = ref (10_000 * (d + 1)) in
            for i = 0 to done_counts.(d) - 1 do
              let key = key_on_stripe ~start:!cursor (i mod n_stripes) in
              cursor := key + 1;
              if not (BSet.contains s key) then ok := false
            done
          done;
          !ok
        in
        (Atomic.get commits, conserved, Atomic.get wedged))

  let run ~seeds ~runs_per_seed ~stress_domains ~stress_txns =
    Stats.reset Boosting.stats;
    Faults.reset_counts ();
    let san0 = Sanitizer.violation_count () in
    let failed = ref [] in
    let schedules = ref 0 in
    List.iter
      (fun seed ->
        Faults.enable { default_faults with Faults.seed };
        let r1, r2 =
          Fun.protect ~finally:Faults.disable (fun () ->
              sample_seed ~runs:runs_per_seed ~seed)
        in
        let count = function
          | Explore.All_ok { explored; _ } | Explore.Out_of_budget { explored; _ }
            ->
            schedules := !schedules + explored;
            true
          | Explore.Violation { explored; _ } ->
            schedules := !schedules + explored;
            false
        in
        let ok1 = count r1 in
        let ok2 = count r2 in
        if not (ok1 && ok2) then failed := seed :: !failed)
      seeds;
    let stress_ok =
      Faults.enable { default_faults with Faults.seed = List.nth seeds 0 };
      Fun.protect ~finally:Faults.disable (fun () ->
          stress ~domains:stress_domains ~txns:stress_txns)
    in
    { engine = "boosting";
      seeds;
      runs_per_seed;
      schedules = !schedules;
      failed_seeds = List.rev !failed;
      stress_ok;
      stats = Stats.snapshot Boosting.stats;
      injected = Faults.counts ();
      san_violations = Sanitizer.violation_count () - san0 }
end

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)

module Oe_chaos = Stm_chaos (Oestm.Oe)
module Tl2_chaos = Stm_chaos (Classic_stm.Tl2)
module View_chaos = Stm_chaos (Viewstm.V)

let default_seeds = List.init 20 (fun i -> i + 1)

let run_engine ?(seeds = default_seeds) ?(runs_per_seed = 30)
    ?(stress_domains = 4) ?(stress_txns = 200) engine =
  if seeds = [] then invalid_arg "Chaos.run_engine: empty seed list";
  let run =
    match engine with
    | OE -> Oe_chaos.run
    | TL2 -> Tl2_chaos.run
    | View -> View_chaos.run
    | Boost -> Boost_chaos.run
  in
  run ~seeds ~runs_per_seed ~stress_domains ~stress_txns

let run_all ?seeds ?runs_per_seed ?stress_domains ?stress_txns () =
  List.map
    (fun e -> run_engine ?seeds ?runs_per_seed ?stress_domains ?stress_txns e)
    all_engines

(* Recovery counters are process-global (steal sites live below the engine
   instances), so [run_kill] resets and snapshots them around one run. *)
let run_kill ?(killers = 2) ?(survivors = 3) ?(txns = 64)
    ?(lease_ns = 10_000_000) ~recovery engine =
  Faults.reset_counts ();
  Stats.reset_recovery_counters ();
  let san0 = Sanitizer.violation_count () in
  let kill =
    match engine with
    | OE -> Oe_chaos.kill_stress
    | TL2 -> Tl2_chaos.kill_stress
    | View -> View_chaos.kill_stress
    | Boost -> Boost_chaos.kill_stress
  in
  let commits, conserved, wedged =
    kill ~killers ~survivors ~txns ~recovery ~lease_ns
  in
  let rc = Stats.recovery_counters () in
  { k_engine = engine_name engine;
    k_recovery = recovery;
    k_lease_ns = lease_ns;
    k_killers = killers;
    k_survivors = survivors;
    k_txns = txns;
    k_commits = commits;
    k_conserved = conserved;
    k_wedged = wedged;
    k_crashes = Faults.count Faults.Crash_domain;
    k_orphan_steals = rc.Stats.orphan_steals;
    k_lease_expiries = rc.Stats.lease_expiries;
    k_poisoned_commits = rc.Stats.poisoned_commits;
    k_san_violations = Sanitizer.violation_count () - san0 }

(** One engine, both directions: recovery on must make progress, recovery
    off must wedge. *)
let run_kill_both ?killers ?survivors ?txns ?lease_ns engine =
  let on = run_kill ?killers ?survivors ?txns ?lease_ns ~recovery:true engine in
  let off =
    run_kill ?killers ?survivors ?txns ?lease_ns ~recovery:false engine
  in
  (on, off)

(* ------------------------------------------------------------------ *)
(* Crash-restart scenario (kill -9 + WAL recovery)                     *)

(** Result of one {!run_restart}: for each seed a forked child worker
    runs durable transfers against a fresh write-ahead log and is
    SIGKILLed mid-commit at a seed-derived moment; the parent then
    recovers the log into fresh ptvars and checks {e conservation} (the
    transfer invariant holds on the recovered state) and {e prefix
    durability} (every record the child saw acknowledged as synced is
    replayed).  With [rr_sync_every <= 0] the WAL never syncs — the
    negative control — and the run must instead {e demonstrate} loss:
    at least one seed recovers fewer records than the child committed. *)
type restart_result = {
  rr_engine : string;
  rr_sync_every : int;
  rr_seeds : int list;
  rr_failed_seeds : int list;
      (** conservation broke, the child died on its own, or (sync on) a
          synced record did not survive recovery *)
  rr_commits : int;      (** transfers the children reported committed *)
  rr_acked : int;        (** records synced to disk at kill time *)
  rr_recovered : int;    (** intact update records replayed *)
  rr_torn_seeds : int;   (** seeds whose log had a torn tail truncated *)
  rr_lost_acked_seeds : int list;
      (** seeds that recovered fewer records than were acked as synced *)
  rr_lost_commit_seeds : int list;
      (** seeds that recovered fewer records than the child committed —
          expected (and required) under the no-sync negative control *)
}

(** Sync on: nothing acked may be lost.  Sync off: loss must show. *)
let restart_ok r =
  r.rr_failed_seeds = [] && r.rr_commits > 0
  && (if r.rr_sync_every > 0 then r.rr_lost_acked_seeds = []
      else r.rr_lost_commit_seeds <> [])

module Restart = struct
  let cells = 4
  let preload = 100
  let total = cells * preload

  let fresh_ptvars () =
    Array.init cells (fun i ->
        Persist.Ptvar.make ~id:i ~codec:Persist.Codec.int preload)

  (* Drain the child's progress pipe until [deadline], then to EOF after
     the kill; the last complete 16-byte frame is the child's final
     report.  A frame torn by the kill is simply ignored. *)
  let last_frame buf =
    let s = Buffer.contents buf in
    let frames = String.length s / 16 in
    if frames = 0 then (0, 0)
    else
      let off = (frames - 1) * 16 in
      ( Int64.to_int (String.get_int64_le s off),
        Int64.to_int (String.get_int64_le s (off + 8)) )

  let drain_until rd buf deadline =
    let chunk = Bytes.create 4096 in
    let rec go () =
      let left = deadline -. Unix.gettimeofday () in
      if left > 0.0 then
        match Unix.select [ rd ] [] [] left with
        | [], _, _ -> ()
        | _ -> (
          match Unix.read rd chunk 0 (Bytes.length chunk) with
          | 0 -> ()  (* EOF: the child died early; the kill is a no-op *)
          | n ->
            Buffer.add_subbytes buf chunk 0 n;
            go ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
    in
    go ()

  let drain_eof rd buf =
    let chunk = Bytes.create 4096 in
    let rec go () =
      match Unix.read rd chunk 0 (Bytes.length chunk) with
      | 0 -> ()
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    in
    go ()

  type seed_outcome = {
    so_commits : int;
    so_acked : int;
    so_recovered : int;
    so_conserved : bool;
    so_torn : bool;
    so_child_ok : bool;  (** the child was killed, not crashed *)
  }

  module Run (S : Stm_intf.S with type 'a tvar = 'a Tvar.t) = struct
    (* The child: durable transfers forever, reporting (commits, acked)
       over the pipe after every commit, until SIGKILL lands.  Runs in a
       forked process, so it must end in [Unix._exit] on every path. *)
    let child ~sync_every ~path ~seed wr =
      (try
         Persist.reset_for_testing ();
         let ptvs = fresh_ptvars () in
         Persist.enable ~sync_every ~path ();
         let rng = Prng.create ~seed in
         let frame = Bytes.create 16 in
         let commits = ref 0 in
         while true do
           let a = Prng.int rng cells in
           let b = (a + 1 + Prng.int rng (cells - 1)) mod cells in
           S.atomic (fun ctx ->
               let tva = Persist.Ptvar.tvar ptvs.(a) in
               let tvb = Persist.Ptvar.tvar ptvs.(b) in
               S.write ctx tva (S.read ctx tva - 1);
               S.write ctx tvb (S.read ctx tvb + 1));
           incr commits;
           Bytes.set_int64_le frame 0 (Int64.of_int !commits);
           Bytes.set_int64_le frame 8
             (Int64.of_int (Persist.acked_records ()));
           ignore (Unix.write wr frame 0 16)
         done
       with _ -> ());
      Unix._exit 0

    (* One seed: fork, let the child commit for a seed-derived 10..60 ms,
       SIGKILL it, recover the log in this process, judge the result. *)
    let run_seed ~sync_every ~path ~seed =
      (try Sys.remove path with Sys_error _ -> ());
      let rd, wr = Unix.pipe () in
      flush stdout;
      flush stderr;
      match Unix.fork () with
      | 0 ->
        Unix.close rd;
        child ~sync_every ~path ~seed wr
      | pid ->
        Unix.close wr;
        let kill_after_ms = 10 + (Prng.next (Prng.create ~seed) mod 51) in
        let buf = Buffer.create 4096 in
        drain_until rd buf
          (Unix.gettimeofday () +. (float_of_int kill_after_ms /. 1000.0));
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        let _, status = Unix.waitpid [] pid in
        drain_eof rd buf;
        Unix.close rd;
        let commits, acked = last_frame buf in
        Persist.reset_for_testing ();
        let ptvs = fresh_ptvars () in
        let s = Persist.recover ~path () in
        let sum =
          Array.fold_left (fun a p -> a + Persist.Ptvar.value p) 0 ptvs
        in
        Persist.reset_for_testing ();
        { so_commits = commits;
          so_acked = acked;
          so_recovered = s.Persist.updates_intact;
          so_conserved = sum = total;
          so_torn = s.Persist.truncated;
          so_child_ok =
            (match status with
            | Unix.WSIGNALED sg -> sg = Sys.sigkill
            | _ -> false) }
  end

  module Oe_run = Run (Oestm.Oe)
  module Tl2_run = Run (Classic_stm.Tl2)
  module View_run = Run (Viewstm.V)

  (* Boosting has no tvar write set; its durable path (an explicit op
     log) is exercised by the persist unit tests instead. *)
  let run_seed_for = function
    | OE -> Oe_run.run_seed
    | TL2 -> Tl2_run.run_seed
    | View -> View_run.run_seed
    | Boost ->
      invalid_arg "Chaos.run_restart: boosting has no tvar write set"
end

let run_restart ?(seeds = default_seeds) ?(sync_every = 1)
    ?(wal_path = Filename.concat (Filename.get_temp_dir_name ())
                   "chaos-restart.wal") engine =
  if Sys.win32 then invalid_arg "Chaos.run_restart: requires fork(2)";
  if seeds = [] then invalid_arg "Chaos.run_restart: empty seed list";
  let run_seed = Restart.run_seed_for engine in
  let failed = ref [] and lost_acked = ref [] and lost_commits = ref [] in
  let commits = ref 0 and acked = ref 0 and recovered = ref 0 in
  let torn = ref 0 in
  List.iter
    (fun seed ->
      let o = run_seed ~sync_every ~path:wal_path ~seed in
      commits := !commits + o.Restart.so_commits;
      acked := !acked + o.Restart.so_acked;
      recovered := !recovered + o.Restart.so_recovered;
      if o.Restart.so_torn then incr torn;
      let lost_ack = o.Restart.so_recovered < o.Restart.so_acked in
      if lost_ack then lost_acked := seed :: !lost_acked;
      if o.Restart.so_recovered < o.Restart.so_commits then
        lost_commits := seed :: !lost_commits;
      if
        (not o.Restart.so_conserved)
        || (not o.Restart.so_child_ok)
        || (sync_every > 0 && lost_ack)
      then failed := seed :: !failed)
    seeds;
  (try Sys.remove wal_path with Sys_error _ -> ());
  { rr_engine = engine_name engine;
    rr_sync_every = sync_every;
    rr_seeds = seeds;
    rr_failed_seeds = List.rev !failed;
    rr_commits = !commits;
    rr_acked = !acked;
    rr_recovered = !recovered;
    rr_torn_seeds = !torn;
    rr_lost_acked_seeds = List.rev !lost_acked;
    rr_lost_commit_seeds = List.rev !lost_commits }

(* ------------------------------------------------------------------ *)
(* JSON report                                                         *)

let engine_to_json (r : engine_result) =
  Report.Obj
    [ ("engine", Report.Str r.engine);
      ("seeds", Report.List (List.map (fun s -> Report.Int s) r.seeds));
      ("runs_per_seed", Report.Int r.runs_per_seed);
      ("schedules", Report.Int r.schedules);
      ("ok", Report.Bool (ok r));
      ( "failed_seeds",
        Report.List (List.map (fun s -> Report.Int s) r.failed_seeds) );
      ("stress_ok", Report.Bool r.stress_ok);
      ("commits", Report.Int r.stats.Stats.commits);
      ("aborts", Report.Int r.stats.Stats.aborts);
      ("starvations", Report.Int r.stats.Stats.starvations);
      ("fallbacks", Report.Int r.stats.Stats.fallbacks);
      ("timeouts", Report.Int r.stats.Stats.timeouts);
      ("san_violations", Report.Int r.san_violations);
      ( "injected",
        Report.Obj
          (List.map
             (fun (k, n) -> (Faults.kind_name k, Report.Int n))
             r.injected) ) ]

let kill_to_json (r : kill_result) =
  Report.Obj
    [ ("engine", Report.Str r.k_engine);
      ("recovery", Report.Bool r.k_recovery);
      ("lease_ns", Report.Int r.k_lease_ns);
      ("killers", Report.Int r.k_killers);
      ("survivors", Report.Int r.k_survivors);
      ("txns_per_survivor", Report.Int r.k_txns);
      ("ok", Report.Bool (kill_ok r));
      ("survivor_commits", Report.Int r.k_commits);
      ("conserved", Report.Bool r.k_conserved);
      ("wedged", Report.Bool r.k_wedged);
      ("crashes", Report.Int r.k_crashes);
      ("orphan_steals", Report.Int r.k_orphan_steals);
      ("lease_expiries", Report.Int r.k_lease_expiries);
      ("poisoned_commits", Report.Int r.k_poisoned_commits);
      ("san_violations", Report.Int r.k_san_violations) ]

let restart_to_json (r : restart_result) =
  Report.Obj
    [ ("engine", Report.Str r.rr_engine);
      ("sync_every", Report.Int r.rr_sync_every);
      ("seeds", Report.List (List.map (fun s -> Report.Int s) r.rr_seeds));
      ("ok", Report.Bool (restart_ok r));
      ( "failed_seeds",
        Report.List (List.map (fun s -> Report.Int s) r.rr_failed_seeds) );
      ("commits", Report.Int r.rr_commits);
      ("acked", Report.Int r.rr_acked);
      ("recovered", Report.Int r.rr_recovered);
      ("torn_seeds", Report.Int r.rr_torn_seeds);
      ( "lost_acked_seeds",
        Report.List (List.map (fun s -> Report.Int s) r.rr_lost_acked_seeds)
      );
      ( "lost_commit_seeds",
        Report.List
          (List.map (fun s -> Report.Int s) r.rr_lost_commit_seeds) ) ]

let restart_report_json (results : restart_result list) =
  Report.Obj
    [ ("schema_version", Report.Int Report.schema_version);
      ("kind", Report.Str "chaos-restart");
      ("sanitizer", Report.sanitizer_to_json ());
      ("recovery", Report.recovery_to_json ());
      ("durability", Report.durability_to_json ());
      ("restarts", Report.List (List.map restart_to_json results)) ]

let kill_report_json (results : kill_result list) =
  Report.Obj
    [ ("schema_version", Report.Int Report.schema_version);
      ("kind", Report.Str "chaos-kill");
      ("sanitizer", Report.sanitizer_to_json ());
      ("recovery", Report.recovery_to_json ());
      ("kills", Report.List (List.map kill_to_json results)) ]

let report_json (results : engine_result list) =
  Report.Obj
    [ ("schema_version", Report.Int Report.schema_version);
      ("kind", Report.Str "chaos");
      ( "faults",
        Report.Str (Faults.to_string default_faults) );
      ("sanitizer", Report.sanitizer_to_json ());
      ("recovery", Report.recovery_to_json ());
      ("engines", Report.List (List.map engine_to_json results)) ]
