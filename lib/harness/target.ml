(** Benchmark targets: one (STM × structure) pair, or a bare sequential
    structure, presented behind a uniform first-class-module interface so
    the sweep driver is generic. *)

open Stm_core

[@@@txlint.allow "stm-escape"
    "preload and post-run check helpers are quiescent: they run \
     strictly before the timed region or after all worker domains join"]

type structure =
  | Linked_list
  | Skip_list
  | Hash_set of { load_factor : int }
        (** bucket count = initial size / load_factor (paper: 512) *)

let structure_name = function
  | Linked_list -> "LinkedListSet"
  | Skip_list -> "SkipListSet"
  | Hash_set { load_factor } -> Printf.sprintf "HashSet(lf=%d)" load_factor

module type TARGET = sig
  val name : string

  val setup : Workload.config -> unit
  (** Fresh structure, preloaded per the workload config. *)

  val run_op : Workload.op -> unit

  val abort_snapshot : unit -> Stats.snapshot
  val reset_stats : unit -> unit
end

let buckets_for cfg load_factor = max 1 ((1 lsl cfg.Workload.size_exp) / load_factor)

(* Wire one transactional structure into the TARGET interface. *)
module Stm_target
    (S : Stm_intf.S) (C : sig
      val structure : structure
    end) : TARGET =
struct
  module Ll = Eec.Linked_list_set.Make (S) (Eec.Set_intf.Int_key)
  module Sk = Eec.Skip_list_set.Make (S) (Eec.Set_intf.Int_key)
  module Hs = Eec.Hash_set.Make (S) (Eec.Set_intf.Int_key)

  let name = S.name

  type instance =
    | I_ll of Ll.t
    | I_sk of Sk.t
    | I_hs of Hs.t

  let cell : instance option ref = ref None

  let setup cfg =
    let keys = Workload.initial_keys cfg in
    let inst =
      match C.structure with
      | Linked_list ->
        let t = Ll.create () in
        Ll.unsafe_preload t keys;
        I_ll t
      | Skip_list ->
        let t = Sk.create () in
        Sk.unsafe_preload t keys;
        I_sk t
      | Hash_set { load_factor } ->
        let t = Hs.create_with_buckets (buckets_for cfg load_factor) in
        Hs.unsafe_preload t keys;
        I_hs t
    in
    cell := Some inst

  let instance () =
    match !cell with
    | Some i -> i
    | None -> invalid_arg "Target.run_op before setup"

  let run_op op =
    match (instance (), op) with
    | I_ll t, Workload.Contains v -> ignore (Ll.contains t v)
    | I_ll t, Workload.Add v -> ignore (Ll.add t v)
    | I_ll t, Workload.Remove v -> ignore (Ll.remove t v)
    | I_ll t, Workload.Add_all (a, b) -> ignore (Ll.add_all t [ a; b ])
    | I_ll t, Workload.Remove_all (a, b) -> ignore (Ll.remove_all t [ a; b ])
    | I_sk t, Workload.Contains v -> ignore (Sk.contains t v)
    | I_sk t, Workload.Add v -> ignore (Sk.add t v)
    | I_sk t, Workload.Remove v -> ignore (Sk.remove t v)
    | I_sk t, Workload.Add_all (a, b) -> ignore (Sk.add_all t [ a; b ])
    | I_sk t, Workload.Remove_all (a, b) -> ignore (Sk.remove_all t [ a; b ])
    | I_hs t, Workload.Contains v -> ignore (Hs.contains t v)
    | I_hs t, Workload.Add v -> ignore (Hs.add t v)
    | I_hs t, Workload.Remove v -> ignore (Hs.remove t v)
    | I_hs t, Workload.Add_all (a, b) -> ignore (Hs.add_all t [ a; b ])
    | I_hs t, Workload.Remove_all (a, b) -> ignore (Hs.remove_all t [ a; b ])

  let abort_snapshot () = Stats.snapshot S.stats
  let reset_stats () = Stats.reset S.stats
end

(* The bare sequential baseline. *)
module Seq_target (C : sig
  val structure : structure
end) : TARGET = struct
  module Ll = Seqds.Linked_list (Seqds.Int_key)
  module Sk = Seqds.Skip_list (Seqds.Int_key)
  module Hs = Seqds.Hash (Seqds.Int_key)

  let name = "Sequential"

  type instance =
    | I_ll of Ll.t
    | I_sk of Sk.t
    | I_hs of Hs.t

  let cell : instance option ref = ref None

  let setup cfg =
    let keys = Workload.initial_keys cfg in
    let inst =
      match C.structure with
      | Linked_list ->
        let t = Ll.create () in
        Ll.unsafe_preload t keys;
        I_ll t
      | Skip_list ->
        let t = Sk.create () in
        Sk.unsafe_preload t keys;
        I_sk t
      | Hash_set { load_factor } ->
        let t = Hs.create_with_buckets (buckets_for cfg load_factor) in
        Hs.unsafe_preload t keys;
        I_hs t
    in
    cell := Some inst

  let instance () =
    match !cell with
    | Some i -> i
    | None -> invalid_arg "Target.run_op before setup"

  let run_op op =
    match (instance (), op) with
    | I_ll t, Workload.Contains v -> ignore (Ll.contains t v)
    | I_ll t, Workload.Add v -> ignore (Ll.add t v)
    | I_ll t, Workload.Remove v -> ignore (Ll.remove t v)
    | I_ll t, Workload.Add_all (a, b) -> ignore (Ll.add_all t [ a; b ])
    | I_ll t, Workload.Remove_all (a, b) -> ignore (Ll.remove_all t [ a; b ])
    | I_sk t, Workload.Contains v -> ignore (Sk.contains t v)
    | I_sk t, Workload.Add v -> ignore (Sk.add t v)
    | I_sk t, Workload.Remove v -> ignore (Sk.remove t v)
    | I_sk t, Workload.Add_all (a, b) -> ignore (Sk.add_all t [ a; b ])
    | I_sk t, Workload.Remove_all (a, b) -> ignore (Sk.remove_all t [ a; b ])
    | I_hs t, Workload.Contains v -> ignore (Hs.contains t v)
    | I_hs t, Workload.Add v -> ignore (Hs.add t v)
    | I_hs t, Workload.Remove v -> ignore (Hs.remove t v)
    | I_hs t, Workload.Add_all (a, b) -> ignore (Hs.add_all t [ a; b ])
    | I_hs t, Workload.Remove_all (a, b) -> ignore (Hs.remove_all t [ a; b ])

  let abort_snapshot () : Stats.snapshot = Stats.empty_snapshot ()

  let reset_stats () = ()
end

(** The five series of every figure: Sequential, OE-STM, LSA, TL2, SwissTM. *)
let series_for structure : (module TARGET) list =
  let module C = struct
    let structure = structure
  end in
  [ (module Seq_target (C) : TARGET);
    (module Stm_target (Oestm.Oe) (C) : TARGET);
    (module Stm_target (Classic_stm.Lsa) (C) : TARGET);
    (module Stm_target (Classic_stm.Tl2) (C) : TARGET);
    (module Stm_target (Classic_stm.Swisstm) (C) : TARGET) ]
