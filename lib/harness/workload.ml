(** The paper's workload (Section VII.A).

    A structure preloaded with [2^size_exp] elements over a key range of
    [2^(size_exp+1)] (so single-element updates succeed with probability
    about 1/2).  The operation mix is 80 % [contains] and 20 % attempted
    updates, of which a configurable share are the composed
    [add_all]/[remove_all] working on the pair {v, v/2}. *)

type op =
  | Contains of int
  | Add of int
  | Remove of int
  | Add_all of int * int
  | Remove_all of int * int

type config = {
  size_exp : int;       (** log2 of the initial element count (paper: 12) *)
  update_ratio : float; (** fraction of ops that attempt an update (0.20) *)
  bulk_ratio : float;   (** fraction of {e all} ops that are bulk (0.05 / 0.15) *)
}

let paper ?(size_exp = 12) ?(update_ratio = 0.20) ~bulk_ratio () =
  { size_exp; update_ratio; bulk_ratio }

let key_range cfg = 1 lsl (cfg.size_exp + 1)

(** The deterministic preload: even keys, giving exactly [2^size_exp]
    elements with a 1/2 hit rate for uniform lookups. *)
let initial_keys cfg = List.init (1 lsl cfg.size_exp) (fun i -> 2 * i)

let gen_op cfg rng =
  let range = key_range cfg in
  let v = Prng.int rng range in
  let r = Prng.float rng in
  if r >= cfg.update_ratio then Contains v
  else if r < cfg.bulk_ratio then
    if Prng.int rng 2 = 0 then Add_all (v, (v + 1) / 2)
    else Remove_all (v, (v + 1) / 2)
  else if Prng.int rng 2 = 0 then Add v
  else Remove v

let op_to_string = function
  | Contains v -> Printf.sprintf "contains %d" v
  | Add v -> Printf.sprintf "add %d" v
  | Remove v -> Printf.sprintf "remove %d" v
  | Add_all (a, b) -> Printf.sprintf "addAll {%d,%d}" a b
  | Remove_all (a, b) -> Printf.sprintf "removeAll {%d,%d}" a b
