(** Comparing two benchmark reports ([bench/main.exe --compare]).

    A report is flattened into (figure, series, threads) -> ops/ms points;
    the delta table pairs up the keys present in both reports and computes
    the relative change.  Works with any schema version that carries the
    figures/series/points shape (v1 reports predate the config additions
    but the data layout is the same), so an old committed baseline stays
    usable. *)

type delta = {
  d_figure : string;
  d_series : string;
  d_threads : int;
  d_base : float;   (** baseline ops/ms *)
  d_cur : float;    (** current ops/ms *)
  d_pct : float;    (** 100 * (cur - base) / base; 0 when base = 0 *)
}

let load file : (Report.json, string) result =
  match In_channel.with_open_text file In_channel.input_all with
  | s -> Report.of_string s
  | exception Sys_error msg -> Error msg

let number = function
  | Report.Int i -> Some (float_of_int i)
  | Report.Float f -> Some f
  | _ -> None

let str = function Report.Str s -> Some s | _ -> None

let list = function Report.List l -> l | _ -> []

let get key j = Report.member key j

(* Flatten to ((figure, series, threads), ops_per_ms), in report order. *)
let points_of (j : Report.json) =
  let ( let* ) o f = Option.fold ~none:[] ~some:f o in
  List.concat_map
    (fun fig ->
      let* fname = Option.bind (get "figure" fig) str in
      List.concat_map
        (fun series ->
          let* sname = Option.bind (get "name" series) str in
          List.filter_map
            (fun p ->
              match
                ( Option.bind (get "threads" p) number,
                  Option.bind (get "ops_per_ms" p) number )
              with
              | Some t, Some ops -> Some ((fname, sname, int_of_float t), ops)
              | _ -> None)
            (Option.fold ~none:[] ~some:list (get "points" series)))
        (Option.fold ~none:[] ~some:list (get "series" fig)))
    (Option.fold ~none:[] ~some:list (get "figures" j))

let diff ~baseline ~current : delta list =
  let base = points_of baseline in
  List.filter_map
    (fun ((fname, sname, threads), cur_ops) ->
      match List.assoc_opt (fname, sname, threads) base with
      | None -> None
      | Some base_ops ->
        let pct =
          if base_ops = 0.0 then 0.0
          else 100.0 *. (cur_ops -. base_ops) /. base_ops
        in
        Some
          { d_figure = fname; d_series = sname; d_threads = threads;
            d_base = base_ops; d_cur = cur_ops; d_pct = pct })
    (points_of current)

let regressions ~threshold_pct deltas =
  List.filter (fun d -> d.d_pct < -.threshold_pct) deltas

let pp_delta ppf d =
  Format.fprintf ppf "%-4s %-14s %2d thr  %10.1f -> %10.1f ops/ms  %+7.1f%%"
    d.d_figure d.d_series d.d_threads d.d_base d.d_cur d.d_pct

let pp_table ppf deltas =
  Format.fprintf ppf "%-4s %-14s %-6s %25s %9s@." "fig" "series" "thr"
    "baseline -> current" "delta";
  List.iter (fun d -> Format.fprintf ppf "%a@." pp_delta d) deltas
