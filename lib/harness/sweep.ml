(** The measurement driver: throughput (operations per millisecond) and
    abort rate of one target at one thread count, averaged over several
    timed runs — the methodology of Section VII.A (the paper uses 10 runs
    of 10 s; the defaults here are scaled down so the whole matrix runs in
    CI, and the paper settings are a flag away).

    Methodology.  Each run spawns its workers, waits until every worker has
    checked in, and only then opens the timing window (monotonic clock) and
    releases the start flag; the window closes when the stop flag is set,
    before the joins.  [Domain.spawn]/[Domain.join] overhead and worker
    warm-up therefore never pollute the throughput figure.  Statistics are
    snapshotted after every run and summed with {!Stm_core.Stats.add}, so a
    multi-run point reports the totals of all its runs, not just the last
    one. *)

type point = {
  threads : int;
  ops_per_ms : float;  (** mean of the per-run throughputs *)
  abort_rate : float;
  total_ops : int;       (** summed over runs *)
  total_commits : int;   (** summed over runs *)
  total_aborts : int;    (** summed over runs *)
  elapsed_ms : float;    (** summed measured windows, excludes spawn/join *)
  runs : int;
  stats : Stm_core.Stats.snapshot;  (** accumulated over runs *)
}

let run_point ?(detailed = false) ?cm ?faults (module T : Target.TARGET) ~cfg
    ~threads ~duration ~runs ~seed =
  let was_detailed = Stm_core.Stats.detailed_enabled () in
  let saved_policy = Stm_core.Cm.current_policy () in
  let saved_faults = Stm_core.Faults.current () in
  Stm_core.Stats.set_detailed detailed;
  (match cm with Some p -> Stm_core.Cm.set_policy p | None -> ());
  (match faults with Some c -> Stm_core.Faults.enable c | None -> ());
  let restore () =
    Stm_core.Stats.set_detailed was_detailed;
    Stm_core.Cm.set_policy saved_policy;
    if Option.is_some faults then
      match saved_faults with
      | Some c -> Stm_core.Faults.enable c
      | None -> Stm_core.Faults.disable ()
  in
  let one_run run_idx =
    T.setup cfg;
    T.reset_stats ();
    let stop = Atomic.make false in
    let go = Atomic.make false in
    let ready = Atomic.make 0 in
    let ops_done = Array.make threads 0 in
    let worker i () =
      let rng =
        Prng.split (Prng.create ~seed:(seed + run_idx)) ~index:i
      in
      ignore (Atomic.fetch_and_add ready 1);
      while not (Atomic.get go) do
        Domain.cpu_relax ()
      done;
      let n = ref 0 in
      while not (Atomic.get stop) do
        T.run_op (Workload.gen_op cfg rng);
        incr n
      done;
      ops_done.(i) <- !n
    in
    let domains = List.init threads (fun i -> Domain.spawn (worker i)) in
    (* Spawning is over once every worker has checked in; the timing window
       is exactly [release of go .. set of stop]. *)
    while Atomic.get ready < threads do
      Domain.cpu_relax ()
    done;
    let t0 = Stm_core.Mclock.now_ns () in
    Atomic.set go true;
    Unix.sleepf duration;
    Atomic.set stop true;
    let t1 = Stm_core.Mclock.now_ns () in
    List.iter Domain.join domains;
    let elapsed_ms = Stm_core.Mclock.elapsed_ms ~t0 ~t1 in
    let ops = Array.fold_left ( + ) 0 ops_done in
    (ops, elapsed_ms, T.abort_snapshot ())
  in
  let results =
    Fun.protect ~finally:restore (fun () -> List.init runs one_run)
  in
  let total_ops = List.fold_left (fun a (n, _, _) -> a + n) 0 results in
  let elapsed_ms = List.fold_left (fun a (_, ms, _) -> a +. ms) 0.0 results in
  let snap =
    List.fold_left
      (fun acc (_, _, s) -> Stm_core.Stats.add acc s)
      (Stm_core.Stats.empty_snapshot ())
      results
  in
  let mean_throughput =
    List.fold_left (fun a (n, ms, _) -> a +. (float_of_int n /. ms)) 0.0 results
    /. float_of_int runs
  in
  { threads;
    ops_per_ms = mean_throughput;
    abort_rate = Stm_core.Stats.abort_rate snap;
    total_ops;
    total_commits = snap.Stm_core.Stats.commits;
    total_aborts = snap.Stm_core.Stats.aborts;
    elapsed_ms;
    runs;
    stats = snap }

(** One series: the same target across the thread axis. *)
let run_series ?detailed ?cm ?faults (module T : Target.TARGET) ~cfg ~threads
    ~duration ~runs ~seed =
  List.map
    (fun n ->
      run_point ?detailed ?cm ?faults
        (module T : Target.TARGET)
        ~cfg ~threads:n ~duration ~runs ~seed)
    threads
