(** Bare sequential counterparts of the e.e.c structures: no transactions,
    no synchronisation.  They define the "Sequential" series of Figures
    6–8 and serve as reference models in the property tests.  Safe from a
    single thread only. *)

module type SET = sig
  type elt
  type t

  val create : unit -> t
  val contains : t -> elt -> bool
  val add : t -> elt -> bool
  val remove : t -> elt -> bool
  val add_all : t -> elt list -> bool
  val remove_all : t -> elt list -> bool
  val insert_if_absent : t -> ins:elt -> guard:elt -> bool
  val size : t -> int
  val to_list : t -> elt list

  val unsafe_preload : t -> elt list -> unit
  (** Linear-time bulk load (deduplicated); setup only. *)
end

module type ORDERED = sig
  type t

  val compare : t -> t -> int
  val hash : t -> int
end

(** Shared derived operations. *)
module Derive (P : sig
  type elt
  type t

  val contains : t -> elt -> bool
  val add : t -> elt -> bool
  val remove : t -> elt -> bool
end) =
struct
  let add_all t l = List.fold_left (fun c x -> P.add t x || c) false l
  let remove_all t l = List.fold_left (fun c x -> P.remove t x || c) false l

  let insert_if_absent t ~ins ~guard =
    if P.contains t guard then false else P.add t ins
end

(** Sorted singly-linked list. *)
module Linked_list (K : ORDERED) : SET with type elt = K.t = struct
  type elt = K.t

  type node =
    | Nil
    | Node of { key : K.t; mutable next : node }

  type t = { mutable head : node }

  let create () = { head = Nil }

  let contains t k =
    let rec go = function
      | Nil -> false
      | Node { key; next } ->
        let c = K.compare k key in
        if c = 0 then true else if c < 0 then false else go next
    in
    go t.head

  let add t k =
    let rec go set_prev cur =
      match cur with
      | Nil ->
        set_prev (Node { key = k; next = Nil });
        true
      | Node ({ key; next } as n) ->
        let c = K.compare k key in
        if c = 0 then false
        else if c < 0 then begin
          set_prev (Node { key = k; next = cur });
          true
        end
        else go (fun v -> n.next <- v) next
    in
    go (fun v -> t.head <- v) t.head

  let remove t k =
    let rec go set_prev cur =
      match cur with
      | Nil -> false
      | Node ({ key; next } as n) ->
        let c = K.compare k key in
        if c = 0 then begin
          set_prev next;
          true
        end
        else if c < 0 then false
        else go (fun v -> n.next <- v) next
    in
    go (fun v -> t.head <- v) t.head

  let fold t ~init ~f =
    let rec go acc = function Nil -> acc | Node { key; next } -> go (f acc key) next in
    go init t.head

  let size t = fold t ~init:0 ~f:(fun n _ -> n + 1)
  let to_list t = List.rev (fold t ~init:[] ~f:(fun l k -> k :: l))

  let unsafe_preload t keys =
    let keys = List.sort_uniq K.compare keys in
    t.head <-
      List.fold_right (fun k acc -> Node { key = k; next = acc }) keys Nil

  module D = Derive (struct
    type nonrec elt = elt
    type nonrec t = t

    let contains = contains
    let add = add
    let remove = remove
  end)

  let add_all = D.add_all
  let remove_all = D.remove_all
  let insert_if_absent = D.insert_if_absent
end

(** Deterministic skip list (tower heights from the key hash, like the
    transactional version). *)
module Skip_list (K : ORDERED) : SET with type elt = K.t = struct
  type elt = K.t

  let max_level = 16

  type node =
    | Nil
    | Node of { key : K.t; next : node array }

  type t = { head : node array }

  let create () = { head = Array.make max_level Nil }

  let level_of key =
    let h = K.hash key in
    let rec count l h =
      if l >= max_level then max_level
      else if h land 1 = 1 then count (l + 1) (h lsr 1)
      else l + 1
    in
    count 0 h

  (* Returns (cells, found): cells.(l) is a setter/getter pair for the link
     an update at level l must rewrite. *)
  let search t k =
    let set_cell = Array.make max_level (fun (_ : node) -> ()) in
    let succ = Array.make max_level Nil in
    let pred = ref Nil in
    for level = max_level - 1 downto 0 do
      let get, set =
        match !pred with
        | Nil -> ((fun () -> t.head.(level)), fun v -> t.head.(level) <- v)
        | Node { next; _ } -> ((fun () -> next.(level)), fun v -> next.(level) <- v)
      in
      let rec forward get set =
        match get () with
        | Nil -> (get, set)
        | Node { key; next } as cur ->
          if K.compare key k < 0 then begin
            pred := cur;
            forward (fun () -> next.(level)) (fun v -> next.(level) <- v)
          end
          else (get, set)
      in
      let get, set = forward get set in
      set_cell.(level) <- set;
      succ.(level) <- get ()
    done;
    let found =
      match succ.(0) with Nil -> false | Node { key; _ } -> K.compare key k = 0
    in
    (set_cell, succ, found)

  let contains t k =
    let _, _, found = search t k in
    found

  let add t k =
    let set_cell, succ, found = search t k in
    if found then false
    else begin
      let lvl = level_of k in
      let next = Array.init lvl (fun i -> succ.(i)) in
      let node = Node { key = k; next } in
      for i = 0 to lvl - 1 do
        set_cell.(i) node
      done;
      true
    end

  let remove t k =
    let set_cell, succ, found = search t k in
    if not found then false
    else begin
      match succ.(0) with
      | Nil -> assert false
      | Node { next; _ } ->
        for i = 0 to Array.length next - 1 do
          set_cell.(i) next.(i)
        done;
        true
    end

  let fold t ~init ~f =
    let rec go acc = function
      | Nil -> acc
      | Node { key; next } -> go (f acc key) next.(0)
    in
    go init t.head.(0)

  let size t = fold t ~init:0 ~f:(fun n _ -> n + 1)
  let to_list t = List.rev (fold t ~init:[] ~f:(fun l k -> k :: l))

  let unsafe_preload t keys =
    let keys = List.sort_uniq K.compare keys in
    (* links.(l) is a setter for the cell that should receive the next
       node of level l. *)
    let links =
      Array.init max_level (fun l -> fun v -> t.head.(l) <- v)
    in
    List.iter
      (fun k ->
        let lvl = level_of k in
        let next = Array.make lvl Nil in
        let node = Node { key = k; next } in
        for l = 0 to lvl - 1 do
          links.(l) node;
          links.(l) <- (fun v -> next.(l) <- v)
        done)
      keys

  module D = Derive (struct
    type nonrec elt = elt
    type nonrec t = t

    let contains = contains
    let add = add
    let remove = remove
  end)

  let add_all = D.add_all
  let remove_all = D.remove_all
  let insert_if_absent = D.insert_if_absent
end

(** Fixed-bucket hash set over sorted chains. *)
module Hash (K : ORDERED) : sig
  include SET with type elt = K.t

  val create_with_buckets : int -> t
end = struct
  module L = Linked_list (K)

  type elt = K.t
  type t = { buckets : L.t array }

  let create_with_buckets n =
    if n <= 0 then invalid_arg "Seqds.Hash.create_with_buckets";
    { buckets = Array.init n (fun _ -> L.create ()) }

  let create () = create_with_buckets 64
  let bucket t k = t.buckets.(K.hash k mod Array.length t.buckets)
  let contains t k = L.contains (bucket t k) k
  let add t k = L.add (bucket t k) k
  let remove t k = L.remove (bucket t k) k

  let size t = Array.fold_left (fun acc b -> acc + L.size b) 0 t.buckets

  let to_list t =
    Array.fold_left (fun acc b -> L.to_list b @ acc) [] t.buckets
    |> List.sort K.compare

  let unsafe_preload t keys =
    let n = Array.length t.buckets in
    let per_bucket = Array.make n [] in
    List.iter
      (fun k ->
        let b = K.hash k mod n in
        per_bucket.(b) <- k :: per_bucket.(b))
      keys;
    Array.iteri
      (fun i ks ->
        (L.unsafe_preload t.buckets.(i) ks
         [@txlint.allow "stm-escape"
             "fans a quiescent preload out across the bucket chains"]))
      per_bucket

  module D = Derive (struct
    type nonrec elt = elt
    type nonrec t = t

    let contains = contains
    let add = add
    let remove = remove
  end)

  let add_all = D.add_all
  let remove_all = D.remove_all
  let insert_if_absent = D.insert_if_absent
end

module Int_key = struct
  type t = int

  let compare = Int.compare

  let hash x =
    let x = x * 0x9E3779B97F4A7C1 in
    let x = (x lxor (x lsr 30)) * 0xBF58476D1CE4E5B lor 1 in
    let x = (x lxor (x lsr 27)) * 0x94D049BB133111E lor 1 in
    (x lxor (x lsr 31)) land max_int
end
