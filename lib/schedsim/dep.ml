(* Dependence (non-commutativity) of scheduling steps, computed from the
   access footprints recorded by [Sched].  Two steps are independent iff
   swapping adjacent occurrences of them cannot change the state or either
   step's enabledness — here: they share no protection element, or share
   only elements both merely read. *)

open Stm_core

(* A footprint is a sorted, deduplicated array of (location, stores?) pairs.
   Lock transitions count as stores: acquisition/release is a
   read-modify-write of the protection element. *)
type entry = { loc : int; stores : bool }
type t = entry array

let empty : t = [||]

let is_empty (t : t) = Array.length t = 0

let of_accesses accs : t =
  let raw =
    List.filter_map
      (function
        | Runtime.Pure -> None
        | Runtime.Read pe -> Some { loc = pe; stores = false }
        | Runtime.Write pe | Runtime.Lock pe -> Some { loc = pe; stores = true })
      accs
  in
  match raw with
  | [] -> empty
  | raw ->
    let sorted = List.sort (fun a b -> compare a.loc b.loc) raw in
    let dedup =
      List.fold_left
        (fun out e ->
          match out with
          | prev :: rest when prev.loc = e.loc ->
            { loc = e.loc; stores = prev.stores || e.stores } :: rest
          | _ -> e :: out)
        [] sorted
    in
    Array.of_list (List.rev dedup)

(* Merge walk over the two sorted footprints: dependent iff some common
   location carries a store on either side. *)
let dependent (a : t) (b : t) =
  let na = Array.length a and nb = Array.length b in
  let rec go i j =
    if i >= na || j >= nb then false
    else
      let ea = a.(i) and eb = b.(j) in
      if ea.loc < eb.loc then go (i + 1) j
      else if ea.loc > eb.loc then go i (j + 1)
      else (ea.stores || eb.stores) || go (i + 1) (j + 1)
  in
  go 0 0

(* Single-annotation variant, used for documentation and sanity tests:
   matches [dependent] on one-access footprints. *)
let dependent_access a b =
  match (a, b) with
  | Runtime.Pure, _ | _, Runtime.Pure -> false
  | Runtime.Read _, Runtime.Read _ -> false
  | ( (Runtime.Read x | Runtime.Write x | Runtime.Lock x),
      (Runtime.Read y | Runtime.Write y | Runtime.Lock y) ) ->
    x = y

let pp ppf (t : t) =
  Format.fprintf ppf "{";
  Array.iteri
    (fun i e ->
      if i > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%s%d" (if e.stores then "W" else "R")
        e.loc)
    t;
  Format.fprintf ppf "}"
