open Stm_core

type scenario = {
  procs : unit -> (unit -> unit) list;
  check : Sched.outcome -> bool;
}

type result =
  | All_ok of { explored : int; pruned : int }
  | Violation of { schedule : int list; explored : int; pruned : int }
  | Out_of_budget of { explored : int; pruned : int }

exception Found of int list
exception Budget

(* ------------------------------------------------------------------ *)
(* Naive mode: enumerate the full schedule tree depth-first.           *)

let explore_naive ~max_runs ~max_steps scenario =
  let explored = ref 0 in
  let run_one schedule =
    if !explored >= max_runs then raise Budget;
    incr explored;
    let procs = scenario.procs () in
    let outcome, trace = Sched.run_schedule ~max_steps ~schedule procs in
    if not (scenario.check outcome) then
      raise (Found (List.map (fun c -> c.Sched.chosen) trace));
    trace
  in
  (* DFS with replay: run the default extension of [prefix], then branch on
     every not-yet-taken alternative at every decision point after the
     prefix. *)
  let rec dfs prefix =
    let trace = run_one prefix in
    let choices = List.map (fun c -> c.Sched.chosen) trace in
    let n_prefix = List.length prefix in
    List.iteri
      (fun i (c : Sched.choice) ->
        if i >= n_prefix then
          for alt = c.chosen + 1 to List.length c.ready - 1 do
            let new_prefix = List.filteri (fun j _ -> j < i) choices @ [ alt ] in
            dfs new_prefix
          done)
      trace
  in
  match dfs [] with
  | () -> All_ok { explored = !explored; pruned = 0 }
  | exception Found schedule ->
    Violation { schedule; explored = !explored; pruned = 0 }
  | exception Budget -> Out_of_budget { explored = !explored; pruned = 0 }

(* ------------------------------------------------------------------ *)
(* DPOR mode: dynamic partial-order reduction (Flanagan & Godefroid)   *)
(* with sleep sets.  One node per depth of the current schedule:       *)

type node = {
  n_ready : int list;  (* process ids runnable at this point *)
  mutable n_chosen : int;  (* process id currently explored from here *)
  mutable n_fp : Dep.t;  (* footprint of the executed step *)
  mutable n_sleep : (int * Dep.t) list;
      (* processes whose step from this state was fully explored on an
         earlier branch, with that step's footprint; re-running one would
         only reproduce an already-covered Mazurkiewicz trace *)
  mutable n_backtrack : int list;  (* processes that must be tried here *)
  mutable n_explored : int;  (* distinct choices actually run from here *)
}

exception Replay_diverged

let explore_dpor ~max_runs ~max_steps scenario =
  let runs = ref 0 in
  let pruned = ref 0 in
  (* Explicit stack of nodes along the current schedule.  [len] is the
     logical depth; slots above it are garbage from abandoned branches. *)
  let stack = ref [||] in
  let len = ref 0 in
  let push nd =
    if !len = Array.length !stack then begin
      let cap = max 64 (2 * !len) in
      let a = Array.make cap nd in
      Array.blit !stack 0 a 0 !len;
      stack := a
    end;
    !stack.(!len) <- nd;
    incr len
  in
  let index_in_ready p ready =
    let rec go i = function
      | [] -> None
      | x :: tl -> if x = p then Some i else go (i + 1) tl
    in
    go 0 ready
  in
  (* One run: replay the choices recorded on the stack, then extend with the
     first non-sleeping ready process at every new depth.  If at some depth
     every ready process is asleep, the run is cut: each of its extensions
     is equivalent to a schedule explored on another branch. *)
  let run_one () =
    if !runs >= max_runs then raise Budget;
    incr runs;
    let cut = ref false in
    let procs = scenario.procs () in
    let guide ~step ~ready ~prev =
      if step > 0 then (!stack).(step - 1).n_fp <- Dep.of_accesses prev;
      if step < !len then begin
        let nd = (!stack).(step) in
        match index_in_ready nd.n_chosen ready with
        | Some i -> `Go i
        | None -> raise Replay_diverged
      end
      else begin
        let sleep =
          if step = 0 then []
          else
            let parent = (!stack).(step - 1) in
            List.filter
              (fun (_, fq) -> not (Dep.dependent fq parent.n_fp))
              parent.n_sleep
        in
        let sleeping = List.map fst sleep in
        match List.find_opt (fun p -> not (List.mem p sleeping)) ready with
        | None ->
          cut := true;
          `Cut
        | Some p ->
          push
            { n_ready = ready; n_chosen = p; n_fp = Dep.empty; n_sleep = sleep;
              n_backtrack = [ p ]; n_explored = 0 };
          `Go (Option.get (index_in_ready p ready))
      end
    in
    let outcome, trace = Sched.run_guided ~max_steps ~guide procs in
    (outcome, trace, !cut)
  in
  (* Race analysis over the executed trace.  Happens-before is the
     Mazurkiewicz order: program order plus the order of dependent steps,
     tracked with vector clocks indexed by process (clock values are trace
     indices + 1).  For every immediate race (i, j) — dependent steps of
     different processes with no happens-before path between them — the
     state at depth [i] must also try running [j]'s process (or a process
     whose executed steps lead to it) before step [i]. *)
  let analyse trace =
    let evs = Array.of_list trace in
    let n = Array.length evs in
    if n > 0 then begin
      let nprocs =
        1
        + Array.fold_left
            (fun m (c : Sched.choice) -> List.fold_left max m c.ready)
            0 evs
      in
      let proc_of =
        Array.map (fun (c : Sched.choice) -> List.nth c.ready c.chosen) evs
      in
      let fp = Array.map (fun (c : Sched.choice) -> Dep.of_accesses c.accesses) evs in
      let clocks = Array.make n [||] in
      let last_of = Array.make nprocs (-1) in
      let merge dst src =
        for p = 0 to nprocs - 1 do
          if src.(p) > dst.(p) then dst.(p) <- src.(p)
        done
      in
      for j = 0 to n - 1 do
        let q = proc_of.(j) in
        let hb = Array.make nprocs 0 in
        if last_of.(q) >= 0 then Array.blit clocks.(last_of.(q)) 0 hb 0 nprocs;
        (* Backward scan: [hb] accumulates the clocks of every dependent
           predecessor already passed, so "hb.(p) <= i" at index [i] means
           no happens-before path from i to j exists through later events —
           an immediate race. *)
        let races = ref [] in
        for i = n - 1 downto 0 do
          if i < j then begin
            let p = proc_of.(i) in
            if p <> q && Dep.dependent fp.(i) fp.(j) then begin
              if hb.(p) <= i then races := i :: !races;
              merge hb clocks.(i)
            end
          end
        done;
        hb.(q) <- j + 1;
        clocks.(j) <- hb;
        last_of.(q) <- j;
        List.iter
          (fun i ->
            let nd = (!stack).(i) in
            let add p =
              if not (List.mem p nd.n_backtrack) then
                nd.n_backtrack <- p :: nd.n_backtrack
            in
            (* Processes already running toward j at the time of step i:
               q itself, or any process with an event in (i, j] that
               happens-before j. *)
            let toward =
              List.filter (fun r -> hb.(r) > i + 1) nd.n_ready
            in
            match toward with
            | [] -> List.iter add nd.n_ready
            | _ -> if List.mem q toward then add q else add (List.hd toward))
          !races
      done
    end
  in
  (* Put the explored choice of the deepest node to sleep, then move to the
     next pending backtrack candidate, popping exhausted nodes.  Returns
     false when the whole tree is done. *)
  let rec advance () =
    if !len = 0 then false
    else begin
      let nd = (!stack).(!len - 1) in
      nd.n_sleep <- (nd.n_chosen, nd.n_fp) :: nd.n_sleep;
      nd.n_explored <- nd.n_explored + 1;
      let sleeping = List.map fst nd.n_sleep in
      match
        List.find_opt
          (fun p -> List.mem p nd.n_backtrack && not (List.mem p sleeping))
          nd.n_ready
      with
      | Some p ->
        nd.n_chosen <- p;
        true
      | None ->
        pruned := !pruned + (List.length nd.n_ready - nd.n_explored);
        decr len;
        advance ()
    end
  in
  let rec drive () =
    let outcome, trace, cut = run_one () in
    if not cut && not (scenario.check outcome) then
      raise (Found (List.map (fun c -> c.Sched.chosen) trace));
    analyse trace;
    if advance () then drive ()
  in
  match drive () with
  | () -> All_ok { explored = !runs; pruned = !pruned }
  | exception Found schedule ->
    Violation { schedule; explored = !runs; pruned = !pruned }
  | exception Budget -> Out_of_budget { explored = !runs; pruned = !pruned }

let explore ?(mode = `Dpor) ?(max_runs = 20_000) ?(max_steps = 20_000)
    ?(retry_cap = 1_000) scenario =
  let saved_cap = !Runtime.retry_cap in
  let saved_mode = !Runtime.starvation_mode in
  Runtime.retry_cap := retry_cap;
  (* A global serial fallback would defeat exploration (every livelocking
     schedule would converge instead of being pruned), so exploration runs
     with the historical raise-on-cap behaviour. *)
  Runtime.starvation_mode := `Raise;
  Fun.protect
    ~finally:(fun () ->
      Runtime.retry_cap := saved_cap;
      Runtime.starvation_mode := saved_mode)
    (fun () ->
      match mode with
      | `Naive -> explore_naive ~max_runs ~max_steps scenario
      | `Dpor -> explore_dpor ~max_runs ~max_steps scenario)

let sample ?(runs = 1_000) ?(max_steps = 20_000) ?(retry_cap = 1_000)
    ?(starvation_mode = `Raise) ?(seed = 1) scenario =
  let saved_cap = !Runtime.retry_cap in
  let saved_mode = !Runtime.starvation_mode in
  Runtime.retry_cap := retry_cap;
  (* [`Raise] (default) prunes livelocking schedules like [explore]; the
     chaos suite passes [`Fallback] so random schedules also exercise the
     serial-irrevocable escalation path. *)
  Runtime.starvation_mode := starvation_mode;
  Fun.protect
    ~finally:(fun () ->
      Runtime.retry_cap := saved_cap;
      Runtime.starvation_mode := saved_mode)
    (fun () ->
      let rng = ref (seed lor 1) in
      let next () =
        rng := (!rng * 48271) mod 2147483647;
        !rng
      in
      let rec go i =
        if i >= runs then All_ok { explored = runs; pruned = 0 }
        else begin
          let procs = scenario.procs () in
          let pick ~step:_ ~ready = next () mod List.length ready in
          let outcome, trace = Sched.run ~max_steps ~pick procs in
          if not (scenario.check outcome) then
            Violation
              { schedule = List.map (fun c -> c.Sched.chosen) trace;
                explored = i + 1; pruned = 0 }
          else go (i + 1)
        end
      in
      go 0)

let pp_result ppf = function
  | All_ok { explored; pruned } ->
    Format.fprintf ppf "all %d interleavings OK (%d branch points pruned)"
      explored pruned
  | Violation { schedule; explored; pruned } ->
    Format.fprintf ppf
      "violation after %d interleavings (%d pruned); schedule = [%s]" explored
      pruned
      (String.concat "; " (List.map string_of_int schedule))
  | Out_of_budget { explored; pruned } ->
    Format.fprintf ppf
      "no violation in %d interleavings (budget reached, %d pruned)" explored
      pruned
