open Stm_core

type _ Effect.t += Yield : Runtime.access -> unit Effect.t

exception Killed_by_scheduler

type outcome = {
  steps : int;
  failures : (int * exn) list;
  killed : int list;
}

let completed o = o.failures = [] && o.killed = []

type choice = {
  ready : int list;
  chosen : int;
  accesses : Runtime.access list;
}

type guidance = [ `Go of int | `Cut ]

(* Mutable per-step record: accesses accumulate while the step runs and are
   flushed when the next decision is taken (or the run ends). *)
type step_rec = {
  s_ready : int list;
  s_chosen : int;
  mutable s_acc : Runtime.access list;
}

type proc_state = {
  index : int;
  mutable thunk : (unit -> unit) option;  (* [Some] until first activation *)
  mutable cont : (unit, unit) Effect.Deep.continuation option;
  mutable tls : Obj.t array;
  mutable finished : bool;
  mutable failure : exn option;
  mutable pending : Runtime.access;
      (* annotation carried by the yield that suspended this process; it
         seeds the footprint of the process's next step *)
}

let handler st =
  { Effect.Deep.retc = (fun () -> st.finished <- true);
    exnc =
      (fun e ->
        st.finished <- true;
        st.failure <- Some e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Yield a ->
          Some
            (fun (k : (a, unit) Effect.Deep.continuation) ->
              st.cont <- Some k;
              st.pending <- a;
              st.tls <- Runtime.save_all_tls ())
        | _ -> None) }

let activate st =
  Runtime.restore_all_tls st.tls;
  match (st.cont, st.thunk) with
  | Some k, _ ->
    st.cont <- None;
    Effect.Deep.continue k ()
  | None, Some thunk ->
    st.thunk <- None;
    Effect.Deep.match_with thunk () (handler st)
  | None, None -> invalid_arg "Sched.activate: process already finished"

let kill st =
  match st.cont with
  | None -> ()
  | Some k -> (
    st.cont <- None;
    (* Exceptions raised by the unwinding process land in its own handler
       ([exnc] above records them in [st.failure]); the only exception
       [discontinue] itself can raise at us is
       [Continuation_already_resumed].  Anything else — a [Control] abort
       or an assertion failure escaping the scheduler machinery itself —
       must propagate, not be silently dropped. *)
    try Effect.Deep.discontinue k Killed_by_scheduler
    with Effect.Continuation_already_resumed -> ())

let run_guided ?(max_steps = 100_000) ~guide procs =
  let states =
    List.mapi
      (fun index thunk ->
        { index; thunk = Some thunk; cont = None;
          tls = Runtime.save_all_tls (); finished = false; failure = None;
          pending = Runtime.Pure })
      procs
    |> Array.of_list
  in
  let current = ref (-1) in
  let saved_yield = !Runtime.yield_hook in
  let saved_proc = !Runtime.proc_hook in
  let saved_simulated = !Runtime.simulated in
  let saved_tracing = !Runtime.tracing in
  let saved_trace_hook = !Runtime.trace_hook in
  let outer_tls = Runtime.save_all_tls () in
  let acc = ref [] in
  Runtime.simulated := true;
  Runtime.reset_sim_ids ();
  Runtime.tracing := true;
  Runtime.trace_hook := (fun a -> acc := a :: !acc);
  Runtime.yield_hook := (fun a -> Effect.perform (Yield a));
  (Runtime.proc_hook :=
     fun () -> if !current >= 0 then !current else saved_proc ());
  let restore_environment () =
    Runtime.yield_hook := saved_yield;
    Runtime.proc_hook := saved_proc;
    Runtime.simulated := saved_simulated;
    Runtime.tracing := saved_tracing;
    Runtime.trace_hook := saved_trace_hook;
    Runtime.restore_all_tls outer_tls;
    current := -1
  in
  let trace = ref [] in
  let steps = ref 0 in
  let killed = ref [] in
  (* Attribute the accesses accumulated since the last decision to the step
     that performed them.  Appends, so accesses traced while killing
     processes (unwind handlers) also land on the last executed step. *)
  let flush_step () =
    (match !trace with
    | [] -> ()
    | r :: _ -> r.s_acc <- r.s_acc @ List.rev !acc);
    acc := []
  in
  let kill_ready ready =
    List.iter
      (fun i ->
        kill states.(i);
        states.(i).finished <- true;
        killed := i :: !killed)
      ready
  in
  (try
     let rec loop () =
       let ready =
         Array.to_list states
         |> List.filter_map (fun st ->
                if st.finished then None else Some st.index)
       in
       if ready = [] then flush_step ()
       else if !steps >= max_steps then begin
         kill_ready ready;
         flush_step ()
       end
       else begin
         flush_step ();
         let prev = match !trace with [] -> [] | r :: _ -> r.s_acc in
         match guide ~step:!steps ~ready ~prev with
         | `Cut ->
           kill_ready ready;
           flush_step ()
         | `Go chosen ->
           let chosen = max 0 (min chosen (List.length ready - 1)) in
           trace := { s_ready = ready; s_chosen = chosen; s_acc = [] } :: !trace;
           incr steps;
           let st = states.(List.nth ready chosen) in
           current := st.index;
           (* The annotation announced at the suspending yield opens the
              step's footprint; tracing fills in the rest dynamically. *)
           acc := [ st.pending ];
           st.pending <- Runtime.Pure;
           activate st;
           current := -1;
           loop ()
       end
     in
     loop ()
   with e ->
     restore_environment ();
     raise e);
  restore_environment ();
  let failures =
    Array.to_list states
    |> List.filter_map (fun st ->
           match st.failure with Some e -> Some (st.index, e) | None -> None)
  in
  ( { steps = !steps; failures; killed = List.rev !killed },
    List.rev_map
      (fun r -> { ready = r.s_ready; chosen = r.s_chosen; accesses = r.s_acc })
      !trace )

let run ?max_steps ?pick procs =
  let pick =
    match pick with
    | Some f -> f
    | None -> fun ~step ~ready -> step mod List.length ready
  in
  run_guided ?max_steps
    ~guide:(fun ~step ~ready ~prev:_ -> `Go (pick ~step ~ready))
    procs

let run_schedule ?max_steps ~schedule procs =
  let schedule = Array.of_list schedule in
  let pick ~step ~ready:_ =
    if step < Array.length schedule then schedule.(step) else 0
  in
  run ?max_steps ~pick procs
