(** Dependence relation on scheduling steps.

    Dynamic partial-order reduction only has to distinguish executions in
    which {e dependent} steps occur in a different order (Mazurkiewicz trace
    equivalence).  This module defines when two steps commute, computed from
    the access footprints that {!Sched} records for every executed step.

    Two steps are {e independent} (commute) iff no protection element is
    touched by both with at least one side storing.  Reads of the same
    element commute; any write or lock transition on a shared element makes
    the pair dependent.  The global version clock is an ordinary location
    ({!Stm_core.Runtime.clock_pe}), which makes any two clock-ticking
    commits dependent — conservative but sound. *)

type t
(** Footprint of one executed step: the set of locations it touched, each
    tagged with whether it was stored to. *)

val empty : t

val is_empty : t -> bool

val of_accesses : Stm_core.Runtime.access list -> t
(** Build a footprint from a step's recorded accesses.  [Pure] entries
    vanish; [Write]/[Lock] count as stores. *)

val dependent : t -> t -> bool
(** Whether two steps may fail to commute: some common location with a
    store on at least one side. *)

val dependent_access : Stm_core.Runtime.access -> Stm_core.Runtime.access -> bool
(** Dependence of two single annotations; agrees with {!dependent} on
    singleton footprints. *)

val pp : Format.formatter -> t -> unit
