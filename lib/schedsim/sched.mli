(** Deterministic cooperative scheduler.

    Runs N logical processes on the current domain, context-switching at
    every STM scheduling point ({!Stm_core.Runtime.schedule_point}, invoked
    by all STM implementations before each shared access).  The caller
    chooses which ready process runs at every step, which makes whole-program
    interleavings reproducible and enumerable — the paper's 64-hardware-
    thread concurrency, simulated exactly on one core.

    While a simulation runs, the scheduler owns the runtime hooks
    ({!Stm_core.Runtime.yield_hook}, [proc_hook], the access trace) and swaps
    each STM's thread-local state when switching processes, so transactions
    of different logical processes never bleed into each other.

    Each executed step carries its {e footprint}: the annotation announced
    at the scheduling point, plus every shared access the STM machinery
    actually performed before the next scheduling point (lock stamps, clock
    reads/ticks, value installs), captured through
    {!Stm_core.Runtime.trace_hook}.  The DPOR explorer consumes these to
    decide which steps commute. *)

type outcome = {
  steps : int;  (** scheduling points executed *)
  failures : (int * exn) list;
      (** processes that ended with an exception (e.g.
          {!Stm_core.Control.Starvation}), by process index *)
  killed : int list;
      (** processes forcibly terminated: [max_steps] was reached, or the
          guide cut the run short *)
}

val completed : outcome -> bool
(** No failures and nobody was killed. *)

type choice = {
  ready : int list;  (** indices of runnable processes, ascending *)
  chosen : int;      (** index {e into [ready]} that was picked *)
  accesses : Stm_core.Runtime.access list;
      (** footprint of the step: announced annotation first, then the
          dynamically traced accesses in program order *)
}

type guidance = [ `Go of int | `Cut ]

val run_guided :
  ?max_steps:int ->
  guide:
    (step:int ->
    ready:int list ->
    prev:Stm_core.Runtime.access list ->
    guidance) ->
  (unit -> unit) list ->
  outcome * choice list
(** [run_guided ~guide procs] executes the processes under full caller
    control.  At every decision the guide receives the step number, the
    ready list, and [prev] — the complete footprint of the step that just
    finished (empty at step 0).  [`Go i] runs the [i]-th ready process
    (clamped); [`Cut] abandons the run: all remaining processes are killed
    and reported in [killed].  A cut run's outcome is partial and must not
    be verdict-checked — the DPOR explorer cuts exactly the runs whose every
    extension is equivalent to an already-explored one.

    Every run resets the simulation id pools
    ({!Stm_core.Runtime.reset_sim_ids}), so tvar/tx ids are a deterministic
    function of the schedule. *)

val run :
  ?max_steps:int ->
  ?pick:(step:int -> ready:int list -> int) ->
  (unit -> unit) list ->
  outcome * choice list
(** [run procs] executes the processes to completion under the scheduling
    policy [pick] (default: round-robin), returning the outcome and the full
    decision trace.  [pick] returns an index into [ready].

    @param max_steps forcibly terminates remaining processes after this many
    scheduling points (default 100_000), recording them in [killed]. *)

val run_schedule :
  ?max_steps:int -> schedule:int list -> (unit -> unit) list -> outcome * choice list
(** Replay a specific schedule: the [n]-th scheduling decision picks
    [List.nth schedule n] (an index into the ready list, clamped); once the
    schedule is exhausted, the lowest ready process is chosen. *)
