(** Exhaustive bounded exploration of interleavings (stateless model
    checking).

    A scenario is rebuilt from scratch for every schedule (fresh tvars,
    fresh processes), executed under the deterministic scheduler, and judged
    by its [check] function.  This is how the repository demonstrates that
    elastic transactions composed {e without} outheritance admit an
    atomicity violation in {e some} interleaving (Fig. 1), while OE-STM
    admits none in {e any}.

    Two modes share one entry point:

    - [`Dpor] (default) — dynamic partial-order reduction in the style of
      Flanagan & Godefroid (POPL 2005) with sleep sets.  Steps are grouped
      into Mazurkiewicz traces by the {!Dep} commutativity relation over the
      access footprints recorded at every scheduling point; only one
      representative schedule per trace is executed, races discovered along
      each run seed backtracking points, and sleep sets prevent re-exploring
      commuted prefixes.  Verdicts are identical to naive mode — an
      [All_ok] still means {e every} interleaving (up to commutation of
      independent steps) satisfies [check].
    - [`Naive] — enumerate the full schedule tree depth-first.  Kept as the
      reference oracle: the differential test suite runs both modes on the
      same scenarios and asserts equal verdicts. *)

type scenario = {
  procs : unit -> (unit -> unit) list;
      (** fresh logical processes (and the state they share) *)
  check : Sched.outcome -> bool;
      (** whether this execution is acceptable; consult shared state
          captured by [procs]'s closure.  Executions with failures can be
          accepted (e.g. starvation is not a safety violation). *)
}

type result =
  | All_ok of { explored : int; pruned : int }
      (** every explored schedule satisfied [check].  [explored] counts
          executed runs; [pruned] counts scheduling branch points skipped
          as redundant (always 0 in naive/sample modes). *)
  | Violation of { schedule : int list; explored : int; pruned : int }
      (** [schedule] (choice indices into the ready list at each step)
          reproduces the violation via {!Sched.run_schedule} *)
  | Out_of_budget of { explored : int; pruned : int }
      (** bound reached before exhausting the tree; no violation found *)

val explore :
  ?mode:[ `Dpor | `Naive ] ->
  ?max_runs:int ->
  ?max_steps:int ->
  ?retry_cap:int ->
  scenario ->
  result
(** @param mode       [`Dpor] (default) or the exhaustive [`Naive] oracle
    @param max_runs   bound on the number of schedules (default 20_000)
    @param max_steps  per-run scheduling-point bound (default 20_000)
    @param retry_cap  transaction retry bound during exploration, to turn
                      livelocks into {!Stm_core.Control.Starvation} failures
                      (default 1_000) *)

val sample :
  ?runs:int ->
  ?max_steps:int ->
  ?retry_cap:int ->
  ?starvation_mode:[ `Raise | `Fallback ] ->
  ?seed:int ->
  scenario ->
  result
(** Random-walk alternative to {!explore} for scenarios whose interleaving
    tree is too large to exhaust: each run draws scheduling decisions from
    a seeded PRNG.  [All_ok] here means "no violation in [runs] samples",
    not a proof.  A returned violation's schedule replays through
    {!Sched.run_schedule} exactly like the exhaustive explorer's.

    [starvation_mode] (default [`Raise], like {!explore}) controls what a
    process hitting [retry_cap] does: [`Raise] prunes the schedule via
    {!Control.Starvation}; [`Fallback] lets it escalate to the
    serial-irrevocable mode instead, which the chaos suite uses to drive
    the fallback path under random schedules. *)

val pp_result : Format.formatter -> result -> unit
