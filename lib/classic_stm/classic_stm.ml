(** Classic (non-relaxed) software transactional memories.

    TL2, LSA and SwissTM share one engine: invisible reads over versioned
    locks, a write set installed at commit, and a global version clock.
    They differ in three published design choices, captured by {!POLICY}:

    - {b when write locks are acquired} — at commit (TL2) or at the write
      itself (LSA, SwissTM), the latter detecting write/write conflicts
      eagerly;
    - {b whether the read validity interval can be extended} — TL2 aborts a
      read of a version newer than its start time, LSA and SwissTM revalidate
      the read set and slide the interval forward (lazy snapshot);
    - {b the contention manager} — on a write-lock conflict a timid
      transaction aborts itself, while SwissTM's two-phase manager lets
      transactions that already performed enough updates spin briefly for
      the lock before giving up (a simplification of its greedy manager
      that preserves the "writers eventually win" behaviour without remote
      aborts).

    Nesting is flat: a nested [atomic] runs inside the parent's context, so
    every location accessed by the child stays protected until the parent
    commits — classic transactions satisfy outheritance by construction
    (Section IV of the paper). *)

open Stm_core

module type POLICY = sig
  val name : string

  val eager_write_lock : bool
  (** Acquire the write lock at the first [write] instead of at commit. *)

  val extend_on_read : bool
  (** Extend the validity interval (revalidating the read set) instead of
      aborting when a too-new version is read. *)

  val priority_spin : int
  (** Bounded number of retries a priority transaction performs on a
      write-lock conflict before aborting.  0 = timid. *)

  val priority_threshold : int
  (** Number of writes after which a transaction gains priority;
      [max_int] = never. *)
end

module Make (P : POLICY) :
  Stm_intf.S with type 'a tvar = 'a Tvar.t = struct
  let name = P.name

  type 'a tvar = 'a Tvar.t

  type ctx = {
    tx_id : int;
    mutable cur_tx : int;  (* innermost transaction id, for recording *)
    mutable rv : int;      (* upper bound of the validity interval *)
    rset : Rwsets.Rset.t;
    wset : Rwsets.Wset.t;
    rec_state : Txrec.t option;
  }

  let stats = Stats.create ()

  let current : ctx option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

  let () =
    Runtime.register_tls
      ~save:(fun () -> Obj.repr (Domain.DLS.get current))
      ~restore:(fun o -> Domain.DLS.set current (Obj.obj o : ctx option))

  let tvar = Tvar.make
  let peek = Tvar.peek
  [@@txlint.allow "stm-escape"
       "re-export of the quiescent escape hatch; callers are linted at \
        their own sites"]

  let unsafe_write = Tvar.unsafe_write
  [@@txlint.allow "stm-escape"
       "re-export of the quiescent escape hatch; callers are linted at \
        their own sites"]
  let tvar_id = Tvar.id
  let in_transaction () = Option.is_some (Domain.DLS.get current)

  let read : type a. ctx -> a tvar -> a =
   fun ctx tv ->
    Runtime.schedule_point_on (Runtime.Read (Tvar.id tv));
    match Rwsets.Wset.find ctx.wset tv with
    | Some v ->
      if Stats.detailed_enabled () then Stats.record_read_ws_hit stats;
      Txrec.read ctx.rec_state ~tx:ctx.cur_tx ~pe:(Tvar.id tv)
        ~repr:(Recorder.repr_of_value v);
      v
    | None ->
      if Stats.detailed_enabled () then Stats.record_read_ws_miss stats;
      let s, v = Tvar.read_consistent tv in
      if Vlock.version_of s > ctx.rv then begin
        if not P.extend_on_read then Control.abort_tx Control.Read_too_new;
        let now = Clock.now () in
        (* Interval extension moves [rv], so the full set must revalidate:
           the suffix-only scan is sound only while [rv] is unchanged. *)
        let ok = Rwsets.Rset.validate ctx.rset ~owner:ctx.tx_id in
        if Stats.detailed_enabled () then
          Stats.record_validation_len stats (Rwsets.Rset.last_scan ctx.rset);
        if ok then ctx.rv <- now else Control.abort_tx Control.Read_too_new
      end;
      let pe = Tvar.id tv in
      Txrec.acquire ctx.rec_state ~pe;
      Rwsets.Rset.push ctx.rset
        { Rwsets.r_lock = tv.Tvar.lock; r_seen = s; r_pe = pe };
      (* Sanitizer strict-opacity mode: revalidate at every tracked read so
         an inconsistent snapshot aborts here, at the read that would
         observe it, instead of at commit.  [rv] is unchanged since the
         last successful validation, so only the unvalidated suffix needs
         checking — the watermarked prefix still forms an rv-snapshot. *)
      if !Runtime.sanitizer then
        Sanitizer.on_tx_read ~validate:(fun () ->
            let ok = Rwsets.Rset.validate_new ctx.rset ~owner:ctx.tx_id in
            if Stats.detailed_enabled () then
              Stats.record_validation_len stats
                (Rwsets.Rset.last_scan ctx.rset);
            ok);
      Txrec.read ctx.rec_state ~tx:ctx.cur_tx ~pe ~repr:(Recorder.repr_of_value v);
      v

  (* Eager lock acquisition with the two-phase contention manager: priority
     transactions retry the lock a bounded number of times. *)
  let acquire_write_lock ctx tv =
    let spins =
      if Rwsets.Wset.size ctx.wset >= P.priority_threshold then P.priority_spin
      else 0
    in
    let rec go n =
      if
        (Rwsets.Wset.lock_one ctx.wset tv
           ~owner:ctx.tx_id
         [@txlint.allow "lock-release"
             "encounter-time locks join the wset; commit releases them \
              on every path (install, abort-restore, crash-forget)"])
      then ()
      else if n > 0 then begin
        Domain.cpu_relax ();
        go (n - 1)
      end
      else Control.abort_tx Control.Lock_contention
    in
    go spins

  let write : type a. ctx -> a tvar -> a -> unit =
   fun ctx tv v ->
    Runtime.schedule_point_on (Runtime.Write (Tvar.id tv));
    let pe = Tvar.id tv in
    let first = Rwsets.Wset.add ctx.wset tv v in
    if first then begin
      Txrec.acquire ctx.rec_state ~pe;
      if P.eager_write_lock then acquire_write_lock ctx tv
    end;
    Txrec.write ctx.rec_state ~tx:ctx.cur_tx ~pe ~repr:(Recorder.repr_of_value v)

  let commit ctx =
    Runtime.schedule_point ();
    (* Serial-irrevocable gate (see Retry_loop): abort rather than block so
       any locks this transaction holds are released for the token holder. *)
    if not (Runtime.Serial.commit_allowed ()) then
      Control.abort_tx Control.Killed;
    if !Runtime.recovery then Recovery.check_poisoned ();
    if not (Rwsets.Wset.is_empty ctx.wset) then begin
      if not (Rwsets.Wset.lock_all ctx.wset ~owner:ctx.tx_id) then
        Control.abort_tx Control.Lock_contention;
      (* The locks are held, so [max_version] is stable: it is the GV5
         floor keeping write versions strictly above anything already
         installed at these locations (GV1/GV4 never consult it). *)
      let wv =
        Clock.tick ~floor:(fun () -> Rwsets.Wset.max_version ctx.wset) ()
      in
      (* Commit decides against [wv], not the old [rv] — a full scan. *)
      let ok = Rwsets.Rset.validate ctx.rset ~owner:ctx.tx_id in
      if Stats.detailed_enabled () then
        Stats.record_validation_len stats (Rwsets.Rset.last_scan ctx.rset);
      if not ok then begin
        Rwsets.Wset.unlock_all_restore ctx.wset;
        Control.abort_tx Control.Validation_failed
      end;
      if !Runtime.sanitizer then
        Sanitizer.on_commit ~owner:ctx.tx_id ~wv (fun f ->
            Rwsets.Rset.iter f ctx.rset);
      (* Last poison check while the locks are still held: a doomed victim
         must abort here, before installing over a stolen lock.  (The
         abort releases cleanly: CAS-based unlocks skip stolen entries.) *)
      if !Runtime.recovery then begin
        try Recovery.check_poisoned ()
        with e ->
          Rwsets.Wset.unlock_all_restore ctx.wset;
          raise e
      end;
      Rwsets.Wset.install_and_unlock ctx.wset ~wv;
      (* Post-install: stage the durable entries for the WAL.  Retry_loop
         fires the record once this attempt's outcome is a definitive
         commit, and discards it if anything below still aborts. *)
      if !Runtime.durability then
        Durable.stage ~wv (Rwsets.Wset.capture_durable ctx.wset)
    end;
    Txrec.commit_tx ctx.rec_state ~tx:ctx.tx_id;
    Txrec.release_remaining ctx.rec_state

  let run_nested ctx f =
    let tx = Runtime.fresh_tx_id () in
    let saved = ctx.cur_tx in
    Txrec.begin_tx ctx.rec_state ~tx;
    ctx.cur_tx <- tx;
    let result = f ctx in
    (* Flat nesting: the child's protected set simply stays in the parent's
       read/write sets — outheritance by construction. *)
    Txrec.commit_tx ctx.rec_state ~tx;
    ctx.cur_tx <- saved;
    result

  (* Per-domain scratch sets, reused across every toplevel transaction the
     domain runs: retries stop re-growing the backing stores from their
     initial capacity, which dominates read-heavy workloads.  [Vec.clear]
     wipes freed slots to the dummy, so reuse does not pin dead tvars.
     Under the deterministic scheduler one domain multiplexes many logical
     processes that must not share mutable state, so simulated runs
     allocate fresh sets per transaction instead. *)
  type scratch = { s_rset : Rwsets.Rset.t; s_wset : Rwsets.Wset.t }

  let scratch : scratch Domain.DLS.key =
    Domain.DLS.new_key (fun () ->
        { s_rset = Rwsets.Rset.create (); s_wset = Rwsets.Wset.create () })

  let fresh_sets () =
    if !Runtime.simulated then
      (Rwsets.Rset.create (), Rwsets.Wset.create ())
    else begin
      let s = Domain.DLS.get scratch in
      Rwsets.Rset.clear s.s_rset;
      Rwsets.Wset.clear s.s_wset;
      (s.s_rset, s.s_wset)
    end

  let run_toplevel f =
    Retry_loop.run ~stats (fun ~attempt:_ ->
        let tx_id = Runtime.fresh_tx_id () in
        let rset, wset = fresh_sets () in
        let ctx =
          { tx_id; cur_tx = tx_id; rv = Clock.now (); rset; wset;
            rec_state = Txrec.create () }
        in
        Domain.DLS.set current (Some ctx);
        if !Runtime.recovery then Registry.publish ~owner:tx_id;
        if !Runtime.sanitizer then Sanitizer.tx_begin ~owner:tx_id;
        Txrec.begin_tx ctx.rec_state ~tx:ctx.tx_id;
        (* The commit itself can abort, so it must run inside the cleanup
           handler, not in the success branch of a match on [f ctx]. *)
        try
          let result = f ctx in
          (commit ctx
           [@txlint.allow "tx-escape"
               "the engine's attempt thunk commits here: installing the \
                write set via unsafe_write under the write locks is the \
                one sanctioned escape"]);
          if Stats.detailed_enabled () then
            Stats.record_rwset_sizes stats ~reads:(Rwsets.Rset.length ctx.rset)
              ~writes:(Rwsets.Wset.size ctx.wset);
          if !Runtime.sanitizer then Sanitizer.tx_end ~owner:tx_id;
          if !Runtime.recovery then Registry.clear ();
          Domain.DLS.set current None;
          result
        with
        | Control.Crashed as e ->
          (* Simulated domain death: leave every held lock locked (that is
             the point — recovery must reclaim them), but detach the
             scratch sets and mark the registry slot dead so contenders
             see a legitimate victim. *)
          Rwsets.Wset.forget_locks ctx.wset;
          if !Runtime.recovery then Registry.mark_crashed ();
          if !Runtime.sanitizer then Sanitizer.tx_crashed ~owner:tx_id;
          Domain.DLS.set current None;
          raise e
        | e ->
          Rwsets.Wset.unlock_all_restore ctx.wset;
          Txrec.abort_open ctx.rec_state;
          if !Runtime.sanitizer then Sanitizer.tx_end ~owner:tx_id;
          if !Runtime.recovery then Registry.clear ();
          Domain.DLS.set current None;
          raise e)

  let atomic ?mode:_ f =
    match Domain.DLS.get current with
    | Some ctx -> run_nested ctx f
    | None -> run_toplevel f
end

(** TL2 (Dice, Shalev, Shavit — DISC'06): commit-time locking, no interval
    extension, timid contention management. *)
module Tl2 = Make (struct
  let name = "TL2"
  let eager_write_lock = false
  let extend_on_read = false
  let priority_spin = 0
  let priority_threshold = max_int
end)

(** LSA (Riegel, Felber, Fetzer — DISC'06): lazy snapshot with interval
    extension and eager lock acquirement. *)
module Lsa = Make (struct
  let name = "LSA"
  let eager_write_lock = true
  let extend_on_read = true
  let priority_spin = 0
  let priority_threshold = max_int
end)

(** SwissTM (Dragojević, Felber, Gramoli, Guerraoui — CACM'11): eager
    write/write conflict detection, lazy read validation with extension,
    two-phase contention manager. *)
module Swisstm = Make (struct
  let name = "SwissTM"
  let eager_write_lock = true
  let extend_on_read = true
  let priority_spin = 64
  let priority_threshold = 10
end)
