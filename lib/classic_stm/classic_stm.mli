(** Classic (non-relaxed) software transactional memories — the paper's
    baselines, sharing one engine parameterised by three published design
    choices.  See the implementation header for the design discussion.

    All three treat [~mode:Elastic] as [Regular] and nest flatly (a child
    shares the parent's read and write sets), so they satisfy outheritance
    — and hence composition — by construction, at the price of detecting
    every conflict of the composition's whole footprint. *)

module type POLICY = sig
  val name : string

  val eager_write_lock : bool
  (** Acquire the write lock at the first [write] instead of at commit. *)

  val extend_on_read : bool
  (** Extend the validity interval (revalidating the read set) instead of
      aborting when a too-new version is read. *)

  val priority_spin : int
  (** Bounded number of retries a priority transaction performs on a
      write-lock conflict before aborting.  0 = timid. *)

  val priority_threshold : int
  (** Number of writes after which a transaction gains priority;
      [max_int] = never. *)
end

module Make (P : POLICY) :
  Stm_core.Stm_intf.S with type 'a tvar = 'a Stm_core.Tvar.t

(** TL2 (Dice, Shalev, Shavit — DISC'06): commit-time locking, no interval
    extension, timid contention management. *)
module Tl2 : Stm_core.Stm_intf.S with type 'a tvar = 'a Stm_core.Tvar.t

(** LSA (Riegel, Felber, Fetzer — DISC'06): lazy snapshot with interval
    extension and eager lock acquirement. *)
module Lsa : Stm_core.Stm_intf.S with type 'a tvar = 'a Stm_core.Tvar.t

(** SwissTM (Dragojević, Felber, Gramoli, Guerraoui — CACM'11): eager
    write/write conflict detection, lazy read validation with extension,
    two-phase contention manager (simplified: priority transactions spin
    for contended locks instead of remotely aborting their enemies). *)
module Swisstm : Stm_core.Stm_intf.S with type 'a tvar = 'a Stm_core.Tvar.t
