(* Cache-line padding without [Atomic.make_contended] (OCaml 5.2+), so the
   library keeps building on 5.1: re-allocate the value's block with enough
   trailing words that no other heap object can share its cache line(s).
   The trailing words are ordinary immediate fields (initialised to unit by
   [Obj.new_block]) that nothing ever reads — pure spacing.

   128-byte spacing covers both a 64-byte line on adjacent-line-prefetching
   x86 (the prefetcher pairs lines, so 64-byte spacing still ping-pongs)
   and the 128-byte lines of Apple silicon. *)

let cache_line_words = 16 (* 128 bytes on 64-bit *)

let copy_as_padded : 'a -> 'a =
 fun v ->
  let r = Obj.repr v in
  if (not (Obj.is_block r)) || Obj.tag r >= Obj.no_scan_tag then v
  else begin
    let n = Obj.size r in
    (* Round the total block size up to a whole number of cache lines, with
       at least one line of slack after the payload. *)
    let words =
      (n + cache_line_words + (cache_line_words - 1))
      / cache_line_words * cache_line_words
    in
    let b = Obj.new_block (Obj.tag r) words in
    for i = 0 to n - 1 do
      Obj.set_field b i (Obj.field r i)
    done;
    Obj.obj b
  end

let atomic v = copy_as_padded (Atomic.make v)
