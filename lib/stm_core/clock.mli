(** The global version clock shared by all STM instances, with pluggable
    contention policies (named after the TL2 implementation's variants).

    A single process-wide clock keeps transactions from different STM
    implementations in one mutual order, which the cross-STM tests rely
    on.  How writers obtain their write version is governed by
    {!Runtime.clock_policy}:

    - {b GV1}: [tick] is a [fetch_and_add].  Unique write versions, one
      guaranteed RMW of a single shared line per writer commit.
    - {b GV4} ("pass on failure"): [tick] CASes [v -> v + 1] once; on
      failure it {e adopts} the current clock value instead of retrying.
      Two commits may thus share a write version.  This is safe in this
      runtime because every engine acquires all its write locks {e before}
      ticking: a snapshot that could miss a loser's writes at the shared
      version must have started after those locks were taken, so it aborts
      on the locked stamps regardless of the version number.
    - {b GV5} ("increment on abort"): [tick] writes nothing — the write
      version is [now () + 2], raised when needed to one above the highest
      version among the transaction's locked write entries (the [floor]
      argument) so that per-location versions stay strictly increasing,
      which the interval-extension engines (LSA, SwissTM, OE-STM,
      View-STM) and the sanitizer's regression check depend on.  Readers
      that see these future versions abort with "too new"; each abort
      bumps the clock by one ({!on_abort}), so a reader catches up after
      at most two aborts per lagging location.  GV5 therefore trades some
      reader aborts for {e zero} clock writes on the commit path — and the
      clock may legitimately run {e behind} installed versions.

    Policies are selected process-wide and must only be switched while no
    transactions are live ({!set_policy} fences the clock when leaving
    GV5 so that later ticks cannot re-mint an installed version). *)

val now : unit -> int
(** Current clock value.  Under GV5 this may be smaller than versions
    already installed in tvar locks. *)

val tick : ?floor:(unit -> int) -> unit -> int
(** The committing writer's write version.  Call with all write locks
    held.  [floor] (consulted by GV5 only) must return the highest
    committed version among the locked write entries —
    {!Rwsets.Wset.max_version}; defaults to [fun () -> 0], which is only
    correct for engines that never run under GV5. *)

val on_abort : unit -> unit
(** Policy hook for the retry loop: under GV5, bump the clock so that
    "version too new" aborts make the observers' next read stamp catch up
    with lazily installed versions.  A no-op under GV1/GV4. *)

val catch_up : int -> unit
(** Advance the clock to at least [v] (monotone; no-op if already past).
    Called by WAL recovery with the highest replayed commit version, so
    versions minted after a restart stay strictly above everything the
    replay installed — a correctness requirement for the next recovery's
    "newer than the checkpoint" comparison. *)

val current_policy : unit -> Runtime.clock_policy

val set_policy : Runtime.clock_policy -> unit
(** Switch the process-wide policy.  Never call while transactions are
    live.  Leaving GV5 advances the clock past every version GV5 handed
    out, so the change is transparent to existing tvars. *)

val all_policies : Runtime.clock_policy list

val policy_name : Runtime.clock_policy -> string
(** ["gv1" | "gv4" | "gv5"] — stable strings used by CLIs, the JSON report
    config and CI. *)

val policy_of_string : string -> Runtime.clock_policy
(** Inverse of {!policy_name} (case-insensitive); raises [Invalid_argument]
    on anything else. *)

val gv4_tick : interference:(unit -> unit) -> unit -> int
(** The GV4 step with a test-only injection point: [interference] runs
    between the clock read and the CAS, so a test can force the
    adoption branch deterministically.  Production callers use {!tick}. *)

val reset_for_testing : unit -> unit
(** Reset the clock (and the GV5 high-water mark) to zero.  Only for
    isolated unit tests, with no live transactions and no surviving tvars
    from before the reset — note that under GV5 existing tvars may carry
    versions {e ahead} of the clock, which a reset would replay. *)
