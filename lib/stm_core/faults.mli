(** Deterministic fault injection for robustness testing.

    When enabled, a seeded PRNG perturbs the STM machinery at its natural
    choice points: scheduling points may delay or spuriously abort the
    running attempt, versioned-lock acquisitions may be refused, read-set
    validations may be failed.  All perturbations surface through paths the
    engines already handle (an abort reason, a failed [try_lock], a failed
    validation), so a correct engine must stay linearizable under any fault
    schedule — which is exactly what the chaos suite checks.

    Injection happens only inside transaction attempts (see
    {!enter_attempt}) and never while the serial-irrevocable fallback token
    is held, so escalated transactions still commit and the no-starvation
    guarantee survives arbitrary fault rates. *)

type config = {
  seed : int;
  spurious_abort : float;   (** abort probability per scheduling point *)
  lock_fail : float;        (** refusal probability per lock acquisition *)
  validation_fail : float;  (** failure probability per read-set validation *)
  delay : float;            (** delay probability per scheduling point *)
  max_delay_spins : int;    (** upper bound on one injected delay *)
  crash : float;  (** simulated domain-crash probability per scheduling
                      point: raises {!Control.Crashed}, which engines
                      propagate {e without} releasing locks *)
  user_raise : float;  (** foreign-exception probability per scheduling
                           point: raises {!Injected_failure}, which engines
                           must clean up after like any user exception *)
  fsync_fail : float;  (** per WAL fsync: the sync reports failure and is
                           skipped, so acknowledged durability lags — the
                           records remain buffered for the next sync *)
  short_write : float;  (** per WAL flush: only a prefix of the buffer
                            reaches the file and the log is poisoned
                            (subsequent appends are dropped), leaving a
                            torn tail for recovery to truncate *)
}

val default : config
(** Seed 1, all rates zero, 64 max delay spins. *)

val parse : string -> config
(** Parse a CLI spec like ["seed=7,abort=0.01,lock=0.05,validate=0.05,delay=0.01,spins=64,crash=0.001,raise=0.01"].
    Unmentioned fields keep their {!default}.  Raises [Invalid_argument] on
    unknown keys or rates outside [0, 1]. *)

val to_string : config -> string

val enable : config -> unit
(** Install the injector (reseeding the PRNG from [config.seed]) and set
    {!Runtime.fault_injection}. *)

val disable : unit -> unit
val enabled : unit -> bool
val current : unit -> config option

val reseed : int -> unit
(** Reset the PRNG stream without touching the rates.  Raises
    [Invalid_argument] while disabled. *)

(** {1 Injected-fault accounting} *)

type kind =
  | Spurious_abort
  | Lock_fail
  | Validation_fail
  | Delay
  | Crash_domain
  | User_raise
  | Fsync_fail
  | Short_write

val all_kinds : kind list
val kind_name : kind -> string
val count : kind -> int
val counts : unit -> (kind * int) list
val reset_counts : unit -> unit

(** {1 Injection points} — called by the STM machinery. *)

val point : unit -> unit
(** The scheduling-point injector ({!Runtime.fault_hook}): may spin-delay
    and may raise {!Control.Abort_tx} with reason {!Control.Injected}. *)

val inject_lock_fail : unit -> bool
(** [true]: the caller must treat this lock acquisition as failed.
    Consulted by {!Vlock.try_lock} (and the boosting lock table). *)

val inject_validation_fail : unit -> bool
(** [true]: the caller must treat this read-set validation as failed.
    Consulted by {!Rwsets.Rset.validate}. *)

val inject_fsync_fail : unit -> bool
(** [true]: the caller must treat this WAL fsync as failed (records stay
    unacknowledged until a later sync covers them).  Unlike the
    transactional faults above this is {e not} gated on being inside an
    attempt — the WAL runs after the attempt has committed. *)

val inject_short_write : unit -> bool
(** [true]: the caller must write only a prefix of this WAL flush and
    poison the log.  Not gated on being inside an attempt. *)

val enter_attempt : unit -> unit
(** Mark the current process as inside a transaction attempt; set by
    {!Retry_loop} around each attempt.  Without it no fault fires, keeping
    contention-manager waits and non-transactional code unperturbed. *)

val leave_attempt : unit -> unit

(** {1 Crash and foreign-exception faults} *)

exception Injected_failure
(** The "user code raised" fault: deliberately {e not} a [Control]
    exception, so it exercises the engines' catch-all cleanup paths. *)

val arm_crash_after : points:int -> unit
(** Deterministic one-shot, per domain: after [points] further eligible
    scheduling points on the calling domain, raise {!Control.Crashed}
    (once).  Installs the fault hook even when no {!config} is active.
    Raises [Invalid_argument] if [points <= 0]. *)

val arm_raise_after : points:int -> unit
(** Same, raising {!Injected_failure} instead. *)

val disarm : unit -> unit
(** Cancel the calling domain's armed one-shot, if any.  (A global
    {!disable} also stops armed faults on every domain, by clearing
    {!Runtime.fault_injection}.) *)
