(* Durable-commit plumbing shared by the engines and lib/persist.

   The write-ahead log itself lives in lib/persist (it needs Unix and
   codecs); what must live down here is the part the engines touch on
   their commit paths:

   - an encoder registry mapping a tvar id to its persistent id and a
     serializer, filled by [Persist.Ptvar.make] and consulted by
     [Rwsets.Wset.capture_durable] right after a write set installs;
   - a per-domain staging slot: the engine stages [(pid, bytes)] entries
     together with the commit version [wv] while still inside the
     attempt, and [Retry_loop] fires the staged record through
     [commit_hook] only once the attempt's outcome is a definitive
     commit (or discards it on abort, so a record is never logged for a
     transaction that did not happen);
   - the hook indirection [Persist.enable] installs into.

   Everything here is guarded by [Runtime.durability] at the call sites,
   so none of it costs more than a load and branch while durability is
   off. *)

type staged = {
  s_wv : int;  (** commit version of the installing transaction *)
  s_entries : (int * string) list;
      (** persistent id, serialized committed value *)
}

(* ------------------------------------------------------------------ *)
(* Encoder registry                                                    *)

(* tvar id -> (persistent id, encoder).  Writes are mutex-guarded;
   reads are plain Hashtbl lookups, safe because registration happens
   before the tvar is shared with concurrently committing domains
   (documented contract of [Persist.Ptvar.make]). *)
let encoders : (int, int * (Obj.t -> string)) Hashtbl.t = Hashtbl.create 64
let enc_mu = Mutex.create ()

let locked f =
  Mutex.lock enc_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock enc_mu) f

let register_encoder ~tvar_id ~pid enc =
  locked (fun () -> Hashtbl.replace encoders tvar_id (pid, enc))

let encoder_for tvar_id = Hashtbl.find_opt encoders tvar_id

let reset_encoders () = locked (fun () -> Hashtbl.reset encoders)

(* ------------------------------------------------------------------ *)
(* Per-domain staging                                                  *)

let staged_slot : staged option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let stage ~wv entries =
  if entries <> [] then
    Domain.DLS.get staged_slot := Some { s_wv = wv; s_entries = entries }

let discard_staged () = Domain.DLS.get staged_slot := None

(* ------------------------------------------------------------------ *)
(* Commit hook                                                         *)

let commit_hook : (staged -> unit) ref = ref (fun _ -> ())

let on_commit () =
  let slot = Domain.DLS.get staged_slot in
  match !slot with
  | None -> ()
  | Some st ->
    slot := None;
    Stats.record_durable_commit ();
    !commit_hook st

let reset_for_testing () =
  reset_encoders ();
  discard_staged ();
  commit_hook := fun _ -> ()
