type t = {
  proc : int;
  held : (int, int) Hashtbl.t;  (* pe -> hold count *)
  mutable open_txs : int list;  (* innermost first *)
}

let create () =
  if Recorder.enabled () then
    Some { proc = Runtime.current_proc (); held = Hashtbl.create 8; open_txs = [] }
  else None

let begin_tx t ~tx =
  match t with
  | None -> ()
  | Some t ->
    t.open_txs <- tx :: t.open_txs;
    Recorder.emit (Begin { tx; proc = t.proc })

let commit_tx t ~tx =
  match t with
  | None -> ()
  | Some t ->
    (match t.open_txs with
    | hd :: tl when hd = tx -> t.open_txs <- tl
    | _ -> invalid_arg "Txrec.commit_tx: transaction is not innermost");
    Recorder.emit (Commit { tx; proc = t.proc })

let emit_release t pe = Recorder.emit (Release { pe; proc = t.proc })

let abort_open t =
  match t with
  | None -> ()
  | Some t ->
    List.iter (fun tx -> Recorder.emit (Abort { tx; proc = t.proc })) t.open_txs;
    t.open_txs <- [];
    Hashtbl.iter (fun pe count -> if count > 0 then emit_release t pe) t.held;
    Hashtbl.reset t.held

let acquire t ~pe =
  match t with
  | None -> ()
  | Some t ->
    let count = Option.value ~default:0 (Hashtbl.find_opt t.held pe) in
    if count = 0 then Recorder.emit (Acquire { pe; proc = t.proc });
    Hashtbl.replace t.held pe (count + 1)

let release t ~pe =
  match t with
  | None -> ()
  | Some t ->
    let count = Option.value ~default:0 (Hashtbl.find_opt t.held pe) in
    if count <= 1 then begin
      Hashtbl.remove t.held pe;
      if count = 1 then emit_release t pe
    end
    else Hashtbl.replace t.held pe (count - 1)

let release_remaining t =
  match t with
  | None -> ()
  | Some t ->
    Hashtbl.iter (fun pe count -> if count > 0 then emit_release t pe) t.held;
    Hashtbl.reset t.held

(* Abort generation: a per-domain counter of [Control.abort_tx] raises,
   bumped via [Control.abort_notifier] while the sanitizer is enabled.  The
   retry loop fences it around each attempt: an attempt that ends normally
   but saw the counter move contained a swallowed abort.  Registered with
   the TLS registry so that, were the sanitizer ever enabled under the
   deterministic scheduler, the counter would context-switch with the
   logical process instead of leaking across processes. *)
let abort_gen : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let () =
  Runtime.register_tls
    ~save:(fun () -> Obj.repr !(Domain.DLS.get abort_gen))
    ~restore:(fun o -> Domain.DLS.get abort_gen := (Obj.obj o : int))

let bump_abort_generation () = incr (Domain.DLS.get abort_gen)
let abort_generation () = !(Domain.DLS.get abort_gen)
let set_abort_generation n = Domain.DLS.get abort_gen := n

let read t ~tx ~pe ~repr =
  match t with
  | None -> ()
  | Some _ -> Recorder.emit (Read { pe; tx; value_repr = repr })

let write t ~tx ~pe ~repr =
  match t with
  | None -> ()
  | Some _ -> Recorder.emit (Write { pe; tx; value_repr = repr })
