type 'a t = {
  id : int;
  lock : Vlock.t;
  mutable content : 'a;
}

let make v =
  let id = Runtime.fresh_tvar_id () in
  { id; lock = Vlock.create ~pe:id (); content = v }

let id tv = tv.id

(* Double-stamp read: the two SC atomic loads around the plain load of
   [content] ensure that if the stamp is identical and unlocked on both sides
   then the plain load observed the value published by the commit that wrote
   that stamp (commit stores content before the atomic unlock).

   The stamp loads trace themselves (the lock's pe is the tvar id), so a
   traced step covers the content load too — same protection element. *)
let read_consistent tv =
  (* One bounded retry after an orphan steal: a reader stuck behind a lock
     whose owner died would otherwise abort forever. *)
  let rec go retried =
    let s1 = Vlock.stamp tv.lock in
    if Vlock.locked s1 then begin
      if (not retried) && !Runtime.recovery && Recovery.try_steal_vlock tv.lock
      then go true
      else Control.abort_tx Control.Read_locked
    end
    else begin
      let v = tv.content in
      let s2 = Vlock.stamp tv.lock in
      if s1 <> s2 then Control.abort_tx Control.Read_inconsistent;
      (s1, v)
    end
  in
  go false

let peek tv =
  if !Runtime.sanitizer then
    Runtime.sanitizer_event (Runtime.San_peek { pe = tv.id });
  tv.content

let unsafe_write tv v =
  if !Runtime.tracing then Runtime.trace_access (Runtime.Write tv.id);
  if !Runtime.sanitizer then begin
    let s = Vlock.stamp tv.lock in
    let locked_owner =
      if Vlock.locked s then Some (Vlock.owner tv.lock) else None
    in
    Runtime.sanitizer_event
      (Runtime.San_unsafe_write { pe = tv.id; locked_owner })
  end;
  tv.content <- v
