(** Registry of in-flight top-level transactions.

    One cache-line-padded slot per transacting domain, published while
    recovery ({!Recovery}) is enabled: the root transaction id about to
    acquire locks, a generation counter used to doom resurrected victims,
    and a monotonic heartbeat refreshed at every {!Runtime.schedule_point}.

    Ordering contract: {!publish} happens before the first lock
    acquisition of the attempt, {!clear} after the last release.  A lock
    owner with no live slot therefore exited abnormally — unless the table
    ever saturated ({!is_saturated}), after which absence stops implying
    death and only explicitly dead/stale slots are reclaimable. *)

type status =
  | Live   (** slot present, heartbeat within the lease *)
  | Stale  (** heartbeat older than the lease *)
  | Dead   (** domain exited / crashed, or never registered *)

val status_name : status -> string

val publish : owner:int -> unit
(** Record [owner] as this domain's in-flight root transaction, refresh
    the heartbeat and snapshot the slot generation.  Claims a slot on
    first use; silently a no-op if the table is saturated. *)

val clear : unit -> unit
(** The in-flight transaction finished (committed or aborted cleanly). *)

val mark_crashed : unit -> unit
(** Mark this domain's slot dead without clearing the owner: called by
    engines on a simulated crash ({!Control.Crashed}) so the orphaned
    locks remain attributed to a visibly-dead owner. *)

val heartbeat : unit -> unit
(** Refresh this domain's heartbeat; installed as
    {!Runtime.heartbeat_hook} by {!Recovery.enable}. *)

val poisoned : unit -> bool
(** This domain's slot generation moved past the value snapshotted at
    {!publish}: a contender doomed this transaction while stealing one of
    its locks.  Engines check this before installing a write set. *)

val doom : owner:int -> bool
(** Bump the generation of the slot currently publishing [owner], dooming
    that transaction.  [false] if no slot publishes [owner].  Called by
    {!Recovery} immediately {e before} stealing a lock, so the victim is
    poisoned first and can never install over a stolen lock. *)

val doom_domain : domain:int -> bool
(** Like {!doom}, but keyed by domain id: used by the serial-token
    reclaim, whose holder is a domain rather than a transaction.  [false]
    if the domain has no slot. *)

val owner_doomed : owner:int -> bool
(** The slot publishing [owner] has been doomed since its last publish.
    Used by the sanitizer to accept steals whose victim was doomed before
    the steal event was observed. *)

val domain_doomed : domain:int -> bool
(** Same, keyed by domain id (serial-token steals). *)

val owner_status : lease_ns:int -> owner:int -> status
(** Status of the transaction id [owner].  Absence maps to [Dead] (the
    publish-before-lock contract) unless the table is saturated, in which
    case absence conservatively maps to [Live]. *)

val domain_status : lease_ns:int -> domain:int -> status
(** Status of the domain (process) id [domain]; same absence rule. *)

val is_saturated : unit -> bool
(** A slot claim ever failed; absence-based death inference is disabled. *)

val live_count : unit -> int
(** Number of slots currently publishing a live in-flight transaction
    (diagnostics / tests only). *)
