(* Pluggable contention management.

   One [t] accompanies each toplevel [atomic] call through its retry loop.
   The policy decides how long an aborted attempt waits before retrying:

   - [Backoff]: randomised exponential backoff (the historical default).
     Fair on average, but a transaction that keeps losing waits longer and
     longer — exactly the wrong shape for a starving victim.

   - [Karma]: aborts accumulate priority, and accumulated priority divides
     the wait.  A transaction that has already lost a lot of work retries
     almost immediately while fresh transactions still back off, which
     breaks the "big reader always loses to small writers" starvation
     pattern without any global coordination.

   - [Timestamp]: the wait grows linearly (not exponentially) with the
     attempt number, and the transaction keeps its original birth
     timestamp, which the retry loop uses for deadline accounting.
     Greybeards wait politely but never fall off the exponential cliff.

   Whatever the policy, liveness does not depend on it: the retry loop
   escalates to the serial-irrevocable fallback at the retry cap. *)

type policy = Backoff | Karma | Timestamp

let policy_name = function
  | Backoff -> "backoff"
  | Karma -> "karma"
  | Timestamp -> "timestamp"

let all_policies = [ Backoff; Karma; Timestamp ]

let policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "backoff" -> Backoff
  | "karma" -> Karma
  | "timestamp" -> Timestamp
  | _ -> invalid_arg ("Cm.policy_of_string: unknown policy " ^ s)

(* Process-wide default policy used when [Retry_loop] builds the manager
   itself; the benchmark CLIs set it from --cm. *)
let default_policy = ref Backoff
let set_policy p = default_policy := p
let current_policy () = !default_policy

type t = {
  policy : policy;
  backoff : Backoff.t;
  mutable priority : int;  (* Karma: aborts survived by this transaction *)
  mutable birth_ns : int64;  (* Timestamp: first-attempt wall-clock *)
}

let create ?policy ?(seed = 0) () =
  let policy = Option.value policy ~default:!default_policy in
  { policy; backoff = Backoff.create ~seed (); priority = 0;
    birth_ns = Mclock.now_ns () }

let policy t = t.policy
let window t = Backoff.window t.backoff
let priority t = t.priority
let birth_ns t = t.birth_ns

let pre_attempt t ~attempt =
  if attempt = 0 then begin
    (* A fresh transaction, not a retry: restart the clock.  [birth_ns] is
       deliberately NOT refreshed on retries — the whole point of the
       Timestamp policy (and of deadline accounting) is that age is
       measured from the first attempt. *)
    t.birth_ns <- Mclock.now_ns ()
  end

let on_abort t ~attempt (_reason : Control.reason) =
  match t.policy with
  | Backoff -> Backoff.once t.backoff
  | Karma ->
    t.priority <- t.priority + 1;
    (* Priority divides the wait: a transaction that has lost [p] attempts
       waits a (p+1)-th of the current window, then the window still grows
       so that two equally-starved rivals keep separating. *)
    Backoff.wait t.backoff (Backoff.window t.backoff / (t.priority + 1));
    Backoff.grow t.backoff
  | Timestamp ->
    (* Linear, not exponential: attempt [n] waits n * init steps, capped by
       the instance's window ceiling via [window] growth below. *)
    let init, cap = Backoff.defaults () in
    Backoff.wait t.backoff (min cap (init * (attempt + 1)))

let on_commit t =
  Backoff.reset t.backoff;
  t.priority <- 0
