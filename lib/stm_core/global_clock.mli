(** Historical alias of {!Clock}, the global version clock.  New code
    should use {!Clock} directly; this name predates the pluggable
    GV1/GV4/GV5 policies. *)

include module type of Clock
