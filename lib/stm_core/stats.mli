(** Per-STM metrics: commit/abort counters, per-reason abort breakdown,
    and (behind {!set_detailed}) latency/footprint/retry histograms.

    Each STM implementation owns one [t].  Internally the counters are
    striped across cache-line-padded per-domain shards (indexed by domain
    id, masked into a fixed power-of-two range), so concurrent recording
    never ping-pongs a shared line; {!snapshot} merges the shards, so
    callers still see one logical counter set.  The histograms are
    lock-free fixed arrays of atomic buckets, so recording never allocates
    and never takes a lock. *)

(** {1 Detailed-metrics flag}

    Latency histograms need two monotonic-clock reads per attempt, so they
    are recorded only while the global flag is on.  When it is off the hot
    path pays a single load-and-branch ({!Retry_loop}) and nothing else. *)

val set_detailed : bool -> unit
val detailed_enabled : unit -> bool

(** {1 Log-bucketed histograms}

    Bucket 0 counts the value 0; bucket [i >= 1] counts values in
    [2^(i-1), 2^i).  Percentiles report a bucket's inclusive upper bound,
    an over-approximation by at most 2x. *)
module Hist : sig
  type t

  type snapshot = int array
  (** Bucket counts.  Treat as immutable. *)

  val buckets : int

  val create : unit -> t

  val record : t -> int -> unit
  (** Record one sample; negative values count as 0. *)

  val snapshot : t -> snapshot
  val reset : t -> unit

  val bucket_of : int -> int

  val upper_bound : int -> int
  (** Inclusive upper bound of a bucket. *)

  val empty : unit -> snapshot
  val add : snapshot -> snapshot -> snapshot
  val count : snapshot -> int

  val percentile : snapshot -> float -> int
  (** [percentile s p] for [p] in (0, 100]: the bucket upper bound at or
      below which [p]% of samples fall; 0 when the histogram is empty. *)

  val max_value : snapshot -> int
  (** Upper bound of the highest non-empty bucket; 0 when empty. *)
end

type t

type snapshot = {
  commits : int;
  aborts : int;
  starvations : int;  (** retry caps exhausted (escalations or raises) *)
  fallbacks : int;    (** serial-irrevocable fallback entries *)
  timeouts : int;     (** transactions abandoned past their deadline *)
  read_ws_hits : int;   (** transactional reads served from the write set *)
  read_ws_misses : int; (** transactional reads that missed the write set *)
  by_reason : (Control.reason * int) list;  (** aborts broken down by reason *)
  commit_latency_ns : Hist.snapshot;  (** duration of committing attempts *)
  abort_latency_ns : Hist.snapshot;   (** duration of aborted attempts *)
  read_set_size : Hist.snapshot;   (** entries at commit, committed tx only *)
  write_set_size : Hist.snapshot;  (** entries at commit, committed tx only *)
  retry_depth : Hist.snapshot;  (** aborted attempts before each commit *)
  validation_len : Hist.snapshot;  (** entries examined per validation scan *)
}

val create : unit -> t

val record_commit : t -> unit
val record_abort : t -> Control.reason -> unit

val record_starvation : t -> unit
(** A transaction exhausted {!Runtime.retry_cap}.  Counted whether the
    outcome is an escalation to the serial fallback or a raised
    {!Control.Starvation}. *)

val record_fallback : t -> unit
(** A transaction entered the serial-irrevocable fallback. *)

val record_timeout : t -> unit
(** A transaction gave up past its {!Runtime.tx_timeout_ns} deadline. *)

(** The detailed recorders are unconditional; callers guard on
    {!detailed_enabled} so the clock is not even read when metrics are
    off. *)

val record_commit_latency : t -> int -> unit
val record_abort_latency : t -> int -> unit
val record_rwset_sizes : t -> reads:int -> writes:int -> unit
val record_retry_depth : t -> int -> unit

val record_read_ws_hit : t -> unit
(** A transactional read found its location in the write set. *)

val record_read_ws_miss : t -> unit
(** A transactional read missed the write set (summary word or lookup). *)

val record_validation_len : t -> int -> unit
(** Number of read-set entries a validation scan examined (suffix length
    for incremental validation, full length otherwise). *)

val snapshot : t -> snapshot
val reset : t -> unit

val empty_snapshot : unit -> snapshot
(** Identity element of {!add}. *)

val add : snapshot -> snapshot -> snapshot
(** Pointwise sum — commutative and associative with {!empty_snapshot} as
    identity, so per-run snapshots can be folded into per-point totals. *)

(** {1 Recovery counters}

    Process-global (not per-STM): orphan steals happen in the shared lock
    paths below any engine instance.  Reported additively in run JSON when
    recovery is enabled. *)

type recovery_counters = {
  orphan_steals : int;     (** locks reclaimed from dead/stale owners *)
  lease_expiries : int;    (** steals whose victim was stale, not dead *)
  poisoned_commits : int;  (** doomed victims aborted at their poison check *)
}

val record_orphan_steal : unit -> unit
val record_lease_expiry : unit -> unit
val record_poisoned_commit : unit -> unit
val recovery_counters : unit -> recovery_counters
val reset_recovery_counters : unit -> unit

(** {1 Durability counters}

    Process-global (not per-STM): the write-ahead log is one process-wide
    log below any engine instance.  Reported additively in run JSON when
    durability is enabled. *)

type durable_counters = {
  durable_commits : int;  (** commits that staged at least one entry *)
  wal_appends : int;  (** records enqueued to the WAL buffer *)
  wal_syncs : int;  (** completed fsyncs *)
  wal_sync_failures : int;  (** injected/real fsync failures *)
  wal_short_writes : int;  (** injected short writes (log poisoned) *)
}

val record_durable_commit : unit -> unit
val record_wal_append : unit -> unit
val record_wal_sync : unit -> unit
val record_wal_sync_failure : unit -> unit
val record_wal_short_write : unit -> unit
val durable_counters : unit -> durable_counters
val reset_durable_counters : unit -> unit

val abort_rate : snapshot -> float
(** aborts / (aborts + commits), or 0 when no transaction ran. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
