(* Dynamic checking of the STM's internal discipline.  See sanitizer.mli
   for the check catalogue and DESIGN.md for the design notes (what is a
   violation vs. what is merely an abort, and why each check cannot
   false-positive on a correct engine).

   All shared state lives behind one mutex: the sanitizer is a debugging
   tool and correctness of its own bookkeeping beats hot-path cost.  The
   per-event counters are atomics so the frequent paths (validated reads,
   peeks) touch the mutex only to record a violation. *)

type kind =
  | Lock_imbalance
  | Version_regress
  | Unsafe_write_race
  | Peek_escape
  | Commit_stale
  | Abort_swallowed
  | Bad_steal

let all_kinds =
  [ Lock_imbalance; Version_regress; Unsafe_write_race; Peek_escape;
    Commit_stale; Abort_swallowed; Bad_steal ]

let kind_index = function
  | Lock_imbalance -> 0
  | Version_regress -> 1
  | Unsafe_write_race -> 2
  | Peek_escape -> 3
  | Commit_stale -> 4
  | Abort_swallowed -> 5
  | Bad_steal -> 6

let kind_name = function
  | Lock_imbalance -> "lock-imbalance"
  | Version_regress -> "version-regress"
  | Unsafe_write_race -> "unsafe-write-race"
  | Peek_escape -> "peek-escape"
  | Commit_stale -> "commit-stale"
  | Abort_swallowed -> "abort-swallowed"
  | Bad_steal -> "bad-steal"

type violation = {
  v_kind : kind;
  v_pe : int;
  v_proc : int;
  v_owner : int;
  v_detail : string;
}

let pp_violation ppf v =
  Format.fprintf ppf "[%s] pe=%d proc=%d owner=%d: %s" (kind_name v.v_kind)
    v.v_pe v.v_proc v.v_owner v.v_detail

type checks = {
  lock_transitions : int;
  reads_validated : int;
  commits_checked : int;
  unsafe_writes_checked : int;
  peeks_checked : int;
  attempts_audited : int;
  zombie_aborts : int;
  steals_checked : int;
}

(* ------------------------------------------------------------------ *)
(* State                                                               *)

let m = Mutex.create ()

let with_m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* Full violation records are capped (a broken engine in a tight loop
   would otherwise accumulate without bound); the per-kind counts keep
   counting past the cap. *)
let kept_max = 256

let kind_counts = Array.init (List.length all_kinds) (fun _ -> Atomic.make 0)
let total_violations = Atomic.make 0
let kept : violation list ref = ref []  (* newest first, under [m] *)

(* pe -> lock discipline state.  [holder] is the owner id or -1. *)
type lock_state = { mutable holder : int; mutable last_version : int }

let locks : (int, lock_state) Hashtbl.t = Hashtbl.create 64

(* owner (root tx id) -> logical process, for every live top-level
   transaction attempt. *)
let live : (int, int) Hashtbl.t = Hashtbl.create 16

(* owners that crashed (simulated) while holding locks: legitimate steal
   victims even when their registry slot has not yet gone dead/stale. *)
let crashed : (int, unit) Hashtbl.t = Hashtbl.create 16

let c_lock_transitions = Atomic.make 0
let c_reads_validated = Atomic.make 0
let c_commits_checked = Atomic.make 0
let c_unsafe_writes = Atomic.make 0
let c_peeks = Atomic.make 0
let c_attempts_audited = Atomic.make 0
let c_zombie_aborts = Atomic.make 0
let c_steals = Atomic.make 0

let enabled () = !Runtime.sanitizer

(* Checks are suppressed under the deterministic scheduler: simulated runs
   multiplex logical processes whose interleavings deliberately include
   states (peeks from evaluator closures, mid-schedule kills) that the
   discipline checks would misread as escapes. *)
let active () = !Runtime.sanitizer && not !Runtime.simulated

(* Assumes [m] is held. *)
let record_locked ~kind ~pe ~owner detail =
  Atomic.incr kind_counts.(kind_index kind);
  Atomic.incr total_violations;
  if Atomic.get total_violations <= kept_max then
    kept :=
      { v_kind = kind; v_pe = pe; v_proc = Runtime.current_proc ();
        v_owner = owner; v_detail = detail }
      :: !kept

let record ~kind ~pe ~owner detail =
  with_m (fun () -> record_locked ~kind ~pe ~owner detail)

(* ------------------------------------------------------------------ *)
(* Event handler (lock transitions, unsafe stores, peeks)              *)

let on_acquire ~pe ~owner ~version =
  Atomic.incr c_lock_transitions;
  with_m (fun () ->
      match Hashtbl.find_opt locks pe with
      | None -> Hashtbl.add locks pe { holder = owner; last_version = version }
      | Some e ->
        if e.holder >= 0 then
          record_locked ~kind:Lock_imbalance ~pe ~owner
            (Printf.sprintf "acquired by %d while already held by %d" owner
               e.holder)
        else if version < e.last_version then
          record_locked ~kind:Version_regress ~pe ~owner
            (Printf.sprintf
               "acquired at version %d after the lock reached version %d"
               version e.last_version);
        e.holder <- owner;
        if version > e.last_version then e.last_version <- version)

let on_release ~pe ~owner ~version =
  Atomic.incr c_lock_transitions;
  with_m (fun () ->
      match Hashtbl.find_opt locks pe with
      | None ->
        (* Cold start: the lock was acquired before the sanitizer was
           enabled.  Seed the table instead of flagging. *)
        Hashtbl.add locks pe
          { holder = -1; last_version = Option.value version ~default:0 }
      | Some e ->
        if e.holder < 0 then
          record_locked ~kind:Lock_imbalance ~pe ~owner
            (Printf.sprintf "released by %d while not held" owner)
        else if e.holder <> owner then
          record_locked ~kind:Lock_imbalance ~pe ~owner
            (Printf.sprintf "released by %d while held by %d" owner e.holder);
        e.holder <- -1;
        (match version with
        | None -> ()  (* restore/abstract release: version unchanged *)
        | Some v ->
          if v <= e.last_version then
            record_locked ~kind:Version_regress ~pe ~owner
              (Printf.sprintf
                 "unlocked to version %d, not above the last version %d" v
                 e.last_version)
          else e.last_version <- v))

let on_unsafe_write ~pe ~locked_owner =
  Atomic.incr c_unsafe_writes;
  with_m (fun () ->
      if Hashtbl.length live > 0 then begin
        let sanctioned =
          (* The store is the install phase of a commit: the element's lock
             is held by a transaction live on this very process. *)
          match locked_owner with
          | Some o -> Hashtbl.find_opt live o = Some (Runtime.current_proc ())
          | None -> false
        in
        if not sanctioned then
          record_locked ~kind:Unsafe_write_race ~pe
            ~owner:(Option.value locked_owner ~default:(-1))
            (Printf.sprintf
               "non-transactional store while %d transaction(s) live and the \
                lock is %s"
               (Hashtbl.length live)
               (match locked_owner with
               | None -> "not held"
               | Some o -> Printf.sprintf "held by foreign owner %d" o))
      end)

let on_peek ~pe =
  Atomic.incr c_peeks;
  with_m (fun () ->
      let here = Runtime.current_proc () in
      let foreign =
        Hashtbl.fold (fun _ proc acc -> acc || proc <> here) live false
      in
      if foreign then
        record_locked ~kind:Peek_escape ~pe ~owner:(-1)
          (Printf.sprintf
             "non-transactional read while a transaction is live on another \
              process"))

(* A steal is legitimate only against a victim that cannot still be
   running: it crashed (simulated), its registry slot is dead or stale, or
   recovery already doomed it (doom happens strictly before the steal, so
   a stale victim that heartbeats again between the thief's status check
   and this one is still visibly doomed — the check cannot false-positive
   on a correct thief).  The serial token's victim is a domain id, not a
   transaction id; it is recognised by its [clock_pe] event. *)
let on_steal ~pe ~victim ~version =
  Atomic.incr c_steals;
  let lease_ns = Recovery.lease_ns () in
  let victim_gone =
    if pe = Runtime.clock_pe then
      (match Registry.domain_status ~lease_ns ~domain:victim with
      | Registry.Dead | Registry.Stale -> true
      | Registry.Live -> false)
      || Registry.domain_doomed ~domain:victim
    else
      Hashtbl.mem crashed victim
      || (match Registry.owner_status ~lease_ns ~owner:victim with
         | Registry.Dead | Registry.Stale -> true
         | Registry.Live -> false)
      || Registry.owner_doomed ~owner:victim
  in
  with_m (fun () ->
      if not victim_gone then
        record_locked ~kind:Bad_steal ~pe ~owner:victim
          (Printf.sprintf
             "lock stolen from owner %d whose registry slot is live" victim);
      match Hashtbl.find_opt locks pe with
      | None -> ()
      | Some e ->
        e.holder <- -1;
        (match version with
        | Some v when v > e.last_version -> e.last_version <- v
        | _ -> ()))

let handle_event e =
  if active () then
    match (e : Runtime.san_event) with
    | Runtime.San_acquire { pe; owner; version } -> on_acquire ~pe ~owner ~version
    | Runtime.San_release { pe; owner; version } -> on_release ~pe ~owner ~version
    | Runtime.San_unsafe_write { pe; locked_owner } ->
      on_unsafe_write ~pe ~locked_owner
    | Runtime.San_peek { pe } -> on_peek ~pe
    | Runtime.San_steal { pe; victim; version } -> on_steal ~pe ~victim ~version

(* ------------------------------------------------------------------ *)
(* Engine-facing checks                                                *)

let tx_begin ~owner =
  if active () then
    with_m (fun () -> Hashtbl.replace live owner (Runtime.current_proc ()))

let tx_end ~owner =
  if active () then with_m (fun () -> Hashtbl.remove live owner)

let tx_crashed ~owner =
  if active () then
    with_m (fun () ->
        Hashtbl.remove live owner;
        Hashtbl.replace crashed owner ())

let on_tx_read ~validate =
  if active () then begin
    Atomic.incr c_reads_validated;
    if not (validate ()) then begin
      (* Not a violation: the engine would have caught this at commit (or
         at the next extension).  Strict-opacity mode turns the zombie
         window into an immediate abort, reported at the read that would
         have observed the inconsistent snapshot. *)
      Atomic.incr c_zombie_aborts;
      Control.abort_tx Control.Read_inconsistent
    end
  end

let on_commit ~owner ~wv iter =
  if active () then begin
    Atomic.incr c_commits_checked;
    iter (fun (e : Rwsets.rentry) ->
        let s = Vlock.stamp e.Rwsets.r_lock in
        let seen = Vlock.version_of e.Rwsets.r_seen in
        let now = Vlock.version_of s in
        (* Proven-safe staleness rule: this commit serialises at [wv], so a
           read entry whose lock is free with a version that differs from
           the one read — yet is no newer than [wv] — was overwritten by a
           commit ordered before ours: the engine's validation should have
           caught it.  Foreign-locked entries and versions beyond [wv]
           (post-validation interference, which necessarily obtained a
           newer tick) are indistinguishable from benign races and are
           skipped.

           Under GV5 the bound is strict: a concurrent committer that read
           the same clock value installs at exactly our [wv] (GV5 writers
           share [now + 2] without ticking), and it can do so between our
           validation and this scan — a benign race, not staleness.  Under
           GV1/GV4 equality stays a violation: ticks are unique (GV1), and
           a GV4 adopter's tick necessarily runs after it locked the
           location, which is after our validation passed over the
           unlocked stamp and hence after our own CAS — so interference
           always lands strictly above [wv]. *)
        let within_serialization =
          match !Runtime.clock_policy with
          | Runtime.GV5 -> now < wv
          | Runtime.GV1 | Runtime.GV4 -> now <= wv
        in
        if (not (Vlock.locked s)) && now <> seen && within_serialization then
          record ~kind:Commit_stale ~pe:e.Rwsets.r_pe ~owner
            (Printf.sprintf
               "committing at wv %d with a read of version %d whose \
                location is now at version %d"
               wv seen now))
  end

(* ------------------------------------------------------------------ *)
(* Retry-loop-facing attempt audit                                     *)

let attempt_fence () = Txrec.abort_generation ()

let audit_attempt ~before ~aborted =
  if active () then begin
    Atomic.incr c_attempts_audited;
    let now = Txrec.abort_generation () in
    let expected = before + if aborted then 1 else 0 in
    if now > expected then
      record ~kind:Abort_swallowed ~pe:(-1) ~owner:(-1)
        (Printf.sprintf
           "%d abort(s) raised during the attempt never reached the retry \
            loop"
           (now - expected));
    (* Consume this attempt's aborts so enclosing retry loops (a nested
       [atomic] of another engine) audit only their own. *)
    Txrec.set_abort_generation before
  end

(* ------------------------------------------------------------------ *)
(* Lifecycle and reporting                                             *)

let reset () =
  with_m (fun () ->
      Hashtbl.reset locks;
      Hashtbl.reset live;
      Hashtbl.reset crashed;
      kept := [];
      Atomic.set total_violations 0;
      List.iter (fun k -> Atomic.set kind_counts.(kind_index k) 0) all_kinds;
      List.iter (fun c -> Atomic.set c 0)
        [ c_lock_transitions; c_reads_validated; c_commits_checked;
          c_unsafe_writes; c_peeks; c_attempts_audited; c_zombie_aborts;
          c_steals ])

let enable () =
  Runtime.sanitizer_hook := handle_event;
  Control.abort_notifier := Txrec.bump_abort_generation;
  Runtime.sanitizer := true

let disable () = Runtime.sanitizer := false

let violations () = with_m (fun () -> List.rev !kept)
let violation_count () = Atomic.get total_violations

let counts_by_kind () =
  List.map (fun k -> (k, Atomic.get kind_counts.(kind_index k))) all_kinds

let checks () =
  { lock_transitions = Atomic.get c_lock_transitions;
    reads_validated = Atomic.get c_reads_validated;
    commits_checked = Atomic.get c_commits_checked;
    unsafe_writes_checked = Atomic.get c_unsafe_writes;
    peeks_checked = Atomic.get c_peeks;
    attempts_audited = Atomic.get c_attempts_audited;
    zombie_aborts = Atomic.get c_zombie_aborts;
    steals_checked = Atomic.get c_steals }
