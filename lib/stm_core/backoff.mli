(** Randomised exponential backoff used by the contention managers.

    Each transaction attempt carries a backoff state; after an abort the
    transaction waits for a random number of relaxation steps drawn from an
    exponentially growing window before retrying.  Under the deterministic
    scheduler the wait degenerates to scheduling points so that cooperative
    processes cannot spin forever. *)

type t

val create : ?seed:int -> ?init:int -> ?max_window:int -> unit -> t
(** [init] and [max_window] default to the process-wide defaults
    ({!set_defaults}), themselves 16 and {!max_window} until changed. *)

val reset : t -> unit
(** Restore the instance's initial window. *)

val once : t -> unit
(** Wait once and widen the window. *)

val grow : t -> unit
(** Widen the window without waiting — for contention managers that
    compute their own wait from the window. *)

val wait : t -> int -> unit
(** Relax for the given number of steps (a scheduling point under the
    deterministic scheduler) without touching the window. *)

val window : t -> int
(** Current window size, for tests and diagnostics.  Starts at the
    instance's initial window, doubles on every {!once} and never exceeds
    its cap. *)

val max_window : int
(** Factory-default upper bound on the window (2{^14} relaxation steps). *)

val set_defaults : ?init:int -> ?max_window:int -> unit -> unit
(** Change the process-wide default initial window and cap used by
    {!create} when not given explicitly (the benchmark CLIs' --backoff-init
    and --backoff-max).  Raises [Invalid_argument] on a non-positive [init]
    or a cap below the current default [init]. *)

val defaults : unit -> int * int
(** Current (init, max_window) defaults. *)
