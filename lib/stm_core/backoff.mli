(** Randomised exponential backoff used by the contention manager.

    Each transaction attempt carries a backoff state; after an abort the
    transaction waits for a random number of relaxation steps drawn from an
    exponentially growing window before retrying.  Under the deterministic
    scheduler the wait degenerates to scheduling points so that cooperative
    processes cannot spin forever. *)

type t

val create : ?seed:int -> unit -> t
val reset : t -> unit

val once : t -> unit
(** Wait once and widen the window. *)

val window : t -> int
(** Current window size, for tests and diagnostics.  Starts at 16,
    doubles on every {!once} and never exceeds [max_window]. *)

val max_window : int
(** Upper bound on the window (2{^14} relaxation steps). *)
