(** Per-transaction recording bookkeeping.

    One value of this type accompanies each top-level transaction attempt
    while a {!Recorder} sink is installed.  It keeps the multiset of
    protection elements currently held by the process — so that acquire and
    release events always alternate correctly per element, as the model's
    well-formedness requires — and the stack of open (possibly nested)
    transaction ids, so that an abort that unwinds through nested levels can
    close every open [begin] with a matching [abort] event. *)

type t

val create : unit -> t option
(** [Some] fresh state when recording is enabled, [None] otherwise (all
    other functions are cheap no-ops on [None]). *)

val begin_tx : t option -> tx:int -> unit
val commit_tx : t option -> tx:int -> unit

val abort_open : t option -> unit
(** Emit an abort for every still-open transaction (innermost first) and
    a release for every held protection element. *)

val acquire : t option -> pe:int -> unit
(** Note one more hold on [pe]; emits an acquire event when the count rises
    from zero. *)

val release : t option -> pe:int -> unit
(** Drop one hold on [pe]; emits a release event when the count reaches
    zero. *)

val release_remaining : t option -> unit
(** Release every hold (used right after the top-level commit). *)

val read : t option -> tx:int -> pe:int -> repr:int -> unit
val write : t option -> tx:int -> pe:int -> repr:int -> unit

(** {2 Abort generation}

    A per-domain counter of {!Control.abort_tx} raises, used by the
    sanitizer to detect aborts swallowed by user code: {!Retry_loop} reads
    it before an attempt and audits it after — an attempt that returned
    normally (or raised something else) while the counter moved contained
    an abort that never reached the loop. *)

val bump_abort_generation : unit -> unit
(** Installed as {!Control.abort_notifier} while the sanitizer is on. *)

val abort_generation : unit -> int

val set_abort_generation : int -> unit
(** Restore the counter to a fenced value after auditing an attempt, so
    nested retry loops (one engine's [atomic] inside another's) each see
    only their own attempt's aborts. *)
