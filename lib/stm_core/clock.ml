(* The global version clock, with pluggable contention policies (see
   clock.mli and DESIGN.md §5f).  The cell is cache-line padded: under GV1
   every writer commit RMWs it, so sharing a line with any other hot object
   would ping-pong that object too.

   The trace events are hoisted to module level so that a traced run does
   not allocate a constructor application per clock access, and an
   untraced run pays exactly one load-and-branch. *)

let clock = Padding.atomic 0

(* Highest write version handed out by a GV5 tick that exceeded
   [clock + 2] (possible only via the floor rule, i.e. a re-write of a
   location whose lock already carries a higher version).  Maintained so
   that [set_policy] can fence the clock past every installed version when
   leaving GV5; CASed only on those rare floor-raised commits. *)
let gv5_high = Padding.atomic 0

let read_event = Runtime.Read Runtime.clock_pe
let write_event = Runtime.Write Runtime.clock_pe

let now () =
  if !Runtime.tracing then Runtime.trace_access read_event;
  Atomic.get clock

let rec cas_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then cas_max cell v

(* GV4, factored so the test suite can drive the CAS-failure branch
   deterministically: [interference] runs between the initial read and the
   CAS.  A loser does not retry — it adopts the winner's value, which is a
   correct write version because every engine acquires all its write locks
   *before* ticking: any snapshot that could miss the loser's writes under
   the shared version necessarily started after those locks were visible,
   so it aborts on the locked stamps, not on the version. *)
let gv4_tick ~interference () =
  let v = Atomic.get clock in
  interference ();
  if Atomic.compare_and_set clock v (v + 1) then v + 1
  else Atomic.get clock

let no_floor () = 0

let tick ?(floor = no_floor) () =
  (* Every policy is traced as a clock write, even GV5's read-only tick:
     a conservative annotation keeps the DPOR footprint (and thus the
     explored schedule set) identical across policies. *)
  if !Runtime.tracing then Runtime.trace_access write_event;
  match !Runtime.clock_policy with
  | Runtime.GV1 -> Atomic.fetch_and_add clock 1 + 1
  | Runtime.GV4 -> gv4_tick ~interference:ignore ()
  | Runtime.GV5 ->
    let base = Atomic.get clock + 2 in
    let wv = max base (floor () + 1) in
    if wv > base then cas_max gv5_high wv;
    wv

let on_abort () =
  if !Runtime.clock_policy == Runtime.GV5 then begin
    if !Runtime.tracing then Runtime.trace_access write_event;
    Atomic.incr clock
  end

(* Post-recovery fence: WAL replay decides "already covered by the last
   checkpoint" with a version comparison, so versions minted after a
   restart must stay strictly above every replayed commit version —
   otherwise a post-recovery commit's record would look older than the
   state it follows and be skipped (or mis-ordered) by the *next*
   recovery. *)
let catch_up v =
  cas_max clock v;
  cas_max gv5_high v

let current_policy () = !Runtime.clock_policy

let set_policy p =
  (* Leaving GV5, installed versions may exceed the clock (by 2 from the
     lazy commit rule, by more via floor chains).  Fence the clock above
     all of them so the next GV1/GV4 tick cannot mint an already-used
     version. *)
  if !Runtime.clock_policy == Runtime.GV5 && p <> Runtime.GV5 then begin
    cas_max clock (Atomic.get clock + 2);
    cas_max clock (Atomic.get gv5_high)
  end;
  Runtime.clock_policy := p

let all_policies = [ Runtime.GV1; Runtime.GV4; Runtime.GV5 ]

let policy_name = function
  | Runtime.GV1 -> "gv1"
  | Runtime.GV4 -> "gv4"
  | Runtime.GV5 -> "gv5"

let policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "gv1" -> Runtime.GV1
  | "gv4" -> Runtime.GV4
  | "gv5" -> Runtime.GV5
  | other -> invalid_arg ("Clock.policy_of_string: unknown policy " ^ other)

let reset_for_testing () =
  Atomic.set clock 0;
  Atomic.set gv5_high 0
