(* Access annotations.  [Pure] claims the upcoming step touches no shared
   state; the other constructors name the protection element about to be
   accessed.  The deterministic scheduler uses them (together with the
   dynamic trace hook below) to compute which steps commute. *)
type access =
  | Pure
  | Read of int
  | Write of int
  | Lock of int

let clock_pe = -1

let pp_access ppf = function
  | Pure -> Format.fprintf ppf "pure"
  | Read pe when pe = clock_pe -> Format.fprintf ppf "R(clock)"
  | Write pe when pe = clock_pe -> Format.fprintf ppf "W(clock)"
  | Read pe -> Format.fprintf ppf "R(%d)" pe
  | Write pe -> Format.fprintf ppf "W(%d)" pe
  | Lock pe -> Format.fprintf ppf "L(%d)" pe

let proc_hook = ref (fun () -> (Domain.self () :> int))
let current_proc () = !proc_hook ()

(* Fault injection.  [Faults] installs its injector here; the flag keeps the
   hot path at one load-and-branch while no faults are configured. *)
let fault_injection = ref false
let fault_hook : (unit -> unit) ref = ref (fun () -> ())

let yield_hook : (access -> unit) ref = ref (fun _ -> ())

(* Crash-tolerant lock recovery.  [Recovery] installs its hooks here; the
   flag keeps the hot path at one load-and-branch while recovery is off.
   The heartbeat hook refreshes the current domain's registry slot at
   every scheduling point; the serial-reclaim hook runs inside the
   [Serial] spin loops so a token orphaned by a dead holder is eventually
   CASed free. *)
let recovery = ref false
let heartbeat_hook : (unit -> unit) ref = ref (fun () -> ())
let serial_reclaim_hook : (unit -> unit) ref = ref (fun () -> ())

(* Durable commits.  [Persist] raises the flag while a write-ahead log is
   open; [Retry_loop] consults it after every top-level outcome (fire the
   staged record on commit, drop it on abort), so the hot path pays one
   load-and-branch while durability is off.  The staging machinery itself
   lives in [Durable] to keep this module dependency-free. *)
let durability = ref false

let schedule_point () =
  if !recovery then !heartbeat_hook ();
  if !fault_injection then !fault_hook ();
  !yield_hook Pure

let schedule_point_on a =
  if !recovery then !heartbeat_hook ();
  if !fault_injection then !fault_hook ();
  !yield_hook a

let simulated = ref false

(* Dynamic access tracing.  While the deterministic scheduler runs, every
   shared access performed by the STM machinery (versioned-lock stamps,
   tvar stores, global-clock reads/ticks, abstract locks) reports itself
   here, giving each scheduling step its exact footprint.  Off by default;
   call sites guard on [tracing] so the hot path pays one load and branch,
   and no allocation, when no scheduler is attached. *)
let tracing = ref false
let trace_hook : (access -> unit) ref = ref (fun _ -> ())
let trace_access a = !trace_hook a

(* Transactional sanitizer.  [Sanitizer] installs its event handler here;
   the flag keeps every instrumented site (lock transitions, unsafe stores,
   peeks) at one load-and-branch while the sanitizer is off.  Events name
   the protection element; lock events also carry the owner and the version
   observed at the transition so the sanitizer can check balance and
   monotonicity without holding references into the lock itself. *)
type san_event =
  | San_acquire of { pe : int; owner : int; version : int }
      (** a versioned/abstract lock was taken; [version] is the committed
          version at acquisition time (0 for abstract locks) *)
  | San_release of { pe : int; owner : int; version : int option }
      (** a lock was dropped; [Some v] = released to a new version
          (commit), [None] = restored/abstract (version unchanged) *)
  | San_unsafe_write of { pe : int; locked_owner : int option }
      (** a non-transactional store; [locked_owner] is the holder of the
          element's lock at the store, if it was held *)
  | San_peek of { pe : int }  (** a non-transactional read *)
  | San_steal of { pe : int; victim : int; version : int option }
      (** recovery reclaimed a lock held by [victim]; [Some v] = a
          versioned lock stolen to poisoned version [v], [None] = an
          abstract lock or the serial token *)

let sanitizer = ref false
let sanitizer_hook : (san_event -> unit) ref = ref (fun _ -> ())
let sanitizer_event e = !sanitizer_hook e

(* Global-clock policy (see [Clock]).  Lives here, below the clock module
   itself, so that engines and the sanitizer can branch on the policy
   without a dependency cycle.  [GV1]: fetch-and-add per writer commit.
   [GV4]: CAS once, adopt the winner's value on failure.  [GV5]: commit at
   [read + 2] without writing the clock; bump it on aborts instead. *)
type clock_policy = GV1 | GV4 | GV5

let clock_policy = ref GV1

let retry_cap = ref 64

let starvation_mode : [ `Raise | `Fallback ] ref = ref `Fallback

let tx_timeout_ns : int option ref = ref None

(* Serial-irrevocable mode: a single global token whose holder is the only
   logical process allowed to commit.  The retry loop enters it when a
   transaction exhausts its retry cap; every engine's commit path checks
   [commit_allowed] and aborts (releasing its locks) when another process
   holds the token, and new attempts park in [await_clear].  With no
   concurrent commits the clock cannot advance and locks drain, so the
   holder's next attempt validates trivially — it commits after at most the
   in-flight stragglers finish. *)
module Serial = struct
  let holder = Padding.atomic (-1)

  let active () = Atomic.get holder >= 0
  let mine () = Atomic.get holder = current_proc ()

  let commit_allowed () =
    let h = Atomic.get holder in
    h < 0 || h = current_proc ()

  let relax () = if !simulated then schedule_point () else Domain.cpu_relax ()

  let rec enter ?(giveup = fun () -> false) () =
    if Atomic.compare_and_set holder (-1) (current_proc ()) then true
    else if giveup () then false
    else begin
      if !recovery then !serial_reclaim_hook ();
      relax ();
      enter ~giveup ()
    end

  let exit () =
    ignore (Atomic.compare_and_set holder (current_proc ()) (-1))

  let holder_id () = Atomic.get holder

  (* Recovery-only: release a token held by [expected] on that process's
     behalf.  The CAS makes the reclaim safe against the presumed-dead
     holder resurrecting and calling [exit] itself (both CAS from the same
     observed value; exactly one wins). *)
  let force_clear ~expected =
    expected >= 0 && Atomic.compare_and_set holder expected (-1)

  let rec await_clear ?(giveup = fun () -> false) () =
    let h = Atomic.get holder in
    if h < 0 || h = current_proc () then true
    else if giveup () then false
    else begin
      if !recovery then !serial_reclaim_hook ();
      relax ();
      await_clear ~giveup ()
    end
end

(* Identifier supplies.  Outside the deterministic scheduler these are
   global atomic counters.  Under simulation, ids are drawn from per-process
   pools instead: two independent steps that each allocate (a tvar created
   inside a transaction, a fresh transaction id) must produce the same ids
   in either execution order, otherwise id-derived behaviour (write-set lock
   ordering, owner comparisons) would distinguish equivalent interleavings
   and break partial-order reduction. *)
let tx_counter = Atomic.make 0
let tvar_counter = Atomic.make 0

let sim_id_base = 1 lsl 40
let sim_id_stride = 1 lsl 28

let sim_tx_pools : (int, int ref) Hashtbl.t = Hashtbl.create 8
let sim_tvar_pools : (int, int ref) Hashtbl.t = Hashtbl.create 8

let reset_sim_ids () =
  Hashtbl.reset sim_tx_pools;
  Hashtbl.reset sim_tvar_pools

let salted_id pools =
  let p = current_proc () in
  let r =
    match Hashtbl.find_opt pools p with
    | Some r -> r
    | None ->
      let r = ref 0 in
      Hashtbl.add pools p r;
      r
  in
  incr r;
  sim_id_base + ((p + 1) * sim_id_stride) + !r

let fresh_tx_id () =
  if !simulated then salted_id sim_tx_pools
  else Atomic.fetch_and_add tx_counter 1

let fresh_tvar_id () =
  if !simulated then salted_id sim_tvar_pools
  else Atomic.fetch_and_add tvar_counter 1

(* TLS registry.  Registration happens at module initialisation time (each
   STM registers once); save/restore run only under the single-domain
   deterministic scheduler, so a plain list is safe. *)
let tls_entries : ((unit -> Obj.t) * (Obj.t -> unit)) list ref = ref []

let register_tls ~save ~restore = tls_entries := (save, restore) :: !tls_entries

let save_all_tls () =
  Array.of_list (List.map (fun (save, _) -> save ()) !tls_entries)

let restore_all_tls a =
  List.iteri (fun i (_, restore) -> restore a.(i)) !tls_entries
