let clock = Atomic.make 0

let now () =
  if !Runtime.tracing then Runtime.trace_access (Runtime.Read Runtime.clock_pe);
  Atomic.get clock

let tick () =
  if !Runtime.tracing then Runtime.trace_access (Runtime.Write Runtime.clock_pe);
  Atomic.fetch_and_add clock 1 + 1

let reset_for_testing () = Atomic.set clock 0
