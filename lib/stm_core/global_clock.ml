(* Compatibility alias: the clock grew contention policies and moved to
   [Clock]; existing call sites keep the historical name. *)
include Clock
