type reason =
  | Read_locked
  | Read_inconsistent
  | Read_too_new
  | Window_invalid
  | Validation_failed
  | Lock_contention
  | Killed
  | Explicit
  | Injected
  | Poisoned

exception Abort_tx of reason
exception Starvation of string
exception Timeout of string

(* Simulated abrupt domain death ({!Faults} crash injection): engines must
   NOT release locks or clear their registry slot on this exception — the
   whole point is to leave orphaned state behind for {!Recovery} to
   reclaim.  Real code never raises it. *)
exception Crashed

(* The sanitizer's abort-generation bump ({!Txrec.bump_abort_generation}),
   installed by [Sanitizer.enable].  A hook rather than a direct call keeps
   this module free of dependencies; the [Runtime.sanitizer] guard keeps the
   disabled cost at one load. *)
let abort_notifier : (unit -> unit) ref = ref (fun () -> ())

let abort_tx r =
  if !Runtime.sanitizer then !abort_notifier ();
  raise (Abort_tx r)

let reason_to_string = function
  | Read_locked -> "read-locked"
  | Read_inconsistent -> "read-inconsistent"
  | Read_too_new -> "read-too-new"
  | Window_invalid -> "window-invalid"
  | Validation_failed -> "validation-failed"
  | Lock_contention -> "lock-contention"
  | Killed -> "killed"
  | Explicit -> "explicit"
  | Injected -> "injected"
  | Poisoned -> "poisoned"

let reason_index = function
  | Read_locked -> 0
  | Read_inconsistent -> 1
  | Read_too_new -> 2
  | Window_invalid -> 3
  | Validation_failed -> 4
  | Lock_contention -> 5
  | Killed -> 6
  | Explicit -> 7
  | Injected -> 8
  | Poisoned -> 9

let reason_count = 10

let all_reasons =
  [ Read_locked; Read_inconsistent; Read_too_new; Window_invalid;
    Validation_failed; Lock_contention; Killed; Explicit; Injected;
    Poisoned ]
