(* Stamp layout: [version lsl 1] lor [locked bit].  A locked stamp keeps the
   version that was current when the lock was taken, so readers that observe
   a locked stamp still learn the last committed version.

   Every lock knows its protection-element id [pe] so that stamp loads and
   lock transitions can report themselves to the deterministic scheduler's
   access trace (guarded on [Runtime.tracing]; free otherwise). *)

type t = {
  stamp_cell : int Atomic.t;
  mutable owner_id : int;   (* written only by the lock holder *)
  mutable saved : int;      (* stamp to restore on abort, ditto *)
  pe : int;
}

let no_pe = -2

(* Both the stamp cell and the record around it are padded: the stamp is
   CASed by every writer of the location, and [owner_id]/[saved] are
   written on each acquisition — sharing a line with a neighbouring lock
   would couple unrelated locations' commit paths. *)
let create ?(pe = no_pe) () =
  Padding.copy_as_padded
    { stamp_cell = Padding.atomic 0; owner_id = -1; saved = 0; pe }

let pe t = t.pe

let stamp t =
  if !Runtime.tracing then Runtime.trace_access (Runtime.Read t.pe);
  Atomic.get t.stamp_cell

let locked s = s land 1 = 1
let version_of s = s lsr 1

let try_lock t ~owner =
  if !Runtime.tracing then Runtime.trace_access (Runtime.Lock t.pe);
  if !Runtime.fault_injection && Faults.inject_lock_fail () then false
  else
  let s = Atomic.get t.stamp_cell in
  if locked s then false
  else if Atomic.compare_and_set t.stamp_cell s (s lor 1) then begin
    t.owner_id <- owner;
    t.saved <- s;
    if !Runtime.sanitizer then
      Runtime.sanitizer_event
        (Runtime.San_acquire { pe = t.pe; owner; version = s lsr 1 });
    true
  end
  else false

(* Like [try_lock], but returns the observed pre-lock stamp (-1 on
   failure).  Callers that may have their lock stolen (recovery enabled)
   record the returned stamp per write-set entry and release with the
   CAS-based [unlock_restore_from]/[unlock_to_from]: the shared [saved]
   field can be overwritten by a thief's next locker before the victim
   unwinds, so it cannot be trusted for a CAS-based release. *)
let try_lock_save t ~owner =
  if !Runtime.tracing then Runtime.trace_access (Runtime.Lock t.pe);
  if !Runtime.fault_injection && Faults.inject_lock_fail () then -1
  else
  let s = Atomic.get t.stamp_cell in
  if locked s then -1
  else if Atomic.compare_and_set t.stamp_cell s (s lor 1) then begin
    t.owner_id <- owner;
    t.saved <- s;
    if !Runtime.sanitizer then
      Runtime.sanitizer_event
        (Runtime.San_acquire { pe = t.pe; owner; version = s lsr 1 });
    s
  end
  else -1

let owner t = t.owner_id

let owner_opt t =
  let s = Atomic.get t.stamp_cell in
  if locked s then Some t.owner_id else None

let locked_by t ~owner =
  if !Runtime.tracing then Runtime.trace_access (Runtime.Read t.pe);
  let s = Atomic.get t.stamp_cell in
  locked s && t.owner_id = owner

let unlock_restore t =
  if !Runtime.tracing then Runtime.trace_access (Runtime.Lock t.pe);
  if !Runtime.sanitizer then
    Runtime.sanitizer_event
      (Runtime.San_release { pe = t.pe; owner = t.owner_id; version = None });
  Atomic.set t.stamp_cell t.saved

let unlock_to t ~version =
  if !Runtime.tracing then Runtime.trace_access (Runtime.Lock t.pe);
  if !Runtime.sanitizer then
    Runtime.sanitizer_event
      (Runtime.San_release
         { pe = t.pe; owner = t.owner_id; version = Some version });
  Atomic.set t.stamp_cell (version lsl 1)

(* CAS-based releases, used when recovery may steal the lock out from
   under its owner: the release succeeds only if the stamp is still the
   locked image of [saved], i.e. the lock was not stolen.  ABA is
   impossible because stolen locks transition to a strictly larger
   (poisoned) version and versions never decrease. *)
let unlock_restore_from t ~saved =
  if !Runtime.tracing then Runtime.trace_access (Runtime.Lock t.pe);
  let released = Atomic.compare_and_set t.stamp_cell (saved lor 1) saved in
  if released && !Runtime.sanitizer then
    Runtime.sanitizer_event
      (Runtime.San_release { pe = t.pe; owner = t.owner_id; version = None });
  released

let unlock_to_from t ~saved ~version =
  if !Runtime.tracing then Runtime.trace_access (Runtime.Lock t.pe);
  let released =
    Atomic.compare_and_set t.stamp_cell (saved lor 1) (version lsl 1)
  in
  if released && !Runtime.sanitizer then
    Runtime.sanitizer_event
      (Runtime.San_release
         { pe = t.pe; owner = t.owner_id; version = Some version });
  released

(* Recovery-only: transition a lock observed locked (stamp = [observed])
   to unlocked poisoned [version].  The CAS from the exact observed stamp
   is what makes the preceding owner/status reads safe: if the victim
   meanwhile released (or another thief won), the stamp moved and the
   steal fails harmlessly. *)
let steal t ~observed ~victim ~version =
  if !Runtime.tracing then Runtime.trace_access (Runtime.Lock t.pe);
  let stolen =
    locked observed
    && Atomic.compare_and_set t.stamp_cell observed (version lsl 1)
  in
  if stolen && !Runtime.sanitizer then
    Runtime.sanitizer_event
      (Runtime.San_steal { pe = t.pe; victim; version = Some version });
  stolen

let pp ppf t =
  let s = Atomic.get t.stamp_cell in
  Format.fprintf ppf "v%d%s" (version_of s) (if locked s then "/locked" else "")
