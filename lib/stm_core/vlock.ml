(* Stamp layout: [version lsl 1] lor [locked bit].  A locked stamp keeps the
   version that was current when the lock was taken, so readers that observe
   a locked stamp still learn the last committed version.

   Every lock knows its protection-element id [pe] so that stamp loads and
   lock transitions can report themselves to the deterministic scheduler's
   access trace (guarded on [Runtime.tracing]; free otherwise). *)

type t = {
  stamp_cell : int Atomic.t;
  claim : int Atomic.t;     (* recovery-mode holder identity, -1 = none *)
  mutable owner_id : int;   (* written only by the lock holder *)
  mutable saved : int;      (* stamp to restore on abort, ditto *)
  pe : int;
}

let no_pe = -2

(* Both the stamp cell and the record around it are padded: the stamp is
   CASed by every writer of the location, and [owner_id]/[saved] are
   written on each acquisition — sharing a line with a neighbouring lock
   would couple unrelated locations' commit paths. *)
let create ?(pe = no_pe) () =
  Padding.copy_as_padded
    { stamp_cell = Padding.atomic 0;
      claim = Atomic.make (-1);
      owner_id = -1;
      saved = 0;
      pe }

let pe t = t.pe

let stamp t =
  if !Runtime.tracing then Runtime.trace_access (Runtime.Read t.pe);
  Atomic.get t.stamp_cell

let locked s = s land 1 = 1
let version_of s = s lsr 1

(* The acquisition core, shared by [try_lock] and [try_lock_save]:
   returns the observed pre-lock stamp, or -1 on failure.

   [owner_id] is a plain field written only after the winning stamp CAS,
   which is fine for its consumers (self-ownership checks) but means a
   concurrent reader can pair a freshly locked stamp with the *previous*
   owner.  Recovery must never do that — dooming and stealing on a stale
   identity would poison the wrong transaction and take the lock from its
   live holder — so under recovery the acquisition is a two-word protocol:
   the locker first CASes [claim] from -1 to its own id, and only then
   CASes the stamp.  While a claim is held no other recovery-mode locker
   can take the stamp, so a locked stamp always pairs with its holder's
   claim; the claim is cleared only {e after} the stamp transition on
   release (and by the thief after a steal), so the invariant

     locked stamp /\ claim >= 0  ==>  claim = current holder

   holds at every instant.  Recovery reads identity exclusively through
   [holder] (the claim), never through [owner_id]. *)
let acquire_from t ~owner s =
  if Atomic.compare_and_set t.stamp_cell s (s lor 1) then begin
    t.owner_id <- owner;
    t.saved <- s;
    if !Runtime.sanitizer then
      Runtime.sanitizer_event
        (Runtime.San_acquire { pe = t.pe; owner; version = s lsr 1 });
    s
  end
  else -1

let try_lock_aux t ~owner =
  if !Runtime.tracing then Runtime.trace_access (Runtime.Lock t.pe);
  if !Runtime.fault_injection && Faults.inject_lock_fail () then -1
  else
  let s = Atomic.get t.stamp_cell in
  if locked s then -1
  else if not !Runtime.recovery then acquire_from t ~owner s
  else if Atomic.compare_and_set t.claim (-1) owner then begin
    let r = acquire_from t ~owner s in
    (* With the claim held the stamp cannot be locked by anyone else, so
       this back-out is only reachable in mixed-mode runs (a lock acquired
       before recovery was enabled, released concurrently). *)
    if r < 0 then ignore (Atomic.compare_and_set t.claim owner (-1));
    r
  end
  else -1

let try_lock t ~owner = try_lock_aux t ~owner >= 0

(* Like [try_lock], but returns the observed pre-lock stamp (-1 on
   failure).  Callers that may have their lock stolen (recovery enabled)
   record the returned stamp per write-set entry and release with the
   CAS-based [unlock_restore_from]/[unlock_to_from]: the shared [saved]
   field can be overwritten by a thief's next locker before the victim
   unwinds, so it cannot be trusted for a CAS-based release. *)
let try_lock_save t ~owner = try_lock_aux t ~owner

let owner t = t.owner_id

let holder t = Atomic.get t.claim

(* Clear [me]'s claim after the stamp transition of a release.  Only
   called on paths where the caller still held the lock at the stamp
   transition (so the claim is necessarily [me] or already -1); a release
   CAS that failed because the lock was stolen must NOT call this — by
   then the thief owns the handover and a new locker's claim may be in
   the cell.  The cheap read makes the recovery-off case (claim never
   set) free. *)
let clear_claim t ~me =
  if Atomic.get t.claim >= 0 then
    ignore (Atomic.compare_and_set t.claim me (-1))

let owner_opt t =
  let s = Atomic.get t.stamp_cell in
  if locked s then Some t.owner_id else None

let locked_by t ~owner =
  if !Runtime.tracing then Runtime.trace_access (Runtime.Read t.pe);
  let s = Atomic.get t.stamp_cell in
  locked s && t.owner_id = owner

let unlock_restore t =
  if !Runtime.tracing then Runtime.trace_access (Runtime.Lock t.pe);
  if !Runtime.sanitizer then
    Runtime.sanitizer_event
      (Runtime.San_release { pe = t.pe; owner = t.owner_id; version = None });
  let me = t.owner_id in
  Atomic.set t.stamp_cell t.saved;
  clear_claim t ~me

let unlock_to t ~version =
  if !Runtime.tracing then Runtime.trace_access (Runtime.Lock t.pe);
  if !Runtime.sanitizer then
    Runtime.sanitizer_event
      (Runtime.San_release
         { pe = t.pe; owner = t.owner_id; version = Some version });
  let me = t.owner_id in
  Atomic.set t.stamp_cell (version lsl 1);
  clear_claim t ~me

(* CAS-based releases, used when recovery may steal the lock out from
   under its owner: the release succeeds only if the stamp is still the
   locked image of [saved], i.e. the lock was not stolen.  ABA is
   impossible because stolen locks transition to a strictly larger
   (poisoned) version and versions never decrease. *)
let unlock_restore_from t ~saved =
  if !Runtime.tracing then Runtime.trace_access (Runtime.Lock t.pe);
  let me = t.owner_id in
  let released = Atomic.compare_and_set t.stamp_cell (saved lor 1) saved in
  if released then begin
    clear_claim t ~me;
    if !Runtime.sanitizer then
      Runtime.sanitizer_event
        (Runtime.San_release { pe = t.pe; owner = me; version = None })
  end;
  released

let unlock_to_from t ~saved ~version =
  if !Runtime.tracing then Runtime.trace_access (Runtime.Lock t.pe);
  let me = t.owner_id in
  let released =
    Atomic.compare_and_set t.stamp_cell (saved lor 1) (version lsl 1)
  in
  if released then begin
    clear_claim t ~me;
    if !Runtime.sanitizer then
      Runtime.sanitizer_event
        (Runtime.San_release { pe = t.pe; owner = me; version = Some version })
  end;
  released

(* Recovery-only: transition a lock observed locked (stamp = [observed])
   to unlocked poisoned [version].  Two things make the steal sound: the
   [victim] identity comes from the claim cell ([holder]), which under the
   acquisition protocol above can only name the actual current holder of a
   locked stamp; and the CAS from the exact observed stamp means that if
   the victim meanwhile released (or another thief won), the stamp moved
   and the steal fails harmlessly.

   On success the claim is displaced unconditionally and returned.  The
   cell has been continuously occupied since before [observed] was locked
   (a holder's claim clears only after its stamp transition, and a failed
   CAS-release does not clear), so the displaced value is exactly whoever
   held the lock at the instant it was taken.  Normally that is [victim];
   it differs only when the lock was released and re-acquired at the very
   same stamp (a restore/relock ABA) between the thief's reads and this
   CAS — the caller must doom that holder too, since the exact-stamp CAS
   cannot distinguish the two histories. *)
let steal t ~observed ~victim ~version =
  if !Runtime.tracing then Runtime.trace_access (Runtime.Lock t.pe);
  if
    locked observed
    && Atomic.compare_and_set t.stamp_cell observed (version lsl 1)
  then begin
    let displaced = Atomic.exchange t.claim (-1) in
    if !Runtime.sanitizer then
      Runtime.sanitizer_event
        (Runtime.San_steal { pe = t.pe; victim; version = Some version });
    Some displaced
  end
  else None

let pp ppf t =
  let s = Atomic.get t.stamp_cell in
  Format.fprintf ppf "v%d%s" (version_of s) (if locked s then "/locked" else "")
