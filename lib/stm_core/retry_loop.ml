let starvation_msg = "transaction exceeded retry cap"

let run ?cm ~stats f =
  let cm =
    match cm with
    | Some cm -> cm
    | None -> Cm.create ~seed:(Runtime.fresh_tx_id ()) ()
  in
  (* Read the flag once per transaction: a mid-transaction toggle may miss
     this loop, but the flag is only flipped between benchmark phases. *)
  let detailed = Stats.detailed_enabled () in
  let deadline_expired () =
    match !Runtime.tx_timeout_ns with
    | None -> false
    | Some budget -> Mclock.elapsed_ns (Cm.birth_ns cm) > budget
  in
  let timeout () =
    Stats.record_timeout stats;
    raise (Control.Timeout "transaction deadline expired")
  in
  (* One full attempt of [f], bracketed by the fault injector's in-attempt
     flag and fed into the stats.  Returns the commit result or the abort
     reason; any other exception propagates to the caller. *)
  let call_attempt n =
    let t0 = if detailed then Mclock.now_ns () else 0L in
    let fi = !Runtime.fault_injection in
    let san = !Runtime.sanitizer in
    let g0 = if san then Sanitizer.attempt_fence () else 0 in
    if fi then Faults.enter_attempt ();
    match f ~attempt:n with
    | result ->
      if fi then Faults.leave_attempt ();
      if san then Sanitizer.audit_attempt ~before:g0 ~aborted:false;
      Stats.record_commit stats;
      (* The attempt committed and its values are installed: fire the
         record the engine staged (if any) into the write-ahead log.
         Post-outcome is the only safe point — an engine-side append
         could log an attempt that a later validation still aborts. *)
      if !Runtime.durability then Durable.on_commit ();
      if detailed then begin
        Stats.record_commit_latency stats (Mclock.elapsed_ns t0);
        Stats.record_retry_depth stats n
      end;
      Ok result
    | exception Control.Abort_tx reason ->
      if fi then Faults.leave_attempt ();
      if san then Sanitizer.audit_attempt ~before:g0 ~aborted:true;
      if !Runtime.durability then Durable.discard_staged ();
      (* GV5 bumps the clock on aborts (no-op for GV1/GV4): a transaction
         that aborted on a lazily installed future version pulls the clock
         up so its next attempt's read stamp can cover that version. *)
      Clock.on_abort ();
      Stats.record_abort stats reason;
      if detailed then Stats.record_abort_latency stats (Mclock.elapsed_ns t0);
      Error reason
    | exception e ->
      if fi then Faults.leave_attempt ();
      if san then Sanitizer.audit_attempt ~before:g0 ~aborted:false;
      if !Runtime.durability then Durable.discard_staged ();
      raise e
  in
  (* Serial-irrevocable fallback: take the global token, then retry until
     commit.  With the token held no other process can commit (the engines'
     serial gates abort them), so the clock stops advancing, straggler
     locks drain, and fault injection is suppressed — the next attempts
     face strictly less interference until one validates.  Only a deadline
     can stop the loop. *)
  let escalate n =
    Stats.record_fallback stats;
    if not (Runtime.Serial.enter ~giveup:deadline_expired ()) then timeout ();
    Fun.protect ~finally:Runtime.Serial.exit (fun () ->
      let rec go n =
        if deadline_expired () then timeout ();
        match call_attempt n with Ok r -> r | Error _ -> go (n + 1)
      in
      go n)
  in
  let rec attempt n =
    Cm.pre_attempt cm ~attempt:n;
    if deadline_expired () then timeout ();
    if n > !Runtime.retry_cap then begin
      (* Only reachable with a negative cap: a cap exhausted by aborts is
         handled below, before the wait. *)
      Stats.record_starvation stats;
      match !Runtime.starvation_mode with
      | `Raise -> raise (Control.Starvation starvation_msg)
      | `Fallback -> escalate n
    end
    else begin
      (* Park while some other transaction runs serially: our commit would
         be refused anyway, so don't burn an attempt on it. *)
      if Runtime.Serial.active () && not (Runtime.Serial.mine ()) then
        if not (Runtime.Serial.await_clear ~giveup:deadline_expired ()) then
          timeout ();
      match call_attempt n with
      | Ok r -> r
      | Error reason ->
        if n + 1 > !Runtime.retry_cap then begin
          (* The cap is exhausted.  No contention-manager wait here: under
             [`Fallback] the escalating attempt must run immediately (it is
             about to serialise the world; delaying it only lengthens the
             stop), and under [`Raise] the caller wants the exception. *)
          Stats.record_starvation stats;
          match !Runtime.starvation_mode with
          | `Raise -> raise (Control.Starvation starvation_msg)
          | `Fallback -> escalate (n + 1)
        end
        else begin
          Cm.on_abort cm ~attempt:n reason;
          attempt (n + 1)
        end
    end
  in
  let result = attempt 0 in
  Cm.on_commit cm;
  result
