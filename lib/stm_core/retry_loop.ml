let run ~stats f =
  let backoff = Backoff.create ~seed:(Runtime.fresh_tx_id ()) () in
  (* Read the flag once per transaction: a mid-transaction toggle may miss
     this loop, but the flag is only flipped between benchmark phases. *)
  let detailed = Stats.detailed_enabled () in
  let rec attempt n =
    if n > !Runtime.retry_cap then
      raise (Control.Starvation "transaction exceeded retry cap");
    let t0 = if detailed then Mclock.now_ns () else 0L in
    match f ~attempt:n with
    | result ->
      Stats.record_commit stats;
      if detailed then begin
        Stats.record_commit_latency stats (Mclock.elapsed_ns t0);
        Stats.record_retry_depth stats n
      end;
      result
    | exception Control.Abort_tx reason ->
      Stats.record_abort stats reason;
      if detailed then Stats.record_abort_latency stats (Mclock.elapsed_ns t0);
      Backoff.once backoff;
      attempt (n + 1)
  in
  attempt 0
