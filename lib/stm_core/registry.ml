(* In-flight top-level transaction registry (DESIGN.md 5h).

   Every domain that runs transactions while recovery is enabled claims one
   cache-line-padded slot and publishes, per top-level attempt, the root
   transaction id it is about to acquire locks under, together with a
   monotonic heartbeat refreshed at every scheduling point.  A contender
   that finds a lock held by an owner whose slot is dead (the domain
   exited or crashed) or stale (no heartbeat within the lease) may reclaim
   the lock through {!Recovery}.

   The ordering contract that makes reclamation sound: a transaction
   publishes its owner id {e before} acquiring any lock and clears it only
   {e after} releasing them all.  Hence "lock held by an owner with no
   live slot" can only mean the owner finished abnormally (or the table
   saturated, which the sticky [saturated] flag records — absence then
   stops implying death and reclamation degrades to the explicit
   dead/stale slots).

   Dooming: bumping a slot's [generation] past the value published by its
   current occupant marks the occupant poisoned.  A doomed transaction
   that resurrects fails {!poisoned} before installing and aborts instead
   of publishing a half-stolen write set. *)

type slot = {
  domain : int Atomic.t;      (* claiming domain id, -1 = free *)
  owner : int Atomic.t;       (* published root tx id, -1 = idle *)
  dead : bool Atomic.t;       (* domain exited or simulated crash *)
  generation : int Atomic.t;  (* bumped by [doom] *)
  published : int Atomic.t;   (* [generation] observed at last publish *)
  heartbeat : int Atomic.t;   (* Mclock nanoseconds of last refresh *)
}

let capacity = 256

let slots =
  Array.init capacity (fun _ ->
      Padding.copy_as_padded
        { domain = Padding.atomic (-1);
          owner = Padding.atomic (-1);
          dead = Atomic.make false;
          generation = Atomic.make 0;
          published = Atomic.make 0;
          heartbeat = Atomic.make 0 })

(* Sticky: set when a claim ever failed.  While set, the absence of a slot
   stops being evidence of death (a live unregistered owner could exist),
   so [owner_status]/[domain_status] report [Live] for unknown ids. *)
let saturated = Atomic.make false

let now_ns () = Int64.to_int (Mclock.now_ns ())

(* Per-domain claimed slot.  [None] until the first publish; the claim is
   released (and the slot marked dead first, so in-flight orphans stay
   reclaimable) when the domain exits. *)
let my_slot : slot option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let release_slot s =
  Atomic.set s.dead true;
  (* Publish-order: dead must be visible before the slot is freed, and it
     STAYS set on the freed slot — only the next occupant ([claim], or
     [publish] refreshing a kept slot) resets it.  Clearing it here would
     let a contender that matched this slot just before the fields below
     were cleared read [dead = false] plus the old heartbeat and classify
     an exited domain as live, delaying reclamation.  Freeing keeps the
     table bounded across unboundedly many domains. *)
  Atomic.set s.owner (-1);
  Atomic.set s.domain (-1)

let claim () =
  let self = Runtime.current_proc () in
  let rec scan i =
    if i >= capacity then begin
      Atomic.set saturated true;
      None
    end
    else begin
      let s = slots.(i) in
      let d = Atomic.get s.domain in
      if (d = -1 || Atomic.get s.dead)
         && Atomic.compare_and_set s.domain d self
      then begin
        Atomic.set s.owner (-1);
        Atomic.set s.dead false;
        Atomic.set s.heartbeat (now_ns ());
        Some s
      end
      else scan (i + 1)
    end
  in
  match scan 0 with
  | None -> None
  | Some s ->
    Domain.DLS.get my_slot := Some s;
    Domain.at_exit (fun () ->
        match !(Domain.DLS.get my_slot) with
        | Some s ->
          Domain.DLS.get my_slot := None;
          release_slot s
        | None -> ());
    Some s

let current_slot () =
  match !(Domain.DLS.get my_slot) with
  | Some _ as s -> s
  | None -> claim ()

let publish ~owner =
  match current_slot () with
  | None -> ()
  | Some s ->
    Atomic.set s.dead false;
    Atomic.set s.published (Atomic.get s.generation);
    Atomic.set s.heartbeat (now_ns ());
    (* Owner last: once it is visible, every field a contender consults is
       already current. *)
    Atomic.set s.owner owner

let clear () =
  match !(Domain.DLS.get my_slot) with
  | None -> ()
  | Some s -> Atomic.set s.owner (-1)

let mark_crashed () =
  match !(Domain.DLS.get my_slot) with
  | None -> ()
  | Some s -> Atomic.set s.dead true

let heartbeat () =
  match !(Domain.DLS.get my_slot) with
  | None -> ()
  | Some s -> Atomic.set s.heartbeat (now_ns ())

let poisoned () =
  match !(Domain.DLS.get my_slot) with
  | None -> false
  | Some s -> Atomic.get s.generation > Atomic.get s.published

type status = Live | Stale | Dead

let status_name = function Live -> "live" | Stale -> "stale" | Dead -> "dead"

let slot_status ~lease_ns s =
  if Atomic.get s.dead then Dead
  else if now_ns () - Atomic.get s.heartbeat > lease_ns then Stale
  else Live

let find_by f =
  let rec go i =
    if i >= capacity then None
    else begin
      let s = slots.(i) in
      if Atomic.get s.domain >= 0 && f s then Some s else go (i + 1)
    end
  in
  go 0

let owner_status ~lease_ns ~owner =
  match find_by (fun s -> Atomic.get s.owner = owner) with
  | Some s -> slot_status ~lease_ns s
  | None -> if Atomic.get saturated then Live else Dead

let domain_status ~lease_ns ~domain =
  match find_by (fun s -> Atomic.get s.domain = domain) with
  | Some s -> slot_status ~lease_ns s
  | None -> if Atomic.get saturated then Live else Dead

let doom ~owner =
  match find_by (fun s -> Atomic.get s.owner = owner) with
  | None -> false
  | Some s ->
    (* Re-check under no lock: the occupant may have moved on between the
       find and the bump, in which case the bump poisons whoever published
       last — a spurious (safe) abort, re-published clean on retry. *)
    Atomic.incr s.generation;
    Atomic.get s.owner = owner

(* Doom by domain id: used by the serial-token reclaim, whose holder is a
   domain (the token outlives any one transaction id).  Same spurious-
   abort caveat as [doom]. *)
let doom_domain ~domain =
  match find_by (fun s -> Atomic.get s.domain = domain) with
  | None -> false
  | Some s ->
    Atomic.incr s.generation;
    Atomic.get s.domain = domain

let owner_doomed ~owner =
  match find_by (fun s -> Atomic.get s.owner = owner) with
  | None -> false
  | Some s -> Atomic.get s.generation > Atomic.get s.published

let domain_doomed ~domain =
  match find_by (fun s -> Atomic.get s.domain = domain) with
  | None -> false
  | Some s -> Atomic.get s.generation > Atomic.get s.published

let is_saturated () = Atomic.get saturated

let live_count () =
  let n = ref 0 in
  Array.iter
    (fun s ->
      if Atomic.get s.domain >= 0 && Atomic.get s.owner >= 0
         && not (Atomic.get s.dead)
      then incr n)
    slots;
  !n
