/* Monotonic clock for latency histograms and benchmark timing windows.
   CLOCK_MONOTONIC is immune to wall-clock adjustments (NTP slew, manual
   settimeofday), which gettimeofday-based timing is not. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <stdint.h>
#include <time.h>

int64_t stm_mclock_now_ns_native(value unit)
{
  struct timespec ts;
  (void) unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (int64_t) ts.tv_sec * 1000000000LL + (int64_t) ts.tv_nsec;
}

CAMLprim value stm_mclock_now_ns_bytecode(value unit)
{
  return caml_copy_int64(stm_mclock_now_ns_native(unit));
}
