(** Monotonic nanosecond clock ([CLOCK_MONOTONIC] via a C stub).

    Used for the latency histograms of {!Stats} and for benchmark timing
    windows; unlike [Unix.gettimeofday] it cannot jump when the wall clock
    is adjusted, and the external is [@@noalloc] so reading it does not
    disturb the hot path. *)

val now_ns : unit -> int64
(** Nanoseconds from an arbitrary fixed origin; strictly non-decreasing. *)

val elapsed_ns : int64 -> int
(** [elapsed_ns t0] is [now_ns () - t0] as an [int] (53+ bits is ample:
    2^62 ns is ~146 years). *)

val ns_to_ms : int64 -> float

val elapsed_ms : t0:int64 -> t1:int64 -> float
(** [t1 - t0] in milliseconds. *)
