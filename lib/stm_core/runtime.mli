(** Hooks connecting the STM runtime to its execution environment.

    By default transactions run on OCaml domains: the current process id is
    the domain id and scheduling points are no-ops.  The deterministic
    scheduler ({!Schedsim}) overrides these hooks to multiplex many logical
    processes on one domain and to context-switch at every shared-memory
    access, which is what makes exhaustive interleaving exploration
    possible. *)

(** What a scheduling point is about to do to shared state, named by
    protection element (= tvar id, abstract-lock id, or {!clock_pe}).
    [Pure] promises the step touches nothing shared.  Annotations may be
    conservative: claiming an access that does not happen is always safe
    (the explorer merely prunes less), claiming [Pure] for a step with a
    shared effect is not. *)
type access =
  | Pure
  | Read of int
  | Write of int
  | Lock of int  (** acquisition or release of a versioned/abstract lock:
                     treated as a read-modify-write of the element *)

val clock_pe : int
(** Reserved protection-element id of the global version clock. *)

val pp_access : Format.formatter -> access -> unit

val proc_hook : (unit -> int) ref
(** Returns the id of the current logical process.  Default: domain id. *)

val current_proc : unit -> int

val yield_hook : (access -> unit) ref
(** Called by STM implementations immediately before every shared access
    (transactional read, write, lock acquisition, commit), annotated with
    the access about to be performed.  Default: no-op.  The deterministic
    scheduler installs its context switch here. *)

val fault_injection : bool ref
(** Owned by {!Faults}: set while a fault-injection configuration is
    active.  Scheduling points consult it before calling {!fault_hook}, so
    the uninstrumented hot path pays one load and branch. *)

val fault_hook : (unit -> unit) ref
(** The injector {!Faults} installs; invoked at every scheduling point
    while {!fault_injection} is set.  May raise {!Control.Abort_tx}. *)

val recovery : bool ref
(** Owned by {!Recovery}: set while crash-tolerant lock recovery is
    enabled.  Scheduling points consult it before calling
    {!heartbeat_hook}, and the lock paths consult it before attempting an
    orphan steal, so the hot path pays one load and branch while recovery
    is off. *)

val heartbeat_hook : (unit -> unit) ref
(** Refreshes the current domain's {!Registry} heartbeat; installed by
    {!Recovery.enable} and invoked at every scheduling point while
    {!recovery} is set. *)

val serial_reclaim_hook : (unit -> unit) ref
(** Invoked inside the {!Serial} spin loops while {!recovery} is set, so a
    token orphaned by a dead or stale holder is eventually reclaimed;
    installed by {!Recovery.enable}. *)

val durability : bool ref
(** Owned by [Persist] (lib/persist): set while a write-ahead log is open.
    Engines consult it after installing a write set (stage the serialized
    entries with {!Durable.stage}) and {!Retry_loop} consults it after
    every top-level outcome (fire or discard the staged record), so the
    hot path pays one load and branch while durability is off. *)

val schedule_point : unit -> unit
(** Invoke the yield hook with a {!Pure} annotation. *)

val schedule_point_on : access -> unit
(** Invoke the yield hook with the given annotation. *)

val tracing : bool ref
(** When set (by the deterministic scheduler), shared accesses performed by
    the STM machinery report themselves to {!trace_access}.  Call sites
    must guard on this flag so that non-simulated runs pay no allocation. *)

val trace_hook : (access -> unit) ref
(** Receiver of traced accesses; owned by the deterministic scheduler. *)

val trace_access : access -> unit
(** Report one shared access to the trace hook.  Callers are expected to
    check {!tracing} first: [if !Runtime.tracing then Runtime.trace_access a]. *)

val simulated : bool ref
(** Set by the deterministic scheduler while a simulation runs.  Spin-wait
    style delays (contention backoff) degenerate to scheduling points so
    that simulated runs never burn cycles in [cpu_relax] loops. *)

(** One shared-state event observed by the transactional sanitizer
    ({!Sanitizer}).  Lock events carry the owner and the committed version
    seen at the transition; stores and peeks name only the protection
    element (plus, for stores, the lock holder at that instant). *)
type san_event =
  | San_acquire of { pe : int; owner : int; version : int }
  | San_release of { pe : int; owner : int; version : int option }
      (** [Some v]: released to a new version (commit install);
          [None]: restored to the pre-lock stamp, or an abstract lock *)
  | San_unsafe_write of { pe : int; locked_owner : int option }
  | San_peek of { pe : int }
  | San_steal of { pe : int; victim : int; version : int option }
      (** recovery reclaimed a lock held by [victim]; [Some v]: a
          versioned lock stolen to poisoned version [v]; [None]: an
          abstract lock or the serial token *)

val sanitizer : bool ref
(** Owned by {!Sanitizer}: set while the sanitizer is enabled.
    Instrumented sites consult it before building an event, so the
    uninstrumented hot path pays one load and branch and no allocation. *)

val sanitizer_hook : (san_event -> unit) ref
(** The handler {!Sanitizer} installs; default no-op. *)

val sanitizer_event : san_event -> unit
(** Report one event to the sanitizer hook.  Callers are expected to check
    {!sanitizer} first. *)

(** Which global-version-clock algorithm {!Clock} runs (named after the
    TL2 implementation's GV1/GV4/GV5 variants):

    - [GV1]: every writer commit does one [fetch_and_add] — unique write
      versions, maximal clock contention;
    - [GV4] ("pass on failure"): one CAS; a loser adopts the winner's value
      as its own write version instead of retrying, so the clock absorbs at
      most one RMW per {e group} of simultaneous commits;
    - [GV5] ("increment on abort"): writers commit at [now () + 2] without
      touching the clock at all; the clock is bumped lazily on aborts so a
      reader that keeps seeing "too new" versions catches up.

    The flag lives here rather than in {!Clock} so engines and the
    sanitizer can branch on the policy without a dependency cycle.  Switch
    only through {!Clock.set_policy}, and never while transactions are
    live. *)
type clock_policy = GV1 | GV4 | GV5

val clock_policy : clock_policy ref

val retry_cap : int ref
(** Maximum number of times one [atomic] call may retry optimistically.
    What happens at the cap depends on {!starvation_mode}: under the
    default [`Fallback] the transaction escalates to the serial-irrevocable
    mode ({!Serial}) and is guaranteed to commit; under [`Raise] it raises
    {!Control.Starvation}.  Default 64.  The deterministic scheduler
    installs its own cap (and [`Raise]) to prune livelocking schedules. *)

val starvation_mode : [ `Raise | `Fallback ] ref
(** What the retry loop does when {!retry_cap} is exhausted.  [`Fallback]
    (default): enter the serial-irrevocable mode and commit.  [`Raise]:
    raise {!Control.Starvation} — set by the deterministic scheduler, where
    a global mutual-exclusion fallback would defeat exploration. *)

val tx_timeout_ns : int option ref
(** Optional per-transaction deadline (nanoseconds from first attempt).
    When set, a transaction that can neither commit optimistically nor via
    the serial fallback within the budget raises {!Control.Timeout}
    (recorded in its engine's {!Stats}).  Default [None]: no deadline. *)

(** The serial-irrevocable fallback token.  [enter]/[exit] are called by
    {!Retry_loop}; engines consult [commit_allowed] in their commit (or,
    for boosting, lock-acquisition) paths and abort with
    {!Control.Killed} when another process holds the token. *)
module Serial : sig
  val active : unit -> bool
  (** Some process holds the token. *)

  val mine : unit -> bool
  (** The current process holds the token. *)

  val commit_allowed : unit -> bool
  (** No token holder, or the holder is the current process. *)

  val enter : ?giveup:(unit -> bool) -> unit -> bool
  (** Spin until the token is acquired ([true]) or [giveup] returns [true]
      ([false]).  Under {!simulated} the spin yields scheduling points. *)

  val exit : unit -> unit
  (** Release the token if held by the current process. *)

  val holder_id : unit -> int
  (** Current token holder's process id, or -1 when free. *)

  val force_clear : expected:int -> bool
  (** Release a token held by process [expected] on its behalf (orphan
      reclamation); [false] if the holder changed in the meantime.  Only
      {!Recovery} may call this, and only for a holder whose registry slot
      is dead or stale.  CAS-based, so it cannot race with a resurrected
      holder's own [exit]. *)

  val await_clear : ?giveup:(unit -> bool) -> unit -> bool
  (** Park while another process holds the token; [true] once clear (or if
      the current process is the holder), [false] if [giveup] fired. *)
end

val fresh_tx_id : unit -> int
(** Globally unique transaction identifiers. *)

val fresh_tvar_id : unit -> int
(** Globally unique tvar / protection-element identifiers. *)

val reset_sim_ids : unit -> unit
(** Reset the per-process id pools used while {!simulated} is set.  Called
    by the deterministic scheduler at the start of every run so that ids
    are a deterministic function of (process, allocation index) — a
    requirement for partial-order reduction: independent steps must
    allocate the same ids in either execution order. *)

(** Thread-local-state registry.  Every STM registers the save/restore pair
    for its "current transaction" slot; the deterministic scheduler snapshots
    all slots when context-switching between logical processes. *)

val register_tls : save:(unit -> Obj.t) -> restore:(Obj.t -> unit) -> unit
val save_all_tls : unit -> Obj.t array
val restore_all_tls : Obj.t array -> unit
