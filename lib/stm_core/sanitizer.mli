(** Txsan: the transactional sanitizer.

    A dynamic checker of the discipline the STM engines and their clients
    must follow for the paper's guarantees to hold.  Enabled with
    {!enable} (and advertised through {!Runtime.sanitizer}), it receives:

    - lock-transition, non-transactional-store and peek events from the
      instrumented {!Vlock}, {!Tvar} and boosting abstract locks (via
      {!Runtime.sanitizer_event});
    - read/commit/lifecycle callbacks from the four engines;
    - an abort audit from {!Retry_loop} around every attempt.

    {2 Check catalogue}

    Violations — states a correct engine and disciplined client code can
    never produce:

    - [Lock_imbalance]: a versioned or abstract lock acquired while held,
      or released while free / by a non-holder;
    - [Version_regress]: a lock's committed version moved backwards
      (acquired below, or unlocked to at-or-below, the highest version the
      sanitizer has seen for that element);
    - [Unsafe_write_race]: [Tvar.unsafe_write] outside a commit's install
      phase while transactions are live anywhere — the single-domain
      initialisation escape hatch used concurrently;
    - [Peek_escape]: [Tvar.peek] while a transaction is live on another
      logical process (escape reads can be torn);
    - [Commit_stale]: a writing commit serialising at tick [wv] whose read
      set contains an unlocked entry with a version that changed since the
      read but is no newer than [wv] — proof the engine's validation was
      skipped or wrong (interference after a sound validation necessarily
      carries a tick beyond [wv] and is skipped, so this cannot
      false-positive on a correct engine);
    - [Abort_swallowed]: a {!Control.abort_tx} was raised during an
      attempt but never reached the retry loop (a catch-all handler in the
      transaction body ate it), detected with a per-domain abort
      generation counter ({!Txrec.abort_generation});
    - [Bad_steal]: recovery stole a lock from an owner that is still
      live — neither crashed, nor dead/stale in the {!Registry}, nor
      doomed.  A correct {!Recovery} dooms the victim before the steal, so
      a stale victim resuming its heartbeat cannot false-positive here.

    Events that are {e not} violations: in sanitizer mode every
    transactional read revalidates the full read set (strict opacity), and
    a failed revalidation aborts the transaction at the read — counted in
    [checks.zombie_aborts] and in the engine's normal abort statistics,
    because correct engines are allowed to run zombies as long as commit
    validation catches them.

    All checks are suppressed while {!Runtime.simulated} is set: the
    deterministic scheduler's evaluator closures peek mid-schedule by
    design, and its kills unwind transactions at arbitrary points.

    {2 Overhead model}

    With the sanitizer off every instrumented site costs one load and
    branch ([Runtime.sanitizer]).  Enabled, lock transitions, stores and
    peeks each take a global mutex; transactional reads additionally
    revalidate the whole read set, making reads O(read-set size) — the
    usual sanitizer regime of roughly an order of magnitude on read-heavy
    transactions.  Compare against the committed BENCH_6a baseline, never
    against numbers taken with the sanitizer on (see EXPERIMENTS.md). *)

type kind =
  | Lock_imbalance
  | Version_regress
  | Unsafe_write_race
  | Peek_escape
  | Commit_stale
  | Abort_swallowed
  | Bad_steal

type violation = {
  v_kind : kind;
  v_pe : int;  (** protection element, or -1 when not tied to one *)
  v_proc : int;  (** logical process that triggered the check *)
  v_owner : int;  (** owner / transaction id involved, or -1 *)
  v_detail : string;
}

(** Work performed, for the JSON report's [sanitizer.checks] object and
    for asserting in tests that the checks actually ran. *)
type checks = {
  lock_transitions : int;
  reads_validated : int;
  commits_checked : int;
  unsafe_writes_checked : int;
  peeks_checked : int;
  attempts_audited : int;
  zombie_aborts : int;  (** strict-opacity aborts issued at reads *)
  steals_checked : int;  (** recovery steal events audited *)
}

val enable : unit -> unit
(** Install the event handler and the abort notifier and set
    {!Runtime.sanitizer}.  Does not clear previously recorded state; call
    {!reset} for a fresh run. *)

val disable : unit -> unit
(** Clear {!Runtime.sanitizer}; recorded violations are kept. *)

val enabled : unit -> bool

val reset : unit -> unit
(** Drop all recorded violations, counters and internal tables (lock and
    live-transaction state reseed lazily — a release of an unseen lock is
    treated as benign cold start, never flagged). *)

val violations : unit -> violation list
(** Recorded violations, oldest first.  At most 256 full records are
    kept; {!violation_count} and {!counts_by_kind} keep counting. *)

val violation_count : unit -> int
val counts_by_kind : unit -> (kind * int) list
val all_kinds : kind list
val kind_name : kind -> string
val checks : unit -> checks
val pp_violation : Format.formatter -> violation -> unit

(** {2 Engine-facing hooks}

    Engines guard every call on [!Runtime.sanitizer] so the disabled cost
    stays one load and branch. *)

val tx_begin : owner:int -> unit
(** A top-level attempt with lock-owner id [owner] starts on the current
    logical process.  Must be paired with {!tx_end} on every exit path. *)

val tx_end : owner:int -> unit

val tx_crashed : owner:int -> unit
(** The attempt owning [owner] crashed (simulated, {!Control.Crashed})
    while possibly holding locks: it stops counting as live, and steals
    against it are accepted even before its registry slot goes stale. *)

val on_tx_read : validate:(unit -> bool) -> unit
(** Called after a transactional read was tracked; [validate] runs the
    engine's own full read-set revalidation.  Aborts with
    [Read_inconsistent] (counted as a zombie abort, not a violation) when
    it fails. *)

val on_commit : owner:int -> wv:int -> ((Rwsets.rentry -> unit) -> unit) -> unit
(** Called by a writing commit after the engine validated its read set and
    ticked the clock to [wv], while the write locks are still held and
    before installing.  The third argument iterates the commit's tracked
    read entries; stale ones (see [Commit_stale] above) are reported. *)

(** {2 Retry-loop-facing attempt audit} *)

val attempt_fence : unit -> int
(** The abort generation before an attempt starts. *)

val audit_attempt : before:int -> aborted:bool -> unit
(** Audit one finished attempt: with the fence [before] taken at its
    start and whether it ended in an [Abort_tx] reaching the loop, any
    additional generation movement is an abort swallowed inside the body.
    Restores the generation to [before] so enclosing loops audit only
    their own attempts. *)
