(** Pluggable contention management for the retry loop.

    A contention manager decides how an aborted attempt waits before
    retrying.  It is advisory: progress never depends on the policy,
    because {!Retry_loop} escalates to the serial-irrevocable fallback
    ({!Runtime.Serial}) when {!Runtime.retry_cap} is exhausted. *)

type policy =
  | Backoff    (** randomised exponential backoff (default) *)
  | Karma      (** accumulated aborts shorten the wait, so starving
                   transactions retry aggressively *)
  | Timestamp  (** linear window growth; the transaction keeps its original
                   birth timestamp for age/deadline accounting *)

val policy_name : policy -> string
val policy_of_string : string -> policy
(** Case-insensitive; raises [Invalid_argument] on unknown names. *)

val all_policies : policy list

val set_policy : policy -> unit
(** Set the process-wide default policy used when {!Retry_loop} constructs
    the manager itself (the benchmark CLIs' [--cm]). *)

val current_policy : unit -> policy

type t
(** Per-transaction state: backoff window, accumulated priority, birth
    timestamp. *)

val create : ?policy:policy -> ?seed:int -> unit -> t
(** [policy] defaults to {!current_policy}. *)

val policy : t -> policy

val pre_attempt : t -> attempt:int -> unit
(** Called before every attempt; attempt 0 stamps the birth time. *)

val on_abort : t -> attempt:int -> Control.reason -> unit
(** Called after attempt [attempt] aborted; performs the policy's wait. *)

val on_commit : t -> unit
(** Called after a successful commit; resets window and priority so the
    instance can be reused. *)

(** {1 Introspection (tests, diagnostics)} *)

val window : t -> int
val priority : t -> int
val birth_ns : t -> int64
