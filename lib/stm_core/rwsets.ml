type rentry = {
  r_lock : Vlock.t;
  r_seen : int;
  r_pe : int;
}

let dummy_rentry = { r_lock = Vlock.create (); r_seen = 0; r_pe = -1 }

let rentry_valid ~owner (e : rentry) =
  let s = Vlock.stamp e.r_lock in
  if s = e.r_seen then true
  else
    (* The stamp changed; still fine if it is our own write lock over the
       version we observed (stamp = seen lor 1 set by our try_lock). *)
    Vlock.locked s
    && Vlock.owner e.r_lock = owner
    && Vlock.version_of s = Vlock.version_of e.r_seen

module Rset = struct
  type t = rentry Vec.t

  let create () = Vec.create ~dummy:dummy_rentry ()

  let validate t ~owner =
    if !Runtime.fault_injection && Faults.inject_validation_fail () then false
    else Vec.for_all (rentry_valid ~owner) t

  let validate_upto t ~owner ~limit =
    Vec.for_all
      (fun e -> Vlock.version_of e.r_seen <= limit && rentry_valid ~owner e)
      t

  let mem_pe t pe = Vec.exists (fun e -> e.r_pe = pe) t
end

(* A write entry erases the element type of its tvar.  [find] recovers the
   pending value with a cast that is safe because tvar ids are unique: equal
   ids imply the same tvar, hence the same type parameter.  This is the
   standard heterogeneous-write-set technique (cf. kcas); the cast is
   confined to this module. *)
type wentry =
  | W : { tv : 'a Tvar.t; mutable pending : 'a; mutable locked : bool } -> wentry

let wentry_pe (W e) = e.tv.Tvar.id
let wentry_lock (W e) = e.tv.Tvar.lock

let dummy_wentry = W { tv = Tvar.make 0; pending = 0; locked = false }

module Wset = struct
  type t = { entries : wentry Vec.t; mutable sorted : bool }

  let create () = { entries = Vec.create ~dummy:dummy_wentry (); sorted = true }

  let clear t =
    Vec.clear t.entries;
    t.sorted <- true

  let is_empty t = Vec.is_empty t.entries
  let size t = Vec.length t.entries

  let find_entry t pe = Vec.find_opt (fun e -> wentry_pe e = pe) t.entries

  let find (type a) t (tv : a Tvar.t) : a option =
    match find_entry t tv.Tvar.id with
    | None -> None
    | Some (W e) -> Some (Obj.magic e.pending : a)

  let mem_pe t pe = Option.is_some (find_entry t pe)

  let add (type a) t (tv : a Tvar.t) (v : a) =
    match find_entry t tv.Tvar.id with
    | Some (W e) ->
      e.pending <- Obj.magic (v : a);
      false
    | None ->
      Vec.push t.entries (W { tv; pending = v; locked = false });
      t.sorted <- false;
      true

  let iter_pes t f = Vec.iter (fun e -> f (wentry_pe e)) t.entries

  let ensure_sorted t =
    if not t.sorted then begin
      Vec.sort (fun a b -> compare (wentry_pe a) (wentry_pe b)) t.entries;
      t.sorted <- true
    end

  let unlock_all_restore t =
    Vec.iter
      (fun (W e) ->
        if e.locked then begin
          Vlock.unlock_restore e.tv.Tvar.lock;
          e.locked <- false
        end)
      t.entries

  let lock_all t ~owner =
    ensure_sorted t;
    let ok = ref true in
    let n = Vec.length t.entries in
    let i = ref 0 in
    while !ok && !i < n do
      let (W e) = Vec.get t.entries !i in
      if not e.locked then begin
        Runtime.schedule_point_on (Runtime.Lock (wentry_pe (W e)));
        if Vlock.try_lock e.tv.Tvar.lock ~owner then e.locked <- true
        else ok := false
      end;
      incr i
    done;
    if not !ok then unlock_all_restore t;
    !ok

  let lock_one t tv ~owner =
    match find_entry t (Tvar.id tv) with
    | None -> invalid_arg "Wset.lock_one: no entry for tvar"
    | Some (W e) ->
      if e.locked then true
      else begin
        Runtime.schedule_point_on (Runtime.Lock (wentry_pe (W e)));
        if Vlock.try_lock e.tv.Tvar.lock ~owner then begin
          e.locked <- true;
          true
        end
        else false
      end

  (* Highest committed version among the held locks.  A locked stamp keeps
     the pre-lock version, so this is exactly the largest version any of
     these locations has ever published — the GV5 floor ([Clock.tick]),
     which keeps per-location versions strictly increasing even though GV5
     does not advance the clock at commit. *)
  let max_version t =
    let top = ref 0 in
    Vec.iter
      (fun (W e) ->
        let v = Vlock.version_of (Vlock.stamp e.tv.Tvar.lock) in
        if v > !top then top := v)
      t.entries;
    !top

  let install_and_unlock t ~wv =
    Vec.iter
      (fun (W e) ->
        assert e.locked;
        Tvar.unsafe_write e.tv e.pending;
        Vlock.unlock_to e.tv.Tvar.lock ~version:wv;
        e.locked <- false)
      t.entries

  let validate_no_foreign_lock t ~owner =
    Vec.for_all
      (fun (W e) ->
        let lock = e.tv.Tvar.lock in
        let s = Vlock.stamp lock in
        (not (Vlock.locked s)) || Vlock.owner lock = owner)
      t.entries
end
