[@@@txlint.allow "obj-magic"
    "the wset existential (W) erases entry element types; every cast \
     re-attaches a type witnessed by the entry's own tvar"]

type rentry = {
  r_lock : Vlock.t;
  r_seen : int;
  r_pe : int;
}

let dummy_rentry = { r_lock = Vlock.create (); r_seen = 0; r_pe = -1 }

let rentry_valid ~owner (e : rentry) =
  let s = Vlock.stamp e.r_lock in
  if s = e.r_seen then true
  else
    (* The stamp changed; still fine if it is our own write lock over the
       version we observed (stamp = seen lor 1 set by our try_lock). *)
    Vlock.locked s
    && Vlock.owner e.r_lock = owner
    && Vlock.version_of s = Vlock.version_of e.r_seen

module Rset = struct
  (* [validated_upto] is the incremental-validation watermark: every entry
     below it passed the last successful validation while the owning
     transaction's validity interval [rv] was unchanged.  While [rv] stays
     put, a prefix entry invalidated *after* that validation can only have
     been overwritten by a commit whose version is > rv (version clocks
     are monotonic and tick past the value the prefix was validated
     against), so the values the transaction already returned still form a
     consistent snapshot at [rv] — re-checking the prefix would only
     detect doom earlier, never a safety violation.  Hence [validate_new]
     checks the suffix only; interval extension and commit, where [rv]
     effectively moves, use the full-scan [validate]. *)
  type t = {
    entries : rentry Vec.t;
    mutable validated_upto : int;
    mutable last_scan : int;
  }

  let create () =
    { entries = Vec.create ~dummy:dummy_rentry ();
      validated_upto = 0;
      last_scan = 0 }

  let length t = Vec.length t.entries
  let is_empty t = Vec.is_empty t.entries
  let validated_upto t = t.validated_upto
  let last_scan t = t.last_scan

  let clear t =
    Vec.clear t.entries;
    t.validated_upto <- 0;
    t.last_scan <- 0

  let push t e = Vec.push t.entries e
  let iter f t = Vec.iter f t.entries
  let mem_pe t pe = Vec.exists (fun e -> e.r_pe = pe) t.entries

  (* Appending leaves [dst]'s watermark alone: the new entries land in the
     unvalidated suffix, exactly where incremental validation looks. *)
  let append_into ~src ~dst = Vec.append_into ~src:src.entries ~dst:dst.entries

  (* Every validation entry point draws from the same injection hook, so
     chaos runs exercise incremental and bounded validation failures too. *)
  let injected_fail () =
    !Runtime.fault_injection && Faults.inject_validation_fail ()

  let validate_from t ~owner ~from =
    let n = Vec.length t.entries in
    t.last_scan <- n - from;
    let rec go i =
      i >= n || (rentry_valid ~owner (Vec.get t.entries i) && go (i + 1))
    in
    let ok = go from in
    if ok then t.validated_upto <- n;
    ok

  let validate t ~owner =
    if injected_fail () then false else validate_from t ~owner ~from:0

  let validate_new t ~owner =
    if injected_fail () then false
    else validate_from t ~owner ~from:t.validated_upto

  let validate_upto t ~owner ~limit =
    if injected_fail () then false
    else begin
      t.last_scan <- Vec.length t.entries;
      let ok =
        Vec.for_all
          (fun e -> Vlock.version_of e.r_seen <= limit && rentry_valid ~owner e)
          t.entries
      in
      if ok then t.validated_upto <- Vec.length t.entries;
      ok
    end

  (* Early release: drop every observation of [pe].  Filtering preserves
     order, so the surviving prefix of the old validated prefix is still a
     prefix — the watermark just shrinks by the number of validated
     entries dropped. *)
  let filter_pe t ~pe =
    let wm = t.validated_upto in
    let dropped_below = ref 0 in
    for i = 0 to wm - 1 do
      if (Vec.get t.entries i).r_pe = pe then incr dropped_below
    done;
    let dropped = Vec.filter_in_place (fun e -> e.r_pe <> pe) t.entries in
    t.validated_upto <- wm - !dropped_below;
    dropped
end

(* A write entry erases the element type of its tvar.  [find] recovers the
   pending value with a cast that is safe because tvar ids are unique: equal
   ids imply the same tvar, hence the same type parameter.  This is the
   standard heterogeneous-write-set technique (cf. kcas); the cast is
   confined to this module. *)
type wentry =
  | W : {
      tv : 'a Tvar.t;
      mutable pending : 'a;
      mutable locked : bool;
      (* Pre-lock stamp observed by our own try_lock, recorded per entry:
         under recovery the lock's shared [saved] field can already belong
         to a thief's next locker by the time we unwind, so CAS-based
         releases must work from this private copy. *)
      mutable w_saved : int;
    }
      -> wentry

let wentry_pe (W e) = e.tv.Tvar.id
let wentry_lock (W e) = e.tv.Tvar.lock

let dummy_wentry = W { tv = Tvar.make 0; pending = 0; locked = false; w_saved = 0 }

module Wset = struct
  (* Lookup is O(1) in the common cases: a per-set summary word answers
     the read-of-unwritten-location miss with one load and a branch, small
     sets (below [small_threshold]) fall back to a linear scan of the
     entry vector, and larger sets carry an open-addressing hash table
     mapping tvar id -> entry slot (linear probing, power-of-two capacity,
     load factor <= 1/2).  The table needs no per-entry deletion: entries
     only leave a write set wholesale through [clear], which just marks
     the table inactive for rebuild on the next threshold crossing. *)
  let small_threshold = 8

  type t = {
    entries : wentry Vec.t;
    mutable sorted : bool;
    mutable summary : int;      (* membership bloom word over tvar ids *)
    mutable index : int array;  (* open addressing: entry slot, or -1 *)
    mutable indexed : bool;     (* [index] reflects [entries] *)
  }

  let create () =
    { entries = Vec.create ~dummy:dummy_wentry ();
      sorted = true;
      summary = 0;
      index = [||];
      indexed = false }

  let clear t =
    Vec.clear t.entries;
    t.sorted <- true;
    t.summary <- 0;
    t.indexed <- false

  let is_empty t = Vec.is_empty t.entries
  let size t = Vec.length t.entries

  (* Bit [pe land 63], folded into [0, 62]: [1 lsl 63] is 0 on 63-bit
     ints, and a zero bit would make the summary falsely report absence. *)
  let summary_bit pe =
    let b = pe land 63 in
    1 lsl (b - ((b lsr 5) land 1))

  (* Fibonacci-style multiplicative hash; the low bits of [pe * odd] are a
     bijection mod the power-of-two capacity, so sequential tvar ids
     spread without clustering. *)
  let probe_start pe mask = pe * 0x9E3779B1 land mask

  let index_insert t pe slot =
    let mask = Array.length t.index - 1 in
    let i = ref (probe_start pe mask) in
    while t.index.(!i) >= 0 do
      i := (!i + 1) land mask
    done;
    t.index.(!i) <- slot

  let rebuild_index t cap =
    if Array.length t.index < cap then t.index <- Array.make cap (-1)
    else Array.fill t.index 0 (Array.length t.index) (-1);
    t.indexed <- true;
    Vec.iteri (fun slot e -> index_insert t (wentry_pe e) slot) t.entries

  (* Entry slot of [pe], or -1.  The probe terminates because the table
     keeps load factor <= 1/2, so an empty slot is always reachable. *)
  let find_slot t pe =
    if t.summary land summary_bit pe = 0 then -1
    else if t.indexed then begin
      let mask = Array.length t.index - 1 in
      let rec probe i =
        let s = t.index.(i) in
        if s < 0 then -1
        else if wentry_pe (Vec.get t.entries s) = pe then s
        else probe ((i + 1) land mask)
      in
      probe (probe_start pe mask)
    end
    else begin
      let n = Vec.length t.entries in
      let rec scan i =
        if i >= n then -1
        else if wentry_pe (Vec.get t.entries i) = pe then i
        else scan (i + 1)
      in
      scan 0
    end

  let find_entry t pe =
    match find_slot t pe with
    | -1 -> None
    | s -> Some (Vec.get t.entries s)

  let find (type a) t (tv : a Tvar.t) : a option =
    match find_slot t tv.Tvar.id with
    | -1 -> None
    | s ->
      let (W e) = Vec.get t.entries s in
      Some (Obj.magic e.pending : a)

  let mem_pe t pe = find_slot t pe >= 0

  let add (type a) t (tv : a Tvar.t) (v : a) =
    let pe = tv.Tvar.id in
    match find_slot t pe with
    | s when s >= 0 ->
      let (W e) = Vec.get t.entries s in
      e.pending <- Obj.magic (v : a);
      false
    | _ ->
      let slot = Vec.length t.entries in
      Vec.push t.entries (W { tv; pending = v; locked = false; w_saved = 0 });
      t.summary <- t.summary lor summary_bit pe;
      t.sorted <- false;
      let n = slot + 1 in
      if t.indexed then begin
        if 2 * n > Array.length t.index then
          rebuild_index t (2 * Array.length t.index)
        else index_insert t pe slot
      end
      else if n >= small_threshold then rebuild_index t (max 32 (2 * n));
      true

  let iter_pes t f = Vec.iter (fun e -> f (wentry_pe e)) t.entries

  let ensure_sorted t =
    if not t.sorted then begin
      Vec.sort (fun a b -> compare (wentry_pe a) (wentry_pe b)) t.entries;
      t.sorted <- true;
      (* Sorting permutes entry slots, so the id -> slot table is stale. *)
      if t.indexed then rebuild_index t (Array.length t.index)
    end

  let unlock_all_restore t =
    Vec.iter
      (fun (W e) ->
        if e.locked then begin
          if !Runtime.recovery then
            (* CAS-based: fails silently if a thief already took the lock;
               the stamp is then no longer ours to restore. *)
            ignore (Vlock.unlock_restore_from e.tv.Tvar.lock ~saved:e.w_saved)
          else Vlock.unlock_restore e.tv.Tvar.lock;
          e.locked <- false
        end)
      t.entries

  (* One acquisition attempt for [e]'s lock, with a single orphan-steal
     retry: if the lock is held by a dead/stale owner, reclaim it and try
     once more. *)
  let try_lock_wentry (W e) ~owner =
    let lock = e.tv.Tvar.lock in
    let attempt () =
      let s =
        (Vlock.try_lock_save lock
           ~owner
         [@txlint.allow "lock-release"
             "wentry locks are tracked (e.locked / w_saved); \
              unlock_all_restore and install_and_unlock release them on \
              every commit/abort path, and a crash must leave them \
              orphaned for recovery"])
      in
      s >= 0
      && begin
           e.w_saved <- s;
           e.locked <- true;
           true
         end
    in
    attempt ()
    || (!Runtime.recovery && Recovery.try_steal_vlock lock && attempt ())

  let lock_all t ~owner =
    ensure_sorted t;
    let ok = ref true in
    let n = Vec.length t.entries in
    let i = ref 0 in
    while !ok && !i < n do
      let (W e) = Vec.get t.entries !i in
      if not e.locked then begin
        Runtime.schedule_point_on (Runtime.Lock (wentry_pe (W e)));
        if not (try_lock_wentry (W e) ~owner) then ok := false
      end;
      incr i
    done;
    if not !ok then unlock_all_restore t;
    !ok

  let lock_one t tv ~owner =
    match find_entry t (Tvar.id tv) with
    | None -> invalid_arg "Wset.lock_one: no entry for tvar"
    | Some (W e) ->
      e.locked
      || begin
           Runtime.schedule_point_on (Runtime.Lock (wentry_pe (W e)));
           try_lock_wentry (W e) ~owner
         end

  (* Crash path: the domain "dies" holding its locks, so the entries must
     forget them without releasing — the orphaned locks are exactly what
     recovery reclaims.  Clearing [locked] keeps scratch-set reuse from
     releasing a lock the crashed attempt still notionally holds. *)
  let forget_locks t = Vec.iter (fun (W e) -> e.locked <- false) t.entries

  (* Highest committed version among the held locks.  A locked stamp keeps
     the pre-lock version, so this is exactly the largest version any of
     these locations has ever published — the GV5 floor ([Clock.tick]),
     which keeps per-location versions strictly increasing even though GV5
     does not advance the clock at commit. *)
  let max_version t =
    let top = ref 0 in
    Vec.iter
      (fun (W e) ->
        let v = Vlock.version_of (Vlock.stamp e.tv.Tvar.lock) in
        if v > !top then top := v)
      t.entries;
    !top

  let install_and_unlock t ~wv =
    let stolen = ref false in
    Vec.iter
      (fun (W e) ->
        assert e.locked;
        if !Runtime.recovery then begin
          (* A thief may take this lock mid-install (lease expiry under
             extreme delay).  The stamp pre-check and the content write
             below are NOT atomic: a steal landing between them still
             clobbers the freshly stolen location.  That residual window
             is inherent to lease-based reclamation (DESIGN.md 5h) — the
             pre-check narrows it from the whole install loop to a couple
             of instructions, the poisoned version the thief minted means
             readers treat the location as "too new" and re-read rather
             than validate a torn value, and the failed release CAS below
             detects the steal after the fact.  What IS guaranteed is
             that a stolen lock is never unlocked out from under its new
             owner (both releases go through an exact-stamp CAS), and
             that a detected steal never turns into a silently-reported
             full commit. *)
          if Vlock.stamp e.tv.Tvar.lock = e.w_saved lor 1 then begin
            (Tvar.unsafe_write e.tv e.pending
           [@txlint.allow "stm-escape"
               "commit-time install: the write lock is held and the \
                version stamp advances right after"]);
            if
              not
                (Vlock.unlock_to_from e.tv.Tvar.lock ~saved:e.w_saved
                   ~version:wv)
            then stolen := true
          end
          else stolen := true
        end
        else begin
          (Tvar.unsafe_write e.tv e.pending
           [@txlint.allow "stm-escape"
               "commit-time install: the write lock is held and the \
                version stamp advances right after"]);
          Vlock.unlock_to e.tv.Tvar.lock ~version:wv
        end;
        e.locked <- false)
      t.entries;
    (* A stolen entry means part of the write set is published and part is
       not.  Never report that as a successful commit: finish the loop
       first (releasing every lock still held, so the abort unwinds
       cleanly), then count the event and abort [Poisoned].  The thief's
       doom of our registry slot normally catches this earlier, at
       [Recovery.check_poisoned] on commit entry — this is the backstop
       for steals that land mid-install.  The entries already published
       stay published (they carry the commit version and consistent
       values; undoing them is impossible once their locks are gone), so
       the history records a partial install flagged by the
       [poisoned_commits] counter rather than a silent success. *)
    if !stolen then begin
      Stats.record_poisoned_commit ();
      Control.abort_tx Control.Poisoned
    end

  (* Serialize the entries of registered persistent tvars.  Engines call
     this right after [install_and_unlock] (guarded on
     [Runtime.durability]): [pending] is attempt-private, so it stays
     valid after the locks are gone, and capturing post-install keeps the
     lock-holding window unchanged.  A [Poisoned] partial install aborts
     above and never reaches this point, so a WAL record always describes
     a fully published write set. *)
  let capture_durable t =
    let acc = ref [] in
    Vec.iter
      (fun (W e) ->
        match Durable.encoder_for e.tv.Tvar.id with
        | None -> ()
        | Some (pid, enc) -> acc := (pid, enc (Obj.repr e.pending)) :: !acc)
      t.entries;
    !acc

  let validate_no_foreign_lock t ~owner =
    Vec.for_all
      (fun (W e) ->
        let lock = e.tv.Tvar.lock in
        let s = Vlock.stamp lock in
        (not (Vlock.locked s)) || Vlock.owner lock = owner)
      t.entries
end
