(* Deterministic fault injection.

   A single seeded xorshift PRNG decides, at every instrumented point,
   whether to perturb the execution: scheduling points may delay or
   spuriously abort the attempt, versioned-lock acquisitions may be refused
   and read-set validations may be failed.  Under the deterministic
   scheduler a run is single-domain, so for a fixed (seed, schedule) the
   perturbations are reproducible; across real domains the draws interleave
   nondeterministically, which is what a chaos stress wants anyway.

   Injection is confined to transaction attempts: a per-process flag set by
   {!Retry_loop} around each attempt keeps faults out of contention-manager
   waits (where an [Abort_tx] would escape the retry loop) and out of
   non-transactional code.  It is also suppressed while the serial
   fallback token is held, so an escalated transaction stays irrevocable
   and the no-starvation guarantee survives arbitrary fault rates. *)

type config = {
  seed : int;
  spurious_abort : float;   (* per scheduling point *)
  lock_fail : float;        (* per versioned-lock acquisition *)
  validation_fail : float;  (* per read-set validation *)
  delay : float;            (* per scheduling point *)
  max_delay_spins : int;
  crash : float;            (* simulated domain crash, per scheduling point *)
  user_raise : float;       (* foreign exception, per scheduling point *)
  fsync_fail : float;       (* per WAL fsync: report failure, skip the sync *)
  short_write : float;      (* per WAL flush: write a prefix, poison the log *)
}

let default =
  { seed = 1; spurious_abort = 0.0; lock_fail = 0.0; validation_fail = 0.0;
    delay = 0.0; max_delay_spins = 64; crash = 0.0; user_raise = 0.0;
    fsync_fail = 0.0; short_write = 0.0 }

let to_string c =
  Printf.sprintf
    "seed=%d,abort=%g,lock=%g,validate=%g,delay=%g,spins=%d,crash=%g,raise=%g,fsync=%g,shortw=%g"
    c.seed c.spurious_abort c.lock_fail c.validation_fail c.delay
    c.max_delay_spins c.crash c.user_raise c.fsync_fail c.short_write

let parse s =
  let rate k v =
    match float_of_string_opt v with
    | Some f when f >= 0.0 && f <= 1.0 -> f
    | _ -> invalid_arg (Printf.sprintf "Faults.parse: %s=%s (want 0..1)" k v)
  in
  let int_field k v =
    match int_of_string_opt v with
    | Some n -> n
    | None -> invalid_arg (Printf.sprintf "Faults.parse: %s=%s (want int)" k v)
  in
  List.fold_left
    (fun c field ->
      if String.trim field = "" then c
      else
        match String.index_opt field '=' with
        | None -> invalid_arg ("Faults.parse: expected key=value in " ^ field)
        | Some i ->
          let k = String.trim (String.sub field 0 i) in
          let v =
            String.trim (String.sub field (i + 1) (String.length field - i - 1))
          in
          (match k with
          | "seed" -> { c with seed = int_field k v }
          | "abort" -> { c with spurious_abort = rate k v }
          | "lock" -> { c with lock_fail = rate k v }
          | "validate" -> { c with validation_fail = rate k v }
          | "delay" -> { c with delay = rate k v }
          | "spins" -> { c with max_delay_spins = int_field k v }
          | "crash" -> { c with crash = rate k v }
          | "raise" -> { c with user_raise = rate k v }
          | "fsync" -> { c with fsync_fail = rate k v }
          | "shortw" -> { c with short_write = rate k v }
          | _ -> invalid_arg ("Faults.parse: unknown key " ^ k)))
    default
    (String.split_on_char ',' s)

type kind =
  | Spurious_abort
  | Lock_fail
  | Validation_fail
  | Delay
  | Crash_domain
  | User_raise
  | Fsync_fail
  | Short_write

let all_kinds =
  [ Spurious_abort; Lock_fail; Validation_fail; Delay; Crash_domain;
    User_raise; Fsync_fail; Short_write ]

let kind_name = function
  | Spurious_abort -> "spurious_abort"
  | Lock_fail -> "lock_fail"
  | Validation_fail -> "validation_fail"
  | Delay -> "delay"
  | Crash_domain -> "crash_domain"
  | User_raise -> "user_raise"
  | Fsync_fail -> "fsync_fail"
  | Short_write -> "short_write"

let kind_index = function
  | Spurious_abort -> 0
  | Lock_fail -> 1
  | Validation_fail -> 2
  | Delay -> 3
  | Crash_domain -> 4
  | User_raise -> 5
  | Fsync_fail -> 6
  | Short_write -> 7

let injected = Array.init 8 (fun _ -> Atomic.make 0)

let count k = Atomic.get injected.(kind_index k)
let counts () = List.map (fun k -> (k, count k)) all_kinds
let reset_counts () = Array.iter (fun c -> Atomic.set c 0) injected

let record k = ignore (Atomic.fetch_and_add injected.(kind_index k) 1)

(* Current configuration; [None] while disabled.  The PRNG state is global
   and CAS-advanced: single-domain runs draw a deterministic sequence,
   multi-domain runs interleave draws (each draw is still consumed exactly
   once). *)

let config : config option ref = ref None

let prng = Atomic.make 1

let mix seed =
  (* splitmix-style avalanche so that nearby seeds give unrelated streams *)
  let z = seed + 0x9E3779B9 in
  let z = (z lxor (z lsr 16)) * 0x85EBCA6B land max_int in
  let z = (z lxor (z lsr 13)) * 0xC2B2AE35 land max_int in
  (z lxor (z lsr 16)) lor 1

let rec draw () =
  let x = Atomic.get prng in
  let y = x lxor (x lsl 13) in
  let y = y lxor (y lsr 7) in
  let y = (y lxor (y lsl 17)) land max_int in
  let y = if y = 0 then 1 else y in
  if Atomic.compare_and_set prng x y then y else draw ()

(* 30 random bits -> [0, 1).  Plenty of resolution for fault rates. *)
let uniform () = float_of_int (draw () land 0x3FFFFFFF) /. 1073741824.0

let hit rate = rate > 0.0 && uniform () < rate

(* Per-process "inside a transaction attempt" flag.  Domain-local in real
   runs; registered with the TLS registry so the deterministic scheduler
   swaps it when context-switching logical processes. *)
let in_attempt : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

let () =
  Runtime.register_tls
    ~save:(fun () -> Obj.repr !(Domain.DLS.get in_attempt))
    ~restore:(fun o -> Domain.DLS.get in_attempt := (Obj.obj o : bool))

let enter_attempt () = Domain.DLS.get in_attempt := true
let leave_attempt () = Domain.DLS.get in_attempt := false

let eligible () =
  !(Domain.DLS.get in_attempt) && not (Runtime.Serial.active ())

let spin_delay c =
  let spins = 1 + (draw () mod max 1 c.max_delay_spins) in
  if not !Runtime.simulated then
    for _ = 1 to spins do
      Domain.cpu_relax ()
    done

exception Injected_failure

(* Deterministic one-shot faults, armed per domain: fire after exactly
   [points] further eligible scheduling points.  The chaos kill scenario
   uses them to land a crash at a chosen depth inside a transaction —
   i.e. inside a lock-holding window — independent of the PRNG stream. *)
type armed = {
  mutable countdown : int;
  mutable armed_kind : [ `Crash | `Raise ] option;
}

let armed_state : armed Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { countdown = 0; armed_kind = None })

let fire_armed a k =
  a.armed_kind <- None;
  match k with
  | `Crash ->
    record Crash_domain;
    raise Control.Crashed
  | `Raise ->
    record User_raise;
    raise Injected_failure

let point () =
  begin
    let a = Domain.DLS.get armed_state in
    match a.armed_kind with
    | Some k when eligible () ->
      a.countdown <- a.countdown - 1;
      if a.countdown <= 0 then fire_armed a k
    | _ -> ()
  end;
  match !config with
  | None -> ()
  | Some c ->
    if eligible () then begin
      if hit c.delay then begin
        record Delay;
        spin_delay c
      end;
      if hit c.spurious_abort then begin
        record Spurious_abort;
        Control.abort_tx Control.Injected
      end;
      if hit c.user_raise then begin
        record User_raise;
        raise Injected_failure
      end;
      if hit c.crash then begin
        record Crash_domain;
        raise Control.Crashed
      end
    end

let inject_lock_fail () =
  match !config with
  | None -> false
  | Some c ->
    eligible () && hit c.lock_fail
    && begin
         record Lock_fail;
         true
       end

let inject_validation_fail () =
  match !config with
  | None -> false
  | Some c ->
    eligible () && hit c.validation_fail
    && begin
         record Validation_fail;
         true
       end

(* The WAL runs *after* an attempt commits (the durability hook fires in
   [Retry_loop] once [leave_attempt] has run), so these are deliberately
   not gated on [eligible]: a configured rate applies to every fsync /
   flush regardless of transactional context. *)
let inject_fsync_fail () =
  match !config with
  | None -> false
  | Some c ->
    hit c.fsync_fail
    && begin
         record Fsync_fail;
         true
       end

let inject_short_write () =
  match !config with
  | None -> false
  | Some c ->
    hit c.short_write
    && begin
         record Short_write;
         true
       end

(* Arming installs the hook even with no PRNG config: a one-shot fault
   must fire regardless of whether random fault rates are also active. *)
let arm kind ~points =
  if points <= 0 then invalid_arg "Faults.arm: points must be positive";
  let a = Domain.DLS.get armed_state in
  a.countdown <- points;
  a.armed_kind <- Some kind;
  Runtime.fault_hook := point;
  Runtime.fault_injection := true

let arm_crash_after ~points = arm `Crash ~points
let arm_raise_after ~points = arm `Raise ~points

let disarm () =
  let a = Domain.DLS.get armed_state in
  a.armed_kind <- None;
  a.countdown <- 0

let enable c =
  config := Some c;
  Atomic.set prng (mix c.seed);
  Runtime.fault_hook := point;
  Runtime.fault_injection := true

let disable () =
  Runtime.fault_injection := false;
  Runtime.fault_hook := (fun () -> ());
  config := None

let enabled () = Option.is_some !config
let current () = !config

let reseed seed =
  match !config with
  | None -> invalid_arg "Faults.reseed: fault injection is disabled"
  | Some c ->
    config := Some { c with seed };
    Atomic.set prng (mix seed)
