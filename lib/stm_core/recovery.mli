(** Lease-based orphan-lock reclamation.

    While enabled, every top-level transaction publishes itself in the
    {!Registry} and heartbeats at each scheduling point.  A contender that
    observes a {!Vlock}, boosting abstract lock, or the {!Runtime.Serial}
    token held by an owner whose slot is dead or stale past the lease may
    steal it: the victim's slot is doomed first (so a resurrected victim
    aborts {!Control.Poisoned} instead of installing over a stolen lock)
    and versioned locks transition to a bumped, "poisoned" version minted
    above both the observed version and the global clock.

    Soundness rests on the lease being much longer than any honest
    lock-hold window — see DESIGN.md §5h.  Recovery is inert under the
    deterministic scheduler ({!Runtime.simulated}): simulated time has no
    leases. *)

val default_lease_ns : int
(** 50 ms — comfortably above any honest lock-hold window on a healthy
    system, short enough that a wedged workload recovers promptly. *)

val enable : ?lease_ns:int -> unit -> unit
(** Turn recovery on: sets {!Runtime.recovery}, installs the heartbeat and
    serial-reclaim hooks, and records the lease (default
    {!default_lease_ns}). *)

val disable : unit -> unit

val enabled : unit -> bool

val lease_ns : unit -> int
(** Current lease in nanoseconds. *)

val try_steal_vlock : Vlock.t -> bool
(** Attempt to reclaim a versioned lock held by a dead/stale owner.
    [true]: the lock is now unlocked at a poisoned version and the caller
    may retry its acquisition or read.  [false]: the owner is live, the
    stamp moved (owner released, or another thief won), or recovery does
    not apply here. *)

val try_steal_owner : holder:int Atomic.t -> pe:int -> bool
(** Same for an abstract lock represented as an owner cell (-1 = free):
    dooms the victim, then CASes the cell free on its behalf.  [pe] names
    the lock in sanitizer events. *)

val check_poisoned : unit -> unit
(** Abort the current transaction with {!Control.Poisoned} if its registry
    slot was doomed by a thief.  Engines call this on entry to commit and
    again immediately before installing their write set. *)
