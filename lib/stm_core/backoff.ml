type t = {
  mutable window : int;
  mutable rng : int;  (* xorshift64 state *)
  init : int;
  cap : int;
}

let max_window = 1 lsl 14

(* Process-wide factory defaults, adjustable from the benchmark CLIs
   (--backoff-init / --backoff-max).  Instances snapshot them at creation,
   so a mid-run change never mutates a live window. *)
let default_init = ref 16
let default_max = ref max_window

let set_defaults ?init ?max_window () =
  (match init with
  | Some i when i >= 1 -> default_init := i
  | Some _ -> invalid_arg "Backoff.set_defaults: init must be >= 1"
  | None -> ());
  (match max_window with
  | Some m when m >= !default_init -> default_max := m
  | Some _ -> invalid_arg "Backoff.set_defaults: max_window < init"
  | None -> ())

let defaults () = (!default_init, !default_max)

let create ?(seed = 0) ?init ?max_window () =
  let init = Option.value init ~default:!default_init in
  let cap = Option.value max_window ~default:!default_max in
  if init < 1 then invalid_arg "Backoff.create: init must be >= 1";
  if cap < init then invalid_arg "Backoff.create: max_window < init";
  { window = init; rng = (seed lxor 0x1E3779B97F4A7C15) lor 1; init; cap }

let reset t = t.window <- t.init
let window t = t.window

let next_rand t =
  let x = t.rng in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  t.rng <- x;
  x land max_int

let grow t = if t.window < t.cap then t.window <- min t.cap (t.window * 2)

let wait _t spins =
  if not !Runtime.simulated then
    for _ = 1 to spins do
      Domain.cpu_relax ()
    done;
  (* Let the deterministic scheduler reschedule instead of spinning. *)
  Runtime.schedule_point ()

let once t =
  wait t (next_rand t mod t.window);
  grow t
