type t = {
  mutable window : int;
  mutable rng : int;  (* xorshift64 state *)
}

let max_window = 1 lsl 14

let create ?(seed = 0) () =
  { window = 16; rng = (seed lxor 0x1E3779B97F4A7C15) lor 1 }

let reset t = t.window <- 16
let window t = t.window

let next_rand t =
  let x = t.rng in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  t.rng <- x;
  x land max_int

let once t =
  if not !Runtime.simulated then begin
    let spins = next_rand t mod t.window in
    for _ = 1 to spins do
      Domain.cpu_relax ()
    done
  end;
  (* Let the deterministic scheduler reschedule instead of spinning. *)
  Runtime.schedule_point ();
  if t.window < max_window then t.window <- t.window * 2
