(** Minimal growable array used for read/write sets.

    Not thread-safe: each transaction context owns its own vectors.  The
    backing store is reused across transaction retries to keep allocation
    off the hot path. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [dummy] fills unused slots (required because OCaml arrays cannot hold
    uninitialised values). *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit
val clear : 'a t -> unit
(** Resets the length to zero and wipes the freed slots to the dummy, so
    cleared elements become collectable; does not shrink the backing
    store. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val exists : ('a -> bool) -> 'a t -> bool
val for_all : ('a -> bool) -> 'a t -> bool
val find_opt : ('a -> bool) -> 'a t -> 'a option
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
val sort : ('a -> 'a -> int) -> 'a t -> unit
(** Sorts the live prefix in place without allocating (not stable). *)

val append_into : src:'a t -> dst:'a t -> unit
(** Pushes every element of [src] onto [dst]. *)

val filter_in_place : ('a -> bool) -> 'a t -> int
(** Keeps only the elements satisfying the predicate, preserving order;
    returns how many were dropped.  Freed slots are wiped to the dummy. *)
