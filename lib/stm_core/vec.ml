type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;
}

let create ?(capacity = 16) ~dummy () =
  { data = Array.make (max capacity 1) dummy; len = 0; dummy }

let length t = t.len
let is_empty t = t.len = 0

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get";
  t.data.(i)

let set t i v =
  if i < 0 || i >= t.len then invalid_arg "Vec.set";
  t.data.(i) <- v

let grow t =
  let data = Array.make (2 * Array.length t.data) t.dummy in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t v =
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

(* Freed slots are wiped to the dummy so a cleared set stops pinning its
   elements (tvars, pending values) for the GC; the backing store itself
   is kept for reuse. *)
let clear t =
  Array.fill t.data 0 t.len t.dummy;
  t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let exists p t =
  let rec loop i = i < t.len && (p t.data.(i) || loop (i + 1)) in
  loop 0

let for_all p t = not (exists (fun x -> not (p x)) t)

let find_opt p t =
  let rec loop i =
    if i >= t.len then None
    else if p t.data.(i) then Some t.data.(i)
    else loop (i + 1)
  in
  loop 0

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_list t = List.init t.len (fun i -> t.data.(i))

(* In-place, allocation-free sort of the live prefix: insertion sort for
   small prefixes, heapsort beyond (both O(1) space).  Stability is not
   promised — the commit path sorts write entries by unique tvar id. *)
let sort cmp t =
  let a = t.data and n = t.len in
  if n > 1 then
    if n <= 32 then
      for i = 1 to n - 1 do
        let x = a.(i) in
        let j = ref (i - 1) in
        while !j >= 0 && cmp a.(!j) x > 0 do
          a.(!j + 1) <- a.(!j);
          decr j
        done;
        a.(!j + 1) <- x
      done
    else begin
      let swap i j =
        let tmp = a.(i) in
        a.(i) <- a.(j);
        a.(j) <- tmp
      in
      let rec sift_down i stop =
        let l = (2 * i) + 1 in
        if l < stop then begin
          let child =
            if l + 1 < stop && cmp a.(l) a.(l + 1) < 0 then l + 1 else l
          in
          if cmp a.(i) a.(child) < 0 then begin
            swap i child;
            sift_down child stop
          end
        end
      in
      for i = (n / 2) - 1 downto 0 do
        sift_down i n
      done;
      for stop = n - 1 downto 1 do
        swap 0 stop;
        sift_down 0 stop
      done
    end

let append_into ~src ~dst = iter (push dst) src

let filter_in_place p t =
  let kept = ref 0 in
  for i = 0 to t.len - 1 do
    let x = t.data.(i) in
    if p x then begin
      t.data.(!kept) <- x;
      incr kept
    end
  done;
  let dropped = t.len - !kept in
  Array.fill t.data !kept dropped t.dummy;
  t.len <- !kept;
  dropped
