(** Transaction control flow.

    Aborts are implemented with an exception that unwinds to the outermost
    [atomic] retry loop; user code must not intercept it (catch-all handlers
    inside transactions must re-raise {!Abort_tx}). *)

(** Why a transaction aborted; recorded in statistics. *)
type reason =
  | Read_locked          (** a read found the location's lock held *)
  | Read_inconsistent    (** double-stamp read saw the stamp change *)
  | Read_too_new         (** version newer than the validity interval, extension failed *)
  | Window_invalid       (** elastic window validation failed (cut impossible) *)
  | Validation_failed    (** commit-time read-set validation failed *)
  | Lock_contention      (** could not acquire a write lock *)
  | Killed               (** aborted by the contention manager or by the
                             serial-irrevocable gate *)
  | Explicit             (** user requested the abort *)
  | Injected             (** spurious abort injected by {!Faults} *)
  | Poisoned             (** the transaction's registry slot was doomed by
                             {!Recovery}: one of its locks was presumed
                             orphaned and stolen, so committing would not
                             be atomic *)

exception Abort_tx of reason
(** Raised to abort the current transaction attempt.  Caught only by the
    outermost retry loop. *)

exception Starvation of string
(** Raised when a transaction exceeds the configured retry cap
    ({!Runtime.retry_cap}) {e and} {!Runtime.starvation_mode} is [`Raise];
    used by the deterministic scheduler to prune livelocking interleavings.
    Under the default [`Fallback] mode the retry loop escalates to the
    serial-irrevocable fallback instead, so this exception cannot escape. *)

exception Crashed
(** Simulated abrupt domain death, raised only by {!Faults} crash
    injection.  Unlike every other exception, engines deliberately do
    {e not} release locks, run undo logs or clear their registry slot when
    it unwinds — it models a domain that stopped executing mid-flight, and
    the orphaned state it leaves behind is what {!Recovery} reclaims. *)

exception Timeout of string
(** Raised when a transaction's deadline ({!Runtime.tx_timeout_ns}) expires
    before it manages to commit.  Never raised when no timeout is
    configured (the default): the retry loop then retries, and eventually
    serialises, until the transaction commits. *)

val abort_tx : reason -> 'a
(** Raise {!Abort_tx}.  While {!Runtime.sanitizer} is set, first invokes
    {!abort_notifier} so the sanitizer can detect aborts that user code
    swallows before they reach the retry loop. *)

val abort_notifier : (unit -> unit) ref
(** Called by {!abort_tx} while the sanitizer is enabled; owned by
    {!Sanitizer} (default no-op).  Code raising {!Abort_tx} directly,
    bypassing {!abort_tx}, is invisible to it. *)

val reason_to_string : reason -> string
val reason_index : reason -> int
val reason_count : int
val all_reasons : reason list
