(** Durable-commit plumbing shared by the engines and the write-ahead log
    (lib/persist).

    Engines stage the serialized entries of a just-installed write set;
    {!Retry_loop} fires the staged record through {!commit_hook} once the
    attempt's outcome is a definitive commit, and discards it on abort —
    so a WAL record is only ever appended for a transaction that
    happened, and always after its values are visible in memory.  All
    call sites are guarded by {!Runtime.durability}. *)

type staged = {
  s_wv : int;  (** commit version of the installing transaction *)
  s_entries : (int * string) list;
      (** persistent id, serialized committed value *)
}

val register_encoder : tvar_id:int -> pid:int -> (Obj.t -> string) -> unit
(** Map [tvar_id] to persistent id [pid] and a serializer for the tvar's
    content representation.  Must be called before the tvar is shared
    with concurrently committing domains (lookups are unsynchronized);
    [Persist.Ptvar.make] guarantees this by registering at creation. *)

val encoder_for : int -> (int * (Obj.t -> string)) option
(** The persistent id and encoder registered for a tvar id, if any. *)

val reset_encoders : unit -> unit
(** Drop every registered encoder (test/recovery isolation). *)

val stage : wv:int -> (int * string) list -> unit
(** Stage the durable entries of the write set the current domain just
    installed at commit version [wv].  No-op on [[]] (a commit that
    touched no persistent tvar logs nothing).  Overwrites any previous
    staging by this domain. *)

val discard_staged : unit -> unit
(** Drop the current domain's staged record (the attempt aborted). *)

val commit_hook : (staged -> unit) ref
(** Installed by [Persist.enable]: appends the record to the WAL.
    Default no-op. *)

val on_commit : unit -> unit
(** Called by {!Retry_loop} after a successful top-level commit: if the
    current domain staged a record, count it, clear the slot and hand the
    record to {!commit_hook}. *)

val reset_for_testing : unit -> unit
(** Clear encoders, staging and the hook (test isolation). *)
