(* Counters are striped across a fixed power-of-two number of cache-line-
   padded shards, indexed by [domain id land mask]: recording never shares
   a line across domains (modulo mask collisions when more domains than
   stripes run), and the masking keeps the table bounded even though
   domain ids grow without bound across a program run (every spawn gets a
   fresh id).  [snapshot] merges the shards, so the public interface is
   still one logical counter set per STM instance. *)

(* Detailed metrics (latency histograms, footprints, retry depths) cost two
   clock reads and a handful of atomic increments per transaction attempt,
   so they sit behind this global flag: when it is off, the hot path pays a
   single load-and-branch in Retry_loop and nothing else. *)
let detailed = Atomic.make false
let set_detailed b = Atomic.set detailed b
let detailed_enabled () = Atomic.get detailed

module Hist = struct
  (* Log-bucketed histogram over non-negative ints.  Bucket 0 counts the
     value 0; bucket i (i >= 1) counts values in [2^(i-1), 2^i).  63 buckets
     cover the whole non-negative [int] range on 64-bit, so recording never
     clamps.  The representative reported for a bucket is its inclusive
     upper bound, so percentiles over-approximate by at most 2x — the right
     bias for latency numbers read on a log scale. *)
  let buckets = 63

  type t = int Atomic.t array

  type snapshot = int array

  let create () : t = Array.init buckets (fun _ -> Atomic.make 0)

  let bucket_of v =
    if v <= 0 then 0
    else begin
      let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
      bits v 0
    end

  let upper_bound i = if i = 0 then 0 else (1 lsl i) - 1

  let record (t : t) v = ignore (Atomic.fetch_and_add t.(bucket_of v) 1)

  let snapshot (t : t) : snapshot = Array.map Atomic.get t

  let reset (t : t) = Array.iter (fun c -> Atomic.set c 0) t

  let count (s : snapshot) = Array.fold_left ( + ) 0 s

  let empty () : snapshot = Array.make buckets 0

  let add (a : snapshot) (b : snapshot) : snapshot =
    Array.init buckets (fun i -> a.(i) + b.(i))

  (* The value at or below which [p] percent of the recorded samples fall
     (reported as the bucket's upper bound).  [p] in (0, 100]. *)
  let percentile (s : snapshot) p =
    let n = count s in
    if n = 0 then 0
    else begin
      let rank =
        let r = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
        max 1 (min n r)
      in
      let rec go i acc =
        if i >= buckets then upper_bound (buckets - 1)
        else
          let acc = acc + s.(i) in
          if acc >= rank then upper_bound i else go (i + 1) acc
      in
      go 0 0
    end

  let max_value (s : snapshot) =
    let top = ref 0 in
    Array.iteri (fun i n -> if n > 0 then top := i) s;
    if s.(!top) = 0 then 0 else upper_bound !top
end

type shard = {
  commits : int Atomic.t;
  aborts : int Atomic.t;
  starvations : int Atomic.t;
  fallbacks : int Atomic.t;
  timeouts : int Atomic.t;
  read_ws_hits : int Atomic.t;
  read_ws_misses : int Atomic.t;
  by_reason : int Atomic.t array;
  commit_latency_ns : Hist.t;
  abort_latency_ns : Hist.t;
  read_set_size : Hist.t;
  write_set_size : Hist.t;
  retry_depth : Hist.t;
  validation_len : Hist.t;
}

type t = shard array

(* Power of two covering the machine's domains, clamped to [8, 64]:
   masking the domain id into this range keeps one shard per domain on
   typical machines without letting the per-instance footprint grow with
   the (unbounded) domain-id space. *)
let stripes =
  let cores = Domain.recommended_domain_count () in
  let rec up n = if n >= cores || n >= 64 then n else up (n * 2) in
  up 8

let stripe_mask = stripes - 1

let shard (t : t) = t.((Domain.self () :> int) land stripe_mask)

type snapshot = {
  commits : int;
  aborts : int;
  starvations : int;
  fallbacks : int;
  timeouts : int;
  read_ws_hits : int;
  read_ws_misses : int;
  by_reason : (Control.reason * int) list;
  commit_latency_ns : Hist.snapshot;
  abort_latency_ns : Hist.snapshot;
  read_set_size : Hist.snapshot;
  write_set_size : Hist.snapshot;
  retry_depth : Hist.snapshot;
  validation_len : Hist.snapshot;
}

(* The five scalar counters are the per-attempt hot spots, so each gets
   its own padded cell; the histograms and the per-reason array are bulky
   and colder (detailed mode / abort path), so only the shard record
   itself is padded for them. *)
let make_shard () : shard =
  Padding.copy_as_padded
    ({ commits = Padding.atomic 0;
      aborts = Padding.atomic 0;
      starvations = Padding.atomic 0;
      fallbacks = Padding.atomic 0;
      timeouts = Padding.atomic 0;
      read_ws_hits = Padding.atomic 0;
      read_ws_misses = Padding.atomic 0;
      by_reason = Array.init Control.reason_count (fun _ -> Atomic.make 0);
      commit_latency_ns = Hist.create ();
      abort_latency_ns = Hist.create ();
      read_set_size = Hist.create ();
      write_set_size = Hist.create ();
      retry_depth = Hist.create ();
      validation_len = Hist.create () }
      : shard)

let create () : t = Array.init stripes (fun _ -> make_shard ())

let record_commit (t : t) = ignore (Atomic.fetch_and_add (shard t).commits 1)

let record_abort (t : t) reason =
  let sh = shard t in
  ignore (Atomic.fetch_and_add sh.aborts 1);
  ignore (Atomic.fetch_and_add sh.by_reason.(Control.reason_index reason) 1)

let record_starvation (t : t) =
  ignore (Atomic.fetch_and_add (shard t).starvations 1)

let record_fallback (t : t) =
  ignore (Atomic.fetch_and_add (shard t).fallbacks 1)

let record_timeout (t : t) =
  ignore (Atomic.fetch_and_add (shard t).timeouts 1)

let record_commit_latency (t : t) ns = Hist.record (shard t).commit_latency_ns ns
let record_abort_latency (t : t) ns = Hist.record (shard t).abort_latency_ns ns

let record_rwset_sizes (t : t) ~reads ~writes =
  let sh = shard t in
  Hist.record sh.read_set_size reads;
  Hist.record sh.write_set_size writes

let record_retry_depth (t : t) n = Hist.record (shard t).retry_depth n

let record_read_ws_hit (t : t) =
  ignore (Atomic.fetch_and_add (shard t).read_ws_hits 1)

let record_read_ws_miss (t : t) =
  ignore (Atomic.fetch_and_add (shard t).read_ws_misses 1)

let record_validation_len (t : t) n = Hist.record (shard t).validation_len n

let snapshot (t : t) =
  let sum (f : shard -> int Atomic.t) =
    Array.fold_left (fun acc sh -> acc + Atomic.get (f sh)) 0 t
  in
  let merge_hist (f : shard -> Hist.t) =
    Array.fold_left (fun acc sh -> Hist.add acc (Hist.snapshot (f sh)))
      (Hist.empty ()) t
  in
  let by_reason =
    List.filter_map
      (fun r ->
        let i = Control.reason_index r in
        let n = sum (fun sh -> sh.by_reason.(i)) in
        if n = 0 then None else Some (r, n))
      Control.all_reasons
  in
  { commits = sum (fun sh -> sh.commits);
    aborts = sum (fun sh -> sh.aborts);
    starvations = sum (fun sh -> sh.starvations);
    fallbacks = sum (fun sh -> sh.fallbacks);
    timeouts = sum (fun sh -> sh.timeouts);
    read_ws_hits = sum (fun sh -> sh.read_ws_hits);
    read_ws_misses = sum (fun sh -> sh.read_ws_misses);
    by_reason;
    commit_latency_ns = merge_hist (fun sh -> sh.commit_latency_ns);
    abort_latency_ns = merge_hist (fun sh -> sh.abort_latency_ns);
    read_set_size = merge_hist (fun sh -> sh.read_set_size);
    write_set_size = merge_hist (fun sh -> sh.write_set_size);
    retry_depth = merge_hist (fun sh -> sh.retry_depth);
    validation_len = merge_hist (fun sh -> sh.validation_len) }

let reset (t : t) =
  Array.iter
    (fun (sh : shard) ->
      Atomic.set sh.commits 0;
      Atomic.set sh.aborts 0;
      Atomic.set sh.starvations 0;
      Atomic.set sh.fallbacks 0;
      Atomic.set sh.timeouts 0;
      Atomic.set sh.read_ws_hits 0;
      Atomic.set sh.read_ws_misses 0;
      Array.iter (fun c -> Atomic.set c 0) sh.by_reason;
      Hist.reset sh.commit_latency_ns;
      Hist.reset sh.abort_latency_ns;
      Hist.reset sh.read_set_size;
      Hist.reset sh.write_set_size;
      Hist.reset sh.retry_depth;
      Hist.reset sh.validation_len)
    t

let empty_snapshot () : snapshot =
  { commits = 0;
    aborts = 0;
    starvations = 0;
    fallbacks = 0;
    timeouts = 0;
    read_ws_hits = 0;
    read_ws_misses = 0;
    by_reason = [];
    commit_latency_ns = Hist.empty ();
    abort_latency_ns = Hist.empty ();
    read_set_size = Hist.empty ();
    write_set_size = Hist.empty ();
    retry_depth = Hist.empty ();
    validation_len = Hist.empty () }

(* Merge in canonical [Control.all_reasons] order so that [add] is
   commutative up to structural equality, not just up to reordering. *)
let add (a : snapshot) (b : snapshot) : snapshot =
  let count reasons r =
    match List.assoc_opt r reasons with Some n -> n | None -> 0
  in
  let by_reason =
    List.filter_map
      (fun r ->
        let n = count a.by_reason r + count b.by_reason r in
        if n = 0 then None else Some (r, n))
      Control.all_reasons
  in
  { commits = a.commits + b.commits;
    aborts = a.aborts + b.aborts;
    starvations = a.starvations + b.starvations;
    fallbacks = a.fallbacks + b.fallbacks;
    timeouts = a.timeouts + b.timeouts;
    read_ws_hits = a.read_ws_hits + b.read_ws_hits;
    read_ws_misses = a.read_ws_misses + b.read_ws_misses;
    by_reason;
    commit_latency_ns = Hist.add a.commit_latency_ns b.commit_latency_ns;
    abort_latency_ns = Hist.add a.abort_latency_ns b.abort_latency_ns;
    read_set_size = Hist.add a.read_set_size b.read_set_size;
    write_set_size = Hist.add a.write_set_size b.write_set_size;
    retry_depth = Hist.add a.retry_depth b.retry_depth;
    validation_len = Hist.add a.validation_len b.validation_len }

(* Recovery counters are process-global rather than per-STM-instance: the
   steal sites live in the shared lock paths (Rwsets, Tvar, Runtime.Serial)
   below any engine instance, so there is no [t] to thread to them.  Three
   padded cells; contention is negligible (steals are rare by design). *)
type recovery_counters = {
  orphan_steals : int;
  lease_expiries : int;
  poisoned_commits : int;
}

let orphan_steals_c = Padding.atomic 0
let lease_expiries_c = Padding.atomic 0
let poisoned_commits_c = Padding.atomic 0

let record_orphan_steal () = ignore (Atomic.fetch_and_add orphan_steals_c 1)
let record_lease_expiry () = ignore (Atomic.fetch_and_add lease_expiries_c 1)

let record_poisoned_commit () =
  ignore (Atomic.fetch_and_add poisoned_commits_c 1)

let recovery_counters () =
  { orphan_steals = Atomic.get orphan_steals_c;
    lease_expiries = Atomic.get lease_expiries_c;
    poisoned_commits = Atomic.get poisoned_commits_c }

let reset_recovery_counters () =
  Atomic.set orphan_steals_c 0;
  Atomic.set lease_expiries_c 0;
  Atomic.set poisoned_commits_c 0

(* Durability counters are process-global for the same reason: the WAL is
   one process-wide log below any engine instance, and [Durable.on_commit]
   has no [t] in hand. *)
type durable_counters = {
  durable_commits : int;  (** commits that staged at least one entry *)
  wal_appends : int;  (** records enqueued to the WAL buffer *)
  wal_syncs : int;  (** completed fsyncs *)
  wal_sync_failures : int;  (** injected/real fsync failures *)
  wal_short_writes : int;  (** injected short writes (log poisoned) *)
}

let durable_commits_c = Padding.atomic 0
let wal_appends_c = Padding.atomic 0
let wal_syncs_c = Padding.atomic 0
let wal_sync_failures_c = Padding.atomic 0
let wal_short_writes_c = Padding.atomic 0

let record_durable_commit () = ignore (Atomic.fetch_and_add durable_commits_c 1)
let record_wal_append () = ignore (Atomic.fetch_and_add wal_appends_c 1)
let record_wal_sync () = ignore (Atomic.fetch_and_add wal_syncs_c 1)

let record_wal_sync_failure () =
  ignore (Atomic.fetch_and_add wal_sync_failures_c 1)

let record_wal_short_write () =
  ignore (Atomic.fetch_and_add wal_short_writes_c 1)

let durable_counters () =
  { durable_commits = Atomic.get durable_commits_c;
    wal_appends = Atomic.get wal_appends_c;
    wal_syncs = Atomic.get wal_syncs_c;
    wal_sync_failures = Atomic.get wal_sync_failures_c;
    wal_short_writes = Atomic.get wal_short_writes_c }

let reset_durable_counters () =
  Atomic.set durable_commits_c 0;
  Atomic.set wal_appends_c 0;
  Atomic.set wal_syncs_c 0;
  Atomic.set wal_sync_failures_c 0;
  Atomic.set wal_short_writes_c 0

let abort_rate (s : snapshot) =
  let total = s.commits + s.aborts in
  if total = 0 then 0.0 else float_of_int s.aborts /. float_of_int total

let pp_snapshot ppf (s : snapshot) =
  Format.fprintf ppf "commits=%d aborts=%d (%.1f%%)" s.commits s.aborts
    (100.0 *. abort_rate s);
  List.iter
    (fun (r, n) -> Format.fprintf ppf " %s=%d" (Control.reason_to_string r) n)
    s.by_reason;
  if s.fallbacks > 0 then Format.fprintf ppf " fallbacks=%d" s.fallbacks;
  if s.starvations > 0 then Format.fprintf ppf " starvations=%d" s.starvations;
  if s.timeouts > 0 then Format.fprintf ppf " timeouts=%d" s.timeouts;
  if Hist.count s.commit_latency_ns > 0 then
    Format.fprintf ppf " commit-p50<=%dns p99<=%dns"
      (Hist.percentile s.commit_latency_ns 50.0)
      (Hist.percentile s.commit_latency_ns 99.0)
