(** Read sets and write sets shared by all STM implementations. *)

(** {1 Read entries} *)

type rentry = {
  r_lock : Vlock.t;
  r_seen : int;   (** full stamp observed when the location was read *)
  r_pe : int;     (** protection-element (tvar) id *)
}

val dummy_rentry : rentry

val rentry_valid : owner:int -> rentry -> bool
(** The entry's stamp is unchanged, or the location is currently
    write-locked by [owner] itself over the observed version. *)

(** A read set is a vector of read entries plus an incremental-validation
    watermark.  One location may appear several times; validation simply
    checks every recorded observation.  Entries below the watermark passed
    the last successful validation; {!validate_new} checks only the suffix
    appended since, which is sound while the transaction's validity
    interval ([rv]) is unchanged — see DESIGN.md 5g. *)
module Rset : sig
  type t

  val create : unit -> t
  val length : t -> int
  val is_empty : t -> bool
  val clear : t -> unit

  val push : t -> rentry -> unit
  val iter : (rentry -> unit) -> t -> unit

  val append_into : src:t -> dst:t -> unit
  (** Append [src]'s entries to [dst] (nesting merge).  [dst]'s watermark
      is unchanged: the new entries land in the unvalidated suffix. *)

  val validate : t -> owner:int -> bool
  (** Full scan: every entry's stamp is unchanged, or the location is
      write-locked by [owner] itself at the version that was observed.
      Advances the watermark to the full length on success. *)

  val validate_new : t -> owner:int -> bool
  (** Like {!validate} but only scans entries at or above the watermark.
      Only sound while [rv] is unchanged since the last successful
      validation; use {!validate} for interval extension and commit. *)

  val validate_upto : t -> owner:int -> limit:int -> bool
  (** Like {!validate} but additionally requires every observed version to
      be at most [limit] (snapshot-extension validation).  Full scan. *)

  val validated_upto : t -> int
  (** Current watermark (number of entries covered by the last successful
      validation). *)

  val last_scan : t -> int
  (** Number of entries examined by the most recent validation call. *)

  val filter_pe : t -> pe:int -> int
  (** Drop every observation of [pe] (elastic early release), adjusting the
      watermark; returns how many entries were dropped. *)

  val mem_pe : t -> int -> bool
end

(** {1 Write entries} *)

type wentry

val wentry_pe : wentry -> int
val wentry_lock : wentry -> Vlock.t

(** A write set indexed for O(1) lookup by tvar id: a summary (bloom) word
    answers the common read-of-unwritten-location miss with one load and a
    branch, small sets use a linear scan, and larger sets carry an
    open-addressing hash table from tvar id to entry slot. *)
module Wset : sig
  type t

  val create : unit -> t
  val clear : t -> unit
  val is_empty : t -> bool
  val size : t -> int

  val find : t -> 'a Tvar.t -> 'a option
  (** Pending value for [tv], if this write set wrote it. *)

  val mem_pe : t -> int -> bool

  val add : t -> 'a Tvar.t -> 'a -> bool
  (** Record (or overwrite) the pending value for [tv].  Returns [true] when
      this is the first write to [tv] in this set. *)

  val iter_pes : t -> (int -> unit) -> unit

  val lock_all : t -> owner:int -> bool
  (** Acquire every entry's lock in ascending id order.  On failure releases
      the locks taken so far (restoring their stamps) and returns [false].
      Entries already locked by [owner] (eager STMs) are skipped. *)

  val lock_one : t -> 'a Tvar.t -> owner:int -> bool
  (** Eagerly lock just [tv]'s entry (which must exist); returns false if the
      lock is held by another transaction.  Idempotent for [owner]. *)

  val max_version : t -> int
  (** Highest committed version among the entries' locks (0 when empty).
      Call with the locks held: it is the floor passed to {!Clock.tick} so
      GV5 write versions stay strictly above anything already installed at
      these locations. *)

  val install_and_unlock : t -> wv:int -> unit
  (** Write every pending value into its tvar and release the lock,
      publishing version [wv].  All entries must be locked by the caller.
      Under recovery, entries whose lock was stolen mid-install are not
      unlocked (the thief owns them now) and — detection permitting — not
      written; after the loop has released every lock still held, a
      detected steal raises {!Control.Abort_tx}[ Poisoned] and bumps the
      [poisoned_commits] counter, because the write set is then only
      partially published and must not be reported as a commit.  The
      steal-vs-write race this leaves open is documented in
      DESIGN.md §5h. *)

  val unlock_all_restore : t -> unit
  (** Release every lock this set acquired, restoring pre-lock stamps (abort
      path).  Under recovery the releases are CAS-based and skip entries
      whose lock was stolen in the meantime. *)

  val forget_locks : t -> unit
  (** Mark every entry unlocked {e without} releasing anything: the
      simulated-crash path, where the orphaned locks are deliberately left
      held for recovery to reclaim while the scratch set is reused. *)

  val capture_durable : t -> (int * string) list
  (** Serialize the pending values of entries whose tvar has a registered
      {!Durable} encoder, as [(persistent id, bytes)] pairs; [[]] when the
      set touches no persistent tvar.  Call right after
      {!install_and_unlock} (pending values are attempt-private and
      outlive the locks), guarded on [Runtime.durability]. *)

  val validate_no_foreign_lock : t -> owner:int -> bool
  (** No entry is locked by a transaction other than [owner]. *)
end
