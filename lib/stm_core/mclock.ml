external now_ns : unit -> (int64[@unboxed])
  = "stm_mclock_now_ns_bytecode" "stm_mclock_now_ns_native"
  [@@noalloc]

let elapsed_ns t0 = Int64.to_int (Int64.sub (now_ns ()) t0)
let ns_to_ms ns = Int64.to_float ns /. 1e6
let elapsed_ms ~t0 ~t1 = Int64.to_float (Int64.sub t1 t0) /. 1e6
