(** Cache-line padding for contended heap cells.

    OCaml 5.2's [Atomic.make_contended] is not available on the 5.1 compiler
    this library also supports, so padding is done by copying a freshly
    allocated block into a larger one whose size is a whole number of cache
    lines.  Because the atomic primitives only ever touch field 0, an
    [Atomic.t] living in an oversized block behaves identically — it just
    no longer shares its cache line with neighbouring allocations.

    Use this for long-lived, heavily shared cells (the global clock, lock
    stamps, per-domain stat shards, the serial-irrevocable token).  Do not
    bother for short-lived or rarely contended data: each padded cell costs
    at least 128 bytes. *)

val cache_line_words : int
(** Padding granule in words (128 bytes on 64-bit). *)

val copy_as_padded : 'a -> 'a
(** [copy_as_padded v] returns a copy of [v] whose heap block is padded to a
    whole number of cache lines.  Only meaningful for freshly allocated
    blocks that nothing else aliases yet (the copy is shallow and the
    original remains live if shared).  Immediates and no-scan blocks
    (strings, float arrays) are returned unchanged. *)

val atomic : 'a -> 'a Atomic.t
(** [atomic v] is a cache-line-padded [Atomic.make v]. *)
