(** Versioned write-locks.

    Every transactional variable carries one versioned lock.  The lock packs
    a version number and a locked bit into a single [int Atomic.t] so that a
    reader can obtain both with one atomic load.  The identity of the owner
    and the pre-lock stamp are kept in plain fields that are only written
    between a successful [try_lock] and the matching unlock; the CAS on the
    stamp provides the happens-before edge that makes those plain accesses
    safe. *)

type t

val create : ?pe:int -> unit -> t
(** A fresh unlocked lock at version 0.  [pe] is the protection-element id
    under which the lock reports its accesses to the deterministic
    scheduler's trace (defaults to an anonymous id); for a tvar's lock it is
    the tvar id. *)

val pe : t -> int
(** Protection-element id passed at creation. *)

val stamp : t -> int
(** Atomic load of the current stamp (version and locked bit together). *)

val locked : int -> bool
(** Whether a stamp obtained from {!stamp} has the locked bit set. *)

val version_of : int -> int
(** Version number carried by a stamp (valid for locked stamps too: a locked
    stamp still exposes the version that was current when the lock was
    taken). *)

val try_lock : t -> owner:int -> bool
(** Attempt to acquire the lock for transaction [owner].  Returns [false]
    without blocking if the lock is already held.  While recovery is
    enabled, acquisition first claims the holder-identity cell read by
    {!holder} and only then CASes the stamp, so a thief can never pair a
    locked stamp with a stale previous owner. *)

val try_lock_save : t -> owner:int -> int
(** Like {!try_lock}, but returns the pre-lock stamp observed by the
    winning CAS, or -1 on failure.  Callers running with recovery enabled
    must record this stamp per write-set entry and release through
    {!unlock_restore_from}/{!unlock_to_from}: after a steal, the lock's
    shared saved-stamp field may already belong to a thief's next locker. *)

val owner : t -> int
(** Owner recorded by the last successful [try_lock].  {b Contract}: the
    plain field is only meaningful against a locked stamp the caller has
    already observed, and even then it may be stale — the field is written
    {e after} the winning stamp CAS, so a freshly locked stamp can still
    expose the {e previous} owner, and another transaction can release and
    re-acquire the lock between the stamp load and this read.  The only
    safe use is self-ownership checks, where staleness is impossible
    because only the caller writes its own id.  Recovery must use
    {!holder}; anything else should use {!owner_opt}. *)

val holder : t -> int
(** The recovery claim cell: the identity CASed in {e before} the stamp
    CAS by recovery-mode acquisitions and cleared only {e after} the
    stamp transition of a release (or by the thief after a steal).
    Invariant: a locked stamp together with [holder >= 0] always names the
    actual current holder — never a stale predecessor — which is what
    makes doom-then-steal target the right victim.  [-1] means no
    recovery-mode holder: unlocked, a release/steal handover in flight, or
    a lock acquired while recovery was disabled (such locks are not
    reclaimable). *)

val owner_opt : t -> int option
(** [Some o] when the lock is currently locked with recorded owner [o],
    [None] on an unlocked stamp.  Rules out the "stale owner field read
    without first observing a locked stamp" misuse of {!owner}; the same
    release/re-acquire staleness caveat still applies to [o] itself. *)

val locked_by : t -> owner:int -> bool
(** [locked_by l ~owner] is true iff [l] is currently locked and the recorded
    owner is [owner].  Used for read-own-lock checks. *)

val unlock_restore : t -> unit
(** Release the lock, restoring the stamp saved by [try_lock] (used when a
    transaction aborts after eagerly locking). *)

val unlock_to : t -> version:int -> unit
(** Release the lock, publishing [version] as the new version (used at
    commit after installing a new value). *)

val unlock_restore_from : t -> saved:int -> bool
(** CAS-based {!unlock_restore} from a stamp recorded by
    {!try_lock_save}: releases only if the lock still carries the locked
    image of [saved] — i.e. it was not stolen.  [false] means a thief took
    the lock; the caller must treat it as no longer its own. *)

val unlock_to_from : t -> saved:int -> version:int -> bool
(** CAS-based {!unlock_to} from a stamp recorded by {!try_lock_save};
    same steal semantics as {!unlock_restore_from}. *)

val steal : t -> observed:int -> victim:int -> version:int -> int option
(** Recovery-only: transition the lock from the locked stamp [observed]
    to unlocked poisoned [version] (which must be strictly greater than
    [version_of observed]), displacing the claim cell.  [None] if the
    stamp moved since it was observed (the steal failed harmlessly);
    [Some displaced] on success, where [displaced] identifies whoever
    actually held the lock at the instant it was taken — normally
    [victim], but a different id when the lock cycled through a
    release/re-acquire back to the same stamp, in which case the caller
    must doom [displaced] as well.  Only {!Recovery.try_steal_vlock} may
    call this, with [victim] read from {!holder} and the victim's registry
    slot already doomed. *)

val pp : Format.formatter -> t -> unit
