(** Versioned write-locks.

    Every transactional variable carries one versioned lock.  The lock packs
    a version number and a locked bit into a single [int Atomic.t] so that a
    reader can obtain both with one atomic load.  The identity of the owner
    and the pre-lock stamp are kept in plain fields that are only written
    between a successful [try_lock] and the matching unlock; the CAS on the
    stamp provides the happens-before edge that makes those plain accesses
    safe. *)

type t

val create : ?pe:int -> unit -> t
(** A fresh unlocked lock at version 0.  [pe] is the protection-element id
    under which the lock reports its accesses to the deterministic
    scheduler's trace (defaults to an anonymous id); for a tvar's lock it is
    the tvar id. *)

val pe : t -> int
(** Protection-element id passed at creation. *)

val stamp : t -> int
(** Atomic load of the current stamp (version and locked bit together). *)

val locked : int -> bool
(** Whether a stamp obtained from {!stamp} has the locked bit set. *)

val version_of : int -> int
(** Version number carried by a stamp (valid for locked stamps too: a locked
    stamp still exposes the version that was current when the lock was
    taken). *)

val try_lock : t -> owner:int -> bool
(** Attempt to acquire the lock for transaction [owner].  Returns [false]
    without blocking if the lock is already held. *)

val owner : t -> int
(** Owner recorded by the last successful [try_lock].  Only meaningful while
    the caller has observed a locked stamp and knows the lock cannot have
    been recycled, i.e. when checking for self-ownership. *)

val locked_by : t -> owner:int -> bool
(** [locked_by l ~owner] is true iff [l] is currently locked and the recorded
    owner is [owner].  Used for read-own-lock checks. *)

val unlock_restore : t -> unit
(** Release the lock, restoring the stamp saved by [try_lock] (used when a
    transaction aborts after eagerly locking). *)

val unlock_to : t -> version:int -> unit
(** Release the lock, publishing [version] as the new version (used at
    commit after installing a new value). *)

val pp : Format.formatter -> t -> unit
