(** The outermost retry loop shared by all STM implementations. *)

val run : ?cm:Cm.t -> stats:Stats.t -> (attempt:int -> 'a) -> 'a
(** [run ~stats f] calls [f] (one full transaction attempt: begin, body,
    commit) until it returns instead of raising {!Control.Abort_tx}.  Aborts
    are counted in [stats] and followed by the contention manager's wait
    ([cm], freshly created from {!Cm.current_policy} when not supplied).
    [f] receives the attempt number (0 on the first try).

    When {!Runtime.retry_cap} attempts have all aborted, the loop does not
    wait again; what happens next depends on {!Runtime.starvation_mode}:

    - [`Fallback] (default): escalate to the serial-irrevocable mode —
      acquire the global {!Runtime.Serial} token and retry until commit.
      Every engine refuses commits from other processes while the token is
      held ({!Control.Killed} aborts), so the escalated transaction faces
      strictly decreasing interference and is guaranteed to commit.
      Recorded via {!Stats.record_starvation} and {!Stats.record_fallback};
      the contention manager is reset after the serial commit.

    - [`Raise]: raise {!Control.Starvation} — the deterministic scheduler's
      way of pruning livelocking interleavings.

    If {!Runtime.tx_timeout_ns} is set and expires before the transaction
    commits (optimistically or serially), the loop gives up with
    {!Control.Timeout}, recorded via {!Stats.record_timeout}.

    While fault injection is active ({!Runtime.fault_injection}), each
    attempt is bracketed with {!Faults.enter_attempt}/{!Faults.leave_attempt}
    so injected faults never fire outside transaction attempts.

    When {!Stats.detailed_enabled} is on, every attempt is additionally
    timed with the monotonic clock — committing attempts feed the
    commit-latency histogram (plus the retry-depth counter with the number
    of preceding aborts), aborted attempts the abort-latency histogram.
    When off, the loop pays one load-and-branch and no clock reads.

    @raise Control.Starvation under [`Raise] when the retry cap is exhausted.
    @raise Control.Timeout when the transaction's deadline expires. *)
