(** The outermost retry loop shared by all STM implementations. *)

val run : stats:Stats.t -> (attempt:int -> 'a) -> 'a
(** [run ~stats f] calls [f] (one full transaction attempt: begin, body,
    commit) until it returns instead of raising {!Control.Abort_tx}.  Aborts
    are counted in [stats] and followed by randomised backoff.  [f] receives
    the attempt number (0 on the first try).

    When {!Stats.detailed_enabled} is on, every attempt is additionally
    timed with the monotonic clock — committing attempts feed the
    commit-latency histogram (plus the retry-depth counter with the number
    of preceding aborts), aborted attempts the abort-latency histogram.
    When off, the loop pays one load-and-branch and no clock reads.

    @raise Control.Starvation when {!Runtime.retry_cap} attempts all
    aborted. *)
