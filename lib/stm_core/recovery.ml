(* Lease-based orphan-lock reclamation (DESIGN.md 5h).

   A contender blocked on a lock consults the owner's {!Registry} slot: if
   the owner is dead (domain exited / crashed) or its heartbeat is stale
   past the lease, the contender steals the lock.  The protocol, in order:

   0. read the victim's identity from the lock's claim cell
      ({!Vlock.holder}), which recovery-mode acquisitions populate
      {e before} their stamp CAS — never from the plain owner field,
      which is written after it and can name a stale previous owner
      against a freshly locked stamp;
   1. doom the victim's slot (generation bump) — a resurrected victim now
      fails its poison check before installing anything;
   2. mint a poisoned version strictly above the version observed under
      the lock, via [Clock.tick ~floor] so the global clock also moves
      past it (readers of the poisoned stamp abort as "too new" and
      re-read, never validating against torn state);
   3. CAS the stamp from the exact observed locked value to the poisoned
      version — if the victim released (or another thief won) meanwhile,
      the CAS fails and nothing happened — and doom the displaced claim
      as well when it differs from the victim (a release/re-acquire that
      cycled back to the same stamp: the new holder lost its lock to the
      steal and must abort poisoned rather than half-commit).

   Doom-before-steal also serves the sanitizer: by the time a San_steal
   event is checked, the victim's slot is either dead/stale or visibly
   doomed, so a live-owner steal is distinguishable as a violation.

   Soundness assumption (documented in DESIGN.md 5h): the lease must be
   much longer than any honest lock-hold window, including the commit
   install loop.  A spurious steal from a merely-slow owner is still
   poisoned-safe for the victim's own writes (CAS-based releases fail and
   the victim aborts poisoned) but a steal between validation and install
   can let a third transaction read a half-installed write set — leases
   are a liveness/consistency trade-off, not a free lunch. *)

let default_lease_ns = 50_000_000 (* 50 ms *)

let lease = Atomic.make default_lease_ns

let lease_ns () = Atomic.get lease

let enabled () = !Runtime.recovery

let serial_reclaim () =
  let h = Runtime.Serial.holder_id () in
  if h >= 0 && h <> Runtime.current_proc () then begin
    match Registry.domain_status ~lease_ns:(lease_ns ()) ~domain:h with
    | Registry.Live -> ()
    | (Registry.Stale | Registry.Dead) as st ->
      if st = Registry.Stale then Stats.record_lease_expiry ();
      (* Doom before force-clear, mirroring the vlock/abstract-lock steal
         paths: while the token sat free a concurrent commit may already
         have happened, so a stale-but-alive holder that resurrects must
         not keep believing it runs in exclusive serial mode — its next
         [check_poisoned] (commit entry) aborts it [Poisoned] instead. *)
      ignore (Registry.doom_domain ~domain:h);
      if Runtime.Serial.force_clear ~expected:h then begin
        Stats.record_orphan_steal ();
        if !Runtime.sanitizer then
          Runtime.sanitizer_event
            (Runtime.San_steal
               { pe = Runtime.clock_pe; victim = h; version = None })
      end
  end

let enable ?lease_ns:(l = default_lease_ns) () =
  Atomic.set lease l;
  Runtime.heartbeat_hook := Registry.heartbeat;
  Runtime.serial_reclaim_hook := serial_reclaim;
  Runtime.recovery := true

let disable () =
  Runtime.recovery := false;
  Runtime.heartbeat_hook := (fun () -> ());
  Runtime.serial_reclaim_hook := (fun () -> ())

(* Steal one versioned lock observed held by a dead/stale owner.  [true]
   means the lock is now free (at a poisoned version) and the contender
   may retry its acquisition/read.  Never called under the deterministic
   scheduler: simulated runs have no real time, hence no leases. *)
let try_steal_vlock lock =
  (not !Runtime.simulated)
  && begin
       let s = Vlock.stamp lock in
       Vlock.locked s
       && begin
            (* Identity comes from the claim cell, never from the plain
               owner field: the field is written only after the winning
               stamp CAS, so against a freshly locked stamp it can still
               name the previous — possibly dead — owner, and dooming that
               wrong owner would let the steal take the lock from a live,
               undoomed holder.  The claim is CASed in before the stamp
               CAS and cleared only after the release/steal transition
               ([Vlock.try_lock]'s protocol), so [holder >= 0] against a
               locked stamp is always the actual holder.  -1 means a
               release or steal handover is in flight (or the lock predates
               recovery being enabled): refuse and let the contender
               re-probe. *)
            let victim = Vlock.holder lock in
            victim >= 0
            && begin
                 match
                   Registry.owner_status ~lease_ns:(lease_ns ()) ~owner:victim
                 with
                 | Registry.Live -> false
                 | (Registry.Stale | Registry.Dead) as st ->
                   if st = Registry.Stale then Stats.record_lease_expiry ();
                   (* Doom first: the victim must be poisoned before the
                      lock can change hands. *)
                   ignore (Registry.doom ~owner:victim);
                   let pv =
                     Clock.tick ~floor:(fun () -> Vlock.version_of s) ()
                   in
                   (match Vlock.steal lock ~observed:s ~victim ~version:pv with
                   | None -> false
                   | Some displaced ->
                     (* If the displaced claim is not the victim we
                        validated, the lock cycled back to the same stamp
                        under a new holder while we probed.  That holder
                        lost its lock to this steal, so doom it too — a
                        spurious-but-safe poisoned abort for a transaction
                        that can no longer commit intact anyway. *)
                     if displaced >= 0 && displaced <> victim then
                       ignore (Registry.doom ~owner:displaced);
                     Stats.record_orphan_steal ();
                     true)
               end
          end
     end

(* Steal an abstract (boosting) lock: doom the victim, then CAS the holder
   cell free on its behalf.  The cell holds owner ids directly, so the CAS
   from the observed holder is the whole transition. *)
let try_steal_owner ~holder ~pe =
  (not !Runtime.simulated)
  && begin
       let victim = Atomic.get holder in
       victim >= 0
       && begin
            match Registry.owner_status ~lease_ns:(lease_ns ()) ~owner:victim with
            | Registry.Live -> false
            | (Registry.Stale | Registry.Dead) as st ->
              if st = Registry.Stale then Stats.record_lease_expiry ();
              ignore (Registry.doom ~owner:victim);
              let stolen = Atomic.compare_and_set holder victim (-1) in
              if stolen then begin
                Stats.record_orphan_steal ();
                if !Runtime.sanitizer then
                  Runtime.sanitizer_event
                    (Runtime.San_steal { pe; victim; version = None })
              end;
              stolen
          end
     end

(* Engines call this immediately before installing a write set (and once
   more on entry to commit): a doomed transaction aborts here instead of
   publishing values over locks it no longer holds. *)
let check_poisoned () =
  if !Runtime.recovery && Registry.poisoned () then begin
    Stats.record_poisoned_commit ();
    Control.abort_tx Control.Poisoned
  end
