(* Lease-based orphan-lock reclamation (DESIGN.md 5h).

   A contender blocked on a lock consults the owner's {!Registry} slot: if
   the owner is dead (domain exited / crashed) or its heartbeat is stale
   past the lease, the contender steals the lock.  The protocol, in order:

   1. doom the victim's slot (generation bump) — a resurrected victim now
      fails its poison check before installing anything;
   2. mint a poisoned version strictly above the version observed under
      the lock, via [Clock.tick ~floor] so the global clock also moves
      past it (readers of the poisoned stamp abort as "too new" and
      re-read, never validating against torn state);
   3. CAS the stamp from the exact observed locked value to the poisoned
      version — if the victim released (or another thief won) meanwhile,
      the CAS fails and nothing happened.

   Doom-before-steal also serves the sanitizer: by the time a San_steal
   event is checked, the victim's slot is either dead/stale or visibly
   doomed, so a live-owner steal is distinguishable as a violation.

   Soundness assumption (documented in DESIGN.md 5h): the lease must be
   much longer than any honest lock-hold window, including the commit
   install loop.  A spurious steal from a merely-slow owner is still
   poisoned-safe for the victim's own writes (CAS-based releases fail and
   the victim aborts poisoned) but a steal between validation and install
   can let a third transaction read a half-installed write set — leases
   are a liveness/consistency trade-off, not a free lunch. *)

let default_lease_ns = 50_000_000 (* 50 ms *)

let lease = Atomic.make default_lease_ns

let lease_ns () = Atomic.get lease

let enabled () = !Runtime.recovery

let serial_reclaim () =
  let h = Runtime.Serial.holder_id () in
  if h >= 0 && h <> Runtime.current_proc () then begin
    match Registry.domain_status ~lease_ns:(lease_ns ()) ~domain:h with
    | Registry.Live -> ()
    | (Registry.Stale | Registry.Dead) as st ->
      if st = Registry.Stale then Stats.record_lease_expiry ();
      if Runtime.Serial.force_clear ~expected:h then begin
        Stats.record_orphan_steal ();
        if !Runtime.sanitizer then
          Runtime.sanitizer_event
            (Runtime.San_steal
               { pe = Runtime.clock_pe; victim = h; version = None })
      end
  end

let enable ?lease_ns:(l = default_lease_ns) () =
  Atomic.set lease l;
  Runtime.heartbeat_hook := Registry.heartbeat;
  Runtime.serial_reclaim_hook := serial_reclaim;
  Runtime.recovery := true

let disable () =
  Runtime.recovery := false;
  Runtime.heartbeat_hook := (fun () -> ());
  Runtime.serial_reclaim_hook := (fun () -> ())

(* Steal one versioned lock observed held by a dead/stale owner.  [true]
   means the lock is now free (at a poisoned version) and the contender
   may retry its acquisition/read.  Never called under the deterministic
   scheduler: simulated runs have no real time, hence no leases. *)
let try_steal_vlock lock =
  (not !Runtime.simulated)
  && begin
       let s = Vlock.stamp lock in
       Vlock.locked s
       && begin
            (* The plain owner field may be stale; the CAS on the exact
               observed stamp in [Vlock.steal] makes that harmless. *)
            let victim = Vlock.owner lock in
            match Registry.owner_status ~lease_ns:(lease_ns ()) ~owner:victim with
            | Registry.Live -> false
            | (Registry.Stale | Registry.Dead) as st ->
              if st = Registry.Stale then Stats.record_lease_expiry ();
              (* Doom first: the victim must be poisoned before the lock
                 can change hands. *)
              ignore (Registry.doom ~owner:victim);
              let pv =
                Clock.tick ~floor:(fun () -> Vlock.version_of s) ()
              in
              let stolen = Vlock.steal lock ~observed:s ~victim ~version:pv in
              if stolen then Stats.record_orphan_steal ();
              stolen
          end
     end

(* Steal an abstract (boosting) lock: doom the victim, then CAS the holder
   cell free on its behalf.  The cell holds owner ids directly, so the CAS
   from the observed holder is the whole transition. *)
let try_steal_owner ~holder ~pe =
  (not !Runtime.simulated)
  && begin
       let victim = Atomic.get holder in
       victim >= 0
       && begin
            match Registry.owner_status ~lease_ns:(lease_ns ()) ~owner:victim with
            | Registry.Live -> false
            | (Registry.Stale | Registry.Dead) as st ->
              if st = Registry.Stale then Stats.record_lease_expiry ();
              ignore (Registry.doom ~owner:victim);
              let stolen = Atomic.compare_and_set holder victim (-1) in
              if stolen then begin
                Stats.record_orphan_steal ();
                if !Runtime.sanitizer then
                  Runtime.sanitizer_event
                    (Runtime.San_steal { pe; victim; version = None })
              end;
              stolen
          end
     end

(* Engines call this immediately before installing a write set (and once
   more on entry to commit): a doomed transaction aborts here instead of
   publishing values over locks it no longer holds. *)
let check_poisoned () =
  if !Runtime.recovery && Registry.poisoned () then begin
    Stats.record_poisoned_commit ();
    Control.abort_tx Control.Poisoned
  end
