(** View transactions (Afek, Morrison, Tzafrir — PODC'10; Section VIII of
    the paper): the programmer names the {e critical view} — the reads the
    transaction's correctness depends on — and only that view is validated
    at commit.  Weak reads are momentarily consistent and never
    revalidated.  A child passes its view to its parent at commit
    (outheritance), so compositions are atomic with respect to their
    critical views.  See the implementation's header comment for the
    paper's paragraph this makes executable. *)

(** The engine interface, extended with the view-transaction relaxation. *)
module type S = sig
  include Stm_core.Stm_intf.S

  val read_weak : ctx -> 'a tvar -> 'a
  (** A consistent read that never joins the critical view: later changes
      to the location do not abort this transaction.  The caller asserts
      the transaction's correctness does not depend on the value staying
      current. *)
end

module Make (_ : sig
  val name : string
end) : S with type 'a tvar = 'a Stm_core.Tvar.t

(** The default view-transaction instance. *)
module V : S with type 'a tvar = 'a Stm_core.Tvar.t
