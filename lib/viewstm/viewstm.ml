(** View transactions (Afek, Morrison, Tzafrir — PODC'10), as discussed in
    Section VIII of the paper:

    "View transactions are a type of relaxed transactions that use
    programmer-specified view pointers to define the critical view of a
    transaction, which is basically equivalent to our notion of a minimal
    protected set.  When committing, a view transaction must pass its
    critical view to its parent transaction (if any), thus satisfying
    outheritance and ensuring composition."

    This module makes that paragraph executable.  It is a third relaxation
    style next to elastic (sliding window) and boosting (abstract locks):

    - {!read_weak} returns a momentarily-consistent value that is {e never
      revalidated} — the programmer asserts the transaction's postcondition
      does not depend on it (heuristic reads, search hints, statistics);
    - {!read} (the critical read) joins the transaction's {e view}: the
      set validated at commit, i.e. its minimal protected set;
    - writes are tracked as usual and installed atomically at commit;
    - a nested transaction's view is passed to its parent at child commit
      — outheritance — so compositions of view transactions are atomic
      with respect to their critical views.

    The demonstration that this matters is in the tests: the Fig. 1
    insertIfAbsent scenario is safe in every interleaving when the guard
    is read critically, and the explorer exhibits a violation when it is
    read weakly — the programmer-facing knob that elastic transactions
    turn automatically. *)

open Stm_core

module type S = sig
  include Stm_intf.S

  val read_weak : ctx -> 'a tvar -> 'a
  (** A consistent read that never joins the critical view: later changes
      to the location do not abort this transaction.  The caller asserts
      the transaction's correctness does not depend on the value staying
      current. *)
end

module Make (C : sig
  val name : string
end) : S with type 'a tvar = 'a Tvar.t = struct
  let name = C.name

  type 'a tvar = 'a Tvar.t

  type root = {
    root_tx : int;
    wset : Rwsets.Wset.t;
    mutable rv : int;
    rec_state : Txrec.t option;
  }

  type ctx = {
    tx_id : int;
    root : root;
    parent : ctx option;
    view : Rwsets.Rset.t;  (* the critical view = minimal protected set *)
  }

  let stats = Stats.create ()

  let current : ctx option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

  let () =
    Runtime.register_tls
      ~save:(fun () -> Obj.repr (Domain.DLS.get current))
      ~restore:(fun o -> Domain.DLS.set current (Obj.obj o : ctx option))

  let tvar = Tvar.make
  let peek = Tvar.peek
  [@@txlint.allow "stm-escape"
       "re-export of the quiescent escape hatch; callers are linted at \
        their own sites"]

  let unsafe_write = Tvar.unsafe_write
  [@@txlint.allow "stm-escape"
       "re-export of the quiescent escape hatch; callers are linted at \
        their own sites"]
  let tvar_id = Tvar.id
  let in_transaction () = Option.is_some (Domain.DLS.get current)

  let rec validate_views ~owner ctx =
    Rwsets.Rset.validate ctx.view ~owner
    && (match ctx.parent with None -> true | Some p -> validate_views ~owner p)

  (* Suffix-only variant for the sanitizer's per-read check: sound while
     [rv] is unchanged since the last successful validation (DESIGN.md 5g);
     extension and commit use the full [validate_views]. *)
  let rec validate_views_new ~owner ctx =
    Rwsets.Rset.validate_new ctx.view ~owner
    && (match ctx.parent with
       | None -> true
       | Some p -> validate_views_new ~owner p)

  (* Entries examined by the innermost view's latest validation — a lower
     bound of the whole-chain scan, exact for unnested transactions. *)
  let record_scan ctx =
    if Stats.detailed_enabled () then
      Stats.record_validation_len stats (Rwsets.Rset.last_scan ctx.view)

  (* Critical read: consistent now, validated again at commit. *)
  let read : type a. ctx -> a tvar -> a =
   fun ctx tv ->
    Runtime.schedule_point_on (Runtime.Read (Tvar.id tv));
    match Rwsets.Wset.find ctx.root.wset tv with
    | Some v ->
      if Stats.detailed_enabled () then Stats.record_read_ws_hit stats;
      Txrec.read ctx.root.rec_state ~tx:ctx.tx_id ~pe:(Tvar.id tv)
        ~repr:(Recorder.repr_of_value v);
      v
    | None ->
      if Stats.detailed_enabled () then Stats.record_read_ws_miss stats;
      let s, v = Tvar.read_consistent tv in
      let pe = Tvar.id tv in
      (* Keep critical reads within a consistent snapshot, extending the
         validity interval LSA-style when a newer version appears.  Moving
         [rv] requires the full re-scan. *)
      if Vlock.version_of s > ctx.root.rv then begin
        let owner = ctx.root.root_tx in
        let now = Clock.now () in
        let ok = validate_views ~owner ctx in
        record_scan ctx;
        if ok then ctx.root.rv <- now
        else Control.abort_tx Control.Read_too_new
      end;
      Txrec.acquire ctx.root.rec_state ~pe;
      Rwsets.Rset.push ctx.view
        { Rwsets.r_lock = tv.Tvar.lock; r_seen = s; r_pe = pe };
      (* Sanitizer strict-opacity mode: revalidate the critical views at
         every critical read.  Weak reads stay unchecked by design — they
         are the view-transaction relaxation.  [rv] is unchanged since the
         last success, so the suffix scan suffices. *)
      if !Runtime.sanitizer then
        Sanitizer.on_tx_read ~validate:(fun () ->
            let ok = validate_views_new ~owner:ctx.root.root_tx ctx in
            record_scan ctx;
            ok);
      Txrec.read ctx.root.rec_state ~tx:ctx.tx_id ~pe
        ~repr:(Recorder.repr_of_value v);
      v

  (* Weak read: consistent at the moment it happens, never revalidated.
     Its protection element is acquired and released around the operation,
     which is exactly how the paper's model renders a read that protects
     nothing (an empty contribution to Pmin). *)
  let read_weak : type a. ctx -> a tvar -> a =
   fun ctx tv ->
    Runtime.schedule_point_on (Runtime.Read (Tvar.id tv));
    match Rwsets.Wset.find ctx.root.wset tv with
    | Some v -> v
    | None ->
      let _, v = Tvar.read_consistent tv in
      let pe = Tvar.id tv in
      Txrec.acquire ctx.root.rec_state ~pe;
      Txrec.read ctx.root.rec_state ~tx:ctx.tx_id ~pe
        ~repr:(Recorder.repr_of_value v);
      Txrec.release ctx.root.rec_state ~pe;
      v

  let write : type a. ctx -> a tvar -> a -> unit =
   fun ctx tv v ->
    Runtime.schedule_point_on (Runtime.Write (Tvar.id tv));
    let pe = Tvar.id tv in
    let first = Rwsets.Wset.add ctx.root.wset tv v in
    if first then Txrec.acquire ctx.root.rec_state ~pe;
    Txrec.write ctx.root.rec_state ~tx:ctx.tx_id ~pe
      ~repr:(Recorder.repr_of_value v)

  let commit_root ctx =
    Runtime.schedule_point ();
    (* Serial-irrevocable gate (see Retry_loop): abort rather than block so
       any locks this transaction holds are released for the token holder. *)
    if not (Runtime.Serial.commit_allowed ()) then
      Control.abort_tx Control.Killed;
    if !Runtime.recovery then Recovery.check_poisoned ();
    let owner = ctx.root.root_tx in
    if Rwsets.Wset.is_empty ctx.root.wset then begin
      if not (validate_views ~owner ctx) then
        Control.abort_tx Control.Validation_failed
    end
    else begin
      if not (Rwsets.Wset.lock_all ctx.root.wset ~owner) then
        Control.abort_tx Control.Lock_contention;
      let wv =
        Clock.tick ~floor:(fun () -> Rwsets.Wset.max_version ctx.root.wset) ()
      in
      let ok = validate_views ~owner ctx in
      record_scan ctx;
      if not ok then begin
        Rwsets.Wset.unlock_all_restore ctx.root.wset;
        Control.abort_tx Control.Validation_failed
      end;
      if !Runtime.sanitizer then begin
        let rec iter_views f c =
          Rwsets.Rset.iter f c.view;
          match c.parent with None -> () | Some p -> iter_views f p
        in
        Sanitizer.on_commit ~owner ~wv (fun f -> iter_views f ctx)
      end;
      (* Last poison check while the locks are still held: a doomed victim
         must abort here, before installing over a stolen lock. *)
      if !Runtime.recovery then begin
        try Recovery.check_poisoned ()
        with e ->
          Rwsets.Wset.unlock_all_restore ctx.root.wset;
          raise e
      end;
      Rwsets.Wset.install_and_unlock ctx.root.wset ~wv;
      (* Post-install: stage the durable entries for the WAL.  Retry_loop
         fires the record once this attempt's outcome is a definitive
         commit, and discards it if anything below still aborts. *)
      if !Runtime.durability then
        Durable.stage ~wv (Rwsets.Wset.capture_durable ctx.root.wset)
    end;
    Txrec.commit_tx ctx.root.rec_state ~tx:ctx.tx_id;
    Txrec.release_remaining ctx.root.rec_state

  let run_nested parent f =
    let child =
      { tx_id = Runtime.fresh_tx_id (); root = parent.root;
        parent = Some parent; view = Rwsets.Rset.create () }
    in
    Txrec.begin_tx child.root.rec_state ~tx:child.tx_id;
    Domain.DLS.set current (Some child);
    match f child with
    | result ->
      Txrec.commit_tx child.root.rec_state ~tx:child.tx_id;
      (* Outheritance: the child's critical view joins the parent's. *)
      Rwsets.Rset.append_into ~src:child.view ~dst:parent.view;
      Domain.DLS.set current (Some parent);
      result
    | exception e ->
      Domain.DLS.set current (Some parent);
      raise e

  (* Per-domain scratch sets reused across toplevel transactions; nested
     views stay per-level allocations (merged away at child commit).
     Simulated runs allocate fresh sets: one domain multiplexes many
     logical processes there, which must not share mutable state. *)
  type scratch = { s_wset : Rwsets.Wset.t; s_view : Rwsets.Rset.t }

  let scratch : scratch Domain.DLS.key =
    Domain.DLS.new_key (fun () ->
        { s_wset = Rwsets.Wset.create (); s_view = Rwsets.Rset.create () })

  let fresh_sets () =
    if !Runtime.simulated then (Rwsets.Wset.create (), Rwsets.Rset.create ())
    else begin
      let s = Domain.DLS.get scratch in
      Rwsets.Wset.clear s.s_wset;
      Rwsets.Rset.clear s.s_view;
      (s.s_wset, s.s_view)
    end

  let run_toplevel f =
    Retry_loop.run ~stats (fun ~attempt:_ ->
        let root_tx = Runtime.fresh_tx_id () in
        let wset, view = fresh_sets () in
        let root =
          { root_tx; wset; rv = Clock.now (); rec_state = Txrec.create () }
        in
        let ctx = { tx_id = root_tx; root; parent = None; view } in
        Domain.DLS.set current (Some ctx);
        if !Runtime.recovery then Registry.publish ~owner:root_tx;
        if !Runtime.sanitizer then Sanitizer.tx_begin ~owner:root_tx;
        Txrec.begin_tx root.rec_state ~tx:root_tx;
        try
          let result = f ctx in
          (commit_root ctx
           [@txlint.allow "tx-escape"
               "the engine's attempt thunk commits here: installing the \
                write set via unsafe_write under the write locks is the \
                one sanctioned escape"]);
          if !Runtime.sanitizer then Sanitizer.tx_end ~owner:root_tx;
          if !Runtime.recovery then Registry.clear ();
          Domain.DLS.set current None;
          result
        with
        | Control.Crashed as e ->
          (* Simulated domain death: leave held locks for recovery to
             reclaim; mark the registry slot dead. *)
          Rwsets.Wset.forget_locks root.wset;
          if !Runtime.recovery then Registry.mark_crashed ();
          if !Runtime.sanitizer then Sanitizer.tx_crashed ~owner:root_tx;
          Domain.DLS.set current None;
          raise e
        | e ->
          Rwsets.Wset.unlock_all_restore root.wset;
          Txrec.abort_open root.rec_state;
          if !Runtime.sanitizer then Sanitizer.tx_end ~owner:root_tx;
          if !Runtime.recovery then Registry.clear ();
          Domain.DLS.set current None;
          raise e)

  let atomic ?mode:_ f =
    match Domain.DLS.get current with
    | Some parent -> run_nested parent f
    | None -> run_toplevel f
end

(** The default view-transaction instance. *)
module V = Make (struct
  let name = "View-STM"
end)
