open Stm_core

let test_counting () =
  let s = Stats.create () in
  Stats.record_commit s;
  Stats.record_commit s;
  Stats.record_abort s Control.Validation_failed;
  Stats.record_abort s Control.Lock_contention;
  Stats.record_abort s Control.Validation_failed;
  let snap = Stats.snapshot s in
  Alcotest.(check int) "commits" 2 snap.Stats.commits;
  Alcotest.(check int) "aborts" 3 snap.Stats.aborts;
  Alcotest.(check int) "validation aborts" 2
    (List.assoc Control.Validation_failed snap.Stats.by_reason);
  Alcotest.(check (float 1e-9)) "abort rate" 0.6 (Stats.abort_rate snap);
  Stats.reset s;
  let snap = Stats.snapshot s in
  Alcotest.(check int) "commits after reset" 0 snap.Stats.commits;
  Alcotest.(check (float 1e-9)) "rate on empty" 0.0 (Stats.abort_rate snap)

let test_reason_index_bijective () =
  let indices = List.map Control.reason_index Control.all_reasons in
  Alcotest.(check int) "count" Control.reason_count (List.length indices);
  Alcotest.(check (list int)) "indices are 0..n-1"
    (List.init Control.reason_count Fun.id)
    (List.sort compare indices)

let test_parallel_counting () =
  let s = Stats.create () in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 1000 do
              Stats.record_commit s;
              Stats.record_abort s Control.Read_locked
            done))
  in
  List.iter Domain.join domains;
  let snap = Stats.snapshot s in
  Alcotest.(check int) "parallel commits" 4000 snap.Stats.commits;
  Alcotest.(check int) "parallel aborts" 4000 snap.Stats.aborts

let suite =
  [ Alcotest.test_case "counting and rate" `Quick test_counting;
    Alcotest.test_case "reason indexing" `Quick test_reason_index_bijective;
    Alcotest.test_case "parallel counting" `Slow test_parallel_counting ]
