open Stm_core

let test_wset_find_typed () =
  let ws = Rwsets.Wset.create () in
  let a = Tvar.make 1 in
  let b = Tvar.make "hello" in
  Alcotest.(check bool) "first write to a" true (Rwsets.Wset.add ws a 10);
  Alcotest.(check bool) "first write to b" true (Rwsets.Wset.add ws b "x");
  Alcotest.(check bool) "second write to a" false (Rwsets.Wset.add ws a 20);
  Alcotest.(check (option int)) "a pending" (Some 20) (Rwsets.Wset.find ws a);
  Alcotest.(check (option string)) "b pending" (Some "x") (Rwsets.Wset.find ws b);
  let c = Tvar.make 0 in
  Alcotest.(check (option int)) "c absent" None (Rwsets.Wset.find ws c);
  Alcotest.(check int) "size counts distinct tvars" 2 (Rwsets.Wset.size ws)

let test_lock_all_and_install () =
  let ws = Rwsets.Wset.create () in
  let a = Tvar.make 1 and b = Tvar.make 2 in
  ignore (Rwsets.Wset.add ws a 10);
  ignore (Rwsets.Wset.add ws b 20);
  Alcotest.(check bool) "lock_all succeeds" true
    (Rwsets.Wset.lock_all ws ~owner:1);
  Rwsets.Wset.install_and_unlock ws ~wv:7;
  Alcotest.(check int) "a installed" 10 (Tvar.peek a);
  Alcotest.(check int) "b installed" 20 (Tvar.peek b);
  Alcotest.(check int) "a version bumped" 7
    (Vlock.version_of (Vlock.stamp a.Tvar.lock));
  Alcotest.(check bool) "a unlocked" false
    (Vlock.locked (Vlock.stamp a.Tvar.lock))

let test_lock_all_fails_and_rolls_back () =
  let ws = Rwsets.Wset.create () in
  let a = Tvar.make 1 and b = Tvar.make 2 in
  ignore (Rwsets.Wset.add ws a 10);
  ignore (Rwsets.Wset.add ws b 20);
  (* Another transaction holds b. *)
  Alcotest.(check bool) "foreign lock" true (Vlock.try_lock b.Tvar.lock ~owner:99);
  Alcotest.(check bool) "lock_all fails" false (Rwsets.Wset.lock_all ws ~owner:1);
  Alcotest.(check bool) "a released again" false
    (Vlock.locked (Vlock.stamp a.Tvar.lock));
  Vlock.unlock_restore b.Tvar.lock;
  Alcotest.(check bool) "lock_all succeeds after release" true
    (Rwsets.Wset.lock_all ws ~owner:1);
  Rwsets.Wset.unlock_all_restore ws;
  Alcotest.(check int) "values untouched on rollback" 1 (Tvar.peek a)

let test_rset_validate () =
  let rs = Rwsets.Rset.create () in
  let a = Tvar.make 1 in
  let s, _ = Tvar.read_consistent a in
  Vec.push rs { Rwsets.r_lock = a.Tvar.lock; r_seen = s; r_pe = Tvar.id a };
  Alcotest.(check bool) "valid while unchanged" true
    (Rwsets.Rset.validate rs ~owner:1);
  (* Simulate a foreign commit. *)
  ignore (Vlock.try_lock a.Tvar.lock ~owner:9);
  Alcotest.(check bool) "invalid while foreign-locked" false
    (Rwsets.Rset.validate rs ~owner:1);
  Vlock.unlock_to a.Tvar.lock ~version:5;
  Alcotest.(check bool) "invalid after version bump" false
    (Rwsets.Rset.validate rs ~owner:1)

let test_rset_validate_own_lock () =
  let rs = Rwsets.Rset.create () in
  let a = Tvar.make 1 in
  let s, _ = Tvar.read_consistent a in
  Vec.push rs { Rwsets.r_lock = a.Tvar.lock; r_seen = s; r_pe = Tvar.id a };
  ignore (Vlock.try_lock a.Tvar.lock ~owner:1);
  Alcotest.(check bool) "own write lock over read version is valid" true
    (Rwsets.Rset.validate rs ~owner:1);
  Vlock.unlock_restore a.Tvar.lock

let test_read_consistent_aborts_on_lock () =
  let a = Tvar.make 1 in
  ignore (Vlock.try_lock a.Tvar.lock ~owner:3);
  Alcotest.check_raises "locked read aborts"
    (Control.Abort_tx Control.Read_locked) (fun () ->
      ignore (Tvar.read_consistent a));
  Vlock.unlock_restore a.Tvar.lock

let prop_wset_last_write_wins =
  QCheck.Test.make ~name:"wset: last write wins per tvar" ~count:200
    QCheck.(list (pair (int_bound 9) small_int))
    (fun writes ->
      let tvs = Array.init 10 (fun _ -> Tvar.make (-1)) in
      let ws = Rwsets.Wset.create () in
      List.iter (fun (i, v) -> ignore (Rwsets.Wset.add ws tvs.(i) v)) writes;
      List.for_all
        (fun i ->
          let expected =
            List.fold_left
              (fun acc (j, v) -> if i = j then Some v else acc)
              None writes
          in
          Rwsets.Wset.find ws tvs.(i) = expected)
        (List.init 10 Fun.id))

let suite =
  [ Alcotest.test_case "wset typed find" `Quick test_wset_find_typed;
    Alcotest.test_case "lock_all + install" `Quick test_lock_all_and_install;
    Alcotest.test_case "lock_all rollback" `Quick
      test_lock_all_fails_and_rolls_back;
    Alcotest.test_case "rset validate" `Quick test_rset_validate;
    Alcotest.test_case "rset validate own lock" `Quick
      test_rset_validate_own_lock;
    Alcotest.test_case "read_consistent aborts on lock" `Quick
      test_read_consistent_aborts_on_lock;
    QCheck_alcotest.to_alcotest prop_wset_last_write_wins ]
