(* Randomised checks of the paper's theorems over generated histories.

   A generator builds small two-process executions: each process runs a
   few transactions over shared registers, acquiring each object's
   protection element before operating on it and releasing it either
   eagerly (after the operation), at commit (classic), or late (held past
   commit, as outherited protection).  Values are assigned by replaying
   the generated interleaving against register semantics, so every
   generated history is an actual execution of *some* machine.

   Properties checked on every generated history H with composition C =
   (the committed transactions of process 1):

   - Theorem 4.4: H relax-serializable and H satisfies outheritance
     w.r.t. C   ==>   H weakly composable w.r.t. C;
   - soundness of the searches: a history that is its own relax-serial
     witness is reported relax-serializable;
   - strong composability implies weak composability (Defs 3.1/3.2). *)

open Histories
open Event

(* ------------------------------------------------------------------ *)
(* Generator                                                           *)

type release_policy = Eager | At_commit | Late

type gen_op_spec = {
  obj_id : int;
  is_write : bool;
  policy : release_policy;
}

type gen_tx_spec = { ops : gen_op_spec list }
type gen_proc_spec = { txs : gen_tx_spec list }

let spec_gen =
  let open QCheck.Gen in
  let op_spec =
    map3
      (fun obj_id is_write p ->
        let policy = match p with 0 -> Eager | 1 -> At_commit | _ -> Late in
        { obj_id; is_write; policy })
      (int_bound 2) bool (int_bound 2)
  in
  let tx_spec = map (fun ops -> { ops }) (list_size (int_range 1 3) op_spec) in
  let proc_spec = map (fun txs -> { txs }) (list_size (int_range 1 3) tx_spec) in
  pair proc_spec proc_spec

(* Lay the two processes' events out in a random but per-process-ordered
   interleaving, computing read values by replaying register semantics.
   Late releases are attached after the *last* commit of the process
   (modelling protection held to the end of a composition). *)
let build_history seed ((p1, p2) : gen_proc_spec * gen_proc_spec) =
  let rng = ref (seed lor 1) in
  let next_bool () =
    rng := (!rng * 48271) mod 2147483647;
    !rng land 1 = 1
  in
  let next_tx =
    let c = ref 0 in
    fun () ->
      incr c;
      !c
  in
  (* Per-process event scripts, as closures over the replay state. *)
  let script proc_id (p : gen_proc_spec) =
    let events = ref [] in
    let emit e = events := e :: !events in
    let late = ref [] in
    List.iter
      (fun txs ->
        let tx = next_tx () in
        emit (`Begin tx);
        List.iter
          (fun (op : gen_op_spec) ->
            emit (`Acquire op.obj_id);
            emit (`Op (tx, op.obj_id, op.is_write));
            match op.policy with
            | Eager -> emit (`Release op.obj_id)
            | At_commit -> emit (`After_commit op.obj_id)
            | Late -> late := op.obj_id :: !late)
          txs.ops;
        emit (`Commit tx))
      p.txs;
    (proc_id, List.rev !events @ List.map (fun o -> `Release_late o) !late)
  in
  let s1 = script 1 p1 and s2 = script 2 p2 in
  (* Interleave, expanding the pseudo-events.  [`After_commit] releases are
     postponed to just after the transaction's commit event; [held] tracks
     per-process holds so acquire/release stay balanced per process. *)
  let expand (proc, evs) =
    let out = ref [] in
    let pending = ref [] in
    List.iter
      (fun e ->
        match e with
        | `Begin tx -> out := Begin { tx; proc } :: !out
        | `Commit tx ->
          out := Commit { tx; proc } :: !out;
          List.iter (fun o -> out := Release { pe = o; proc } :: !out) !pending;
          pending := []
        | `Acquire o -> out := Acquire { pe = o; proc } :: !out
        | `Release o -> out := Release { pe = o; proc } :: !out
        | `After_commit o -> pending := o :: !pending
        | `Op (tx, o, w) -> out := Op { obj = o; tx; op = op "placeholder"; value = w |> Bool.to_int } :: !out
        | `Release_late o -> out := Release { pe = o; proc } :: !out)
      evs;
    List.rev !out
  in
  let e1 = ref (expand s1) and e2 = ref (expand s2) in
  (* A process may only hold each pe once; drop double-acquires that would
     make the script malformed (acquire while already held by self). *)
  let sanitise evs =
    let held = Hashtbl.create 4 in
    List.filter
      (fun e ->
        match e with
        | Acquire { pe; _ } ->
          if Hashtbl.mem held pe then false
          else begin
            Hashtbl.add held pe ();
            true
          end
        | Release { pe; _ } ->
          if Hashtbl.mem held pe then begin
            Hashtbl.remove held pe;
            true
          end
          else false
        | _ -> true)
      evs
  in
  e1 := sanitise !e1;
  e2 := sanitise !e2;
  (* Random merge + value replay. *)
  let registers = Hashtbl.create 4 in
  let write_counter = ref 100 in
  let out = ref [] in
  let value_replay e =
    match e with
    | Op { obj; tx; op = _; value = is_write } ->
      if is_write = 1 then begin
        incr write_counter;
        let v = !write_counter in
        Hashtbl.replace registers obj v;
        Op { obj; tx; op = Event.op ~arg:v "write"; value = v }
      end
      else
        let v = Option.value ~default:0 (Hashtbl.find_opt registers obj) in
        Op { obj; tx; op = Event.op "read"; value = v }
    | e -> e
  in
  let rec merge () =
    match (!e1, !e2) with
    | [], [] -> ()
    | x :: r1, [] ->
      e1 := r1;
      out := value_replay x :: !out;
      merge ()
    | [], y :: r2 ->
      e2 := r2;
      out := value_replay y :: !out;
      merge ()
    | x :: r1, y :: r2 ->
      if next_bool () then begin
        e1 := r1;
        out := value_replay x :: !out
      end
      else begin
        e2 := r2;
        out := value_replay y :: !out
      end;
      merge ()
  in
  merge ();
  History.of_list (List.rev !out)

let env : Spec.env = fun _ -> Spec.register ~init:0

let outcome_bool = function
  | Search.Witness_found -> Some true
  | Search.No_witness -> Some false
  | Search.Unknown -> None

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let composition_of h =
  let of_p1 =
    List.filter (fun t -> History.proc_of_tx h t = 1) (History.committed h)
  in
  if List.length of_p1 >= 2 then
    match Composition.make h of_p1 with Ok c -> Some c | Error _ -> None
  else None

let prop_theorem_4_4 =
  QCheck.Test.make ~name:"Theorem 4.4: outheritance => weakly composable"
    ~count:300
    QCheck.(pair small_int (make spec_gen))
    (fun (seed, spec) ->
      let h = build_history seed spec in
      match History.well_formed h with
      | Error _ -> true (* generator produced junk; vacuous *)
      | Ok () -> (
        match composition_of h with
        | None -> true
        | Some c -> (
          match
            (outcome_bool (Serializability.relax_serializable ~budget:200_000 ~env h),
             Outheritance.satisfies h c)
          with
          | Some true, true -> (
            match
              outcome_bool (Composition.weakly_composable ~budget:200_000 ~env h c)
            with
            | Some b -> b
            | None -> true)
          | _ -> true)))

let prop_self_witness =
  QCheck.Test.make
    ~name:"a legal relax-serial history is relax-serializable" ~count:300
    QCheck.(pair small_int (make spec_gen))
    (fun (seed, spec) ->
      let h = build_history seed spec in
      match History.well_formed h with
      | Error _ -> true
      | Ok () ->
        if History.relax_serial h && History.legal ~env h then
          outcome_bool (Serializability.relax_serializable ~budget:200_000 ~env h)
          <> Some false
        else true)

let prop_strong_implies_weak =
  QCheck.Test.make ~name:"strongly composable => weakly composable" ~count:150
    QCheck.(pair small_int (make spec_gen))
    (fun (seed, spec) ->
      let h = build_history seed spec in
      match History.well_formed h with
      | Error _ -> true
      | Ok () -> (
        match composition_of h with
        | None -> true
        | Some c -> (
          match
            outcome_bool (Composition.strongly_composable ~budget:200_000 ~env h c)
          with
          | Some true ->
            outcome_bool (Composition.weakly_composable ~budget:200_000 ~env h c)
            <> Some false
          | _ -> true)))

(* Guard against vacuity: the implications above are only worth anything
   if the generator regularly produces histories where their premises
   hold.  Sample the generator and require healthy branch coverage. *)
let test_generator_not_vacuous () =
  let gen = QCheck.Gen.pair (QCheck.Gen.int_bound 10_000) spec_gen in
  let rand = Random.State.make [| 7 |] in
  let total = 400 in
  let wf = ref 0 and with_comp = ref 0 and premise_4_4 = ref 0 in
  for _ = 1 to total do
    let seed, spec = QCheck.Gen.generate1 ~rand gen in
    let h = build_history seed spec in
    match History.well_formed h with
    | Error _ -> ()
    | Ok () -> (
      incr wf;
      match composition_of h with
      | None -> ()
      | Some c ->
        incr with_comp;
        if
          Outheritance.satisfies h c
          && outcome_bool (Serializability.relax_serializable ~budget:200_000 ~env h)
             = Some true
        then incr premise_4_4)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "most generated histories are well-formed (%d/%d)" !wf total)
    true
    (!wf > total / 2);
  Alcotest.(check bool)
    (Printf.sprintf "compositions are common (%d/%d)" !with_comp total)
    true
    (!with_comp > total / 4);
  Alcotest.(check bool)
    (Printf.sprintf "Theorem 4.4's premise is exercised (%d/%d)" !premise_4_4
       total)
    true
    (!premise_4_4 > total / 10)

let suite =
  [ Alcotest.test_case "generator is not vacuous" `Quick
      test_generator_not_vacuous;
    QCheck_alcotest.to_alcotest prop_theorem_4_4;
    QCheck_alcotest.to_alcotest prop_self_witness;
    QCheck_alcotest.to_alcotest prop_strong_implies_weak ]
