test/test_eec.ml: Alcotest Atomic Classic_stm Domain Eec Int List Oestm Printf QCheck QCheck_alcotest Result Seqds Set Stm_core Stm_intf String
