test/test_theory.ml: Alcotest Composition Event Histories History List Outheritance Result Search Serializability Spec
