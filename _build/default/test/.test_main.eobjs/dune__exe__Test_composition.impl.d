test/test_composition.ml: Alcotest Classic_stm Explore Histories List Oestm Recorder Result Sched Schedsim Stm_core Stm_intf String
