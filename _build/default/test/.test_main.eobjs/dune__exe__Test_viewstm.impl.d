test/test_viewstm.ml: Alcotest Domain Explore Histories List Recorder Sched Schedsim Stats Stm_core String Test_stm_semantics Viewstm
