test/test_schedsim.ml: Alcotest Classic_stm Explore Hashtbl List Oestm Runtime Sched Schedsim Stm_core Stm_intf String
