test/test_linearizability.ml: Bool Classic_stm Eec Explore Gen Hashtbl List Oestm Printf QCheck QCheck_alcotest Sched Schedsim Seqds Stm_core Stm_intf String
