test/test_stats.ml: Alcotest Control Domain Fun List Stats Stm_core
