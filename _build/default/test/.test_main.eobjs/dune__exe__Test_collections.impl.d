test/test_collections.ml: Alcotest Array Atomic Classic_stm Domain Eec Fun Int List Map Oestm Option QCheck QCheck_alcotest Queue Result Stm_core Stm_intf String
