test/test_elastic.ml: Alcotest Classic_stm Domain Histories List Oestm Recorder Schedsim Stats Stm_core Stm_intf
