test/test_vlock.ml: Alcotest Domain List QCheck QCheck_alcotest Stm_core Vlock
