test/test_stm_semantics.ml: Alcotest Array Atomic Classic_stm Domain List Oestm Stats Stm_core Stm_intf
