test/test_boosting.ml: Alcotest Atomic Boosting Domain Fun Histories List Printf Recorder Result Schedsim Seqds Stm_core
