test/test_ablation.ml: Alcotest Classic_stm Eec Explore List Oestm Schedsim Stm_core Stm_intf String
