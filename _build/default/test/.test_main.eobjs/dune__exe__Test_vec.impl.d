test/test_vec.ml: Alcotest List QCheck QCheck_alcotest Stm_core Vec
