test/test_harness.ml: Alcotest Fun Harness List Printf QCheck QCheck_alcotest
