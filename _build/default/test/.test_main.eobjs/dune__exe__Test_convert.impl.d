test/test_convert.ml: Alcotest Histories Recorder Result Stm_core
