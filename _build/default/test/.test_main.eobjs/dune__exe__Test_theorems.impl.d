test/test_theorems.ml: Alcotest Bool Composition Event Hashtbl Histories History List Option Outheritance Printf QCheck QCheck_alcotest Random Search Serializability Spec
