test/test_rwsets.ml: Alcotest Array Control Fun List QCheck QCheck_alcotest Rwsets Stm_core Tvar Vec Vlock
