(* The recorder-to-history bridge: attribution of events to top-level
   attempts, removal of aborted attempts (including their committed
   children and protection-element events), and the shape of converted
   operation events. *)

open Stm_core

let ev_begin tx proc : Recorder.event = Begin { tx; proc }
let ev_commit tx proc : Recorder.event = Commit { tx; proc }
let ev_abort tx proc : Recorder.event = Abort { tx; proc }
let ev_read pe tx v : Recorder.event = Read { pe; tx; value_repr = v }
let ev_write pe tx v : Recorder.event = Write { pe; tx; value_repr = v }
let ev_acq pe proc : Recorder.event = Acquire { pe; proc }
let ev_rel pe proc : Recorder.event = Release { pe; proc }

let test_simple_commit () =
  let h =
    Histories.Convert.to_history
      [ ev_begin 1 0; ev_acq 5 0; ev_read 5 1 42; ev_commit 1 0; ev_rel 5 0 ]
  in
  Alcotest.(check (list int)) "committed" [ 1 ] (Histories.History.committed h);
  Alcotest.(check int) "five events kept" 5 (Histories.History.length h);
  Alcotest.(check bool) "well-formed" true
    (Result.is_ok (Histories.History.well_formed h))

let test_aborted_attempt_dropped () =
  (* First attempt aborts (with a committed child inside!); the retry
     commits.  Only the retry's events survive. *)
  let h =
    Histories.Convert.to_history
      [ ev_begin 1 0; ev_acq 5 0; ev_read 5 1 0;
        ev_begin 2 0; ev_read 5 2 0; ev_commit 2 0;  (* child commits *)
        ev_abort 1 0; ev_rel 5 0;                    (* ...attempt aborts *)
        ev_begin 3 0; ev_acq 5 0; ev_read 5 3 0; ev_commit 3 0; ev_rel 5 0 ]
  in
  Alcotest.(check (list int)) "only the retry survives" [ 3 ]
    (Histories.History.committed h);
  Alcotest.(check (list int)) "no aborted tx left" []
    (Histories.History.aborted h);
  (* The aborted attempt's acquire/release must be gone too, or the
     retry's acquire would break relax-seriality. *)
  Alcotest.(check bool) "relax-serial" true (Histories.History.relax_serial h);
  Alcotest.(check int) "exactly the retry's events" 5
    (Histories.History.length h)

let test_post_commit_releases_attributed () =
  (* Releases arriving after the top-level commit belong to the attempt
     that just finished: if that attempt aborted they are dropped, if it
     committed they are kept. *)
  let h =
    Histories.Convert.to_history
      [ ev_begin 1 0; ev_acq 5 0; ev_read 5 1 0; ev_abort 1 0; ev_rel 5 0;
        ev_begin 2 0; ev_acq 5 0; ev_read 5 2 0; ev_commit 2 0; ev_rel 5 0 ]
  in
  Alcotest.(check int) "aborted attempt with trailing release dropped" 5
    (Histories.History.length h);
  Alcotest.(check bool) "relax-serial" true (Histories.History.relax_serial h)

let test_nested_commits_kept () =
  let h =
    Histories.Convert.to_history
      [ ev_begin 1 0; ev_begin 2 0; ev_acq 5 0; ev_read 5 2 7; ev_commit 2 0;
        ev_begin 3 0; ev_write 6 3 9; ev_acq 6 0; ev_commit 3 0;
        ev_commit 1 0; ev_rel 5 0; ev_rel 6 0 ]
  in
  Alcotest.(check (list int)) "children and root committed" [ 2; 3; 1 ]
    (Histories.History.committed h);
  Alcotest.(check bool) "well-formed (nested)" true
    (Result.is_ok (Histories.History.well_formed h))

let test_ops_become_register_ops () =
  let h =
    Histories.Convert.to_history
      [ ev_begin 1 0; ev_acq 5 0; ev_write 5 1 42; ev_read 5 1 42;
        ev_commit 1 0; ev_rel 5 0 ]
  in
  let env = Histories.Spec.all_registers ~init:(fun _ -> 0) in
  Alcotest.(check bool) "write-then-read legal" true
    (Histories.History.legal ~env h);
  Alcotest.(check (list int)) "object ids preserved" [ 5 ]
    (Histories.History.objects h)

let test_interleaved_processes () =
  let h =
    Histories.Convert.to_history
      [ ev_begin 1 0; ev_begin 2 1; ev_acq 5 0; ev_read 5 1 0; ev_abort 1 0;
        ev_rel 5 0; ev_acq 5 1; ev_read 5 2 0; ev_commit 2 1; ev_rel 5 1 ]
  in
  Alcotest.(check (list int)) "p1's tx survives" [ 2 ]
    (Histories.History.committed h);
  Alcotest.(check (list int)) "p0's aborted attempt dropped" []
    (Histories.History.aborted h)

let suite =
  [ Alcotest.test_case "simple commit" `Quick test_simple_commit;
    Alcotest.test_case "aborted attempts dropped wholesale" `Quick
      test_aborted_attempt_dropped;
    Alcotest.test_case "post-commit releases attributed" `Quick
      test_post_commit_releases_attributed;
    Alcotest.test_case "nested commits kept" `Quick test_nested_commits_kept;
    Alcotest.test_case "ops become register ops" `Quick
      test_ops_become_register_ops;
    Alcotest.test_case "interleaved processes" `Quick
      test_interleaved_processes ]
