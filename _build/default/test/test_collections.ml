(* Maps and queues of the package: model-based tests against Stdlib
   references, atomicity of composed operations under concurrency. *)

open Stm_core

module IntMap = Map.Make (Int)

module Map_battery
    (S : Stm_intf.S)
    (Mk : functor (S' : Stm_intf.S) (K : Eec.Set_intf.ORDERED) ->
      Eec.Set_intf.SET with type elt = K.t) (Name : sig
      val name : string
    end) =
struct
  module M = Eec.Tx_map.Make (S) (Mk) (Eec.Set_intf.Int_key) (String)

  let test_basic () =
    let m = M.create () in
    Alcotest.(check (option string)) "get empty" None (M.get m 1);
    Alcotest.(check (option string)) "first put" None (M.put m 1 "a");
    Alcotest.(check (option string)) "get" (Some "a") (M.get m 1);
    Alcotest.(check (option string)) "overwrite returns prev" (Some "a")
      (M.put m 1 "b");
    Alcotest.(check (option string)) "get new" (Some "b") (M.get m 1);
    Alcotest.(check bool) "mem" true (M.mem m 1);
    Alcotest.(check (option string)) "remove returns prev" (Some "b")
      (M.remove m 1);
    Alcotest.(check (option string)) "remove absent" None (M.remove m 1);
    Alcotest.(check bool) "gone" false (M.mem m 1)

  let test_put_if_absent () =
    let m = M.create () in
    Alcotest.(check (option string)) "fires when absent" None
      (M.put_if_absent m 1 "a");
    Alcotest.(check (option string)) "blocked when present" (Some "a")
      (M.put_if_absent m 1 "b");
    Alcotest.(check (option string)) "binding unchanged" (Some "a") (M.get m 1)

  let test_update () =
    let m = M.create () in
    ignore (M.put m 1 "x");
    let prev =
      M.update m 1 (function Some v -> Some (v ^ "!") | None -> Some "?")
    in
    Alcotest.(check (option string)) "update sees previous" (Some "x") prev;
    Alcotest.(check (option string)) "updated" (Some "x!") (M.get m 1);
    ignore (M.update m 1 (fun _ -> None));
    Alcotest.(check bool) "update to None removes" false (M.mem m 1);
    ignore (M.update m 2 (function None -> Some "new" | s -> s));
    Alcotest.(check (option string)) "update inserts" (Some "new") (M.get m 2)

  let test_bindings_sorted () =
    let m = M.create () in
    M.put_all m [ (3, "c"); (1, "a"); (2, "b") ];
    Alcotest.(check (list (pair int string))) "bindings ascending"
      [ (1, "a"); (2, "b"); (3, "c") ]
      (M.bindings m);
    Alcotest.(check int) "size" 3 (M.size m);
    Alcotest.(check bool) "remove_all" true (M.remove_all m [ 1; 9 ]);
    Alcotest.(check (list (pair int string))) "after remove_all"
      [ (2, "b"); (3, "c") ]
      (M.bindings m);
    Alcotest.(check bool) "invariants" true
      (Result.is_ok (M.check_invariants m))

  let prop_model =
    QCheck.Test.make
      ~name:(Name.name ^ ": map agrees with Stdlib.Map")
      ~count:120
      QCheck.(list (pair (int_bound 15) (int_bound 2)))
      (fun cmds ->
        let m = M.create () in
        let model = ref IntMap.empty in
        List.for_all
          (fun (k, tag) ->
            match tag with
            | 0 ->
              let v = string_of_int k in
              let prev = IntMap.find_opt k !model in
              model := IntMap.add k v !model;
              M.put m k v = prev
            | 1 ->
              let prev = IntMap.find_opt k !model in
              model := IntMap.remove k !model;
              M.remove m k = prev
            | _ -> M.get m k = IntMap.find_opt k !model)
          cmds
        && M.bindings m = IntMap.bindings !model
        && M.size m = IntMap.cardinal !model)

  let test_concurrent_disjoint_keys () =
    (* Domains own disjoint key ranges: the final map is exactly the union
       of what each wrote. *)
    let m = M.create () in
    let per = 50 in
    let work d () =
      for i = 0 to per - 1 do
        let k = (d * 1000) + i in
        ignore (M.put m k (string_of_int k));
        if i mod 3 = 0 then
          ignore (M.update m k (Option.map (fun v -> v ^ "*")))
      done
    in
    let domains = List.init 4 (fun d -> Domain.spawn (work d)) in
    List.iter Domain.join domains;
    Alcotest.(check int) "all bindings present" (4 * per) (M.size m);
    Alcotest.(check bool) "invariants" true
      (Result.is_ok (M.check_invariants m))

  let test_concurrent_counters () =
    (* Many domains increment shared counters through [update]: no lost
       updates. *)
    let module MC = Eec.Tx_map.Make (S) (Mk) (Eec.Set_intf.Int_key) (Int) in
    let m = MC.create () in
    let per = 150 and keys = 4 in
    let work seed () =
      let st = ref (seed + 1) in
      for _ = 1 to per do
        st := (!st * 48271) mod 2147483647;
        let k = !st mod keys in
        ignore
          (MC.update m k (function None -> Some 1 | Some n -> Some (n + 1)))
      done
    in
    let domains = List.init 4 (fun i -> Domain.spawn (work i)) in
    List.iter Domain.join domains;
    let total =
      List.fold_left (fun acc (_, n) -> acc + n) 0 (MC.bindings m)
    in
    Alcotest.(check int) "no lost increments" (4 * per) total

  let suite =
    [ Alcotest.test_case (Name.name ^ " basics") `Quick test_basic;
      Alcotest.test_case (Name.name ^ " put_if_absent") `Quick
        test_put_if_absent;
      Alcotest.test_case (Name.name ^ " update") `Quick test_update;
      Alcotest.test_case (Name.name ^ " bindings/size") `Quick
        test_bindings_sorted;
      QCheck_alcotest.to_alcotest prop_model;
      Alcotest.test_case (Name.name ^ " concurrent disjoint keys") `Slow
        test_concurrent_disjoint_keys;
      Alcotest.test_case (Name.name ^ " concurrent counters") `Slow
        test_concurrent_counters ]
end

module Queue_battery (S : Stm_intf.S) (Name : sig
  val name : string
end) =
struct
  module Q = Eec.Tx_queue.Make (S)

  let test_fifo () =
    let q = Q.create () in
    Alcotest.(check bool) "fresh empty" true (Q.is_empty q);
    Alcotest.(check (option int)) "dequeue empty" None (Q.dequeue_opt q);
    Q.enqueue q 1;
    Q.enqueue q 2;
    Q.enqueue q 3;
    Alcotest.(check (option int)) "peek" (Some 1) (Q.peek_opt q);
    Alcotest.(check int) "size" 3 (Q.size q);
    Alcotest.(check (list int)) "to_list order" [ 1; 2; 3 ] (Q.to_list q);
    Alcotest.(check (option int)) "dequeue 1" (Some 1) (Q.dequeue_opt q);
    Alcotest.(check (option int)) "dequeue 2" (Some 2) (Q.dequeue_opt q);
    Q.enqueue q 4;
    Alcotest.(check (list int)) "wrap" [ 3; 4 ] (Q.to_list q);
    Alcotest.(check (option int)) "dequeue 3" (Some 3) (Q.dequeue_opt q);
    Alcotest.(check (option int)) "dequeue 4" (Some 4) (Q.dequeue_opt q);
    Alcotest.(check bool) "empty again" true (Q.is_empty q);
    Q.enqueue q 9;
    Alcotest.(check (list int)) "usable after emptying" [ 9 ] (Q.to_list q)

  let prop_model =
    QCheck.Test.make ~name:(Name.name ^ ": queue agrees with Stdlib.Queue")
      ~count:150
      QCheck.(list (option (int_bound 50)))
      (fun cmds ->
        (* Some v = enqueue v; None = dequeue *)
        let q = Q.create () in
        let model = Queue.create () in
        List.for_all
          (fun cmd ->
            match cmd with
            | Some v ->
              Q.enqueue q v;
              Queue.push v model;
              true
            | None -> Q.dequeue_opt q = Queue.take_opt model)
          cmds
        && Q.to_list q = List.of_seq (Queue.to_seq model)
        && Q.size q = Queue.length model)

  let test_producers_consumers () =
    let q = Q.create () in
    let produced = 200 and producers = 2 and consumers = 2 in
    let consumed = Array.make consumers [] in
    let done_producing = Atomic.make 0 in
    let producer d () =
      for i = 0 to produced - 1 do
        Q.enqueue q ((d * 10_000) + i)
      done;
      ignore (Atomic.fetch_and_add done_producing 1)
    in
    let consumer c () =
      let continue = ref true in
      while !continue do
        match Q.dequeue_opt q with
        | Some v -> consumed.(c) <- v :: consumed.(c)
        | None ->
          if Atomic.get done_producing = producers && Q.is_empty q then
            continue := false
          else Domain.cpu_relax ()
      done
    in
    let ds =
      List.init producers (fun d -> Domain.spawn (producer d))
      @ List.init consumers (fun c -> Domain.spawn (consumer c))
    in
    List.iter Domain.join ds;
    let all = Array.to_list consumed |> List.concat |> List.sort compare in
    let expected =
      List.concat_map
        (fun d -> List.init produced (fun i -> (d * 10_000) + i))
        (List.init producers Fun.id)
      |> List.sort compare
    in
    Alcotest.(check int) "every item consumed exactly once"
      (List.length expected) (List.length all);
    Alcotest.(check bool) "no duplicates or losses" true (all = expected)

  let test_atomic_drain () =
    (* drain_into moves everything in one transaction: an observer never
       sees items split across the two queues. *)
    let a = Q.create () and b = Q.create () in
    let module S' = S in
    let n = 32 in
    Q.enqueue_all a (List.init n Fun.id);
    let stop = Atomic.make false in
    let bad = Atomic.make 0 in
    let observer () =
      while not (Atomic.get stop) do
        let totals =
          S'.atomic ~mode:Stm_intf.Elastic (fun _ -> (Q.size a, Q.size b))
        in
        match totals with
        | x, y when x + y = n && (x = 0 || y = 0) -> ()
        | _ -> ignore (Atomic.fetch_and_add bad 1)
      done
    in
    let mover () =
      for _ = 1 to 20 do
        ignore (Q.drain_into ~src:a ~dst:b);
        ignore (Q.drain_into ~src:b ~dst:a)
      done;
      Atomic.set stop true
    in
    let ds = [ Domain.spawn observer; Domain.spawn mover ] in
    List.iter Domain.join ds;
    Alcotest.(check int) "drain is atomic" 0 (Atomic.get bad);
    Alcotest.(check int) "nothing lost" n (Q.size a + Q.size b)

  let suite =
    [ Alcotest.test_case (Name.name ^ " fifo") `Quick test_fifo;
      QCheck_alcotest.to_alcotest prop_model;
      Alcotest.test_case (Name.name ^ " producers/consumers") `Slow
        test_producers_consumers;
      Alcotest.test_case (Name.name ^ " atomic drain") `Slow test_atomic_drain ]
end

module Skip_map_oe =
  Map_battery (Oestm.Oe) (Eec.Skip_list_set.Make)
    (struct let name = "skipmap/OE" end)

module Hash_map_oe =
  Map_battery (Oestm.Oe) (Eec.Hash_set.Make)
    (struct let name = "hashmap/OE" end)

module Ll_map_tl2 =
  Map_battery (Classic_stm.Tl2) (Eec.Linked_list_set.Make)
    (struct let name = "llmap/TL2" end)

module Queue_oe = Queue_battery (Oestm.Oe) (struct let name = "queue/OE" end)

module Queue_swiss =
  Queue_battery (Classic_stm.Swisstm) (struct let name = "queue/Swiss" end)

let suites =
  [ ("map:skiplist-OE", Skip_map_oe.suite);
    ("map:hashset-OE", Hash_map_oe.suite);
    ("map:linkedlist-TL2", Ll_map_tl2.suite);
    ("queue:OE", Queue_oe.suite);
    ("queue:SwissTM", Queue_swiss.suite) ]
