(* Tests of the executable theory (Sections II-IV), including the paper's
   own examples:
   - the relax-serializable-but-not-serializable history of Section II.B;
   - the Fig. 3 history of Theorem 4.2 (outheritance holds, strong
     composition fails, weak composition holds);
   - a Fig. 1-style history (elastic insertIfAbsent without outheritance)
     that violates both outheritance and weak composability. *)

open Histories
open Event

let reg0 = Spec.register ~init:0

let env_registers : Spec.env = fun _ -> reg0

(* ------------------------------------------------------------------ *)
(* Specifications                                                      *)

let test_register_spec () =
  let r = Event.op "read" and w v = Event.op ~arg:v "write" in
  Alcotest.(check bool) "read initial" true (Spec.accepts reg0 [ (r, 0) ]);
  Alcotest.(check bool) "read wrong initial" false (Spec.accepts reg0 [ (r, 1) ]);
  Alcotest.(check bool) "write then read" true
    (Spec.accepts reg0 [ (w 5, 5); (r, 5) ]);
  Alcotest.(check bool) "stale read rejected" false
    (Spec.accepts reg0 [ (w 5, 5); (r, 0) ])

let test_counter_spec () =
  let inc = Event.op "inc" in
  Alcotest.(check bool) "1,2,3 accepted" true
    (Spec.accepts Spec.counter [ (inc, 1); (inc, 2); (inc, 3) ]);
  Alcotest.(check bool) "1,3,2 rejected" false
    (Spec.accepts Spec.counter [ (inc, 1); (inc, 3); (inc, 2) ])

let test_set_spec () =
  let add x = Event.op ~arg:x "add"
  and remove x = Event.op ~arg:x "remove"
  and contains x = Event.op ~arg:x "contains" in
  Alcotest.(check bool) "set behaviour" true
    (Spec.accepts Spec.int_set
       [ (add 1, 1); (add 1, 0); (contains 1, 1); (remove 1, 1);
         (contains 1, 0); (remove 1, 0) ]);
  Alcotest.(check bool) "wrong membership rejected" false
    (Spec.accepts Spec.int_set [ (add 1, 1); (contains 1, 0) ])

(* ------------------------------------------------------------------ *)
(* History basics                                                      *)

(* Two sequential transactions of one process. *)
let simple_history =
  History.of_list
    [ Begin { tx = 1; proc = 1 };
      Acquire { pe = 10; proc = 1 };
      Op { obj = 10; tx = 1; op = op ~arg:5 "write"; value = 5 };
      Commit { tx = 1; proc = 1 };
      Release { pe = 10; proc = 1 };
      Begin { tx = 2; proc = 1 };
      Acquire { pe = 10; proc = 1 };
      Op { obj = 10; tx = 2; op = op "read"; value = 5 };
      Commit { tx = 2; proc = 1 };
      Release { pe = 10; proc = 1 } ]

let test_history_queries () =
  let h = simple_history in
  Alcotest.(check (list int)) "committed" [ 1; 2 ] (History.committed h);
  Alcotest.(check (list int)) "live" [] (History.live h);
  Alcotest.(check bool) "t1 <H t2" true (History.precedes h 1 2);
  Alcotest.(check bool) "not t2 <H t1" false (History.precedes h 2 1);
  Alcotest.(check bool) "not concurrent" false (History.concurrent h 1 2);
  Alcotest.(check bool) "sequential" true (History.sequential h);
  Alcotest.(check bool) "well-formed" true
    (Result.is_ok (History.well_formed h));
  Alcotest.(check bool) "relax-serial" true (History.relax_serial h);
  Alcotest.(check bool) "legal" true (History.legal ~env:env_registers h);
  (* Classic transactions release only after commit, so the accessed
     location is in the minimal protected set. *)
  Alcotest.(check (list int)) "pmin t1 = {l10}" [ 10 ] (History.pmin h 1)

let test_pmin () =
  (* pe 7 stays held across the commit: it is in Pmin; pe 8 is released
     before the commit: it is not. *)
  let h =
    History.of_list
      [ Begin { tx = 1; proc = 1 };
        Acquire { pe = 8; proc = 1 };
        Op { obj = 8; tx = 1; op = op "read"; value = 0 };
        Acquire { pe = 7; proc = 1 };
        Op { obj = 7; tx = 1; op = op "read"; value = 0 };
        Release { pe = 8; proc = 1 };
        Commit { tx = 1; proc = 1 };
        Release { pe = 7; proc = 1 } ]
  in
  Alcotest.(check (list int)) "pmin" [ 7 ] (History.pmin h 1);
  Alcotest.(check (list int)) "kernel" [ 7 ] (History.kernel h 1)

let test_well_formed_rejects () =
  let bad =
    History.of_list
      [ Begin { tx = 1; proc = 1 }; Commit { tx = 2; proc = 1 } ]
  in
  Alcotest.(check bool) "commit without begin rejected" true
    (Result.is_error (History.well_formed bad));
  let dup =
    History.of_list [ Begin { tx = 1; proc = 1 }; Begin { tx = 1; proc = 1 } ]
  in
  Alcotest.(check bool) "duplicate begin rejected" true
    (Result.is_error (History.well_formed dup))

(* ------------------------------------------------------------------ *)
(* The Section II.B example: relax-serializable but not serializable   *)

let section2b_history =
  (* Objects/pes: 1, 2, 3.  t1@p1, t2@p2.  Values chosen so that register
     legality forces t1 < t2 on o1 and t2 < t1 on o3 — the cycle of the
     paper. *)
  History.of_list
    [ Begin { tx = 1; proc = 1 };
      Acquire { pe = 1; proc = 1 };
      Op { obj = 1; tx = 1; op = op "read"; value = 0 };
      Acquire { pe = 2; proc = 1 };
      Op { obj = 2; tx = 1; op = op "read"; value = 0 };
      Release { pe = 1; proc = 1 };
      Begin { tx = 2; proc = 2 };
      Acquire { pe = 1; proc = 2 };
      Op { obj = 1; tx = 2; op = op ~arg:5 "write"; value = 5 };
      Acquire { pe = 3; proc = 2 };
      Op { obj = 3; tx = 2; op = op "read"; value = 0 };
      Commit { tx = 2; proc = 2 };
      Release { pe = 1; proc = 2 };
      Release { pe = 3; proc = 2 };
      Acquire { pe = 3; proc = 1 };
      Op { obj = 3; tx = 1; op = op ~arg:7 "write"; value = 7 };
      Commit { tx = 1; proc = 1 };
      Release { pe = 2; proc = 1 };
      Release { pe = 3; proc = 1 } ]

let test_section2b () =
  let h = section2b_history in
  Alcotest.(check bool) "well-formed" true
    (Result.is_ok (History.well_formed h));
  Alcotest.(check bool) "itself relax-serial" true (History.relax_serial h);
  Alcotest.(check bool) "not serializable" false
    (Serializability.serializable ~env:env_registers h);
  Alcotest.(check bool) "relax-serializable" true
    (Serializability.relax_serializable ~env:env_registers h
    = Search.Witness_found)

(* ------------------------------------------------------------------ *)
(* Fig. 3 — Theorem 4.2                                                *)

(* Objects: x = register (obj 1, pe 1), c = counter (obj 2, pe 2).
   t1, t3 executed by p1; t2 by p2; C = {t1, t3}. *)
let fig3_history =
  History.of_list
    [ Begin { tx = 1; proc = 1 };
      Acquire { pe = 1; proc = 1 };
      Op { obj = 1; tx = 1; op = op ~arg:2 "write"; value = 2 };
      Commit { tx = 1; proc = 1 };
      Begin { tx = 3; proc = 1 };
      Acquire { pe = 2; proc = 1 };
      Op { obj = 2; tx = 3; op = op "inc"; value = 1 };
      Release { pe = 2; proc = 1 };
      Begin { tx = 2; proc = 2 };
      Acquire { pe = 2; proc = 2 };
      Op { obj = 2; tx = 2; op = op "inc"; value = 2 };
      Commit { tx = 2; proc = 2 };
      Release { pe = 2; proc = 2 };
      Acquire { pe = 2; proc = 1 };
      Op { obj = 2; tx = 3; op = op "inc"; value = 3 };
      Release { pe = 2; proc = 1 };
      Op { obj = 1; tx = 3; op = op "read"; value = 2 };
      Commit { tx = 3; proc = 1 };
      Release { pe = 1; proc = 1 } ]

let fig3_env : Spec.env =
 fun obj -> if obj = 2 then Spec.counter else reg0

let test_fig3 () =
  let h = fig3_history in
  Alcotest.(check bool) "well-formed" true
    (Result.is_ok (History.well_formed h));
  let c = Composition.make_exn h [ 1; 3 ] in
  Alcotest.(check int) "sup is t3" 3 (Composition.sup c);
  Alcotest.(check (list int)) "Pmin(t1) = {l1}" [ 1 ] (History.pmin h 1);
  Alcotest.(check (list int)) "Pmin(t3) empty" [] (History.pmin h 3);
  Alcotest.(check bool) "satisfies outheritance" true
    (Outheritance.satisfies h c);
  Alcotest.(check bool) "relax-serializable" true
    (Serializability.relax_serializable ~env:fig3_env h = Search.Witness_found);
  Alcotest.(check bool) "not serializable" false
    (Serializability.serializable ~env:fig3_env h);
  Alcotest.(check bool) "NOT strongly composable (Thm 4.2)" true
    (Composition.strongly_composable ~env:fig3_env h c = Search.No_witness);
  Alcotest.(check bool) "weakly composable (Thm 4.4)" true
    (Composition.weakly_composable ~env:fig3_env h c = Search.Witness_found)

(* ------------------------------------------------------------------ *)
(* Fig. 1 — composing elastic transactions without outheritance        *)

(* insertIfAbsent(x, y) composed from t1 = contains(y) and t3 = insert(x);
   a concurrent t4 inserts y between the two.  Object 5 is the node where
   y would live, object 6 the node for x.  Without outheritance t1's
   protection of node 5 ends right after its commit — the history violates
   outheritance and is not weakly composable. *)
let fig1_broken_history =
  History.of_list
    [ Begin { tx = 1; proc = 1 };
      Acquire { pe = 5; proc = 1 };
      Op { obj = 5; tx = 1; op = op "read"; value = 0 };
      Commit { tx = 1; proc = 1 };
      Release { pe = 5; proc = 1 };
      Begin { tx = 4; proc = 2 };
      Acquire { pe = 5; proc = 2 };
      Op { obj = 5; tx = 4; op = op ~arg:9 "write"; value = 9 };
      Commit { tx = 4; proc = 2 };
      Release { pe = 5; proc = 2 };
      Begin { tx = 3; proc = 1 };
      Acquire { pe = 6; proc = 1 };
      Op { obj = 6; tx = 3; op = op ~arg:7 "write"; value = 7 };
      Commit { tx = 3; proc = 1 };
      Release { pe = 6; proc = 1 } ]

let test_fig1_broken () =
  let h = fig1_broken_history in
  let c = Composition.make_exn h [ 1; 3 ] in
  Alcotest.(check (list int)) "Pmin(t1) = {l5}" [ 5 ] (History.pmin h 1);
  Alcotest.(check bool) "outheritance violated" false
    (Outheritance.satisfies h c);
  Alcotest.(check int) "exactly one violation" 1
    (List.length (Outheritance.violations h c));
  Alcotest.(check bool) "NOT weakly composable (Thm 4.3 direction)" true
    (Composition.weakly_composable ~env:env_registers h c = Search.No_witness);
  (* The history itself is still perfectly relax-serializable — the
     composition, not the individual transactions, is what breaks. *)
  Alcotest.(check bool) "relax-serializable" true
    (Serializability.relax_serializable ~env:env_registers h
    = Search.Witness_found)

(* The OE-STM version of the same scenario: the concurrent insert of y is
   delayed until after the whole composition (the conflict would have been
   detected), and t1's protection element is released only after t3
   commits.  Outheritance holds and the composition is weakly composable. *)
let fig1_outherit_history =
  History.of_list
    [ Begin { tx = 1; proc = 1 };
      Acquire { pe = 5; proc = 1 };
      Op { obj = 5; tx = 1; op = op "read"; value = 0 };
      Commit { tx = 1; proc = 1 };
      Begin { tx = 3; proc = 1 };
      Acquire { pe = 6; proc = 1 };
      Op { obj = 6; tx = 3; op = op ~arg:7 "write"; value = 7 };
      Commit { tx = 3; proc = 1 };
      Release { pe = 5; proc = 1 };
      Release { pe = 6; proc = 1 };
      Begin { tx = 4; proc = 2 };
      Acquire { pe = 5; proc = 2 };
      Op { obj = 5; tx = 4; op = op ~arg:9 "write"; value = 9 };
      Commit { tx = 4; proc = 2 };
      Release { pe = 5; proc = 2 } ]

let test_fig1_outherit () =
  let h = fig1_outherit_history in
  let c = Composition.make_exn h [ 1; 3 ] in
  Alcotest.(check bool) "outheritance holds" true (Outheritance.satisfies h c);
  Alcotest.(check bool) "weakly composable" true
    (Composition.weakly_composable ~env:env_registers h c
    = Search.Witness_found);
  Alcotest.(check bool) "strongly composable too" true
    (Composition.strongly_composable ~env:env_registers h c
    = Search.Witness_found)

(* ------------------------------------------------------------------ *)
(* Composition validation                                              *)

let test_composition_validation () =
  let h = fig3_history in
  Alcotest.(check bool) "singleton rejected" true
    (Result.is_error (Composition.make h [ 1 ]));
  Alcotest.(check bool) "cross-process rejected" true
    (Result.is_error (Composition.make h [ 1; 2 ]));
  Alcotest.(check bool) "valid pair accepted" true
    (Result.is_ok (Composition.make h [ 1; 3 ]))

let test_serializable_positive () =
  Alcotest.(check bool) "simple history serializable" true
    (Serializability.serializable ~env:env_registers simple_history)

(* ------------------------------------------------------------------ *)
(* The search engine itself                                            *)

let test_search_rejects_incomplete () =
  let live_history = History.of_list [ Begin { tx = 1; proc = 1 } ] in
  Alcotest.check_raises "live transactions rejected"
    (Invalid_argument "Search.prepare: history has live transactions")
    (fun () -> ignore (Search.prepare live_history))

let test_search_budget () =
  (* A tiny budget must yield Unknown, not a wrong verdict. *)
  Alcotest.(check bool) "budget exhaustion reported" true
    (Serializability.relax_serializable ~budget:1 ~env:env_registers
       section2b_history
    = Search.Unknown)

let test_search_coords () =
  let prepared = Search.prepare simple_history in
  let commit1 =
    Search.find_coord prepared (function
      | Commit { tx = 1; _ } -> true
      | _ -> false)
  in
  Alcotest.(check bool) "commit of t1 found" true (commit1 <> None);
  (match commit1 with
  | Some coord ->
    Alcotest.(check bool) "not consumed at start" false
      (Search.consumed ~positions:[| 0 |] coord);
    Alcotest.(check bool) "consumed after the whole sequence" true
      (Search.consumed ~positions:[| History.length simple_history |] coord)
  | None -> ());
  Alcotest.(check bool) "find_last_coord finds something" true
    (Search.find_last_coord prepared (function Release _ -> true | _ -> false)
    <> None)

let test_illegal_history_has_no_witness () =
  (* A read returning a value never written can have no legal witness. *)
  let h =
    History.of_list
      [ Begin { tx = 1; proc = 1 };
        Acquire { pe = 1; proc = 1 };
        Op { obj = 1; tx = 1; op = op "read"; value = 77 };
        Commit { tx = 1; proc = 1 };
        Release { pe = 1; proc = 1 } ]
  in
  Alcotest.(check bool) "no witness for an illegal read" true
    (Serializability.relax_serializable ~env:env_registers h
    = Search.No_witness);
  Alcotest.(check bool) "not serializable either" false
    (Serializability.serializable ~env:env_registers h)

let test_pe_overlap_needs_reordering () =
  (* Two processes hold the same protection element at once in H; a
     witness must serialise the holds — possible here, so the history is
     relax-serializable even though it is not relax-serial itself. *)
  let h =
    History.of_list
      [ Begin { tx = 1; proc = 1 };
        Acquire { pe = 1; proc = 1 };
        Begin { tx = 2; proc = 2 };
        Acquire { pe = 1; proc = 2 };
        Op { obj = 1; tx = 1; op = op "read"; value = 0 };
        Op { obj = 1; tx = 2; op = op "read"; value = 0 };
        Commit { tx = 1; proc = 1 };
        Release { pe = 1; proc = 1 };
        Commit { tx = 2; proc = 2 };
        Release { pe = 1; proc = 2 } ]
  in
  Alcotest.(check bool) "overlapping holds as recorded" false
    (History.relax_serial h);
  Alcotest.(check bool) "still relax-serializable via reordering" true
    (Serializability.relax_serializable ~env:env_registers h
    = Search.Witness_found)

let suite =
  [ Alcotest.test_case "register spec" `Quick test_register_spec;
    Alcotest.test_case "counter spec" `Quick test_counter_spec;
    Alcotest.test_case "set spec" `Quick test_set_spec;
    Alcotest.test_case "history queries" `Quick test_history_queries;
    Alcotest.test_case "pmin / kernel" `Quick test_pmin;
    Alcotest.test_case "well-formedness rejections" `Quick
      test_well_formed_rejects;
    Alcotest.test_case "serializable (positive)" `Quick
      test_serializable_positive;
    Alcotest.test_case "Section II.B example" `Quick test_section2b;
    Alcotest.test_case "Fig. 3 / Theorem 4.2" `Quick test_fig3;
    Alcotest.test_case "Fig. 1 broken composition" `Quick test_fig1_broken;
    Alcotest.test_case "Fig. 1 with outheritance" `Quick test_fig1_outherit;
    Alcotest.test_case "composition validation" `Quick
      test_composition_validation;
    Alcotest.test_case "search rejects incomplete histories" `Quick
      test_search_rejects_incomplete;
    Alcotest.test_case "search budget exhaustion" `Quick test_search_budget;
    Alcotest.test_case "search coordinates" `Quick test_search_coords;
    Alcotest.test_case "illegal history has no witness" `Quick
      test_illegal_history_has_no_witness;
    Alcotest.test_case "overlapping holds need reordering" `Quick
      test_pe_overlap_needs_reordering ]
