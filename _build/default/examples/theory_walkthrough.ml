(* A guided tour of the paper's theory (Sections II-IV), executable.

   Walks through:
   1. the Section II.B history that is relax-serializable but NOT
      serializable (finer-grained interleaving than classic transactions
      allow);
   2. the Fig. 3 history of Theorem 4.2 - outheritance holds, weak
      composability holds, but STRONG composability fails, showing why the
      paper settles on the weak criterion;
   3. minimal protected sets and kernels along the way.

   Run with:  dune exec examples/theory_walkthrough.exe *)

open Histories
open Event

let check name b = Printf.printf "  %-46s %s\n" name (if b then "yes" else "NO")

let outcome = function
  | Search.Witness_found -> true
  | Search.No_witness -> false
  | Search.Unknown -> failwith "search budget exhausted"

(* ---------------------------------------------------------------- *)

let section_2b () =
  print_endline "== Section II.B: relaxation buys admissible histories ==";
  (* t1 reads o1 and o2 then writes o3; t2 writes o1 and reads o3.
     Values force t1 before t2 on o1 but t2 before t1 on o3: a cycle for
     classic serializability that relax-serializability tolerates because
     the protection elements never overlap. *)
  let h =
    History.of_list
      [ Begin { tx = 1; proc = 1 };
        Acquire { pe = 1; proc = 1 };
        Op { obj = 1; tx = 1; op = op "read"; value = 0 };
        Acquire { pe = 2; proc = 1 };
        Op { obj = 2; tx = 1; op = op "read"; value = 0 };
        Release { pe = 1; proc = 1 };
        Begin { tx = 2; proc = 2 };
        Acquire { pe = 1; proc = 2 };
        Op { obj = 1; tx = 2; op = op ~arg:5 "write"; value = 5 };
        Acquire { pe = 3; proc = 2 };
        Op { obj = 3; tx = 2; op = op "read"; value = 0 };
        Commit { tx = 2; proc = 2 };
        Release { pe = 1; proc = 2 };
        Release { pe = 3; proc = 2 };
        Acquire { pe = 3; proc = 1 };
        Op { obj = 3; tx = 1; op = op ~arg:7 "write"; value = 7 };
        Commit { tx = 1; proc = 1 };
        Release { pe = 2; proc = 1 };
        Release { pe = 3; proc = 1 } ]
  in
  let env : Spec.env = fun _ -> Spec.register ~init:0 in
  Format.printf "%a" History.pp h;
  check "well-formed" (Result.is_ok (History.well_formed h));
  check "serializable (classic)" (Serializability.serializable ~env h);
  check "relax-serializable" (outcome (Serializability.relax_serializable ~env h));
  print_newline ()

let figure_3 () =
  print_endline "== Fig. 3 / Theorem 4.2: outheritance vs strong composition ==";
  (* x is a register (object 1), c a counter (object 2).  p1 composes
     C = {t1, t3}; p2 runs t2 in the middle, incrementing the counter. *)
  let h =
    History.of_list
      [ Begin { tx = 1; proc = 1 };
        Acquire { pe = 1; proc = 1 };
        Op { obj = 1; tx = 1; op = op ~arg:2 "write"; value = 2 };
        Commit { tx = 1; proc = 1 };
        Begin { tx = 3; proc = 1 };
        Acquire { pe = 2; proc = 1 };
        Op { obj = 2; tx = 3; op = op "inc"; value = 1 };
        Release { pe = 2; proc = 1 };
        Begin { tx = 2; proc = 2 };
        Acquire { pe = 2; proc = 2 };
        Op { obj = 2; tx = 2; op = op "inc"; value = 2 };
        Commit { tx = 2; proc = 2 };
        Release { pe = 2; proc = 2 };
        Acquire { pe = 2; proc = 1 };
        Op { obj = 2; tx = 3; op = op "inc"; value = 3 };
        Release { pe = 2; proc = 1 };
        Op { obj = 1; tx = 3; op = op "read"; value = 2 };
        Commit { tx = 3; proc = 1 };
        Release { pe = 1; proc = 1 } ]
  in
  let env : Spec.env =
    fun objd -> if objd = 2 then Spec.counter else Spec.register ~init:0
  in
  Format.printf "%a" History.pp h;
  let c = Composition.make_exn h [ 1; 3 ] in
  Printf.printf "  Pmin(t1) = {%s}; Pmin(t3) = {%s}\n"
    (String.concat "," (List.map (Printf.sprintf "l%d") (History.pmin h 1)))
    (String.concat "," (List.map (Printf.sprintf "l%d") (History.pmin h 3)));
  check "outheritance w.r.t. {t1,t3}" (Outheritance.satisfies h c);
  check "relax-serializable" (outcome (Serializability.relax_serializable ~env h));
  check "weakly composable (Theorem 4.4)"
    (outcome (Composition.weakly_composable ~env h c));
  check "strongly composable"
    (outcome (Composition.strongly_composable ~env h c));
  print_endline
    "  -> the counter increments 1,2,3 pin t2 between t1 and t3: no\n\
    \     serialisation can make the composition contiguous, yet every\n\
    \     object in a member's kernel is untouched by t2 - weak\n\
    \     composability is the right criterion, and outheritance is\n\
    \     exactly what guarantees it.\n"

let () =
  section_2b ();
  figure_3 ();
  print_endline "theory walkthrough OK"
