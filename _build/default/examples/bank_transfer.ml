(* Composing beyond collections: a bank built from transactional accounts.

   Each account is a tvar; deposit and withdraw are transactions; transfer
   composes them, and sweep composes MANY transfers (drain every account
   into one) - three levels of composition, all atomic under concurrency.
   An auditing domain continuously checks conservation of money with a
   composed read-only transaction across all accounts.

   This example also shows mixing transaction modes: the audit is an
   elastic read-only transaction composed of per-account child reads -
   with OE-STM's outheritance the children's protected reads survive until
   the audit commits, so its total is always consistent.

   Run with:  dune exec examples/bank_transfer.exe *)

module S = Oestm.Oe

type bank = { accounts : int S.tvar array }

let n_accounts = 16
let initial_balance = 1_000

let create_bank () =
  { accounts = Array.init n_accounts (fun _ -> S.tvar initial_balance) }

(* Primitives: single-account transactions. *)
let balance b i = S.atomic ~mode:Elastic (fun ctx -> S.read ctx b.accounts.(i))

let deposit b i amount =
  S.atomic ~mode:Elastic (fun ctx ->
      S.write ctx b.accounts.(i) (S.read ctx b.accounts.(i) + amount))

let withdraw b i amount =
  S.atomic ~mode:Elastic (fun ctx ->
      let v = S.read ctx b.accounts.(i) in
      if v >= amount then begin
        S.write ctx b.accounts.(i) (v - amount);
        true
      end
      else false)

(* Composition level 1: transfer = withdraw; deposit. *)
let transfer b ~src ~dst amount =
  S.atomic ~mode:Elastic (fun _ ->
      if withdraw b src amount then begin
        deposit b dst amount;
        true
      end
      else false)

(* Composition level 2: sweep = a transfer per account. *)
let sweep b ~into =
  S.atomic ~mode:Elastic (fun _ ->
      Array.iteri
        (fun i _ ->
          if i <> into then ignore (transfer b ~src:i ~dst:into (balance b i)))
        b.accounts)

(* Composed read-only audit across every account. *)
let total b =
  S.atomic ~mode:Elastic (fun _ ->
      Array.to_list b.accounts
      |> List.mapi (fun i _ -> balance b i)
      |> List.fold_left ( + ) 0)

let () =
  let b = create_bank () in
  let expected = n_accounts * initial_balance in
  let stop = Atomic.make false in
  let transfers = Atomic.make 0 in
  let worker seed () =
    let rng = Harness.Prng.create ~seed in
    while not (Atomic.get stop) do
      let src = Harness.Prng.int rng n_accounts
      and dst = Harness.Prng.int rng n_accounts
      and amount = Harness.Prng.int rng 50 in
      if src <> dst && transfer b ~src ~dst amount then
        ignore (Atomic.fetch_and_add transfers 1)
    done
  in
  let audits = ref 0 and bad = ref 0 in
  let auditor () =
    while not (Atomic.get stop) do
      incr audits;
      if total b <> expected then incr bad
    done
  in
  let domains =
    [ Domain.spawn (worker 11); Domain.spawn (worker 22);
      Domain.spawn (worker 33); Domain.spawn auditor ]
  in
  Unix.sleepf 1.0;
  Atomic.set stop true;
  List.iter Domain.join domains;
  Printf.printf "transfers: %d, audits: %d, inconsistent audits: %d\n"
    (Atomic.get transfers) !audits !bad;
  assert (!bad = 0);
  (* Composition level 2 at quiescence. *)
  sweep b ~into:0;
  Printf.printf "after sweep: account0 = %d, total = %d\n" (balance b 0)
    (total b);
  assert (balance b 0 = expected);
  assert (total b = expected);
  print_endline "bank transfer OK - three levels of composition stayed atomic"
