examples/quickstart.ml: Domain Eec List Oestm Printf String
