examples/theory_walkthrough.mli:
