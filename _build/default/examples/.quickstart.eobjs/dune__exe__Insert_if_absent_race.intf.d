examples/insert_if_absent_race.mli:
