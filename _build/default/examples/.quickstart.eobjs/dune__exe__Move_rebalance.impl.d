examples/move_rebalance.ml: Atomic Domain Eec Harness List Oestm Printf Unix
