examples/quickstart.mli:
