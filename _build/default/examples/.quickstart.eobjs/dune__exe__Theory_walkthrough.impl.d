examples/theory_walkthrough.ml: Composition Event Format Histories History List Outheritance Printf Result Search Serializability Spec String
