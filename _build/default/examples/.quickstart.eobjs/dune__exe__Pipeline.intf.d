examples/pipeline.mli:
