examples/insert_if_absent_race.ml: Classic_stm Eec Format Histories List Oestm Printf Recorder Schedsim Stm_core Stm_intf
