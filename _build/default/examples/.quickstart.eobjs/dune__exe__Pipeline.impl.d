examples/pipeline.ml: Atomic Domain Eec Int List Oestm Printf Unix
