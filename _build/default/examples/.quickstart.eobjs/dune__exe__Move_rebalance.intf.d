examples/move_rebalance.mli:
