examples/bank_transfer.ml: Array Atomic Domain Harness List Oestm Printf Unix
