(* Quickstart: the e.e.c package in five minutes.

   Build a composable transactional set on top of OE-STM, use the
   primitive operations, then compose them — exactly the Alice & Bob story
   of the paper's Section III: Alice wrote contains/add/remove; Bob builds
   addAll and insertIfAbsent out of them without touching her code, and the
   result stays atomic under concurrency.

   Run with:  dune exec examples/quickstart.exe *)

module Set = Eec.Skip_list_set.Make (Oestm.Oe) (Eec.Set_intf.Int_key)

let () =
  let s = Set.create () in

  (* Alice's primitives - each one is a transaction. *)
  assert (Set.add s 1);
  assert (Set.add s 2);
  assert (not (Set.add s 1));
  assert (Set.contains s 2);
  assert (Set.remove s 2);

  (* Bob's compositions - transactions invoking child transactions. *)
  ignore (Set.add_all s [ 10; 20; 30 ]);
  assert (Set.insert_if_absent s ~ins:40 ~guard:99);
  assert (not (Set.insert_if_absent s ~ins:50 ~guard:40));

  Printf.printf "contents: [%s]\n"
    (String.concat "; " (List.map string_of_int (Set.to_list s)));
  Printf.printf "size: %d\n" (Set.size s);

  (* The same compositions stay atomic when hammered from many domains:
     every add_all inserts a pair, so the size must always be even. *)
  let pairs = Set.create () in
  let writers =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to 199 do
              let base = (d * 1000) + (2 * i) in
              ignore (Set.add_all pairs [ base; base + 1 ])
            done))
  in
  let odd_observed = ref 0 in
  for _ = 1 to 2000 do
    if Set.size pairs mod 2 = 1 then incr odd_observed
  done;
  List.iter Domain.join writers;
  Printf.printf "pairs inserted concurrently: size=%d, odd sizes observed=%d\n"
    (Set.size pairs) !odd_observed;
  assert (!odd_observed = 0);
  print_endline "quickstart OK"
