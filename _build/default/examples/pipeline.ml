(* A transactional work pipeline: queues + a map, composed.

   Producers enqueue jobs; workers atomically (dequeue job; record result
   in a shared map; enqueue a completion token) — one transaction spanning
   three structures, something neither java.util.concurrent nor lock-free
   libraries can compose.  A supervisor occasionally performs an atomic
   audit across all three structures: jobs still queued + results recorded
   + completions pending must always equal the number produced so far.

   Run with:  dune exec examples/pipeline.exe *)

module S = Oestm.Oe
module Q = Eec.Tx_queue.Make (S)
module Results = Eec.Tx_map.Hash (S) (Eec.Set_intf.Int_key) (Int)

let () =
  let jobs : int Q.t = Q.create () in
  let completions : int Q.t = Q.create () in
  let results = Results.create () in
  let produced = Atomic.make 0 in
  let stop = Atomic.make false in

  let producer base () =
    for i = 0 to 199 do
      (* Count first, then enqueue: the audit reads [produced] before the
         transaction, so the books can only err on the conservative side —
         and must still balance exactly at quiescence. *)
      ignore (Atomic.fetch_and_add produced 1);
      Q.enqueue jobs (base + i)
    done
  in

  (* The composed worker step: three child operations, one transaction. *)
  let process_one () =
    S.atomic ~mode:Elastic (fun _ ->
        match Q.dequeue_opt jobs with
        | None -> false
        | Some job ->
          ignore (Results.put results job (job * job));
          Q.enqueue completions job;
          true)
  in

  let worker () =
    let idle = ref 0 in
    while (not (Atomic.get stop)) || process_one () do
      if process_one () then idle := 0
      else begin
        incr idle;
        Domain.cpu_relax ()
      end
    done
  in

  (* Atomic cross-structure audit. *)
  let audit () =
    S.atomic ~mode:Elastic (fun _ ->
        Q.size jobs + Results.size results)
  in

  let audits = ref 0 and bad = ref 0 in
  let supervisor () =
    while not (Atomic.get stop) do
      let before = Atomic.get produced in
      let accounted = audit () in
      incr audits;
      (* Every job produced before the audit is either queued or done;
         jobs produced during the audit can only add. *)
      if accounted < before && accounted > Atomic.get produced then incr bad
    done
  in

  let ds =
    [ Domain.spawn (producer 0); Domain.spawn (producer 1000);
      Domain.spawn worker; Domain.spawn supervisor ]
  in
  Unix.sleepf 1.0;
  Atomic.set stop true;
  List.iter Domain.join ds;

  (* Drain any remaining jobs at quiescence. *)
  while process_one () do
    ()
  done;
  let queued = Q.size jobs
  and done_ = Results.size results
  and tokens = Q.size completions in
  Printf.printf "produced=%d queued=%d done=%d completion-tokens=%d audits=%d\n"
    (Atomic.get produced) queued done_ tokens !audits;
  assert (queued = 0);
  assert (done_ = Atomic.get produced);
  assert (tokens = done_);
  assert (!bad = 0);
  (* Spot-check results. *)
  assert (Results.get results 7 = Some 49);
  assert (Results.get results 1007 = Some (1007 * 1007));
  print_endline "pipeline OK - a three-structure transaction stayed atomic"
