(** Randomised exponential backoff used by the contention manager.

    Each transaction attempt carries a backoff state; after an abort the
    transaction waits for a random number of relaxation steps drawn from an
    exponentially growing window before retrying.  Under the deterministic
    scheduler the wait degenerates to scheduling points so that cooperative
    processes cannot spin forever. *)

type t

val create : ?seed:int -> unit -> t
val reset : t -> unit

val once : t -> unit
(** Wait once and widen the window. *)
