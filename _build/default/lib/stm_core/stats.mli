(** Per-STM commit/abort statistics.

    Each STM implementation owns one [t].  Counters are sharded per domain to
    avoid contention on the hot path and summed on demand. *)

type t

type snapshot = {
  commits : int;
  aborts : int;
  by_reason : (Control.reason * int) list;  (** aborts broken down by reason *)
}

val create : unit -> t

val record_commit : t -> unit
val record_abort : t -> Control.reason -> unit

val snapshot : t -> snapshot
val reset : t -> unit

val abort_rate : snapshot -> float
(** aborts / (aborts + commits), or 0 when no transaction ran. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
