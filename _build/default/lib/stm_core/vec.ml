type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;
}

let create ?(capacity = 16) ~dummy () =
  { data = Array.make (max capacity 1) dummy; len = 0; dummy }

let length t = t.len
let is_empty t = t.len = 0

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get";
  t.data.(i)

let set t i v =
  if i < 0 || i >= t.len then invalid_arg "Vec.set";
  t.data.(i) <- v

let grow t =
  let data = Array.make (2 * Array.length t.data) t.dummy in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t v =
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let clear t = t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let exists p t =
  let rec loop i = i < t.len && (p t.data.(i) || loop (i + 1)) in
  loop 0

let for_all p t = not (exists (fun x -> not (p x)) t)

let find_opt p t =
  let rec loop i =
    if i >= t.len then None
    else if p t.data.(i) then Some t.data.(i)
    else loop (i + 1)
  in
  loop 0

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_list t = List.init t.len (fun i -> t.data.(i))

let sort cmp t =
  let live = Array.sub t.data 0 t.len in
  Array.sort cmp live;
  Array.blit live 0 t.data 0 t.len

let append_into ~src ~dst = iter (push dst) src

let filter_in_place p t =
  let kept = ref 0 in
  for i = 0 to t.len - 1 do
    let x = t.data.(i) in
    if p x then begin
      t.data.(!kept) <- x;
      incr kept
    end
  done;
  let dropped = t.len - !kept in
  t.len <- !kept;
  dropped
