(** Transactional variables.

    A ['a t] is a mutable cell guarded by a versioned lock.  All STM
    implementations in this repository share this representation; they differ
    only in how they validate reads and when they acquire the lock.  The cell
    id doubles as the protection-element identifier of the paper's model
    (Section II.A). *)

type 'a t = private {
  id : int;                 (** unique id; also the protection-element id *)
  lock : Vlock.t;
  mutable content : 'a;     (** written only while [lock] is held *)
}

val make : 'a -> 'a t
(** A fresh transactional variable holding the given initial value. *)

val id : 'a t -> int

val read_consistent : 'a t -> int * 'a
(** [read_consistent tv] returns [(stamp, value)] such that [value] was the
    content of [tv] while its stamp was [stamp] and the lock was free.
    Raises {!Control.Abort_tx} if the lock is observed held or the stamp
    changes between the two fence reads (TL2-style double-stamp read). *)

val peek : 'a t -> 'a
(** Unvalidated read of the current content, for sequential baselines,
    statistics and debugging only. *)

val unsafe_write : 'a t -> 'a -> unit
(** Direct store, bypassing the STM.  Only valid when the caller owns the
    lock or when no concurrent transactions exist (e.g. initialisation). *)
