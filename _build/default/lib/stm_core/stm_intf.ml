(** The interface every STM in this repository implements.

    [mode] selects the transactional model of one [atomic] block, following
    the elastic-transaction API of Felber et al. (DISC'09): [Elastic]
    transactions may ignore conflicts on their read-only prefix, [Regular]
    transactions detect every conflict.  Classic STMs (TL2, LSA, SwissTM)
    treat [Elastic] as [Regular].

    Nested [atomic] calls compose: calling [atomic] while a transaction is
    already running on the current (logical) process creates a child
    transaction.  Whether the child passes its conflict information to the
    parent on commit — the paper's {e outheritance} — is a property of each
    implementation (see {!Oestm}). *)

type mode = Regular | Elastic

module type S = sig
  val name : string

  type 'a tvar
  (** A transactional variable. *)

  type ctx
  (** Handle on the running transaction, passed to the body of [atomic]. *)

  val tvar : 'a -> 'a tvar
  (** Create a transactional variable (outside or inside transactions). *)

  val read : ctx -> 'a tvar -> 'a
  (** Transactional read.  Aborts (and retries) on conflict. *)

  val write : ctx -> 'a tvar -> 'a -> unit
  (** Transactional write.  Visible to other transactions at commit. *)

  val atomic : ?mode:mode -> (ctx -> 'a) -> 'a
  (** Run a transaction to successful commit, retrying on aborts.  When
      called inside a running transaction of this STM on the same logical
      process, runs the body as a child transaction of it instead.

      @param mode defaults to [Regular].
      @raise Control.Starvation if {!Runtime.retry_cap} is exceeded. *)

  val peek : 'a tvar -> 'a
  (** Non-transactional read of the latest committed value; for
      initialisation, verification and statistics only. *)

  val unsafe_write : 'a tvar -> 'a -> unit
  (** Non-transactional store; only valid while no transaction is live. *)

  val tvar_id : 'a tvar -> int
  (** The protection-element id of the variable (Section II.A). *)

  val stats : Stats.t
  (** Commit/abort counters of this STM instance. *)

  val in_transaction : unit -> bool
  (** Whether the current logical process is inside a transaction of this
      STM. *)
end
