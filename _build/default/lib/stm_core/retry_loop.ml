let run ~stats f =
  let backoff = Backoff.create ~seed:(Runtime.fresh_tx_id ()) () in
  let rec attempt n =
    if n > !Runtime.retry_cap then
      raise (Control.Starvation "transaction exceeded retry cap");
    match f ~attempt:n with
    | result ->
      Stats.record_commit stats;
      result
    | exception Control.Abort_tx reason ->
      Stats.record_abort stats reason;
      Backoff.once backoff;
      attempt (n + 1)
  in
  attempt 0
