type 'a t = {
  id : int;
  lock : Vlock.t;
  mutable content : 'a;
}

let next_id = Atomic.make 0

let make v = { id = Atomic.fetch_and_add next_id 1; lock = Vlock.create (); content = v }

let id tv = tv.id

(* Double-stamp read: the two SC atomic loads around the plain load of
   [content] ensure that if the stamp is identical and unlocked on both sides
   then the plain load observed the value published by the commit that wrote
   that stamp (commit stores content before the atomic unlock). *)
let read_consistent tv =
  let s1 = Vlock.stamp tv.lock in
  if Vlock.locked s1 then Control.abort_tx Control.Read_locked;
  let v = tv.content in
  let s2 = Vlock.stamp tv.lock in
  if s1 <> s2 then Control.abort_tx Control.Read_inconsistent;
  (s1, v)

let peek tv = tv.content

let unsafe_write tv v = tv.content <- v
