let clock = Atomic.make 0

let now () = Atomic.get clock
let tick () = Atomic.fetch_and_add clock 1 + 1
let reset_for_testing () = Atomic.set clock 0
