lib/stm_core/retry_loop.mli: Stats
