lib/stm_core/control.ml:
