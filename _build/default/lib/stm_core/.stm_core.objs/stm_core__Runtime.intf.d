lib/stm_core/runtime.mli: Obj
