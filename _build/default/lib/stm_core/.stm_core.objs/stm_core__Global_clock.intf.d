lib/stm_core/global_clock.mli:
