lib/stm_core/backoff.ml: Domain Runtime
