lib/stm_core/recorder.ml: Hashtbl List Option
