lib/stm_core/control.mli:
