lib/stm_core/retry_loop.ml: Backoff Control Runtime Stats
