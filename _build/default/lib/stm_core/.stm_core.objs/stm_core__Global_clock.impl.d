lib/stm_core/global_clock.ml: Atomic
