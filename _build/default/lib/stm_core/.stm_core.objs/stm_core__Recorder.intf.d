lib/stm_core/recorder.mli:
