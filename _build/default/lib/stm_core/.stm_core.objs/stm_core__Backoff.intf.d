lib/stm_core/backoff.mli:
