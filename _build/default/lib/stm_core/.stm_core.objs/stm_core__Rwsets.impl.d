lib/stm_core/rwsets.ml: Obj Option Runtime Tvar Vec Vlock
