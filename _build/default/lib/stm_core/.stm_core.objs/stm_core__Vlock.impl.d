lib/stm_core/vlock.ml: Atomic Format
