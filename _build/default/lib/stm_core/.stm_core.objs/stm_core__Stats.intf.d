lib/stm_core/stats.mli: Control Format
