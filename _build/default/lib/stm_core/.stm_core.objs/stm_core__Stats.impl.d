lib/stm_core/stats.ml: Array Atomic Control Format List
