lib/stm_core/txrec.ml: Hashtbl List Option Recorder Runtime
