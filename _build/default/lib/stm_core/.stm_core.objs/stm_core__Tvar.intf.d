lib/stm_core/tvar.mli: Vlock
