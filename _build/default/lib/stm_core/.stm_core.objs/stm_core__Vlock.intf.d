lib/stm_core/vlock.mli: Format
