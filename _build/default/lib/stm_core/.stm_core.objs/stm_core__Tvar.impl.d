lib/stm_core/tvar.ml: Atomic Control Vlock
