lib/stm_core/stm_intf.ml: Stats
