lib/stm_core/runtime.ml: Array Atomic Domain List Obj
