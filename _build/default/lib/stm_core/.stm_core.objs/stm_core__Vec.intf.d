lib/stm_core/vec.mli:
