lib/stm_core/vec.ml: Array List
