lib/stm_core/rwsets.mli: Tvar Vec Vlock
