lib/stm_core/txrec.mli:
