(* Plain atomic counters: domain ids are not bounded across a program run
   (every spawn gets a fresh id), so per-domain sharding would leak; and the
   counters are only touched once per transaction attempt, far from the
   read/write hot path. *)

type t = {
  commits : int Atomic.t;
  aborts : int Atomic.t;
  by_reason : int Atomic.t array;
}

type snapshot = {
  commits : int;
  aborts : int;
  by_reason : (Control.reason * int) list;
}

let create () : t =
  { commits = Atomic.make 0;
    aborts = Atomic.make 0;
    by_reason = Array.init Control.reason_count (fun _ -> Atomic.make 0) }

let record_commit (t : t) = ignore (Atomic.fetch_and_add t.commits 1)

let record_abort (t : t) reason =
  ignore (Atomic.fetch_and_add t.aborts 1);
  ignore (Atomic.fetch_and_add t.by_reason.(Control.reason_index reason) 1)

let snapshot (t : t) =
  let by_reason =
    List.filter_map
      (fun r ->
        let n = Atomic.get t.by_reason.(Control.reason_index r) in
        if n = 0 then None else Some (r, n))
      Control.all_reasons
  in
  { commits = Atomic.get t.commits; aborts = Atomic.get t.aborts; by_reason }

let reset (t : t) =
  Atomic.set t.commits 0;
  Atomic.set t.aborts 0;
  Array.iter (fun c -> Atomic.set c 0) t.by_reason

let abort_rate (s : snapshot) =
  let total = s.commits + s.aborts in
  if total = 0 then 0.0 else float_of_int s.aborts /. float_of_int total

let pp_snapshot ppf (s : snapshot) =
  Format.fprintf ppf "commits=%d aborts=%d (%.1f%%)" s.commits s.aborts
    (100.0 *. abort_rate s);
  List.iter
    (fun (r, n) -> Format.fprintf ppf " %s=%d" (Control.reason_to_string r) n)
    s.by_reason
