(** Hooks connecting the STM runtime to its execution environment.

    By default transactions run on OCaml domains: the current process id is
    the domain id and scheduling points are no-ops.  The deterministic
    scheduler ({!Schedsim}) overrides these hooks to multiplex many logical
    processes on one domain and to context-switch at every shared-memory
    access, which is what makes exhaustive interleaving exploration
    possible. *)

val proc_hook : (unit -> int) ref
(** Returns the id of the current logical process.  Default: domain id. *)

val current_proc : unit -> int

val yield_hook : (unit -> unit) ref
(** Called by STM implementations immediately before every shared access
    (transactional read, write, lock acquisition, commit).  Default: no-op.
    The deterministic scheduler installs its context switch here. *)

val schedule_point : unit -> unit
(** Invoke the yield hook. *)

val simulated : bool ref
(** Set by the deterministic scheduler while a simulation runs.  Spin-wait
    style delays (contention backoff) degenerate to scheduling points so
    that simulated runs never burn cycles in [cpu_relax] loops. *)

val retry_cap : int ref
(** Maximum number of times one [atomic] call may retry before raising
    {!Control.Starvation}.  Default [max_int] (retry forever).  The
    deterministic scheduler lowers this to prune livelocking schedules. *)

val fresh_tx_id : unit -> int
(** Globally unique transaction identifiers. *)

(** Thread-local-state registry.  Every STM registers the save/restore pair
    for its "current transaction" slot; the deterministic scheduler snapshots
    all slots when context-switching between logical processes. *)

val register_tls : save:(unit -> Obj.t) -> restore:(Obj.t -> unit) -> unit
val save_all_tls : unit -> Obj.t array
val restore_all_tls : Obj.t array -> unit
