(** Transaction control flow.

    Aborts are implemented with an exception that unwinds to the outermost
    [atomic] retry loop; user code must not intercept it (catch-all handlers
    inside transactions must re-raise {!Abort_tx}). *)

(** Why a transaction aborted; recorded in statistics. *)
type reason =
  | Read_locked          (** a read found the location's lock held *)
  | Read_inconsistent    (** double-stamp read saw the stamp change *)
  | Read_too_new         (** version newer than the validity interval, extension failed *)
  | Window_invalid       (** elastic window validation failed (cut impossible) *)
  | Validation_failed    (** commit-time read-set validation failed *)
  | Lock_contention      (** could not acquire a write lock *)
  | Killed               (** aborted by the contention manager *)
  | Explicit             (** user requested the abort *)

exception Abort_tx of reason
(** Raised to abort the current transaction attempt.  Caught only by the
    outermost retry loop. *)

exception Starvation of string
(** Raised when a transaction exceeds the configured retry cap
    ({!Runtime.retry_cap}); used by the deterministic scheduler to prune
    livelocking interleavings. *)

val abort_tx : reason -> 'a
(** Raise {!Abort_tx}. *)

val reason_to_string : reason -> string
val reason_index : reason -> int
val reason_count : int
val all_reasons : reason list
