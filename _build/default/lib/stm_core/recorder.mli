(** Event recording for the theory bridge.

    When a sink is installed, STM implementations emit the events of the
    paper's model (Section II): transaction begin/commit/abort, operation
    invocation/response pairs on transactional variables, and
    acquire/release of protection elements.  The {!Histories} library
    converts the recorded trace into a formal history and runs the
    (relax-)serializability, composability and outheritance checkers on it.

    Recording is intended for tests running under the deterministic
    scheduler (single domain); installing a sink while multiple domains run
    transactions is allowed but the interleaving of recorded events then
    reflects emission order, which is only an approximation. *)

type event =
  | Begin of { tx : int; proc : int }
  | Commit of { tx : int; proc : int }
  | Abort of { tx : int; proc : int }
  | Read of { pe : int; tx : int; value_repr : int }
      (** operation invocation+response on a tvar viewed as a register *)
  | Write of { pe : int; tx : int; value_repr : int }
  | Acquire of { pe : int; proc : int }
  | Release of { pe : int; proc : int }

val install : (event -> unit) -> unit
(** Install a sink; events flow to it until {!remove}. *)

val remove : unit -> unit

val enabled : unit -> bool

val emit : event -> unit
(** No-op when no sink is installed. *)

val record : (unit -> 'a) -> event list * 'a
(** [record f] runs [f] with a collecting sink installed and returns the
    events emitted during the run (in emission order) along with [f]'s
    result.  The previous sink, if any, is restored afterwards. *)

val repr_of_value : 'a -> int
(** Structural fingerprint used as the operation's return/argument value in
    recorded events.  Equal values map to equal fingerprints. *)
