let proc_hook = ref (fun () -> (Domain.self () :> int))
let current_proc () = !proc_hook ()

let yield_hook = ref (fun () -> ())
let schedule_point () = !yield_hook ()

let simulated = ref false

let retry_cap = ref max_int

let tx_counter = Atomic.make 0
let fresh_tx_id () = Atomic.fetch_and_add tx_counter 1

(* TLS registry.  Registration happens at module initialisation time (each
   STM registers once); save/restore run only under the single-domain
   deterministic scheduler, so a plain list is safe. *)
let tls_entries : ((unit -> Obj.t) * (Obj.t -> unit)) list ref = ref []

let register_tls ~save ~restore = tls_entries := (save, restore) :: !tls_entries

let save_all_tls () =
  Array.of_list (List.map (fun (save, _) -> save ()) !tls_entries)

let restore_all_tls a =
  List.iteri (fun i (_, restore) -> restore a.(i)) !tls_entries
