(** The global version clock shared by all STM instances (TL2-style).

    Commit operations of writing transactions increment the clock; readers
    sample it to obtain validity intervals.  A single process-wide clock is
    used so that transactions from different STM implementations running in
    the same program remain mutually ordered, which the cross-STM tests rely
    on. *)

val now : unit -> int
(** Current clock value. *)

val tick : unit -> int
(** Atomically increment the clock and return the {e new} value, which
    becomes the write version of the committing transaction. *)

val reset_for_testing : unit -> unit
(** Reset to zero.  Only for isolated unit tests; never call while
    transactions are live. *)
