type event =
  | Begin of { tx : int; proc : int }
  | Commit of { tx : int; proc : int }
  | Abort of { tx : int; proc : int }
  | Read of { pe : int; tx : int; value_repr : int }
  | Write of { pe : int; tx : int; value_repr : int }
  | Acquire of { pe : int; proc : int }
  | Release of { pe : int; proc : int }

let sink : (event -> unit) option ref = ref None

let install f = sink := Some f
let remove () = sink := None
let enabled () = Option.is_some !sink

let emit e = match !sink with None -> () | Some f -> f e

let record f =
  let saved = !sink in
  let events = ref [] in
  sink := Some (fun e -> events := e :: !events);
  let finish () = sink := saved in
  match f () with
  | result ->
    finish ();
    (List.rev !events, result)
  | exception exn ->
    finish ();
    raise exn

let repr_of_value v = Hashtbl.hash v
