(** The outermost retry loop shared by all STM implementations. *)

val run : stats:Stats.t -> (attempt:int -> 'a) -> 'a
(** [run ~stats f] calls [f] (one full transaction attempt: begin, body,
    commit) until it returns instead of raising {!Control.Abort_tx}.  Aborts
    are counted in [stats] and followed by randomised backoff.  [f] receives
    the attempt number (0 on the first try).

    @raise Control.Starvation when {!Runtime.retry_cap} attempts all
    aborted. *)
