(** Witness search for the equivalence-based definitions of Sections II-III.

    Relax-serializability, strong composability and weak composability all
    have the same shape: {e does there exist a history S, equivalent to H
    (same per-process event sequences), with <H ⊆ <S, that is relax-serial
    and legal — and satisfies some extra property?}  We answer by exhaustive
    DFS over the interleavings of the per-process sequences:

    - per-process order is fixed (equivalence);
    - emitting [begin t] requires every [t' <H t] to have committed already
      ([<H ⊆ <S]);
    - protection-element alternation is enforced online (relax-seriality);
    - object states evolve by the serial specifications and a rejected step
      prunes the branch (legality);
    - the caller's [admissible] predicate prunes anything else (the extra
      property).

    Visited states are memoised on (positions, object states); the
    protection-element occupancy is a function of the positions, so it does
    not need to be part of the key. *)

open Event

type prepared = {
  history : History.t;
  slots : int array;                    (* slot -> proc id *)
  seqs : Event.t array array;           (* slot -> that process's events *)
  hb : (int, (int * int) list) Hashtbl.t;
      (* tx -> commit coordinates that must be consumed before its begin *)
}

exception Budget_exhausted

let prepare (h : History.t) =
  if not (History.complete h) then
    invalid_arg "Search.prepare: history has live transactions";
  if History.aborted h <> [] then
    invalid_arg "Search.prepare: drop aborted transactions first";
  let procs = History.procs h in
  let slots = Array.of_list procs in
  let seqs =
    Array.map (fun p -> Array.of_list (History.by_proc h p)) slots
  in
  (* Coordinates (slot, index) of each commit event. *)
  let commit_coord = Hashtbl.create 16 in
  Array.iteri
    (fun s seq ->
      Array.iteri
        (fun i e ->
          match e with
          | Commit { tx; _ } -> Hashtbl.replace commit_coord tx (s, i)
          | _ -> ())
        seq)
    seqs;
  let hb = Hashtbl.create 16 in
  List.iter
    (fun (t, t') ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt hb t') in
      match Hashtbl.find_opt commit_coord t with
      | Some coord -> Hashtbl.replace hb t' (coord :: cur)
      | None -> ())
    (History.precedence_pairs h);
  { history = h; slots; seqs; hb }

(** Whether the event at [coord] has been consumed at [positions]. *)
let consumed ~positions (slot, idx) = positions.(slot) > idx

(** Coordinate of the first event satisfying [p], searching all slots. *)
let find_coord prepared p =
  let found = ref None in
  Array.iteri
    (fun s seq ->
      Array.iteri
        (fun i e -> if !found = None && p e then found := Some (s, i))
        seq)
    prepared.seqs;
  !found

(** Coordinate of the last event satisfying [p]. *)
let find_last_coord prepared p =
  let found = ref None in
  Array.iteri
    (fun s seq ->
      Array.iteri (fun i e -> if p e then found := Some (s, i)) seq)
    prepared.seqs;
  !found

type outcome = Witness_found | No_witness | Unknown

(* Object states during the search: association list obj -> spec state,
   kept sorted by object id so that it is canonical for memoisation. *)
let step_states ~env states obj op value =
  let spec : Spec.t = env obj in
  let rec go = function
    | [] -> (
      match spec.Spec.step spec.Spec.init op value with
      | None -> None
      | Some s' -> Some [ (obj, s') ])
    | ((o, s) as hd) :: rest ->
      if o < obj then Option.map (fun r -> hd :: r) (go rest)
      else if o = obj then
        match spec.Spec.step s op value with
        | None -> None
        | Some s' -> Some ((o, s') :: rest)
      else (
        match spec.Spec.step spec.Spec.init op value with
        | None -> None
        | Some s' -> Some ((obj, s') :: hd :: rest))
  in
  go states

let exists_witness ?(budget = 500_000)
    ?(admissible = fun ~positions:_ _ -> true) ~env prepared =
  let n_slots = Array.length prepared.seqs in
  let total = Array.fold_left (fun acc s -> acc + Array.length s) 0 prepared.seqs in
  let visited = Hashtbl.create 1024 in
  let nodes = ref 0 in
  (* held : pe -> proc currently holding it (position-derivable, threaded) *)
  let rec dfs positions held states consumed_count =
    if consumed_count = total then true
    else begin
      let key = (Array.to_list positions, states) in
      if Hashtbl.mem visited key then false
      else begin
        incr nodes;
        if !nodes > budget then raise Budget_exhausted;
        let progressed = ref false in
        let slot = ref 0 in
        while (not !progressed) && !slot < n_slots do
          let s = !slot in
          incr slot;
          if positions.(s) < Array.length prepared.seqs.(s) then begin
            let e = prepared.seqs.(s).(positions.(s)) in
            let proc = prepared.slots.(s) in
            let ok_order =
              match e with
              | Begin { tx; _ } -> (
                match Hashtbl.find_opt prepared.hb tx with
                | None -> true
                | Some coords -> List.for_all (consumed ~positions) coords)
              | _ -> true
            in
            let ok_pe, held' =
              match e with
              | Acquire { pe; _ } ->
                if List.mem_assoc pe held then (false, held)
                else (true, (pe, proc) :: held)
              | Release { pe; _ } -> (
                match List.assoc_opt pe held with
                | Some q when q = proc -> (true, List.remove_assoc pe held)
                | _ -> (false, held))
              | _ -> (true, held)
            in
            let ok_legal, states' =
              match e with
              | Op { obj; op; value; _ } -> (
                match step_states ~env states obj op value with
                | None -> (false, states)
                | Some st -> (true, st))
              | _ -> (true, states)
            in
            if ok_order && ok_pe && ok_legal && admissible ~positions e then begin
              positions.(s) <- positions.(s) + 1;
              if dfs positions held' states' (consumed_count + 1) then
                progressed := true
              else positions.(s) <- positions.(s) - 1
            end
          end
        done;
        if !progressed then true
        else begin
          Hashtbl.add visited key ();
          false
        end
      end
    end
  in
  match dfs (Array.make n_slots 0) [] [] 0 with
  | true -> Witness_found
  | false -> No_witness
  | exception Budget_exhausted -> Unknown
