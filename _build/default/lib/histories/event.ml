(** Events of the paper's system model (Section II).

    Operation invocation and response always occur back to back in the
    model (each process is sequential and the transactional memory serves
    one operation at a time), so we fuse each matching
    [⟨op, o, t⟩ ⟨v, o, t⟩] pair into a single {!Op} event carrying both the
    operation and its return value.  [opseq] of the paper is then just the
    projection of {!Op} events to [(op, value)] pairs. *)

type proc = int
type tx = int
type obj_id = int

(** An operation together with its (optional) argument.  The argument is
    part of the operation's identity: [write 2] and [write 3] are different
    operations of a register. *)
type op = {
  name : string;
  arg : int option;
}

type t =
  | Begin of { tx : tx; proc : proc }
  | Commit of { tx : tx; proc : proc }
  | Abort of { tx : tx; proc : proc }
  | Op of { obj : obj_id; tx : tx; op : op; value : int }
      (** fused invocation + response: operation [op] on [obj] by [tx]
          returned [value] *)
  | Acquire of { pe : obj_id; proc : proc }
      (** process [proc] acquires the protection element of object [pe] *)
  | Release of { pe : obj_id; proc : proc }

let op ?arg name = { name; arg }

let pp_op ppf o =
  match o.arg with
  | None -> Format.fprintf ppf "%s()" o.name
  | Some a -> Format.fprintf ppf "%s(%d)" o.name a

let pp ppf = function
  | Begin { tx; proc } -> Format.fprintf ppf "begin(t%d)@p%d" tx proc
  | Commit { tx; proc } -> Format.fprintf ppf "commit(t%d)@p%d" tx proc
  | Abort { tx; proc } -> Format.fprintf ppf "abort(t%d)@p%d" tx proc
  | Op { obj; tx; op; value } ->
    Format.fprintf ppf "%a->%d on o%d by t%d" pp_op op value obj tx
  | Acquire { pe; proc } -> Format.fprintf ppf "acq(l%d)@p%d" pe proc
  | Release { pe; proc } -> Format.fprintf ppf "rel(l%d)@p%d" pe proc

let to_string e = Format.asprintf "%a" pp e
