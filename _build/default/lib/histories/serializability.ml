(** Serializability and relax-serializability checkers (Section II). *)

open Event

(** Strict serializability: is there a legal {e sequential} history S whose
    committed operations are equivalent to H's (per-process order preserved)
    with [<H ⊆ <S]?  Searched over permutations of committed transactions
    that respect per-process order and [<H], with legality pruning. *)
let serializable ~env (h : History.t) =
  let committed = History.committed h in
  let ops_of tx =
    History.committed_ops h
    |> List.filter_map (function
         | Op { tx = t; obj; op; value } when t = tx -> Some (obj, op, value)
         | _ -> None)
  in
  let per_proc_pred tx =
    (* The previous committed transaction of the same process, if any. *)
    let p = History.proc_of_tx h tx in
    let same_proc =
      List.filter (fun t -> History.proc_of_tx h t = p) committed
    in
    let rec prev acc = function
      | [] -> None
      | t :: _ when t = tx -> acc
      | t :: rest -> prev (Some t) rest
    in
    (* committed h lists transactions in commit order, which for a single
       sequential process is its execution order. *)
    prev None same_proc
  in
  let hb = History.precedence_pairs h in
  let must_precede tx =
    List.filter_map (fun (a, b) -> if b = tx then Some a else None) hb
    @ (match per_proc_pred tx with Some t -> [ t ] | None -> [])
  in
  let rec extend placed states remaining =
    match remaining with
    | [] -> true
    | _ ->
      List.exists
        (fun tx ->
          List.for_all (fun t -> List.mem t placed) (must_precede tx)
          &&
          let rec apply states = function
            | [] -> Some states
            | (obj, op, value) :: rest -> (
              match Search.step_states ~env states obj op value with
              | None -> None
              | Some st -> apply st rest)
          in
          match apply states (ops_of tx) with
          | None -> false
          | Some states' ->
            extend (tx :: placed) states'
              (List.filter (fun t -> t <> tx) remaining))
        remaining
  in
  extend [] [] committed

(** Relax-serializability: is there a legal relax-serial history equivalent
    to H with [<H ⊆ <S]? *)
let relax_serializable ?budget ~env (h : History.t) =
  Search.exists_witness ?budget ~env (Search.prepare h)
