(** Outheritance (Definition 4.1).

    A history H satisfies outheritance with respect to composition C
    (executed by process p) when, for every member t and every protection
    element in Pmin(t), no release of that element by p occurs between the
    commit of t and the commit of Sup(C): the conflict information of each
    child stays protected until the whole composition has committed. *)

open Event

let violations (h : History.t) (c : Composition.t) =
  let p = c.Composition.comp_proc in
  let sup = Composition.sup c in
  let commit_idx tx =
    match History.commit_pos h tx with
    | Some i -> i
    | None -> invalid_arg "Outheritance: member not committed"
  in
  let sup_commit = commit_idx sup in
  List.concat_map
    (fun tx ->
      let tx_commit = commit_idx tx in
      List.filter_map
        (fun pe ->
          (* A release of pe by p strictly between commit(t) and
             commit(Sup(C)) breaks outheritance. *)
          let offending = ref None in
          Array.iteri
            (fun i e ->
              match e with
              | Release { pe = q; proc } when
                  q = pe && proc = p && i > tx_commit && i < sup_commit
                  && !offending = None ->
                offending := Some i
              | _ -> ())
            h;
          Option.map (fun i -> (tx, pe, i)) !offending)
        (History.pmin h tx))
    c.Composition.members

let satisfies h c = violations h c = []

let pp_violation ppf (tx, pe, idx) =
  Format.fprintf ppf
    "protection element l%d of Pmin(t%d) released at position %d, before the \
     supremum committed"
    pe tx idx
