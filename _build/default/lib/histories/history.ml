(** Histories: finite sequences of events, with the derived notions of
    Section II (committed/aborted/live transactions, the precedence order
    [<H], minimal protected sets, kernels, relax-seriality). *)

open Event

type t = Event.t array

let of_list = Array.of_list
let to_list = Array.to_list
let length = Array.length
let events = Array.to_list

let pp ppf (h : t) =
  Array.iteri (fun i e -> Format.fprintf ppf "%3d: %a@." i Event.pp e) h

(* ------------------------------------------------------------------ *)
(* Transactions and processes                                         *)

let proc_of_event = function
  | Begin { proc; _ } | Commit { proc; _ } | Abort { proc; _ }
  | Acquire { proc; _ } | Release { proc; _ } ->
    Some proc
  | Op _ -> None

let tx_of_event = function
  | Begin { tx; _ } | Commit { tx; _ } | Abort { tx; _ } | Op { tx; _ } ->
    Some tx
  | Acquire _ | Release _ -> None

let transactions h =
  Array.to_list h
  |> List.filter_map (function Begin { tx; _ } -> Some tx | _ -> None)

let committed h =
  Array.to_list h
  |> List.filter_map (function Commit { tx; _ } -> Some tx | _ -> None)

let aborted h =
  Array.to_list h
  |> List.filter_map (function Abort { tx; _ } -> Some tx | _ -> None)

let live h =
  let ended = committed h @ aborted h in
  List.filter (fun t -> not (List.mem t ended)) (transactions h)

let complete h = live h = []

let proc_of_tx h tx =
  let found =
    Array.to_list h
    |> List.find_map (function
         | Begin { tx = t; proc } when t = tx -> Some proc
         | _ -> None)
  in
  match found with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "History.proc_of_tx: no begin for t%d" tx)

let procs h =
  transactions h |> List.map (proc_of_tx h) |> List.sort_uniq compare

(* Index of an event satisfying [p], if any. *)
let find_index_opt p (h : t) =
  let n = Array.length h in
  let rec go i = if i >= n then None else if p h.(i) then Some i else go (i + 1) in
  go 0

let begin_pos h tx =
  find_index_opt (function Begin { tx = t; _ } -> t = tx | _ -> false) h

let commit_pos h tx =
  find_index_opt (function Commit { tx = t; _ } -> t = tx | _ -> false) h

(* ------------------------------------------------------------------ *)
(* Projections                                                        *)

(** Events involving process [p] (operations are attributed through their
    transaction). *)
let by_proc h p =
  Array.to_list h
  |> List.filter (fun e ->
         match proc_of_event e with
         | Some q -> q = p
         | None -> (
           match tx_of_event e with
           | Some tx -> proc_of_tx h tx = p
           | None -> false))

(** Operation events on object [o]. *)
let ops_on h o =
  Array.to_list h
  |> List.filter (function Op { obj; _ } -> obj = o | _ -> false)

let objects h =
  Array.to_list h
  |> List.filter_map (function Op { obj; _ } -> Some obj | _ -> None)
  |> List.sort_uniq compare

let pes h =
  Array.to_list h
  |> List.filter_map (function
       | Acquire { pe; _ } | Release { pe; _ } -> Some pe
       | _ -> None)
  |> List.sort_uniq compare

(** [(op, value)] projection of the operation events on [o] — the paper's
    [opseq(H|o)]. *)
let opseq_on h o =
  Array.to_list h
  |> List.filter_map (function
       | Op { obj; op; value; _ } when obj = o -> Some (op, value)
       | _ -> None)

(** Operation events of committed transactions, in history order. *)
let committed_ops h =
  let c = committed h in
  Array.to_list h
  |> List.filter (function Op { tx; _ } -> List.mem tx c | _ -> false)

(* ------------------------------------------------------------------ *)
(* Precedence                                                          *)

(** [t <H t']: commit of [t] precedes begin of [t']. *)
let precedes h t t' =
  match (commit_pos h t, begin_pos h t') with
  | Some c, Some b -> c < b
  | _ -> false

(** All [<H] pairs among committed transactions. *)
let precedence_pairs h =
  let cs = committed h in
  List.concat_map
    (fun t -> List.filter_map (fun t' -> if precedes h t t' then Some (t, t') else None) cs)
    cs

let concurrent h t t' =
  match (begin_pos h t, begin_pos h t', commit_pos h t) with
  | Some bt, Some bt', Some ct -> bt < bt' && bt' < ct
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Legality and relax-seriality                                        *)

(** Every object's committed operation sequence, taken in history order, is
    acceptable sequential behaviour.  (Meaningful for relax-serial or serial
    histories.) *)
let legal ~env h =
  List.for_all
    (fun o ->
      let spec : Spec.t = env o in
      let pairs =
        committed_ops h
        |> List.filter_map (function
             | Op { obj; op; value; _ } when obj = o -> Some (op, value)
             | _ -> None)
      in
      Spec.accepts spec pairs)
    (objects h)

(** Relax-serial (Section II.B): for every protection element, the
    subsequence of acquire and release events is an alternation of matching
    pairs starting with an acquire. *)
let relax_serial h =
  List.for_all
    (fun pe ->
      let evs =
        Array.to_list h
        |> List.filter_map (function
             | Acquire { pe = q; proc } when q = pe -> Some (`A, proc)
             | Release { pe = q; proc } when q = pe -> Some (`R, proc)
             | _ -> None)
      in
      let rec go held = function
        | [] -> true
        | (`A, p) :: rest -> ( match held with None -> go (Some p) rest | Some _ -> false)
        | (`R, p) :: rest -> (
          match held with Some q when q = p -> go None rest | _ -> false)
      in
      go None evs)
    (pes h)

(** A history is sequential when no two transactions are concurrent. *)
let sequential h =
  let ts = transactions h in
  List.for_all
    (fun t -> List.for_all (fun t' -> t = t' || not (concurrent h t t')) ts)
    ts

(* ------------------------------------------------------------------ *)
(* Minimal protected sets                                              *)

(** The minimal protected set of committed transaction [t] (Section II.A):
    protection elements acquired by [t]'s process between [t]'s begin and
    commit whose matching release (the next release of that element by the
    same process) comes after the commit — or never comes. *)
let pmin h tx =
  match (begin_pos h tx, commit_pos h tx) with
  | Some b, Some c ->
    let p = proc_of_tx h tx in
    let n = Array.length h in
    let result = ref [] in
    for i = b + 1 to c - 1 do
      match h.(i) with
      | Acquire { pe; proc } when proc = p ->
        let rec next_release j =
          if j >= n then None
          else
            match h.(j) with
            | Release { pe = q; proc = pr } when q = pe && pr = p -> Some j
            | _ -> next_release (j + 1)
        in
        let released_before_commit =
          match next_release (i + 1) with Some j -> j < c | None -> false
        in
        if (not released_before_commit) && not (List.mem pe !result) then
          result := pe :: !result
      | _ -> ()
    done;
    List.rev !result
  | _ -> []

(** [ker t] — objects whose protection element is in [Pmin(t)].  Protection
    element ids coincide with object ids in our model. *)
let kernel = pmin

(* ------------------------------------------------------------------ *)
(* Well-formedness                                                     *)

let well_formed h =
  let open struct
    exception Bad of string
  end in
  try
    (* Unique begins; commits/aborts/ops refer to begun transactions of the
       right process; per process, begins/commits nest like brackets. *)
    let begun = Hashtbl.create 16 in
    let stack : (int, int list) Hashtbl.t = Hashtbl.create 4 in
    let get_stack p = Option.value ~default:[] (Hashtbl.find_opt stack p) in
    Array.iter
      (fun e ->
        match e with
        | Begin { tx; proc } ->
          if Hashtbl.mem begun tx then
            raise (Bad (Printf.sprintf "duplicate begin of t%d" tx));
          Hashtbl.add begun tx proc;
          Hashtbl.replace stack proc (tx :: get_stack proc)
        | Commit { tx; proc } | Abort { tx; proc } -> (
          match get_stack proc with
          | top :: rest when top = tx -> Hashtbl.replace stack proc rest
          | _ ->
            raise
              (Bad
                 (Printf.sprintf "t%d ends on p%d without being innermost" tx
                    proc)))
        | Op { tx; _ } -> (
          match Hashtbl.find_opt begun tx with
          | None -> raise (Bad (Printf.sprintf "op of unbegun t%d" tx))
          | Some p ->
            if not (List.mem tx (get_stack p)) then
              raise (Bad (Printf.sprintf "op of finished t%d" tx)))
        | Acquire _ | Release _ -> ())
      h;
    Ok ()
  with Bad msg -> Error msg
