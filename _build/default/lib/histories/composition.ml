(** Compositions and the two composability criteria (Section III). *)

open Event

type t = {
  members : int list;  (** committed transactions, in commit order *)
  comp_proc : int;
}

let sup c = List.nth c.members (List.length c.members - 1)
let members c = c.members
let mem c tx = List.mem tx c.members

(** Validate Definition Section III: at least two transactions, all
    committed, all by one process, forming a consecutive run of that
    process's committed transactions in H (each member is immediately
    followed — among the process's committed transactions — by another
    member, except the supremum which follows all others). *)
let make (h : History.t) txs =
  if List.length txs < 2 then Error "a composition needs at least 2 transactions"
  else
    let committed = History.committed h in
    match List.find_opt (fun t -> not (List.mem t committed)) txs with
    | Some t -> Error (Printf.sprintf "t%d is not committed" t)
    | None -> (
      let procs = List.sort_uniq compare (List.map (History.proc_of_tx h) txs) in
      match procs with
      | [ p ] ->
        (* Committed transactions of p, in commit order. *)
        let of_p =
          List.filter (fun t -> History.proc_of_tx h t = p) committed
        in
        let members = List.filter (fun t -> List.mem t txs) of_p in
        (* Consecutiveness within of_p. *)
        let rec consecutive = function
          | [] | [ _ ] -> true
          | a :: (b :: _ as rest) ->
            let rec adjacent = function
              | x :: y :: _ when x = a -> y = b
              | _ :: tl -> adjacent tl
              | [] -> false
            in
            adjacent of_p && consecutive rest
        in
        if consecutive members then Ok { members; comp_proc = p }
        else Error "members are not consecutive committed transactions"
      | _ -> Error "members span several processes")

let make_exn h txs =
  match make h txs with Ok c -> c | Error m -> invalid_arg ("Composition.make: " ^ m)

(** Strong composability (Def 3.1): a witness S exists in which no foreign
    transaction commits between two members of the composition — the
    members' commits form a contiguous block in S's commit order. *)
let strongly_composable ?budget ~env (h : History.t) (c : t) =
  let prepared = Search.prepare h in
  let member_commits =
    List.filter_map
      (fun tx ->
        Search.find_coord prepared (function
          | Commit { tx = t; _ } -> t = tx
          | _ -> false))
      c.members
  in
  let n_members = List.length c.members in
  let admissible ~positions e =
    match e with
    | Commit { tx; _ } when not (mem c tx) ->
      let seen =
        List.length (List.filter (Search.consumed ~positions) member_commits)
      in
      seen = 0 || seen = n_members
    | _ -> true
  in
  Search.exists_witness ?budget ~admissible ~env prepared

(* The weak-composability constraint of one composition, as an [admissible]
   predicate over the prepared search.

   Reading Def 3.2 with the paper's transaction order (t ≺ t' iff commit(t)
   precedes commit(t')): no transaction outside [c] that operates on an
   object of member [t]'s kernel may COMMIT between [t]'s commit and the
   supremum's commit.  The commit-order reading is also what makes strong
   composability (Def 3.1, a constraint on commit order) the stronger of
   the two criteria, as the paper presents it. *)
let weak_admissible prepared (h : History.t) (c : t) =
  let coord_of_commit tx =
    Search.find_coord prepared (function
      | Commit { tx = t; _ } -> t = tx
      | _ -> false)
  in
  let sup_commit = coord_of_commit (sup c) in
  let objs_of tx =
    History.events h
    |> List.filter_map (function
         | Op { obj; tx = t; _ } when t = tx -> Some obj
         | _ -> None)
    |> List.sort_uniq compare
  in
  (* For each foreign transaction: the commits of members whose kernel it
     touches.  Emitting that foreign commit while such a member has
     committed but the supremum has not is a violation. *)
  let foreign_constraints =
    History.committed h
    |> List.filter (fun t' -> not (mem c t'))
    |> List.filter_map (fun t' ->
           let touched = objs_of t' in
           let member_commits =
             List.filter_map
               (fun t ->
                 if List.exists (fun o -> List.mem o touched) (History.kernel h t)
                 then coord_of_commit t
                 else None)
               c.members
           in
           if member_commits = [] then None else Some (t', member_commits))
  in
  fun ~positions e ->
    match e with
    | Commit { tx; _ } when not (mem c tx) -> (
      match List.assoc_opt tx foreign_constraints with
      | None -> true
      | Some member_commits ->
        let sup_done =
          match sup_commit with
          | Some cc -> Search.consumed ~positions cc
          | None -> true
        in
        sup_done
        || not
             (List.exists (Search.consumed ~positions) member_commits))
    | _ -> true

(** Weak composability (Def 3.2): a witness S exists in which, for every
    member [t] and every object [o] in [ker t] (computed on H), no foreign
    transaction operates on [o] after [t]'s commit and before the commit of
    [Sup(C)]. *)
let weakly_composable ?budget ~env (h : History.t) (c : t) =
  let prepared = Search.prepare h in
  Search.exists_witness ?budget ~admissible:(weak_admissible prepared h c)
    ~env prepared

(** Joint weak composition-consistency: one witness S satisfying the weak
    composability constraint of {e every} composition simultaneously.  This
    is the property that catches mutual scenarios (two processes each
    composing an insertIfAbsent) where each composition alone still admits
    a witness but no single serialisation satisfies both. *)
let weakly_consistent ?budget ~env (h : History.t) (cs : t list) =
  let prepared = Search.prepare h in
  let constraints = List.map (weak_admissible prepared h) cs in
  let admissible ~positions e =
    List.for_all (fun f -> f ~positions e) constraints
  in
  Search.exists_witness ?budget ~admissible ~env prepared
