(** Bridge from the STM runtime's recorded traces ({!Stm_core.Recorder}) to
    formal histories.

    Transactional variables become read/write registers: their id is both
    the object id and the protection-element id.  Whole aborted top-level
    attempts are removed — including the events of their already-committed
    children and their acquire/release events — matching the paper's
    convention of removing all events involving aborted transactions. *)

open Stm_core

(* Attribute every event to the enclosing top-level attempt of its process,
   then drop the attempts that ended in an abort.  Protection-element events
   after a top-level commit (the post-commit releases) belong to the
   attempt that just finished. *)
let attribute_attempts (events : Recorder.event list) =
  let module M = Map.Make (Int) in
  (* per proc: (current attempt id, depth, last finished attempt id) *)
  let state = ref M.empty in
  let next_attempt = ref 0 in
  let aborted_attempts = Hashtbl.create 8 in
  let proc_of_tx = Hashtbl.create 16 in
  let tagged =
    List.map
      (fun (e : Recorder.event) ->
        let current_of proc =
          match M.find_opt proc !state with
          | Some (cur, depth, last) -> (cur, depth, last)
          | None -> (-1, 0, -1)
        in
        let tag =
          match e with
          | Begin { tx; proc } ->
            Hashtbl.replace proc_of_tx tx proc;
            let cur, depth, last = current_of proc in
            if depth = 0 then begin
              let id = !next_attempt in
              incr next_attempt;
              state := M.add proc (id, 1, last) !state;
              id
            end
            else begin
              state := M.add proc (cur, depth + 1, last) !state;
              cur
            end
          | Commit { tx = _; proc } | Abort { tx = _; proc } ->
            let cur, depth, _last = current_of proc in
            (match e with
            | Abort _ when depth >= 1 -> Hashtbl.replace aborted_attempts cur ()
            | _ -> ());
            if depth <= 1 then state := M.add proc (-1, 0, cur) !state
            else state := M.add proc (cur, depth - 1, cur) !state;
            cur
          | Acquire { proc; _ } | Release { proc; _ } ->
            let cur, depth, last = current_of proc in
            if depth > 0 then cur else last
          | Read { tx; _ } | Write { tx; _ } ->
            let proc =
              Option.value ~default:(-1) (Hashtbl.find_opt proc_of_tx tx)
            in
            let cur, depth, last = current_of proc in
            if depth > 0 then cur else last
        in
        (tag, e))
      events
  in
  List.filter_map
    (fun (tag, e) ->
      if Hashtbl.mem aborted_attempts tag then None else Some e)
    tagged

let to_history (events : Recorder.event list) : History.t =
  let kept = attribute_attempts events in
  kept
  |> List.map (fun (e : Recorder.event) : Event.t ->
         match e with
         | Begin { tx; proc } -> Begin { tx; proc }
         | Commit { tx; proc } -> Commit { tx; proc }
         | Abort { tx; proc } -> Abort { tx; proc }
         | Acquire { pe; proc } -> Acquire { pe; proc }
         | Release { pe; proc } -> Release { pe; proc }
         | Read { pe; tx; value_repr } ->
           Op { obj = pe; tx; op = Event.op "read"; value = value_repr }
         | Write { pe; tx; value_repr } ->
           Op
             { obj = pe; tx; op = Event.op ~arg:value_repr "write";
               value = value_repr })
  |> History.of_list

(** Specification environment for a recorded run: every object is a
    register whose initial value is the fingerprint of the initial content
    of the corresponding tvar.  Build it from the tvars the test created. *)
let register_env ~init_repr : Spec.env = Spec.all_registers ~init:init_repr
